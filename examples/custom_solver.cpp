/// \file custom_solver.cpp
/// Extending the library: plug a user-defined assignment solver into the
/// mechanisms via the ip::AssignmentSolver strategy interface. The toy
/// solver here assigns every task to its cheapest deadline-feasible GSP
/// and repairs coverage — then we compare it against the shipped greedy
/// and branch-and-bound solvers inside a full TVOF run.
///
///   $ ./custom_solver
#include <cstdio>

#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "ip/greedy.hpp"
#include "workload/instance_gen.hpp"

namespace {

using namespace svo;

/// Minimal user solver: cheapest-feasible insertion in task order.
/// Deliberately naive — no regret ordering, no local search.
class CheapestFitSolver final : public ip::AssignmentSolver {
 public:
  using ip::AssignmentSolver::solve;
  ip::AssignmentSolution solve(
      const ip::AssignmentInstance& inst) const override {
    ip::AssignmentSolution sol;
    const std::size_t k = inst.num_gsps();
    const std::size_t n = inst.num_tasks();
    if (inst.require_all_gsps_used && k > n) {
      sol.stats.status = ip::AssignStatus::Infeasible;  // provable: pigeonhole
      return sol;
    }
    ip::Assignment a(n);
    std::vector<double> load(k, 0.0);
    std::vector<std::size_t> count(k, 0);
    for (std::size_t t = 0; t < n; ++t) {
      std::size_t best = SIZE_MAX;
      for (std::size_t g = 0; g < k; ++g) {
        if (load[g] + inst.time(g, t) > inst.deadline) continue;
        if (best == SIZE_MAX || inst.cost(g, t) < inst.cost(best, t)) {
          best = g;
        }
      }
      if (best == SIZE_MAX) {
        sol.stats.status = ip::AssignStatus::Unknown;  // heuristic dead end
        return sol;
      }
      a[t] = best;
      load[best] += inst.time(best, t);
      ++count[best];
    }
    // Coverage repair: hand each idle GSP one task from a rich donor.
    for (std::size_t g = 0; g < k && inst.require_all_gsps_used; ++g) {
      if (count[g] > 0) continue;
      bool repaired = false;
      for (std::size_t t = 0; t < n && !repaired; ++t) {
        if (count[a[t]] > 1 && load[g] + inst.time(g, t) <= inst.deadline) {
          load[a[t]] -= inst.time(a[t], t);
          --count[a[t]];
          a[t] = g;
          load[g] += inst.time(g, t);
          ++count[g];
          repaired = true;
        }
      }
      if (!repaired) {
        sol.stats.status = ip::AssignStatus::Unknown;
        return sol;
      }
    }
    const double cost = ip::assignment_cost(inst, a);
    if (cost > inst.payment) {
      sol.stats.status = ip::AssignStatus::Unknown;
      return sol;
    }
    sol.stats.status = ip::AssignStatus::Feasible;
    sol.assignment = std::move(a);
    sol.cost = cost;
    return sol;
  }

  std::string name() const override { return "cheapest-fit"; }
};

}  // namespace

int main() {
  using namespace svo;
  util::Xoshiro256 rng(4242);

  trace::ProgramSpec program;
  program.num_tasks = 128;
  program.mean_task_runtime = 4.5 * 3600.0;
  workload::InstanceGenOptions gopts;
  gopts.params.num_gsps = 10;
  const workload::GridInstance grid =
      workload::generate_instance(program, gopts, rng);
  const trust::TrustGraph trust = trust::random_trust_graph(10, 0.3, rng);

  const CheapestFitSolver naive;
  const ip::GreedyAssignmentSolver greedy;
  const ip::BnbAssignmentSolver bnb;

  std::printf("%-14s %-10s %-14s %-10s %-14s\n", "solver", "VO size",
              "payoff/member", "cost", "avg reputation");
  for (const ip::AssignmentSolver* solver :
       {static_cast<const ip::AssignmentSolver*>(&naive),
        static_cast<const ip::AssignmentSolver*>(&greedy),
        static_cast<const ip::AssignmentSolver*>(&bnb)}) {
    const core::TvofMechanism tvof(*solver);
    util::Xoshiro256 mech_rng(7);  // identical removal tie-breaks
    const core::MechanismResult r =
        tvof.run(core::FormationRequest{grid.assignment, trust, mech_rng});
    if (!r.success) {
      std::printf("%-14s no feasible VO\n", solver->name().c_str());
      continue;
    }
    std::printf("%-14s %-10zu %-14.2f %-10.0f %-14.4f\n",
                solver->name().c_str(), r.selected.size(), r.payoff_share,
                r.cost, r.avg_global_reputation);
  }
  std::printf("\nbetter solvers find cheaper mappings, which raises v(C) "
              "and the per-member payoff for the same VOs.\n");
  return 0;
}
