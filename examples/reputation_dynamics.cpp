/// \file reputation_dynamics.cpp
/// Dynamic-trust scenario beyond the paper's static snapshot: GSPs run a
/// sequence of programs; after each one the members of the executing VO
/// update their mutual trust according to delivered service (one GSP is
/// chronically unreliable). Watch TVOF learn to exclude it.
///
///   $ ./reputation_dynamics [rounds]     (default 8)
#include <cstdio>
#include <cstdlib>

#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "trust/reputation.hpp"
#include "workload/instance_gen.hpp"

int main(int argc, char** argv) {
  using namespace svo;
  const std::size_t rounds =
      argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
               : 8;
  constexpr std::size_t kGsps = 8;
  constexpr std::size_t kUnreliable = 3;  // this GSP under-delivers
  util::Xoshiro256 rng(99);

  // Start from moderately dense mutual trust.
  trust::TrustGraph trust = trust::random_trust_graph(kGsps, 0.5, rng);

  workload::InstanceGenOptions gopts;
  gopts.params.num_gsps = kGsps;
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const trust::ReputationEngine engine;

  std::printf("G%zu under-delivers in every interaction; everyone else is "
              "reliable.\n\n",
              kUnreliable);
  std::printf("%-6s %-28s %-10s %-12s\n", "round", "selected VO",
              "G3 in VO", "G3 reputation");

  for (std::size_t round = 0; round < rounds; ++round) {
    trace::ProgramSpec program;
    program.num_tasks = 48;
    program.mean_task_runtime = 3600.0 * rng.uniform(2.5, 6.0);
    const workload::GridInstance grid =
        workload::generate_instance(program, gopts, rng);

    const core::MechanismResult r = tvof.run(core::FormationRequest{grid.assignment, trust, rng});
    if (!r.success) {
      std::printf("%-6zu no feasible VO\n", round);
      continue;
    }

    // Members observe each other: the unreliable GSP scores ~0.2, the
    // rest ~0.95 (noisy).
    const auto members = r.selected.members();
    for (const std::size_t i : members) {
      for (const std::size_t j : members) {
        if (i == j) continue;
        const double outcome = (j == kUnreliable)
                                   ? rng.uniform(0.05, 0.3)
                                   : rng.uniform(0.85, 1.0);
        trust.record_interaction(i, j, outcome, /*rate=*/0.5);
      }
    }

    const trust::ReputationResult rep = engine.compute(trust);
    std::string vo = "{";
    for (const std::size_t g : members) vo += " G" + std::to_string(g);
    vo += " }";
    std::printf("%-6zu %-28s %-10s %-12.4f\n", round, vo.c_str(),
                r.selected.contains(kUnreliable) ? "yes" : "no",
                rep.scores[kUnreliable]);
  }

  const trust::ReputationResult final_rep = engine.compute(trust);
  std::printf("\nfinal global reputations:\n");
  for (std::size_t g = 0; g < kGsps; ++g) {
    std::printf("  G%zu: %.4f%s\n", g, final_rep.scores[g],
                g == kUnreliable ? "   <- unreliable" : "");
  }
  return 0;
}
