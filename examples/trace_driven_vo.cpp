/// \file trace_driven_vo.cpp
/// End-to-end trace-driven scenario, the paper's full pipeline:
///
///   1. generate a synthetic Atlas-like trace and round-trip it through
///      an SWF file on disk (the same ingest path a real Parallel
///      Workloads Archive log would take);
///   2. extract an application program (completed job, >= 2h runtime);
///   3. build the Table I instance (speeds, workloads, Braun costs,
///      deadline, payment);
///   4. run TVOF and RVOF on identical inputs and compare.
///
///   $ ./trace_driven_vo [num_tasks]      (default 512)
#include <cstdio>
#include <cstdlib>

#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "trace/atlas_synth.hpp"
#include "trace/programs.hpp"
#include "trust/trust_graph.hpp"
#include "workload/instance_gen.hpp"

int main(int argc, char** argv) {
  using namespace svo;
  const std::size_t num_tasks =
      argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10))
               : 512;
  util::Xoshiro256 rng(2012);

  // --- 1. trace generation + SWF round trip -------------------------------
  trace::AtlasSynthOptions topts;
  topts.num_jobs = 20'000;
  topts.canonical_sizes = {static_cast<std::int64_t>(num_tasks)};
  const trace::Trace generated = trace::generate_atlas_like(topts, 77);
  const std::string path = "/tmp/svo_atlas_like.swf";
  trace::write_swf_file(path, generated);
  const trace::Trace loaded = trace::parse_swf_file(path);
  const trace::TraceStats stats = trace::compute_stats(loaded.jobs);
  std::printf("trace: %zu jobs (%zu completed, %.1f%% long) via %s\n",
              stats.total_jobs, stats.completed_jobs,
              100.0 * stats.long_fraction(), path.c_str());

  // --- 2. program extraction ----------------------------------------------
  const auto programs =
      trace::sample_programs(loaded.jobs, num_tasks, 1, rng);
  if (programs.empty()) {
    std::printf("no eligible job with %zu processors in the trace\n",
                num_tasks);
    return 1;
  }
  const trace::ProgramSpec program = programs.front();
  std::printf("program: %zu tasks, mean task runtime %.0f s (job #%lld)\n",
              program.num_tasks, program.mean_task_runtime,
              static_cast<long long>(program.source_job));

  // --- 3. Table I instance + trust graph ----------------------------------
  const workload::InstanceGenOptions gopts;  // paper defaults, m = 16
  const workload::GridInstance grid =
      workload::generate_instance(program, gopts, rng);
  const trust::TrustGraph trust = trust::random_trust_graph(
      gopts.params.num_gsps, gopts.params.trust_edge_probability, rng);
  std::printf("instance: deadline %.0f s, payment %.0f units, "
              "%zu feasibility redraws\n\n",
              grid.assignment.deadline, grid.assignment.payment,
              grid.feasibility_redraws);

  // --- 4. both mechanisms on identical inputs -----------------------------
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const core::RvofMechanism rvof(solver);
  util::Xoshiro256 rng_t(1);
  util::Xoshiro256 rng_r(2);
  const core::MechanismResult rt =
      tvof.run(core::FormationRequest{grid.assignment, trust, rng_t});
  const core::MechanismResult rr =
      rvof.run(core::FormationRequest{grid.assignment, trust, rng_r});

  const auto report = [](const char* name, const core::MechanismResult& r) {
    if (!r.success) {
      std::printf("%s: no feasible VO\n", name);
      return;
    }
    std::printf("%s: |C|=%zu, payoff/member=%.2f, avg reputation=%.4f, "
                "cost=%.0f, %zu iterations, %.3f s\n",
                name, r.selected.size(), r.payoff_share,
                r.avg_global_reputation, r.cost, r.journal.size(),
                r.elapsed_seconds);
  };
  report("TVOF", rt);
  report("RVOF", rr);
  if (rt.success && rr.success) {
    std::printf("\nreputation advantage of TVOF: %+.4f "
                "(payoffs differ by %.1f%%)\n",
                rt.avg_global_reputation - rr.avg_global_reputation,
                100.0 * (rt.payoff_share - rr.payoff_share) /
                    rr.payoff_share);
  }
  return 0;
}
