/// \file quickstart.cpp
/// Minimal end-to-end tour of the library: build a small grid scenario
/// by hand, form a VO with TVOF, and inspect the outcome.
///
///   $ ./quickstart
#include <cstdio>

#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "trace/programs.hpp"
#include "trust/trust_graph.hpp"
#include "workload/instance_gen.hpp"

int main() {
  using namespace svo;
  util::Xoshiro256 rng(/*seed=*/7);

  // 1. An application program: 64 independent tasks whose mean runtime is
  //    4 hours (as if extracted from a Parallel Workloads Archive job).
  trace::ProgramSpec program;
  program.num_tasks = 64;
  program.mean_task_runtime = 4.0 * 3600.0;

  // 2. A Table I instance: 8 GSPs, Braun costs, deadline & payment drawn
  //    so a feasible mapping exists.
  workload::InstanceGenOptions gen;
  gen.params.num_gsps = 8;
  const workload::GridInstance grid =
      workload::generate_instance(program, gen, rng);
  std::printf("instance: %zu GSPs x %zu tasks, deadline %.0f s, payment %.0f\n",
              grid.assignment.num_gsps(), grid.assignment.num_tasks(),
              grid.assignment.deadline, grid.assignment.payment);

  // 3. A random trust graph (Erdős–Rényi, p = 0.3 so it is well connected
  //    at this size).
  const trust::TrustGraph trust = trust::random_trust_graph(8, 0.3, rng);

  // 4. Run TVOF with the branch-and-bound assignment solver.
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const core::MechanismResult result =
      tvof.run(core::FormationRequest{grid.assignment, trust, rng});

  if (!result.success) {
    std::printf("no feasible VO found\n");
    return 1;
  }
  std::printf("selected VO: {");
  for (const std::size_t g : result.selected.members()) {
    std::printf(" G%zu", g);
  }
  std::printf(" }  (|C| = %zu)\n", result.selected.size());
  std::printf("  execution cost C(T,C) : %10.2f\n", result.cost);
  std::printf("  coalition value v(C)  : %10.2f\n", result.value);
  std::printf("  payoff per member     : %10.2f\n", result.payoff_share);
  std::printf("  avg global reputation : %10.4f\n",
              result.avg_global_reputation);
  std::printf("  mechanism iterations  : %zu\n", result.journal.size());
  std::printf("  wall clock            : %.3f s\n", result.elapsed_seconds);

  std::printf("\niteration journal (payoff share / avg reputation):\n");
  for (const auto& it : result.journal) {
    std::printf("  |C|=%2zu  feasible=%d  share=%10.2f  rep=%.4f\n",
                it.coalition.size(), it.feasible ? 1 : 0, it.payoff_share,
                it.avg_global_reputation);
  }
  return 0;
}
