/// \file svo_cli.cpp
/// Command-line driver for the library — the adoption-ready entry point:
///
///   svo_cli trace-gen <out.swf> [jobs] [seed]   generate a synthetic
///                                               Atlas-like SWF trace
///   svo_cli trace-stats <in.swf>                characterize a trace
///   svo_cli form <in.swf> <tasks> [options]     form a VO for a program
///       --mechanism tvof|rvof     (default tvof)
///       --gsps N                  (default 16)
///       --trust-p P               (default 0.1)
///       --seed S                  (default 42)
///   svo_cli sweep [--reps N] [--seed S]         run the paper's sweep
///                 [--sizes a,b,c]               and print Figs. 1-3, 9
///   svo_cli closed-loop [--rounds N] [--seed S] hidden-reliability closed
///                                               loop, TVOF vs RVOF
///   svo_cli multi [--programs N] [--seed S]     multi-program contention
///   svo_cli faults [options]                    one trusted-party formation
///                                               under injected faults,
///                                               printing protocol metrics
///       --gsps N     (default 10)   --tasks N   (default 48)
///       --drop P     (default 0.1)  --crash P   (default 0.1)
///       --mechanism tvof|rvof       --seed S    (default 42)
///   svo_cli attacks [options]                   adversarial closed loop:
///                                               TVOF with defenses off vs
///                                               on under a trust attack
///       --attack  none|badmouthing|ballot-stuffing|collusion|on-off|
///                 whitewashing|sybil            (default collusion)
///       --fraction P (default 0.3)  --intensity I (default 0.9)
///       --gsps N     (default 12)   --tasks N     (default 36)
///       --rounds N   (default 10)   --seed S      (default 42)
///   svo_cli stream [options]                    streaming grid economy:
///                                               continuous arrivals, GSP
///                                               churn, repair + backoff
///       --requests N  (default 24)  --interval S  (default 60)
///       --gsps N      (default 8)   --deadline S  (default inf)
///       --leave-rate R (default 0)  --crash-rate R (default 0)
///       --absence S   (default 600) --floor N     (default 1)
///       --mechanism tvof|rvof       --seed S      (default 42)
///       --ingest sweep|atlas        --timeline    (print event log)
///       --stats-every S  (virtual-time telemetry windows every S
///                         virtual seconds: per-window table + SLO
///                         burn-rate verdicts after the run)
///   svo_cli serve [options]                     formation-as-a-service: a
///                                               burst of requests through
///                                               the sharded async engine
///       --requests N  (default 64)  --shards N    (default 4)
///       --threads N   (default 0 = one per shard)
///       --capacity N  (default 0 = fit the burst) --batch N (default 8)
///       --gsps N      (default 8)   --tasks N     (default 24)
///       --defer       (defer instead of shed when a queue fills)
///       --chaos       (seeded fault plan: transient solver failures,
///                      queue poison, shard kills, straggler ticks)
///       --deadline S  (per-request deadline, seconds; default inf)
///       --priority P  (drain priority; higher drains first)
///       --retries N   (retry budget per request; default 0, or 3
///                      under --chaos; max 32)
///       --seed S      (default 42)
///       --stats-every S    (live telemetry: close a metrics window
///                           every S wall seconds and print a windowed
///                           health table while the burst drains)
///       --stats-jsonl F    (append every closed window to F as JSONL)
///   svo_cli trace-report <trace> [options]        analyze a recorded trace
///                                               (Chrome JSON or JSONL):
///                                               hot spans, message counts,
///                                               per-round critical paths
///       --top N               hot spans listed (default 12)
///       --collapsed <file>    also write collapsed stacks for
///                             flamegraph.pl / speedscope
///
/// Global options (any subcommand):
///   --trace <file>   record a Chrome trace of the run (open in
///                    chrome://tracing or https://ui.perfetto.dev);
///                    equivalent to SVO_TRACE=<file>. SVO_METRICS=<file>
///                    additionally dumps the metric registry JSON.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/distributed_tvof.hpp"
#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "obs/analysis.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "sim/adversary.hpp"
#include "sim/learning.hpp"
#include "sim/multi_program.hpp"
#include "sim/runner.hpp"
#include "sim/stream_engine.hpp"
#include "svc/fault_plan.hpp"
#include "svc/service.hpp"
#include "trace/atlas_synth.hpp"
#include "trace/programs.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "workload/instance_gen.hpp"

namespace {

using namespace svo;

int usage() {
  std::fprintf(stderr,
               "usage: svo_cli "
               "<trace-gen|trace-stats|form|sweep|closed-loop|multi|faults|"
               "attacks|stream|serve|trace-report> [--trace <file>] ...\n"
               "see the header of examples/svo_cli.cpp for details\n");
  return 2;
}

/// Option lookup: value of `--name` in argv, or fallback.
const char* opt(int argc, char** argv, const char* name,
                const char* fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

int cmd_trace_gen(int argc, char** argv) {
  if (argc < 1) return usage();
  trace::AtlasSynthOptions opts;
  if (argc >= 2) opts.num_jobs = std::strtoul(argv[1], nullptr, 10);
  const std::uint64_t seed =
      argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const trace::Trace t = trace::generate_atlas_like(opts, seed);
  trace::write_swf_file(argv[0], t);
  std::printf("wrote %zu jobs to %s\n", t.jobs.size(), argv[0]);
  return 0;
}

int cmd_trace_stats(int argc, char** argv) {
  if (argc < 1) return usage();
  const trace::Trace t = trace::parse_swf_file(argv[0]);
  const trace::TraceStats s = trace::compute_stats(t.jobs);
  std::printf("jobs:            %zu (%zu malformed lines skipped)\n",
              s.total_jobs, t.malformed_lines);
  std::printf("completed:       %zu (%.1f%%)\n", s.completed_jobs,
              100.0 * static_cast<double>(s.completed_jobs) /
                  static_cast<double>(std::max<std::size_t>(1, s.total_jobs)));
  std::printf("long (>2h):      %zu (%.1f%% of completed)\n",
              s.long_completed_jobs, 100.0 * s.long_fraction());
  std::printf("processors:      [%lld, %lld]\n",
              static_cast<long long>(s.min_processors),
              static_cast<long long>(s.max_processors));
  std::printf("runtime (s):     [%.0f, %.0f]\n", s.min_runtime, s.max_runtime);
  if (s.max_runtime > s.min_runtime && s.min_runtime >= 0.0) {
    util::Histogram runtimes = util::Histogram::logarithmic(
        std::max(1.0, s.min_runtime), s.max_runtime + 1.0, 10);
    for (const auto& j : t.jobs) {
      if (j.run_time > 0.0) runtimes.add(j.run_time);
    }
    std::printf("\nruntime distribution:\n%s", runtimes.render(40).c_str());
  }
  return 0;
}

int cmd_closed_loop(int argc, char** argv) {
  sim::ClosedLoopConfig cfg;
  cfg.rounds = std::strtoul(opt(argc, argv, "--rounds", "20"), nullptr, 10);
  cfg.num_tasks = 96;
  cfg.gen.params.num_gsps = 16;
  const std::uint64_t seed =
      std::strtoull(opt(argc, argv, "--seed", "42"), nullptr, 10);
  util::Xoshiro256 rng(seed);
  const sim::ReliabilityModel model =
      sim::ReliabilityModel::bimodal(16, 0.625, 0.9, 0.3, rng);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const core::RvofMechanism rvof(solver);
  const sim::ClosedLoopResult rt = sim::run_closed_loop(tvof, model, cfg, seed);
  const sim::ClosedLoopResult rr = sim::run_closed_loop(rvof, model, cfg, seed);
  std::printf("%-6s %-20s %-20s\n", "", "TVOF", "RVOF");
  std::printf("%-6s %-20.3f %-20.3f\n", "compl", rt.completion_rate,
              rr.completion_rate);
  std::printf("%-6s %-20.2f %-20.2f\n", "share", rt.mean_realized_share,
              rr.mean_realized_share);
  std::printf("\nper-round unreliable-member fraction (TVOF / RVOF):\n");
  for (std::size_t i = 0; i < rt.rounds.size(); i += 2) {
    std::printf("  round %2zu: %.2f / %.2f\n", i,
                rt.rounds[i].unreliable_member_fraction,
                rr.rounds[i].unreliable_member_fraction);
  }
  return 0;
}

int cmd_multi(int argc, char** argv) {
  sim::MultiProgramConfig cfg;
  cfg.programs =
      std::strtoul(opt(argc, argv, "--programs", "25"), nullptr, 10);
  cfg.gen.params.num_gsps = 16;
  const std::uint64_t seed =
      std::strtoull(opt(argc, argv, "--seed", "42"), nullptr, 10);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const sim::MultiProgramResult r = sim::run_multi_program(tvof, cfg, seed);
  std::printf("admission rate:   %.3f\n", r.admission_rate);
  std::printf("mean utilization: %.3f\n", r.mean_utilization);
  std::printf("total value:      %.1f\n", r.total_value);
  for (const auto& o : r.outcomes) {
    std::printf("  #%-3zu t=%-10.0f free=%-2zu %s", o.index, o.arrival_time,
                o.available_gsps, o.admitted ? "VO {" : "refused\n");
    if (o.admitted) {
      for (const std::size_t g : o.vo.members()) std::printf(" G%zu", g);
      std::printf(" }\n");
    }
  }
  return 0;
}

int cmd_form(int argc, char** argv) {
  if (argc < 2) return usage();
  const trace::Trace t = trace::parse_swf_file(argv[0]);
  const std::size_t tasks = std::strtoul(argv[1], nullptr, 10);
  const std::string mechanism = opt(argc, argv, "--mechanism", "tvof");
  const std::size_t gsps =
      std::strtoul(opt(argc, argv, "--gsps", "16"), nullptr, 10);
  const double trust_p = std::strtod(opt(argc, argv, "--trust-p", "0.1"), nullptr);
  const std::uint64_t seed =
      std::strtoull(opt(argc, argv, "--seed", "42"), nullptr, 10);

  util::Xoshiro256 rng(seed);
  const auto programs = trace::sample_programs(t.jobs, tasks, 1, rng);
  if (programs.empty()) {
    std::fprintf(stderr, "no completed job with %zu processors and >= 2h "
                         "runtime in the trace\n", tasks);
    return 1;
  }
  workload::InstanceGenOptions gopts;
  gopts.params.num_gsps = gsps;
  const workload::GridInstance grid =
      workload::generate_instance(programs.front(), gopts, rng);
  const trust::TrustGraph trust =
      trust::random_trust_graph(gsps, trust_p, rng);

  const ip::BnbAssignmentSolver solver;
  core::MechanismResult r;
  if (mechanism == "rvof") {
    r = core::RvofMechanism(solver).run(core::FormationRequest{grid.assignment, trust, rng});
  } else if (mechanism == "tvof") {
    r = core::TvofMechanism(solver).run(core::FormationRequest{grid.assignment, trust, rng});
  } else {
    std::fprintf(stderr, "unknown --mechanism %s\n", mechanism.c_str());
    return 2;
  }
  if (!r.success) {
    std::printf("no feasible VO\n");
    return 1;
  }
  std::printf("mechanism:       %s\n", mechanism.c_str());
  std::printf("selected VO:    ");
  for (const std::size_t g : r.selected.members()) std::printf(" G%zu", g);
  std::printf("  (%zu of %zu GSPs)\n", r.selected.size(), gsps);
  std::printf("cost / value:    %.2f / %.2f\n", r.cost, r.value);
  std::printf("payoff/member:   %.2f\n", r.payoff_share);
  std::printf("avg reputation:  %.4f\n", r.avg_global_reputation);
  std::printf("iterations:      %zu (%.3f s, %zu B&B nodes)\n",
              r.journal.size(), r.elapsed_seconds, r.stats.nodes);
  return 0;
}

int cmd_faults(int argc, char** argv) {
  const std::size_t gsps =
      std::strtoul(opt(argc, argv, "--gsps", "10"), nullptr, 10);
  const std::size_t tasks =
      std::strtoul(opt(argc, argv, "--tasks", "48"), nullptr, 10);
  const double drop = std::strtod(opt(argc, argv, "--drop", "0.1"), nullptr);
  const double crash = std::strtod(opt(argc, argv, "--crash", "0.1"), nullptr);
  const std::string mechanism = opt(argc, argv, "--mechanism", "tvof");
  const std::uint64_t seed =
      std::strtoull(opt(argc, argv, "--seed", "42"), nullptr, 10);

  // Synthetic Table-I instance: no trace needed for a protocol demo.
  util::Xoshiro256 rng(seed);
  trace::ProgramSpec program;
  program.num_tasks = tasks;
  program.mean_task_runtime = 9000.0;
  workload::InstanceGenOptions gopts;
  gopts.params.num_gsps = gsps;
  const workload::GridInstance grid =
      workload::generate_instance(program, gopts, rng);
  const trust::TrustGraph trust = trust::random_trust_graph(gsps, 0.4, rng);

  core::ProtocolOptions proto;
  proto.latency.base_seconds = 0.025;
  proto.latency.bytes_per_second = 1.25e7;
  proto.latency.jitter = 0.2;
  proto.report_timeout_seconds = 0.25;
  proto.award_timeout_seconds = 0.15;
  proto.faults.drop_probability = drop;
  proto.faults.straggler_probability = 0.05;
  proto.faults.straggler_multiplier = 4.0;
  proto.faults.seed = seed ^ 0xFA117;
  proto.faults.crashes = core::gsp_crash_schedule(
      des::random_crash_windows(gsps, crash, 0.2, 0.0, seed ^ 0xC4A5));

  const ip::BnbAssignmentSolver solver;
  core::DistributedRunResult r;
  if (mechanism == "rvof") {
    r = core::run_distributed(core::RvofMechanism(solver), grid.assignment,
                              trust, rng, proto);
  } else if (mechanism == "tvof") {
    r = core::run_distributed(core::TvofMechanism(solver), grid.assignment,
                              trust, rng, proto);
  } else {
    std::fprintf(stderr, "unknown --mechanism %s\n", mechanism.c_str());
    return 2;
  }

  std::printf("mechanism:        %s  (m=%zu, n=%zu, drop=%.2f, crash=%.2f)\n",
              mechanism.c_str(), gsps, tasks, drop, crash);
  if (r.mechanism.success) {
    std::printf("selected VO:     ");
    for (const std::size_t g : r.mechanism.selected.members())
      std::printf(" G%zu", g);
    std::printf("  (%zu of %zu GSPs)\n", r.mechanism.selected.size(), gsps);
    std::printf("cost / value:     %.2f / %.2f\n", r.mechanism.cost,
                r.mechanism.value);
  } else {
    std::printf("formation FAILED (explicitly reported, never silent)\n");
  }
  std::printf("messages:         %zu (%.1f KiB on the wire)\n",
              r.protocol.messages,
              static_cast<double>(r.protocol.bytes) / 1024.0);
  std::printf("report phase:     %.4f s\n", r.protocol.report_phase_seconds);
  std::printf("end-to-end:       %.4f s\n", r.protocol.completion_seconds);
  std::printf("retries:          %zu\n", r.protocol.retries);
  std::printf("timeouts fired:   %zu\n", r.protocol.timeouts_fired);
  std::printf("drops observed:   %zu\n", r.protocol.drops_observed);
  std::printf("repair rounds:    %zu\n", r.protocol.repair_rounds);
  std::printf("degraded quorum:  %s\n",
              r.protocol.degraded_quorum ? "yes" : "no");
  std::printf("formation failed: %s\n",
              r.protocol.formation_failed ? "yes" : "no");
  return r.mechanism.success ? 0 : 1;
}

int cmd_attacks(int argc, char** argv) {
  const std::size_t gsps =
      std::strtoul(opt(argc, argv, "--gsps", "12"), nullptr, 10);
  const std::size_t tasks =
      std::strtoul(opt(argc, argv, "--tasks", "36"), nullptr, 10);
  const std::uint64_t seed =
      std::strtoull(opt(argc, argv, "--seed", "42"), nullptr, 10);

  trust::AttackScenario attack;
  attack.type =
      trust::attack_type_from_string(opt(argc, argv, "--attack", "collusion"));
  attack.attacker_fraction =
      std::strtod(opt(argc, argv, "--fraction", "0.3"), nullptr);
  attack.intensity =
      std::strtod(opt(argc, argv, "--intensity", "0.9"), nullptr);
  attack.seed = seed ^ 0xA77AC;

  sim::AdversarialLoopConfig cfg;
  cfg.loop.rounds =
      std::strtoul(opt(argc, argv, "--rounds", "10"), nullptr, 10);
  cfg.loop.num_tasks = tasks;
  cfg.loop.gen.params.num_gsps = gsps;
  cfg.loop.gen.params.payment_factor_lo = 0.8;
  cfg.loop.gen.params.payment_factor_hi = 1.2;
  cfg.attack = attack;

  // Honest GSPs reliable, attackers poor; honest raters start informed.
  util::Xoshiro256 pop(seed ^ 0x9090);
  const sim::ReliabilityModel model =
      sim::ReliabilityModel::bimodal(gsps, 1.0, 0.9, 0.3, pop);
  std::vector<double> effective = model.thetas();
  const trust::AttackInjector preview(attack, gsps);
  for (const std::size_t a : preview.attackers()) {
    effective[a] = cfg.attacker_theta;
  }
  trust::TrustGraph initial(gsps);
  for (std::size_t i = 0; i < gsps; ++i) {
    for (std::size_t j = 0; j < gsps; ++j) {
      if (i == j || pop.uniform() > 0.85) continue;
      const double noisy = 0.1 + 0.75 * effective[j] + 0.15 * pop.uniform();
      initial.set_trust(i, j, std::min(1.0, std::max(0.05, noisy)));
    }
  }
  cfg.initial_trust_graph = initial;

  ip::BnbOptions bnb;
  bnb.max_nodes = 4000;
  const ip::BnbAssignmentSolver solver(bnb);
  const core::MechanismConfig mech_cfg;

  cfg.defenses.enabled = false;
  const sim::AdversarialLoopResult literal = sim::run_adversarial_loop(
      sim::MechanismKind::Tvof, solver, mech_cfg, model, cfg, seed);
  cfg.defenses.enabled = true;
  const sim::AdversarialLoopResult robust = sim::run_adversarial_loop(
      sim::MechanismKind::Tvof, solver, mech_cfg, model, cfg, seed);

  std::printf("attack:            %s (fraction %.2f, intensity %.2f)\n",
              trust::to_string(attack.type), attack.attacker_fraction,
              attack.intensity);
  std::printf("attackers:        ");
  for (const std::size_t a : literal.attackers) std::printf(" G%zu", a);
  std::printf("\n\n%-22s %-14s %-14s\n", "", "TVOF-literal", "TVOF-robust");
  std::printf("%-22s %-14.3f %-14.3f\n", "completion rate",
              literal.completion_rate, robust.completion_rate);
  std::printf("%-22s %-14.2f %-14.2f\n", "mean realized share",
              literal.mean_realized_share, robust.mean_realized_share);
  std::printf("%-22s %-14.3f %-14.3f\n", "mean rank corruption",
              literal.mean_rank_corruption, robust.mean_rank_corruption);
  std::printf("\nper-round attacker share of the selected VO "
              "(literal / robust):\n");
  for (std::size_t i = 0; i < literal.rounds.size(); ++i) {
    std::printf("  round %2zu: %.2f / %.2f%s\n", i,
                literal.rounds[i].attacker_selected_fraction,
                robust.rounds[i].attacker_selected_fraction,
                literal.rounds[i].attack_active ? "" : "  (attack dormant)");
  }
  return 0;
}

int cmd_stream(int argc, char** argv) {
  sim::StreamOptions opts;
  opts.base.gen.params.num_gsps =
      std::strtoul(opt(argc, argv, "--gsps", "8"), nullptr, 10);
  opts.base.seed = std::strtoull(opt(argc, argv, "--seed", "42"), nullptr, 10);
  opts.base.task_sizes = {24, 48, 96};
  opts.base.trace.num_jobs = 6000;
  opts.base.trace.canonical_sizes = {24, 48, 96};
  opts.base.trace.min_jobs_per_canonical_size = 8;
  opts.base.solver.max_nodes = 4000;
  opts.num_requests =
      std::strtoul(opt(argc, argv, "--requests", "24"), nullptr, 10);
  opts.arrival_interval_seconds =
      std::strtod(opt(argc, argv, "--interval", "60"), nullptr);
  if (const char* deadline = opt(argc, argv, "--deadline", nullptr)) {
    opts.formation_deadline_seconds = std::strtod(deadline, nullptr);
  }
  opts.admission_floor =
      std::strtoul(opt(argc, argv, "--floor", "1"), nullptr, 10);
  opts.execution_time_scale = 0.01;
  opts.churn.leave_rate =
      std::strtod(opt(argc, argv, "--leave-rate", "0"), nullptr);
  opts.churn.crash_rate =
      std::strtod(opt(argc, argv, "--crash-rate", "0"), nullptr);
  opts.churn.mean_absence_seconds =
      std::strtod(opt(argc, argv, "--absence", "600"), nullptr);
  opts.churn.seed = opts.base.seed ^ 0xC1124;
  const char* mechanism = opt(argc, argv, "--mechanism", "tvof");
  if (std::strcmp(mechanism, "rvof") == 0) {
    opts.mechanism = sim::MechanismKind::Rvof;
  } else if (std::strcmp(mechanism, "tvof") != 0) {
    std::fprintf(stderr, "unknown --mechanism %s\n", mechanism);
    return 2;
  }
  const char* ingest = opt(argc, argv, "--ingest", "sweep");
  if (std::strcmp(ingest, "atlas") == 0) {
    opts.ingest = sim::StreamOptions::Ingest::StreamingAtlas;
  } else if (std::strcmp(ingest, "sweep") != 0) {
    std::fprintf(stderr, "unknown --ingest %s\n", ingest);
    return 2;
  }
  const double stats_every =
      std::strtod(opt(argc, argv, "--stats-every", "0"), nullptr);
  if (stats_every > 0.0) {
    opts.stats_window_seconds = stats_every;
    // Default objectives over the stream.* window metrics: commit
    // latency p99 inside ten arrival intervals, and at most a quarter
    // of arriving requests shed or timed out per window.
    obs::SloObjective latency;
    latency.name = "commit_latency_p99";
    latency.kind = obs::SloKind::QuantileBelow;
    latency.metric = "stream.formation_latency_s";
    latency.quantile = 0.99;
    latency.threshold = 10.0 * opts.arrival_interval_seconds;
    obs::SloObjective rejects;
    rejects.name = "reject_rate";
    rejects.kind = obs::SloKind::RatioBelow;
    rejects.metric = "stream.request_shed";
    rejects.denominator = "stream.request_arrival";
    rejects.threshold = 0.25;
    opts.slos = {latency, rejects};
  }

  const sim::StreamEngine engine(opts);
  const sim::StreamResult result = engine.run();

  std::printf("requests admitted:   %zu\n", result.admitted);
  std::printf("completed/repaired:  %zu / %zu\n", result.completed,
              result.repaired);
  std::printf("shed/timed-out:      %zu / %zu\n", result.shed,
              result.timed_out);
  std::printf("completion rate:     %.3f\n", result.completion_rate);
  std::printf("deadline-miss rate:  %.3f\n", result.deadline_miss_rate);
  std::printf("realized value:      %.2f\n", result.total_realized_value);
  std::printf("formation latency:   mean %.2f s, p99 %.2f s (virtual)\n",
              result.mean_formation_latency, result.p99_formation_latency);
  std::printf("churn events:        %zu, quarantined rejoins: %zu\n",
              result.churn_schedule.size(),
              result.quarantine_activations.size());
  std::printf("virtual horizon:     %.1f s\n", result.horizon);
  if (result.lost > 0) {
    std::printf("LOST REQUESTS:       %zu (invariant violation!)\n",
                result.lost);
  }
  if (!result.windows.empty()) {
    std::printf("\n%-6s %-18s %8s %8s %8s %6s %6s %12s\n", "window",
                "span (virtual s)", "arrivals", "commits", "timeout",
                "crash", "live", "p99 lat (s)");
    for (const obs::Window& w : result.windows) {
      const obs::Histogram::Snapshot lat =
          w.histogram("stream.formation_latency_s");
      std::printf("%-6llu [%7.1f,%7.1f) %8llu %8llu %8llu %6llu %6.0f %12.2f\n",
                  static_cast<unsigned long long>(w.index), w.start_time,
                  w.end_time,
                  static_cast<unsigned long long>(
                      w.counter("stream.request_arrival")),
                  static_cast<unsigned long long>(
                      w.counter("stream.formation_commit")),
                  static_cast<unsigned long long>(
                      w.counter("stream.request_timed_out")),
                  static_cast<unsigned long long>(
                      w.counter("stream.gsp_crashed")),
                  w.gauge("stream.live"),
                  lat.count > 0 ? lat.quantile(0.99) : 0.0);
    }
    for (const obs::SloStatus& s : result.slo_status) {
      std::printf("slo %-20s %llu/%llu windows violated, budget %.2f, "
                  "burn fast %.2f / slow %.2f -> %s\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.violations),
                  static_cast<unsigned long long>(s.windows),
                  s.budget_consumed, s.fast_burn, s.slow_burn,
                  s.breached ? "BREACHED" : "ok");
    }
  }
  bool timeline = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timeline") == 0) timeline = true;
  }
  if (timeline) {
    std::printf("\n%-12s %-22s %-8s %s\n", "time", "event", "request", "gsp");
    for (const sim::StreamLogEntry& e : result.timeline) {
      std::printf("%-12.2f %-22s %-8s %s\n", e.time, to_string(e.kind),
                  e.request == SIZE_MAX ? "-" : std::to_string(e.request).c_str(),
                  e.gsp == SIZE_MAX ? "-" : std::to_string(e.gsp).c_str());
    }
  }
  return result.lost == 0 ? 0 : 1;
}

int cmd_serve(int argc, char** argv) {
  const std::size_t gsps =
      std::strtoul(opt(argc, argv, "--gsps", "8"), nullptr, 10);
  const std::size_t tasks =
      std::strtoul(opt(argc, argv, "--tasks", "24"), nullptr, 10);
  const std::size_t requests =
      std::strtoul(opt(argc, argv, "--requests", "64"), nullptr, 10);
  const std::uint64_t seed =
      std::strtoull(opt(argc, argv, "--seed", "42"), nullptr, 10);

  svc::ServiceOptions sopt;
  sopt.shards = std::strtoul(opt(argc, argv, "--shards", "4"), nullptr, 10);
  sopt.threads = std::strtoul(opt(argc, argv, "--threads", "0"), nullptr, 10);
  sopt.batch_size = std::strtoul(opt(argc, argv, "--batch", "8"), nullptr, 10);
  sopt.queue_capacity =
      std::strtoul(opt(argc, argv, "--capacity", "0"), nullptr, 10);
  if (sopt.queue_capacity == 0) {
    sopt.queue_capacity = std::max<std::size_t>(requests, sopt.batch_size);
  }
  bool chaos = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--defer") == 0) {
      sopt.overload = svc::OverloadPolicy::Defer;
    }
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
  }
  if (chaos) {
    // The soak bench's mix: mostly-transient solver failures plus a
    // sprinkle of poison, shard kills and stragglers, seeded so the run
    // replays identically (fault_plan.hpp).
    svc::ChaosProfile profile;
    profile.solver_fault_rate = 0.15;
    profile.poison_rate = 0.05;
    profile.abort_rate = 0.05;
    profile.stall_rate = 0.05;
    profile.stall_seconds = 0.0002;
    sopt.faults = svc::random_fault_plan(seed ^ 0xC4A05ULL, requests, profile);
    sopt.retry_backoff_base_seconds = 0.0001;
    sopt.retry_backoff_cap_seconds = 0.001;
  }
  // Scheduling fields ride on every request of the burst; submit()'s
  // typed InvalidArgument (bad deadline / oversized retry budget)
  // surfaces through main()'s catch as a CLI error.
  const double deadline = std::strtod(
      opt(argc, argv, "--deadline", "inf"), nullptr);
  const long priority = std::strtol(
      opt(argc, argv, "--priority", "0"), nullptr, 10);
  const unsigned long retries = std::strtoul(
      opt(argc, argv, "--retries", chaos ? "3" : "0"), nullptr, 10);

  const double stats_every =
      std::strtod(opt(argc, argv, "--stats-every", "0"), nullptr);
  if (stats_every > 0.0) {
    sopt.stats_window_seconds = stats_every;
    if (const char* jsonl = opt(argc, argv, "--stats-jsonl", nullptr)) {
      sopt.stats_jsonl_path = jsonl;
    }
    // Default objectives: queue p99 under half a second, at most a
    // fifth of attempts failing, and nothing expiring in queue.
    obs::SloObjective queue_p99;
    queue_p99.name = "queue_p99_us";
    queue_p99.kind = obs::SloKind::QuantileBelow;
    queue_p99.metric = "svc.queue_us";
    queue_p99.quantile = 0.99;
    queue_p99.threshold = 500000.0;
    obs::SloObjective failure_rate;
    failure_rate.name = "failure_rate";
    failure_rate.kind = obs::SloKind::RatioBelow;
    failure_rate.metric = "svc.failed";
    failure_rate.denominator = "svc.solver_runs";
    failure_rate.threshold = 0.2;
    obs::SloObjective expired;
    expired.name = "expired";
    expired.kind = obs::SloKind::CounterZero;
    expired.metric = "svc.expired";
    sopt.slos = {queue_p99, failure_rate, expired};
  }

  // Small pool of synthetic Table-I instances (no trace needed): a burst
  // of requests over a few distinct markets, like the throughput bench.
  constexpr std::size_t kPool = 4;
  util::Xoshiro256 pool_rng(seed);
  std::vector<workload::GridInstance> grids;
  std::vector<trust::TrustGraph> trusts;
  for (std::size_t p = 0; p < kPool; ++p) {
    trace::ProgramSpec program;
    program.num_tasks = tasks;
    program.mean_task_runtime = 9000.0;
    workload::InstanceGenOptions gopts;
    gopts.params.num_gsps = gsps;
    grids.push_back(workload::generate_instance(program, gopts, pool_rng));
    trusts.push_back(trust::random_trust_graph(gsps, 0.4, pool_rng));
  }

  ip::BnbOptions bnb;
  bnb.max_nodes = 4000;
  const ip::BnbAssignmentSolver solver(bnb);
  const core::TvofMechanism tvof(solver);
  svc::FormationService service(tvof, sopt);

  std::vector<svc::RequestHandle> handles;
  handles.reserve(requests);
  const util::WallTimer timer;
  for (std::size_t i = 0; i < requests; ++i) {
    util::Xoshiro256 rng(seed ^ (0x9E3779B97F4A7C15ULL * (i + 1)));
    core::FormationRequest req{grids[i % kPool].assignment, trusts[i % kPool],
                               rng};
    req.deadline_seconds = deadline;
    req.priority = static_cast<std::int32_t>(priority);
    req.max_retries = static_cast<std::uint32_t>(
        std::min<unsigned long>(retries, 0xFFFFFFFFul));
    handles.push_back(service.submit(req));
  }
  if (stats_every > 0.0) {
    // Live windowed health table while the burst drains: poll health()
    // once per window instead of blocking in drain().
    std::printf("%-8s %-8s %-6s %-6s %10s %10s %-6s %s\n", "wall s",
                "windows", "outst", "depth", "q p99 us", "s p99 us", "over",
                "slo");
    const auto print_row = [&service](double now) {
      svc::ServiceHealth h = service.health();
      std::size_t depth = 0;
      for (const svc::ShardHealth& sh : h.shards) depth += sh.queue_depth;
      std::size_t breached = 0;
      for (const obs::SloStatus& s : h.slos) breached += s.breached ? 1 : 0;
      std::printf("%-8.2f %-8llu %-6llu %-6zu %10.0f %10.0f %-6s "
                  "%zu/%zu breached\n",
                  now, static_cast<unsigned long long>(h.windows_closed),
                  static_cast<unsigned long long>(h.outstanding), depth,
                  h.queue_p99_us, h.solve_p99_us,
                  h.overloaded ? "YES" : "no", breached, h.slos.size());
    };
    while (true) {
      print_row(timer.seconds());
      bool all_done = true;
      for (const svc::RequestHandle& h : handles) {
        if (!h.done()) {
          all_done = false;
          break;
        }
      }
      if (all_done) break;
      std::this_thread::sleep_for(std::chrono::duration<double>(stats_every));
    }
  }
  service.drain();
  const double elapsed = timer.seconds();
  const svc::ServiceStats stats = service.stats();
  std::size_t lost = 0;
  for (const svc::RequestHandle& h : handles) {
    if (!h.done()) ++lost;  // the no-lost-request invariant: always 0
  }

  std::printf("service:          %zu shard(s), %zu thread(s), batch %zu, "
              "capacity %zu/shard, %s on overload\n",
              sopt.shards, sopt.threads == 0 ? sopt.shards : sopt.threads,
              sopt.batch_size, sopt.queue_capacity,
              sopt.overload == svc::OverloadPolicy::Shed ? "shed" : "defer");
  std::printf("requests:         %zu over %zu instances (m=%zu, n=%zu)\n",
              requests, kPool, gsps, tasks);
  std::printf("admitted:         %llu\n",
              static_cast<unsigned long long>(stats.submitted));
  std::printf("completed:        %llu (%llu solver runs, %llu ticks)\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.solver_runs),
              static_cast<unsigned long long>(stats.ticks));
  std::printf("shed / deferred:  %llu / %llu\n",
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.deferred));
  if (chaos || stats.retries + stats.expired + stats.failed + stats.restarts >
                   0) {
    std::printf("chaos:            %llu retries, %llu failed, %llu expired, "
                "%llu shard restarts (%llu aborts, %llu stalls)\n",
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(stats.expired),
                static_cast<unsigned long long>(stats.restarts),
                static_cast<unsigned long long>(stats.tick_aborts),
                static_cast<unsigned long long>(stats.stalls));
  }
  if (lost > 0) {
    std::printf("LOST REQUESTS:    %zu (invariant violation!)\n", lost);
  }
  std::printf("throughput:       %.1f requests/s (%.3f s wall)\n",
              elapsed > 0.0 ? static_cast<double>(requests) / elapsed : 0.0,
              elapsed);
  std::printf("queue latency:    p50 %.0f us, p99 %.0f us\n",
              stats.queue_p50_us, stats.queue_p99_us);
  std::printf("solve latency:    p50 %.0f us, p99 %.0f us\n",
              stats.solve_p50_us, stats.solve_p99_us);
  if (stats_every > 0.0) {
    const svc::ServiceHealth h = service.health();
    std::printf("telemetry:        %llu windows closed (%.2fs each)\n",
                static_cast<unsigned long long>(h.windows_closed),
                stats_every);
    for (const obs::SloStatus& s : h.slos) {
      std::printf("slo %-16s %llu/%llu windows violated, budget %.2f -> %s\n",
                  s.name.c_str(),
                  static_cast<unsigned long long>(s.violations),
                  static_cast<unsigned long long>(s.windows),
                  s.budget_consumed, s.breached ? "BREACHED" : "ok");
    }
  }
  for (const svc::RequestHandle& h : handles) {
    if (h.poll() != svc::TicketState::Done) continue;
    const svc::RequestOutcome& out = h.outcome();
    if (!out.result.success) continue;
    std::printf("sample (ticket %llu, shard %zu): VO {",
                static_cast<unsigned long long>(out.ticket), out.shard);
    for (const std::size_t g : out.result.selected.members())
      std::printf(" G%zu", g);
    std::printf(" }  payoff/member %.2f\n", out.result.payoff_share);
    break;
  }
  return (stats.completed > 0 && lost == 0) ? 0 : 1;
}

int cmd_trace_report(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::vector<obs::TraceEvent> events =
      obs::analysis::load_trace_file(argv[0]);
  obs::analysis::ReportOptions opts;
  opts.top_k = std::strtoul(opt(argc, argv, "--top", "12"), nullptr, 10);
  obs::analysis::write_text_report(std::cout, events, opts);
  if (const char* collapsed = opt(argc, argv, "--collapsed", nullptr)) {
    std::ofstream out(collapsed);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", collapsed);
      return 1;
    }
    for (const auto& [stack, self_us] :
         obs::analysis::collapsed_stacks(events)) {
      out << stack << ' ' << self_us << '\n';
    }
    std::printf("\ncollapsed stacks written to %s "
                "(flamegraph.pl / speedscope input)\n",
                collapsed);
  }
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  sim::ExperimentConfig cfg;
  cfg.repetitions =
      std::strtoul(opt(argc, argv, "--reps", "10"), nullptr, 10);
  cfg.seed = std::strtoull(opt(argc, argv, "--seed", "20120910"), nullptr, 10);
  if (const char* sizes = opt(argc, argv, "--sizes", nullptr)) {
    // Strict shared parser (util/env.hpp) — same as the bench harnesses'
    // SVO_SIZES; a CLI typo should fail loudly, not silently fall back.
    const auto parsed = util::parse_size_list(sizes);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "invalid --sizes \"%s\" (want e.g. 256,1024)\n",
                   sizes);
      return 2;
    }
    cfg.task_sizes = *parsed;
  }
  cfg.solver.max_nodes = 20'000;
  const sim::ExperimentRunner runner(cfg);
  const sim::SweepResult sweep = runner.run_sweep();

  util::Table table({"tasks", "TVOF payoff", "RVOF payoff", "TVOF |C|",
                     "RVOF |C|", "TVOF rep", "RVOF rep", "TVOF s", "RVOF s"});
  table.set_precision(4);
  for (const auto& p : sweep.points) {
    table.add_row({static_cast<long long>(p.num_tasks),
                   p.tvof.payoff.mean(), p.rvof.payoff.mean(),
                   p.tvof.vo_size.mean(), p.rvof.vo_size.mean(),
                   p.tvof.avg_reputation.mean(), p.rvof.avg_reputation.mean(),
                   p.tvof.exec_seconds.mean(), p.rvof.exec_seconds.mean()});
  }
  table.write_pretty(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Hoist the global --trace option out of argv *before* subcommand
  // dispatch so positional arguments stay aligned for every command.
  std::string trace_path;
  std::vector<char*> args(argv, argv + argc);
  for (auto it = args.begin(); it != args.end();) {
    if (std::strcmp(*it, "--trace") == 0 && it + 1 != args.end()) {
      trace_path = *(it + 1);
      it = args.erase(it, it + 2);
    } else {
      ++it;
    }
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  std::optional<svo::obs::TraceSession> trace_session;
  if (trace_path.empty()) {
    trace_session.emplace();  // env-driven: SVO_TRACE / SVO_METRICS
  } else {
    trace_session.emplace(trace_path);
  }

  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "trace-gen") return cmd_trace_gen(argc - 2, argv + 2);
    if (cmd == "trace-stats") return cmd_trace_stats(argc - 2, argv + 2);
    if (cmd == "form") return cmd_form(argc - 2, argv + 2);
    if (cmd == "sweep") return cmd_sweep(argc - 2, argv + 2);
    if (cmd == "closed-loop") return cmd_closed_loop(argc - 2, argv + 2);
    if (cmd == "multi") return cmd_multi(argc - 2, argv + 2);
    if (cmd == "faults") return cmd_faults(argc - 2, argv + 2);
    if (cmd == "attacks") return cmd_attacks(argc - 2, argv + 2);
    if (cmd == "stream") return cmd_stream(argc - 2, argv + 2);
    if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
    if (cmd == "trace-report") return cmd_trace_report(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
