/// \file dag_workflow.cpp
/// The paper's future-work scenario: VO formation for a *workflow*
/// (tasks with dependencies) instead of a bag of independent tasks. A
/// synthetic fork-join pipeline is scheduled by the HEFT-style DAG
/// solver plugged into TVOF through the standard solver interface — the
/// mechanism itself is unchanged.
///
///   $ ./dag_workflow [stages] [width]     (default 6 x 8)
#include <cstdio>
#include <cstdlib>

#include "core/tvof.hpp"
#include "ip/dag.hpp"
#include "trust/trust_graph.hpp"
#include "workload/instance_gen.hpp"

int main(int argc, char** argv) {
  using namespace svo;
  const std::size_t stages =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const std::size_t width =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const std::size_t n = stages * width;
  util::Xoshiro256 rng(321);

  // Fork-join pipeline: every task of stage s precedes every task of
  // stage s+1 (a map-reduce-like workflow).
  ip::TaskDag dag(n);
  for (std::size_t s = 0; s + 1 < stages; ++s) {
    for (std::size_t a = 0; a < width; ++a) {
      for (std::size_t b = 0; b < width; ++b) {
        dag.add_dependency(s * width + a, (s + 1) * width + b);
      }
    }
  }
  std::printf("workflow: %zu stages x %zu tasks = %zu tasks, %zu edges\n",
              stages, width, n, dag.num_edges());

  trace::ProgramSpec program;
  program.num_tasks = n;
  program.mean_task_runtime = 2.0 * 3600.0;
  workload::InstanceGenOptions gopts;
  gopts.params.num_gsps = 8;
  workload::GridInstance grid =
      workload::generate_instance(program, gopts, rng);
  // The bag-of-tasks deadline ignores precedence; scale it by the
  // serialization the pipeline introduces (stages run one after another).
  grid.assignment.deadline *= static_cast<double>(stages);
  std::printf("deadline %.0f s (critical-path lower bound %.0f s), "
              "payment %.0f\n\n",
              grid.assignment.deadline,
              dag.critical_path_lower_bound(grid.assignment.time),
              grid.assignment.payment);

  const trust::TrustGraph trust = trust::random_trust_graph(8, 0.3, rng);
  const ip::DagSolverAdapter solver(dag);
  const core::TvofMechanism tvof(solver);
  const core::MechanismResult r = tvof.run(core::FormationRequest{grid.assignment, trust, rng});
  if (!r.success) {
    std::printf("no feasible VO for this workflow\n");
    return 1;
  }
  std::printf("TVOF selected VO of %zu GSPs, payoff/member %.2f, "
              "avg reputation %.4f\n",
              r.selected.size(), r.payoff_share, r.avg_global_reputation);

  // Rebuild and print the winning schedule stage by stage.
  std::vector<std::size_t> original;
  const ip::AssignmentInstance sub = grid.assignment.restrict_to(
      r.selected.mask(8), &original);
  const ip::DagSchedule schedule = solver.schedule(sub);
  std::printf("schedule makespan: %.0f s (deadline %.0f s)\n\n",
              schedule.makespan, sub.deadline);
  for (std::size_t s = 0; s < stages; ++s) {
    double stage_start = 1e300;
    double stage_end = 0.0;
    for (std::size_t a = 0; a < width; ++a) {
      const std::size_t t = s * width + a;
      stage_start = std::min(stage_start, schedule.start[t]);
      stage_end = std::max(stage_end, schedule.finish[t]);
    }
    std::printf("  stage %zu: [%8.0f, %8.0f] s\n", s, stage_start, stage_end);
  }
  return 0;
}
