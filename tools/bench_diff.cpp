/// \file bench_diff.cpp
/// Bench regression gate over BENCH_*.json reports (DESIGN.md §4e).
///
///   bench_diff [--verdict out.json] [--rule PATTERN:DIR[:TOL]]...
///              <baseline> <current>
///
/// <baseline>/<current> are either two report files or two directories;
/// directory mode diffs every BENCH_*.json present in the baseline (a
/// report missing from <current> is itself a regression — a bench that
/// stopped publishing must not silently pass the gate).
///
/// Metrics are flattened to dotted paths ("aggregate.node_reduction",
/// "runs[2].cold_nodes") and judged by the first matching rule; the
/// built-in set (obs::analysis::default_bench_rules) treats wall-clock
/// timings as informational, config echoes and equivalence booleans as
/// exact, and work/quality counters as directional with relative
/// tolerances. --rule prepends custom rules (first match wins), DIR one
/// of lower|higher|exact|info, TOL a relative fraction (default 0).
///
/// Exit status: 0 = within tolerance, 1 = regression(s), 2 = usage /
/// unreadable input. --verdict additionally writes a machine-readable
/// summary (consumed by CI as an artifact).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace {

using namespace svo;
namespace analysis = obs::analysis;
namespace fs = std::filesystem;

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--verdict out.json] "
               "[--rule PATTERN:lower|higher|exact|info[:TOL]]... "
               "<baseline file|dir> <current file|dir>\n");
  return 2;
}

std::optional<obs::JsonValue> load_report(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<obs::JsonValue> v = obs::try_parse_json(buf.str());
  if (!v) {
    std::fprintf(stderr, "bench_diff: %s is not valid JSON\n", path.c_str());
  }
  return v;
}

std::optional<analysis::DiffRule> parse_rule(const std::string& spec) {
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0) return std::nullopt;
  analysis::DiffRule rule;
  rule.pattern = spec.substr(0, c1);
  std::string dir = spec.substr(c1 + 1);
  if (const std::size_t c2 = dir.find(':'); c2 != std::string::npos) {
    try {
      rule.rel_tol = std::stod(dir.substr(c2 + 1));
    } catch (...) {
      return std::nullopt;
    }
    dir.resize(c2);
  }
  if (dir == "lower") {
    rule.dir = analysis::Direction::LowerIsBetter;
  } else if (dir == "higher") {
    rule.dir = analysis::Direction::HigherIsBetter;
  } else if (dir == "exact") {
    rule.dir = analysis::Direction::Exact;
  } else if (dir == "info") {
    rule.dir = analysis::Direction::Informational;
  } else {
    return std::nullopt;
  }
  return rule;
}

const char* status_name(analysis::DeltaStatus s) {
  switch (s) {
    case analysis::DeltaStatus::Ok: return "ok";
    case analysis::DeltaStatus::Improved: return "improved";
    case analysis::DeltaStatus::Regressed: return "REGRESSED";
    case analysis::DeltaStatus::Info: return "info";
    case analysis::DeltaStatus::BaselineOnly: return "MISSING";
    case analysis::DeltaStatus::CurrentOnly: return "new";
  }
  return "?";
}

void print_result(const std::string& name,
                  const analysis::BenchDiffResult& result) {
  std::printf("%s: %s (%zu metric(s), %zu regression(s))\n", name.c_str(),
              result.passed() ? "PASS" : "FAIL", result.deltas.size(),
              result.regressions);
  for (const auto& d : result.deltas) {
    // Quiet gate: full rows only for deltas someone should look at.
    const bool notable = d.status != analysis::DeltaStatus::Ok &&
                         d.status != analysis::DeltaStatus::Info;
    if (!notable) continue;
    std::printf("  %-10s %-44s %14.6g -> %-14.6g (%+.1f%%)\n",
                status_name(d.status), d.path.c_str(), d.baseline, d.current,
                100.0 * d.rel_change);
  }
}

void write_verdict_entry(obs::JsonWriter& w, const std::string& name,
                         const analysis::BenchDiffResult& result) {
  w.begin_object();
  w.kv("report", std::string_view(name));
  w.kv("passed", result.passed());
  w.kv("metrics", result.deltas.size());
  w.kv("regressions", result.regressions);
  w.key("deltas").begin_array();
  for (const auto& d : result.deltas) {
    if (d.status == analysis::DeltaStatus::Ok ||
        d.status == analysis::DeltaStatus::Info) {
      continue;  // verdict lists actionable deltas only
    }
    w.begin_object();
    w.kv("path", std::string_view(d.path));
    w.kv("status", status_name(d.status));
    w.kv("baseline", d.baseline);
    w.kv("current", d.current);
    w.kv("rel_change", d.rel_change);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  std::string verdict_path;
  std::vector<analysis::DiffRule> rules;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verdict") == 0 && i + 1 < argc) {
      verdict_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rule") == 0 && i + 1 < argc) {
      std::optional<analysis::DiffRule> rule = parse_rule(argv[++i]);
      if (!rule) {
        std::fprintf(stderr, "bench_diff: bad --rule \"%s\"\n", argv[i]);
        return usage();
      }
      rules.push_back(std::move(*rule));
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (positional.size() != 2) return usage();
  // Custom rules take precedence over the built-in set.
  for (const analysis::DiffRule& rule : analysis::default_bench_rules()) {
    rules.push_back(rule);
  }

  // Resolve the (baseline, current) report pairs.
  struct ReportPair {
    std::string base_path;
    std::string cur_path;
  };
  std::vector<ReportPair> pairs;
  const fs::path base(positional[0]);
  const fs::path cur(positional[1]);
  std::vector<std::string> missing;
  if (fs::is_directory(base)) {
    if (!fs::is_directory(cur)) {
      std::fprintf(stderr, "bench_diff: %s is a directory but %s is not\n",
                   base.c_str(), cur.c_str());
      return 2;
    }
    std::vector<fs::path> reports;
    for (const auto& entry : fs::directory_iterator(base)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          entry.path().extension() == ".json") {
        reports.push_back(entry.path());
      }
    }
    std::sort(reports.begin(), reports.end());
    if (reports.empty()) {
      std::fprintf(stderr, "bench_diff: no BENCH_*.json under %s\n",
                   base.c_str());
      return 2;
    }
    for (const fs::path& report : reports) {
      const fs::path other = cur / report.filename();
      if (!fs::exists(other)) {
        missing.push_back(report.filename().string());
        continue;
      }
      pairs.push_back({report.string(), other.string()});
    }
  } else {
    pairs.push_back({base.string(), cur.string()});
  }

  bool all_passed = missing.empty();
  for (const std::string& name : missing) {
    std::fprintf(stderr,
                 "bench_diff: %s present in baseline but missing from "
                 "current — FAIL\n",
                 name.c_str());
  }

  std::vector<std::pair<std::string, analysis::BenchDiffResult>> results;
  for (const ReportPair& pair : pairs) {
    const std::optional<obs::JsonValue> base_doc = load_report(pair.base_path);
    const std::optional<obs::JsonValue> cur_doc = load_report(pair.cur_path);
    if (!base_doc || !cur_doc) return 2;
    analysis::BenchDiffResult result =
        analysis::diff_bench_reports(*base_doc, *cur_doc, rules);
    const std::string name = fs::path(pair.cur_path).filename().string();
    print_result(name, result);
    all_passed = all_passed && result.passed();
    results.emplace_back(name, std::move(result));
  }

  if (!verdict_path.empty()) {
    std::ofstream out(verdict_path);
    if (!out) {
      std::fprintf(stderr, "bench_diff: cannot write %s\n",
                   verdict_path.c_str());
      return 2;
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.kv("passed", all_passed);
    w.key("missing_reports").begin_array();
    for (const std::string& name : missing) w.value(std::string_view(name));
    w.end_array();
    w.key("reports").begin_array();
    for (const auto& [name, result] : results) {
      write_verdict_entry(w, name, result);
    }
    w.end_array();
    w.end_object();
    out << '\n';
  }

  std::printf("bench_diff: %s\n", all_passed ? "PASS" : "FAIL");
  return all_passed ? 0 : 1;
}
