#!/usr/bin/env bash
# Run the tier-1 test suite under AddressSanitizer + UBSan.
#
# Uses the `asan-ubsan` CMake preset (build-asan/ tree, RelWithDebInfo,
# -fsanitize=address,undefined with no recovery so any finding fails the
# run). Usage:
#
#   tools/run_sanitizers.sh [--smoke-only] [ctest-args...]
#
# --smoke-only stops after the `smoke` ctest label (the fast slice CI
# runs on every push); without it the full suite follows. Extra
# arguments are forwarded to ctest, e.g.
#   tools/run_sanitizers.sh -R FaultInjector
set -euo pipefail

smoke_only=0
if [[ "${1:-}" == "--smoke-only" ]]; then
  smoke_only=1
  shift
fi

cd "$(dirname "$0")/.."

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$(nproc)"

# halt_on_error keeps UBSan findings fatal even where the default would
# merely print; detect_leaks stays on (default) to catch allocation bugs.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

# Smoke slice first (tests/CMakeLists.txt `smoke`, `smoke_stream`,
# `smoke_service`, `smoke_service_chaos` and `smoke_trust_scale`
# labels): the warm-start, adversarial-trust, streaming-churn,
# formation-service and sparse-trust tests fail in seconds when the
# incremental solve path, the defenses-off equivalence, the churn
# schedule/quarantine invariants, the service's single-shard ≡
# direct-run contract, or the sparse-vs-dense bit-identity break,
# before the full suite spends its minutes. The service tests in
# particular put the sharded submit/cancel/drain paths under
# ASan/UBSan, where ticket lifetime bugs surface; the chaos slice adds
# the retry/restart/cancel-race paths, which cross threads mid-failure
# and are where use-after-free bugs in re-queued tickets would hide;
# the trust-scale slice drives the pooled gather-spmv kernel, the one
# new parallel code path of the sparse engine; the telemetry slice
# (DESIGN.md §4j) runs the tick-loop sampler, the concurrent registry
# stress and the windowed-SLO layer, where data races between
# submit/tick/health threads would surface.
ctest --preset asan-ubsan -L 'smoke|smoke_stream|smoke_service|smoke_service_chaos|smoke_trust_scale|smoke_telemetry' --output-on-failure

if [[ "$smoke_only" == "1" ]]; then
  exit 0
fi

ctest --preset asan-ubsan -j "$(nproc)" "$@"
