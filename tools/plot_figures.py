#!/usr/bin/env python3
"""Plot the paper's figures from the bench harnesses' CSV output.

Usage:
    mkdir -p results
    SVO_CSV=results ./build/bench/bench_fig1_payoff        # etc.
    python3 tools/plot_figures.py results/ out/

Requires matplotlib (not needed for anything else in this repository).
Each CSV written by bench/ has a header row; the mapping below mirrors
DESIGN.md's experiment index.
"""

import csv
import pathlib
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    header, data = rows[0], rows[1:]
    return header, data


def line_plot(ax, header, data, x_col, y_cols, x_log=True):
    xs = [float(r[x_col]) for r in data]
    for col in y_cols:
        ys = [float(r[col]) for r in data]
        ax.plot(xs, ys, marker="o", label=header[col])
    if x_log:
        ax.set_xscale("log", base=2)
    ax.set_xlabel(header[x_col])
    ax.legend()
    ax.grid(True, alpha=0.3)


FIGURES = {
    # csv name -> (y columns, title, ylabel)
    "fig1_payoff.csv": ([1, 2], "Fig. 1: GSP individual payoff", "payoff"),
    "fig2_vo_size.csv": ([1, 2], "Fig. 2: final VO size", "|C|"),
    "fig3_reputation.csv": ([1, 2], "Fig. 3: average global reputation",
                            "avg reputation"),
    "fig9_exec_time.csv": ([1, 2], "Fig. 9: mechanism execution time",
                           "seconds"),
}

ITERATION_TRACES = {
    "fig56_tvof_program_A.csv": "Fig. 5: TVOF iterations (program A)",
    "fig56_tvof_program_B.csv": "Fig. 6: TVOF iterations (program B)",
    "fig78_rvof_program_A.csv": "Fig. 7: RVOF iterations (program A)",
    "fig78_rvof_program_B.csv": "Fig. 8: RVOF iterations (program B)",
}


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib")
        return 1

    csv_dir = pathlib.Path(sys.argv[1])
    out_dir = pathlib.Path(sys.argv[2])
    out_dir.mkdir(parents=True, exist_ok=True)
    produced = 0

    for name, (y_cols, title, ylabel) in FIGURES.items():
        path = csv_dir / name
        if not path.exists():
            continue
        header, data = read_csv(path)
        fig, ax = plt.subplots(figsize=(6, 4))
        line_plot(ax, header, data, 0, y_cols)
        ax.set_title(title)
        ax.set_ylabel(ylabel)
        fig.tight_layout()
        fig.savefig(out_dir / (name.replace(".csv", ".png")), dpi=150)
        plt.close(fig)
        produced += 1

    for name, title in ITERATION_TRACES.items():
        path = csv_dir / name
        if not path.exists():
            continue
        header, data = read_csv(path)
        sizes = [float(r[0]) for r in data if r[1] == "yes"]
        payoff = [float(r[2]) for r in data if r[1] == "yes"]
        rep = [float(r[3]) for r in data if r[1] == "yes"]
        fig, ax = plt.subplots(figsize=(6, 4))
        ax.plot(sizes, payoff, marker="o", color="tab:blue",
                label="payoff share")
        ax.set_xlabel("|C| (VO size; iterations run right to left)")
        ax.set_ylabel("payoff share", color="tab:blue")
        ax.invert_xaxis()
        ax2 = ax.twinx()
        ax2.plot(sizes, rep, marker="s", color="tab:red",
                 label="avg reputation")
        ax2.set_ylabel("avg global reputation", color="tab:red")
        ax.set_title(title)
        fig.tight_layout()
        fig.savefig(out_dir / (name.replace(".csv", ".png")), dpi=150)
        plt.close(fig)
        produced += 1

    print(f"wrote {produced} figures to {out_dir}")
    return 0 if produced else 1


if __name__ == "__main__":
    sys.exit(main())
