#include "game/structure.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace svo::game {
namespace {

TEST(OptimalStructureTest, SuperadditiveGameFormsGrandCoalition) {
  const auto v = [](Coalition s) {
    const double n = static_cast<double>(s.size());
    return n * n;  // strictly superadditive
  };
  const OptimalStructure r = optimal_coalition_structure(5, v);
  ASSERT_EQ(r.partition.size(), 1u);
  EXPECT_EQ(r.partition[0], Coalition::all(5));
  EXPECT_DOUBLE_EQ(r.total_value, 25.0);
}

TEST(OptimalStructureTest, SubadditiveGameStaysSingletons) {
  const auto v = [](Coalition s) {
    return s.empty() ? 0.0 : std::sqrt(static_cast<double>(s.size()));
  };
  const OptimalStructure r = optimal_coalition_structure(4, v);
  EXPECT_EQ(r.partition.size(), 4u);
  EXPECT_NEAR(r.total_value, 4.0, 1e-12);
}

TEST(OptimalStructureTest, PairsGame) {
  // v(S) = 1 iff |S| == 2: optimum pairs everyone up.
  const auto v = [](Coalition s) { return s.size() == 2 ? 1.0 : 0.0; };
  const OptimalStructure r = optimal_coalition_structure(6, v);
  EXPECT_DOUBLE_EQ(r.total_value, 3.0);
  for (const Coalition c : r.partition) EXPECT_EQ(c.size(), 2u);
}

TEST(OptimalStructureTest, PartitionIsExactCover) {
  util::Xoshiro256 rng(3);
  // Random game values; verify structural invariants only.
  std::vector<double> table(1u << 8);
  for (double& x : table) x = rng.uniform(0.0, 10.0);
  table[0] = 0.0;
  const auto v = [&](Coalition s) { return table[s.bits()]; };
  const OptimalStructure r = optimal_coalition_structure(8, v);
  std::uint64_t seen = 0;
  for (const Coalition c : r.partition) {
    EXPECT_FALSE(c.empty());
    EXPECT_EQ(seen & c.bits(), 0u);
    seen |= c.bits();
  }
  EXPECT_EQ(seen, Coalition::all(8).bits());
  EXPECT_NEAR(r.total_value, structure_value(r.partition, v), 1e-9);
}

TEST(OptimalStructureTest, BeatsEveryRandomPartition) {
  util::Xoshiro256 rng(7);
  std::vector<double> table(1u << 7);
  for (double& x : table) x = rng.uniform(0.0, 5.0);
  table[0] = 0.0;
  const auto v = [&](Coalition s) { return table[s.bits()]; };
  const OptimalStructure r = optimal_coalition_structure(7, v);
  // Sample random partitions; none may beat the DP optimum.
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Coalition> parts;
    std::vector<std::size_t> block(7);
    for (std::size_t g = 0; g < 7; ++g) block[g] = rng.index(4);
    for (std::size_t b = 0; b < 4; ++b) {
      Coalition c;
      for (std::size_t g = 0; g < 7; ++g) {
        if (block[g] == b) c = c.with(g);
      }
      if (!c.empty()) parts.push_back(c);
    }
    ASSERT_LE(structure_value(parts, v), r.total_value + 1e-9);
  }
}

TEST(OptimalStructureTest, SinglePlayer) {
  const auto v = [](Coalition s) { return s.empty() ? 0.0 : 2.5; };
  const OptimalStructure r = optimal_coalition_structure(1, v);
  ASSERT_EQ(r.partition.size(), 1u);
  EXPECT_DOUBLE_EQ(r.total_value, 2.5);
}

TEST(OptimalStructureTest, ValidatesArguments) {
  const auto v = [](Coalition) { return 0.0; };
  EXPECT_THROW((void)optimal_coalition_structure(0, v), InvalidArgument);
  EXPECT_THROW((void)optimal_coalition_structure(17, v), InvalidArgument);
}

}  // namespace
}  // namespace svo::game
