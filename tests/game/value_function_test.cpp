#include "game/value_function.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "ip/bnb.hpp"

namespace svo::game {
namespace {

ip::AssignmentInstance four_gsp_instance() {
  ip::AssignmentInstance inst;
  inst.cost = linalg::Matrix::from_rows({{1, 2, 3, 4},
                                         {2, 1, 4, 3},
                                         {3, 4, 1, 2},
                                         {4, 3, 2, 1}});
  inst.time = linalg::Matrix(4, 4, 1.0);
  inst.deadline = 4.0;
  inst.payment = 100.0;
  return inst;
}

/// Counting decorator to verify memoization.
class CountingSolver final : public ip::AssignmentSolver {
 public:
  explicit CountingSolver(const ip::AssignmentSolver& inner) : inner_(inner) {}
  using ip::AssignmentSolver::solve;
  ip::AssignmentSolution solve(
      const ip::AssignmentInstance& inst) const override {
    ++calls;
    return inner_.solve(inst);
  }
  std::string name() const override { return "counting"; }
  mutable std::atomic<int> calls{0};

 private:
  const ip::AssignmentSolver& inner_;
};

TEST(VoValueFunctionTest, EmptyCoalitionIsZero) {
  const ip::AssignmentInstance inst = four_gsp_instance();
  const ip::BnbAssignmentSolver solver;
  const VoValueFunction v(inst, solver);
  EXPECT_DOUBLE_EQ(v.value(Coalition()), 0.0);  // v(emptyset) = 0, eq. (15)
  EXPECT_FALSE(v.evaluate(Coalition()).feasible);
}

TEST(VoValueFunctionTest, GrandCoalitionValueMatchesOptimum) {
  const ip::AssignmentInstance inst = four_gsp_instance();
  const ip::BnbAssignmentSolver solver;
  const VoValueFunction v(inst, solver);
  const CoalitionEvaluation& eval = v.evaluate(Coalition::all(4));
  ASSERT_TRUE(eval.feasible);
  // With the diagonal-cheap cost matrix, the optimum assigns task i to
  // GSP i: total cost 4, v = 100 - 4 = 96.
  EXPECT_DOUBLE_EQ(eval.cost, 4.0);
  EXPECT_DOUBLE_EQ(eval.value, 96.0);
  EXPECT_EQ(eval.mapping, (ip::Assignment{0, 1, 2, 3}));
}

TEST(VoValueFunctionTest, SubcoalitionMappingUsesOriginalIndices) {
  const ip::AssignmentInstance inst = four_gsp_instance();
  const ip::BnbAssignmentSolver solver;
  const VoValueFunction v(inst, solver);
  const CoalitionEvaluation& eval = v.evaluate(Coalition::of({2, 3}));
  ASSERT_TRUE(eval.feasible);
  for (const std::size_t g : eval.mapping) {
    EXPECT_TRUE(g == 2 || g == 3);
  }
  // Optimal: tasks {0,1} forced onto {2,3}: cheapest is 3 (g2,t0... ) —
  // verify against the objective: g2 cost row {3,4,1,2}, g3 {4,3,2,1}:
  // best split assigns t2->2 (1), t3->3 (1), t0->2 (3), t1->3 (3) = 8.
  EXPECT_DOUBLE_EQ(eval.cost, 8.0);
  EXPECT_DOUBLE_EQ(eval.value, 92.0);
}

TEST(VoValueFunctionTest, InfeasibleCoalitionHasZeroValue) {
  ip::AssignmentInstance inst = four_gsp_instance();
  inst.deadline = 1.0;  // singleton coalitions can hold only one task
  const ip::BnbAssignmentSolver solver;
  const VoValueFunction v(inst, solver);
  EXPECT_DOUBLE_EQ(v.value(Coalition::of({0})), 0.0);
  EXPECT_FALSE(v.evaluate(Coalition::of({0})).feasible);
}

TEST(VoValueFunctionTest, MemoizationAvoidsResolving) {
  const ip::AssignmentInstance inst = four_gsp_instance();
  const ip::BnbAssignmentSolver inner;
  const CountingSolver counting(inner);
  const VoValueFunction v(inst, counting);
  (void)v.evaluate(Coalition::all(4));
  (void)v.evaluate(Coalition::all(4));
  (void)v.value(Coalition::all(4));
  EXPECT_EQ(counting.calls.load(), 1);
  EXPECT_EQ(v.evaluations(), 1u);
  (void)v.evaluate(Coalition::of({0, 1}));
  EXPECT_EQ(counting.calls.load(), 2);
}

TEST(VoValueFunctionTest, RejectsForeignPlayers) {
  const ip::AssignmentInstance inst = four_gsp_instance();
  const ip::BnbAssignmentSolver solver;
  const VoValueFunction v(inst, solver);
  EXPECT_THROW((void)v.evaluate(Coalition::of({5})), InvalidArgument);
}

}  // namespace
}  // namespace svo::game
