#include "game/coalition.hpp"

#include <gtest/gtest.h>

namespace svo::game {
namespace {

TEST(CoalitionTest, EmptyAndAll) {
  EXPECT_TRUE(Coalition().empty());
  EXPECT_EQ(Coalition().size(), 0u);
  const Coalition grand = Coalition::all(16);
  EXPECT_EQ(grand.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_TRUE(grand.contains(i));
  EXPECT_FALSE(grand.contains(16));
}

TEST(CoalitionTest, AllWith64Players) {
  const Coalition grand = Coalition::all(64);
  EXPECT_EQ(grand.size(), 64u);
  EXPECT_TRUE(grand.contains(63));
}

TEST(CoalitionTest, AllRejectsTooMany) {
  EXPECT_THROW((void)Coalition::all(65), InvalidArgument);
}

TEST(CoalitionTest, OfAndMembers) {
  const Coalition c = Coalition::of({3, 1, 7});
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.members(), (std::vector<std::size_t>{1, 3, 7}));
  EXPECT_THROW((void)Coalition::of({64}), InvalidArgument);
}

TEST(CoalitionTest, WithAndWithout) {
  Coalition c = Coalition::of({1, 2});
  c = c.with(5);
  EXPECT_TRUE(c.contains(5));
  c = c.without(1);
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.size(), 2u);
  // Removing an absent member is a no-op.
  EXPECT_EQ(c.without(9), c);
}

TEST(CoalitionTest, SetAlgebra) {
  const Coalition a = Coalition::of({0, 1});
  const Coalition b = Coalition::of({1, 2});
  EXPECT_EQ(a.unite(b), Coalition::of({0, 1, 2}));
  EXPECT_EQ(a.intersect(b), Coalition::of({1}));
  EXPECT_TRUE(Coalition::of({1}).is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(b));
}

TEST(CoalitionTest, MaskRoundTrip) {
  const Coalition c = Coalition::of({0, 3});
  const std::vector<bool> mask = c.mask(5);
  EXPECT_EQ(mask, (std::vector<bool>{true, false, false, true, false}));
}

TEST(CoalitionTest, EqualityOnBits) {
  EXPECT_EQ(Coalition::of({1, 2}), Coalition(0b110));
  EXPECT_NE(Coalition::of({1}), Coalition::of({2}));
}

}  // namespace
}  // namespace svo::game
