#include "game/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace svo::game {
namespace {

double glove_game(Coalition s) {
  const double left = s.contains(0) ? 1.0 : 0.0;
  const double right =
      (s.contains(1) ? 1.0 : 0.0) + (s.contains(2) ? 1.0 : 0.0);
  return std::min(left, right);
}

TEST(SampledShapleyTest, ConvergesToExactOnGloveGame) {
  util::Xoshiro256 rng(17);
  const SampledShapley est = shapley_value_sampled(3, glove_game, 20'000, rng);
  EXPECT_NEAR(est.value[0], 2.0 / 3.0, 0.02);
  EXPECT_NEAR(est.value[1], 1.0 / 6.0, 0.02);
  EXPECT_NEAR(est.value[2], 1.0 / 6.0, 0.02);
}

TEST(SampledShapleyTest, EveryPermutationVectorIsEfficient) {
  // Each permutation telescopes to v(grand) - v(empty), so the estimate
  // is *exactly* efficient for any sample size.
  util::Xoshiro256 rng(19);
  const auto v = [](Coalition s) {
    const double n = static_cast<double>(s.size());
    return n * n + (s.contains(2) ? 3.0 : 0.0);
  };
  const SampledShapley est = shapley_value_sampled(5, v, 17, rng);
  double sum = 0.0;
  for (const double x : est.value) sum += x;
  EXPECT_NEAR(sum, v(Coalition::all(5)), 1e-9);
}

TEST(SampledShapleyTest, DummyPlayerGetsZeroWithZeroError) {
  const auto v = [](Coalition s) {
    return (s.contains(0) && s.contains(1)) ? 10.0 : 0.0;
  };
  util::Xoshiro256 rng(23);
  const SampledShapley est = shapley_value_sampled(4, v, 500, rng);
  EXPECT_DOUBLE_EQ(est.value[3], 0.0);
  EXPECT_DOUBLE_EQ(est.standard_error[3], 0.0);
}

TEST(SampledShapleyTest, StandardErrorShrinksWithSamples) {
  const auto v = [](Coalition s) {
    return static_cast<double>(s.size() * s.size());
  };
  util::Xoshiro256 rng_a(29);
  util::Xoshiro256 rng_b(29);
  const SampledShapley small = shapley_value_sampled(6, v, 100, rng_a);
  const SampledShapley large = shapley_value_sampled(6, v, 10'000, rng_b);
  // Average SE must drop roughly like 1/sqrt(100x) = 10x; assert > 3x.
  double se_small = 0.0;
  double se_large = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    se_small += small.standard_error[i];
    se_large += large.standard_error[i];
  }
  EXPECT_GT(se_small, 3.0 * se_large);
}

TEST(SampledShapleyTest, ValidatesArguments) {
  const auto v = [](Coalition) { return 0.0; };
  util::Xoshiro256 rng(1);
  EXPECT_THROW((void)shapley_value_sampled(0, v, 10, rng), InvalidArgument);
  EXPECT_THROW((void)shapley_value_sampled(3, v, 0, rng), InvalidArgument);
}

TEST(BanzhafTest, GloveGameKnownValues) {
  // Swings: player 0 swings in {1},{2},{1,2} -> beta_0 = 3/4;
  // players 1, 2 swing in {0} only -> 1/4.
  const std::vector<double> beta = banzhaf_index(3, glove_game);
  EXPECT_NEAR(beta[0], 0.75, 1e-12);
  EXPECT_NEAR(beta[1], 0.25, 1e-12);
  EXPECT_NEAR(beta[2], 0.25, 1e-12);
}

TEST(BanzhafTest, SymmetricPlayersEqualIndex) {
  const auto v = [](Coalition s) { return s.size() >= 3 ? 1.0 : 0.0; };
  const std::vector<double> beta = banzhaf_index(5, v);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(beta[i], beta[0]);
  }
  EXPECT_GT(beta[0], 0.0);
}

TEST(BanzhafTest, DummyPlayerZero) {
  const auto v = [](Coalition s) { return s.contains(0) ? 4.0 : 0.0; };
  const std::vector<double> beta = banzhaf_index(3, v);
  EXPECT_DOUBLE_EQ(beta[0], 4.0);
  EXPECT_DOUBLE_EQ(beta[1], 0.0);
  EXPECT_DOUBLE_EQ(beta[2], 0.0);
}

TEST(BanzhafTest, ValidatesArguments) {
  const auto v = [](Coalition) { return 0.0; };
  EXPECT_THROW((void)banzhaf_index(0, v), InvalidArgument);
  EXPECT_THROW((void)banzhaf_index(21, v), InvalidArgument);
}

}  // namespace
}  // namespace svo::game
