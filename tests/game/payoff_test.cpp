#include "game/payoff.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace svo::game {
namespace {

TEST(EqualShareTest, DividesEvenly) {
  EXPECT_DOUBLE_EQ(equal_share(90.0, 3), 30.0);
  EXPECT_DOUBLE_EQ(equal_share(90.0, 0), 0.0);
}

TEST(EqualShareVectorTest, MembersGetShareOutsidersZero) {
  const std::vector<double> psi =
      equal_share_vector(Coalition::of({0, 2}), 10.0, 4);
  EXPECT_EQ(psi, (std::vector<double>{5.0, 0.0, 5.0, 0.0}));
}

TEST(EqualShareVectorTest, SharesSumToValue) {
  const Coalition c = Coalition::of({1, 3, 4});
  const std::vector<double> psi = equal_share_vector(c, 17.0, 6);
  double sum = 0.0;
  for (const double p : psi) sum += p;
  EXPECT_NEAR(sum, 17.0, 1e-12);
}

/// Unanimity game u_T: v(S) = 1 iff T subset of S. Shapley value is the
/// uniform split over T — the canonical textbook check.
TEST(ShapleyTest, UnanimityGameSplitsOverCarrier) {
  const Coalition carrier = Coalition::of({0, 2});
  const auto v = [&](Coalition s) {
    return carrier.is_subset_of(s) ? 1.0 : 0.0;
  };
  const std::vector<double> phi = shapley_value(4, v);
  EXPECT_NEAR(phi[0], 0.5, 1e-12);
  EXPECT_NEAR(phi[1], 0.0, 1e-12);
  EXPECT_NEAR(phi[2], 0.5, 1e-12);
  EXPECT_NEAR(phi[3], 0.0, 1e-12);
}

/// Glove game: players {0} hold left gloves, {1, 2} right gloves;
/// v(S) = #matched pairs. Known Shapley values: (2/3, 1/6, 1/6).
TEST(ShapleyTest, GloveGameKnownValues) {
  const auto v = [](Coalition s) {
    const double left = s.contains(0) ? 1.0 : 0.0;
    const double right =
        (s.contains(1) ? 1.0 : 0.0) + (s.contains(2) ? 1.0 : 0.0);
    return std::min(left, right);
  };
  const std::vector<double> phi = shapley_value(3, v);
  EXPECT_NEAR(phi[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(phi[1], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(phi[2], 1.0 / 6.0, 1e-12);
}

TEST(ShapleyTest, EfficiencyAxiom) {
  // Random-ish superadditive game: v(S) = |S|^2.
  const auto v = [](Coalition s) {
    const double n = static_cast<double>(s.size());
    return n * n;
  };
  const std::vector<double> phi = shapley_value(5, v);
  double sum = 0.0;
  for (const double p : phi) sum += p;
  EXPECT_NEAR(sum, 25.0, 1e-9);  // v(grand) = 25
}

TEST(ShapleyTest, SymmetryAxiom) {
  // All players symmetric: equal split of v(grand).
  const auto v = [](Coalition s) { return s.size() >= 2 ? 12.0 : 0.0; };
  const std::vector<double> phi = shapley_value(4, v);
  for (const double p : phi) EXPECT_NEAR(p, 3.0, 1e-12);
}

TEST(ShapleyTest, DummyPlayerAxiom) {
  // Player 2 contributes nothing to any coalition.
  const auto v = [](Coalition s) {
    return (s.contains(0) && s.contains(1)) ? 8.0 : 0.0;
  };
  const std::vector<double> phi = shapley_value(3, v);
  EXPECT_NEAR(phi[2], 0.0, 1e-12);
  EXPECT_NEAR(phi[0], 4.0, 1e-12);
  EXPECT_NEAR(phi[1], 4.0, 1e-12);
}

TEST(ShapleyTest, RejectsOutOfRangeM) {
  const auto v = [](Coalition) { return 0.0; };
  EXPECT_THROW((void)shapley_value(0, v), InvalidArgument);
  EXPECT_THROW((void)shapley_value(21, v), InvalidArgument);
}

}  // namespace
}  // namespace svo::game
