#include "game/core_solution.hpp"

#include <gtest/gtest.h>

namespace svo::game {
namespace {

/// Three-player majority game: v(S) = 1 iff |S| >= 2. Famous empty core.
double majority_game(Coalition s) { return s.size() >= 2 ? 1.0 : 0.0; }

/// Additive game: v(S) = |S| — core contains exactly the vector of ones.
double additive_game(Coalition s) { return static_cast<double>(s.size()); }

/// Convex game: v(S) = |S|^2 — nonempty core (convex games always have one).
double convex_game(Coalition s) {
  const double n = static_cast<double>(s.size());
  return n * n;
}

TEST(ImputationTest, ChecksRationalityAndEfficiency) {
  EXPECT_TRUE(is_imputation({1.0, 1.0, 1.0}, additive_game));
  // Inefficient: sums to 2 != v(grand) = 3.
  EXPECT_FALSE(is_imputation({1.0, 1.0, 0.0}, additive_game));
  // Individually irrational: player 0 below v({0}) = 1.
  EXPECT_FALSE(is_imputation({0.5, 1.5, 1.0}, additive_game));
}

TEST(InCoreTest, AdditiveGameUniqueCorePoint) {
  EXPECT_TRUE(in_core({1.0, 1.0, 1.0}, additive_game));
  EXPECT_FALSE(in_core({0.5, 1.5, 1.0}, additive_game));  // {0} blocks
}

TEST(InCoreTest, MajorityGameHasNoCorePoint) {
  // Any efficient split of 1 leaves some pair with less than 1.
  EXPECT_FALSE(in_core({1.0 / 3, 1.0 / 3, 1.0 / 3}, majority_game));
  EXPECT_FALSE(in_core({0.5, 0.5, 0.0}, majority_game));
}

TEST(FindCoreImputationTest, EmptyCoreDetected) {
  EXPECT_FALSE(find_core_imputation(3, majority_game).has_value());
}

TEST(FindCoreImputationTest, AdditiveGameFound) {
  const auto psi = find_core_imputation(3, additive_game);
  ASSERT_TRUE(psi.has_value());
  EXPECT_TRUE(in_core(*psi, additive_game));
  for (const double p : *psi) EXPECT_NEAR(p, 1.0, 1e-6);
}

TEST(FindCoreImputationTest, ConvexGameFound) {
  const auto psi = find_core_imputation(4, convex_game);
  ASSERT_TRUE(psi.has_value());
  EXPECT_TRUE(in_core(*psi, convex_game));
}

TEST(FindCoreImputationTest, SinglePlayerTrivial) {
  const auto psi = find_core_imputation(1, additive_game);
  ASSERT_TRUE(psi.has_value());
  EXPECT_NEAR((*psi)[0], 1.0, 1e-9);
}

TEST(CoreHelpersTest, GuardRails) {
  const auto v = [](Coalition) { return 0.0; };
  EXPECT_THROW((void)is_imputation({}, v), InvalidArgument);
  EXPECT_THROW((void)find_core_imputation(0, v), InvalidArgument);
  EXPECT_THROW((void)find_core_imputation(17, v), InvalidArgument);
}

}  // namespace
}  // namespace svo::game
