#include "game/pareto.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace svo::game {
namespace {

TEST(DominatesTest, StrictAndWeakCases) {
  EXPECT_TRUE(dominates({2.0, 2.0, 0}, {1.0, 1.0, 0}));
  EXPECT_TRUE(dominates({2.0, 1.0, 0}, {1.0, 1.0, 0}));  // >= in rep, > payoff
  EXPECT_FALSE(dominates({1.0, 1.0, 0}, {1.0, 1.0, 0}));  // equal points
  EXPECT_FALSE(dominates({2.0, 0.5, 0}, {1.0, 1.0, 0}));  // trade-off
}

TEST(ParetoFrontTest, ChainKeepsOnlyTop) {
  const std::vector<BicriteriaPoint> pts{
      {1.0, 1.0, 0}, {2.0, 2.0, 1}, {3.0, 3.0, 2}};
  EXPECT_EQ(pareto_front(pts), (std::vector<std::size_t>{2}));
}

TEST(ParetoFrontTest, AntichainKeepsAll) {
  const std::vector<BicriteriaPoint> pts{
      {3.0, 1.0, 0}, {2.0, 2.0, 1}, {1.0, 3.0, 2}};
  EXPECT_EQ(pareto_front(pts), (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ParetoFrontTest, DuplicatesAllSurvive) {
  const std::vector<BicriteriaPoint> pts{
      {2.0, 2.0, 0}, {2.0, 2.0, 1}, {1.0, 1.0, 2}};
  EXPECT_EQ(pareto_front(pts), (std::vector<std::size_t>{0, 1}));
}

TEST(ParetoFrontTest, MixedSet) {
  const std::vector<BicriteriaPoint> pts{
      {5.0, 0.1, 0},   // front (payoff max)
      {4.0, 0.3, 1},   // front
      {4.0, 0.2, 2},   // dominated by 1
      {1.0, 0.9, 3},   // front (rep max)
      {0.5, 0.5, 4},   // dominated by 3
  };
  EXPECT_EQ(pareto_front(pts), (std::vector<std::size_t>{0, 1, 3}));
}

TEST(ParetoFrontTest, EmptyInput) {
  EXPECT_TRUE(pareto_front({}).empty());
}

TEST(IsParetoOptimalTest, MatchesFront) {
  const std::vector<BicriteriaPoint> pts{
      {5.0, 0.1, 0}, {4.0, 0.3, 1}, {4.0, 0.2, 2}};
  EXPECT_TRUE(is_pareto_optimal(pts, 0));
  EXPECT_TRUE(is_pareto_optimal(pts, 1));
  EXPECT_FALSE(is_pareto_optimal(pts, 2));
  EXPECT_THROW((void)is_pareto_optimal(pts, 9), svo::InvalidArgument);
}

}  // namespace
}  // namespace svo::game
