/// Structural properties of the VO game (G, v) itself — facts about
/// eq. (15) that the paper uses implicitly or that explain its remarks:
///  - v need NOT be monotone: constraint (13) forces every member to
///    receive work, so adding an expensive GSP can *reduce* v(C);
///  - v need not be superadditive, which is why the core can be empty
///    and the grand coalition need not form (Section II-C).
#include <gtest/gtest.h>

#include "game/value_function.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::game {
namespace {

TEST(VoGamePropertiesTest, AddingExpensiveGspCanReduceValue) {
  // Two cheap GSPs cover both tasks; GSP 2 costs 500 per task. With
  // constraint (13), {0,1,2} must route a task through GSP 2.
  ip::AssignmentInstance inst;
  inst.cost = linalg::Matrix::from_rows(
      {{1, 1, 1}, {1, 1, 1}, {500, 500, 500}});
  inst.time = linalg::Matrix(3, 3, 1.0);
  inst.deadline = 3.0;
  inst.payment = 10'000.0;
  const ip::BnbAssignmentSolver solver;
  const VoValueFunction v(inst, solver);
  const double small = v.value(Coalition::of({0, 1}));
  const double large = v.value(Coalition::of({0, 1, 2}));
  EXPECT_GT(small, large);  // non-monotone: more members, less value
}

TEST(VoGamePropertiesTest, NonMonotonicityExistsInRandomInstances) {
  // The effect is generic, not hand-crafted: across random instances we
  // must find coalitions where adding a member lowers the value.
  util::Xoshiro256 rng(31);
  const ip::BnbAssignmentSolver solver;
  bool found = false;
  for (int trial = 0; trial < 10 && !found; ++trial) {
    const ip::AssignmentInstance inst =
        ip::testing::random_instance(4, 8, rng);
    const VoValueFunction v(inst, solver);
    const Coalition grand = Coalition::all(4);
    for (std::uint64_t s = 1; s < grand.bits() && !found; ++s) {
      const Coalition c(s);
      for (std::size_t g = 0; g < 4 && !found; ++g) {
        if (c.contains(g)) continue;
        if (v.evaluate(c).feasible && v.evaluate(c.with(g)).feasible) {
          found = v.value(c.with(g)) < v.value(c) - 1e-9;
        }
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(VoGamePropertiesTest, SuperadditivityCanFail) {
  // Disjoint coalitions cannot both execute the single program, but the
  // game-theoretic check is about v: find A, B disjoint with
  // v(A u B) < v(A) + v(B) — which eq. (15) permits freely because both
  // sides evaluate the same single payment P.
  util::Xoshiro256 rng(37);
  const ip::BnbAssignmentSolver solver;
  bool found = false;
  for (int trial = 0; trial < 10 && !found; ++trial) {
    const ip::AssignmentInstance inst =
        ip::testing::random_instance(4, 8, rng);
    const VoValueFunction v(inst, solver);
    for (std::uint64_t a = 1; a < 15 && !found; ++a) {
      for (std::uint64_t b = 1; b < 15 && !found; ++b) {
        if ((a & b) != 0) continue;
        const double va = v.value(Coalition(a));
        const double vb = v.value(Coalition(b));
        const double vu = v.value(Coalition(a | b));
        if (va > 0.0 && vb > 0.0) {
          found = vu < va + vb - 1e-9;
        }
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(VoGamePropertiesTest, ValueBoundedByPayment) {
  util::Xoshiro256 rng(41);
  const ip::BnbAssignmentSolver solver;
  const ip::AssignmentInstance inst = ip::testing::random_instance(4, 8, rng);
  const VoValueFunction v(inst, solver);
  for (std::uint64_t s = 0; s <= 15; ++s) {
    const double val = v.value(Coalition(s));
    EXPECT_GE(val, 0.0);             // infeasible -> 0, feasible -> P - C >= 0
    EXPECT_LE(val, inst.payment);    // costs are non-negative
  }
}

}  // namespace
}  // namespace svo::game
