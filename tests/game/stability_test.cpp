#include "game/stability.hpp"

#include <gtest/gtest.h>

#include <map>

namespace svo::game {
namespace {

TEST(WeaklyPrefersTest, Semantics) {
  EXPECT_TRUE(weakly_prefers({2.0, 0.5, 0}, {1.0, 0.5, 0}));
  EXPECT_TRUE(weakly_prefers({1.0, 0.5, 0}, {1.0, 0.5, 0}));  // indifferent
  EXPECT_FALSE(weakly_prefers({2.0, 0.4, 0}, {1.0, 0.5, 0}));
  EXPECT_FALSE(weakly_prefers({0.9, 0.9, 0}, {1.0, 0.5, 0}));
}

CoalitionScorer scorer_from_map(
    std::map<std::uint64_t, BicriteriaPoint> table) {
  return [table = std::move(table)](Coalition c) {
    const auto it = table.find(c.bits());
    if (it == table.end()) return BicriteriaPoint{0.0, 0.0, c.bits()};
    return it->second;
  };
}

TEST(IndividualStabilityTest, StableWhenEveryDepartureHurts) {
  // {0,1,2}: any 2-member sub-VO has lower payoff.
  const auto scorer = scorer_from_map({
      {Coalition::of({0, 1, 2}).bits(), {10.0, 0.3, 0}},
      {Coalition::of({0, 1}).bits(), {8.0, 0.5, 0}},   // rep up, payoff down
      {Coalition::of({0, 2}).bits(), {9.0, 0.2, 0}},   // both down-ish
      {Coalition::of({1, 2}).bits(), {10.0, 0.2, 0}},  // rep down
  });
  EXPECT_TRUE(individually_stable(Coalition::of({0, 1, 2}), scorer));
  EXPECT_EQ(find_blocking_departure(Coalition::of({0, 1, 2}), scorer),
            SIZE_MAX);
}

TEST(IndividualStabilityTest, UnstableWhenSomeDepartureWeaklyImproves) {
  // Removing player 2 improves payoff and reputation for the rest.
  const auto scorer = scorer_from_map({
      {Coalition::of({0, 1, 2}).bits(), {10.0, 0.3, 0}},
      {Coalition::of({0, 1}).bits(), {12.0, 0.4, 0}},
      {Coalition::of({0, 2}).bits(), {1.0, 0.1, 0}},
      {Coalition::of({1, 2}).bits(), {1.0, 0.1, 0}},
  });
  EXPECT_FALSE(individually_stable(Coalition::of({0, 1, 2}), scorer));
  EXPECT_EQ(find_blocking_departure(Coalition::of({0, 1, 2}), scorer), 2u);
}

TEST(IndividualStabilityTest, IndifferenceCountsAsWeakPreference) {
  const auto scorer = scorer_from_map({
      {Coalition::of({0, 1}).bits(), {5.0, 0.5, 0}},
      {Coalition::of({0}).bits(), {5.0, 0.5, 0}},  // identical point
      {Coalition::of({1}).bits(), {0.0, 0.0, 0}},
  });
  // Departure of 1 leaves {0} exactly as well off -> weakly preferred ->
  // unstable per Definition 1's weak inequality.
  EXPECT_FALSE(individually_stable(Coalition::of({0, 1}), scorer));
}

TEST(IndividualStabilityTest, SingletonAndEmptyTriviallyStable) {
  const auto scorer = scorer_from_map({});
  EXPECT_TRUE(individually_stable(Coalition::of({3}), scorer));
  EXPECT_TRUE(individually_stable(Coalition(), scorer));
}

}  // namespace
}  // namespace svo::game
