/// The service determinism contract (service.hpp): a ticket's outcome is
/// a pure function of its request, never of thread interleaving.
/// Pinned here:
///   - single-shard service ≡ direct core run(), bit for bit, RNG probe
///     included, and submit() never advances the caller's generator;
///   - cancel-before-dispatch means the solver never ran;
///   - queue-full shed/defer accounting is exact (paused service gives a
///     deterministic full queue);
///   - same-seed multi-shard replays are per-ticket identical;
///   - ServiceOptions validation throws typed InvalidArgument.
#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"
#include "trust/trust_graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::svc {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Fixture make_fixture(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(m, n, rng);
  f.trust = trust::random_trust_graph(m, /*p=*/0.4, rng);
  return f;
}

/// Exact equality over every functional MechanismResult field
/// (elapsed_seconds is wall clock and legitimately differs).
void expect_bit_identical(const core::MechanismResult& a,
                          const core::MechanismResult& b,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.selected.bits(), b.selected.bits());
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.payoff_share, b.payoff_share);
  EXPECT_EQ(a.avg_global_reputation, b.avg_global_reputation);
  EXPECT_EQ(a.global_reputation, b.global_reputation);
  EXPECT_EQ(a.stats.nodes, b.stats.nodes);
  EXPECT_EQ(a.stats.status, b.stats.status);
  ASSERT_EQ(a.journal.size(), b.journal.size());
  for (std::size_t i = 0; i < a.journal.size(); ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    EXPECT_EQ(a.journal[i].coalition.bits(), b.journal[i].coalition.bits());
    EXPECT_EQ(a.journal[i].feasible, b.journal[i].feasible);
    EXPECT_EQ(a.journal[i].cost, b.journal[i].cost);
    EXPECT_EQ(a.journal[i].removed_gsp, b.journal[i].removed_gsp);
    EXPECT_EQ(a.journal[i].stats.nodes, b.journal[i].stats.nodes);
  }
}

TEST(ServiceOptionsTest, ValidRangesPass) {
  ServiceOptions opt;
  EXPECT_NO_THROW(opt.validate());
  opt.shards = 8;
  opt.queue_capacity = 8;
  opt.batch_size = 8;
  EXPECT_NO_THROW(opt.validate());
}

TEST(ServiceOptionsTest, ZeroShardsThrows) {
  ServiceOptions opt;
  opt.shards = 0;
  EXPECT_THROW(opt.validate(), InvalidArgument);
}

TEST(ServiceOptionsTest, ZeroQueueCapacityThrows) {
  ServiceOptions opt;
  opt.queue_capacity = 0;
  EXPECT_THROW(opt.validate(), InvalidArgument);
}

TEST(ServiceOptionsTest, ZeroBatchSizeThrows) {
  ServiceOptions opt;
  opt.batch_size = 0;
  EXPECT_THROW(opt.validate(), InvalidArgument);
}

TEST(ServiceOptionsTest, BatchAboveCapacityThrows) {
  ServiceOptions opt;
  opt.queue_capacity = 4;
  opt.batch_size = 5;
  EXPECT_THROW(opt.validate(), InvalidArgument);
}

TEST(ServiceOptionsTest, ConstructorValidates) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  ServiceOptions opt;
  opt.shards = 0;
  EXPECT_THROW(FormationService(tvof, opt), InvalidArgument);
}

TEST(TicketStateTest, TerminalPartitionAndNames) {
  EXPECT_FALSE(is_terminal(TicketState::Queued));
  EXPECT_FALSE(is_terminal(TicketState::Running));
  EXPECT_TRUE(is_terminal(TicketState::Done));
  EXPECT_TRUE(is_terminal(TicketState::Cancelled));
  EXPECT_TRUE(is_terminal(TicketState::Shed));
  EXPECT_TRUE(is_terminal(TicketState::Deferred));
  EXPECT_STREQ(to_string(TicketState::Done), "done");
  EXPECT_STREQ(to_string(TicketState::Shed), "shed");
}

/// The headline equivalence: a single-shard service produces the exact
/// MechanismResult a direct synchronous run() produces — same VO, same
/// cost, same journal, same solver node counts — and the RNG probe
/// proves the service consumed randomness identically.
TEST(FormationServiceTest, SingleShardMatchesDirectRunBitForBit) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(6, 16, 0x5E21);

  util::Xoshiro256 rng_direct(99);
  const core::MechanismResult direct =
      tvof.run(core::FormationRequest{f.instance, f.trust, rng_direct});
  const std::uint64_t probe_direct = rng_direct();

  util::Xoshiro256 rng_svc(99);
  const std::uint64_t caller_state_probe = [&] {
    util::Xoshiro256 copy = rng_svc;  // peek without advancing
    return copy();
  }();
  FormationService service(tvof, ServiceOptions{});
  RequestHandle h =
      service.submit(core::FormationRequest{f.instance, f.trust, rng_svc});
  EXPECT_EQ(h.wait(), TicketState::Done);
  const RequestOutcome& out = h.outcome();

  ASSERT_EQ(out.state, TicketState::Done);
  expect_bit_identical(direct, out.result, "single shard vs direct");
  // Identical RNG consumption: the first post-run draw matches.
  EXPECT_EQ(out.rng_probe, probe_direct);
  // submit() snapshots state; the caller's generator was never advanced.
  EXPECT_EQ(rng_svc(), caller_state_probe);
}

/// Candidate pools and warm-start policy ride through the service
/// unchanged.
TEST(FormationServiceTest, RestrictedPoolMatchesDirectRun) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(6, 14, 0xB007);
  const game::Coalition pool =
      game::Coalition::all(f.instance.num_gsps()).without(1);

  util::Xoshiro256 rng_direct(7);
  const core::MechanismResult direct = tvof.run(
      core::FormationRequest{f.instance, f.trust, rng_direct, pool,
                             core::WarmStartPolicy::Off});

  util::Xoshiro256 rng_svc(7);
  FormationService service(tvof);
  RequestHandle h =
      service.submit(core::FormationRequest{f.instance, f.trust, rng_svc, pool,
                                            core::WarmStartPolicy::Off});
  ASSERT_EQ(h.wait(), TicketState::Done);
  const RequestOutcome& out = h.outcome();
  expect_bit_identical(direct, out.result, "restricted pool");
}

/// cancel() racing nothing (paused service) always wins, and a cancelled
/// ticket's solver never runs: solver_runs stays 0 and the outcome
/// carries no journal.
TEST(FormationServiceTest, CancelBeforeDispatchNeverRunsSolver) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 3);

  ServiceOptions opt;
  opt.start_paused = true;
  FormationService service(tvof, opt);
  util::Xoshiro256 rng(1);
  RequestHandle h =
      service.submit(core::FormationRequest{f.instance, f.trust, rng});
  EXPECT_EQ(h.poll(), TicketState::Queued);
  EXPECT_TRUE(h.cancel());
  EXPECT_EQ(h.poll(), TicketState::Cancelled);
  EXPECT_FALSE(h.cancel());  // second cancel lost: already terminal
  service.resume();
  service.drain();

  EXPECT_EQ(h.wait(), TicketState::Cancelled);
  const RequestOutcome& out = h.outcome();
  EXPECT_EQ(out.state, TicketState::Cancelled);
  EXPECT_TRUE(out.result.journal.empty());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.solver_runs, 0u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.submitted, 1u);
}

TEST(FormationServiceTest, CancelAfterCompletionReturnsFalse) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 4);
  FormationService service(tvof);
  util::Xoshiro256 rng(2);
  RequestHandle h =
      service.submit(core::FormationRequest{f.instance, f.trust, rng});
  h.wait();
  EXPECT_FALSE(h.cancel());
  EXPECT_EQ(h.poll(), TicketState::Done);
}

/// Queue-full accounting is exact: capacity C admits exactly C tickets;
/// every further submit is shed, terminally and immediately, and the
/// admitted ones all still complete.
TEST(FormationServiceTest, QueueFullShedAccountingIsExact) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 8);

  ServiceOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 4;
  opt.batch_size = 2;
  opt.start_paused = true;  // nothing drains: the queue genuinely fills
  FormationService service(tvof, opt);

  std::vector<RequestHandle> handles;
  for (std::size_t i = 0; i < 7; ++i) {
    util::Xoshiro256 rng(100 + i);
    handles.push_back(
        service.submit(core::FormationRequest{f.instance, f.trust, rng}));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(handles[i].poll(), TicketState::Queued) << "handle " << i;
  }
  for (std::size_t i = 4; i < 7; ++i) {
    EXPECT_EQ(handles[i].poll(), TicketState::Shed) << "handle " << i;
    EXPECT_TRUE(handles[i].done());
    // Shed is decided at submit: wait() returns without blocking and the
    // outcome carries no result.
    EXPECT_EQ(handles[i].wait(), TicketState::Shed);
    EXPECT_TRUE(handles[i].outcome().result.journal.empty());
  }

  service.resume();
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.shed, 3u);
  EXPECT_EQ(stats.deferred, 0u);
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.solver_runs, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(handles[i].poll(), TicketState::Done) << "handle " << i;
  }
  // Batch drains of 2 over 4 tickets: at least two ticks ran.
  EXPECT_GE(stats.ticks, 2u);
}

TEST(FormationServiceTest, QueueFullDefersUnderDeferPolicy) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 9);

  ServiceOptions opt;
  opt.queue_capacity = 2;
  opt.batch_size = 2;
  opt.overload = OverloadPolicy::Defer;
  opt.start_paused = true;
  FormationService service(tvof, opt);

  std::vector<RequestHandle> handles;
  for (std::size_t i = 0; i < 3; ++i) {
    util::Xoshiro256 rng(i);
    handles.push_back(
        service.submit(core::FormationRequest{f.instance, f.trust, rng}));
  }
  EXPECT_EQ(handles[2].poll(), TicketState::Deferred);
  service.resume();
  // Deferred means retryable: after capacity opens up, an identical
  // re-submission is admitted and completes.
  service.drain();
  util::Xoshiro256 rng_retry(2);
  RequestHandle retried =
      service.submit(core::FormationRequest{f.instance, f.trust, rng_retry});
  EXPECT_EQ(retried.wait(), TicketState::Done);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.deferred, 1u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
}

/// Same-seed replay across a multi-shard, multi-thread service: every
/// ticket's outcome (selection, cost, RNG probe, shard route) is
/// bit-identical between two runs, regardless of interleaving.
TEST(FormationServiceTest, MultiShardSameSeedReplayIsIdentical) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(6, 14, 0x4E44);
  constexpr std::size_t kRequests = 12;

  ServiceOptions opt;
  opt.shards = 4;
  opt.threads = 4;
  opt.batch_size = 2;

  auto run_once = [&] {
    std::vector<RequestOutcome> outs;
    FormationService service(tvof, opt);
    std::vector<RequestHandle> handles;
    for (std::size_t i = 0; i < kRequests; ++i) {
      util::Xoshiro256 rng(1000 + i * 17);
      handles.push_back(
          service.submit(core::FormationRequest{f.instance, f.trust, rng}));
    }
    service.drain();
    for (const RequestHandle& h : handles) {
      h.wait();
      outs.push_back(h.outcome());
    }
    return outs;
  };

  const std::vector<RequestOutcome> first = run_once();
  const std::vector<RequestOutcome> second = run_once();
  ASSERT_EQ(first.size(), kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("ticket " + std::to_string(i));
    EXPECT_EQ(first[i].ticket, second[i].ticket);
    EXPECT_EQ(first[i].shard, second[i].shard);
    EXPECT_EQ(first[i].state, TicketState::Done);
    EXPECT_EQ(second[i].state, TicketState::Done);
    EXPECT_EQ(first[i].rng_probe, second[i].rng_probe);
    expect_bit_identical(first[i].result, second[i].result, "replay");
  }
}

/// A multi-shard run agrees with direct synchronous runs request by
/// request: sharding partitions work, it never changes outcomes.
TEST(FormationServiceTest, MultiShardMatchesDirectRunPerRequest) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(6, 14, 0xD1CE);
  constexpr std::size_t kRequests = 8;

  ServiceOptions opt;
  opt.shards = 3;
  opt.threads = 3;
  FormationService service(tvof, opt);
  std::vector<RequestHandle> handles;
  for (std::size_t i = 0; i < kRequests; ++i) {
    util::Xoshiro256 rng(500 + i);
    handles.push_back(
        service.submit(core::FormationRequest{f.instance, f.trust, rng}));
  }
  service.drain();
  for (std::size_t i = 0; i < kRequests; ++i) {
    util::Xoshiro256 rng(500 + i);
    const core::MechanismResult direct =
        tvof.run(core::FormationRequest{f.instance, f.trust, rng});
    ASSERT_EQ(handles[i].wait(), TicketState::Done);
    const RequestOutcome& out = handles[i].outcome();
    expect_bit_identical(direct, out.result,
                         "request " + std::to_string(i));
    EXPECT_EQ(out.rng_probe, rng());
  }
}

TEST(FormationServiceTest, RoutingKeyPartitionsDeterministically) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 11);
  ServiceOptions opt;
  opt.shards = 4;
  opt.start_paused = true;  // routing is decided at submit; no need to run
  FormationService service(tvof, opt);
  util::Xoshiro256 rng(1);
  for (std::size_t key = 0; key < 9; ++key) {
    RequestHandle h = service.submit(
        core::FormationRequest{f.instance, f.trust, rng}, /*routing_key=*/key);
    EXPECT_EQ(h.shard(), key % 4) << "key " << key;
  }
  // Default routing: dense ticket ids round-robin the shards.
  RequestHandle a =
      service.submit(core::FormationRequest{f.instance, f.trust, rng});
  RequestHandle b =
      service.submit(core::FormationRequest{f.instance, f.trust, rng});
  EXPECT_EQ(a.shard(), a.id() % 4);
  EXPECT_EQ(b.shard(), b.id() % 4);
  EXPECT_EQ(b.id(), a.id() + 1);
  service.resume();
  service.drain();
}

TEST(FormationServiceTest, DrainWhilePausedThrows) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  ServiceOptions opt;
  opt.start_paused = true;
  FormationService service(tvof, opt);
  EXPECT_THROW(service.drain(), InvalidArgument);
  service.resume();
  EXPECT_NO_THROW(service.drain());  // nothing outstanding
}

/// Handles share state with the service but outlive it: outcomes stay
/// readable after destruction, and the destructor itself drains (every
/// admitted ticket resolves even when the service dies paused).
TEST(FormationServiceTest, HandlesOutliveTheService) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 21);
  std::vector<RequestHandle> handles;
  {
    ServiceOptions opt;
    opt.start_paused = true;  // dtor must resume + drain on its own
    FormationService service(tvof, opt);
    for (std::size_t i = 0; i < 3; ++i) {
      util::Xoshiro256 rng(i);
      handles.push_back(
          service.submit(core::FormationRequest{f.instance, f.trust, rng}));
    }
  }
  for (const RequestHandle& h : handles) {
    EXPECT_EQ(h.poll(), TicketState::Done);
    EXPECT_TRUE(h.outcome().result.success);
  }
}

/// The service's local metric registry exposes the per-shard counters
/// with stable names, and the totals agree with stats().
TEST(FormationServiceTest, MetricsRegistryCarriesPerShardCounters) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 31);
  ServiceOptions opt;
  opt.shards = 2;
  FormationService service(tvof, opt);
  std::vector<RequestHandle> handles;
  for (std::size_t i = 0; i < 4; ++i) {
    util::Xoshiro256 rng(i);
    handles.push_back(
        service.submit(core::FormationRequest{f.instance, f.trust, rng}));
  }
  service.drain();
  const obs::MetricRegistry& reg = service.metrics();
  const std::uint64_t shard0 = reg.counter_value("svc.shard0.solved");
  const std::uint64_t shard1 = reg.counter_value("svc.shard1.solved");
  EXPECT_EQ(shard0 + shard1, 4u);
  EXPECT_EQ(shard0, 2u);  // dense ids round-robin two shards evenly
  EXPECT_EQ(shard1, 2u);
  EXPECT_EQ(reg.counter_value("svc.ticks"),
            reg.counter_value("svc.shard0.ticks") +
                reg.counter_value("svc.shard1.ticks"));
  EXPECT_EQ(service.stats().solver_runs, 4u);
  // Latency histograms observed every completed ticket.
  EXPECT_GT(service.stats().solve_p50_us, 0.0);
}

}  // namespace
}  // namespace svo::svc
