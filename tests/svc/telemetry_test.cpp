/// Continuous telemetry on the formation service (DESIGN.md §4j).
/// Pinned here:
///   - telemetry options validate (window/capacity/SLO/JSONL coupling);
///   - telemetry OFF and ON produce bit-identical per-ticket outcomes,
///     RNG probes included — the observer-never-actor invariant;
///   - health() answers without telemetry (cumulative quantiles) and
///     with it (windowed rollup, windows_closed, SLO verdicts);
///   - the per-shard queue-depth gauges track admissions/drains and
///     return to zero once the service is drained;
///   - the JSONL sink receives one valid object per closed window.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "obs/slo.hpp"
#include "svc/service.hpp"
#include "tests/ip/test_instances.hpp"
#include "trust/trust_graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::svc {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Fixture make_fixture(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(m, n, rng);
  f.trust = trust::random_trust_graph(m, /*p=*/0.4, rng);
  return f;
}

std::vector<obs::SloObjective> default_slos() {
  obs::SloObjective queue;
  queue.name = "queue_p99_us";
  queue.kind = obs::SloKind::QuantileBelow;
  queue.metric = "svc.queue_us";
  queue.threshold = 60'000'000.0;  // one minute: never violated here
  obs::SloObjective expired;
  expired.name = "expired_zero";
  expired.kind = obs::SloKind::CounterZero;
  expired.metric = "svc.expired";
  return {queue, expired};
}

TEST(TelemetryOptionsTest, WindowKnobsValidate) {
  ServiceOptions opt;
  opt.stats_window_seconds = -1.0;
  EXPECT_THROW(opt.validate(), InvalidArgument);
  opt.stats_window_seconds = 0.1;
  opt.stats_window_capacity = 0;
  EXPECT_THROW(opt.validate(), InvalidArgument);
  opt.stats_window_capacity = 4;
  EXPECT_NO_THROW(opt.validate());
}

TEST(TelemetryOptionsTest, SlosAndJsonlRequireTelemetryOn) {
  ServiceOptions opt;
  opt.slos = default_slos();
  EXPECT_THROW(opt.validate(), InvalidArgument);  // window is 0
  opt.slos.clear();
  opt.stats_jsonl_path = "/tmp/x.jsonl";
  EXPECT_THROW(opt.validate(), InvalidArgument);
  opt.stats_window_seconds = 0.1;
  EXPECT_NO_THROW(opt.validate());
  opt.slos = default_slos();
  EXPECT_NO_THROW(opt.validate());
  opt.slos.push_back(obs::SloObjective{});  // empty name: invalid
  EXPECT_THROW(opt.validate(), InvalidArgument);
}

TEST(ServiceTelemetryTest, OnOffOutcomesAreBitIdentical) {
  const Fixture f = make_fixture(6, 10, 99);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  constexpr std::size_t kRequests = 24;

  const auto run = [&](bool telemetry) {
    ServiceOptions opt;
    opt.shards = 2;
    opt.threads = 2;
    if (telemetry) {
      opt.stats_window_seconds = 0.0005;  // sub-ms: many windows close
      opt.slos = default_slos();
    }
    FormationService service(tvof, opt);
    std::vector<RequestHandle> handles;
    for (std::size_t i = 0; i < kRequests; ++i) {
      util::Xoshiro256 rng(1000 + i);
      handles.push_back(
          service.submit(core::FormationRequest{f.instance, f.trust, rng}));
    }
    service.drain();
    std::vector<RequestOutcome> out;
    for (const RequestHandle& h : handles) {
      h.wait();
      out.push_back(h.outcome());
    }
    return out;
  };

  const std::vector<RequestOutcome> off = run(false);
  const std::vector<RequestOutcome> on = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    SCOPED_TRACE("ticket " + std::to_string(i));
    EXPECT_EQ(off[i].state, on[i].state);
    EXPECT_EQ(off[i].attempts, on[i].attempts);
    EXPECT_EQ(off[i].rng_probe, on[i].rng_probe);  // RNG untouched
    EXPECT_EQ(off[i].result.selected.bits(), on[i].result.selected.bits());
    EXPECT_EQ(off[i].result.cost, on[i].result.cost);
    EXPECT_EQ(off[i].result.value, on[i].result.value);
  }
}

TEST(ServiceTelemetryTest, HealthWithoutTelemetryUsesCumulativeState) {
  const Fixture f = make_fixture(5, 8, 7);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  FormationService service(tvof, {});
  for (std::size_t i = 0; i < 4; ++i) {
    util::Xoshiro256 rng(i);
    service.submit(core::FormationRequest{f.instance, f.trust, rng});
  }
  service.drain();
  const ServiceHealth h = service.health();
  EXPECT_FALSE(h.telemetry_enabled);
  EXPECT_EQ(h.windows_closed, 0u);
  EXPECT_EQ(h.outstanding, 0u);
  ASSERT_EQ(h.shards.size(), 1u);
  EXPECT_EQ(h.shards[0].queue_depth, 0u);
  EXPECT_EQ(h.shards[0].solved, 4u);
  EXPECT_GT(h.queue_p99_us, 0.0);  // cumulative histogram quantile
  EXPECT_TRUE(h.slos.empty());
  EXPECT_FALSE(h.overloaded);
}

TEST(ServiceTelemetryTest, HealthWithTelemetryReportsWindowsAndSlos) {
  const Fixture f = make_fixture(5, 8, 21);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  ServiceOptions opt;
  opt.stats_window_seconds = 0.0005;
  opt.slos = default_slos();
  FormationService service(tvof, opt);
  for (std::size_t i = 0; i < 8; ++i) {
    util::Xoshiro256 rng(i);
    service.submit(core::FormationRequest{f.instance, f.trust, rng});
  }
  service.drain();
  // A fast drain can finish inside the first window; step past at least
  // one boundary so the health() sampler has something to close.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ServiceHealth h = service.health();
  EXPECT_TRUE(h.telemetry_enabled);
  EXPECT_GT(h.windows_closed, 0u);
  ASSERT_EQ(h.slos.size(), 2u);
  EXPECT_EQ(h.slos[0].name, "queue_p99_us");
  EXPECT_FALSE(h.slos[0].breached);  // one-minute bound can't violate
  EXPECT_EQ(h.slos[1].violations, 0u);  // nothing expired
  EXPECT_FALSE(service.health().overloaded);
}

TEST(ServiceTelemetryTest, QueueDepthGaugeTracksAdmissionsAndDrains) {
  const Fixture f = make_fixture(5, 8, 5);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  ServiceOptions opt;
  opt.start_paused = true;
  opt.queue_capacity = 8;
  opt.batch_size = 8;
  FormationService service(tvof, opt);
  std::vector<RequestHandle> handles;
  for (std::size_t i = 0; i < 3; ++i) {
    util::Xoshiro256 rng(i);
    handles.push_back(
        service.submit(core::FormationRequest{f.instance, f.trust, rng}));
  }
  // Paused: nothing drains, the gauge is exactly the queued count.
  EXPECT_DOUBLE_EQ(service.metrics().gauge_value("svc.shard0.queue_depth"),
                   3.0);
  EXPECT_EQ(service.health().shards[0].queue_depth, 3u);
  ASSERT_TRUE(handles[2].cancel());
  EXPECT_DOUBLE_EQ(service.metrics().gauge_value("svc.shard0.queue_depth"),
                   2.0);
  service.resume();
  service.drain();
  EXPECT_DOUBLE_EQ(service.metrics().gauge_value("svc.shard0.queue_depth"),
                   0.0);
}

TEST(ServiceTelemetryTest, JsonlSinkReceivesClosedWindows) {
  const Fixture f = make_fixture(5, 8, 3);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const std::string path =
      (std::filesystem::temp_directory_path() / "svo_svc_windows_test.jsonl")
          .string();
  std::filesystem::remove(path);
  {
    ServiceOptions opt;
    opt.stats_window_seconds = 0.0005;
    opt.stats_jsonl_path = path;
    FormationService service(tvof, opt);
    for (std::size_t i = 0; i < 6; ++i) {
      util::Xoshiro256 rng(i);
      service.submit(core::FormationRequest{f.instance, f.trust, rng});
    }
    service.drain();
  }  // destructor flushes the final partial window
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  bool saw_solver_runs = false;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"window\":"), std::string::npos);
    if (line.find("svc.solver_runs") != std::string::npos) {
      saw_solver_runs = true;
    }
    ++lines;
  }
  EXPECT_GT(lines, 0u);
  EXPECT_TRUE(saw_solver_runs);  // the six solves landed in some window
  std::filesystem::remove(path);
}

TEST(ServiceTelemetryTest, UnwritableJsonlPathThrows) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  ServiceOptions opt;
  opt.stats_window_seconds = 0.1;
  opt.stats_jsonl_path = "/nonexistent-dir/windows.jsonl";
  EXPECT_THROW(FormationService(tvof, opt), InvalidArgument);
}

}  // namespace
}  // namespace svo::svc
