/// The chaos contract (fault_plan.hpp, DESIGN.md §4h), pinned:
///   - injected solver failures retry with backoff and converge to the
///     bit-identical direct-run result once the fault clears;
///   - queue poison burns its budget to a terminal Failed (typed state,
///     never a hung handle) without harming queue neighbours;
///   - a killed shard is detected and restarted with its queue intact —
///     no admitted request is ever lost;
///   - a deliberately stalled tick cannot wedge a bounded wait();
///   - deadlines expire *before* wasting a solve, and shards drain by
///     (priority, deadline, admission order);
///   - a cancel landing between a failed attempt and its scheduled
///     retry wins, with exactly one terminal state;
///   - same-seed chaotic replays are per-ticket identical.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "svc/fault_plan.hpp"
#include "svc/service.hpp"
#include "tests/ip/test_instances.hpp"
#include "trust/trust_graph.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::svc {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Fixture make_fixture(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(m, n, rng);
  f.trust = trust::random_trust_graph(m, /*p=*/0.4, rng);
  return f;
}

// ---------------------------------------------------------------- plans

TEST(FaultPlanTest, EnabledAndNamesAreStable) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.solver_faults.push_back({0, 1});
  EXPECT_TRUE(plan.enabled());
  EXPECT_STREQ(to_string(TickFaultKind::Abort), "abort");
  EXPECT_STREQ(to_string(TickFaultKind::Stall), "stall");
}

TEST(FaultPlanTest, ValidateRejectsMalformedPlans) {
  {
    FaultPlan plan;
    plan.solver_faults.push_back({0, 0});  // zero attempts
    EXPECT_THROW(plan.validate(), InvalidArgument);
  }
  {
    FaultPlan plan;
    plan.solver_faults.push_back({3, 1});
    plan.solver_faults.push_back({3, 2});  // duplicate ticket
    EXPECT_THROW(plan.validate(), InvalidArgument);
  }
  {
    FaultPlan plan;
    plan.tick_faults.push_back({1, TickFaultKind::Stall, -0.001});
    EXPECT_THROW(plan.validate(), InvalidArgument);
  }
  {
    FaultPlan plan;
    plan.tick_faults.push_back(
        {1, TickFaultKind::Stall, std::numeric_limits<double>::quiet_NaN()});
    EXPECT_THROW(plan.validate(), InvalidArgument);
  }
  {
    FaultPlan plan;
    plan.tick_faults.push_back({2, TickFaultKind::Abort, 0.0});
    plan.tick_faults.push_back({2, TickFaultKind::Stall, 0.0});  // duplicate
    EXPECT_THROW(plan.validate(), InvalidArgument);
  }
  {
    // One solver fault and one tick fault on the same ticket is legal.
    FaultPlan plan;
    plan.solver_faults.push_back({2, SolverFault::kPoison});
    plan.tick_faults.push_back({2, TickFaultKind::Abort, 0.0});
    EXPECT_NO_THROW(plan.validate());
  }
}

TEST(FaultPlanTest, ChaosProfileValidateRejectsBadRates) {
  ChaosProfile p;
  EXPECT_NO_THROW(p.validate());
  p.solver_fault_rate = 1.5;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p.solver_fault_rate = 0.6;
  p.poison_rate = 0.6;  // sum > 1
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = ChaosProfile{};
  p.abort_rate = 0.7;
  p.stall_rate = 0.7;  // sum > 1
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = ChaosProfile{};
  p.fault_attempts = 0;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = ChaosProfile{};
  p.stall_seconds = -1.0;
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(FaultPlanTest, RandomPlanIsDeterministicAndValid) {
  ChaosProfile profile;
  profile.solver_fault_rate = 0.3;
  profile.fault_attempts = 2;
  profile.poison_rate = 0.1;
  profile.abort_rate = 0.2;
  profile.stall_rate = 0.2;
  profile.stall_seconds = 0.001;

  const FaultPlan a = random_fault_plan(0xC4A05, 200, profile);
  const FaultPlan b = random_fault_plan(0xC4A05, 200, profile);
  ASSERT_EQ(a.solver_faults.size(), b.solver_faults.size());
  ASSERT_EQ(a.tick_faults.size(), b.tick_faults.size());
  for (std::size_t i = 0; i < a.solver_faults.size(); ++i) {
    EXPECT_EQ(a.solver_faults[i].ticket, b.solver_faults[i].ticket);
    EXPECT_EQ(a.solver_faults[i].attempts, b.solver_faults[i].attempts);
  }
  for (std::size_t i = 0; i < a.tick_faults.size(); ++i) {
    EXPECT_EQ(a.tick_faults[i].ticket, b.tick_faults[i].ticket);
    EXPECT_EQ(a.tick_faults[i].kind, b.tick_faults[i].kind);
  }
  EXPECT_NO_THROW(a.validate());
  EXPECT_TRUE(a.enabled());
  // Rates this high over 200 tickets strike with near certainty.
  EXPECT_GT(a.solver_faults.size(), 0u);
  EXPECT_GT(a.tick_faults.size(), 0u);
  for (const SolverFault& f : a.solver_faults) {
    EXPECT_LT(f.ticket, 200u);
    EXPECT_TRUE(f.attempts == 2 || f.attempts == SolverFault::kPoison);
  }

  // All-zero rates derive the empty (bit-identical-to-PR 7) plan.
  const FaultPlan none = random_fault_plan(0xC4A05, 200, ChaosProfile{});
  EXPECT_FALSE(none.enabled());
}

// ----------------------------------------------------- typed validation

TEST(ChaosServiceTest, SubmitValidatesSchedulingFields) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 41);
  ServiceOptions opt;
  opt.start_paused = true;
  FormationService service(tvof, opt);
  util::Xoshiro256 rng(1);

  core::FormationRequest bad_deadline{f.instance, f.trust, rng};
  bad_deadline.deadline_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(service.submit(bad_deadline), InvalidArgument);
  bad_deadline.deadline_seconds = -0.5;
  EXPECT_THROW(service.submit(bad_deadline), InvalidArgument);

  core::FormationRequest bad_budget{f.instance, f.trust, rng};
  bad_budget.max_retries = ServiceOptions::kMaxRetryBudget + 1;
  EXPECT_THROW(service.submit(bad_budget), InvalidArgument);

  core::FormationRequest good{f.instance, f.trust, rng};
  good.deadline_seconds = 3600.0;
  good.priority = -3;
  good.max_retries = ServiceOptions::kMaxRetryBudget;
  RequestHandle h = service.submit(good);
  EXPECT_EQ(h.poll(), TicketState::Queued);
  // Rejected submissions were never admitted.
  EXPECT_EQ(service.stats().submitted, 1u);
  service.resume();
  service.drain();
}

TEST(ChaosServiceTest, OptionsValidateBackoffAndPlan) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  {
    ServiceOptions opt;
    opt.retry_backoff_base_seconds = -0.001;
    EXPECT_THROW(FormationService(tvof, opt), InvalidArgument);
  }
  {
    ServiceOptions opt;
    opt.retry_backoff_cap_seconds = opt.retry_backoff_base_seconds / 2.0;
    EXPECT_THROW(FormationService(tvof, opt), InvalidArgument);
  }
  {
    ServiceOptions opt;
    opt.faults.solver_faults.push_back({0, 0});  // invalid plan
    EXPECT_THROW(FormationService(tvof, opt), InvalidArgument);
  }
}

TEST(ChaosServiceTest, WaitValidatesTimeoutAndOutcomeRequiresTerminal) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 42);
  ServiceOptions opt;
  opt.start_paused = true;
  FormationService service(tvof, opt);
  util::Xoshiro256 rng(1);
  RequestHandle h =
      service.submit(core::FormationRequest{f.instance, f.trust, rng});
  EXPECT_THROW(h.wait(-1.0), InvalidArgument);
  EXPECT_THROW(h.wait(std::numeric_limits<double>::quiet_NaN()),
               InvalidArgument);
  EXPECT_THROW(static_cast<void>(h.outcome()),
               InvalidArgument);  // not terminal yet
  // A zero timeout is a poll.
  EXPECT_EQ(h.wait(0.0), TicketState::Queued);
  service.resume();
  service.drain();
  EXPECT_EQ(h.wait(0.0), TicketState::Done);
  EXPECT_NO_THROW(static_cast<void>(h.outcome()));
}

// ------------------------------------------------------- solver faults

/// An injected failure retries with backoff and then succeeds — and the
/// retry is an exact re-execution: the final result is bit-identical to
/// a direct run (RNG probe included) because every attempt starts from
/// the pristine admission-time RNG snapshot.
TEST(ChaosServiceTest, InjectedFailureRetriesToBitIdenticalSuccess) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(6, 14, 0xFA11);

  util::Xoshiro256 rng_direct(7);
  const core::MechanismResult direct =
      tvof.run(core::FormationRequest{f.instance, f.trust, rng_direct});
  const std::uint64_t probe_direct = rng_direct();

  ServiceOptions opt;
  opt.faults.solver_faults.push_back({0, 2});  // attempts 1 and 2 throw
  opt.retry_backoff_base_seconds = 0.0001;
  opt.retry_backoff_cap_seconds = 0.001;
  FormationService service(tvof, opt);
  util::Xoshiro256 rng(7);
  core::FormationRequest req{f.instance, f.trust, rng};
  req.max_retries = 3;
  RequestHandle h = service.submit(req);

  ASSERT_EQ(h.wait(), TicketState::Done);
  const RequestOutcome& out = h.outcome();
  EXPECT_EQ(out.attempts, 3u);  // two injected failures + the success
  EXPECT_EQ(out.rng_probe, probe_direct);
  EXPECT_EQ(out.result.selected.bits(), direct.selected.bits());
  EXPECT_EQ(out.result.cost, direct.cost);
  EXPECT_EQ(out.result.value, direct.value);
  ASSERT_EQ(out.result.journal.size(), direct.journal.size());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.solver_runs, 3u);  // attempts, including failed ones
  EXPECT_GE(stats.redelivery_max, 2.0);
  EXPECT_EQ(service.metrics().counter_value("svc.retries"), 2u);
}

/// Queue poison: every attempt throws, the budget burns down to a
/// typed Failed with the error preserved — never a hung handle — and a
/// neighbouring ticket on the same shard is untouched.
TEST(ChaosServiceTest, PoisonFailsAfterBudgetWithoutHarmingNeighbours) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(6, 14, 0xBAD);

  ServiceOptions opt;
  opt.faults.solver_faults.push_back({0, SolverFault::kPoison});
  opt.retry_backoff_base_seconds = 0.0001;
  opt.retry_backoff_cap_seconds = 0.001;
  FormationService service(tvof, opt);

  util::Xoshiro256 rng_poison(11);
  core::FormationRequest poisoned{f.instance, f.trust, rng_poison};
  poisoned.max_retries = 2;
  RequestHandle hp = service.submit(poisoned);

  util::Xoshiro256 rng_ok(12);
  RequestHandle ok =
      service.submit(core::FormationRequest{f.instance, f.trust, rng_ok});

  ASSERT_EQ(hp.wait(), TicketState::Failed);
  const RequestOutcome& poisoned_out = hp.outcome();
  EXPECT_EQ(poisoned_out.attempts, 3u);  // 1 + max_retries
  EXPECT_FALSE(poisoned_out.error.empty());
  EXPECT_EQ(poisoned_out.rng_probe, 0u);
  EXPECT_TRUE(poisoned_out.result.journal.empty());

  ASSERT_EQ(ok.wait(), TicketState::Done);
  util::Xoshiro256 rng_check(12);
  const core::MechanismResult direct =
      tvof.run(core::FormationRequest{f.instance, f.trust, rng_check});
  EXPECT_EQ(ok.outcome().result.selected.bits(), direct.selected.bits());
  EXPECT_EQ(ok.outcome().result.cost, direct.cost);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.solver_runs, 4u);  // 3 poisoned attempts + 1 clean
  EXPECT_EQ(service.metrics().counter_value("svc.failed"), 1u);
}

TEST(ChaosServiceTest, ZeroRetryBudgetFailsOnFirstInjectedThrow) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 43);
  ServiceOptions opt;
  opt.faults.solver_faults.push_back({0, SolverFault::kPoison});
  FormationService service(tvof, opt);
  util::Xoshiro256 rng(3);
  RequestHandle h =
      service.submit(core::FormationRequest{f.instance, f.trust, rng});
  ASSERT_EQ(h.wait(), TicketState::Failed);
  EXPECT_EQ(h.outcome().attempts, 1u);
  EXPECT_EQ(service.stats().retries, 0u);
  EXPECT_FALSE(h.cancel());  // already terminal
}

// --------------------------------------------------------- tick faults

/// A killed shard is detected and restarted with its queued requests
/// preserved: every admitted ticket still completes, bit-identically,
/// and the restart is accounted service-wide and per shard.
TEST(ChaosServiceTest, ShardAbortRestartPreservesQueuedRequests) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(6, 14, 0xDEAD);
  constexpr std::size_t kRequests = 4;

  ServiceOptions opt;
  opt.batch_size = 2;
  opt.start_paused = true;
  opt.faults.tick_faults.push_back({0, TickFaultKind::Abort, 0.0});
  FormationService service(tvof, opt);
  std::vector<RequestHandle> handles;
  for (std::size_t i = 0; i < kRequests; ++i) {
    util::Xoshiro256 rng(900 + i);
    handles.push_back(
        service.submit(core::FormationRequest{f.instance, f.trust, rng}));
  }
  service.resume();
  service.drain();

  for (std::size_t i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("ticket " + std::to_string(i));
    ASSERT_EQ(handles[i].wait(), TicketState::Done);
    util::Xoshiro256 rng(900 + i);
    const core::MechanismResult direct =
        tvof.run(core::FormationRequest{f.instance, f.trust, rng});
    EXPECT_EQ(handles[i].outcome().result.selected.bits(),
              direct.selected.bits());
    EXPECT_EQ(handles[i].outcome().result.cost, direct.cost);
    EXPECT_EQ(handles[i].outcome().rng_probe, rng());
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, kRequests);
  EXPECT_EQ(stats.tick_aborts, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(service.metrics().counter_value("svc.shard0.restarts"), 1u);
  EXPECT_EQ(service.metrics().counter_value("svc.restarts"), 1u);
}

/// Satellite regression: a deliberately stalled tick must not wedge a
/// bounded wait — the timeout returns a live (non-terminal) state, and
/// the unbounded wait still resolves once the straggler finishes.
TEST(ChaosServiceTest, StalledTickCannotWedgeBoundedWait) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 44);

  ServiceOptions opt;
  opt.faults.tick_faults.push_back({0, TickFaultKind::Stall, 0.25});
  FormationService service(tvof, opt);
  util::Xoshiro256 rng(5);
  RequestHandle h =
      service.submit(core::FormationRequest{f.instance, f.trust, rng});

  const TicketState during = h.wait(0.01);  // bounded: returns promptly
  EXPECT_FALSE(is_terminal(during));
  EXPECT_EQ(h.wait(), TicketState::Done);  // unbounded: stall ends
  EXPECT_EQ(service.stats().stalls, 1u);
  EXPECT_EQ(service.metrics().counter_value("svc.stalls"), 1u);
}

// ----------------------------------------------- deadlines & ordering

/// deadline_seconds = 0 deterministically expires at first dispatch:
/// the request terminates DeadlineExceeded before any solver work.
TEST(DeadlineTest, ZeroDeadlineExpiresBeforeSolve) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 45);

  ServiceOptions opt;
  opt.start_paused = true;
  FormationService service(tvof, opt);
  util::Xoshiro256 rng(1);
  core::FormationRequest doomed{f.instance, f.trust, rng};
  doomed.deadline_seconds = 0.0;
  RequestHandle expired = service.submit(doomed);
  RequestHandle healthy =
      service.submit(core::FormationRequest{f.instance, f.trust, rng});
  service.resume();
  service.drain();

  ASSERT_EQ(expired.wait(), TicketState::DeadlineExceeded);
  EXPECT_EQ(expired.outcome().attempts, 0u);      // the solver never ran
  EXPECT_EQ(expired.outcome().dispatch_seq, 0u);  // never dispatched
  EXPECT_TRUE(expired.outcome().result.journal.empty());
  ASSERT_EQ(healthy.wait(), TicketState::Done);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.solver_runs, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(service.metrics().counter_value("svc.expired"), 1u);
}

/// Shards drain by (priority desc, deadline asc, admission order) —
/// observable through dispatch_seq on a single-shard service.
TEST(DeadlineTest, DrainOrderIsPriorityThenEdfThenAdmission) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 46);

  ServiceOptions opt;
  opt.start_paused = true;
  opt.batch_size = 4;
  FormationService service(tvof, opt);
  util::Xoshiro256 rng(1);

  auto submit = [&](std::int32_t priority, double deadline) {
    core::FormationRequest req{f.instance, f.trust, rng};
    req.priority = priority;
    req.deadline_seconds = deadline;
    return service.submit(req);
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  RequestHandle a = submit(0, kInf);     // admitted first, drained last
  RequestHandle b = submit(5, kInf);     // high priority, no deadline
  RequestHandle c = submit(5, 3600.0);   // high priority, tighter EDF
  RequestHandle d = submit(0, 1800.0);   // low priority, has a deadline
  service.resume();
  service.drain();

  for (const RequestHandle* h : {&a, &b, &c, &d}) {
    ASSERT_EQ(h->wait(), TicketState::Done);
  }
  EXPECT_EQ(c.outcome().dispatch_seq, 1u);
  EXPECT_EQ(b.outcome().dispatch_seq, 2u);
  EXPECT_EQ(d.outcome().dispatch_seq, 3u);
  EXPECT_EQ(a.outcome().dispatch_seq, 4u);
}

// ------------------------------------------------- cancel-retry races

/// Satellite race: a cancel landing between a failed attempt and its
/// scheduled retry must win — the retry never dispatches, and the
/// ticket reports exactly one terminal state (Cancelled, not Failed).
TEST(ChaosServiceTest, CancelBetweenFailedAttemptAndRetryWins) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(5, 12, 47);

  ServiceOptions opt;
  opt.faults.solver_faults.push_back({0, SolverFault::kPoison});
  // A retry parked far in the future opens a wide, reliable race window.
  opt.retry_backoff_base_seconds = 30.0;
  opt.retry_backoff_cap_seconds = 30.0;
  FormationService service(tvof, opt);
  util::Xoshiro256 rng(9);
  core::FormationRequest req{f.instance, f.trust, rng};
  req.max_retries = 8;
  RequestHandle h = service.submit(req);

  // Wait until the first attempt has failed and its retry is parked.
  for (int spin = 0; spin < 4000 && service.stats().retries == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.stats().retries, 1u) << "first attempt never failed";
  ASSERT_EQ(h.poll(), TicketState::Queued);  // parked in backoff

  EXPECT_TRUE(h.cancel());  // the cancel wins the race
  EXPECT_EQ(h.poll(), TicketState::Cancelled);
  EXPECT_FALSE(h.cancel());  // exactly one terminal transition

  // The parked retry was withdrawn: the service drains immediately
  // (well before the 30 s backoff) and the solver never ran again.
  service.drain();
  EXPECT_EQ(h.wait(), TicketState::Cancelled);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.solver_runs, 1u);  // only the pre-cancel attempt
  EXPECT_EQ(h.outcome().state, TicketState::Cancelled);
}

// ------------------------------------------------------ chaotic replay

/// The headline chaos invariants, together: under a mixed fault plan
/// (transient solver faults, poison, shard kills, stragglers) across a
/// multi-shard multi-thread service,
///   1. no admitted request is ever lost — every handle is terminal;
///   2. same-seed replays are per-ticket identical (state, attempts,
///      RNG probe, error), interleaving notwithstanding;
///   3. the fault accounting itself replays identically.
TEST(ChaosServiceTest, SameSeedChaoticReplayIsIdentical) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(6, 14, 0x0CA0);
  constexpr std::size_t kRequests = 16;

  ChaosProfile profile;
  profile.solver_fault_rate = 0.25;
  profile.fault_attempts = 1;
  profile.poison_rate = 0.15;
  profile.abort_rate = 0.15;
  profile.stall_rate = 0.15;
  profile.stall_seconds = 0.0002;

  ServiceOptions opt;
  opt.shards = 4;
  opt.threads = 4;
  opt.batch_size = 2;
  opt.retry_backoff_base_seconds = 0.0001;
  opt.retry_backoff_cap_seconds = 0.001;
  opt.faults = random_fault_plan(0x5EED, kRequests, profile);
  ASSERT_TRUE(opt.faults.enabled());

  struct Snapshot {
    std::vector<RequestOutcome> outs;
    ServiceStats stats;
  };
  auto run_once = [&] {
    Snapshot snap;
    FormationService service(tvof, opt);
    std::vector<RequestHandle> handles;
    for (std::size_t i = 0; i < kRequests; ++i) {
      util::Xoshiro256 rng(3000 + i * 13);
      core::FormationRequest req{f.instance, f.trust, rng};
      req.max_retries = 3;
      handles.push_back(service.submit(req));
    }
    service.drain();
    for (const RequestHandle& h : handles) {
      EXPECT_TRUE(h.done());  // invariant 1: nothing lost
      h.wait();
      snap.outs.push_back(h.outcome());
    }
    snap.stats = service.stats();
    return snap;
  };

  const Snapshot first = run_once();
  const Snapshot second = run_once();
  ASSERT_EQ(first.outs.size(), kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("ticket " + std::to_string(i));
    EXPECT_EQ(first.outs[i].ticket, second.outs[i].ticket);
    EXPECT_EQ(first.outs[i].shard, second.outs[i].shard);
    EXPECT_EQ(first.outs[i].state, second.outs[i].state);
    EXPECT_TRUE(is_terminal(first.outs[i].state));
    EXPECT_EQ(first.outs[i].attempts, second.outs[i].attempts);
    EXPECT_EQ(first.outs[i].rng_probe, second.outs[i].rng_probe);
    EXPECT_EQ(first.outs[i].error, second.outs[i].error);
    if (first.outs[i].state == TicketState::Done) {
      EXPECT_EQ(first.outs[i].result.selected.bits(),
                second.outs[i].result.selected.bits());
      EXPECT_EQ(first.outs[i].result.cost, second.outs[i].result.cost);
    }
  }
  // Invariant 3: fault traffic replays exactly.
  EXPECT_EQ(first.stats.completed, second.stats.completed);
  EXPECT_EQ(first.stats.failed, second.stats.failed);
  EXPECT_EQ(first.stats.retries, second.stats.retries);
  EXPECT_EQ(first.stats.restarts, second.stats.restarts);
  EXPECT_EQ(first.stats.tick_aborts, second.stats.tick_aborts);
  EXPECT_EQ(first.stats.stalls, second.stats.stalls);
  EXPECT_EQ(first.stats.solver_runs, second.stats.solver_runs);
  // Conservation: every admitted ticket landed in exactly one bucket.
  EXPECT_EQ(first.stats.submitted, kRequests);
  EXPECT_EQ(first.stats.completed + first.stats.failed, kRequests);
  // The profile's rates over 16 tickets make faults near-certain; guard
  // against a silently empty plan rendering the test vacuous.
  EXPECT_GT(first.stats.retries + first.stats.failed + first.stats.restarts +
                first.stats.stalls,
            0u);
}

/// Heavy mixed chaos plus expiring deadlines: every admitted request
/// still reaches exactly one terminal state and the books balance.
TEST(ChaosServiceTest, NoAdmittedRequestLostUnderHeavyChaos) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const Fixture f = make_fixture(6, 14, 0x10AD);
  constexpr std::size_t kRequests = 12;

  ChaosProfile profile;
  profile.solver_fault_rate = 0.2;
  profile.poison_rate = 0.2;
  profile.abort_rate = 0.3;
  profile.stall_rate = 0.2;
  profile.stall_seconds = 0.0001;

  ServiceOptions opt;
  opt.shards = 2;
  opt.threads = 2;
  opt.batch_size = 2;
  opt.retry_backoff_base_seconds = 0.0001;
  opt.retry_backoff_cap_seconds = 0.001;
  opt.faults = random_fault_plan(0xD00D, kRequests, profile);
  FormationService service(tvof, opt);

  std::vector<RequestHandle> handles;
  for (std::size_t i = 0; i < kRequests; ++i) {
    util::Xoshiro256 rng(7000 + i);
    core::FormationRequest req{f.instance, f.trust, rng};
    req.max_retries = 1;
    if (i % 3 == 2) req.deadline_seconds = 0.0;  // expires at dispatch
    handles.push_back(service.submit(req));
  }
  service.drain();

  std::uint64_t done = 0, failed = 0, expired = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    SCOPED_TRACE("ticket " + std::to_string(i));
    const TicketState s = handles[i].poll();
    ASSERT_TRUE(is_terminal(s)) << to_string(s);
    if (s == TicketState::Done) ++done;
    if (s == TicketState::Failed) ++failed;
    if (s == TicketState::DeadlineExceeded) ++expired;
  }
  EXPECT_EQ(done + failed + expired, kRequests);
  EXPECT_EQ(expired, kRequests / 3);  // deadline-0 expiry is deterministic

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed, done);
  EXPECT_EQ(stats.failed, failed);
  EXPECT_EQ(stats.expired, expired);
}

}  // namespace
}  // namespace svo::svc
