#include "linalg/power_method.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"

namespace svo::linalg {
namespace {

PowerMethodOptions no_damping() {
  PowerMethodOptions o;
  o.damping = 0.0;
  return o;
}

TEST(PowerMethodTest, TwoStateChainAnalyticStationary) {
  // Row-stochastic P = [[0.9, 0.1], [0.5, 0.5]]; stationary distribution
  // pi solves pi P = pi: pi = (5/6, 1/6).
  const Matrix a = Matrix::from_rows({{0.9, 0.1}, {0.5, 0.5}});
  const PowerMethodResult r = power_method(a, no_damping());
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(r.eigenvector.size(), 2u);
  EXPECT_NEAR(r.eigenvector[0], 5.0 / 6.0, 1e-7);
  EXPECT_NEAR(r.eigenvector[1], 1.0 / 6.0, 1e-7);
  EXPECT_NEAR(r.eigenvalue, 1.0, 1e-9);
}

TEST(PowerMethodTest, SymmetricDoublyStochasticIsUniform) {
  const Matrix a = Matrix::from_rows(
      {{0.0, 0.5, 0.5}, {0.5, 0.0, 0.5}, {0.5, 0.5, 0.0}});
  const PowerMethodResult r = power_method(a, no_damping());
  ASSERT_TRUE(r.converged);
  for (const double x : r.eigenvector) EXPECT_NEAR(x, 1.0 / 3.0, 1e-7);
}

TEST(PowerMethodTest, DanglingRowTreatedAsUniform) {
  // Node 1 trusts nobody: its row is zero. With the PageRank patch the
  // chain is 0 -> 1 -> (uniform); stationary = (1/3? ...) — we only check
  // structural properties: convergence, normalization, positivity.
  const Matrix a = Matrix::from_rows({{0.0, 1.0}, {0.0, 0.0}});
  const PowerMethodResult r = power_method(a, no_damping());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.eigenvector[0] + r.eigenvector[1], 1.0, 1e-9);
  EXPECT_GT(r.eigenvector[0], 0.0);
  EXPECT_GT(r.eigenvector[1], 0.0);
  // Node 1 receives all of node 0's trust plus half the dangling mass:
  // it must rank strictly higher.
  EXPECT_GT(r.eigenvector[1], r.eigenvector[0]);
}

TEST(PowerMethodTest, DampingHandlesPeriodicChain) {
  // 2-cycle is periodic: undamped power iteration oscillates and must hit
  // the cap; with damping it converges to uniform.
  const Matrix a = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  PowerMethodOptions strict = no_damping();
  strict.max_iterations = 500;
  // (uniform start is exactly the fixed point here, so pick a tougher
  // criterion: a 3-cycle with asymmetric extra edge)
  const Matrix b = Matrix::from_rows(
      {{0.0, 1.0, 0.0}, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}});
  PowerMethodOptions damped;
  damped.damping = 0.15;
  const PowerMethodResult r = power_method(b, damped);
  EXPECT_TRUE(r.converged);
  for (const double x : r.eigenvector) EXPECT_NEAR(x, 1.0 / 3.0, 1e-6);
  (void)a;
}

TEST(PowerMethodTest, EmptyMatrixConvergesEmpty) {
  const Matrix empty;
  const PowerMethodResult r = power_method(empty);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.eigenvector.empty());
}

TEST(PowerMethodTest, SingleNodeIsTrivial) {
  const Matrix a = Matrix::from_rows({{0.0}});
  const PowerMethodResult r = power_method(a, no_damping());
  ASSERT_EQ(r.eigenvector.size(), 1u);
  EXPECT_NEAR(r.eigenvector[0], 1.0, 1e-12);
}

TEST(PowerMethodTest, RejectsBadInput) {
  EXPECT_THROW((void)power_method(Matrix(2, 3)), InvalidArgument);
  const Matrix neg = Matrix::from_rows({{-1.0}});
  EXPECT_THROW((void)power_method(neg), InvalidArgument);
  PowerMethodOptions bad;
  bad.epsilon = 0.0;
  EXPECT_THROW((void)power_method(Matrix::identity(2), bad), InvalidArgument);
  bad = {};
  bad.damping = 1.0;
  EXPECT_THROW((void)power_method(Matrix::identity(2), bad), InvalidArgument);
}

TEST(PowerMethodTest, IterationCapReportsNonConvergence) {
  const Matrix a = Matrix::from_rows({{0.9, 0.1}, {0.5, 0.5}});
  PowerMethodOptions opts = no_damping();
  opts.max_iterations = 1;
  const PowerMethodResult r = power_method(a, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
}

/// Property sweep: for random row-stochastic matrices the result is an
/// L1-normalized non-negative fixed point of the (damped) operator.
class PowerMethodPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PowerMethodPropertyTest, FixedPointProperties) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.index(8);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform();
      sum += a(i, j);
    }
    for (std::size_t j = 0; j < n; ++j) a(i, j) /= sum;  // stochastic row
  }
  PowerMethodOptions opts;
  opts.damping = 0.15;
  opts.epsilon = 1e-12;
  const PowerMethodResult r = power_method(a, opts);
  ASSERT_TRUE(r.converged);
  double sum = 0.0;
  for (const double x : r.eigenvector) {
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Verify the fixed point: x == (1-d) A^T x + d/n.
  const std::vector<double> ax = a.multiply_transposed(r.eigenvector);
  for (std::size_t j = 0; j < n; ++j) {
    const double expected =
        (1.0 - opts.damping) * ax[j] + opts.damping / static_cast<double>(n);
    EXPECT_NEAR(r.eigenvector[j], expected, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStochastic, PowerMethodPropertyTest,
                         ::testing::Range(1, 21));

TEST(PowerMethodOptionsTest, ValidateAcceptsDefaultsAndSaneKnobs) {
  EXPECT_NO_THROW(PowerMethodOptions{}.validate());
  PowerMethodOptions o;
  o.epsilon = 1e-3;
  o.max_iterations = 1;
  o.damping = 0.0;
  o.threads = 8;
  EXPECT_NO_THROW(o.validate());
}

TEST(PowerMethodOptionsTest, ValidateRejectsEachBadKnob) {
  const auto expect_invalid = [](auto mutate) {
    PowerMethodOptions o;
    mutate(o);
    EXPECT_THROW(o.validate(), InvalidArgument);
    // The engines surface the same error before touching the matrix.
    const Matrix a = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
    EXPECT_THROW((void)power_method(a, o), InvalidArgument);
  };
  expect_invalid([](PowerMethodOptions& o) { o.epsilon = 0.0; });
  expect_invalid([](PowerMethodOptions& o) { o.epsilon = -1e-9; });
  expect_invalid([](PowerMethodOptions& o) {
    o.epsilon = std::numeric_limits<double>::quiet_NaN();
  });
  expect_invalid([](PowerMethodOptions& o) {
    o.epsilon = std::numeric_limits<double>::infinity();
  });
  expect_invalid([](PowerMethodOptions& o) { o.max_iterations = 0; });
  expect_invalid([](PowerMethodOptions& o) { o.damping = -0.1; });
  expect_invalid([](PowerMethodOptions& o) { o.damping = 1.0; });
  expect_invalid([](PowerMethodOptions& o) {
    o.damping = std::numeric_limits<double>::quiet_NaN();
  });
  expect_invalid([](PowerMethodOptions& o) { o.threads = 0; });
}

}  // namespace
}  // namespace svo::linalg
