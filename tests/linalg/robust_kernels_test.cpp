#include <gtest/gtest.h>

#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace svo::linalg {
namespace {

TEST(TrimmedSumTest, NoTrimIsPlainSum) {
  std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(trimmed_sum(v, 0.0), 6.0);
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(trimmed_sum(empty, 0.2), 0.0);
}

TEST(TrimmedSumTest, DropsExtremesAndRescales) {
  // n = 5, trim 0.2 -> drop 1 from each end, rescale by 5/3.
  std::vector<double> v = {100.0, 1.0, 2.0, 3.0, -50.0};
  EXPECT_DOUBLE_EQ(trimmed_sum(v, 0.2), (1.0 + 2.0 + 3.0) * 5.0 / 3.0);
}

TEST(TrimmedSumTest, BoundsOutlierInfluence) {
  // One adversarial entry among ten: the trimmed estimate must stay near
  // the honest sum however large the outlier grows.
  for (const double outlier : {1e3, 1e6, 1e12}) {
    std::vector<double> v(10, 1.0);
    v[7] = outlier;
    const double est = trimmed_sum(v, 0.2);
    EXPECT_LT(est, 20.0) << "outlier " << outlier;
    EXPECT_GT(est, 5.0);
  }
}

TEST(TrimmedSumTest, DegenerateTrimFallsBackToPlainSum) {
  // Trimming would leave nothing (n = 2, one dropped per side).
  std::vector<double> v = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(trimmed_sum(v, 0.49), 4.0);
  std::vector<double> single = {5.0};
  EXPECT_DOUBLE_EQ(trimmed_sum(single, 0.4), 5.0);
}

TEST(MedianOfMeansSumTest, SingleBucketIsPlainSum) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median_of_means_sum(v, 1), 10.0);
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(median_of_means_sum(empty, 3), 0.0);
}

TEST(MedianOfMeansSumTest, BucketsClampedToLength) {
  std::vector<double> v = {2.0, 4.0};
  // 5 buckets clamp to 2: means {2, 4}, median 3, times n=2 -> 6.
  EXPECT_DOUBLE_EQ(median_of_means_sum(v, 5), 6.0);
}

TEST(MedianOfMeansSumTest, ResistsSingleOutlier) {
  // 9 honest entries of 1.0 plus one huge outlier, 3 buckets: the
  // outlier corrupts one bucket mean; the median ignores it.
  for (const double outlier : {1e3, 1e9}) {
    std::vector<double> v(9, 1.0);
    v.push_back(outlier);
    const double est = median_of_means_sum(v, 3);
    EXPECT_NEAR(est, 10.0, 1.0) << "outlier " << outlier;
  }
}

TEST(MedianOfMeansSumTest, UnanimousEntriesExact) {
  std::vector<double> v(12, 0.5);
  EXPECT_DOUBLE_EQ(median_of_means_sum(v, 4), 6.0);
  std::vector<double> w(12, 0.5);
  EXPECT_DOUBLE_EQ(trimmed_sum(w, 0.25), 6.0);
}

TEST(RobustKernelsTest, AgreeWithSumOnCleanData) {
  // On outlier-free i.i.d. data all three estimators land close together.
  util::Xoshiro256 rng(77);
  std::vector<double> v(50);
  double plain = 0.0;
  for (double& x : v) {
    x = rng.uniform(0.4, 0.6);
    plain += x;
  }
  std::vector<double> a = v;
  std::vector<double> b = v;
  EXPECT_NEAR(trimmed_sum(a, 0.2), plain, 2.0);
  EXPECT_NEAR(median_of_means_sum(b, 5), plain, 2.0);
}

}  // namespace
}  // namespace svo::linalg
