#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace svo::linalg {
namespace {

TEST(MatrixTest, ConstructionAndFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.empty());
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 1.5);
  }
}

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, FromRowsAndAt) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_THROW((void)m.at(2, 0), InvalidArgument);
  EXPECT_THROW((void)m.at(0, 2), InvalidArgument);
}

TEST(MatrixTest, FromRowsRejectsRagged) {
  EXPECT_THROW((void)Matrix::from_rows({{1, 2}, {3}}), DimensionMismatch);
}

TEST(MatrixTest, IdentityMultiplyIsIdentityMap) {
  const Matrix id = Matrix::identity(3);
  const std::vector<double> x{1.0, -2.0, 0.5};
  EXPECT_EQ(id.multiply(x), x);
}

TEST(MatrixTest, MultiplyKnownValues) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const std::vector<double> x{1.0, 0.0, -1.0};
  const std::vector<double> y = m.multiply(x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(MatrixTest, MultiplyTransposedMatchesExplicitTranspose) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const std::vector<double> x{2.0, -1.0};
  const std::vector<double> a = m.multiply_transposed(x);
  const std::vector<double> b = m.transposed().multiply(x);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(MatrixTest, MultiplySizeMismatchThrows) {
  const Matrix m(2, 3);
  const std::vector<double> bad(2, 0.0);
  EXPECT_THROW((void)m.multiply(bad), DimensionMismatch);
  const std::vector<double> bad_t(3, 0.0);
  EXPECT_THROW((void)m.multiply_transposed(bad_t), DimensionMismatch);
}

TEST(MatrixTest, FrobeniusNorm) {
  const Matrix m = Matrix::from_rows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(VectorOpsTest, Norms) {
  const std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm_l1(v), 7.0);
  EXPECT_DOUBLE_EQ(norm_l2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_linf(v), 4.0);
}

TEST(VectorOpsTest, DotAndDistance) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, -1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(distance_l1(a, b), 5.0);
  const std::vector<double> c{1.0};
  EXPECT_THROW((void)dot(a, c), DimensionMismatch);
  EXPECT_THROW((void)distance_l1(a, c), DimensionMismatch);
}

TEST(VectorOpsTest, NormalizeL1) {
  std::vector<double> v{1.0, 3.0};
  EXPECT_TRUE(normalize_l1(v));
  EXPECT_DOUBLE_EQ(v[0], 0.25);
  EXPECT_DOUBLE_EQ(v[1], 0.75);
  std::vector<double> zero{0.0, 0.0};
  EXPECT_FALSE(normalize_l1(zero));
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
}

}  // namespace
}  // namespace svo::linalg
