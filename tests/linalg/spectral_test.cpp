#include "linalg/spectral.hpp"

#include <gtest/gtest.h>

#include "linalg/power_method.hpp"
#include "util/rng.hpp"

namespace svo::linalg {
namespace {

TEST(GershgorinTest, DiagonalMatrixBoundsAreEigenvalues) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  a(2, 2) = 5.0;
  const GershgorinBounds b = gershgorin_bounds(a);
  EXPECT_DOUBLE_EQ(b.lower, -2.0);
  EXPECT_DOUBLE_EQ(b.upper, 5.0);
  EXPECT_DOUBLE_EQ(b.spectral_radius_bound, 5.0);
}

TEST(GershgorinTest, RowStochasticMatrixBoundedByOne) {
  // Any row-stochastic non-negative matrix has spectral radius <= 1;
  // Gershgorin must agree (each disc: center a_ii, radius 1 - a_ii).
  const Matrix a = Matrix::from_rows({{0.5, 0.5}, {0.25, 0.75}});
  const GershgorinBounds b = gershgorin_bounds(a);
  EXPECT_LE(b.spectral_radius_bound, 1.0 + 1e-12);
  EXPECT_GE(b.upper, 1.0 - 1e-12);  // the Perron eigenvalue 1 is inside
}

TEST(GershgorinTest, BoundsContainKnownEigenvalues) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 2.0}});
  const GershgorinBounds b = gershgorin_bounds(a);
  EXPECT_LE(b.lower, 1.0);
  EXPECT_GE(b.upper, 3.0);
}

TEST(GershgorinTest, EmptyAndInvalid) {
  const GershgorinBounds b = gershgorin_bounds(Matrix{});
  EXPECT_DOUBLE_EQ(b.spectral_radius_bound, 0.0);
  EXPECT_THROW((void)gershgorin_bounds(Matrix(2, 3)), InvalidArgument);
}

TEST(ResidualTest, ExactEigenpairHasZeroResidual) {
  // A^T x = x for the stationary distribution of a stochastic matrix.
  const Matrix a = Matrix::from_rows({{0.9, 0.1}, {0.5, 0.5}});
  const std::vector<double> pi{5.0 / 6.0, 1.0 / 6.0};
  EXPECT_NEAR(left_eigenpair_residual(a, pi, 1.0), 0.0, 1e-12);
}

TEST(ResidualTest, WrongEigenvalueHasPositiveResidual) {
  const Matrix a = Matrix::from_rows({{0.9, 0.1}, {0.5, 0.5}});
  const std::vector<double> pi{5.0 / 6.0, 1.0 / 6.0};
  EXPECT_GT(left_eigenpair_residual(a, pi, 0.5), 0.1);
}

TEST(ResidualTest, CertifiesPowerMethodOutput) {
  // End-to-end: the power method's result must have a small residual
  // under the damped operator's dominant eigenvalue estimate... for the
  // undamped case on an irreducible stochastic matrix, lambda = 1.
  util::Xoshiro256 rng(3);
  Matrix a(6, 6);
  for (std::size_t i = 0; i < 6; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < 6; ++j) {
      a(i, j) = rng.uniform(0.1, 1.0);
      sum += a(i, j);
    }
    for (std::size_t j = 0; j < 6; ++j) a(i, j) /= sum;
  }
  PowerMethodOptions opts;
  opts.damping = 0.0;
  opts.epsilon = 1e-13;
  const PowerMethodResult r = power_method(a, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(left_eigenpair_residual(a, r.eigenvector, 1.0), 1e-9);
}

TEST(ResidualTest, SizeChecks) {
  const Matrix a = Matrix::identity(2);
  const std::vector<double> wrong(3, 1.0);
  EXPECT_THROW((void)left_eigenpair_residual(a, wrong, 1.0),
               DimensionMismatch);
  EXPECT_THROW((void)left_eigenpair_residual(Matrix(2, 3), wrong, 1.0),
               InvalidArgument);
}

}  // namespace
}  // namespace svo::linalg
