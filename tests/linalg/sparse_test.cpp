/// CSR SparseMatrix semantics plus the headline sparse_power_method
/// contract: bit-identical to the dense engine on the same matrix, at
/// any thread count, and warm-startable (DESIGN.md §4i).
#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/power_method.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::linalg {
namespace {

Matrix random_row_stochastic(std::size_t n, double density,
                             util::Xoshiro256& rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && rng.bernoulli(density)) a(i, j) = rng.uniform(0.1, 1.0);
    }
    auto row = a.row(i);
    (void)normalize_l1(row);  // dangling rows stay zero
  }
  return a;
}

TEST(SparseMatrixTest, FromTripletsSumsDuplicatesAndDropsZeros) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      3, 4,
      {{0, 2, 1.5}, {0, 2, 0.5}, {1, 0, 3.0}, {2, 1, 2.0}, {2, 1, -2.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nnz(), 2u);  // duplicate summed, cancelling pair dropped
  EXPECT_EQ(m.at(0, 2), 2.0);
  EXPECT_EQ(m.at(1, 0), 3.0);
  EXPECT_EQ(m.at(2, 1), 0.0);
  EXPECT_EQ(m.at(0, 0), 0.0);
  EXPECT_TRUE(m.row(2).empty());
  EXPECT_DOUBLE_EQ(m.fill_ratio(), 2.0 / 12.0);
}

TEST(SparseMatrixTest, RowsAreColumnSorted) {
  const SparseMatrix m = SparseMatrix::from_triplets(
      2, 5, {{0, 4, 1.0}, {0, 1, 2.0}, {0, 3, 3.0}});
  const SparseMatrix::RowView r = m.row(0);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.cols[0], 1u);
  EXPECT_EQ(r.cols[1], 3u);
  EXPECT_EQ(r.cols[2], 4u);
  EXPECT_EQ(r.values[0], 2.0);
  EXPECT_EQ(r.values[1], 3.0);
  EXPECT_EQ(r.values[2], 1.0);
}

TEST(SparseMatrixTest, ValidatesTriplets) {
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               InvalidArgument);
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{0, 2, 1.0}}),
               InvalidArgument);
  EXPECT_THROW(
      SparseMatrix::from_triplets(
          2, 2, {{0, 1, std::numeric_limits<double>::infinity()}}),
      InvalidArgument);
  EXPECT_THROW(SparseMatrix::from_triplets(
                   2, 2, {{0, 1, std::numeric_limits<double>::quiet_NaN()}}),
               InvalidArgument);
  EXPECT_THROW((void)SparseMatrix().row(0), InvalidArgument);
  EXPECT_THROW((void)SparseMatrix().at(0, 0), InvalidArgument);
}

TEST(SparseMatrixTest, DenseRoundTripIsExact) {
  util::Xoshiro256 rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const Matrix dense = random_row_stochastic(12, 0.3, rng);
    const SparseMatrix sparse = SparseMatrix::from_dense(dense);
    const Matrix back = sparse.to_dense();
    for (std::size_t i = 0; i < 12; ++i) {
      for (std::size_t j = 0; j < 12; ++j) {
        EXPECT_EQ(back(i, j), dense(i, j));
      }
    }
  }
}

TEST(SparseMatrixTest, TransposedPreservesEntriesAndSortsBySource) {
  util::Xoshiro256 rng(7);
  const Matrix dense = random_row_stochastic(10, 0.4, rng);
  const SparseMatrix t = SparseMatrix::from_dense(dense).transposed();
  EXPECT_EQ(t.rows(), 10u);
  for (std::size_t j = 0; j < 10; ++j) {
    const SparseMatrix::RowView r = t.row(j);
    for (std::size_t k = 0; k < r.size(); ++k) {
      EXPECT_EQ(r.values[k], dense(r.cols[k], j));
      if (k > 0) EXPECT_LT(r.cols[k - 1], r.cols[k]);
    }
  }
}

TEST(SparseMatrixTest, MultiplyMatchesDense) {
  util::Xoshiro256 rng(11);
  const Matrix dense = random_row_stochastic(9, 0.5, rng);
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  std::vector<double> x(9);
  for (double& v : x) v = rng.uniform(0.0, 1.0);
  const std::vector<double> y = sparse.multiply(x);
  const std::vector<double> yt = sparse.multiply_transposed(x);
  for (std::size_t i = 0; i < 9; ++i) {
    double expect = 0.0;
    double expect_t = 0.0;
    for (std::size_t j = 0; j < 9; ++j) {
      expect += dense(i, j) * x[j];
      expect_t += dense(j, i) * x[j];
    }
    EXPECT_NEAR(y[i], expect, 1e-12);
    EXPECT_NEAR(yt[i], expect_t, 1e-12);
  }
  EXPECT_THROW((void)sparse.multiply(std::vector<double>(8)),
               DimensionMismatch);
  EXPECT_THROW((void)sparse.multiply_transposed(std::vector<double>(8)),
               DimensionMismatch);
}

/// The load-bearing property for the whole sparse backend: identical
/// eigenvectors — bitwise — to the dense engine, including iteration
/// counts, over random matrices, dangling rows, damping choices, and
/// pool thread counts.
TEST(SparsePowerMethodTest, BitIdenticalToDenseEngine) {
  util::Xoshiro256 rng(2024);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 2 + rng.index(40);
    const Matrix dense = random_row_stochastic(n, rng.uniform(0.05, 0.6), rng);
    const SparseMatrix sparse = SparseMatrix::from_dense(dense);
    for (const double damping : {0.0, 0.15}) {
      PowerMethodOptions opts;
      opts.damping = damping;
      const PowerMethodResult want = power_method(dense, opts);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        opts.threads = threads;
        const PowerMethodResult got = sparse_power_method(sparse, opts);
        ASSERT_EQ(got.iterations, want.iterations);
        EXPECT_EQ(got.converged, want.converged);
        EXPECT_FALSE(got.warm_started);
        ASSERT_EQ(got.eigenvector.size(), want.eigenvector.size());
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(got.eigenvector[i], want.eigenvector[i])
              << "n=" << n << " damping=" << damping
              << " threads=" << threads << " i=" << i;
        }
      }
    }
  }
}

TEST(SparsePowerMethodTest, EmptyAndValidation) {
  const PowerMethodResult empty = sparse_power_method(SparseMatrix());
  EXPECT_TRUE(empty.converged);
  EXPECT_TRUE(empty.eigenvector.empty());

  EXPECT_THROW((void)sparse_power_method(
                   SparseMatrix::from_triplets(2, 3, {{0, 1, 1.0}})),
               InvalidArgument);  // non-square
  EXPECT_THROW((void)sparse_power_method(
                   SparseMatrix::from_triplets(2, 2, {{0, 1, -1.0}})),
               InvalidArgument);  // negative entry
}

TEST(SparsePowerMethodTest, WarmStartConvergesToSameFixedPointFaster) {
  util::Xoshiro256 rng(5150);
  const std::size_t n = 400;
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t t = 0; t < 8; ++t) {
      const std::size_t j = rng.index(n);
      if (j != i) triplets.push_back({i, j, rng.uniform(0.1, 1.0)});
    }
  }
  const SparseMatrix a = SparseMatrix::from_triplets(n, n, triplets);
  PowerMethodOptions opts;
  opts.epsilon = 1e-10;
  const PowerMethodResult cold = sparse_power_method(a, opts);
  ASSERT_TRUE(cold.converged);

  // Restarting at the converged vector terminates (nearly) immediately
  // and flags the warm start.
  const PowerMethodResult warm =
      sparse_power_method(a, opts, cold.eigenvector);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations / 2);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(warm.eigenvector[i], cold.eigenvector[i], opts.epsilon);
  }
}

TEST(SparsePowerMethodTest, WarmStartValidation) {
  const SparseMatrix a =
      SparseMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(
      (void)sparse_power_method(a, {}, std::vector<double>{1.0}),
      InvalidArgument);  // size mismatch
  EXPECT_THROW(
      (void)sparse_power_method(a, {}, std::vector<double>{1.0, -0.5}),
      InvalidArgument);  // negative
  EXPECT_THROW(
      (void)sparse_power_method(a, {}, std::vector<double>{0.0, 0.0}),
      InvalidArgument);  // zero sum
  EXPECT_THROW(
      (void)sparse_power_method(
          a, {}, std::vector<double>{std::nan(""), 1.0}),
      InvalidArgument);  // non-finite
}

}  // namespace
}  // namespace svo::linalg
