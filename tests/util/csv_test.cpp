#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace svo::util {
namespace {

TEST(CsvEscapeTest, PlainFieldUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscapeTest, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(TableTest, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), InvalidArgument);
}

TEST(TableTest, ArityMismatchRejected) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({Cell{1LL}}), DimensionMismatch);
}

TEST(TableTest, CsvOutputMatchesContent) {
  Table t({"n", "name", "value"});
  t.set_precision(2);
  t.add_row({Cell{1LL}, Cell{std::string("alpha")}, Cell{1.5}});
  t.add_row({Cell{2LL}, Cell{std::string("beta,x")}, Cell{2.25}});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(),
            "n,name,value\n"
            "1,alpha,1.50\n"
            "2,\"beta,x\",2.25\n");
}

TEST(TableTest, PrettyOutputContainsAllCells) {
  Table t({"col"});
  t.add_row({Cell{std::string("payload")}});
  std::ostringstream os;
  t.write_pretty(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("payload"), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);  // border present
}

TEST(TableTest, RowAndColCounts) {
  Table t({"a", "b"});
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({Cell{1LL}, Cell{2LL}});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TableTest, WriteCsvFileRejectsBadPath) {
  Table t({"a"});
  EXPECT_THROW(t.write_csv_file("/nonexistent-dir/x.csv"), IoError);
}

}  // namespace
}  // namespace svo::util
