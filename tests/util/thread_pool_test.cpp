#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace svo::util {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(),
               [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, MatchesSerialSum) {
  ThreadPool pool(4);
  std::vector<double> data(5000);
  std::iota(data.begin(), data.end(), 0.0);
  std::vector<double> out(data.size(), 0.0);
  parallel_for(pool, 0, data.size(),
               [&](std::size_t i) { out[i] = data[i] * 2.0; });
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_DOUBLE_EQ(out[i], 2.0 * static_cast<double>(i));
  }
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, InvertedRangeThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 5, 4, [](std::size_t) {}), InvalidArgument);
}

TEST(ParallelForTest, RethrowsFirstWorkerException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 50) throw std::runtime_error("fail");
                            },
                            /*grain=*/1),
               std::runtime_error);
}

TEST(ParallelForTest, GlobalPoolOverloadWorks) {
  std::atomic<int> counter{0};
  parallel_for(0, 64, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 64);
}

// A task that throws must surface through its future — never reach
// std::terminate — and must leave the worker alive for later tasks.
TEST(ThreadPoolTest, WorkerSurvivesThrowingTask) {
  ThreadPool pool(1);  // one worker: the same thread must run both tasks
  auto bad = pool.submit([]() -> void { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, ManyThrowingTasksAllPropagate) {
  ThreadPool pool(4);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(
        pool.submit([i]() -> void { throw std::runtime_error(
            "task " + std::to_string(i)); }));
  }
  int caught = 0;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (const std::runtime_error&) {
      ++caught;
    }
  }
  EXPECT_EQ(caught, 64);
}

// Destruction contract: pending tasks run to completion before the
// workers join — shutdown never drops queued work.
TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i) {
      futures.push_back(pool.submit([&done] { ++done; }));
    }
    // Pool destroyed here with (likely) tasks still queued; futures for
    // queued work stay valid because the queue is drained, not dropped.
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPoolTest, OnWorkerThreadIdentifiesOwnWorkersOnly) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.on_worker_thread());  // calling thread is not a worker
  auto own = pool.submit([&pool] { return pool.on_worker_thread(); });
  EXPECT_TRUE(own.get());
  // A worker of `other` is not a worker of `pool`.
  auto cross = other.submit([&pool] { return pool.on_worker_thread(); });
  EXPECT_FALSE(cross.get());
}

// Regression: parallel_for issued from inside one of the pool's own
// tasks (a svc shard tick running a reputation mat-vec, say) must not
// re-submit chunks to the pool. With a single worker, re-submission is
// a guaranteed deadlock: the worker blocks in f.get() on chunks only it
// could run. The reentrancy fallback runs the loop inline instead.
TEST(ParallelForTest, NestedCallFromWorkerRunsInlineWithoutDeadlock) {
  ThreadPool pool(1);
  std::vector<std::atomic<int>> hits(256);
  auto outer = pool.submit([&] {
    // grain=1 forces the submission path if the inline fallback breaks.
    parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; },
                 /*grain=*/1);
  });
  outer.get();  // would hang forever without the fix
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Doubly-nested: a parallel_for iteration that itself calls parallel_for
// on the same pool. The inner loops run inline on whichever worker owns
// the outer iteration; every index is still covered exactly once.
TEST(ParallelForTest, ParallelForInsideParallelForCoversAllIndices) {
  ThreadPool pool(2);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for(pool, 0, kOuter, [&](std::size_t o) {
    parallel_for(pool, 0, kInner,
                 [&](std::size_t i) { ++hits[o * kInner + i]; },
                 /*grain=*/1);
  },
  /*grain=*/1);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Nested exceptions still propagate: the inline fallback must keep the
// rethrow-first-error contract of the submitted path.
TEST(ParallelForTest, NestedCallStillPropagatesExceptions) {
  ThreadPool pool(1);
  auto outer = pool.submit([&] {
    parallel_for(pool, 0, 8, [](std::size_t i) {
      if (i == 3) throw std::runtime_error("inner");
    });
  });
  EXPECT_THROW(outer.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorJoinsWithThrowingTasksInFlight) {
  // Exceptions captured into futures nobody reads must not leak out of
  // the worker loop during shutdown.
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      auto f = pool.submit([]() -> void { throw std::runtime_error("x"); });
      (void)f;  // deliberately abandoned
    }
  }
  SUCCEED();  // reaching here means no std::terminate
}

}  // namespace
}  // namespace svo::util
