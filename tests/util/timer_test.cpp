#include "util/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <type_traits>

#include "obs/trace.hpp"

namespace svo::util {
namespace {

// The Fig. 9 execution-time experiment and every obs span duration ride
// on this clock: it must be monotonic (steady), or a wall-clock step
// (NTP, DST) would corrupt measured durations.
static_assert(WallTimer::clock::is_steady,
              "WallTimer must use a monotonic clock");

// The observability spine is pinned to the *same* clock, so span
// timestamps and WallTimer measurements are mutually comparable.
static_assert(std::is_same_v<obs::TraceClock, WallTimer::clock>,
              "obs trace spans must share WallTimer's clock");

TEST(WallTimerTest, ElapsedIsNonNegativeAndMonotone) {
  const WallTimer timer;
  double prev = timer.seconds();
  ASSERT_GE(prev, 0.0);
  for (int i = 0; i < 1000; ++i) {
    const double now = timer.seconds();
    ASSERT_GE(now, prev);  // regression: time never goes backwards
    prev = now;
  }
}

TEST(WallTimerTest, MeasuresSleeps) {
  const WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = timer.seconds();
  EXPECT_GE(s, 0.009);  // sleep_for may over-sleep, never under
}

TEST(WallTimerTest, MillisecondsTracksSeconds) {
  const WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double ms = timer.milliseconds();
  EXPECT_GE(ms, 1.9);
}

TEST(WallTimerTest, ResetRestartsTheStopwatch) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.reset();
  EXPECT_LT(timer.seconds(), 0.005);
}

TEST(TraceClockTest, NowMicrosIsMonotone) {
  std::uint64_t prev = obs::now_micros();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t now = obs::now_micros();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace svo::util
