#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace svo::util {
namespace {

/// Gamma(shape, scale) has mean shape*scale and variance shape*scale^2;
/// the Marsaglia-Tsang sampler must reproduce both across regimes
/// (including the shape < 1 boosting branch).
class GammaMomentsTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(GammaMomentsTest, MeanAndVarianceMatch) {
  const auto [shape, scale] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(shape * 1000 + scale * 10));
  RunningStats stats;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.gamma(shape, scale);
    ASSERT_GT(x, 0.0);
    stats.add(x);
  }
  const double mean = shape * scale;
  const double var = shape * scale * scale;
  EXPECT_NEAR(stats.mean(), mean, 0.02 * mean + 0.01);
  EXPECT_NEAR(stats.variance(), var, 0.08 * var + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, GammaMomentsTest,
    ::testing::Values(std::pair{0.5, 1.0},   // boosting branch
                      std::pair{1.0, 2.0},   // exponential special case
                      std::pair{4.2, 0.94},  // Lublin short component
                      std::pair{312.0, 0.03},  // Lublin long component
                      std::pair{9.0, 0.5}));

TEST(GammaTest, Shape1MatchesExponential) {
  // Gamma(1, 1/lambda) == Exponential(lambda): compare tail fractions.
  Xoshiro256 rng(77);
  int above = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) above += rng.gamma(1.0, 1.0) > 1.0;
  EXPECT_NEAR(above / static_cast<double>(kDraws), std::exp(-1.0), 0.01);
}

TEST(GammaTest, Validation) {
  Xoshiro256 rng(1);
  EXPECT_THROW((void)rng.gamma(0.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)rng.gamma(1.0, 0.0), InvalidArgument);
  EXPECT_THROW((void)rng.gamma(-1.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace svo::util
