#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(RunningStatsTest, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleObservationVarianceZero) {
  RunningStats s;
  s.add(3.14);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Xoshiro256 rng(5);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(PercentileTest, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(PercentileTest, RejectsBadInput) {
  EXPECT_THROW((void)percentile({}, 0.5), InvalidArgument);
  EXPECT_THROW((void)percentile({1.0}, -0.1), InvalidArgument);
  EXPECT_THROW((void)percentile({1.0}, 1.1), InvalidArgument);
}

TEST(SummarizeTest, MatchesComponents) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(SummarizeTest, EmptyInputIsAllZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace svo::util
