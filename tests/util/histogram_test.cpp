#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace svo::util {
namespace {

TEST(HistogramTest, LinearBinning) {
  Histogram h(0.0, 10.0, 5);
  for (double x : {0.5, 1.5, 2.5, 2.6, 9.9}) h.add(x);
  EXPECT_EQ(h.count(0), 2u);  // [0,2): 0.5, 1.5
  EXPECT_EQ(h.count(1), 2u);  // [2,4): 2.5, 2.6
  EXPECT_EQ(h.count(4), 1u);  // [8,10): 9.9
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramTest, UnderflowAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, BinRangesTile) {
  Histogram h(2.0, 12.0, 5);
  double prev_hi = 2.0;
  for (std::size_t b = 0; b < 5; ++b) {
    const auto [lo, hi] = h.bin_range(b);
    EXPECT_DOUBLE_EQ(lo, prev_hi);
    EXPECT_GT(hi, lo);
    prev_hi = hi;
  }
  EXPECT_DOUBLE_EQ(prev_hi, 12.0);
}

TEST(HistogramTest, LogarithmicBinsCoverDecades) {
  Histogram h = Histogram::logarithmic(1.0, 1000.0, 3);
  h.add(5.0);     // [1, 10)
  h.add(50.0);    // [10, 100)
  h.add(500.0);   // [100, 1000)
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  const auto [lo, hi] = h.bin_range(1);
  EXPECT_NEAR(lo, 10.0, 1e-9);
  EXPECT_NEAR(hi, 100.0, 1e-9);
}

TEST(HistogramTest, RenderShowsNonEmptyBins) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(3.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find(" 2"), std::string::npos);
}

TEST(HistogramTest, Validation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 3), InvalidArgument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
  EXPECT_THROW(Histogram::logarithmic(0.0, 10.0, 3), InvalidArgument);
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count(5), InvalidArgument);
  EXPECT_THROW((void)h.bin_range(5), InvalidArgument);
}

}  // namespace
}  // namespace svo::util
