#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace svo::util {
namespace {

TEST(Xoshiro256Test, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256Test, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 2.25);
  }
}

TEST(Xoshiro256Test, UniformRejectsInvertedRange) {
  Xoshiro256 rng(7);
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), InvalidArgument);
}

TEST(Xoshiro256Test, UniformIntCoversInclusiveRange) {
  Xoshiro256 rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values hit
}

TEST(Xoshiro256Test, IndexIsApproximatelyUniform) {
  Xoshiro256 rng(13);
  constexpr std::size_t kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.index(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 10.0, kDraws / 10.0 * 0.1);
  }
}

TEST(Xoshiro256Test, IndexZeroThrows) {
  Xoshiro256 rng(1);
  EXPECT_THROW((void)rng.index(0), InvalidArgument);
}

TEST(Xoshiro256Test, BernoulliMatchesProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(Xoshiro256Test, BernoulliRejectsBadProbability) {
  Xoshiro256 rng(1);
  EXPECT_THROW((void)rng.bernoulli(-0.1), InvalidArgument);
  EXPECT_THROW((void)rng.bernoulli(1.1), InvalidArgument);
}

TEST(Xoshiro256Test, NormalHasExpectedMoments) {
  Xoshiro256 rng(19);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(Xoshiro256Test, ExponentialHasExpectedMean) {
  Xoshiro256 rng(23);
  double sum = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.02);
}

TEST(Xoshiro256Test, SplitProducesIndependentStream) {
  Xoshiro256 a(31);
  Xoshiro256 child = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == child());
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256Test, ShuffleIsPermutation) {
  Xoshiro256 rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Xoshiro256Test, PickThrowsOnEmpty) {
  Xoshiro256 rng(1);
  const std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), InvalidArgument);
}

TEST(DeriveSeedTest, DistinctStreamsDistinctSeeds) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 1000; ++s) seeds.insert(derive_seed(99, s));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeedTest, DeterministicInInputs) {
  EXPECT_EQ(derive_seed(5, 9), derive_seed(5, 9));
  EXPECT_NE(derive_seed(5, 9), derive_seed(6, 9));
  EXPECT_NE(derive_seed(5, 9), derive_seed(5, 10));
}

// Property sweep: index() stays in range for many (seed, n) pairs.
class IndexRangeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IndexRangeTest, AlwaysInRange) {
  Xoshiro256 rng(GetParam());
  for (std::size_t n : {1ul, 2ul, 3ul, 10ul, 1000ul, 1'000'000ul}) {
    for (int i = 0; i < 200; ++i) ASSERT_LT(rng.index(n), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexRangeTest,
                         ::testing::Values(1, 2, 3, 1234, 99999));

}  // namespace
}  // namespace svo::util
