#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>

namespace svo::util {
namespace {

// ---------------------------------------------------------------- parse_ll

TEST(ParseLlTest, AcceptsPlainIntegers) {
  EXPECT_EQ(parse_ll("0"), 0);
  EXPECT_EQ(parse_ll("42"), 42);
  EXPECT_EQ(parse_ll("-17"), -17);
  EXPECT_EQ(parse_ll("+5"), 5);
}

TEST(ParseLlTest, RejectsEmptyAndWhitespace) {
  EXPECT_FALSE(parse_ll("").has_value());
  EXPECT_FALSE(parse_ll(" 42").has_value());
  EXPECT_FALSE(parse_ll("42 ").has_value());
  EXPECT_FALSE(parse_ll("4 2").has_value());
  EXPECT_FALSE(parse_ll("\t7").has_value());
}

TEST(ParseLlTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(parse_ll("42x").has_value());
  EXPECT_FALSE(parse_ll("1.5").has_value());
  EXPECT_FALSE(parse_ll("0x10").has_value());
  EXPECT_FALSE(parse_ll("abc").has_value());
}

TEST(ParseLlTest, RejectsOverflow) {
  // Just past LLONG_MAX / LLONG_MIN: strtoll saturates and sets ERANGE,
  // which the strict parser must surface as rejection, not saturation.
  EXPECT_FALSE(parse_ll("9223372036854775808").has_value());
  EXPECT_FALSE(parse_ll("-9223372036854775809").has_value());
  EXPECT_EQ(parse_ll("9223372036854775807"),
            std::numeric_limits<long long>::max());
}

// --------------------------------------------------------------- parse_u64

TEST(ParseU64Test, AcceptsFullRange) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ParseU64Test, RejectsNegativeInsteadOfWrapping) {
  // strtoull silently wraps "-1" to 2^64-1; the strict parser must not.
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("-0").has_value());
}

TEST(ParseU64Test, RejectsOverflowAndGarbage) {
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());
  EXPECT_FALSE(parse_u64("12junk").has_value());
  EXPECT_FALSE(parse_u64("").has_value());
}

// ------------------------------------------------------ parse_positive_size

TEST(ParsePositiveSizeTest, RejectsZero) {
  EXPECT_FALSE(parse_positive_size("0").has_value());
  EXPECT_EQ(parse_positive_size("1"), 1u);
  EXPECT_EQ(parse_positive_size("8192"), 8192u);
}

// ------------------------------------------------------------- parse_double

TEST(ParseDoubleTest, AcceptsFiniteValues) {
  EXPECT_DOUBLE_EQ(*parse_double("0.5"), 0.5);
  EXPECT_DOUBLE_EQ(*parse_double("-3"), -3.0);
  EXPECT_DOUBLE_EQ(*parse_double("1e3"), 1000.0);
}

TEST(ParseDoubleTest, RejectsNonFiniteAndGarbage) {
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double("1e999").has_value());  // ERANGE
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double(" 1.5").has_value());
}

// ---------------------------------------------------------- parse_size_list

TEST(ParseSizeListTest, ParsesCommaSeparatedSizes) {
  const auto v = parse_size_list("256,1024,8192");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (std::vector<std::size_t>{256, 1024, 8192}));
}

TEST(ParseSizeListTest, SingleElement) {
  const auto v = parse_size_list("64");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, (std::vector<std::size_t>{64}));
}

TEST(ParseSizeListTest, RejectsMalformedLists) {
  // One bad token poisons the whole list — no silent partial parses.
  EXPECT_FALSE(parse_size_list("").has_value());
  EXPECT_FALSE(parse_size_list(",").has_value());
  EXPECT_FALSE(parse_size_list("256,").has_value());       // trailing comma
  EXPECT_FALSE(parse_size_list(",256").has_value());       // leading comma
  EXPECT_FALSE(parse_size_list("256,,1024").has_value());  // empty token
  EXPECT_FALSE(parse_size_list("256,abc").has_value());
  EXPECT_FALSE(parse_size_list("256,0").has_value());      // zero size
  EXPECT_FALSE(parse_size_list("256, 1024").has_value());  // inner space
  EXPECT_FALSE(parse_size_list("256,-4").has_value());
}

// ------------------------------------------------------------ env_*_or

class EnvOverrideTest : public ::testing::Test {
 protected:
  void SetEnv(const char* name, const char* value) {
    ASSERT_EQ(::setenv(name, value, /*overwrite=*/1), 0);
    set_.push_back(name);
  }
  void TearDown() override {
    for (const std::string& name : set_) ::unsetenv(name.c_str());
  }

 private:
  std::vector<std::string> set_;
};

TEST_F(EnvOverrideTest, UnsetUsesFallback) {
  ::unsetenv("SVO_TEST_UNSET");
  EXPECT_EQ(env_u64_or("SVO_TEST_UNSET", 7), 7u);
  EXPECT_EQ(env_positive_size_or("SVO_TEST_UNSET", 3), 3u);
  EXPECT_EQ(env_size_list_or("SVO_TEST_UNSET", {1, 2}),
            (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(env_string_or("SVO_TEST_UNSET", "dflt"), "dflt");
}

TEST_F(EnvOverrideTest, ValidValueOverrides) {
  SetEnv("SVO_TEST_U64", "123");
  EXPECT_EQ(env_u64_or("SVO_TEST_U64", 7), 123u);
  SetEnv("SVO_TEST_SIZES", "2,4,8");
  EXPECT_EQ(env_size_list_or("SVO_TEST_SIZES", {1}),
            (std::vector<std::size_t>{2, 4, 8}));
}

TEST_F(EnvOverrideTest, MalformedValueFallsBack) {
  SetEnv("SVO_TEST_U64", "12abc");
  EXPECT_EQ(env_u64_or("SVO_TEST_U64", 7), 7u);
  SetEnv("SVO_TEST_REPS", "0");  // positive-size: zero is malformed
  EXPECT_EQ(env_positive_size_or("SVO_TEST_REPS", 10), 10u);
  SetEnv("SVO_TEST_SIZES", "256,");
  EXPECT_EQ(env_size_list_or("SVO_TEST_SIZES", {99}),
            (std::vector<std::size_t>{99}));
}

TEST_F(EnvOverrideTest, OverflowFallsBack) {
  SetEnv("SVO_TEST_U64", "99999999999999999999999999");
  EXPECT_EQ(env_u64_or("SVO_TEST_U64", 5), 5u);
}

}  // namespace
}  // namespace svo::util
