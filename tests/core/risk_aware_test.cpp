/// Tests for the risk-aware (expected-payoff) selection extension.
#include <gtest/gtest.h>

#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "sim/learning.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::core {
namespace {

TEST(EstimateReliabilityTest, MeanIncomingTrustClamped) {
  trust::TrustGraph trust(4);
  trust.set_trust(0, 2, 0.8);
  trust.set_trust(1, 2, 0.4);
  trust.set_trust(3, 2, 5.0);  // clamped to 1.0
  EXPECT_NEAR(estimate_reliability(trust, 2), (0.8 + 0.4 + 1.0) / 3.0, 1e-12);
}

TEST(EstimateReliabilityTest, PriorWhenNoEvidence) {
  trust::TrustGraph trust(3);
  trust.set_trust(0, 1, 0.9);  // evidence about 1, none about 2
  EXPECT_DOUBLE_EQ(estimate_reliability(trust, 2), 0.5);
  EXPECT_DOUBLE_EQ(estimate_reliability(trust, 2, 0.25), 0.25);
}

TEST(EstimateReliabilityTest, ValidatesArguments) {
  trust::TrustGraph trust(2);
  EXPECT_THROW((void)estimate_reliability(trust, 9), InvalidArgument);
  EXPECT_THROW((void)estimate_reliability(trust, 0, 2.0), InvalidArgument);
}

TEST(RiskAwareSelectionTest, PicksMaxExpectedShareFromJournal) {
  util::Xoshiro256 rng(3);
  const ip::AssignmentInstance inst = ip::testing::random_instance(6, 18, rng);
  const trust::TrustGraph trust = trust::random_trust_graph(6, 0.6, rng);

  const ip::BnbAssignmentSolver solver;
  MechanismConfig cfg;
  cfg.selection = SelectionRule::MaxExpectedIndividualPayoff;
  const TvofMechanism tvof(solver, cfg);
  util::Xoshiro256 mech_rng(5);
  const MechanismResult r = tvof.run(FormationRequest{inst, trust, mech_rng});
  if (!r.success) GTEST_SKIP() << "no feasible VO";

  const auto expected_share = [&](game::Coalition c, double cost) {
    double p = 1.0;
    for (const std::size_t g : c.members()) {
      p *= estimate_reliability(trust, g);
    }
    return (p * inst.payment - cost) / static_cast<double>(c.size());
  };
  const auto selected_it =
      std::find_if(r.journal.begin(), r.journal.end(), [&](const auto& it) {
        return it.coalition == r.selected;
      });
  ASSERT_NE(selected_it, r.journal.end());
  const double selected_key =
      expected_share(r.selected, selected_it->cost);
  for (const auto& it : r.journal) {
    if (!it.feasible) continue;
    EXPECT_GE(selected_key, expected_share(it.coalition, it.cost) - 1e-9);
  }
}

TEST(RiskAwareSelectionTest, PrefersReliableVoOverCheaperRiskyOne) {
  // Two GSPs are heavily distrusted; the expected-payoff rule must avoid
  // VOs containing them even when those VOs promise a higher share.
  util::Xoshiro256 rng(7);
  const ip::AssignmentInstance inst = ip::testing::random_instance(5, 15, rng);
  trust::TrustGraph trust(5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i == j) continue;
      trust.set_trust(i, j, j < 2 ? 0.05 : 0.95);  // G0, G1 distrusted
    }
  }
  const ip::BnbAssignmentSolver solver;
  MechanismConfig cfg;
  cfg.selection = SelectionRule::MaxExpectedIndividualPayoff;
  const TvofMechanism risk_aware(solver, cfg);
  util::Xoshiro256 mech_rng(11);
  const MechanismResult r = risk_aware.run(FormationRequest{inst, trust, mech_rng});
  if (!r.success) GTEST_SKIP() << "no feasible VO";
  // The final VO is the feasible list entry with the fewest distrusted
  // members (TVOF's removal order evicts G0/G1 first, and the expected
  // rule has no reason to go back to them).
  std::size_t distrusted = 0;
  for (const std::size_t g : r.selected.members()) distrusted += g < 2;
  for (const auto& it : r.journal) {
    if (!it.feasible) continue;
    std::size_t cand = 0;
    for (const std::size_t g : it.coalition.members()) cand += g < 2;
    EXPECT_LE(distrusted, cand);
  }
}

TEST(RiskAwareSelectionTest, ClosedLoopRealizesMoreThanPromiseChaser) {
  // Same closed loop, same seeds: expected-payoff selection should not
  // realize less value than the paper's promised-payoff selection when
  // a third of the population is unreliable.
  const ip::BnbAssignmentSolver solver;
  MechanismConfig risk_cfg;
  risk_cfg.selection = SelectionRule::MaxExpectedIndividualPayoff;
  const TvofMechanism plain(solver);
  const TvofMechanism risk_aware(solver, risk_cfg);
  sim::ClosedLoopConfig cfg;
  cfg.rounds = 16;
  cfg.num_tasks = 24;
  cfg.gen.params.num_gsps = 6;
  double plain_total = 0.0;
  double risk_total = 0.0;
  for (const std::uint64_t seed : {101ull, 202ull, 303ull, 404ull, 505ull}) {
    util::Xoshiro256 rng(seed);
    const sim::ReliabilityModel model =
        sim::ReliabilityModel::bimodal(6, 0.66, 0.9, 0.25, rng);
    plain_total +=
        sim::run_closed_loop(plain, model, cfg, seed).mean_realized_share;
    risk_total +=
        sim::run_closed_loop(risk_aware, model, cfg, seed).mean_realized_share;
  }
  EXPECT_GE(risk_total, plain_total - 1e-9);
}

}  // namespace
}  // namespace svo::core
