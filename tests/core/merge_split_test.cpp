#include "core/merge_split.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "game/payoff.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::core {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Fixture make_fixture(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(m, n, rng);
  f.trust = trust::random_trust_graph(m, 0.4, rng);
  return f;
}

TEST(MergeSplitTest, StructureIsAPartition) {
  const Fixture f = make_fixture(6, 18, 1);
  const ip::BnbAssignmentSolver solver;
  const MergeSplitMechanism msvof(solver);
  const MergeSplitResult r = msvof.run(f.instance, f.trust);
  // Every GSP in exactly one coalition.
  std::uint64_t seen = 0;
  for (const game::Coalition c : r.structure) {
    EXPECT_EQ(seen & c.bits(), 0u) << "coalitions overlap";
    seen |= c.bits();
  }
  EXPECT_EQ(seen, game::Coalition::all(6).bits());
}

TEST(MergeSplitTest, FindsAFeasibleExecutor) {
  const Fixture f = make_fixture(6, 18, 2);
  const ip::BnbAssignmentSolver solver;
  const MergeSplitMechanism msvof(solver);
  const MergeSplitResult r = msvof.run(f.instance, f.trust);
  ASSERT_TRUE(r.success);
  EXPECT_FALSE(r.selected.empty());
  EXPECT_GT(r.payoff_share, 0.0);
  EXPECT_NEAR(r.value, f.instance.payment - r.cost, 1e-9);
  // The mapping uses only members of the selected coalition.
  for (const std::size_t g : r.mapping) {
    EXPECT_TRUE(r.selected.contains(g));
  }
}

TEST(MergeSplitTest, SelectedIsInStructure) {
  const Fixture f = make_fixture(6, 18, 3);
  const ip::BnbAssignmentSolver solver;
  const MergeSplitMechanism msvof(solver);
  const MergeSplitResult r = msvof.run(f.instance, f.trust);
  ASSERT_TRUE(r.success);
  bool found = false;
  for (const game::Coalition c : r.structure) found |= (c == r.selected);
  EXPECT_TRUE(found);
}

TEST(MergeSplitTest, TerminatesWithinRoundCap) {
  const Fixture f = make_fixture(8, 24, 4);
  const ip::BnbAssignmentSolver solver;
  MergeSplitConfig cfg;
  cfg.max_rounds = 64;
  const MergeSplitMechanism msvof(solver, cfg);
  const MergeSplitResult r = msvof.run(f.instance, f.trust);
  EXPECT_LT(r.rounds, cfg.max_rounds);  // converged, not capped
}

TEST(MergeSplitTest, PayoffOnlyModeMatchesReputationBlindRun) {
  const Fixture f = make_fixture(6, 18, 5);
  const ip::BnbAssignmentSolver solver;
  MergeSplitConfig payoff_only;
  payoff_only.consider_reputation = false;
  const MergeSplitMechanism msvof(solver, payoff_only);
  const MergeSplitResult r = msvof.run(f.instance, f.trust);
  // Reputation must not gate any rule, so the run still succeeds and the
  // structure remains a partition.
  std::uint64_t seen = 0;
  for (const game::Coalition c : r.structure) seen |= c.bits();
  EXPECT_EQ(seen, game::Coalition::all(6).bits());
  ASSERT_TRUE(r.success);
}

TEST(MergeSplitTest, NoSplitUndoesNothingToLoseMerges) {
  // All coalitions infeasible (payment 0): everything merges into blobs,
  // nothing ever splits, and the mechanism reports failure gracefully.
  Fixture f = make_fixture(5, 10, 6);
  f.instance.payment = 0.0;
  const ip::BnbAssignmentSolver solver;
  const MergeSplitMechanism msvof(solver);
  const MergeSplitResult r = msvof.run(f.instance, f.trust);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.splits, 0u);
  std::uint64_t seen = 0;
  for (const game::Coalition c : r.structure) seen |= c.bits();
  EXPECT_EQ(seen, game::Coalition::all(5).bits());
}

TEST(MergeSplitTest, DeterministicAcrossRuns) {
  const Fixture f = make_fixture(6, 18, 7);
  const ip::BnbAssignmentSolver solver;
  const MergeSplitMechanism msvof(solver);
  const MergeSplitResult a = msvof.run(f.instance, f.trust);
  const MergeSplitResult b = msvof.run(f.instance, f.trust);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.merges, b.merges);
  EXPECT_EQ(a.splits, b.splits);
  EXPECT_DOUBLE_EQ(a.payoff_share, b.payoff_share);
}

TEST(MergeSplitTest, TrustSizeMismatchThrows) {
  const Fixture f = make_fixture(5, 10, 8);
  const trust::TrustGraph wrong(3);
  const ip::BnbAssignmentSolver solver;
  const MergeSplitMechanism msvof(solver);
  EXPECT_THROW((void)msvof.run(f.instance, wrong), InvalidArgument);
}

/// Property sweep: the final structure is always a partition, and when
/// the mechanism reports success the selected coalition's payoff is the
/// best among the structure's feasible coalitions.
class MergeSplitPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeSplitPropertyTest, SelectionIsBestFeasibleInStructure) {
  const Fixture f = make_fixture(6, 15, GetParam() * 7919);
  const ip::BnbAssignmentSolver solver;
  const MergeSplitMechanism msvof(solver);
  const MergeSplitResult r = msvof.run(f.instance, f.trust);
  std::uint64_t seen = 0;
  for (const game::Coalition c : r.structure) {
    ASSERT_EQ(seen & c.bits(), 0u);
    seen |= c.bits();
  }
  ASSERT_EQ(seen, game::Coalition::all(6).bits());
  if (!r.success) return;
  const game::VoValueFunction v(f.instance, solver);
  for (const game::Coalition c : r.structure) {
    const auto& eval = v.evaluate(c);
    if (eval.feasible) {
      EXPECT_LE(game::equal_share(eval.value, c.size()),
                r.payoff_share + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, MergeSplitPropertyTest,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace svo::core
