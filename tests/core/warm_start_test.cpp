/// The mechanism-level warm-start contract: under WarmStartPolicy::
/// Incremental the shrinking-coalition loop repairs and reuses previous
/// solves, but the selected VO, its cost, the journal, and every solver
/// status must be bit-identical to a cold run. Also covers the
/// FormationRequest wrapper equivalence.
#include "core/mechanism.hpp"

#include <gtest/gtest.h>

#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"
#include "trust/trust_graph.hpp"

namespace svo::core {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Fixture make_fixture(std::size_t m, std::size_t n, std::uint64_t seed,
                     bool tight = false) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(m, n, rng, tight);
  f.trust = trust::random_trust_graph(m, 0.4, rng);
  return f;
}

MechanismResult run_with_policy(const VoFormationMechanism& mech,
                                const Fixture& f, std::uint64_t rng_seed,
                                WarmStartPolicy policy) {
  util::Xoshiro256 rng(rng_seed);
  return mech.run(FormationRequest{f.instance, f.trust, rng,
                                   game::Coalition{}, policy});
}

void expect_identical_outcomes(const MechanismResult& cold,
                               const MechanismResult& warm,
                               const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(warm.success, cold.success);
  EXPECT_EQ(warm.selected.bits(), cold.selected.bits());  // same VO, bitwise
  EXPECT_EQ(warm.mapping, cold.mapping);
  EXPECT_EQ(warm.cost, cold.cost);    // exact, not approximate
  EXPECT_EQ(warm.value, cold.value);  // exact
  EXPECT_EQ(warm.payoff_share, cold.payoff_share);
  ASSERT_EQ(warm.journal.size(), cold.journal.size());
  for (std::size_t i = 0; i < cold.journal.size(); ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    EXPECT_EQ(warm.journal[i].coalition.bits(), cold.journal[i].coalition.bits());
    EXPECT_EQ(warm.journal[i].feasible, cold.journal[i].feasible);
    EXPECT_EQ(warm.journal[i].cost, cold.journal[i].cost);
    EXPECT_EQ(warm.journal[i].removed_gsp, cold.journal[i].removed_gsp);
    EXPECT_EQ(warm.journal[i].stats.status, cold.journal[i].stats.status);
    EXPECT_LE(warm.journal[i].stats.nodes, cold.journal[i].stats.nodes);
  }
  // Warm pruning can only shrink the total search.
  EXPECT_LE(warm.stats.nodes, cold.stats.nodes);
}

/// The headline property, over random instances, seeds, and both
/// mechanisms: warm runs select a bit-identical VO at identical cost.
TEST(MechanismWarmStartTest, WarmEqualsColdAcrossInstancesAndMechanisms) {
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  const RvofMechanism rvof(solver);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Fixture f =
        make_fixture(5 + seed % 2, 12 + seed, seed, /*tight=*/seed % 3 == 0);
    for (const VoFormationMechanism* mech :
         {static_cast<const VoFormationMechanism*>(&tvof),
          static_cast<const VoFormationMechanism*>(&rvof)}) {
      const MechanismResult cold =
          run_with_policy(*mech, f, 100 + seed, WarmStartPolicy::Off);
      const MechanismResult warm =
          run_with_policy(*mech, f, 100 + seed, WarmStartPolicy::Incremental);
      expect_identical_outcomes(
          cold, warm, mech->name() + " seed " + std::to_string(seed));
      EXPECT_FALSE(cold.stats.warm_start_used);
    }
  }
}

TEST(MechanismWarmStartTest, WarmRunsActuallyReuseIncumbents) {
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  const Fixture f = make_fixture(6, 16, 5);
  const MechanismResult warm =
      run_with_policy(tvof, f, 9, WarmStartPolicy::Incremental);
  ASSERT_GT(warm.journal.size(), 1u);  // needs at least one shrink step
  EXPECT_TRUE(warm.stats.warm_start_used);
  EXPECT_GT(warm.stats.repair_moves, 0u);
  // The first iteration is always cold; later feasible ones are warm.
  EXPECT_FALSE(warm.journal.front().stats.warm_start_used);
}

TEST(MechanismWarmStartTest, PolicyDoesNotPerturbRngConsumption) {
  // Warm repair is deterministic and must not touch the mechanism RNG:
  // after a run under either policy the RNG must sit at the same point.
  const ip::BnbAssignmentSolver solver;
  const RvofMechanism rvof(solver);  // RVOF consumes RNG every removal
  const Fixture f = make_fixture(6, 14, 23);
  util::Xoshiro256 rng_cold(7);
  util::Xoshiro256 rng_warm(7);
  (void)rvof.run(FormationRequest{f.instance, f.trust, rng_cold,
                                  game::Coalition{}, WarmStartPolicy::Off});
  (void)rvof.run(FormationRequest{f.instance, f.trust, rng_warm,
                                  game::Coalition{},
                                  WarmStartPolicy::Incremental});
  EXPECT_EQ(rng_cold(), rng_warm());
}

}  // namespace
}  // namespace svo::core
