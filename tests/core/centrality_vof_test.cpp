#include "core/centrality_vof.hpp"

#include <gtest/gtest.h>

#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::core {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Fixture make_fixture(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(6, 18, rng);
  f.trust = trust::random_trust_graph(6, 0.4, rng);
  return f;
}

TEST(CentralityVofTest, RuleNamesAreDistinct) {
  EXPECT_STREQ(to_string(CentralityRule::Eigenvector), "eigenvector");
  EXPECT_STREQ(to_string(CentralityRule::Degree), "degree");
  EXPECT_STREQ(to_string(CentralityRule::Closeness), "closeness");
  EXPECT_STREQ(to_string(CentralityRule::Betweenness), "betweenness");
}

TEST(CentralityVofTest, EigenvectorRuleMatchesTvofDecision) {
  const Fixture f = make_fixture(1);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  const CentralityVofMechanism cvof(solver, CentralityRule::Eigenvector);
  util::Xoshiro256 rng_a(5);
  util::Xoshiro256 rng_b(5);
  const MechanismResult a = tvof.run(FormationRequest{f.instance, f.trust, rng_a});
  const MechanismResult b = cvof.run(FormationRequest{f.instance, f.trust, rng_b});
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_EQ(cvof.name(), "CVOF-eigenvector");
}

TEST(CentralityVofTest, EveryRuleProducesValidMechanismRun) {
  const Fixture f = make_fixture(2);
  const ip::BnbAssignmentSolver solver;
  for (const CentralityRule rule :
       {CentralityRule::Degree, CentralityRule::Closeness,
        CentralityRule::Betweenness}) {
    const CentralityVofMechanism cvof(solver, rule);
    util::Xoshiro256 rng(7);
    const MechanismResult r = cvof.run(FormationRequest{f.instance, f.trust, rng});
    ASSERT_TRUE(r.success) << to_string(rule);
    // Journal invariants hold under any removal rule.
    EXPECT_EQ(r.journal.front().coalition.size(), 6u);
    for (const auto& it : r.journal) {
      if (it.feasible) EXPECT_GE(r.payoff_share, it.payoff_share - 1e-9);
    }
  }
}

TEST(CentralityVofTest, DegreeRuleRemovesLeastTrustedFirst) {
  // Star-ish trust: G5 receives no trust at all. The degree rule must
  // remove it first.
  util::Xoshiro256 rng(3);
  Fixture f = make_fixture(3);
  trust::TrustGraph star(6);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      if (i != j) star.set_trust(i, j, 1.0);
    }
  }
  star.set_trust(5, 0, 1.0);  // G5 trusts someone; nobody trusts G5
  const ip::BnbAssignmentSolver solver;
  const CentralityVofMechanism cvof(solver, CentralityRule::Degree);
  const MechanismResult r = cvof.run(FormationRequest{f.instance, star, rng});
  ASSERT_GE(r.journal.size(), 1u);
  EXPECT_EQ(r.journal.front().removed_gsp, 5u);
}

}  // namespace
}  // namespace svo::core
