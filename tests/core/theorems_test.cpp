/// Empirical verification of the paper's two theorems across many random
/// scenarios, plus the TVOF-vs-RVOF reputation ordering underlying Fig. 3.
#include <gtest/gtest.h>

#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "game/pareto.hpp"
#include "game/payoff.hpp"
#include "game/stability.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"
#include "trust/reputation.hpp"

namespace svo::core {
namespace {

struct Scenario {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Scenario make_scenario(std::uint64_t seed, std::size_t m = 6,
                       std::size_t n = 18) {
  util::Xoshiro256 rng(seed);
  Scenario s;
  s.instance = ip::testing::random_instance(m, n, rng);
  s.trust = trust::random_trust_graph(m, 0.4, rng);
  return s;
}

class TheoremTest : public ::testing::TestWithParam<int> {};

/// Theorem 1: the VO returned by TVOF is individually stable — no member
/// can depart leaving all remaining members weakly better off. Note the
/// paper's proof (Case 2) argues with the *total* reputation of the VO
/// ("removing G decreases the total reputation of GSPs in C"), so the
/// member preference here scores coalitions by (payoff share, total
/// global reputation); under *average* reputation the property does not
/// hold in general (measured in bench_ablation_stability).
TEST_P(TheoremTest, Theorem1IndividualStability) {
  const Scenario s = make_scenario(GetParam() * 1009);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(GetParam());
  const MechanismResult r = tvof.run(FormationRequest{s.instance, s.trust, rng});
  if (!r.success) GTEST_SKIP() << "no feasible VO in this scenario";

  const game::VoValueFunction v(s.instance, solver);
  const auto scorer = [&](game::Coalition c) {
    game::BicriteriaPoint p;
    p.tag = c.bits();
    const auto& eval = v.evaluate(c);
    p.payoff = eval.feasible ? game::equal_share(eval.value, c.size()) : 0.0;
    double rep = 0.0;
    for (const std::size_t g : c.members()) rep += r.global_reputation[g];
    p.reputation = rep;  // total, per the paper's proof of Theorem 1
    return p;
  };
  EXPECT_TRUE(game::individually_stable(r.selected, scorer))
      << "departure of G"
      << game::find_blocking_departure(r.selected, scorer)
      << " weakly improves the rest";
}

/// Theorem 2: TVOF's VO is Pareto optimal within the explored list L —
/// no other explored feasible VO dominates it in both individual payoff
/// and average global reputation.
TEST_P(TheoremTest, Theorem2ParetoOptimalWithinL) {
  const Scenario s = make_scenario(GetParam() * 2003);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(GetParam());
  const MechanismResult r = tvof.run(FormationRequest{s.instance, s.trust, rng});
  if (!r.success) GTEST_SKIP() << "no feasible VO in this scenario";

  std::vector<game::BicriteriaPoint> points;
  std::size_t selected_index = SIZE_MAX;
  for (const auto& it : r.journal) {
    if (!it.feasible) continue;
    if (it.coalition == r.selected) selected_index = points.size();
    points.push_back(
        {it.payoff_share, it.avg_global_reputation, it.coalition.bits()});
  }
  ASSERT_NE(selected_index, SIZE_MAX);
  EXPECT_TRUE(game::is_pareto_optimal(points, selected_index));
}

/// Equal-share bookkeeping: per-iteration shares times coalition size
/// reconstruct v(C) (eq. (18) consistency).
TEST_P(TheoremTest, EqualSharesSumToCoalitionValue) {
  const Scenario s = make_scenario(GetParam() * 3001);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(GetParam());
  const MechanismResult r = tvof.run(FormationRequest{s.instance, s.trust, rng});
  for (const auto& it : r.journal) {
    if (!it.feasible) continue;
    EXPECT_NEAR(it.payoff_share * static_cast<double>(it.coalition.size()),
                it.value, 1e-6);
    EXPECT_NEAR(it.value, s.instance.payment - it.cost, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, TheoremTest, ::testing::Range(1, 16));

/// Fig. 3's mechanism-level claim: across scenarios, TVOF's selected VO
/// has at least RVOF's average global reputation *on average* (per-run it
/// can tie or even lose; the aggregate must not).
TEST(ReputationOrderingTest, TvofBeatsRvofOnAverage) {
  double tvof_sum = 0.0;
  double rvof_sum = 0.0;
  int runs = 0;
  for (int seed = 1; seed <= 20; ++seed) {
    const Scenario s = make_scenario(seed * 4001);
    const ip::BnbAssignmentSolver solver;
    const TvofMechanism tvof(solver);
    const RvofMechanism rvof(solver);
    util::Xoshiro256 rng_t(seed);
    util::Xoshiro256 rng_r(seed + 1000);
    const MechanismResult rt = tvof.run(FormationRequest{s.instance, s.trust, rng_t});
    const MechanismResult rr = rvof.run(FormationRequest{s.instance, s.trust, rng_r});
    if (!rt.success || !rr.success) continue;
    tvof_sum += rt.avg_global_reputation;
    rvof_sum += rr.avg_global_reputation;
    ++runs;
  }
  ASSERT_GT(runs, 10);
  EXPECT_GE(tvof_sum, rvof_sum);
}

}  // namespace
}  // namespace svo::core
