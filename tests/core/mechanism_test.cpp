#include "core/mechanism.hpp"

#include <gtest/gtest.h>

#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"
#include "trust/reputation.hpp"

namespace svo::core {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

/// m GSPs, n tasks, dense-enough trust so reputations are informative.
Fixture make_fixture(std::size_t m, std::size_t n, std::uint64_t seed,
                     double trust_p = 0.4) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(m, n, rng);
  f.trust = trust::random_trust_graph(m, trust_p, rng);
  return f;
}

TEST(MechanismTest, JournalCoalitionsShrinkByOne) {
  const Fixture f = make_fixture(6, 18, 1);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(99);
  const MechanismResult r = tvof.run(FormationRequest{f.instance, f.trust, rng});
  ASSERT_FALSE(r.journal.empty());
  EXPECT_EQ(r.journal.front().coalition.size(), 6u);
  for (std::size_t i = 1; i < r.journal.size(); ++i) {
    EXPECT_EQ(r.journal[i].coalition.size(),
              r.journal[i - 1].coalition.size() - 1);
    // The removed GSP really left.
    const std::size_t removed = r.journal[i - 1].removed_gsp;
    ASSERT_NE(removed, SIZE_MAX);
    EXPECT_TRUE(r.journal[i - 1].coalition.contains(removed));
    EXPECT_FALSE(r.journal[i].coalition.contains(removed));
  }
}

TEST(MechanismTest, LoopStopsAtFirstInfeasible) {
  const Fixture f = make_fixture(6, 18, 2);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(7);
  const MechanismResult r = tvof.run(FormationRequest{f.instance, f.trust, rng});
  for (std::size_t i = 0; i + 1 < r.journal.size(); ++i) {
    EXPECT_TRUE(r.journal[i].feasible);  // only the last may be infeasible
  }
}

TEST(MechanismTest, SelectedVoMaximizesShareAmongFeasible) {
  const Fixture f = make_fixture(6, 18, 3);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(11);
  const MechanismResult r = tvof.run(FormationRequest{f.instance, f.trust, rng});
  ASSERT_TRUE(r.success);
  for (const auto& it : r.journal) {
    if (it.feasible) {
      EXPECT_GE(r.payoff_share, it.payoff_share - 1e-9);
    }
  }
}

TEST(MechanismTest, MappingSatisfiesAllIpConstraints) {
  const Fixture f = make_fixture(5, 15, 4);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(13);
  const MechanismResult r = tvof.run(FormationRequest{f.instance, f.trust, rng});
  ASSERT_TRUE(r.success);
  // Restrict the instance to the selected VO and check (10)-(13).
  std::vector<std::size_t> original;
  const ip::AssignmentInstance sub = f.instance.restrict_to(
      r.selected.mask(f.instance.num_gsps()), &original);
  ip::Assignment local(r.mapping.size());
  for (std::size_t t = 0; t < r.mapping.size(); ++t) {
    const auto pos =
        std::find(original.begin(), original.end(), r.mapping[t]);
    ASSERT_NE(pos, original.end()) << "mapping uses GSP outside the VO";
    local[t] = static_cast<std::size_t>(pos - original.begin());
  }
  EXPECT_EQ(ip::check_feasible(sub, local), "");
  EXPECT_NEAR(ip::assignment_cost(sub, local), r.cost, 1e-9);
  EXPECT_NEAR(r.value, f.instance.payment - r.cost, 1e-9);
}

TEST(MechanismTest, TvofRemovesLowestRecomputedReputation) {
  const Fixture f = make_fixture(6, 18, 5);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(17);
  const MechanismResult r = tvof.run(FormationRequest{f.instance, f.trust, rng});
  const trust::ReputationEngine engine(tvof.config().reputation);
  for (const auto& it : r.journal) {
    if (it.removed_gsp == SIZE_MAX) continue;
    const auto members = it.coalition.members();
    const trust::ReputationResult rep = engine.compute(f.trust, members);
    double lowest = rep.scores[0];
    for (const double s : rep.scores) lowest = std::min(lowest, s);
    // The removed GSP's recomputed score equals the minimum.
    const auto pos =
        std::find(members.begin(), members.end(), it.removed_gsp);
    ASSERT_NE(pos, members.end());
    const double removed_score =
        rep.scores[static_cast<std::size_t>(pos - members.begin())];
    EXPECT_NEAR(removed_score, lowest, 1e-9);
  }
}

TEST(MechanismTest, DeterministicInRngSeed) {
  const Fixture f = make_fixture(6, 18, 6);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng_a(23);
  util::Xoshiro256 rng_b(23);
  const MechanismResult a = tvof.run(FormationRequest{f.instance, f.trust, rng_a});
  const MechanismResult b = tvof.run(FormationRequest{f.instance, f.trust, rng_b});
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_EQ(a.journal.size(), b.journal.size());
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(MechanismTest, RvofRunsSameLoopWithRandomRemoval) {
  const Fixture f = make_fixture(6, 18, 7);
  const ip::BnbAssignmentSolver solver;
  const RvofMechanism rvof(solver);
  util::Xoshiro256 rng(29);
  const MechanismResult r = rvof.run(FormationRequest{f.instance, f.trust, rng});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.journal.front().coalition.size(), 6u);
  for (const auto& it : r.journal) {
    if (it.feasible) EXPECT_GE(r.payoff_share, it.payoff_share - 1e-9);
  }
}

TEST(MechanismTest, ProductSelectionRuleUsesReputation) {
  const Fixture f = make_fixture(6, 18, 8);
  const ip::BnbAssignmentSolver solver;
  MechanismConfig cfg;
  cfg.selection = SelectionRule::MaxPayoffReputationProduct;
  const TvofMechanism tvof(solver, cfg);
  util::Xoshiro256 rng(31);
  const MechanismResult r = tvof.run(FormationRequest{f.instance, f.trust, rng});
  ASSERT_TRUE(r.success);
  const double key = r.payoff_share * r.avg_global_reputation;
  for (const auto& it : r.journal) {
    if (it.feasible) {
      EXPECT_GE(key, it.payoff_share * it.avg_global_reputation - 1e-9);
    }
  }
}

TEST(MechanismTest, FailureWhenNothingFeasible) {
  Fixture f = make_fixture(4, 8, 9);
  f.instance.payment = 0.0;  // nobody can execute under a zero budget
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(37);
  const MechanismResult r = tvof.run(FormationRequest{f.instance, f.trust, rng});
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.selected.empty());
  ASSERT_EQ(r.journal.size(), 1u);
  EXPECT_FALSE(r.journal.front().feasible);
}

TEST(MechanismTest, TrustSizeMismatchThrows) {
  const Fixture f = make_fixture(5, 10, 10);
  const trust::TrustGraph wrong(4);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(41);
  EXPECT_THROW((void)tvof.run(FormationRequest{f.instance, wrong, rng}), InvalidArgument);
}

TEST(MechanismTest, GlobalReputationVectorExported) {
  const Fixture f = make_fixture(6, 12, 11);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(43);
  const MechanismResult r = tvof.run(FormationRequest{f.instance, f.trust, rng});
  ASSERT_EQ(r.global_reputation.size(), 6u);
  double sum = 0.0;
  for (const double x : r.global_reputation) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // avg_global_reputation consistent with the exported vector.
  double acc = 0.0;
  for (const std::size_t g : r.selected.members()) {
    acc += r.global_reputation[g];
  }
  EXPECT_NEAR(r.avg_global_reputation,
              acc / static_cast<double>(r.selected.size()), 1e-12);
}

}  // namespace
}  // namespace svo::core
