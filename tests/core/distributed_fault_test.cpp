/// Fault-tolerance tests for the hardened trusted-party protocol:
/// faults-off bit-equality, determinism under identical seeds, quorum
/// degradation equivalence, and repair-path task conservation.
#include <gtest/gtest.h>

#include "core/distributed_tvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::core {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Fixture make_fixture(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(m, n, rng);
  f.trust = trust::random_trust_graph(m, 0.4, rng);
  return f;
}

/// Checks the acceptance invariant: either formation failed explicitly,
/// or every task is assigned exactly once, onto selected members only.
void expect_tasks_conserved(const DistributedRunResult& r, std::size_t n) {
  if (!r.mechanism.success) {
    EXPECT_TRUE(r.protocol.formation_failed);
    return;
  }
  ASSERT_EQ(r.mechanism.mapping.size(), n);
  for (const std::size_t g : r.mechanism.mapping) {
    EXPECT_TRUE(r.mechanism.selected.contains(g));
  }
}

TEST(DistributedFaultTest, CleanRunHasZeroFaultMetrics) {
  const Fixture f = make_fixture(6, 18, 1);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng_local(9);
  util::Xoshiro256 rng_dist(9);
  const MechanismResult local = tvof.run(FormationRequest{f.instance, f.trust, rng_local});
  const DistributedRunResult dist =
      run_distributed(tvof, f.instance, f.trust, rng_dist);
  EXPECT_EQ(dist.mechanism.selected, local.selected);
  EXPECT_DOUBLE_EQ(dist.mechanism.cost, local.cost);
  EXPECT_EQ(dist.protocol.retries, 0u);
  EXPECT_EQ(dist.protocol.timeouts_fired, 0u);
  EXPECT_EQ(dist.protocol.drops_observed, 0u);
  EXPECT_EQ(dist.protocol.repair_rounds, 0u);
  EXPECT_FALSE(dist.protocol.degraded_quorum);
  EXPECT_FALSE(dist.protocol.formation_failed);
}

// The acceptance criterion of the hardening change: with all fault knobs
// at zero, arming the phase timers must not perturb anything — protocol
// metrics and decision are bit-identical whether hardening is on
// (default) or off (timeouts zero, the legacy lossless protocol).
TEST(DistributedFaultTest, FaultsOffBitIdenticalWithAndWithoutHardening) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Fixture f = make_fixture(6, 18, seed);
    const ip::BnbAssignmentSolver solver;
    const TvofMechanism tvof(solver);

    ProtocolOptions legacy;
    legacy.report_timeout_seconds = 0.0;
    legacy.award_timeout_seconds = 0.0;

    util::Xoshiro256 rng_a(9 + seed);
    util::Xoshiro256 rng_b(9 + seed);
    const DistributedRunResult hardened =
        run_distributed(tvof, f.instance, f.trust, rng_a);
    const DistributedRunResult plain =
        run_distributed(tvof, f.instance, f.trust, rng_b, legacy);

    EXPECT_EQ(hardened.mechanism.selected, plain.mechanism.selected);
    EXPECT_EQ(hardened.mechanism.mapping, plain.mechanism.mapping);
    EXPECT_DOUBLE_EQ(hardened.mechanism.cost, plain.mechanism.cost);
    EXPECT_EQ(hardened.mechanism.journal.size(),
              plain.mechanism.journal.size());
    EXPECT_EQ(hardened.protocol.messages, plain.protocol.messages);
    EXPECT_EQ(hardened.protocol.bytes, plain.protocol.bytes);
    EXPECT_DOUBLE_EQ(hardened.protocol.report_phase_seconds,
                     plain.protocol.report_phase_seconds);
    // completion embeds the *measured* host compute time of the
    // mechanism run (as in the legacy protocol), which differs between
    // any two executions; net of it, the protocol timeline is identical.
    EXPECT_NEAR(
        hardened.protocol.completion_seconds -
            hardened.mechanism.elapsed_seconds,
        plain.protocol.completion_seconds - plain.mechanism.elapsed_seconds,
        1e-12);
  }
}

// Same as above, but for a mechanism-failure run (no awards): the
// completion fallback path must also be identical.
TEST(DistributedFaultTest, FaultsOffBitIdenticalOnMechanismFailure) {
  Fixture f = make_fixture(4, 8, 4);
  f.instance.payment = 0.0;  // nothing feasible
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  ProtocolOptions legacy;
  legacy.report_timeout_seconds = 0.0;
  legacy.award_timeout_seconds = 0.0;
  util::Xoshiro256 rng_a(17);
  util::Xoshiro256 rng_b(17);
  const DistributedRunResult hardened =
      run_distributed(tvof, f.instance, f.trust, rng_a);
  const DistributedRunResult plain =
      run_distributed(tvof, f.instance, f.trust, rng_b, legacy);
  EXPECT_FALSE(hardened.mechanism.success);
  EXPECT_TRUE(hardened.protocol.formation_failed);
  EXPECT_EQ(hardened.protocol.messages, plain.protocol.messages);
  EXPECT_NEAR(hardened.protocol.completion_seconds -
                  hardened.mechanism.elapsed_seconds,
              plain.protocol.completion_seconds -
                  plain.mechanism.elapsed_seconds,
              1e-12);
}

TEST(DistributedFaultTest, OptionsValidation) {
  const Fixture f = make_fixture(4, 8, 5);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(1);

  ProtocolOptions bad;
  bad.gsp_processing_seconds = -1.0;
  EXPECT_THROW((void)run_distributed(tvof, f.instance, f.trust, rng, bad),
               InvalidArgument);
  bad = ProtocolOptions{};
  bad.quorum_fraction = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ProtocolOptions{};
  bad.backoff_multiplier = 0.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ProtocolOptions{};
  bad.latency.jitter = -0.2;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  // Faults with disabled timers would hang a lossy protocol: rejected.
  bad = ProtocolOptions{};
  bad.faults.drop_probability = 0.1;
  bad.report_timeout_seconds = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad.report_timeout_seconds = 0.5;
  bad.award_timeout_seconds = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad.award_timeout_seconds = 0.25;
  EXPECT_NO_THROW(bad.validate());
}

TEST(DistributedFaultTest, DropsTriggerRetriesAndProtocolStillCompletes) {
  const Fixture f = make_fixture(6, 18, 2);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  ProtocolOptions opt;
  opt.faults.drop_probability = 0.3;
  opt.faults.seed = 77;
  opt.report_timeout_seconds = 0.05;
  opt.award_timeout_seconds = 0.05;
  util::Xoshiro256 rng(11);
  const DistributedRunResult r =
      run_distributed(tvof, f.instance, f.trust, rng, opt);
  // A 30% loss rate on 6 CFPs + 6 reports virtually guarantees at least
  // one timeout with this fault seed; the protocol must still terminate
  // with an explicit outcome and a conserved task set.
  EXPECT_GT(r.protocol.drops_observed, 0u);
  EXPECT_GT(r.protocol.timeouts_fired, 0u);
  expect_tasks_conserved(r, 18);
}

TEST(DistributedFaultTest, DeterministicUnderIdenticalSeeds) {
  const Fixture f = make_fixture(6, 18, 3);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  ProtocolOptions opt;
  opt.faults.drop_probability = 0.25;
  opt.faults.straggler_probability = 0.2;
  opt.faults.straggler_multiplier = 5.0;
  opt.faults.seed = 123;
  opt.report_timeout_seconds = 0.05;
  opt.award_timeout_seconds = 0.05;

  const auto run_once = [&] {
    util::Xoshiro256 rng(13);
    return run_distributed(tvof, f.instance, f.trust, rng, opt);
  };
  const DistributedRunResult a = run_once();
  const DistributedRunResult b = run_once();
  // Everything not tied to the host wall clock must match exactly.
  EXPECT_EQ(a.mechanism.selected, b.mechanism.selected);
  EXPECT_EQ(a.mechanism.mapping, b.mechanism.mapping);
  EXPECT_EQ(a.protocol.messages, b.protocol.messages);
  EXPECT_EQ(a.protocol.bytes, b.protocol.bytes);
  EXPECT_EQ(a.protocol.retries, b.protocol.retries);
  EXPECT_EQ(a.protocol.timeouts_fired, b.protocol.timeouts_fired);
  EXPECT_EQ(a.protocol.drops_observed, b.protocol.drops_observed);
  EXPECT_EQ(a.protocol.repair_rounds, b.protocol.repair_rounds);
  EXPECT_EQ(a.protocol.degraded_quorum, b.protocol.degraded_quorum);
  EXPECT_EQ(a.protocol.formation_failed, b.protocol.formation_failed);

  // A different fault seed must be able to change the fault trace.
  ProtocolOptions other = opt;
  other.faults.seed = 124;
  util::Xoshiro256 rng(13);
  const DistributedRunResult c =
      run_distributed(tvof, f.instance, f.trust, rng, other);
  EXPECT_NE(a.protocol.drops_observed, c.protocol.drops_observed);
}

// Quorum degradation: with two GSPs dead from the start, the TP times
// out, proceeds with the four responsive reports, and its decision is
// exactly the mechanism run over that subset.
TEST(DistributedFaultTest, QuorumDegradationMatchesSubsetRun) {
  const Fixture f = make_fixture(6, 18, 6);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  ProtocolOptions opt;
  opt.faults.crashes = gsp_crash_schedule({{1, 0.0}, {4, 0.0}});  // dead GSPs
  opt.report_timeout_seconds = 0.05;
  opt.award_timeout_seconds = 0.05;
  opt.max_retries = 1;

  util::Xoshiro256 rng_dist(21);
  const DistributedRunResult r =
      run_distributed(tvof, f.instance, f.trust, rng_dist, opt);
  EXPECT_TRUE(r.protocol.degraded_quorum);
  // Quorum (3 of 6) is already met when the first timeout fires, so the
  // TP proceeds immediately — no CFP re-sends (those are exercised in
  // ReportsFormationFailureWhenQuorumUnreachable).
  EXPECT_EQ(r.protocol.timeouts_fired, 1u);
  EXPECT_EQ(r.protocol.retries, 0u);
  EXPECT_FALSE(r.mechanism.selected.contains(1));
  EXPECT_FALSE(r.mechanism.selected.contains(4));

  // Decision equivalence with a direct run over the responsive subset.
  util::Xoshiro256 rng_local(21);
  const game::Coalition responsive =
      game::Coalition::all(6).without(1).without(4);
  const MechanismResult local =
      tvof.run(FormationRequest{f.instance, f.trust, rng_local, responsive});
  EXPECT_EQ(r.mechanism.selected, local.selected);
  EXPECT_EQ(r.mechanism.mapping, local.mapping);
  EXPECT_DOUBLE_EQ(r.mechanism.cost, local.cost);
  expect_tasks_conserved(r, 18);
}

// Quorum impossible: everyone is dead; the TP must give up explicitly
// instead of hanging.
TEST(DistributedFaultTest, ReportsFormationFailureWhenQuorumUnreachable) {
  const Fixture f = make_fixture(4, 8, 7);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  ProtocolOptions opt;
  opt.faults.crashes =
      gsp_crash_schedule({{0, 0.0}, {1, 0.0}, {2, 0.0}, {3, 0.0}});
  opt.report_timeout_seconds = 0.02;
  opt.award_timeout_seconds = 0.02;
  opt.max_retries = 2;
  util::Xoshiro256 rng(31);
  const DistributedRunResult r =
      run_distributed(tvof, f.instance, f.trust, rng, opt);
  EXPECT_TRUE(r.protocol.formation_failed);
  EXPECT_FALSE(r.mechanism.success);
  EXPECT_EQ(r.protocol.timeouts_fired, 3u);  // initial + 2 retry rounds
  EXPECT_EQ(r.protocol.retries, 8u);         // 2 rounds x 4 silent GSPs
  EXPECT_GT(r.protocol.drops_observed, 0u);
}

// Repair path: a selected member crashes after reporting but before the
// award reaches it. The TP must declare it failed, re-run formation over
// the survivors, and hand over a complete reassignment.
TEST(DistributedFaultTest, RepairsVoAfterSelectedMemberCrash) {
  const Fixture f = make_fixture(6, 18, 1);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);

  // Discover the clean decision first (same rng seed the faulty run
  // uses), to crash a GSP that is certain to be selected.
  util::Xoshiro256 probe_rng(9);
  const DistributedRunResult clean =
      run_distributed(tvof, f.instance, f.trust, probe_rng);
  ASSERT_TRUE(clean.mechanism.success);
  const std::size_t victim = clean.mechanism.selected.members().front();

  ProtocolOptions opt;
  // The victim dies the moment the report phase completes: its report
  // got through, but it will never see its award.
  opt.faults.crashes =
      gsp_crash_schedule({{victim, clean.protocol.report_phase_seconds}});
  opt.report_timeout_seconds = 0.5;
  opt.award_timeout_seconds = 0.05;
  opt.max_retries = 1;
  util::Xoshiro256 rng(9);
  const DistributedRunResult r =
      run_distributed(tvof, f.instance, f.trust, rng, opt);

  EXPECT_GE(r.protocol.repair_rounds, 1u);
  EXPECT_GE(r.protocol.retries, 1u);        // the award was re-sent first
  EXPECT_GE(r.protocol.timeouts_fired, 2u); // initial + retry timer
  ASSERT_TRUE(r.mechanism.success);
  EXPECT_FALSE(r.mechanism.selected.contains(victim));
  EXPECT_FALSE(r.protocol.formation_failed);
  EXPECT_GT(r.protocol.completion_seconds,
            clean.protocol.completion_seconds);
  expect_tasks_conserved(r, 18);
}

// Stress: heavy loss plus random permanent crashes across several
// seeds. The protocol must always terminate with either a fully
// assigned program or an explicit failure — never a hang or a silently
// dropped task (a hang would trip the test timeout).
TEST(DistributedFaultTest, NeverDeadlocksOrDropsTasksUnderHeavyFaults) {
  const Fixture f = make_fixture(6, 18, 8);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    ProtocolOptions opt;
    opt.faults.drop_probability = 0.4;
    opt.faults.straggler_probability = 0.3;
    opt.faults.straggler_multiplier = 10.0;
    opt.faults.crashes = gsp_crash_schedule(
        des::random_crash_windows(6, 0.3, 0.5, 0.0, 1000 + seed));
    opt.faults.seed = seed;
    opt.report_timeout_seconds = 0.05;
    opt.award_timeout_seconds = 0.05;
    opt.max_retries = 2;
    util::Xoshiro256 rng(seed);
    const DistributedRunResult r =
        run_distributed(tvof, f.instance, f.trust, rng, opt);
    expect_tasks_conserved(r, 18);
    if (r.mechanism.success) {
      // Survivor invariant: no crashed-at-zero GSP can be a member.
      for (const auto& w : opt.faults.crashes) {
        if (w.begin == 0.0) {
          EXPECT_FALSE(r.mechanism.selected.contains(w.node - 1));
        }
      }
    }
  }
}

}  // namespace
}  // namespace svo::core
