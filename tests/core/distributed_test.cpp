#include "core/distributed_tvof.hpp"

#include <gtest/gtest.h>

#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::core {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Fixture make_fixture(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(m, n, rng);
  f.trust = trust::random_trust_graph(m, 0.4, rng);
  return f;
}

TEST(DistributedTvofTest, DecisionIdenticalToLocalRun) {
  const Fixture f = make_fixture(6, 18, 1);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng_local(9);
  util::Xoshiro256 rng_dist(9);
  const MechanismResult local = tvof.run(FormationRequest{f.instance, f.trust, rng_local});
  const DistributedRunResult dist =
      run_distributed(tvof, f.instance, f.trust, rng_dist);
  EXPECT_EQ(dist.mechanism.selected, local.selected);
  EXPECT_DOUBLE_EQ(dist.mechanism.cost, local.cost);
  EXPECT_EQ(dist.mechanism.journal.size(), local.journal.size());
}

TEST(DistributedTvofTest, MessageCountMatchesProtocol) {
  const Fixture f = make_fixture(6, 18, 2);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(11);
  const DistributedRunResult r =
      run_distributed(tvof, f.instance, f.trust, rng);
  ASSERT_TRUE(r.mechanism.success);
  const std::size_t m = 6;
  const std::size_t members = r.mechanism.selected.size();
  const std::size_t released = m - members;
  // CFP (m) + REPORT (m) + RELEASE (removed) + AWARD + ACK (members each).
  EXPECT_EQ(r.protocol.messages, m + m + released + members + members);
  EXPECT_GT(r.protocol.bytes, 0u);
}

TEST(DistributedTvofTest, TimelineIsOrdered) {
  const Fixture f = make_fixture(6, 18, 3);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(13);
  const DistributedRunResult r =
      run_distributed(tvof, f.instance, f.trust, rng);
  EXPECT_GT(r.protocol.report_phase_seconds, 0.0);
  EXPECT_GT(r.protocol.completion_seconds,
            r.protocol.report_phase_seconds);
  // Completion includes the measured mechanism compute time.
  EXPECT_GE(r.protocol.completion_seconds,
            r.mechanism.elapsed_seconds + r.protocol.report_phase_seconds);
}

TEST(DistributedTvofTest, FailureStillTerminatesCleanly) {
  Fixture f = make_fixture(4, 8, 4);
  f.instance.payment = 0.0;  // nothing feasible
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(17);
  const DistributedRunResult r =
      run_distributed(tvof, f.instance, f.trust, rng);
  EXPECT_FALSE(r.mechanism.success);
  // CFP + REPORT both ways; no awards/acks. (The single infeasible
  // iteration removes nobody, so no RELEASE either.)
  EXPECT_EQ(r.protocol.messages, 4u + 4u);
  EXPECT_GT(r.protocol.completion_seconds, 0.0);
}

TEST(DistributedTvofTest, BytesScaleWithProblemSize) {
  const Fixture small = make_fixture(4, 8, 5);
  const Fixture large = make_fixture(8, 64, 5);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng_a(19);
  util::Xoshiro256 rng_b(19);
  const DistributedRunResult a =
      run_distributed(tvof, small.instance, small.trust, rng_a);
  const DistributedRunResult b =
      run_distributed(tvof, large.instance, large.trust, rng_b);
  EXPECT_GT(b.protocol.bytes, a.protocol.bytes);
}

}  // namespace
}  // namespace svo::core
