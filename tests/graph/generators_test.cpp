#include "graph/generators.hpp"

#include <gtest/gtest.h>

namespace svo::graph {
namespace {

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  util::Xoshiro256 rng(1);
  ErdosRenyiOptions opts;
  opts.p = 0.1;
  const std::size_t n = 100;
  const Digraph g = erdos_renyi(n, opts, rng);
  const double expected = 0.1 * static_cast<double>(n * (n - 1));
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected, expected * 0.15);
}

TEST(ErdosRenyiTest, NoSelfLoopsByDefault) {
  util::Xoshiro256 rng(2);
  ErdosRenyiOptions opts;
  opts.p = 1.0;
  const Digraph g = erdos_renyi(10, opts, rng);
  for (std::size_t v = 0; v < 10; ++v) {
    EXPECT_FALSE(g.edge_weight(v, v).has_value());
  }
  EXPECT_EQ(g.edge_count(), 90u);
}

TEST(ErdosRenyiTest, WeightsArePositiveAndBounded) {
  util::Xoshiro256 rng(3);
  ErdosRenyiOptions opts;
  opts.p = 0.5;
  opts.weight_lo = 0.0;
  opts.weight_hi = 2.0;
  const Digraph g = erdos_renyi(20, opts, rng);
  for (std::size_t v = 0; v < 20; ++v) {
    for (const auto& e : g.out_edges(v)) {
      EXPECT_GT(e.weight, 0.0);
      EXPECT_LE(e.weight, 2.0);
    }
  }
}

TEST(ErdosRenyiTest, ZeroProbabilityYieldsEmptyGraph) {
  util::Xoshiro256 rng(4);
  ErdosRenyiOptions opts;
  opts.p = 0.0;
  EXPECT_EQ(erdos_renyi(10, opts, rng).edge_count(), 0u);
}

TEST(ErdosRenyiTest, DeterministicInSeed) {
  ErdosRenyiOptions opts;
  opts.p = 0.3;
  util::Xoshiro256 rng_a(7);
  util::Xoshiro256 rng_b(7);
  const Digraph a = erdos_renyi(15, opts, rng_a);
  const Digraph b = erdos_renyi(15, opts, rng_b);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (std::size_t v = 0; v < 15; ++v) {
    for (const auto& e : a.out_edges(v)) {
      const auto w = b.edge_weight(v, e.to);
      ASSERT_TRUE(w.has_value());
      EXPECT_DOUBLE_EQ(*w, e.weight);
    }
  }
}

TEST(ErdosRenyiTest, RejectsBadParameters) {
  util::Xoshiro256 rng(1);
  ErdosRenyiOptions opts;
  opts.p = 1.5;
  EXPECT_THROW((void)erdos_renyi(5, opts, rng), InvalidArgument);
  opts.p = 0.5;
  opts.weight_lo = 2.0;
  opts.weight_hi = 1.0;
  EXPECT_THROW((void)erdos_renyi(5, opts, rng), InvalidArgument);
}

TEST(CompleteGraphTest, AllOffDiagonalEdgesPresent) {
  util::Xoshiro256 rng(5);
  const Digraph g = complete_graph(6, 0.0, 1.0, rng);
  EXPECT_EQ(g.edge_count(), 30u);
}

}  // namespace
}  // namespace svo::graph
