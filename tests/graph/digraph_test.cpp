#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace svo::graph {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(DigraphTest, SetAndQueryEdges) {
  Digraph g(3);
  g.set_edge(0, 1, 2.5);
  g.set_edge(1, 2, 0.5);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1).value(), 2.5);
  EXPECT_FALSE(g.edge_weight(1, 0).has_value());
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(2), 1u);
}

TEST(DigraphTest, SetEdgeOverwritesWeight) {
  Digraph g(2);
  g.set_edge(0, 1, 1.0);
  g.set_edge(0, 1, 3.0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1).value(), 3.0);
}

TEST(DigraphTest, RemoveEdge) {
  Digraph g(2);
  g.set_edge(0, 1, 1.0);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(DigraphTest, WeightedDegrees) {
  Digraph g(3);
  g.set_edge(0, 2, 1.5);
  g.set_edge(1, 2, 2.5);
  EXPECT_DOUBLE_EQ(g.in_weight(2), 4.0);
  EXPECT_DOUBLE_EQ(g.out_weight(0), 1.5);
}

TEST(DigraphTest, BoundsChecked) {
  Digraph g(2);
  EXPECT_THROW(g.set_edge(0, 2, 1.0), InvalidArgument);
  EXPECT_THROW(g.set_edge(2, 0, 1.0), InvalidArgument);
  EXPECT_THROW(g.set_edge(0, 1, -1.0), InvalidArgument);
  EXPECT_THROW((void)g.out_edges(5), InvalidArgument);
}

TEST(DigraphTest, AdjacencyMatrix) {
  Digraph g(2);
  g.set_edge(0, 1, 0.7);
  const linalg::Matrix a = g.adjacency_matrix();
  EXPECT_DOUBLE_EQ(a(0, 1), 0.7);
  EXPECT_DOUBLE_EQ(a(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
}

TEST(DigraphTest, InducedSubgraphRenumbersAndFiltersEdges) {
  Digraph g(4);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 3, 2.0);
  g.set_edge(3, 0, 3.0);
  g.set_edge(2, 3, 4.0);
  std::vector<std::size_t> ids;
  const Digraph sub = g.induced_subgraph({true, false, true, true}, &ids);
  EXPECT_EQ(sub.vertex_count(), 3u);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 2u);
  EXPECT_EQ(ids[2], 3u);
  // Surviving edges: 3->0 (new 2->0) and 2->3 (new 1->2).
  EXPECT_EQ(sub.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(sub.edge_weight(2, 0).value(), 3.0);
  EXPECT_DOUBLE_EQ(sub.edge_weight(1, 2).value(), 4.0);
  EXPECT_FALSE(sub.edge_weight(0, 1).has_value());
}

TEST(DigraphTest, InducedSubgraphSizeMismatchThrows) {
  Digraph g(3);
  EXPECT_THROW((void)g.induced_subgraph({true, false}), DimensionMismatch);
}

}  // namespace
}  // namespace svo::graph
