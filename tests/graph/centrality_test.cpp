#include "graph/centrality.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace svo::graph {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

/// Star graph: every spoke trusts the hub (vertex 0).
Digraph in_star(std::size_t n) {
  Digraph g(n);
  for (std::size_t v = 1; v < n; ++v) g.set_edge(v, 0, 1.0);
  return g;
}

TEST(DegreeCentralityTest, HubOfInStarDominates) {
  const std::vector<double> c = degree_centrality(in_star(5));
  EXPECT_NEAR(sum(c), 1.0, 1e-12);
  EXPECT_NEAR(c[0], 1.0, 1e-12);  // hub receives all trust
  for (std::size_t v = 1; v < 5; ++v) EXPECT_NEAR(c[v], 0.0, 1e-12);
}

TEST(DegreeCentralityTest, EmptyGraphIsUniform) {
  const std::vector<double> c = degree_centrality(Digraph(4));
  for (const double x : c) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(ClosenessCentralityTest, PathGraphEndpointVsTail) {
  // 0 -> 1 -> 2 with unit weights (distance 1 per hop, incoming paths).
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  const std::vector<double> c = closeness_centrality(g);
  EXPECT_NEAR(sum(c), 1.0, 1e-12);
  // Vertex 2 is reachable from 0 (d=2) and 1 (d=1): harmonic 1.5;
  // vertex 1 from 0 only: 1.0; vertex 0 unreachable: 0.
  EXPECT_NEAR(c[0], 0.0, 1e-12);
  EXPECT_NEAR(c[1] / c[2], 1.0 / 1.5, 1e-9);
}

TEST(ClosenessCentralityTest, HigherTrustMeansCloser) {
  // Two parallel chains into 2: strong edge vs weak edge.
  Digraph g(3);
  g.set_edge(0, 2, 10.0);  // distance 0.1
  g.set_edge(1, 2, 0.1);   // distance 10
  const std::vector<double> c = closeness_centrality(g);
  EXPECT_GT(c[2], 0.99);  // all mass on the only trusted vertex
}

TEST(BetweennessCentralityTest, MiddleOfPathCarriesAllPaths) {
  Digraph g(3);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  const std::vector<double> c = betweenness_centrality(g);
  EXPECT_NEAR(sum(c), 1.0, 1e-12);
  EXPECT_NEAR(c[1], 1.0, 1e-12);  // only 0->2 passes through 1
}

TEST(BetweennessCentralityTest, CompleteTriangleIsUniform) {
  Digraph g(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) g.set_edge(i, j, 1.0);
    }
  }
  const std::vector<double> c = betweenness_centrality(g);
  // No shortest path needs an intermediate vertex: all scores zero ->
  // normalized to uniform.
  for (const double x : c) EXPECT_NEAR(x, 1.0 / 3.0, 1e-12);
}

TEST(BetweennessCentralityTest, SplitShortestPathsShareCredit) {
  // 0 -> {1, 2} -> 3, all unit weights: two equal shortest paths.
  Digraph g(4);
  g.set_edge(0, 1, 1.0);
  g.set_edge(0, 2, 1.0);
  g.set_edge(1, 3, 1.0);
  g.set_edge(2, 3, 1.0);
  const std::vector<double> c = betweenness_centrality(g);
  EXPECT_NEAR(c[1], c[2], 1e-12);
  EXPECT_GT(c[1], 0.0);
}

TEST(EigenvectorCentralityTest, MatchesReputationSemantics) {
  // Everyone trusts vertex 0 strongly, vertex 0 trusts 1 weakly.
  Digraph g(3);
  g.set_edge(1, 0, 5.0);
  g.set_edge(2, 0, 5.0);
  g.set_edge(0, 1, 1.0);
  const std::vector<double> c = eigenvector_centrality(g);
  EXPECT_NEAR(sum(c), 1.0, 1e-9);
  EXPECT_GT(c[0], c[1]);
  EXPECT_GT(c[1], c[2]);  // 1 is trusted by the highly-reputed 0
}

}  // namespace
}  // namespace svo::graph
