#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include <set>

namespace svo::graph {
namespace {

TEST(SccTest, SingleCycleIsOneComponent) {
  Digraph g(4);
  for (std::size_t v = 0; v < 4; ++v) g.set_edge(v, (v + 1) % 4, 1.0);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 1u);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(SccTest, DagHasOneComponentPerVertex) {
  Digraph g(4);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  g.set_edge(2, 3, 1.0);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 4u);
  EXPECT_FALSE(is_strongly_connected(g));
}

TEST(SccTest, TwoCyclesJoinedByBridge) {
  Digraph g(6);
  // Cycle {0,1,2}, cycle {3,4,5}, bridge 2 -> 3.
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  g.set_edge(2, 0, 1.0);
  g.set_edge(3, 4, 1.0);
  g.set_edge(4, 5, 1.0);
  g.set_edge(5, 3, 1.0);
  g.set_edge(2, 3, 1.0);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 2u);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_EQ(r.component[3], r.component[4]);
  EXPECT_EQ(r.component[4], r.component[5]);
  EXPECT_NE(r.component[0], r.component[3]);
}

TEST(SccTest, ZeroWeightEdgesIgnored) {
  Digraph g(2);
  g.set_edge(0, 1, 0.0);
  g.set_edge(1, 0, 0.0);
  const SccResult r = strongly_connected_components(g);
  EXPECT_EQ(r.count, 2u);
}

TEST(SccTest, EmptyGraphNotStronglyConnected) {
  EXPECT_FALSE(is_strongly_connected(Digraph(0)));
}

TEST(SccTest, SingletonIsStronglyConnected) {
  EXPECT_TRUE(is_strongly_connected(Digraph(1)));
}

TEST(SccTest, ComponentIdsCoverAllVertices) {
  Digraph g(5);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 0, 1.0);
  g.set_edge(3, 4, 1.0);
  const SccResult r = strongly_connected_components(g);
  std::set<std::size_t> ids(r.component.begin(), r.component.end());
  EXPECT_EQ(ids.size(), r.count);
  for (const std::size_t id : r.component) EXPECT_LT(id, r.count);
}

TEST(ReachabilityTest, FollowsDirectedPositiveEdges) {
  Digraph g(4);
  g.set_edge(0, 1, 1.0);
  g.set_edge(1, 2, 1.0);
  g.set_edge(3, 0, 1.0);
  const std::vector<bool> from0 = reachable_from(g, 0);
  EXPECT_TRUE(from0[0]);
  EXPECT_TRUE(from0[1]);
  EXPECT_TRUE(from0[2]);
  EXPECT_FALSE(from0[3]);
}

TEST(ReachabilityTest, SourceOutOfRangeThrows) {
  Digraph g(2);
  EXPECT_THROW((void)reachable_from(g, 5), InvalidArgument);
}

}  // namespace
}  // namespace svo::graph
