/// Tests for the streaming grid economy (sim/stream_engine): option
/// validation, the churn-off bit-identical equivalence with the one-shot
/// sweep, same-seed replay determinism, and the no-lost-requests
/// invariant under crash x leave churn.
#include "sim/stream_engine.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/runner.hpp"

namespace svo::sim {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.trace.num_jobs = 3000;
  cfg.trace.min_jobs_per_canonical_size = 4;
  cfg.trace.canonical_sizes = {24, 48};
  cfg.task_sizes = {24, 48};
  cfg.repetitions = 3;
  cfg.gen.params.num_gsps = 5;
  cfg.solver.max_nodes = 2000;
  return cfg;
}

/// Churn-off, unbounded deadlines, instantaneous executions: requests
/// never contend and every formation sees the grand coalition.
StreamOptions oneshot_equivalent_options() {
  StreamOptions opts;
  opts.base = tiny_config();
  opts.num_requests = 6;
  opts.arrival_interval_seconds = 60.0;
  opts.formation_seconds = 1.0;
  opts.execution_time_scale = 0.0;
  return opts;
}

StreamOptions churny_options() {
  StreamOptions opts;
  opts.base = tiny_config();
  opts.num_requests = 6;
  opts.arrival_interval_seconds = 60.0;
  opts.formation_seconds = 2.0;
  opts.formation_deadline_seconds = 240.0;
  opts.retry_backoff_seconds = 15.0;
  opts.max_attempts = 4;
  opts.admission_floor = 2;
  opts.execution_time_scale = 0.01;
  opts.churn.leave_rate = 1.0 / 200.0;
  opts.churn.crash_rate = 1.0 / 150.0;
  opts.churn.mean_absence_seconds = 100.0;
  opts.churn.seed = 17;
  return opts;
}

TEST(StreamOptionsTest, ValidatesKnobs) {
  StreamOptions opts = oneshot_equivalent_options();
  opts.num_requests = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = oneshot_equivalent_options();
  opts.arrival_interval_seconds = 0.0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = oneshot_equivalent_options();
  opts.formation_deadline_seconds = 0.0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = oneshot_equivalent_options();
  opts.admission_floor = opts.base.gen.params.num_gsps + 1;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = oneshot_equivalent_options();
  opts.retry_backoff_multiplier = 0.5;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = oneshot_equivalent_options();
  opts.execution_time_scale = -1.0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = oneshot_equivalent_options();
  opts.churn.leave_rate = -0.5;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = oneshot_equivalent_options();
  opts.base.task_sizes.clear();
  EXPECT_THROW(opts.validate(), InvalidArgument);
  EXPECT_NO_THROW(oneshot_equivalent_options().validate());
  EXPECT_NO_THROW(churny_options().validate());
}

void expect_same_formation(const core::MechanismResult& a,
                           const core::MechanismResult& b) {
  ASSERT_EQ(a.success, b.success);
  EXPECT_EQ(a.selected.bits(), b.selected.bits());
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_DOUBLE_EQ(a.payoff_share, b.payoff_share);
  EXPECT_DOUBLE_EQ(a.avg_global_reputation, b.avg_global_reputation);
  // The removal sequence pins the mechanism's RNG consumption draw for
  // draw: any extra or reordered draw changes some removed_gsp.
  ASSERT_EQ(a.journal.size(), b.journal.size());
  for (std::size_t i = 0; i < a.journal.size(); ++i) {
    EXPECT_EQ(a.journal[i].removed_gsp, b.journal[i].removed_gsp);
    EXPECT_EQ(a.journal[i].coalition.bits(), b.journal[i].coalition.bits());
  }
}

/// Guarantee (1): the streaming economy with churn off is a strict
/// superset of the one-shot sweep — per request, the committed
/// MechanismResult is bit-identical to ExperimentRunner::run_pair on the
/// scenario the request id maps to.
TEST(StreamEngineTest, ChurnOffStreamingIsBitIdenticalToOneShotSweep) {
  for (const MechanismKind kind : {MechanismKind::Tvof, MechanismKind::Rvof}) {
    StreamOptions opts = oneshot_equivalent_options();
    opts.mechanism = kind;
    const StreamEngine engine(opts);
    const StreamResult result = engine.run();

    ASSERT_EQ(result.admitted, opts.num_requests);
    EXPECT_EQ(result.lost, 0u);
    EXPECT_TRUE(result.churn_schedule.empty());

    const ExperimentRunner runner(tiny_config());
    const std::size_t num_sizes = opts.base.task_sizes.size();
    for (const StreamRequestResult& rr : result.requests) {
      const Scenario scenario =
          runner.scenarios().make(opts.base.task_sizes[rr.id % num_sizes],
                                  rr.id / num_sizes);
      const ExperimentRunner::PairResult pair = runner.run_pair(scenario);
      const core::MechanismResult& oneshot =
          kind == MechanismKind::Tvof ? pair.tvof : pair.rvof;
      if (!oneshot.success) {
        EXPECT_NE(rr.outcome, RequestOutcome::Completed);
        continue;
      }
      ASSERT_EQ(rr.outcome, RequestOutcome::Completed);
      EXPECT_EQ(rr.attempts, 1u);
      EXPECT_EQ(rr.repair_rounds, 0u);
      EXPECT_DOUBLE_EQ(rr.realized_value, oneshot.value);
      expect_same_formation(rr.formation, oneshot);
    }
    EXPECT_DOUBLE_EQ(result.completion_rate, 1.0);
    EXPECT_DOUBLE_EQ(result.deadline_miss_rate, 0.0);
  }
}

TEST(StreamEngineTest, SameSeedReplaysIdenticalTimelines) {
  const StreamEngine engine(churny_options());
  const StreamResult a = engine.run();
  const StreamResult b = engine.run();
  EXPECT_EQ(a.churn_schedule, b.churn_schedule);
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  EXPECT_EQ(a.timeline, b.timeline);

  // A fresh engine over the same options replays too.
  const StreamResult c = StreamEngine(churny_options()).run();
  EXPECT_EQ(a.timeline, c.timeline);

  // And a different churn seed produces a different event timeline.
  StreamOptions other = churny_options();
  other.churn.seed ^= 1;
  EXPECT_NE(StreamEngine(other).run().timeline, a.timeline);
}

/// The no-deadlock / no-lost-requests invariant: under nonzero
/// crash x leave churn every admitted request reaches a terminal state
/// and the outcome counts partition the admitted set.
TEST(StreamEngineTest, EveryAdmittedRequestTerminatesUnderChurn) {
  const StreamResult result = StreamEngine(churny_options()).run();
  ASSERT_EQ(result.admitted, 6u);
  EXPECT_EQ(result.lost, 0u);
  EXPECT_EQ(result.completed + result.repaired + result.shed +
                result.timed_out,
            result.admitted);
  for (const StreamRequestResult& rr : result.requests) {
    EXPECT_NE(rr.outcome, RequestOutcome::Pending);
    EXPECT_GE(rr.terminal_time, rr.arrival_time);
  }
  EXPECT_GE(result.completion_rate, 0.0);
  EXPECT_LE(result.completion_rate, 1.0);
  EXPECT_LE(result.deadline_miss_rate, 1.0);
  EXPECT_FALSE(result.timeline.empty());
}

/// Engine-level satellite regression: quarantine activations equal the
/// rejoins the timeline shows — one per GspRejoined event, never more.
TEST(StreamEngineTest, QuarantineActivatesExactlyOncePerRejoin) {
  StreamOptions opts = churny_options();
  opts.base.mechanism.reputation.robust.enabled = true;
  const StreamResult result = StreamEngine(opts).run();
  std::map<std::size_t, std::size_t> rejoins;
  for (const StreamLogEntry& e : result.timeline) {
    if (e.kind == StreamEventKind::GspRejoined) ++rejoins[e.gsp];
  }
  EXPECT_EQ(result.quarantine_activations, rejoins);
}

TEST(StreamEngineTest, StreamingAtlasIngestCompletesWithoutChurn) {
  StreamOptions opts;
  opts.base = tiny_config();
  opts.ingest = StreamOptions::Ingest::StreamingAtlas;
  opts.num_requests = 3;
  opts.max_stream_tasks = 64;
  opts.execution_time_scale = 0.0;
  const StreamResult result = StreamEngine(opts).run();
  ASSERT_GT(result.admitted, 0u);
  EXPECT_EQ(result.lost, 0u);
  for (const StreamRequestResult& rr : result.requests) {
    EXPECT_LE(rr.num_tasks, 64u);
    EXPECT_NE(rr.outcome, RequestOutcome::Pending);
  }
  // Deterministic too: the ingest consumes the chunked stream in order.
  EXPECT_EQ(StreamEngine(opts).run().timeline, result.timeline);
}

TEST(StreamEngineTest, AdmissionControlShedsBelowFloor) {
  // Floor above what churn can sustain: with every GSP crashed before
  // the first arrival, all requests are shed at admission.
  StreamOptions opts = oneshot_equivalent_options();
  opts.admission_floor = 5;
  opts.churn.crash_rate = 10.0;  // everyone crashes almost immediately
  opts.churn.rejoin_probability = 0.0;
  opts.churn.seed = 3;
  const StreamResult result = StreamEngine(opts).run();
  EXPECT_EQ(result.lost, 0u);
  EXPECT_GT(result.shed, 0u);
  for (const StreamRequestResult& rr : result.requests) {
    EXPECT_NE(rr.outcome, RequestOutcome::Pending);
  }
}

// ------------------------------------------- continuous telemetry (§4j)

StreamOptions telemetry_options() {
  StreamOptions opts = churny_options();
  opts.stats_window_seconds = 120.0;
  obs::SloObjective latency;
  latency.name = "commit_latency_p99";
  latency.kind = obs::SloKind::QuantileBelow;
  latency.metric = "stream.formation_latency_s";
  latency.quantile = 0.99;
  latency.threshold = 10.0 * opts.arrival_interval_seconds;
  obs::SloObjective shed;
  shed.name = "shed_zero";
  shed.kind = obs::SloKind::CounterZero;
  shed.metric = "stream.request_shed";
  opts.slos = {latency, shed};
  return opts;
}

TEST(StreamTelemetryTest, OptionsValidateWindowKnobs) {
  StreamOptions opts = telemetry_options();
  EXPECT_NO_THROW(opts.validate());
  opts.stats_window_seconds = -1.0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = telemetry_options();
  opts.stats_window_capacity = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = telemetry_options();
  opts.stats_window_seconds = 0.0;  // SLOs without telemetry
  EXPECT_THROW(opts.validate(), InvalidArgument);
}

TEST(StreamTelemetryTest, TelemetryOffRunIsBitIdentical) {
  StreamOptions with = telemetry_options();
  StreamOptions without = churny_options();
  const StreamResult on = StreamEngine(with).run();
  const StreamResult off = StreamEngine(without).run();
  // The observer never acts: identical timelines, horizons and
  // per-request terminal states whether windows close or not.
  EXPECT_EQ(on.timeline, off.timeline);
  EXPECT_EQ(on.horizon, off.horizon);
  ASSERT_EQ(on.requests.size(), off.requests.size());
  for (std::size_t i = 0; i < on.requests.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(on.requests[i].outcome, off.requests[i].outcome);
    EXPECT_EQ(on.requests[i].attempts, off.requests[i].attempts);
    EXPECT_EQ(on.requests[i].terminal_time, off.requests[i].terminal_time);
    EXPECT_EQ(on.requests[i].realized_value, off.requests[i].realized_value);
  }
  EXPECT_TRUE(off.windows.empty());
  EXPECT_TRUE(off.slo_status.empty());
  EXPECT_FALSE(on.windows.empty());
}

TEST(StreamTelemetryTest, SameSeedReplaysIdenticalWindowsAndVerdicts) {
  const StreamEngine engine(telemetry_options());
  const StreamResult a = engine.run();
  const StreamResult b = engine.run();
  ASSERT_FALSE(a.windows.empty());
  EXPECT_EQ(a.windows, b.windows);  // window-for-window bit equality
  EXPECT_EQ(a.slo_status, b.slo_status);
}

TEST(StreamTelemetryTest, WindowsPartitionVirtualTimeAndEvents) {
  const StreamOptions opts = telemetry_options();
  const StreamResult r = StreamEngine(opts).run();
  ASSERT_FALSE(r.windows.empty());
  std::uint64_t arrivals = 0;
  double prev_end = 0.0;
  for (std::size_t i = 0; i < r.windows.size(); ++i) {
    const obs::Window& w = r.windows[i];
    EXPECT_DOUBLE_EQ(w.start_time, prev_end);
    if (i + 1 < r.windows.size()) {
      EXPECT_DOUBLE_EQ(w.end_time, prev_end + opts.stats_window_seconds);
    } else {
      // The tail window is the end-of-run partial flush: it closes at
      // the horizon, not at the next window boundary.
      EXPECT_GT(w.end_time, w.start_time);
      EXPECT_LE(w.end_time, prev_end + opts.stats_window_seconds);
    }
    prev_end = w.end_time;
    arrivals += w.counter("stream.request_arrival");
  }
  // Ring big enough to retain everything: window deltas must conserve
  // the event totals (every arrival lands in exactly one window).
  EXPECT_EQ(arrivals, static_cast<std::uint64_t>(opts.num_requests));
  // The final window must cover the horizon (lazy advancement still
  // closes the tail at end of run).
  EXPECT_GE(r.windows.back().end_time,
            r.horizon - opts.stats_window_seconds);
}

TEST(StreamTelemetryTest, SloVerdictsReflectTheRun) {
  const StreamResult r = StreamEngine(telemetry_options()).run();
  ASSERT_EQ(r.slo_status.size(), 2u);
  EXPECT_EQ(r.slo_status[0].name, "commit_latency_p99");
  EXPECT_EQ(r.slo_status[1].name, "shed_zero");
  const std::uint64_t closed = r.windows.empty()
                                   ? 0
                                   : r.windows.back().index + 1;
  EXPECT_EQ(r.slo_status[0].windows, closed);
  // shed_zero violations == windows that actually saw a shed event.
  std::uint64_t shed_windows = 0;
  for (const obs::Window& w : r.windows) {
    if (w.counter("stream.request_shed") > 0) ++shed_windows;
  }
  EXPECT_EQ(r.slo_status[1].violations, shed_windows);
}

TEST(ToStringTest, OutcomeAndEventNames) {
  EXPECT_STREQ(to_string(RequestOutcome::Completed), "completed");
  EXPECT_STREQ(to_string(RequestOutcome::Repaired), "repaired");
  EXPECT_STREQ(to_string(RequestOutcome::Shed), "shed");
  EXPECT_STREQ(to_string(RequestOutcome::TimedOut), "timed_out");
  EXPECT_STREQ(to_string(StreamEventKind::FormationCommit),
               "formation_commit");
  EXPECT_STREQ(to_string(StreamEventKind::GspRejoined), "gsp_rejoined");
}

}  // namespace
}  // namespace svo::sim
