/// Tests for the mid-execution VO repair path (sim/execution):
/// defaulter identification, task conservation after re-formation, and
/// determinism under identical seeds.
#include <gtest/gtest.h>

#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "sim/execution.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::sim {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Fixture make_fixture(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(m, n, rng);
  f.trust = trust::random_trust_graph(m, 0.4, rng);
  return f;
}

TEST(FailedMembersTest, IdentifiesDefaulters) {
  ExecutionOutcome out;
  out.assigned = {2, 0, 3, 1};
  out.delivered = {2, 0, 0, 0};
  const game::Coalition vo = game::Coalition::of({0, 2, 3});
  const game::Coalition failed = failed_members(vo, out);
  EXPECT_FALSE(failed.contains(0));  // delivered everything
  EXPECT_FALSE(failed.contains(1));  // not a member
  EXPECT_TRUE(failed.contains(2));   // defaulted
  EXPECT_TRUE(failed.contains(3));   // defaulted
  ExecutionOutcome short_out;
  short_out.assigned = {1};
  short_out.delivered = {1};
  EXPECT_THROW((void)failed_members(game::Coalition::of({0, 5}), short_out),
               InvalidArgument);
}

TEST(ExecuteWithRepairTest, CompletesWithoutRepairWhenAllReliable) {
  const Fixture f = make_fixture(5, 12, 1);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  util::Xoshiro256 form_rng(7);
  const core::MechanismResult formation =
      tvof.run(core::FormationRequest{f.instance, f.trust, form_rng});
  ASSERT_TRUE(formation.success);
  const ReliabilityModel model(std::vector<double>(5, 1.0));
  util::Xoshiro256 rng(3);
  const RepairedExecution rep = execute_with_repair(
      tvof, f.instance, f.trust, formation, model, rng);
  EXPECT_TRUE(rep.completed);
  EXPECT_EQ(rep.repair_rounds, 0u);
  EXPECT_TRUE(rep.failed.empty());
  EXPECT_DOUBLE_EQ(rep.total_realized_value, formation.value);
  EXPECT_EQ(rep.final_formation.selected, formation.selected);
}

TEST(ExecuteWithRepairTest, ReassignsEveryTaskAfterMemberFailure) {
  const Fixture f = make_fixture(5, 12, 2);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  util::Xoshiro256 form_rng(7);
  const core::MechanismResult formation =
      tvof.run(core::FormationRequest{f.instance, f.trust, form_rng});
  ASSERT_TRUE(formation.success);
  // Kill one selected member outright; everyone else is perfect.
  const std::size_t victim = formation.selected.members().front();
  std::vector<double> thetas(5, 1.0);
  thetas[victim] = 0.0;
  const ReliabilityModel model(thetas);
  util::Xoshiro256 rng(3);
  const RepairedExecution rep = execute_with_repair(
      tvof, f.instance, f.trust, formation, model, rng);

  EXPECT_GE(rep.repair_rounds, 1u);
  EXPECT_TRUE(rep.failed.contains(victim));
  ASSERT_TRUE(rep.completed);
  // Task conservation: the final mapping assigns every task exactly
  // once, onto surviving members only.
  ASSERT_EQ(rep.final_formation.mapping.size(), 12u);
  for (const std::size_t g : rep.final_formation.mapping) {
    EXPECT_TRUE(rep.final_formation.selected.contains(g));
    EXPECT_NE(g, victim);
  }
  // The failed attempt sank its costs: realized total < clean value.
  EXPECT_LT(rep.total_realized_value, rep.final_formation.value);
}

TEST(ExecuteWithRepairTest, ReportsFailureWhenNoSurvivorsCanExecute) {
  const Fixture f = make_fixture(4, 10, 3);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  util::Xoshiro256 form_rng(5);
  const core::MechanismResult formation =
      tvof.run(core::FormationRequest{f.instance, f.trust, form_rng});
  ASSERT_TRUE(formation.success);
  // Nobody ever delivers: repair keeps failing until the pool is empty
  // or the budget runs out, and reports that explicitly.
  const ReliabilityModel model(std::vector<double>(4, 0.0));
  util::Xoshiro256 rng(3);
  const RepairedExecution rep = execute_with_repair(
      tvof, f.instance, f.trust, formation, model, rng);
  EXPECT_FALSE(rep.completed);
  EXPECT_FALSE(rep.failed.empty());
  EXPECT_LT(rep.total_realized_value, 0.0);  // sunk costs only
}

TEST(ExecuteWithRepairTest, DeterministicInSeed) {
  const Fixture f = make_fixture(6, 14, 4);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  util::Xoshiro256 form_rng(9);
  const core::MechanismResult formation =
      tvof.run(core::FormationRequest{f.instance, f.trust, form_rng});
  ASSERT_TRUE(formation.success);
  util::Xoshiro256 pop_rng(11);
  const ReliabilityModel model =
      ReliabilityModel::bimodal(6, 0.5, 0.9, 0.2, pop_rng);
  const auto run_once = [&] {
    util::Xoshiro256 rng(17);
    return execute_with_repair(tvof, f.instance, f.trust, formation, model,
                               rng);
  };
  const RepairedExecution a = run_once();
  const RepairedExecution b = run_once();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.repair_rounds, b.repair_rounds);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_DOUBLE_EQ(a.total_realized_value, b.total_realized_value);
  EXPECT_EQ(a.final_formation.selected, b.final_formation.selected);
  EXPECT_EQ(a.final_formation.mapping, b.final_formation.mapping);
}

TEST(ExecuteWithRepairTest, RejectsFailedFormation) {
  const Fixture f = make_fixture(4, 10, 3);
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const core::MechanismResult unsuccessful;  // success == false
  const ReliabilityModel model(std::vector<double>(4, 1.0));
  util::Xoshiro256 rng(3);
  EXPECT_THROW((void)execute_with_repair(tvof, f.instance, f.trust,
                                         unsuccessful, model, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace svo::sim
