#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace svo::sim {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.trace.num_jobs = 3000;
  cfg.trace.min_jobs_per_canonical_size = 4;
  cfg.trace.canonical_sizes = {32, 64};
  cfg.task_sizes = {32, 64};
  cfg.repetitions = 2;
  cfg.gen.params.num_gsps = 6;
  return cfg;
}

TEST(ScenarioFactoryTest, TraceBuiltOnceWithExpectedSize) {
  const ScenarioFactory factory(small_config());
  EXPECT_EQ(factory.trace().jobs.size(), 3000u);
}

TEST(ScenarioFactoryTest, ScenarioShapeMatchesConfig) {
  const ScenarioFactory factory(small_config());
  const Scenario s = factory.make(32, 0);
  EXPECT_EQ(s.instance.assignment.num_tasks(), 32u);
  EXPECT_EQ(s.instance.assignment.num_gsps(), 6u);
  EXPECT_EQ(s.trust.size(), 6u);
  s.instance.assignment.validate();
}

TEST(ScenarioFactoryTest, DeterministicPerKey) {
  const ScenarioFactory factory(small_config());
  const Scenario a = factory.make(64, 1);
  const Scenario b = factory.make(64, 1);
  EXPECT_DOUBLE_EQ(a.instance.assignment.deadline,
                   b.instance.assignment.deadline);
  EXPECT_DOUBLE_EQ(a.instance.assignment.payment,
                   b.instance.assignment.payment);
  EXPECT_EQ(a.tvof_seed, b.tvof_seed);
  EXPECT_EQ(a.rvof_seed, b.rvof_seed);
  EXPECT_EQ(a.trust.graph().edge_count(), b.trust.graph().edge_count());
}

TEST(ScenarioFactoryTest, DifferentRepetitionsDiffer) {
  const ScenarioFactory factory(small_config());
  const Scenario a = factory.make(64, 0);
  const Scenario b = factory.make(64, 1);
  EXPECT_NE(a.tvof_seed, b.tvof_seed);
  // Payment draw almost surely differs across repetitions.
  EXPECT_NE(a.instance.assignment.payment, b.instance.assignment.payment);
}

TEST(ScenarioFactoryTest, MechanismSeedsAreDistinct) {
  const ScenarioFactory factory(small_config());
  const Scenario s = factory.make(32, 0);
  EXPECT_NE(s.tvof_seed, s.rvof_seed);
}

TEST(ScenarioFactoryTest, UnknownSizeThrows) {
  const ScenarioFactory factory(small_config());
  EXPECT_THROW((void)factory.make(7777, 0), InvalidArgument);
}

}  // namespace
}  // namespace svo::sim
