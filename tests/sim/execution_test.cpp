#include "sim/execution.hpp"

#include <gtest/gtest.h>

namespace svo::sim {
namespace {

ip::AssignmentInstance tiny_instance() {
  ip::AssignmentInstance inst;
  inst.cost = linalg::Matrix(2, 4, 2.0);
  inst.time = linalg::Matrix(2, 4, 1.0);
  inst.deadline = 10.0;
  inst.payment = 100.0;
  return inst;
}

TEST(ReliabilityModelTest, ExplicitThetas) {
  const ReliabilityModel model({0.2, 0.9});
  EXPECT_EQ(model.size(), 2u);
  EXPECT_DOUBLE_EQ(model.theta(0), 0.2);
  EXPECT_DOUBLE_EQ(model.theta(1), 0.9);
  EXPECT_THROW((void)model.theta(5), InvalidArgument);
}

TEST(ReliabilityModelTest, RejectsBadThetas) {
  EXPECT_THROW(ReliabilityModel({}), InvalidArgument);
  EXPECT_THROW(ReliabilityModel({1.5}), InvalidArgument);
  EXPECT_THROW(ReliabilityModel({-0.1}), InvalidArgument);
}

TEST(ReliabilityModelTest, BimodalPopulation) {
  util::Xoshiro256 rng(3);
  const ReliabilityModel model =
      ReliabilityModel::bimodal(200, 0.7, 0.85, 0.3, rng);
  std::size_t reliable = 0;
  for (const double t : model.thetas()) {
    EXPECT_TRUE((t >= 0.85 && t <= 1.0) || (t >= 0.0 && t <= 0.3));
    reliable += t >= 0.85;
  }
  EXPECT_NEAR(static_cast<double>(reliable) / 200.0, 0.7, 0.1);
}

TEST(SimulateExecutionTest, PerfectReliabilityAlwaysCompletes) {
  const ip::AssignmentInstance inst = tiny_instance();
  const ReliabilityModel model({1.0, 1.0});
  util::Xoshiro256 rng(1);
  const ExecutionOutcome out = simulate_execution(
      inst, {0, 1, 0, 1}, game::Coalition::of({0, 1}), model, rng);
  EXPECT_TRUE(out.completed);
  EXPECT_DOUBLE_EQ(out.delivery_rate, 1.0);
  EXPECT_DOUBLE_EQ(out.realized_value, 100.0 - 8.0);
  EXPECT_DOUBLE_EQ(out.realized_share, 46.0);
  EXPECT_EQ(out.assigned[0], 2u);
  EXPECT_EQ(out.delivered[1], 2u);
}

TEST(SimulateExecutionTest, ZeroReliabilityLosesCosts) {
  const ip::AssignmentInstance inst = tiny_instance();
  const ReliabilityModel model({0.0, 1.0});
  util::Xoshiro256 rng(1);
  const ExecutionOutcome out = simulate_execution(
      inst, {0, 0, 0, 0}, game::Coalition::of({0, 1}), model, rng);
  EXPECT_FALSE(out.completed);
  EXPECT_DOUBLE_EQ(out.delivery_rate, 0.0);
  // All-or-nothing payment: costs sunk, nothing earned.
  EXPECT_DOUBLE_EQ(out.realized_value, -8.0);
}

TEST(SimulateExecutionTest, CompletionRateTracksTheta) {
  const ip::AssignmentInstance inst = tiny_instance();
  const ReliabilityModel model({0.8, 0.8});
  util::Xoshiro256 rng(7);
  int completions = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    const ExecutionOutcome out = simulate_execution(
        inst, {0, 1, 0, 1}, game::Coalition::of({0, 1}), model, rng);
    completions += out.completed;
  }
  // Per-GSP delivery draws: P(both members deliver) = 0.8^2 = 0.64.
  EXPECT_NEAR(completions / static_cast<double>(kTrials), 0.64, 0.01);
}

TEST(SimulateExecutionTest, RejectsMappingOutsideVo) {
  const ip::AssignmentInstance inst = tiny_instance();
  const ReliabilityModel model({1.0, 1.0});
  util::Xoshiro256 rng(1);
  EXPECT_THROW((void)simulate_execution(inst, {0, 1, 0, 1},
                                        game::Coalition::of({0}), model, rng),
               InvalidArgument);
}

TEST(UpdateTrustTest, ObserversLearnDeliveryRates) {
  trust::TrustGraph trust(3);
  ExecutionOutcome out;
  out.assigned = {2, 4, 0};
  out.delivered = {2, 1, 0};
  update_trust_from_outcome(trust, game::Coalition::of({0, 1}), out, 0.5);
  // G0 delivered 100%: trust(1,0) = 0.5*0 + 0.5*1 = 0.5.
  EXPECT_NEAR(trust.trust(1, 0), 0.5, 1e-12);
  // G1 delivered 25%: trust(0,1) = 0.5*0 + 0.5*0.25 = 0.125.
  EXPECT_NEAR(trust.trust(0, 1), 0.125, 1e-12);
  // G2 was outside the VO: nothing observed.
  EXPECT_DOUBLE_EQ(trust.trust(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(trust.trust(2, 0), 0.0);
}

TEST(UpdateTrustTest, UnassignedMemberNotScored) {
  trust::TrustGraph trust(2);
  trust.set_trust(0, 1, 0.8);
  ExecutionOutcome out;
  out.assigned = {3, 0};
  out.delivered = {3, 0};
  update_trust_from_outcome(trust, game::Coalition::of({0, 1}), out, 0.5);
  EXPECT_DOUBLE_EQ(trust.trust(0, 1), 0.8);  // untouched: no evidence
}

}  // namespace
}  // namespace svo::sim
