/// Tests for the deterministic churn model (sim/churn): option
/// validation, schedule structure and determinism, and the re-entry
/// quarantine ledger's exactly-once semantics — the regression pin for
/// the "re-quarantined on every later formation" bug class.
#include "sim/churn.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace svo::sim {
namespace {

ChurnOptions active_options() {
  ChurnOptions opts;
  opts.leave_rate = 1.0 / 300.0;
  opts.crash_rate = 1.0 / 500.0;
  opts.mean_absence_seconds = 200.0;
  opts.seed = 99;
  return opts;
}

TEST(ChurnOptionsTest, ValidatesRatesAndKnobs) {
  ChurnOptions opts;
  opts.leave_rate = -0.1;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = {};
  opts.crash_rate = -1.0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = active_options();
  opts.mean_absence_seconds = 0.0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = active_options();
  opts.rejoin_probability = 1.5;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  opts = active_options();
  opts.max_events_per_gsp = 0;
  EXPECT_THROW(opts.validate(), InvalidArgument);
  // Disabled churn does not need an absence mean.
  opts = {};
  opts.mean_absence_seconds = 0.0;
  EXPECT_NO_THROW(opts.validate());
  EXPECT_FALSE(opts.enabled());
  EXPECT_TRUE(active_options().enabled());
}

TEST(ChurnScheduleTest, DisabledChurnYieldsEmptySchedule) {
  EXPECT_TRUE(build_churn_schedule(ChurnOptions{}, 8, 1000.0).empty());
  EXPECT_TRUE(build_churn_schedule(active_options(), 0, 1000.0).empty());
  EXPECT_THROW((void)build_churn_schedule(active_options(), 4, 0.0),
               InvalidArgument);
}

TEST(ChurnScheduleTest, SameSeedReplaysIdentically) {
  const auto a = build_churn_schedule(active_options(), 6, 5000.0);
  const auto b = build_churn_schedule(active_options(), 6, 5000.0);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  ChurnOptions other = active_options();
  other.seed ^= 1;
  EXPECT_NE(build_churn_schedule(other, 6, 5000.0), a);
}

TEST(ChurnScheduleTest, PerGspSequencesAlternateAndStayInHorizon) {
  const double horizon = 5000.0;
  const auto schedule = build_churn_schedule(active_options(), 6, horizon);
  EXPECT_TRUE(std::is_sorted(schedule.begin(), schedule.end(),
                             [](const ChurnEvent& a, const ChurnEvent& b) {
                               return a.time < b.time;
                             }));
  for (std::size_t gsp = 0; gsp < 6; ++gsp) {
    bool live = true;
    double last = 0.0;
    for (const ChurnEvent& e : schedule) {
      if (e.gsp != gsp) continue;
      EXPECT_GT(e.time, last);
      EXPECT_LT(e.time, horizon);
      last = e.time;
      if (e.kind == ChurnEventKind::Rejoin) {
        EXPECT_FALSE(live) << "rejoin while live";
        live = true;
      } else {
        EXPECT_TRUE(live) << "departure while absent";
        live = false;
      }
    }
  }
}

TEST(ChurnScheduleTest, ZeroRejoinProbabilityMakesDeparturesPermanent) {
  ChurnOptions opts = active_options();
  opts.rejoin_probability = 0.0;
  const auto schedule = build_churn_schedule(opts, 8, 1e7);
  std::size_t per_gsp[8] = {};
  for (const ChurnEvent& e : schedule) {
    EXPECT_NE(e.kind, ChurnEventKind::Rejoin);
    ++per_gsp[e.gsp];
  }
  for (const std::size_t count : per_gsp) EXPECT_LE(count, 1u);
}

TEST(ChurnScheduleTest, PerGspCapBoundsTheSchedule) {
  ChurnOptions opts = active_options();
  opts.max_events_per_gsp = 4;
  const auto schedule = build_churn_schedule(opts, 5, 1e9);
  std::size_t per_gsp[5] = {};
  for (const ChurnEvent& e : schedule) ++per_gsp[e.gsp];
  for (const std::size_t count : per_gsp) EXPECT_LE(count, 4u);
}

TEST(ChurnEventKindTest, ToStringNames) {
  EXPECT_STREQ(to_string(ChurnEventKind::Leave), "leave");
  EXPECT_STREQ(to_string(ChurnEventKind::Crash), "crash");
  EXPECT_STREQ(to_string(ChurnEventKind::Rejoin), "rejoin");
}

/// The satellite regression: a GSP that rejoins before formation #f is
/// fresh for formations [f, f + window) and NOT ONE FORMATION MORE —
/// later formations must never re-arm the window; only a new rejoin may.
TEST(QuarantineLedgerTest, QuarantineArmsExactlyOncePerRejoin) {
  QuarantineLedger ledger(3);
  ledger.record_rejoin(2, 5);
  EXPECT_EQ(ledger.fresh(5), (std::vector<std::size_t>{2}));
  EXPECT_EQ(ledger.fresh(6), (std::vector<std::size_t>{2}));
  EXPECT_EQ(ledger.fresh(7), (std::vector<std::size_t>{2}));
  // Querying fresh() is what a formation run does; doing it repeatedly
  // (the buggy "re-quarantine every round" behaviour would re-arm here)
  // must not extend the window.
  for (int repeat = 0; repeat < 10; ++repeat) (void)ledger.fresh(7);
  EXPECT_TRUE(ledger.fresh(8).empty());
  EXPECT_TRUE(ledger.fresh(100).empty());
  // A *new* rejoin re-arms; an earlier formation index does not resurrect
  // the old window.
  ledger.record_rejoin(2, 10);
  EXPECT_TRUE(ledger.fresh(9).empty());
  EXPECT_EQ(ledger.fresh(12), (std::vector<std::size_t>{2}));
  EXPECT_TRUE(ledger.fresh(13).empty());
}

TEST(QuarantineLedgerTest, FreshListIsSortedAndWindowZeroDisables) {
  QuarantineLedger ledger(2);
  ledger.record_rejoin(7, 0);
  ledger.record_rejoin(1, 0);
  ledger.record_rejoin(4, 1);
  EXPECT_EQ(ledger.fresh(1), (std::vector<std::size_t>{1, 4, 7}));
  EXPECT_EQ(ledger.fresh(2), (std::vector<std::size_t>{4}));

  QuarantineLedger off(0);
  off.record_rejoin(3, 0);
  EXPECT_TRUE(off.fresh(0).empty());
}

}  // namespace
}  // namespace svo::sim
