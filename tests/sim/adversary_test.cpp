#include "sim/adversary.hpp"

#include <gtest/gtest.h>

#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"

namespace svo::sim {
namespace {

ClosedLoopConfig small_loop() {
  ClosedLoopConfig cfg;
  cfg.rounds = 8;
  cfg.num_tasks = 24;
  cfg.gen.params.num_gsps = 6;
  return cfg;
}

ReliabilityModel small_model(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return ReliabilityModel::bimodal(6, 0.7, 0.9, 0.3, rng);
}

trust::AttackScenario collusion(double fraction) {
  trust::AttackScenario s;
  s.type = trust::AttackType::Collusion;
  s.attacker_fraction = fraction;
  s.intensity = 0.9;
  s.seed = 99;
  return s;
}

TEST(AdversarialLoopTest, UnattackedUndefendedMatchesClosedLoopExactly) {
  // The harness's core guarantee: with an empty scenario and defenses
  // off, run_adversarial_loop IS run_closed_loop, round for round.
  const ip::BnbAssignmentSolver solver;
  const ReliabilityModel model = small_model(3);
  const ClosedLoopConfig loop = small_loop();
  for (const MechanismKind kind : {MechanismKind::Tvof, MechanismKind::Rvof}) {
    AdversarialLoopConfig cfg;
    cfg.loop = loop;
    const AdversarialLoopResult adv = run_adversarial_loop(
        kind, solver, core::MechanismConfig{}, model, cfg, 42);

    ClosedLoopResult plain;
    if (kind == MechanismKind::Tvof) {
      plain = run_closed_loop(core::TvofMechanism(solver), model, loop, 42);
    } else {
      plain = run_closed_loop(core::RvofMechanism(solver), model, loop, 42);
    }
    ASSERT_EQ(adv.rounds.size(), plain.rounds.size());
    for (std::size_t i = 0; i < adv.rounds.size(); ++i) {
      EXPECT_EQ(adv.rounds[i].formed, plain.rounds[i].formed);
      EXPECT_EQ(adv.rounds[i].completed, plain.rounds[i].completed);
      EXPECT_EQ(adv.rounds[i].vo, plain.rounds[i].vo);
      EXPECT_EQ(adv.rounds[i].promised_share, plain.rounds[i].promised_share);
      EXPECT_EQ(adv.rounds[i].realized_share, plain.rounds[i].realized_share);
      EXPECT_EQ(adv.rounds[i].delivery_rate, plain.rounds[i].delivery_rate);
      EXPECT_FALSE(adv.rounds[i].attack_active);
      EXPECT_EQ(adv.rounds[i].attack_edges, 0u);
      EXPECT_DOUBLE_EQ(adv.rounds[i].attacker_selected_fraction, 0.0);
    }
    EXPECT_EQ(adv.completion_rate, plain.completion_rate);
    EXPECT_EQ(adv.mean_realized_share, plain.mean_realized_share);
    EXPECT_EQ(adv.mean_promised_share, plain.mean_promised_share);
    EXPECT_TRUE(adv.attackers.empty());
  }
}

TEST(AdversarialLoopTest, DeterministicInSeed) {
  const ip::BnbAssignmentSolver solver;
  const ReliabilityModel model = small_model(5);
  AdversarialLoopConfig cfg;
  cfg.loop = small_loop();
  cfg.attack = collusion(0.3);
  cfg.defenses.enabled = true;
  const AdversarialLoopResult a = run_adversarial_loop(
      MechanismKind::Tvof, solver, core::MechanismConfig{}, model, cfg, 7);
  const AdversarialLoopResult b = run_adversarial_loop(
      MechanismKind::Tvof, solver, core::MechanismConfig{}, model, cfg, 7);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(a.attackers, b.attackers);
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].vo, b.rounds[i].vo);
    EXPECT_EQ(a.rounds[i].attack_edges, b.rounds[i].attack_edges);
    EXPECT_EQ(a.rounds[i].realized_share, b.rounds[i].realized_share);
    EXPECT_EQ(a.rounds[i].rank_corruption, b.rounds[i].rank_corruption);
  }
  EXPECT_EQ(a.mean_rank_corruption, b.mean_rank_corruption);
}

TEST(AdversarialLoopTest, AttackTelemetryIsPlausible) {
  const ip::BnbAssignmentSolver solver;
  const ReliabilityModel model = small_model(11);
  AdversarialLoopConfig cfg;
  cfg.loop = small_loop();
  cfg.attack = collusion(0.34);  // round(0.34 * 6) = 2 attackers
  const AdversarialLoopResult r = run_adversarial_loop(
      MechanismKind::Tvof, solver, core::MechanismConfig{}, model, cfg, 13);
  ASSERT_EQ(r.attackers.size(), 2u);
  ASSERT_EQ(r.rounds.size(), 8u);
  for (const auto& rec : r.rounds) {
    EXPECT_TRUE(rec.attack_active);  // collusion attacks every round
    EXPECT_GT(rec.attack_edges, 0u);
    EXPECT_GE(rec.rank_corruption, 0.0);
    EXPECT_LE(rec.rank_corruption, 1.0);
    if (rec.formed) {
      EXPECT_GE(rec.attacker_selected_fraction, 0.0);
      EXPECT_LE(rec.attacker_selected_fraction, 1.0);
    }
  }
  EXPECT_GE(r.mean_rank_corruption, 0.0);
  EXPECT_LE(r.mean_rank_corruption, 1.0);
}

TEST(AdversarialLoopTest, OnOffRoundsAlternateActivity) {
  const ip::BnbAssignmentSolver solver;
  const ReliabilityModel model = small_model(17);
  AdversarialLoopConfig cfg;
  cfg.loop = small_loop();
  cfg.attack = collusion(0.34);
  cfg.attack.type = trust::AttackType::OnOff;
  cfg.attack.period = 4;
  const AdversarialLoopResult r = run_adversarial_loop(
      MechanismKind::Tvof, solver, core::MechanismConfig{}, model, cfg, 19);
  for (const auto& rec : r.rounds) {
    EXPECT_EQ(rec.attack_active, (rec.round % 4) < 2) << rec.round;
  }
}

TEST(AdversarialLoopTest, CustomInitialTrustGraphIsUsed) {
  const ip::BnbAssignmentSolver solver;
  const ReliabilityModel model = small_model(23);
  AdversarialLoopConfig cfg;
  cfg.loop = small_loop();
  util::Xoshiro256 rng(29);
  cfg.initial_trust_graph = trust::random_trust_graph(6, 0.5, rng);
  const AdversarialLoopResult a = run_adversarial_loop(
      MechanismKind::Tvof, solver, core::MechanismConfig{}, model, cfg, 31);
  AdversarialLoopConfig plain_cfg;
  plain_cfg.loop = small_loop();
  const AdversarialLoopResult b = run_adversarial_loop(
      MechanismKind::Tvof, solver, core::MechanismConfig{}, model, plain_cfg,
      31);
  // A different starting graph must change at least one formed VO across
  // the run (the complete-at-0.5 start is highly symmetric; the random
  // graph is not).
  bool any_difference = false;
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    if (!(a.rounds[i].vo == b.rounds[i].vo)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(AdversarialLoopTest, ValidatesConfig) {
  const ip::BnbAssignmentSolver solver;
  const ReliabilityModel model = small_model(37);
  AdversarialLoopConfig cfg;
  cfg.loop = small_loop();
  cfg.loop.rounds = 0;
  EXPECT_THROW((void)run_adversarial_loop(MechanismKind::Tvof, solver,
                                          core::MechanismConfig{}, model, cfg,
                                          1),
               InvalidArgument);
  cfg = AdversarialLoopConfig{};
  cfg.loop = small_loop();
  cfg.attacker_theta = 1.5;
  EXPECT_THROW((void)run_adversarial_loop(MechanismKind::Tvof, solver,
                                          core::MechanismConfig{}, model, cfg,
                                          1),
               InvalidArgument);
  cfg = AdversarialLoopConfig{};
  cfg.loop = small_loop();
  cfg.initial_trust_graph = trust::TrustGraph(4);  // wrong size
  EXPECT_THROW((void)run_adversarial_loop(MechanismKind::Tvof, solver,
                                          core::MechanismConfig{}, model, cfg,
                                          1),
               InvalidArgument);
  cfg = AdversarialLoopConfig{};
  cfg.loop = small_loop();
  cfg.loop.gen.params.num_gsps = 4;  // model has 6
  EXPECT_THROW((void)run_adversarial_loop(MechanismKind::Tvof, solver,
                                          core::MechanismConfig{}, model, cfg,
                                          1),
               InvalidArgument);
}

}  // namespace
}  // namespace svo::sim
