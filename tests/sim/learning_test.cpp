#include "sim/learning.hpp"

#include <gtest/gtest.h>

#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"

namespace svo::sim {
namespace {

ClosedLoopConfig small_config() {
  ClosedLoopConfig cfg;
  cfg.rounds = 8;
  cfg.num_tasks = 24;
  cfg.gen.params.num_gsps = 6;
  return cfg;
}

TEST(ClosedLoopTest, ProducesOneRecordPerRound) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  util::Xoshiro256 rng(1);
  const ReliabilityModel model =
      ReliabilityModel::bimodal(6, 0.7, 0.9, 0.3, rng);
  const ClosedLoopResult r = run_closed_loop(tvof, model, small_config(), 11);
  EXPECT_EQ(r.rounds.size(), 8u);
  for (std::size_t i = 0; i < r.rounds.size(); ++i) {
    EXPECT_EQ(r.rounds[i].round, i);
    if (r.rounds[i].formed) {
      EXPECT_FALSE(r.rounds[i].vo.empty());
      EXPECT_GE(r.rounds[i].delivery_rate, 0.0);
      EXPECT_LE(r.rounds[i].delivery_rate, 1.0);
    }
  }
}

TEST(ClosedLoopTest, DeterministicInSeed) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  util::Xoshiro256 rng(2);
  const ReliabilityModel model =
      ReliabilityModel::bimodal(6, 0.7, 0.9, 0.3, rng);
  const ClosedLoopResult a = run_closed_loop(tvof, model, small_config(), 42);
  const ClosedLoopResult b = run_closed_loop(tvof, model, small_config(), 42);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].vo, b.rounds[i].vo);
    EXPECT_EQ(a.rounds[i].completed, b.rounds[i].completed);
    EXPECT_DOUBLE_EQ(a.rounds[i].realized_share, b.rounds[i].realized_share);
  }
}

TEST(ClosedLoopTest, PerfectReliabilityCompletesEverything) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const ReliabilityModel model(std::vector<double>(6, 1.0));
  const ClosedLoopResult r = run_closed_loop(tvof, model, small_config(), 7);
  for (const auto& rec : r.rounds) {
    if (rec.formed) {
      EXPECT_TRUE(rec.completed);
      EXPECT_DOUBLE_EQ(rec.delivery_rate, 1.0);
      EXPECT_NEAR(rec.realized_share, rec.promised_share, 1e-9);
      EXPECT_DOUBLE_EQ(rec.unreliable_member_fraction, 0.0);
    }
  }
  EXPECT_DOUBLE_EQ(r.completion_rate, 1.0);
}

TEST(ClosedLoopTest, TvofLearnsToAvoidUnreliableGsps) {
  // Two chronically unreliable GSPs; over the rounds TVOF's later VOs
  // should include them less often than its earliest VOs.
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const ReliabilityModel model({0.95, 0.95, 0.05, 0.95, 0.05, 0.95});
  ClosedLoopConfig cfg = small_config();
  cfg.rounds = 24;
  double early = 0.0;
  double late = 0.0;
  std::size_t early_n = 0;
  std::size_t late_n = 0;
  // Average over several seeds to avoid single-run noise.
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    const ClosedLoopResult r = run_closed_loop(tvof, model, cfg, seed);
    for (const auto& rec : r.rounds) {
      if (!rec.formed) continue;
      if (rec.round < cfg.rounds / 3) {
        early += rec.unreliable_member_fraction;
        ++early_n;
      } else if (rec.round >= 2 * cfg.rounds / 3) {
        late += rec.unreliable_member_fraction;
        ++late_n;
      }
    }
  }
  ASSERT_GT(early_n, 0u);
  ASSERT_GT(late_n, 0u);
  EXPECT_LT(late / static_cast<double>(late_n),
            early / static_cast<double>(early_n));
}

TEST(ClosedLoopTest, TvofBeatsRvofOnRealizedValue) {
  // The headline closed-loop claim: identical programs, identical hidden
  // reliabilities, identical execution randomness — trust-guided
  // formation must realize more value than random formation on average.
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const core::RvofMechanism rvof(solver);
  ClosedLoopConfig cfg = small_config();
  cfg.rounds = 20;
  double tvof_total = 0.0;
  double rvof_total = 0.0;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull}) {
    util::Xoshiro256 rng(seed * 17);
    const ReliabilityModel model =
        ReliabilityModel::bimodal(6, 0.6, 0.9, 0.25, rng);
    tvof_total += run_closed_loop(tvof, model, cfg, seed).mean_realized_share;
    rvof_total += run_closed_loop(rvof, model, cfg, seed).mean_realized_share;
  }
  EXPECT_GT(tvof_total, rvof_total);
}

TEST(ClosedLoopTest, ValidatesConfig) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const ReliabilityModel model(std::vector<double>(6, 1.0));
  ClosedLoopConfig cfg = small_config();
  cfg.rounds = 0;
  EXPECT_THROW((void)run_closed_loop(tvof, model, cfg, 1), InvalidArgument);
  cfg = small_config();
  cfg.gen.params.num_gsps = 4;  // model has 6
  EXPECT_THROW((void)run_closed_loop(tvof, model, cfg, 1), InvalidArgument);
}

}  // namespace
}  // namespace svo::sim
