#include "sim/runner.hpp"

#include <gtest/gtest.h>

namespace svo::sim {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.trace.num_jobs = 3000;
  cfg.trace.min_jobs_per_canonical_size = 4;
  cfg.trace.canonical_sizes = {24, 48};
  cfg.task_sizes = {24, 48};
  cfg.repetitions = 3;
  cfg.gen.params.num_gsps = 5;
  cfg.solver.max_nodes = 2000;
  return cfg;
}

TEST(ExperimentRunnerTest, SweepCoversAllSizesAndReps) {
  const ExperimentRunner runner(tiny_config());
  const SweepResult r = runner.run_sweep();
  ASSERT_EQ(r.points.size(), 2u);
  for (const auto& p : r.points) {
    EXPECT_EQ(p.tvof.exec_seconds.count(), 3u);
    EXPECT_EQ(p.rvof.exec_seconds.count(), 3u);
    EXPECT_EQ(p.tvof.payoff.count() + p.tvof.failures, 3u);
    EXPECT_EQ(p.rvof.payoff.count() + p.rvof.failures, 3u);
  }
  EXPECT_EQ(r.points[0].num_tasks, 24u);
  EXPECT_EQ(r.points[1].num_tasks, 48u);
}

TEST(ExperimentRunnerTest, VoSizesWithinBounds) {
  const ExperimentRunner runner(tiny_config());
  const SweepResult r = runner.run_sweep();
  for (const auto& p : r.points) {
    if (p.tvof.vo_size.count() > 0) {
      EXPECT_GE(p.tvof.vo_size.min(), 1.0);
      EXPECT_LE(p.tvof.vo_size.max(), 5.0);
    }
  }
}

TEST(ExperimentRunnerTest, ObserverSeesEveryRun) {
  const ExperimentRunner runner(tiny_config());
  std::size_t tvof_runs = 0;
  std::size_t rvof_runs = 0;
  (void)runner.run_sweep([&](std::size_t, std::size_t,
                             const std::string& mech,
                             const core::MechanismResult&) {
    (mech == "TVOF" ? tvof_runs : rvof_runs) += 1;
  });
  EXPECT_EQ(tvof_runs, 6u);
  EXPECT_EQ(rvof_runs, 6u);
}

TEST(ExperimentRunnerTest, RvofCanBeDisabled) {
  ExperimentConfig cfg = tiny_config();
  cfg.run_rvof = false;
  cfg.task_sizes = {24};
  const ExperimentRunner runner(cfg);
  const SweepResult r = runner.run_sweep();
  EXPECT_EQ(r.points[0].rvof.exec_seconds.count(), 0u);
  EXPECT_EQ(r.points[0].tvof.exec_seconds.count(), 3u);
}

TEST(ExperimentRunnerTest, DeterministicAcrossRuns) {
  const ExperimentRunner a(tiny_config());
  const ExperimentRunner b(tiny_config());
  const SweepResult ra = a.run_sweep();
  const SweepResult rb = b.run_sweep();
  for (std::size_t i = 0; i < ra.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.points[i].tvof.payoff.mean(),
                     rb.points[i].tvof.payoff.mean());
    EXPECT_DOUBLE_EQ(ra.points[i].rvof.avg_reputation.mean(),
                     rb.points[i].rvof.avg_reputation.mean());
    EXPECT_DOUBLE_EQ(ra.points[i].tvof.vo_size.mean(),
                     rb.points[i].tvof.vo_size.mean());
  }
}

TEST(ExperimentRunnerTest, FailuresAreCountedNotAveraged) {
  // Starve the mechanism's solver (zero nodes, no greedy seed): every
  // coalition evaluates as infeasible, every run fails, the failure
  // counter absorbs them, and the payoff stats stay empty.
  ExperimentConfig cfg = tiny_config();
  cfg.task_sizes = {24};
  cfg.solver.max_nodes = 0;
  cfg.solver.seed_with_greedy = false;
  const ExperimentRunner runner(cfg);
  const SweepResult r = runner.run_sweep();
  const auto& p = r.points[0];
  EXPECT_EQ(p.tvof.failures, 3u);
  EXPECT_EQ(p.tvof.payoff.count(), 0u);
  EXPECT_EQ(p.tvof.exec_seconds.count(), 3u);  // time recorded regardless
}

TEST(ExperimentRunnerTest, RunPairUsesIndependentStreams) {
  const ExperimentRunner runner(tiny_config());
  const Scenario s = runner.scenarios().make(24, 0);
  const auto pr1 = runner.run_pair(s);
  const auto pr2 = runner.run_pair(s);
  EXPECT_EQ(pr1.tvof.selected, pr2.tvof.selected);  // deterministic
  EXPECT_EQ(pr1.rvof.selected, pr2.rvof.selected);
}

TEST(ExperimentRunnerTest, RunPairDistributedMatchesLocalDecisions) {
  // The fault-free trusted-party protocol is pure measurement: the
  // decisions must equal run_pair()'s, with all recovery counters zero.
  const ExperimentRunner runner(tiny_config());
  const Scenario s = runner.scenarios().make(24, 0);
  const auto local = runner.run_pair(s);
  const auto dist = runner.run_pair_distributed(s);
  EXPECT_EQ(dist.tvof.mechanism.selected, local.tvof.selected);
  EXPECT_EQ(dist.tvof.mechanism.mapping, local.tvof.mapping);
  EXPECT_EQ(dist.rvof.mechanism.selected, local.rvof.selected);
  EXPECT_EQ(dist.rvof.mechanism.mapping, local.rvof.mapping);
  for (const auto* p : {&dist.tvof.protocol, &dist.rvof.protocol}) {
    EXPECT_GT(p->messages, 0u);
    EXPECT_EQ(p->retries, 0u);
    EXPECT_EQ(p->timeouts_fired, 0u);
    EXPECT_EQ(p->drops_observed, 0u);
    EXPECT_EQ(p->repair_rounds, 0u);
    EXPECT_FALSE(p->degraded_quorum);
    EXPECT_FALSE(p->formation_failed);
  }
}

}  // namespace
}  // namespace svo::sim
