#include "sim/multi_program.hpp"

#include <gtest/gtest.h>

#include "core/tvof.hpp"
#include "ip/bnb.hpp"

namespace svo::sim {
namespace {

MultiProgramConfig small_config() {
  MultiProgramConfig cfg;
  cfg.programs = 10;
  cfg.tasks_lo = 16;
  cfg.tasks_hi = 32;
  cfg.gen.params.num_gsps = 8;
  return cfg;
}

TEST(MultiProgramTest, OneOutcomePerProgram) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const MultiProgramResult r =
      run_multi_program(tvof, small_config(), 1);
  ASSERT_EQ(r.outcomes.size(), 10u);
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    EXPECT_EQ(r.outcomes[i].index, i);
  }
}

TEST(MultiProgramTest, ArrivalTimesNonDecreasing) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const MultiProgramResult r = run_multi_program(tvof, small_config(), 2);
  for (std::size_t i = 1; i < r.outcomes.size(); ++i) {
    EXPECT_GE(r.outcomes[i].arrival_time, r.outcomes[i - 1].arrival_time);
  }
}

TEST(MultiProgramTest, CommittedGspsAreNotReused) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const MultiProgramResult r = run_multi_program(tvof, small_config(), 3);
  for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
    if (!r.outcomes[i].admitted) continue;
    for (std::size_t j = 0; j < i; ++j) {
      if (!r.outcomes[j].admitted) continue;
      if (r.outcomes[j].busy_until > r.outcomes[i].arrival_time) {
        // j's VO was still committed when i arrived: no overlap allowed.
        EXPECT_TRUE(r.outcomes[i].vo.intersect(r.outcomes[j].vo).empty())
            << "programs " << j << " and " << i << " share a GSP";
      }
    }
  }
}

TEST(MultiProgramTest, OversubscriptionLowersAdmission) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  MultiProgramConfig relaxed = small_config();
  relaxed.arrival_intensity = 6.0;  // sparse arrivals: grid mostly idle
  MultiProgramConfig oversubscribed = small_config();
  oversubscribed.arrival_intensity = 0.05;  // dense arrivals
  double relaxed_rate = 0.0;
  double tight_rate = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    relaxed_rate += run_multi_program(tvof, relaxed, seed).admission_rate;
    tight_rate +=
        run_multi_program(tvof, oversubscribed, seed).admission_rate;
  }
  EXPECT_GT(relaxed_rate, tight_rate);
}

TEST(MultiProgramTest, UtilizationWithinBounds) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const MultiProgramResult r = run_multi_program(tvof, small_config(), 5);
  EXPECT_GE(r.mean_utilization, 0.0);
  EXPECT_LE(r.mean_utilization, 1.0);
  EXPECT_GE(r.admission_rate, 0.0);
  EXPECT_LE(r.admission_rate, 1.0);
}

TEST(MultiProgramTest, DeterministicInSeed) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const MultiProgramResult a = run_multi_program(tvof, small_config(), 9);
  const MultiProgramResult b = run_multi_program(tvof, small_config(), 9);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].vo, b.outcomes[i].vo);
    EXPECT_DOUBLE_EQ(a.outcomes[i].arrival_time, b.outcomes[i].arrival_time);
  }
  EXPECT_DOUBLE_EQ(a.total_value, b.total_value);
}

TEST(MultiProgramTest, ValidatesConfig) {
  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  MultiProgramConfig cfg = small_config();
  cfg.programs = 0;
  EXPECT_THROW((void)run_multi_program(tvof, cfg, 1), InvalidArgument);
  cfg = small_config();
  cfg.arrival_intensity = 0.0;
  EXPECT_THROW((void)run_multi_program(tvof, cfg, 1), InvalidArgument);
  cfg = small_config();
  cfg.tasks_lo = 0;
  EXPECT_THROW((void)run_multi_program(tvof, cfg, 1), InvalidArgument);
}

}  // namespace
}  // namespace svo::sim
