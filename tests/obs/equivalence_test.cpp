/// The observability invariant: enabling the recorder must not change a
/// single bit of any functional result. Spans read the clock and append
/// to thread-local buffers — they must never touch the mechanism's RNG,
/// the solver's search order, or the protocol's message sequence.
///
/// Strategy: run each entry point twice from identical seeds — once with
/// the recorder disabled, once enabled — and compare every functional
/// field exactly (operator== on doubles intentionally: "close" is a
/// bug here). Only elapsed wall-clock time may differ. An RNG probe
/// after each run additionally proves instrumentation consumed zero
/// random draws.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/distributed_tvof.hpp"
#include "core/mechanism.hpp"
#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "obs/trace.hpp"
#include "tests/ip/test_instances.hpp"
#include "trust/reputation.hpp"
#include "trust/trust_graph.hpp"
#include "util/rng.hpp"

namespace svo::core {
namespace {

struct Fixture {
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
};

Fixture make_fixture(std::size_t m, std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Fixture f;
  f.instance = ip::testing::random_instance(m, n, rng);
  f.trust = trust::random_trust_graph(m, /*p=*/0.4, rng);
  return f;
}

/// Exact equality over every functional MechanismResult field. Wall
/// clock (elapsed_seconds) is the one legitimate difference.
void expect_bit_identical(const MechanismResult& off,
                          const MechanismResult& on) {
  EXPECT_EQ(off.success, on.success);
  EXPECT_EQ(off.selected.bits(), on.selected.bits());
  EXPECT_EQ(off.mapping, on.mapping);
  EXPECT_EQ(off.cost, on.cost);
  EXPECT_EQ(off.value, on.value);
  EXPECT_EQ(off.payoff_share, on.payoff_share);
  EXPECT_EQ(off.avg_global_reputation, on.avg_global_reputation);
  EXPECT_EQ(off.global_reputation, on.global_reputation);
  EXPECT_EQ(off.stats.nodes, on.stats.nodes);
  EXPECT_EQ(off.stats.status, on.stats.status);
  EXPECT_EQ(off.stats.warm_start_used, on.stats.warm_start_used);
  EXPECT_EQ(off.stats.repair_moves, on.stats.repair_moves);
  ASSERT_EQ(off.journal.size(), on.journal.size());
  for (std::size_t i = 0; i < off.journal.size(); ++i) {
    const IterationRecord& a = off.journal[i];
    const IterationRecord& b = on.journal[i];
    EXPECT_EQ(a.coalition.bits(), b.coalition.bits()) << "iteration " << i;
    EXPECT_EQ(a.feasible, b.feasible) << "iteration " << i;
    EXPECT_EQ(a.cost, b.cost) << "iteration " << i;
    EXPECT_EQ(a.value, b.value) << "iteration " << i;
    EXPECT_EQ(a.payoff_share, b.payoff_share) << "iteration " << i;
    EXPECT_EQ(a.avg_global_reputation, b.avg_global_reputation)
        << "iteration " << i;
    EXPECT_EQ(a.removed_gsp, b.removed_gsp) << "iteration " << i;
    EXPECT_EQ(a.stats.nodes, b.stats.nodes) << "iteration " << i;
  }
}

/// Recorder state is process-global: force a known state around each
/// test and leave it disabled afterwards.
class TracingEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Recorder::instance().disable();
    obs::Recorder::instance().clear();
  }
  void TearDown() override {
    obs::Recorder::instance().disable();
    obs::Recorder::instance().clear();
  }
};

/// Runs `mechanism` twice from the same seed — recorder off, then on —
/// and checks results bit for bit, plus an RNG probe: the next draws
/// after each run must match, proving instrumentation consumed no
/// randomness.
void check_mechanism(const VoFormationMechanism& mechanism,
                     WarmStartPolicy warm) {
  const Fixture f = make_fixture(6, 18, 0xC0FFEE);

  util::Xoshiro256 rng_off(42);
  obs::Recorder::instance().disable();
  const MechanismResult off = mechanism.run(
      FormationRequest{f.instance, f.trust, rng_off, {}, warm});
  const std::uint64_t probe_off[3] = {rng_off(), rng_off(), rng_off()};

  util::Xoshiro256 rng_on(42);
  obs::Recorder::instance().enable();
  const MechanismResult on = mechanism.run(
      FormationRequest{f.instance, f.trust, rng_on, {}, warm});
  const std::uint64_t probe_on[3] = {rng_on(), rng_on(), rng_on()};
  obs::Recorder::instance().disable();

  expect_bit_identical(off, on);
  EXPECT_EQ(probe_off[0], probe_on[0]);
  EXPECT_EQ(probe_off[1], probe_on[1]);
  EXPECT_EQ(probe_off[2], probe_on[2]);

  // The traced run must actually have produced spans — otherwise this
  // test proves nothing.
  EXPECT_GT(obs::Recorder::instance().event_count(), 0u);
}

TEST_F(TracingEquivalenceTest, TvofColdIsBitIdentical) {
  const ip::BnbAssignmentSolver solver;
  check_mechanism(TvofMechanism(solver), WarmStartPolicy::Off);
}

TEST_F(TracingEquivalenceTest, TvofWarmIsBitIdentical) {
  const ip::BnbAssignmentSolver solver;
  check_mechanism(TvofMechanism(solver), WarmStartPolicy::Incremental);
}

TEST_F(TracingEquivalenceTest, RvofIsBitIdentical) {
  const ip::BnbAssignmentSolver solver;
  check_mechanism(RvofMechanism(solver), WarmStartPolicy::Incremental);
}

TEST_F(TracingEquivalenceTest, TracedRunEmitsExpectedSpanNames) {
  const Fixture f = make_fixture(5, 15, 7);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(3);
  obs::Recorder::instance().enable();
  (void)tvof.run(FormationRequest{f.instance, f.trust, rng});
  obs::Recorder::instance().disable();

  bool saw_run = false, saw_iteration = false, saw_reputation = false;
  for (const obs::TraceEvent& ev :
       obs::Recorder::instance().snapshot_events()) {
    if (ev.name == "core.mechanism.run") saw_run = true;
    if (ev.name == "core.mechanism.iteration") saw_iteration = true;
    if (ev.name == "trust.reputation.compute") saw_reputation = true;
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_iteration);
  EXPECT_TRUE(saw_reputation);
}

/// The protocol path: ProtocolMetrics are built from the per-run local
/// registry, so they must be populated identically whether or not the
/// global recorder is on.
TEST_F(TracingEquivalenceTest, DistributedRunIsBitIdentical) {
  const Fixture f = make_fixture(5, 15, 0xFEED);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);

  util::Xoshiro256 rng_off(17);
  obs::Recorder::instance().disable();
  const DistributedRunResult off =
      run_distributed(tvof, f.instance, f.trust, rng_off);
  const std::uint64_t probe_off = rng_off();

  util::Xoshiro256 rng_on(17);
  obs::Recorder::instance().enable();
  const DistributedRunResult on =
      run_distributed(tvof, f.instance, f.trust, rng_on);
  const std::uint64_t probe_on = rng_on();
  obs::Recorder::instance().disable();

  expect_bit_identical(off.mechanism, on.mechanism);
  EXPECT_EQ(probe_off, probe_on);

  EXPECT_EQ(off.protocol.messages, on.protocol.messages);
  EXPECT_EQ(off.protocol.bytes, on.protocol.bytes);
  // completion_seconds is intentionally NOT compared exactly: the
  // protocol advances the simulated clock by the *measured* compute
  // time of the mechanism run (distributed_tvof.hpp), so it is
  // wall-clock-derived like elapsed_seconds. The report phase ends
  // before the mechanism runs, so it stays purely simulated and exact.
  EXPECT_EQ(off.protocol.report_phase_seconds,
            on.protocol.report_phase_seconds);
  EXPECT_EQ(off.protocol.retries, on.protocol.retries);
  EXPECT_EQ(off.protocol.timeouts_fired, on.protocol.timeouts_fired);
  EXPECT_EQ(off.protocol.drops_observed, on.protocol.drops_observed);
  EXPECT_EQ(off.protocol.repair_rounds, on.protocol.repair_rounds);
  EXPECT_EQ(off.protocol.degraded_quorum, on.protocol.degraded_quorum);
  EXPECT_EQ(off.protocol.formation_failed, on.protocol.formation_failed);

  // Lossless run: metrics flowed through the registry, not around it.
  EXPECT_GT(off.protocol.messages, 0u);
  EXPECT_GT(off.protocol.completion_seconds, 0.0);
  EXPECT_EQ(off.protocol.retries, 0u);
}

/// Causal context propagation (flow events, Message::trace_parent,
/// phase ids) must obey the same invariant as spans: a *faulted*
/// protocol run — retries, timeouts, repair — is bit-identical with the
/// recorder off and on, and consumes zero extra randomness.
TEST_F(TracingEquivalenceTest, FaultedDistributedRunIsBitIdentical) {
  const Fixture f = make_fixture(6, 18, 0xFA11);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);

  ProtocolOptions proto;
  proto.latency.base_seconds = 0.02;
  proto.latency.jitter = 0.3;
  proto.report_timeout_seconds = 0.2;
  proto.award_timeout_seconds = 0.15;
  proto.faults.drop_probability = 0.3;
  proto.faults.straggler_probability = 0.1;
  proto.faults.straggler_multiplier = 4.0;
  proto.faults.seed = 0xFA11 ^ 0xFA117;
  proto.faults.crashes = gsp_crash_schedule(
      des::random_crash_windows(6, 0.4, 0.2, 0.0, 0xFA11 ^ 0xC4A5));

  util::Xoshiro256 rng_off(23);
  obs::Recorder::instance().disable();
  const DistributedRunResult off =
      run_distributed(tvof, f.instance, f.trust, rng_off, proto);
  const std::uint64_t probe_off = rng_off();

  util::Xoshiro256 rng_on(23);
  obs::Recorder::instance().enable();
  const DistributedRunResult on =
      run_distributed(tvof, f.instance, f.trust, rng_on, proto);
  const std::uint64_t probe_on = rng_on();
  obs::Recorder::instance().disable();

  expect_bit_identical(off.mechanism, on.mechanism);
  EXPECT_EQ(probe_off, probe_on);
  EXPECT_EQ(off.protocol.messages, on.protocol.messages);
  EXPECT_EQ(off.protocol.bytes, on.protocol.bytes);
  EXPECT_EQ(off.protocol.report_phase_seconds,
            on.protocol.report_phase_seconds);
  EXPECT_EQ(off.protocol.retries, on.protocol.retries);
  EXPECT_EQ(off.protocol.timeouts_fired, on.protocol.timeouts_fired);
  EXPECT_EQ(off.protocol.drops_observed, on.protocol.drops_observed);
  EXPECT_EQ(off.protocol.repair_rounds, on.protocol.repair_rounds);
  EXPECT_EQ(off.protocol.degraded_quorum, on.protocol.degraded_quorum);
  EXPECT_EQ(off.protocol.formation_failed, on.protocol.formation_failed);

  // The fault machinery must have actually fired, or this proves
  // nothing about the retry/timeout instrumentation paths.
  EXPECT_GT(off.protocol.drops_observed + off.protocol.timeouts_fired, 0u);
  // And the traced run produced the causal DAG.
  bool saw_flow = false;
  for (const obs::TraceEvent& ev :
       obs::Recorder::instance().snapshot_events()) {
    if (ev.kind == obs::EventKind::FlowStart) saw_flow = true;
  }
  EXPECT_TRUE(saw_flow);
}

/// The exported causal DAG is *well-formed*: every message flow's
/// parent chain resolves to recorded events, TP re-sends attach to
/// their phase, and GSP replies attach to the delivery that caused
/// them (no rootless protocol messages).
TEST_F(TracingEquivalenceTest, TracedProtocolMessagesAreCausallyLinked) {
  const Fixture f = make_fixture(5, 15, 0xCAFE);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(11);
  obs::Recorder::instance().enable();
  (void)run_distributed(tvof, f.instance, f.trust, rng);
  obs::Recorder::instance().disable();

  const std::vector<obs::TraceEvent> events =
      obs::Recorder::instance().snapshot_events();
  std::size_t flows = 0;
  std::size_t rootless = 0;
  for (const obs::TraceEvent& ev : events) {
    if (ev.kind != obs::EventKind::FlowStart) continue;
    ++flows;
    if (ev.parent == 0) ++rootless;
    // Every flow parent must be a recorded event (a phase event, a
    // deliver span, or another span) — never a dangling id.
    if (ev.parent != 0) {
      bool found = false;
      for (const obs::TraceEvent& other : events) {
        if (other.id == ev.parent &&
            other.kind != obs::EventKind::FlowEnd) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "flow " << ev.name << " id " << ev.id
                         << " has dangling parent " << ev.parent;
    }
  }
  EXPECT_GT(flows, 0u);
  EXPECT_EQ(rootless, 0u) << "protocol messages must be causally rooted";
}

TEST_F(TracingEquivalenceTest, TracedProtocolEmitsPhaseEvents) {
  const Fixture f = make_fixture(5, 15, 21);
  const ip::BnbAssignmentSolver solver;
  const TvofMechanism tvof(solver);
  util::Xoshiro256 rng(5);
  obs::Recorder::instance().enable();
  (void)run_distributed(tvof, f.instance, f.trust, rng);
  obs::Recorder::instance().disable();

  bool saw_protocol_run = false, saw_collecting = false, saw_deciding = false,
       saw_awarding = false;
  for (const obs::TraceEvent& ev :
       obs::Recorder::instance().snapshot_events()) {
    if (ev.name == "core.protocol.run") saw_protocol_run = true;
    if (ev.name == "protocol.phase.collecting") saw_collecting = true;
    if (ev.name == "protocol.phase.deciding") saw_deciding = true;
    if (ev.name == "protocol.phase.awarding") saw_awarding = true;
  }
  EXPECT_TRUE(saw_protocol_run);
  EXPECT_TRUE(saw_collecting);
  EXPECT_TRUE(saw_deciding);
  EXPECT_TRUE(saw_awarding);
}

}  // namespace
}  // namespace svo::core
