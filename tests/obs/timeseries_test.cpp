/// \file timeseries_test.cpp
/// The continuous-telemetry layer (DESIGN.md §4j): windowed
/// time-series over a MetricRegistry, the standalone WindowedHistogram
/// ring, SLO / error-budget / burn-rate tracking, and the Prometheus +
/// JSONL exporters. Everything here is pure arithmetic over injected
/// clocks, so every test is deterministic by construction.
#include "obs/export_prom.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace svo::obs {
namespace {

// ---------------------------------------------------- WindowedHistogram

TEST(WindowedHistogramTest, CloseWindowSnapshotsAndResets) {
  WindowedHistogram wh(4);
  wh.observe(10.0);
  wh.observe(20.0);
  const Histogram::Snapshot& w0 = wh.close_window();
  EXPECT_EQ(w0.count, 2u);
  wh.observe(100.0);
  const Histogram::Snapshot& w1 = wh.close_window();
  EXPECT_EQ(w1.count, 1u);  // fresh window, not cumulative
  EXPECT_DOUBLE_EQ(w1.min, 100.0);
  EXPECT_EQ(wh.size(), 2u);
}

TEST(WindowedHistogramTest, RingEvictsOldestBeyondCapacity) {
  WindowedHistogram wh(2);
  for (int w = 0; w < 5; ++w) {
    wh.observe(static_cast<double>(w + 1));
    wh.close_window();
  }
  EXPECT_EQ(wh.size(), 2u);
  // Oldest retained window is #3 (value 4).
  EXPECT_DOUBLE_EQ(wh.windows().front().min, 4.0);
  EXPECT_DOUBLE_EQ(wh.windows().back().min, 5.0);
}

TEST(WindowedHistogramTest, RollupMergesNewestWindows) {
  WindowedHistogram wh(8);
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 10; ++i) wh.observe(100.0 * (w + 1));
    wh.close_window();
  }
  const Histogram::Snapshot all = wh.rollup(8);
  EXPECT_EQ(all.count, 40u);
  EXPECT_DOUBLE_EQ(all.min, 100.0);
  EXPECT_DOUBLE_EQ(all.max, 400.0);
  const Histogram::Snapshot tail = wh.rollup(2);
  EXPECT_EQ(tail.count, 20u);
  EXPECT_DOUBLE_EQ(tail.min, 300.0);  // windows 2 and 3 only
}

TEST(WindowedHistogramTest, RollupQuantileWithinFactorTwoOfExact) {
  WindowedHistogram wh(16);
  std::vector<double> samples;
  util::Xoshiro256 rng(7);
  for (int w = 0; w < 16; ++w) {
    for (int i = 0; i < 200; ++i) {
      // Heavy-tailed integers: mostly small, occasionally large.
      const double v = (rng() % 20 == 0)
                           ? 10'000.0 + static_cast<double>(rng() % 50'000)
                           : 100.0 + static_cast<double>(rng() % 900);
      wh.observe(v);
      samples.push_back(v);
    }
    wh.close_window();
  }
  const Histogram::Snapshot roll = wh.rollup(16);
  ASSERT_EQ(roll.count, samples.size());
  for (const double q : {0.5, 0.95, 0.99}) {
    const double exact = util::percentile(samples, q);
    const double est = roll.quantile(q);
    EXPECT_LE(est, 2.0 * exact) << "q=" << q;
    EXPECT_GE(est, exact / 2.0) << "q=" << q;
  }
}

// ------------------------------------------------------------ TimeSeries

TEST(TimeSeriesTest, WindowsCarryCounterDeltasNotTotals) {
  MetricRegistry reg;
  TimeSeries ts(reg, 8);
  reg.counter("req").add(5);
  const Window& w0 = ts.advance(1.0);
  EXPECT_EQ(w0.counter("req"), 5u);
  reg.counter("req").add(2);
  const Window& w1 = ts.advance(2.0);
  EXPECT_EQ(w1.counter("req"), 2u);  // delta, not the cumulative 7
  EXPECT_EQ(w1.index, 1u);
  EXPECT_DOUBLE_EQ(w1.start_time, 1.0);
  EXPECT_DOUBLE_EQ(w1.end_time, 2.0);
}

TEST(TimeSeriesTest, QuietMetricsAreAbsentAndReadZero) {
  MetricRegistry reg;
  reg.counter("busy").add(1);
  (void)reg.counter("quiet");
  TimeSeries ts(reg, 4, 0.0);
  reg.counter("busy").add(3);
  const Window& w = ts.advance(1.0);
  EXPECT_EQ(w.counters.count("quiet"), 0u);  // untouched => not stored
  EXPECT_EQ(w.counter("quiet"), 0u);         // but reads as zero
  EXPECT_EQ(w.counter("busy"), 3u);          // baseline was 1, now 4
}

TEST(TimeSeriesTest, GaugesAreLevelsAtClose) {
  MetricRegistry reg;
  TimeSeries ts(reg, 4);
  reg.gauge("depth").set(10.0);
  ts.advance(1.0);
  reg.gauge("depth").set(4.0);
  const Window& w1 = ts.advance(2.0);
  EXPECT_DOUBLE_EQ(w1.gauge("depth"), 4.0);  // level, not a delta
}

TEST(TimeSeriesTest, HistogramDeltasPerWindow) {
  MetricRegistry reg;
  TimeSeries ts(reg, 4);
  reg.histogram("lat").observe(10.0);
  reg.histogram("lat").observe(20.0);
  ts.advance(1.0);
  reg.histogram("lat").observe(1000.0);
  const Window& w1 = ts.advance(2.0);
  EXPECT_EQ(w1.histogram("lat").count, 1u);  // only the new sample
}

TEST(TimeSeriesTest, CounterShrinkRestartsDelta) {
  MetricRegistry reg;
  TimeSeries ts(reg, 4);
  reg.counter("c").add(10);
  ts.advance(1.0);
  reg.reset();  // cumulative value shrank under the baseline
  reg.counter("c").add(3);
  const Window& w1 = ts.advance(2.0);
  EXPECT_EQ(w1.counter("c"), 3u);  // restarted, not underflowed
}

TEST(TimeSeriesTest, RingEvictsButWindowsClosedIsMonotonic) {
  MetricRegistry reg;
  TimeSeries ts(reg, 2);
  for (int i = 0; i < 5; ++i) ts.advance(static_cast<double>(i + 1));
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.windows_closed(), 5u);
  EXPECT_EQ(ts.windows().front().index, 3u);
}

TEST(TimeSeriesTest, RollupSpansAndSums) {
  MetricRegistry reg;
  TimeSeries ts(reg, 8);
  for (int i = 0; i < 3; ++i) {
    reg.counter("req").add(2);
    reg.gauge("depth").set(static_cast<double>(i));
    ts.advance(static_cast<double>(i + 1));
  }
  const Window roll = ts.rollup(2);
  EXPECT_EQ(roll.counter("req"), 4u);         // newest two windows
  EXPECT_DOUBLE_EQ(roll.gauge("depth"), 2.0); // newest reading wins
  EXPECT_DOUBLE_EQ(roll.start_time, 1.0);
  EXPECT_DOUBLE_EQ(roll.end_time, 3.0);
}

TEST(TimeSeriesTest, BackwardsClockAndZeroCapacityThrow) {
  MetricRegistry reg;
  EXPECT_THROW(TimeSeries(reg, 0), InvalidArgument);
  TimeSeries ts(reg, 4);
  ts.advance(5.0);
  EXPECT_THROW(ts.advance(4.0), InvalidArgument);
  ts.advance(5.0);  // equal time is allowed (empty window)
}

// ------------------------------------------------------------ SloTracker

Window make_window(std::uint64_t index, double p99_value,
                   std::uint64_t errors, std::uint64_t total,
                   std::uint64_t lost) {
  Window w;
  w.index = index;
  w.start_time = static_cast<double>(index);
  w.end_time = static_cast<double>(index + 1);
  if (total > 0) w.counters["req.total"] = total;
  if (errors > 0) w.counters["req.errors"] = errors;
  if (lost > 0) w.counters["req.lost"] = lost;
  if (p99_value > 0.0) {
    Histogram h;
    h.observe(p99_value);
    w.histograms["lat"] = h.snapshot();
  }
  return w;
}

std::vector<SloObjective> three_objectives() {
  SloObjective lat;
  lat.name = "lat_p99";
  lat.kind = SloKind::QuantileBelow;
  lat.metric = "lat";
  lat.quantile = 0.99;
  lat.threshold = 1000.0;
  lat.error_budget = 0.25;
  lat.fast_windows = 2;
  lat.slow_windows = 4;
  SloObjective err;
  err.name = "error_rate";
  err.kind = SloKind::RatioBelow;
  err.metric = "req.errors";
  err.denominator = "req.total";
  err.threshold = 0.1;
  err.error_budget = 0.25;
  err.fast_windows = 2;
  err.slow_windows = 4;
  SloObjective lost;
  lost.name = "lost_zero";
  lost.kind = SloKind::CounterZero;
  lost.metric = "req.lost";
  lost.error_budget = 0.25;
  lost.fast_windows = 2;
  lost.slow_windows = 4;
  return {lat, err, lost};
}

TEST(SloTrackerTest, HealthyWindowsViolateNothing) {
  SloTracker tracker(three_objectives());
  for (std::uint64_t i = 0; i < 4; ++i) {
    tracker.evaluate(make_window(i, 100.0, 0, 100, 0));
  }
  for (const SloStatus& st : tracker.status()) {
    EXPECT_EQ(st.violations, 0u) << st.name;
    EXPECT_FALSE(st.breached) << st.name;
    EXPECT_DOUBLE_EQ(st.budget_consumed, 0.0) << st.name;
  }
  EXPECT_FALSE(tracker.any_breached());
}

TEST(SloTrackerTest, EachKindDetectsItsViolation) {
  SloTracker tracker(three_objectives());
  // p99 over threshold, 50% errors, lost requests — all three violate.
  tracker.evaluate(make_window(0, 5000.0, 50, 100, 2));
  const std::vector<SloStatus>& st = tracker.status();
  ASSERT_EQ(st.size(), 3u);
  for (const SloStatus& s : st) {
    EXPECT_EQ(s.violations, 1u) << s.name;
    EXPECT_TRUE(s.violated_last) << s.name;
  }
}

TEST(SloTrackerTest, EmptyWindowHasNoDataAndDoesNotViolate) {
  SloTracker tracker(three_objectives());
  tracker.evaluate(Window{});  // no samples, no denominator, no losses
  for (const SloStatus& s : tracker.status()) {
    EXPECT_EQ(s.violations, 0u) << s.name;
  }
}

TEST(SloTrackerTest, BudgetAndBurnRatesAccumulate) {
  SloTracker tracker(three_objectives());
  // 2 of 4 windows violate the latency objective (budget 0.25).
  tracker.evaluate(make_window(0, 5000.0, 0, 100, 0));
  tracker.evaluate(make_window(1, 100.0, 0, 100, 0));
  tracker.evaluate(make_window(2, 5000.0, 0, 100, 0));
  tracker.evaluate(make_window(3, 100.0, 0, 100, 0));
  const SloStatus& lat = tracker.status()[0];
  EXPECT_EQ(lat.windows, 4u);
  EXPECT_EQ(lat.violations, 2u);
  // budget_consumed = 2 / (4 * 0.25) = 2: budget doubly spent.
  EXPECT_DOUBLE_EQ(lat.budget_consumed, 2.0);
  // fast span (2 windows, 1 bad) burn = 0.5/0.25 = 2; slow (4, 2) = 2.
  EXPECT_DOUBLE_EQ(lat.fast_burn, 2.0);
  EXPECT_DOUBLE_EQ(lat.slow_burn, 2.0);
  EXPECT_TRUE(lat.breached);  // both burns >= burn_threshold = 1
}

TEST(SloTrackerTest, BreachNeedsFastAndSlowAgreement) {
  SloTracker tracker(three_objectives());
  // One bad window among many good: slow burn stays under threshold.
  tracker.evaluate(make_window(0, 5000.0, 0, 100, 0));
  tracker.evaluate(make_window(1, 100.0, 0, 100, 0));
  tracker.evaluate(make_window(2, 100.0, 0, 100, 0));
  tracker.evaluate(make_window(3, 100.0, 0, 100, 0));
  const SloStatus& lat = tracker.status()[0];
  // slow burn = (1/4)/0.25 = 1 >= 1 but fast burn = 0 — no breach.
  EXPECT_DOUBLE_EQ(lat.fast_burn, 0.0);
  EXPECT_FALSE(lat.breached);
}

TEST(SloTrackerTest, BreachOnsetsCountTransitions) {
  SloTracker tracker(three_objectives());
  std::uint64_t i = 0;
  const auto bad = [&] { tracker.evaluate(make_window(i++, 5e3, 0, 10, 0)); };
  const auto good = [&] { tracker.evaluate(make_window(i++, 1.0, 0, 10, 0)); };
  bad();
  bad();  // breach begins (fast 2/2, slow 2/2 against budget 0.25)
  EXPECT_TRUE(tracker.status()[0].breached);
  EXPECT_EQ(tracker.status()[0].breach_onsets, 1u);
  bad();  // still breached: no new onset
  EXPECT_EQ(tracker.status()[0].breach_onsets, 1u);
  good();
  good();  // fast window clears: breach ends
  EXPECT_FALSE(tracker.status()[0].breached);
  bad();
  bad();  // second onset
  EXPECT_EQ(tracker.status()[0].breach_onsets, 2u);
}

TEST(SloTrackerTest, SurfacesVerdictsIntoRegistry) {
  MetricRegistry reg;
  SloTracker tracker(three_objectives(), &reg);
  tracker.evaluate(make_window(0, 5000.0, 0, 100, 0));
  EXPECT_EQ(reg.counter_value("slo.lat_p99.violations"), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("slo.lat_p99.violated"), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("slo.error_rate.violated"), 0.0);
  tracker.evaluate(make_window(1, 5000.0, 0, 100, 0));
  EXPECT_EQ(reg.counter_value("slo.lat_p99.breaches"), 1u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("slo.lat_p99.breached"), 1.0);
}

TEST(SloTrackerTest, ObjectiveValidationRejectsNonsense) {
  SloObjective o;
  o.name = "x";
  o.kind = SloKind::QuantileBelow;
  o.metric = "m";
  o.threshold = 10.0;
  EXPECT_NO_THROW(o.validate());
  SloObjective bad = o;
  bad.name = "";
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = o;
  bad.metric = "";
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = o;
  bad.quantile = 1.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = o;
  bad.threshold = 0.0;  // required positive for quantile/ratio kinds
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = o;
  bad.error_budget = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = o;
  bad.fast_windows = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = o;
  bad.slow_windows = bad.fast_windows - 1;  // slow must cover fast
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = o;
  bad.kind = SloKind::RatioBelow;
  bad.denominator = "";
  EXPECT_THROW(bad.validate(), InvalidArgument);
  SloObjective zero;  // CounterZero needs no threshold
  zero.name = "z";
  zero.kind = SloKind::CounterZero;
  zero.metric = "lost";
  EXPECT_NO_THROW(zero.validate());
}

// ----------------------------------------------------- Prometheus export

TEST(PrometheusExportTest, SanitizesNames) {
  EXPECT_EQ(prometheus_name("svc.queue_us"), "svc_queue_us");
  EXPECT_EQ(prometheus_name("svc.shard0.ticks"), "svc_shard0_ticks");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(prometheus_name("a-b c"), "a_b_c");
}

TEST(PrometheusExportTest, EmitsAllFamiliesInExpositionFormat) {
  MetricRegistry reg;
  reg.counter("svc.ticks").add(3);
  reg.gauge("svc.depth").set(7.0);
  reg.histogram("svc.lat").observe(1.5);
  reg.histogram("svc.lat").observe(100.0);
  std::ostringstream os;
  write_prometheus(os, reg);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE svo_svc_ticks_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("svo_svc_ticks_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE svo_svc_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("svo_svc_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE svo_svc_lat histogram"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("svo_svc_lat_count 2"), std::string::npos);
  EXPECT_NE(text.find("svo_svc_lat_sum 101.5"), std::string::npos);
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulative) {
  MetricRegistry reg;
  reg.histogram("h").observe(0.5);  // bucket le="1"
  reg.histogram("h").observe(3.0);  // bucket le="4"
  std::ostringstream os;
  write_prometheus(os, reg, "t");
  const std::string text = os.str();
  EXPECT_NE(text.find("t_h_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("t_h_bucket{le=\"4\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_h_bucket{le=\"+Inf\"} 2"), std::string::npos);
}

// ----------------------------------------------------------- JSONL export

TEST(WindowJsonlTest, EmitsOneCompactObjectPerWindow) {
  Window w;
  w.index = 3;
  w.start_time = 10.0;
  w.end_time = 20.0;
  w.counters["req"] = 42;
  w.gauges["depth"] = 2.5;
  Histogram h;
  h.observe(7.0);
  w.histograms["lat"] = h.snapshot();
  std::ostringstream os;
  write_window_jsonl(os, w);
  const std::string line = os.str();
  EXPECT_EQ(line.find('\n'), std::string::npos);  // caller owns framing
  EXPECT_NE(line.find("\"window\":3"), std::string::npos);
  EXPECT_NE(line.find("\"req\":42"), std::string::npos);
  EXPECT_NE(line.find("\"depth\":2.5"), std::string::npos);
  EXPECT_NE(line.find("\"lat\""), std::string::npos);
  EXPECT_NE(line.find("\"count\":1"), std::string::npos);
}

TEST(WindowJsonlTest, SkipsZeroCountersAndEmptyHistograms) {
  Window w;
  w.counters["noise"] = 0;
  w.histograms["empty"] = Histogram::Snapshot{};
  std::ostringstream os;
  write_window_jsonl(os, w);
  EXPECT_EQ(os.str().find("noise"), std::string::npos);
  EXPECT_EQ(os.str().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace svo::obs
