/// Tests for obs::json_parse and obs::analysis: JSONL/Chrome round-trip
/// through the repo's own writer+parser pair (including the
/// non-finite-double -> null edge), span aggregation, collapsed stacks,
/// protocol causal analysis on a synthetic message DAG, and the bench
/// regression diff engine.
#include "obs/analysis.hpp"
#include "obs/json_parse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace svo::obs {
namespace {

// ------------------------------------------------------------- json_parse

TEST(JsonParseTest, ParsesScalarsAndContainers) {
  const JsonValue v = parse_json(
      R"({"s": "hi", "i": -42, "d": 2.5, "b": true, "z": null,
          "a": [1, 2.25], "o": {"k": "v"}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("s")->as_string(), "hi");
  EXPECT_TRUE(v.find("i")->is_integer());
  EXPECT_EQ(v.find("i")->as_int(), -42);
  EXPECT_FALSE(v.find("d")->is_integer());
  EXPECT_DOUBLE_EQ(v.find("d")->as_double(), 2.5);
  EXPECT_TRUE(v.find("b")->as_bool());
  EXPECT_TRUE(v.find("z")->is_null());
  ASSERT_EQ(v.find("a")->items().size(), 2u);
  EXPECT_EQ(v.find("a")->items()[0].as_int(), 1);
  EXPECT_EQ(v.find("o")->find("k")->as_string(), "v");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParseTest, IntegersRoundTripAtFullPrecision) {
  const JsonValue v = parse_json("[9223372036854775807, -9223372036854775808]");
  EXPECT_EQ(v.items()[0].as_int(), 9223372036854775807LL);
  // INT64_MIN's lexeme "-9223372036854775808" must parse integrally.
  EXPECT_TRUE(v.items()[1].is_integer());
}

TEST(JsonParseTest, DecodesEscapes) {
  const JsonValue v = parse_json(R"("quote\" slash\\ nl\n tab\t uA")");
  EXPECT_EQ(v.as_string(), "quote\" slash\\ nl\n tab\t uA");
}

TEST(JsonParseTest, MembersKeepInsertionOrder) {
  const JsonValue v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonParseTest, MalformedInputThrowsWithOffset) {
  EXPECT_THROW((void)parse_json("{\"a\": }"), IoError);
  EXPECT_THROW((void)parse_json("[1, 2"), IoError);
  EXPECT_THROW((void)parse_json("01"), IoError);
  EXPECT_THROW((void)parse_json("{} {}"), IoError);
  EXPECT_FALSE(try_parse_json("nope").has_value());
  try {
    (void)parse_json("[tru]");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(JsonParseTest, AcceptsWriterOutput) {
  // The parser must accept everything our own writer can produce.
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "svo \"quoted\"\n");
  w.kv("nan", std::nan(""));
  w.kv("big", std::uint64_t{18446744073709551615ULL});
  w.key("list").begin_array().value(1).value(false).end_array();
  w.end_object();
  const JsonValue v = parse_json(os.str());
  EXPECT_EQ(v.find("name")->as_string(), "svo \"quoted\"\n");
  EXPECT_TRUE(v.find("nan")->is_null());  // non-finite imaged as null
  // uint64 max exceeds int64: still a number, just not integral.
  EXPECT_TRUE(v.find("big")->is_number());
  EXPECT_FALSE(v.find("big")->is_integer());
}

// ------------------------------------------------- trace JSONL round-trip

/// Recorder tests share the process-wide singleton; reset around each.
class AnalysisRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Recorder::instance().disable();
    Recorder::instance().clear();
  }
  void TearDown() override {
    Recorder::instance().disable();
    Recorder::instance().clear();
  }
};

void expect_events_equal(const std::vector<TraceEvent>& a,
                         const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("event " + std::to_string(i));
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].category, b[i].category);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].start_us, b[i].start_us);
    EXPECT_EQ(a[i].duration_us, b[i].duration_us);
    EXPECT_EQ(a[i].tid, b[i].tid);
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].parent, b[i].parent);
    ASSERT_EQ(a[i].args.size(), b[i].args.size());
    for (std::size_t j = 0; j < a[i].args.size(); ++j) {
      EXPECT_EQ(a[i].args[j].first, b[i].args[j].first);
      if (std::isnan(a[i].args[j].second)) {
        EXPECT_TRUE(std::isnan(b[i].args[j].second));
      } else {
        EXPECT_DOUBLE_EQ(a[i].args[j].second, b[i].args[j].second);
      }
    }
    EXPECT_EQ(a[i].sargs, b[i].sargs);
  }
}

TEST_F(AnalysisRecorderTest, JsonlRoundTripPreservesSpanSet) {
  Recorder::instance().enable();
  {
    Span outer("test.rt.outer", "test");
    outer.arg("n", 16.0);
    outer.arg("status", "Optimal");
    Span inner("test.rt.inner", "test");
    inner.arg("cost", 2.5);
  }
  {
    // Flow + instant events round-trip too.
    TraceEvent flow;
    flow.name = "CFP";
    flow.category = "net";
    flow.kind = EventKind::FlowStart;
    flow.start_us = 1111;
    flow.id = Recorder::instance().next_id();
    flow.args.emplace_back("from", 0.0);
    Recorder::instance().record(std::move(flow));
    TraceEvent drop;
    drop.name = "net.drop";
    drop.category = "net";
    drop.kind = EventKind::Instant;
    drop.start_us = 2222;
    Recorder::instance().record(std::move(drop));
  }
  const std::vector<TraceEvent> original =
      Recorder::instance().snapshot_events();
  std::ostringstream os;
  Recorder::instance().write_jsonl(os);
  expect_events_equal(original, analysis::parse_trace(os.str()));
}

TEST_F(AnalysisRecorderTest, ChromeTraceRoundTripPreservesSpanSet) {
  Recorder::instance().enable();
  { Span span("test.chrome.span", "test"); }
  const std::vector<TraceEvent> original =
      Recorder::instance().snapshot_events();
  std::ostringstream os;
  Recorder::instance().write_chrome_trace(os);
  expect_events_equal(original, analysis::parse_trace(os.str()));
}

TEST_F(AnalysisRecorderTest, NonFiniteArgsRoundTripAsNaN) {
  Recorder::instance().enable();
  {
    Span span("test.rt.nonfinite", "test");
    span.arg("nan", std::nan(""));
    span.arg("inf", INFINITY);
    span.arg("ninf", -INFINITY);
    span.arg("fine", 0.25);
  }
  std::ostringstream os;
  Recorder::instance().write_jsonl(os);
  // On disk: null (valid JSON). In memory after reload: NaN — the
  // "value existed but was not finite" fact survives the round trip.
  EXPECT_NE(os.str().find("\"nan\":null"), std::string::npos);
  const std::vector<TraceEvent> loaded = analysis::parse_trace(os.str());
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_EQ(loaded[0].args.size(), 4u);
  EXPECT_TRUE(std::isnan(loaded[0].args[0].second));
  EXPECT_TRUE(std::isnan(loaded[0].args[1].second));
  EXPECT_TRUE(std::isnan(loaded[0].args[2].second));
  EXPECT_DOUBLE_EQ(loaded[0].args[3].second, 0.25);
}

TEST(AnalysisLoadTest, ForeignPhasesAreSkippedNotFatal) {
  // Other trace producers emit metadata ("M") and counter ("C") phases;
  // the loader keeps what it understands and drops the rest.
  const std::vector<TraceEvent> events = analysis::parse_trace(
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1}\n"
      "{\"name\":\"ok\",\"cat\":\"t\",\"ph\":\"X\",\"ts\":5,\"dur\":2,"
      "\"tid\":1}\n");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "ok");
}

TEST(AnalysisLoadTest, GarbageLineThrows) {
  EXPECT_THROW(
      (void)analysis::parse_trace("{\"name\":\"a\",\"ph\":\"X\"}\nnot json\n"),
      IoError);
}

// --------------------------------------------------------- span analytics

TraceEvent make_span(const char* name, std::uint64_t id, std::uint64_t parent,
                     std::uint64_t start, std::uint64_t dur) {
  TraceEvent ev;
  ev.name = name;
  ev.kind = EventKind::Complete;
  ev.id = id;
  ev.parent = parent;
  ev.start_us = start;
  ev.duration_us = dur;
  return ev;
}

TEST(AnalysisAggregateTest, AggregatesMatchUtilPercentile) {
  std::vector<TraceEvent> events;
  std::vector<double> durs;
  for (std::uint64_t i = 0; i < 20; ++i) {
    events.push_back(make_span("solve", 100 + i, 0, i * 10, 5 + 3 * i));
    durs.push_back(static_cast<double>(5 + 3 * i));
  }
  events.push_back(make_span("tiny", 999, 0, 0, 1));
  const std::vector<analysis::SpanStats> stats =
      analysis::aggregate_spans(events);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "solve");  // sorted by total desc
  EXPECT_EQ(stats[0].count, 20u);
  EXPECT_DOUBLE_EQ(stats[0].p50_us, util::percentile(durs, 0.5));
  EXPECT_DOUBLE_EQ(stats[0].p95_us, util::percentile(durs, 0.95));
  EXPECT_DOUBLE_EQ(stats[0].max_us, 62.0);
  EXPECT_EQ(stats[1].name, "tiny");
}

TEST(AnalysisCollapsedTest, SelfTimeExcludesChildSpans) {
  std::vector<TraceEvent> events;
  events.push_back(make_span("root", 1, 0, 0, 100));
  events.push_back(make_span("child", 2, 1, 10, 30));
  events.push_back(make_span("child", 3, 1, 50, 20));
  events.push_back(make_span("leaf", 4, 2, 15, 5));
  const std::vector<analysis::CollapsedStack> stacks =
      analysis::collapsed_stacks(events);
  ASSERT_EQ(stacks.size(), 3u);  // sorted by stack string
  EXPECT_EQ(stacks[0].stack, "root");
  EXPECT_EQ(stacks[0].self_us, 50u);  // 100 - (30 + 20)
  EXPECT_EQ(stacks[1].stack, "root;child");
  EXPECT_EQ(stacks[1].self_us, 45u);  // (30 - 5) + 20
  EXPECT_EQ(stacks[2].stack, "root;child;leaf");
  EXPECT_EQ(stacks[2].self_us, 5u);
}

// --------------------------------------------------- protocol causal DAG

TEST(AnalysisProtocolTest, NodeNames) {
  EXPECT_EQ(analysis::node_name(0), "TP");
  EXPECT_EQ(analysis::node_name(1), "G0");
  EXPECT_EQ(analysis::node_name(7), "G6");
}

/// Build a synthetic two-round protocol trace:
///   run(1) -> phase collecting(2, round 0) -> CFP(10) to G0, delivered;
///   deliver span(11, parent 10) -> REPORT(12) back, delivered late;
///   phase deciding(3, round 1) -> CFP(13) to G1, dropped.
std::vector<TraceEvent> synthetic_protocol_trace() {
  std::vector<TraceEvent> events;
  events.push_back(make_span("core.protocol.run", 1, 0, 0, 10000));

  TraceEvent phase0 = make_span("protocol.phase.collecting", 2, 1, 0, 500);
  phase0.category = "protocol";
  phase0.args.emplace_back("sim_now_s", 0.05);
  phase0.args.emplace_back("round", 0.0);
  events.push_back(phase0);

  TraceEvent cfp;
  cfp.name = "CFP";
  cfp.category = "net";
  cfp.kind = EventKind::FlowStart;
  cfp.id = 10;
  cfp.parent = 2;  // the collecting phase
  cfp.start_us = 10;
  cfp.args = {{"from", 0.0}, {"to", 1.0}, {"bytes", 96.0},
              {"sim_now_s", 0.0}};
  events.push_back(cfp);

  TraceEvent cfp_end = cfp;
  cfp_end.kind = EventKind::FlowEnd;
  cfp_end.parent = 0;
  cfp_end.start_us = 40;
  cfp_end.args = {{"sim_now_s", 0.02}};
  events.push_back(cfp_end);

  events.push_back(make_span("net.deliver", 11, 10, 40, 20));

  TraceEvent report;
  report.name = "REPORT";
  report.category = "net";
  report.kind = EventKind::FlowStart;
  report.id = 12;
  report.parent = 11;  // sent from inside the deliver span
  report.start_us = 60;
  report.args = {{"from", 1.0}, {"to", 0.0}, {"bytes", 64.0},
                 {"sim_now_s", 0.02}};
  events.push_back(report);

  TraceEvent report_end = report;
  report_end.kind = EventKind::FlowEnd;
  report_end.parent = 0;
  report_end.start_us = 90;
  report_end.args = {{"sim_now_s", 0.07}};
  events.push_back(report_end);

  TraceEvent phase1 = make_span("protocol.phase.deciding", 3, 1, 600, 700);
  phase1.category = "protocol";
  phase1.args.emplace_back("sim_now_s", 0.91);
  phase1.args.emplace_back("round", 1.0);
  events.push_back(phase1);

  TraceEvent cfp2;
  cfp2.name = "CFP";
  cfp2.category = "net";
  cfp2.kind = EventKind::FlowStart;
  cfp2.id = 13;
  cfp2.parent = 3;
  cfp2.start_us = 700;
  cfp2.args = {{"from", 0.0}, {"to", 2.0}, {"bytes", 96.0},
               {"sim_now_s", 0.9}};
  events.push_back(cfp2);  // no FlowEnd: dropped

  return events;
}

TEST(AnalysisProtocolTest, ReconstructsCausesRoundsAndDrops) {
  const analysis::ProtocolAnalysis pa =
      analysis::analyze_protocol(synthetic_protocol_trace());
  ASSERT_EQ(pa.messages.size(), 3u);
  EXPECT_EQ(pa.sent_by_type.at("CFP"), 2u);
  EXPECT_EQ(pa.sent_by_type.at("REPORT"), 1u);
  EXPECT_EQ(pa.drops, 1u);

  const analysis::MessageHop& cfp = pa.messages[0];
  EXPECT_EQ(cfp.type, "CFP");
  EXPECT_EQ(cfp.cause, 0u);  // TP-originated root
  EXPECT_EQ(cfp.round, 0u);
  EXPECT_EQ(cfp.phase, "protocol.phase.collecting");
  EXPECT_TRUE(cfp.delivered);

  const analysis::MessageHop& report = pa.messages[1];
  EXPECT_EQ(report.cause, 10u);  // caused by the CFP, via its deliver span
  EXPECT_EQ(report.round, 0u);   // inherited from the CFP
  EXPECT_TRUE(report.delivered);

  const analysis::MessageHop& cfp2 = pa.messages[2];
  EXPECT_EQ(cfp2.round, 1u);
  EXPECT_FALSE(cfp2.delivered);
}

TEST(AnalysisProtocolTest, CriticalPathNamesBoundingMember) {
  const analysis::ProtocolAnalysis pa =
      analysis::analyze_protocol(synthetic_protocol_trace());
  // Round 0's last delivery is the REPORT; its chain is CFP -> REPORT.
  ASSERT_EQ(pa.rounds.size(), 1u);  // round 1's only message was dropped
  const analysis::RoundPath& path = pa.rounds[0];
  EXPECT_EQ(path.round, 0u);
  EXPECT_DOUBLE_EQ(path.completion_sim_s, 0.07);
  ASSERT_EQ(path.hops.size(), 2u);
  EXPECT_EQ(path.hops[0].type, "CFP");
  EXPECT_EQ(path.hops[1].type, "REPORT");
  EXPECT_EQ(path.bounding_member, "G0");
}

TEST(AnalysisProtocolTest, EmptyTraceYieldsEmptyAnalysis) {
  const analysis::ProtocolAnalysis pa = analysis::analyze_protocol({});
  EXPECT_TRUE(pa.messages.empty());
  EXPECT_TRUE(pa.rounds.empty());
  EXPECT_EQ(pa.drops, 0u);
}

TEST(AnalysisProtocolTest, TextReportMentionsMembersAndRounds) {
  std::ostringstream os;
  analysis::write_text_report(os, synthetic_protocol_trace());
  const std::string text = os.str();
  EXPECT_NE(text.find("round 0"), std::string::npos);
  EXPECT_NE(text.find("bounded by G0"), std::string::npos);
  EXPECT_NE(text.find("CFP"), std::string::npos);
  EXPECT_NE(text.find("drops=1"), std::string::npos);
}

// --------------------------------------------------------- bench diffing

TEST(BenchDiffTest, GlobMatcher) {
  using analysis::glob_match;
  EXPECT_TRUE(glob_match("*", "anything.at[3].all"));
  EXPECT_TRUE(glob_match("*nodes*", "runs[2].cold_nodes"));
  EXPECT_TRUE(glob_match("*_ms", "runs[0].warm_ms"));
  EXPECT_FALSE(glob_match("*_ms", "warm_msx"));
  EXPECT_TRUE(glob_match("runs[?].seed", "runs[3].seed"));
  EXPECT_FALSE(glob_match("runs[?].seed", "runs[30].seed"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_FALSE(glob_match("a*b*c", "aXXcYYb"));
}

JsonValue report_from(const std::string& text) { return parse_json(text); }

TEST(BenchDiffTest, IdenticalReportsPass) {
  const JsonValue doc = report_from(
      R"({"bench": "x", "runs": [{"cold_nodes": 100, "cold_ms": 5.0}],
          "aggregate": {"node_reduction": 2.0, "all_outcomes_identical": true}})");
  const analysis::BenchDiffResult result =
      analysis::diff_bench_reports(doc, doc);
  EXPECT_TRUE(result.passed());
  EXPECT_EQ(result.regressions, 0u);
}

TEST(BenchDiffTest, LowerIsBetterGatesOnIncreaseOnly) {
  const JsonValue base = report_from(R"({"total_nodes": 1000})");
  // +5% is inside the 10% tolerance.
  EXPECT_TRUE(analysis::diff_bench_reports(
                  base, report_from(R"({"total_nodes": 1050})"))
                  .passed());
  // +50% gates.
  const analysis::BenchDiffResult worse = analysis::diff_bench_reports(
      base, report_from(R"({"total_nodes": 1500})"));
  EXPECT_FALSE(worse.passed());
  EXPECT_EQ(worse.deltas[0].status, analysis::DeltaStatus::Regressed);
  // -50% is an improvement, not a gate.
  const analysis::BenchDiffResult better = analysis::diff_bench_reports(
      base, report_from(R"({"total_nodes": 500})"));
  EXPECT_TRUE(better.passed());
  EXPECT_EQ(better.deltas[0].status, analysis::DeltaStatus::Improved);
}

TEST(BenchDiffTest, HigherIsBetterGatesOnDecrease) {
  const JsonValue base = report_from(R"({"node_reduction": 2.0})");
  EXPECT_FALSE(analysis::diff_bench_reports(
                   base, report_from(R"({"node_reduction": 1.0})"))
                   .passed());
  EXPECT_TRUE(analysis::diff_bench_reports(
                  base, report_from(R"({"node_reduction": 3.0})"))
                  .passed());
}

TEST(BenchDiffTest, EqualityGatesAndTimingsAreInformational) {
  const JsonValue base = report_from(
      R"({"same_vo": true, "seed": 42, "elapsed_ms": 100.0})");
  // A flipped equivalence bool or config drift gates...
  EXPECT_FALSE(analysis::diff_bench_reports(
                   base,
                   report_from(R"({"same_vo": false, "seed": 42,
                                   "elapsed_ms": 100.0})"))
                   .passed());
  EXPECT_FALSE(analysis::diff_bench_reports(
                   base,
                   report_from(R"({"same_vo": true, "seed": 43,
                                   "elapsed_ms": 100.0})"))
                   .passed());
  // ...but a 10x wall-clock swing does not (machines differ).
  EXPECT_TRUE(analysis::diff_bench_reports(
                  base,
                  report_from(R"({"same_vo": true, "seed": 42,
                                  "elapsed_ms": 1000.0})"))
                  .passed());
}

TEST(BenchDiffTest, MissingMetricIsARegressionNewMetricIsNot) {
  const JsonValue base = report_from(R"({"total_nodes": 10})");
  const JsonValue cur = report_from(R"({"fresh_rate": 0.5})");
  const analysis::BenchDiffResult result =
      analysis::diff_bench_reports(base, cur);
  EXPECT_FALSE(result.passed());
  ASSERT_EQ(result.deltas.size(), 2u);
  EXPECT_EQ(result.deltas[0].status, analysis::DeltaStatus::BaselineOnly);
  EXPECT_EQ(result.deltas[1].status, analysis::DeltaStatus::CurrentOnly);
}

TEST(BenchDiffTest, CustomRulesTakePrecedence) {
  const JsonValue base = report_from(R"({"total_nodes": 100})");
  const JsonValue cur = report_from(R"({"total_nodes": 150})");
  std::vector<analysis::DiffRule> rules = {
      {"*nodes*", analysis::Direction::Informational, 0.0}};
  for (const analysis::DiffRule& rule : analysis::default_bench_rules()) {
    rules.push_back(rule);
  }
  EXPECT_TRUE(analysis::diff_bench_reports(base, cur, rules).passed());
  EXPECT_FALSE(analysis::diff_bench_reports(base, cur).passed());
}

TEST(BenchDiffTest, StringDriftGatesOnlyUnderExactRules) {
  // "bench" matches no Exact rule by default -> informational...
  const JsonValue base = report_from(R"({"bench": "warmstart"})");
  const JsonValue cur = report_from(R"({"bench": "coldstart"})");
  EXPECT_TRUE(analysis::diff_bench_reports(base, cur).passed());
  // ...but an explicit exact rule pins it.
  const std::vector<analysis::DiffRule> rules = {
      {"bench", analysis::Direction::Exact, 0.0}};
  EXPECT_FALSE(analysis::diff_bench_reports(base, cur, rules).passed());
}

}  // namespace
}  // namespace svo::obs
