/// Unit tests for the observability spine: JsonWriter, the metric
/// primitives + registry, the Recorder/Span pair, and the exporters.
/// Exported JSON is checked with a small recursive-descent validator
/// written here — the trace must parse, not just look plausible.
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "util/error.hpp"

namespace svo::obs {
namespace {

// --------------------------------------------------------- JSON validator

/// Minimal RFC 8259 parser: validates syntax, counts nothing. Returns
/// true iff `text` is exactly one valid JSON value.
class JsonValidator {
 public:
  static bool valid(std::string_view text) {
    JsonValidator v(text);
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(std::string_view t) : text_(t) {}

  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST(JsonValidatorTest, SanityOnKnownInputs) {
  EXPECT_TRUE(JsonValidator::valid(R"({"a": [1, 2.5, -3e4], "b": null})"));
  EXPECT_TRUE(JsonValidator::valid(R"("just a string")"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a": 1,})"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a" 1})"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\": \"\x01\"}"));
  EXPECT_FALSE(JsonValidator::valid("{} trailing"));
}

// ------------------------------------------------------------- JsonWriter

TEST(JsonWriterTest, WritesNestedStructures) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "svo").kv("count", 3).kv("ok", true);
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("nested").begin_object().kv("x", 0.5).end_object();
  w.end_object();
  EXPECT_EQ(os.str(),
            R"({"name":"svo","count":3,"ok":true,"list":[1,2],"nested":{"x":0.5}})");
  EXPECT_TRUE(JsonValidator::valid(os.str()));
}

TEST(JsonWriterTest, EscapesStrings) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("k", "quote\" backslash\\ newline\n tab\t bell\x01");
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\"k\":\"quote\\\" backslash\\\\ newline\\n tab\\t "
            "bell\\u0001\"}");
  EXPECT_TRUE(JsonValidator::valid(os.str()));
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.value(INFINITY);
  w.value(-INFINITY);
  w.value(1.25);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,null,1.25]");
  EXPECT_TRUE(JsonValidator::valid(os.str()));
}

TEST(JsonWriterTest, IntegersKeepFullPrecision) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::uint64_t{18446744073709551615ULL});
  w.value(std::int64_t{-9223372036854775807LL});
  w.end_array();
  EXPECT_EQ(os.str(), "[18446744073709551615,-9223372036854775807]");
}

TEST(JsonWriterTest, PrettyModeIsValidJson) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.kv("a", 1);
  w.key("b").begin_array().value(1).value(2).end_array();
  w.end_object();
  EXPECT_TRUE(JsonValidator::valid(os.str()));
  EXPECT_NE(os.str().find('\n'), std::string::npos);
}

TEST(JsonWriterTest, MisuseThrows) {
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), InvalidArgument);  // value without key
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), InvalidArgument);  // key inside array
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.end_array(), InvalidArgument);  // mismatched close
  }
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  Gauge g;
  g.set(1.5);
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST(MetricsTest, HistogramBucketsByPowerOfTwo) {
  Histogram h;
  h.observe(0.5);   // bucket 0: v < 1
  h.observe(1.0);   // bucket 1: [1, 2)
  h.observe(3.0);   // bucket 2: [2, 4)
  h.observe(3.9);   // bucket 2
  h.observe(std::nan(""));  // ignored
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 8.4);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 3.9);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
}

TEST(MetricRegistryTest, ReferencesAreStableAcrossInserts) {
  MetricRegistry reg;
  Counter& a = reg.counter("a");
  a.add(7);
  // Force rebalancing-ish growth; std::map nodes are stable anyway, the
  // test pins the contract.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i)).add();
  }
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(a.value(), 7u);
}

TEST(MetricRegistryTest, KindMismatchThrows) {
  MetricRegistry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), InvalidArgument);
  EXPECT_THROW((void)reg.histogram("x"), InvalidArgument);
}

TEST(MetricRegistryTest, ReadersReturnZeroForAbsentMetrics) {
  MetricRegistry reg;
  EXPECT_EQ(reg.counter_value("ghost"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("ghost"), 0.0);
  EXPECT_TRUE(reg.names().empty());  // reads must not create entries
}

TEST(MetricRegistryTest, ResetZeroesButKeepsNames) {
  MetricRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(2.0);
  reg.histogram("h").observe(1.0);
  reg.reset();
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 0.0);
  EXPECT_EQ(reg.histogram("h").snapshot().count, 0u);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"c", "g", "h"}));
}

TEST(MetricRegistryTest, WriteJsonIsValid) {
  MetricRegistry reg;
  reg.counter("runs").add(3);
  reg.gauge("last_cost").set(12.5);
  reg.histogram("nodes").observe(100.0);
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_TRUE(JsonValidator::valid(os.str()));
  EXPECT_NE(os.str().find("\"runs\""), std::string::npos);
  EXPECT_NE(os.str().find("\"last_cost\""), std::string::npos);
  EXPECT_NE(os.str().find("\"nodes\""), std::string::npos);
}

// --------------------------------------------------------- Recorder/Span

/// Every recorder test runs against the process-wide singleton: restore
/// a clean disabled state on both sides.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Recorder::instance().disable();
    Recorder::instance().clear();
  }
  void TearDown() override {
    Recorder::instance().disable();
    Recorder::instance().clear();
  }
};

TEST_F(RecorderTest, DisabledSpanIsInactiveAndRecordsNothing) {
  {
    Span span("test.disabled", "test");
    EXPECT_FALSE(span.active());
    span.arg("k", 1.0);  // must be a no-op, not a crash
  }
  EXPECT_EQ(Recorder::instance().event_count(), 0u);
}

TEST_F(RecorderTest, RecordIsNoopWhenDisabled) {
  TraceEvent ev;
  ev.name = "manual";
  Recorder::instance().record(std::move(ev));
  EXPECT_EQ(Recorder::instance().event_count(), 0u);
}

TEST_F(RecorderTest, EnabledSpanRecordsNameCategoryArgs) {
  Recorder::instance().enable();
  {
    Span span("test.span", "testcat");
    ASSERT_TRUE(span.active());
    span.arg("value", 42.0);
    span.arg("status", "Optimal");
  }
  const std::vector<TraceEvent> events =
      Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.span");
  EXPECT_STREQ(events[0].category, "testcat");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "value");
  EXPECT_DOUBLE_EQ(events[0].args[0].second, 42.0);
  ASSERT_EQ(events[0].sargs.size(), 1u);
  EXPECT_EQ(events[0].sargs[0].second, "Optimal");
  EXPECT_GT(events[0].tid, 0u);
}

TEST_F(RecorderTest, SpanDurationIsConsistentWithWallTimer) {
  Recorder::instance().enable();
  {
    Span span("test.sleep", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto events = Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].duration_us, 4000u);  // >= ~5ms, tolerant floor
}

TEST_F(RecorderTest, NestedSpansBothRecordedAndOrdered) {
  Recorder::instance().enable();
  {
    Span outer("test.outer", "test");
    // Separate the start timestamps: with microsecond resolution both
    // spans can otherwise start in the same tick, making order
    // unspecified.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Span inner("test.inner", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto events = Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  // snapshot is sorted by start time: outer starts first.
  EXPECT_EQ(events[0].name, "test.outer");
  EXPECT_EQ(events[1].name, "test.inner");
  EXPECT_LE(events[0].start_us, events[1].start_us);
  // The outer span encloses the inner one.
  EXPECT_GE(events[0].start_us + events[0].duration_us,
            events[1].start_us + events[1].duration_us);
}

TEST_F(RecorderTest, EndIsIdempotent) {
  Recorder::instance().enable();
  Span span("test.end", "test");
  span.end();
  span.end();
  span.end();
  EXPECT_EQ(Recorder::instance().event_count(), 1u);
}

TEST_F(RecorderTest, ExtraArgsBeyondCapacityAreDropped) {
  Recorder::instance().enable();
  {
    Span span("test.argcap", "test");
    for (int i = 0; i < 32; ++i) {
      span.arg("k", static_cast<double>(i));
    }
  }
  const auto events = Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LE(events[0].args.size(), 8u);
}

TEST_F(RecorderTest, ThreadsGetDistinctTids) {
  Recorder::instance().enable();
  const auto spin = [] { Span span("test.threaded", "test"); };
  std::thread a(spin), b(spin);
  a.join();
  b.join();
  spin();
  const auto events = Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_NE(events[0].tid, events[1].tid);
  // All three events survive thread exit (recorder co-owns the buffers).
}

TEST_F(RecorderTest, ClearDropsEventsAndZeroesMetrics) {
  Recorder::instance().enable();
  { Span span("test.cleared", "test"); }
  Recorder::instance().metrics().counter("test.count").add(3);
  Recorder::instance().clear();
  EXPECT_EQ(Recorder::instance().event_count(), 0u);
  EXPECT_EQ(Recorder::instance().metrics().counter_value("test.count"), 0u);
}

TEST_F(RecorderTest, ChromeTraceExportIsValidJson) {
  Recorder::instance().enable();
  {
    Span span("test.export", "test");
    span.arg("n", 16.0);
    span.arg("status", "ok\"quoted\"");
  }
  { Span span("test.export2", "test"); }
  std::ostringstream os;
  Recorder::instance().write_chrome_trace(os);
  const std::string text = os.str();
  ASSERT_TRUE(JsonValidator::valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("test.export"), std::string::npos);
}

TEST_F(RecorderTest, JsonlExportOneValidObjectPerLine) {
  Recorder::instance().enable();
  { Span span("test.line1", "test"); }
  { Span span("test.line2", "test"); }
  std::ostringstream os;
  Recorder::instance().write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonValidator::valid(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST_F(RecorderTest, FileWriterFailsGracefullyOnBadPath) {
  EXPECT_FALSE(Recorder::instance().write_chrome_trace_file(
      "/nonexistent-dir-svo/trace.json"));
}

TEST_F(RecorderTest, TraceSessionWritesFileAndRestoresState) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "svo_obs_session_test.json")
          .string();
  std::filesystem::remove(path);
  {
    TraceSession session(path);
    EXPECT_TRUE(session.active());
    EXPECT_TRUE(Recorder::instance().enabled());
    Span span("test.session", "test");
  }
  EXPECT_FALSE(Recorder::instance().enabled());  // prior state restored
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(JsonValidator::valid(buf.str())) << buf.str();
  EXPECT_NE(buf.str().find("test.session"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(RecorderTest, InactiveTraceSessionIsFree) {
  ::unsetenv("SVO_TRACE");
  ::unsetenv("SVO_METRICS");
  TraceSession session;  // no env, no paths
  EXPECT_FALSE(session.active());
  EXPECT_FALSE(Recorder::instance().enabled());
}

}  // namespace
}  // namespace svo::obs
