/// Unit tests for the observability spine: JsonWriter, the metric
/// primitives + registry, the Recorder/Span pair, and the exporters.
/// Exported JSON is checked with a small recursive-descent validator
/// written here — the trace must parse, not just look plausible.
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace svo::obs {
namespace {

// --------------------------------------------------------- JSON validator

/// Minimal RFC 8259 parser: validates syntax, counts nothing. Returns
/// true iff `text` is exactly one valid JSON value.
class JsonValidator {
 public:
  static bool valid(std::string_view text) {
    JsonValidator v(text);
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == text.size();
  }

 private:
  explicit JsonValidator(std::string_view t) : text_(t) {}

  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start && std::isdigit(static_cast<unsigned char>(
                               text_[pos_ - 1]));
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

TEST(JsonValidatorTest, SanityOnKnownInputs) {
  EXPECT_TRUE(JsonValidator::valid(R"({"a": [1, 2.5, -3e4], "b": null})"));
  EXPECT_TRUE(JsonValidator::valid(R"("just a string")"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a": 1,})"));
  EXPECT_FALSE(JsonValidator::valid(R"({"a" 1})"));
  EXPECT_FALSE(JsonValidator::valid("{\"a\": \"\x01\"}"));
  EXPECT_FALSE(JsonValidator::valid("{} trailing"));
}

// ------------------------------------------------------------- JsonWriter

TEST(JsonWriterTest, WritesNestedStructures) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "svo").kv("count", 3).kv("ok", true);
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("nested").begin_object().kv("x", 0.5).end_object();
  w.end_object();
  EXPECT_EQ(os.str(),
            R"({"name":"svo","count":3,"ok":true,"list":[1,2],"nested":{"x":0.5}})");
  EXPECT_TRUE(JsonValidator::valid(os.str()));
}

TEST(JsonWriterTest, EscapesStrings) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("k", "quote\" backslash\\ newline\n tab\t bell\x01");
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\"k\":\"quote\\\" backslash\\\\ newline\\n tab\\t "
            "bell\\u0001\"}");
  EXPECT_TRUE(JsonValidator::valid(os.str()));
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::nan(""));
  w.value(INFINITY);
  w.value(-INFINITY);
  w.value(1.25);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,null,1.25]");
  EXPECT_TRUE(JsonValidator::valid(os.str()));
}

TEST(JsonWriterTest, IntegersKeepFullPrecision) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::uint64_t{18446744073709551615ULL});
  w.value(std::int64_t{-9223372036854775807LL});
  w.end_array();
  EXPECT_EQ(os.str(), "[18446744073709551615,-9223372036854775807]");
}

TEST(JsonWriterTest, PrettyModeIsValidJson) {
  std::ostringstream os;
  JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.kv("a", 1);
  w.key("b").begin_array().value(1).value(2).end_array();
  w.end_object();
  EXPECT_TRUE(JsonValidator::valid(os.str()));
  EXPECT_NE(os.str().find('\n'), std::string::npos);
}

TEST(JsonWriterTest, MisuseThrows) {
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), InvalidArgument);  // value without key
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), InvalidArgument);  // key inside array
  }
  {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.end_array(), InvalidArgument);  // mismatched close
  }
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  Gauge g;
  g.set(1.5);
  g.set(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), -2.5);
}

TEST(MetricsTest, HistogramBucketsByPowerOfTwo) {
  Histogram h;
  h.observe(0.5);   // bucket 0: v < 1
  h.observe(1.0);   // bucket 1: [1, 2)
  h.observe(3.0);   // bucket 2: [2, 4)
  h.observe(3.9);   // bucket 2
  h.observe(std::nan(""));  // ignored
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 8.4);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 3.9);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 2u);
}

TEST(MetricsTest, EmptyHistogramQuantileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
}

TEST(MetricsTest, SingleSampleQuantileIsExact) {
  Histogram h;
  h.observe(37.5);
  const Histogram::Snapshot s = h.snapshot();
  // One sample: min == max pins every quantile exactly via the clamp.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 37.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 37.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 37.5);
}

TEST(MetricsTest, QuantileEndpointsClampToTrackedMinMax) {
  Histogram h;
  for (const double v : {3.0, 5.0, 700.0, 900.0}) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 900.0);
}

TEST(MetricsTest, QuantileWithinDocumentedFactorTwoOfPercentile) {
  // The documented bound: the log2-bucket estimate lands in the same
  // power-of-two bucket as the true order statistic, so it is within a
  // factor of 2. Check against util::percentile on a skewed sample.
  util::Xoshiro256 rng(20120912);
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) {
    // Log-uniform over ~[1, 4096]: every bucket gets traffic.
    const double v = std::exp2(12.0 * rng.uniform());
    samples.push_back(v);
    h.observe(v);
  }
  const Histogram::Snapshot s = h.snapshot();
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double exact = util::percentile(samples, q);
    const double est = s.quantile(q);
    EXPECT_GE(est, exact / 2.0) << "q=" << q;
    EXPECT_LE(est, exact * 2.0) << "q=" << q;
  }
}

TEST(MetricsTest, QuantileIsMonotoneInQ) {
  util::Xoshiro256 rng(7);
  Histogram h;
  for (int i = 0; i < 512; ++i) h.observe(1.0 + 200.0 * rng.uniform());
  const Histogram::Snapshot s = h.snapshot();
  double prev = s.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = s.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(MetricRegistryTest, ReferencesAreStableAcrossInserts) {
  MetricRegistry reg;
  Counter& a = reg.counter("a");
  a.add(7);
  // Force rebalancing-ish growth; std::map nodes are stable anyway, the
  // test pins the contract.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i)).add();
  }
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(a.value(), 7u);
}

TEST(MetricRegistryTest, KindMismatchThrows) {
  MetricRegistry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), InvalidArgument);
  EXPECT_THROW((void)reg.histogram("x"), InvalidArgument);
}

TEST(MetricRegistryTest, ReadersReturnZeroForAbsentMetrics) {
  MetricRegistry reg;
  EXPECT_EQ(reg.counter_value("ghost"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("ghost"), 0.0);
  EXPECT_TRUE(reg.names().empty());  // reads must not create entries
}

TEST(MetricRegistryTest, ResetZeroesButKeepsNames) {
  MetricRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(2.0);
  reg.histogram("h").observe(1.0);
  reg.reset();
  EXPECT_EQ(reg.counter_value("c"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 0.0);
  EXPECT_EQ(reg.histogram("h").snapshot().count, 0u);
  // Creating a histogram auto-registers the shared bad-sample counter.
  EXPECT_EQ(reg.names(),
            (std::vector<std::string>{"c", "g", "h", "obs.error.bad_sample"}));
}

TEST(MetricRegistryTest, WriteJsonIsValid) {
  MetricRegistry reg;
  reg.counter("runs").add(3);
  reg.gauge("last_cost").set(12.5);
  reg.histogram("nodes").observe(100.0);
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_TRUE(JsonValidator::valid(os.str()));
  EXPECT_NE(os.str().find("\"runs\""), std::string::npos);
  EXPECT_NE(os.str().find("\"last_cost\""), std::string::npos);
  EXPECT_NE(os.str().find("\"nodes\""), std::string::npos);
}

// --------------------------------------------------------- Recorder/Span

/// Every recorder test runs against the process-wide singleton: restore
/// a clean disabled state on both sides.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Recorder::instance().disable();
    Recorder::instance().clear();
  }
  void TearDown() override {
    Recorder::instance().disable();
    Recorder::instance().clear();
  }
};

TEST_F(RecorderTest, DisabledSpanIsInactiveAndRecordsNothing) {
  {
    Span span("test.disabled", "test");
    EXPECT_FALSE(span.active());
    span.arg("k", 1.0);  // must be a no-op, not a crash
  }
  EXPECT_EQ(Recorder::instance().event_count(), 0u);
}

TEST_F(RecorderTest, RecordIsNoopWhenDisabled) {
  TraceEvent ev;
  ev.name = "manual";
  Recorder::instance().record(std::move(ev));
  EXPECT_EQ(Recorder::instance().event_count(), 0u);
}

TEST_F(RecorderTest, EnabledSpanRecordsNameCategoryArgs) {
  Recorder::instance().enable();
  {
    Span span("test.span", "testcat");
    ASSERT_TRUE(span.active());
    span.arg("value", 42.0);
    span.arg("status", "Optimal");
  }
  const std::vector<TraceEvent> events =
      Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.span");
  EXPECT_EQ(events[0].category, "testcat");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "value");
  EXPECT_DOUBLE_EQ(events[0].args[0].second, 42.0);
  ASSERT_EQ(events[0].sargs.size(), 1u);
  EXPECT_EQ(events[0].sargs[0].second, "Optimal");
  EXPECT_GT(events[0].tid, 0u);
}

TEST_F(RecorderTest, SpanDurationIsConsistentWithWallTimer) {
  Recorder::instance().enable();
  {
    Span span("test.sleep", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto events = Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_GE(events[0].duration_us, 4000u);  // >= ~5ms, tolerant floor
}

TEST_F(RecorderTest, NestedSpansBothRecordedAndOrdered) {
  Recorder::instance().enable();
  {
    Span outer("test.outer", "test");
    // Separate the start timestamps: with microsecond resolution both
    // spans can otherwise start in the same tick, making order
    // unspecified.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Span inner("test.inner", "test");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto events = Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  // snapshot is sorted by start time: outer starts first.
  EXPECT_EQ(events[0].name, "test.outer");
  EXPECT_EQ(events[1].name, "test.inner");
  EXPECT_LE(events[0].start_us, events[1].start_us);
  // The outer span encloses the inner one.
  EXPECT_GE(events[0].start_us + events[0].duration_us,
            events[1].start_us + events[1].duration_us);
}

TEST_F(RecorderTest, EndIsIdempotent) {
  Recorder::instance().enable();
  Span span("test.end", "test");
  span.end();
  span.end();
  span.end();
  EXPECT_EQ(Recorder::instance().event_count(), 1u);
}

TEST_F(RecorderTest, ExtraArgsBeyondCapacityAreDropped) {
  Recorder::instance().enable();
  {
    Span span("test.argcap", "test");
    for (int i = 0; i < 32; ++i) {
      span.arg("k", static_cast<double>(i));
    }
  }
  const auto events = Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_LE(events[0].args.size(), 8u);
}

TEST_F(RecorderTest, ThreadsGetDistinctTids) {
  Recorder::instance().enable();
  const auto spin = [] { Span span("test.threaded", "test"); };
  std::thread a(spin), b(spin);
  a.join();
  b.join();
  spin();
  const auto events = Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_NE(events[0].tid, events[1].tid);
  // All three events survive thread exit (recorder co-owns the buffers).
}

TEST_F(RecorderTest, ClearDropsEventsAndZeroesMetrics) {
  Recorder::instance().enable();
  { Span span("test.cleared", "test"); }
  Recorder::instance().metrics().counter("test.count").add(3);
  Recorder::instance().clear();
  EXPECT_EQ(Recorder::instance().event_count(), 0u);
  EXPECT_EQ(Recorder::instance().metrics().counter_value("test.count"), 0u);
}

// ------------------------------------------------- causal ids / contexts

TEST_F(RecorderTest, NestedSpansLinkParentIds) {
  Recorder::instance().enable();
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    Span outer("test.parent", "test");
    outer_id = outer.id();
    EXPECT_EQ(current_span_id(), outer_id);
    {
      Span inner("test.child", "test");
      inner_id = inner.id();
      EXPECT_EQ(current_span_id(), inner_id);
    }
    EXPECT_EQ(current_span_id(), outer_id);
  }
  EXPECT_EQ(current_span_id(), 0u);
  ASSERT_NE(outer_id, 0u);
  ASSERT_NE(inner_id, 0u);
  const auto events = Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  // Look events up by name: both can start in the same microsecond
  // tick, which makes snapshot order unspecified.
  for (const auto& ev : events) {
    if (ev.name == "test.parent") {
      EXPECT_EQ(ev.id, outer_id);
      EXPECT_EQ(ev.parent, 0u);  // root
    } else {
      EXPECT_EQ(ev.name, "test.child");
      EXPECT_EQ(ev.id, inner_id);
      EXPECT_EQ(ev.parent, outer_id);
    }
  }
}

TEST_F(RecorderTest, ExplicitParentOverridesContextStack) {
  Recorder::instance().enable();
  const std::uint64_t flow_id = Recorder::instance().next_id();
  {
    Span enclosing("test.enclosing", "test");
    Span span("test.flow_child", "test", flow_id);
    EXPECT_EQ(span.id(), current_span_id());
  }
  const auto events = Recorder::instance().snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  bool found = false;
  for (const auto& ev : events) {
    if (ev.name != "test.flow_child") continue;
    found = true;
    EXPECT_EQ(ev.parent, flow_id);  // not the enclosing span
  }
  EXPECT_TRUE(found);
}

TEST_F(RecorderTest, DisabledSpansAllocateNoIds) {
  const std::uint64_t before = Recorder::instance().next_id();
  {
    Span span("test.off", "test");
    EXPECT_EQ(span.id(), 0u);
    EXPECT_EQ(current_span_id(), 0u);
  }
  // Only our own probe advanced the id counter.
  EXPECT_EQ(Recorder::instance().next_id(), before + 1);
}

// ------------------------------------------------- span-stack misuse guard

TEST_F(RecorderTest, EndWithoutBeginIsReportedNotCorrupting) {
  Recorder::instance().enable();
  const std::uint64_t misuse_before = Recorder::instance().misuse_count();
  Span outer("test.outer", "test");
  // A pop for an id that was never pushed: explicit misuse report, and
  // the real context stack is untouched.
  EXPECT_FALSE(Recorder::instance().pop_context(0xDEADu));
  EXPECT_EQ(Recorder::instance().misuse_count(), misuse_before + 1);
  EXPECT_EQ(current_span_id(), outer.id());
  outer.end();
  // The misuse left an explicit marker event in the trace.
  bool saw_marker = false;
  for (const auto& ev : Recorder::instance().snapshot_events()) {
    if (ev.name == "obs.error.span_misuse") saw_marker = true;
  }
  EXPECT_TRUE(saw_marker);
}

TEST_F(RecorderTest, OutOfOrderEndUnwindsAndReports) {
  Recorder::instance().enable();
  const std::uint64_t misuse_before = Recorder::instance().misuse_count();
  auto* outer = new Span("test.outer", "test");
  auto* inner = new Span("test.inner", "test");
  const std::uint64_t inner_id = inner->id();
  // Ending the outer span while the inner is still open is misuse:
  // the stack unwinds to the outer id and the event is reported.
  delete outer;
  EXPECT_GT(Recorder::instance().misuse_count(), misuse_before);
  EXPECT_EQ(current_span_id(), 0u);  // unwound past the leaked inner
  // The inner span's own end is now itself a (second) misuse report,
  // not a crash and not a corrupted context stack.
  delete inner;
  EXPECT_EQ(current_span_id(), 0u);
  bool inner_recorded = false;
  for (const auto& ev : Recorder::instance().snapshot_events()) {
    if (ev.id == inner_id && ev.kind == EventKind::Complete) {
      inner_recorded = true;
    }
  }
  EXPECT_TRUE(inner_recorded);  // the event itself is still recorded
}

TEST_F(RecorderTest, SpanCrossingClearIsRejectedWithExplicitError) {
  Recorder::instance().enable();
  const std::uint64_t misuse_before = Recorder::instance().misuse_count();
  {
    Span span("test.crossing", "test");
    ASSERT_TRUE(span.active());
    Recorder::instance().clear();  // flush boundary while span is open
  }
  // The half-window event must NOT leak into the new trace; the misuse
  // marker takes its place.
  std::size_t crossing_events = 0;
  std::size_t markers = 0;
  for (const auto& ev : Recorder::instance().snapshot_events()) {
    if (ev.name == "test.crossing") ++crossing_events;
    if (ev.name == "obs.error.span_misuse") ++markers;
  }
  EXPECT_EQ(crossing_events, 0u);
  EXPECT_GE(markers, 1u);
  EXPECT_GT(Recorder::instance().misuse_count(), misuse_before);
  EXPECT_EQ(current_span_id(), 0u);  // stack does not hold stale ids
}

TEST_F(RecorderTest, ChromeTraceExportIsValidJson) {
  Recorder::instance().enable();
  {
    Span span("test.export", "test");
    span.arg("n", 16.0);
    span.arg("status", "ok\"quoted\"");
  }
  { Span span("test.export2", "test"); }
  std::ostringstream os;
  Recorder::instance().write_chrome_trace(os);
  const std::string text = os.str();
  ASSERT_TRUE(JsonValidator::valid(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("test.export"), std::string::npos);
}

TEST_F(RecorderTest, JsonlExportOneValidObjectPerLine) {
  Recorder::instance().enable();
  { Span span("test.line1", "test"); }
  { Span span("test.line2", "test"); }
  std::ostringstream os;
  Recorder::instance().write_jsonl(os);
  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonValidator::valid(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST_F(RecorderTest, FileWriterFailsGracefullyOnBadPath) {
  EXPECT_FALSE(Recorder::instance().write_chrome_trace_file(
      "/nonexistent-dir-svo/trace.json"));
}

TEST_F(RecorderTest, TraceSessionWritesFileAndRestoresState) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "svo_obs_session_test.json")
          .string();
  std::filesystem::remove(path);
  {
    TraceSession session(path);
    EXPECT_TRUE(session.active());
    EXPECT_TRUE(Recorder::instance().enabled());
    Span span("test.session", "test");
  }
  EXPECT_FALSE(Recorder::instance().enabled());  // prior state restored
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(JsonValidator::valid(buf.str())) << buf.str();
  EXPECT_NE(buf.str().find("test.session"), std::string::npos);
  std::filesystem::remove(path);
}

// ------------------------------------------------- bad-sample handling

TEST(HistogramBadSampleTest, NanIsRejectedAndCounted) {
  Histogram h;
  h.observe(std::nan(""));
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.snapshot().count, 0u);  // neither polluted the buckets
  EXPECT_EQ(h.bad_samples(), 2u);
}

TEST(HistogramBadSampleTest, NegativeIsClampedToZeroAndCounted) {
  Histogram h;
  h.observe(-5.0);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);  // clamped sample still lands
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
  EXPECT_EQ(h.bad_samples(), 1u);
}

TEST(HistogramBadSampleTest, BadTallySurvivesReset) {
  Histogram h;
  h.observe(std::nan(""));
  h.reset();
  EXPECT_EQ(h.bad_samples(), 1u);  // an error ledger, not a sample
}

TEST(HistogramBadSampleTest, RegistryHistogramsShareErrorCounter) {
  MetricRegistry reg;
  reg.histogram("a").observe(std::nan(""));
  reg.histogram("b").observe(-1.0);
  EXPECT_EQ(reg.counter_value("obs.error.bad_sample"), 2u);
  // Clean samples never touch the error counter.
  reg.histogram("a").observe(3.0);
  EXPECT_EQ(reg.counter_value("obs.error.bad_sample"), 2u);
}

// ------------------------------------------------------------ Gauge::add

TEST(GaugeAddTest, AccumulatesSignedDeltas) {
  Gauge g;
  g.add(3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.set(10.0);  // set still overwrites
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 10.25);
}

TEST(GaugeAddTest, ConcurrentAddsConserveTotal) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

// --------------------------------------------- concurrent registry stress

/// Satellite: N threads hammer one registry — lookups (find_or_create
/// under the hood), counter adds, gauge adds, histogram observes
/// (including bad samples), snapshots and resets — while the map grows.
/// The assertions are modest (no torn names, snapshot sees every
/// registered metric); the real check is tsan/asan over this test via
/// the smoke_observability label.
TEST(RegistryStressTest, ConcurrentMixedOperationsAreSafe) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string name = "m" + std::to_string(i % 7);
        reg.counter(name + ".count").add(1);
        reg.gauge(name + ".level").add(t % 2 == 0 ? 1.0 : -1.0);
        Histogram& h = reg.histogram(name + ".lat");
        h.observe(static_cast<double>((i * 37) % 1000));
        if (i % 97 == 0) h.observe(std::nan(""));  // exercises the
        if (i % 101 == 0) (void)reg.snapshot();    // shared error counter
        if (t == 0 && i % 173 == 0) reg.reset();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const RegistrySnapshot snap = reg.snapshot();
  // 7 metric stems x {count, level, lat} + the shared error counter.
  EXPECT_EQ(snap.counters.size(), 7u + 1u);
  EXPECT_EQ(snap.gauges.size(), 7u);
  EXPECT_EQ(snap.histograms.size(), 7u);
  for (const std::string& name : reg.names()) {
    EXPECT_FALSE(name.empty());
  }
}

TEST_F(RecorderTest, InactiveTraceSessionIsFree) {
  ::unsetenv("SVO_TRACE");
  ::unsetenv("SVO_METRICS");
  TraceSession session;  // no env, no paths
  EXPECT_FALSE(session.active());
  EXPECT_FALSE(Recorder::instance().enabled());
}

}  // namespace
}  // namespace svo::obs
