#include "ip/bnb.hpp"

#include <gtest/gtest.h>

#include "tests/ip/test_instances.hpp"

namespace svo::ip {
namespace {

TEST(BnbTest, TrivialTwoByTwoOptimal) {
  AssignmentInstance inst;
  inst.cost = linalg::Matrix::from_rows({{1, 10}, {10, 1}});
  inst.time = linalg::Matrix::from_rows({{1, 1}, {1, 1}});
  inst.deadline = 2.0;
  inst.payment = 100.0;
  const BnbAssignmentSolver solver;
  const AssignmentSolution sol = solver.solve(inst);
  ASSERT_EQ(sol.stats.status, AssignStatus::Optimal);
  EXPECT_DOUBLE_EQ(sol.cost, 2.0);
  EXPECT_EQ(sol.assignment, (Assignment{0, 1}));
}

TEST(BnbTest, CoverageForcesExpensiveGsp) {
  // GSP 1 is costly for everything, but constraint (13) forces it to get
  // at least one task.
  AssignmentInstance inst;
  inst.cost = linalg::Matrix::from_rows({{1, 1, 1}, {50, 60, 70}});
  inst.time = linalg::Matrix::from_rows({{1, 1, 1}, {1, 1, 1}});
  inst.deadline = 5.0;
  inst.payment = 1000.0;
  const BnbAssignmentSolver solver;
  const AssignmentSolution sol = solver.solve(inst);
  ASSERT_EQ(sol.stats.status, AssignStatus::Optimal);
  EXPECT_DOUBLE_EQ(sol.cost, 1.0 + 1.0 + 50.0);
}

TEST(BnbTest, InfeasibleWhenMoreGspsThanTasks) {
  AssignmentInstance inst;
  inst.cost = linalg::Matrix(3, 2, 1.0);
  inst.time = linalg::Matrix(3, 2, 1.0);
  inst.deadline = 10.0;
  inst.payment = 100.0;
  EXPECT_EQ(BnbAssignmentSolver().solve(inst).stats.status,
            AssignStatus::Infeasible);
}

TEST(BnbTest, InfeasibleWhenDeadlineTooTight) {
  AssignmentInstance inst;
  inst.cost = linalg::Matrix(2, 2, 1.0);
  inst.time = linalg::Matrix(2, 2, 5.0);
  inst.deadline = 1.0;  // no task fits anywhere
  inst.payment = 100.0;
  EXPECT_EQ(BnbAssignmentSolver().solve(inst).stats.status,
            AssignStatus::Infeasible);
}

TEST(BnbTest, InfeasibleWhenPaymentTooLow) {
  AssignmentInstance inst;
  inst.cost = linalg::Matrix(2, 2, 10.0);
  inst.time = linalg::Matrix(2, 2, 1.0);
  inst.deadline = 10.0;
  inst.payment = 5.0;  // min total cost is 20
  EXPECT_EQ(BnbAssignmentSolver().solve(inst).stats.status,
            AssignStatus::Infeasible);
}

TEST(BnbTest, DeadlineForcesCostlierSpread) {
  // Cheapest GSP can hold only one task by time; optimum must split.
  AssignmentInstance inst;
  inst.cost = linalg::Matrix::from_rows({{1, 1}, {10, 10}});
  inst.time = linalg::Matrix::from_rows({{3, 3}, {1, 1}});
  inst.deadline = 3.0;
  inst.payment = 100.0;
  const AssignmentSolution sol = BnbAssignmentSolver().solve(inst);
  ASSERT_EQ(sol.stats.status, AssignStatus::Optimal);
  EXPECT_DOUBLE_EQ(sol.cost, 11.0);
}

TEST(BnbTest, SolutionAlwaysPassesFeasibilityCheck) {
  util::Xoshiro256 rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const AssignmentInstance inst =
        testing::random_instance(3, 6, rng, /*tight=*/true);
    const AssignmentSolution sol = BnbAssignmentSolver().solve(inst);
    if (sol.has_assignment()) {
      EXPECT_EQ(check_feasible(inst, sol.assignment), "");
      EXPECT_NEAR(sol.cost, assignment_cost(inst, sol.assignment), 1e-9);
    }
  }
}

TEST(BnbTest, NodeBudgetYieldsAnytimeResult) {
  util::Xoshiro256 rng(13);
  const AssignmentInstance inst = testing::random_instance(4, 12, rng);
  BnbOptions opts;
  opts.max_nodes = 5;
  opts.seed_with_greedy = true;
  const AssignmentSolution sol = BnbAssignmentSolver(opts).solve(inst);
  // With a greedy seed we must at least have a feasible incumbent.
  EXPECT_TRUE(sol.stats.status == AssignStatus::Feasible ||
              sol.stats.status == AssignStatus::Optimal);
  if (sol.has_assignment()) {
    EXPECT_EQ(check_feasible(inst, sol.assignment), "");
  }
}

TEST(BnbTest, LowerBoundNeverExceedsOptimum) {
  util::Xoshiro256 rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const AssignmentInstance inst = testing::random_instance(3, 5, rng);
    const AssignmentSolution sol = BnbAssignmentSolver().solve(inst);
    if (sol.has_assignment()) {
      EXPECT_LE(sol.lower_bound, sol.cost + 1e-9);
    }
  }
}

TEST(BnbTest, WallClockBudgetTruncatesSearch) {
  // A huge instance with a microscopic time budget and no greedy seed:
  // the search must stop early and report honestly (no incumbent, no
  // proof) instead of running for seconds.
  util::Xoshiro256 rng(23);
  const AssignmentInstance inst = testing::random_instance(8, 2000, rng);
  BnbOptions opts;
  opts.max_nodes = SIZE_MAX;  // only the clock limits it
  opts.time_limit_seconds = 1e-4;
  opts.seed_with_greedy = false;
  const AssignmentSolution sol = BnbAssignmentSolver(opts).solve(inst);
  EXPECT_TRUE(sol.stats.status == AssignStatus::Unknown ||
              sol.stats.status == AssignStatus::Feasible);
  EXPECT_LT(sol.stats.nodes, SIZE_MAX);
}

/// The central correctness property: exact B&B == exhaustive enumeration,
/// across many random instances including tight (often infeasible) ones.
class BnbBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(BnbBruteForceTest, MatchesBruteForce) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::size_t k = 2 + rng.index(2);   // 2..3 GSPs
  const std::size_t n = k + rng.index(5);   // k..k+4 tasks
  const AssignmentInstance inst =
      testing::random_instance(k, n, rng, /*tight=*/GetParam() % 2 == 0);
  const auto oracle = testing::brute_force_optimum(inst);
  const AssignmentSolution sol = BnbAssignmentSolver().solve(inst);
  if (oracle.has_value()) {
    ASSERT_EQ(sol.stats.status, AssignStatus::Optimal)
        << "k=" << k << " n=" << n;
    EXPECT_NEAR(sol.cost, *oracle, 1e-7);
    EXPECT_EQ(check_feasible(inst, sol.assignment), "");
  } else {
    EXPECT_EQ(sol.stats.status, AssignStatus::Infeasible);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BnbBruteForceTest,
                         ::testing::Range(1, 41));

}  // namespace
}  // namespace svo::ip
