/// Branch-and-bound with constraint (13) disabled — the
/// require_all_gsps_used = false code path, used when a VO may leave
/// members idle (relevant for the DAG adapter and custom applications).
#include <gtest/gtest.h>

#include "ip/bnb.hpp"
#include "ip/greedy.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::ip {
namespace {

AssignmentInstance no_coverage(std::size_t k, std::size_t n,
                               util::Xoshiro256& rng) {
  AssignmentInstance inst = testing::random_instance(k, n, rng);
  inst.require_all_gsps_used = false;
  return inst;
}

TEST(BnbNoCoverageTest, CanLeaveExpensiveGspIdle) {
  AssignmentInstance inst;
  inst.cost = linalg::Matrix::from_rows({{1, 1, 1}, {99, 99, 99}});
  inst.time = linalg::Matrix::from_rows({{1, 1, 1}, {1, 1, 1}});
  inst.deadline = 5.0;
  inst.payment = 1000.0;
  inst.require_all_gsps_used = false;
  const AssignmentSolution sol = BnbAssignmentSolver().solve(inst);
  ASSERT_EQ(sol.stats.status, AssignStatus::Optimal);
  EXPECT_DOUBLE_EQ(sol.cost, 3.0);  // all on the cheap GSP
  EXPECT_EQ(sol.assignment, (Assignment{0, 0, 0}));
}

TEST(BnbNoCoverageTest, MoreGspsThanTasksIsFine) {
  util::Xoshiro256 rng(3);
  const AssignmentInstance inst = no_coverage(5, 3, rng);
  const AssignmentSolution sol = BnbAssignmentSolver().solve(inst);
  EXPECT_EQ(sol.stats.status, AssignStatus::Optimal);
  EXPECT_EQ(check_feasible(inst, sol.assignment), "");
}

TEST(BnbNoCoverageTest, OptimumNeverWorseThanWithCoverage) {
  util::Xoshiro256 rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    AssignmentInstance with = testing::random_instance(3, 6, rng);
    AssignmentInstance without = with;
    without.require_all_gsps_used = false;
    const AssignmentSolution a = BnbAssignmentSolver().solve(with);
    const AssignmentSolution b = BnbAssignmentSolver().solve(without);
    ASSERT_TRUE(b.stats.status == AssignStatus::Optimal ||
                b.stats.status == AssignStatus::Infeasible);
    if (a.stats.status == AssignStatus::Optimal) {
      ASSERT_EQ(b.stats.status, AssignStatus::Optimal);
      EXPECT_LE(b.cost, a.cost + 1e-9);  // relaxation can only help
    }
  }
}

TEST(BnbNoCoverageTest, MatchesBruteForce) {
  util::Xoshiro256 rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    const AssignmentInstance inst = no_coverage(3, 5, rng);
    const auto oracle = testing::brute_force_optimum(inst);
    const AssignmentSolution sol = BnbAssignmentSolver().solve(inst);
    if (oracle.has_value()) {
      ASSERT_EQ(sol.stats.status, AssignStatus::Optimal);
      EXPECT_NEAR(sol.cost, *oracle, 1e-7);
    } else {
      EXPECT_EQ(sol.stats.status, AssignStatus::Infeasible);
    }
  }
}

TEST(GreedyNoCoverageTest, SkipsRepairPhase) {
  util::Xoshiro256 rng(9);
  const AssignmentInstance inst = no_coverage(4, 6, rng);
  const AssignmentSolution sol = GreedyAssignmentSolver().solve(inst);
  if (sol.has_assignment()) {
    EXPECT_EQ(check_feasible(inst, sol.assignment), "");
  }
}

}  // namespace
}  // namespace svo::ip
