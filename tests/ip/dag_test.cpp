#include "ip/dag.hpp"

#include <gtest/gtest.h>

#include "tests/ip/test_instances.hpp"

namespace svo::ip {
namespace {

/// Diamond: 0 -> {1, 2} -> 3.
TaskDag diamond() {
  TaskDag dag(4);
  dag.add_dependency(0, 1);
  dag.add_dependency(0, 2);
  dag.add_dependency(1, 3);
  dag.add_dependency(2, 3);
  return dag;
}

TEST(TaskDagTest, EdgesAndNeighbors) {
  const TaskDag dag = diamond();
  EXPECT_EQ(dag.num_edges(), 4u);
  EXPECT_EQ(dag.successors(0).size(), 2u);
  EXPECT_EQ(dag.predecessors(3).size(), 2u);
  EXPECT_TRUE(dag.predecessors(0).empty());
}

TEST(TaskDagTest, DuplicateEdgesIgnored) {
  TaskDag dag(3);
  dag.add_dependency(0, 1);
  dag.add_dependency(0, 1);
  EXPECT_EQ(dag.num_edges(), 1u);
}

TEST(TaskDagTest, RejectsBadEdges) {
  TaskDag dag(3);
  EXPECT_THROW(dag.add_dependency(0, 0), InvalidArgument);
  EXPECT_THROW(dag.add_dependency(0, 9), InvalidArgument);
}

TEST(TaskDagTest, AcyclicityDetection) {
  EXPECT_TRUE(diamond().is_acyclic());
  TaskDag cyclic(3);
  cyclic.add_dependency(0, 1);
  cyclic.add_dependency(1, 2);
  cyclic.add_dependency(2, 0);
  EXPECT_FALSE(cyclic.is_acyclic());
  EXPECT_THROW((void)cyclic.topological_order(), InvalidArgument);
}

TEST(TaskDagTest, TopologicalOrderRespectsPrecedence) {
  const TaskDag dag = diamond();
  const std::vector<std::size_t> order = dag.topological_order();
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < 4; ++i) pos[order[i]] = i;
  EXPECT_LT(pos[0], pos[1]);
  EXPECT_LT(pos[0], pos[2]);
  EXPECT_LT(pos[1], pos[3]);
  EXPECT_LT(pos[2], pos[3]);
}

TEST(TaskDagTest, CriticalPathLowerBound) {
  const TaskDag dag = diamond();
  // Min times: task 0: 2, tasks 1/2: 3 and 5, task 3: 1.
  const linalg::Matrix time = linalg::Matrix::from_rows(
      {{2.0, 3.0, 5.0, 1.0}, {4.0, 6.0, 10.0, 2.0}});
  // Critical path: 0 -> 2 -> 3 = 2 + 5 + 1 = 8.
  EXPECT_DOUBLE_EQ(dag.critical_path_lower_bound(time), 8.0);
}

TEST(ScheduleFixedTest, ChainIsSequential) {
  TaskDag chain(3);
  chain.add_dependency(0, 1);
  chain.add_dependency(1, 2);
  AssignmentInstance inst;
  inst.cost = linalg::Matrix(2, 3, 1.0);
  inst.time = linalg::Matrix(2, 3, 2.0);
  inst.deadline = 100.0;
  inst.payment = 100.0;
  // All three tasks on different GSPs: still strictly sequential.
  const DagSchedule s = schedule_fixed_assignment(inst, chain, {0, 1, 0});
  EXPECT_DOUBLE_EQ(s.makespan, 6.0);
  EXPECT_DOUBLE_EQ(s.start[1], 2.0);
  EXPECT_DOUBLE_EQ(s.start[2], 4.0);
  EXPECT_DOUBLE_EQ(s.cost, 3.0);
}

TEST(ScheduleFixedTest, IndependentTasksOverlapAcrossGsps) {
  const TaskDag bag(2);  // no edges
  AssignmentInstance inst;
  inst.cost = linalg::Matrix(2, 2, 1.0);
  inst.time = linalg::Matrix(2, 2, 5.0);
  inst.deadline = 100.0;
  inst.payment = 100.0;
  const DagSchedule parallel = schedule_fixed_assignment(inst, bag, {0, 1});
  EXPECT_DOUBLE_EQ(parallel.makespan, 5.0);
  const DagSchedule serial = schedule_fixed_assignment(inst, bag, {0, 0});
  EXPECT_DOUBLE_EQ(serial.makespan, 10.0);
}

TEST(ScheduleFixedTest, PrecedenceAlwaysRespected) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 12;
    const AssignmentInstance inst = testing::random_instance(3, n, rng);
    TaskDag dag(n);
    for (std::size_t t = 1; t < n; ++t) {
      if (rng.bernoulli(0.5)) dag.add_dependency(rng.index(t), t);
    }
    Assignment a(n);
    for (auto& g : a) g = rng.index(3);
    const DagSchedule s = schedule_fixed_assignment(inst, dag, a);
    for (std::size_t t = 0; t < n; ++t) {
      for (const std::size_t p : dag.predecessors(t)) {
        ASSERT_GE(s.start[t], s.finish[p] - 1e-12);
      }
      ASSERT_NEAR(s.finish[t], s.start[t] + inst.time(a[t], t), 1e-12);
    }
    EXPECT_GE(s.makespan, dag.critical_path_lower_bound(inst.time) - 1e-9);
  }
}

TEST(DagSolverTest, BagOfTasksBehavesLikeAssignment) {
  util::Xoshiro256 rng(5);
  const AssignmentInstance inst = testing::random_instance(3, 9, rng);
  const TaskDag bag(9);
  const DagSolverAdapter solver(bag);
  const AssignmentSolution sol = solver.solve(inst);
  if (sol.has_assignment()) {
    // With no precedence the schedule is just per-GSP serial load; the
    // makespan constraint is at least as strict as (11), so the result
    // must satisfy the plain-assignment feasibility check too.
    EXPECT_EQ(check_feasible(inst, sol.assignment), "");
  }
}

TEST(DagSolverTest, FeasibleScheduleWithinDeadline) {
  util::Xoshiro256 rng(7);
  AssignmentInstance inst = testing::random_instance(3, 12, rng);
  inst.deadline *= 3.0;  // slack for the precedence chains
  TaskDag dag(12);
  for (std::size_t t = 4; t < 12; ++t) dag.add_dependency(t - 4, t);
  const DagSolverAdapter solver(dag);
  const AssignmentSolution sol = solver.solve(inst);
  ASSERT_TRUE(sol.has_assignment());
  const DagSchedule s = schedule_fixed_assignment(inst, dag, sol.assignment);
  EXPECT_LE(s.makespan, inst.deadline + 1e-9);
  EXPECT_LE(s.cost, inst.payment + 1e-9);
  EXPECT_NEAR(s.cost, sol.cost, 1e-9);
}

TEST(DagSolverTest, PigeonholeProvenInfeasible) {
  util::Xoshiro256 rng(9);
  const AssignmentInstance inst = testing::random_instance(5, 3, rng);
  const TaskDag bag(3);
  const DagSolverAdapter solver(bag);
  EXPECT_EQ(solver.solve(inst).stats.status, AssignStatus::Infeasible);
}

TEST(DagSolverTest, ImpossibleDeadlineIsUnknown) {
  util::Xoshiro256 rng(11);
  AssignmentInstance inst = testing::random_instance(2, 6, rng);
  TaskDag chain(6);
  for (std::size_t t = 1; t < 6; ++t) chain.add_dependency(t - 1, t);
  inst.deadline = 0.1;  // even the critical path cannot fit
  const DagSolverAdapter solver(chain);
  EXPECT_EQ(solver.solve(inst).stats.status, AssignStatus::Unknown);
}

TEST(DagSolverTest, CostAwareNeverCostlierThanClassicWhenBothFeasible) {
  util::Xoshiro256 rng(13);
  int comparisons = 0;
  for (int trial = 0; trial < 20; ++trial) {
    AssignmentInstance inst = testing::random_instance(4, 16, rng);
    inst.deadline *= 4.0;
    TaskDag dag(16);
    for (std::size_t t = 1; t < 16; ++t) {
      if (rng.bernoulli(0.4)) dag.add_dependency(rng.index(t), t);
    }
    const DagSolverAdapter cost_aware(dag, {true});
    const DagSolverAdapter classic(dag, {false});
    const AssignmentSolution a = cost_aware.solve(inst);
    const AssignmentSolution b = classic.solve(inst);
    if (a.has_assignment() && b.has_assignment()) {
      EXPECT_LE(a.cost, b.cost + 1e-9);
      ++comparisons;
    }
  }
  EXPECT_GT(comparisons, 5);
}

}  // namespace
}  // namespace svo::ip
