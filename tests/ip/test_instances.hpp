/// \file test_instances.hpp
/// Shared helpers for the ip solver tests: random instance generation and
/// an exhaustive brute-force oracle for small assignment problems.
#pragma once

#include <limits>
#include <optional>

#include "ip/assignment.hpp"
#include "util/rng.hpp"

namespace svo::ip::testing {

/// Random instance with k GSPs and n tasks. `tight` shrinks deadline and
/// payment toward the feasibility boundary.
inline AssignmentInstance random_instance(std::size_t k, std::size_t n,
                                          util::Xoshiro256& rng,
                                          bool tight = false) {
  AssignmentInstance inst;
  inst.cost = linalg::Matrix(k, n);
  inst.time = linalg::Matrix(k, n);
  for (std::size_t g = 0; g < k; ++g) {
    for (std::size_t t = 0; t < n; ++t) {
      inst.cost(g, t) = rng.uniform(1.0, 20.0);
      inst.time(g, t) = rng.uniform(0.5, 4.0);
    }
  }
  const double slack = tight ? rng.uniform(0.9, 1.6) : rng.uniform(1.5, 3.0);
  inst.deadline =
      slack * 4.0 * static_cast<double>(n) / static_cast<double>(k);
  inst.payment = tight ? rng.uniform(6.0, 12.0) * static_cast<double>(n)
                       : 25.0 * static_cast<double>(n);
  return inst;
}

/// Brute force over all k^n assignments; returns the optimal cost or
/// nullopt when no assignment is feasible. Use only for k^n <= ~1e6.
inline std::optional<double> brute_force_optimum(
    const AssignmentInstance& inst) {
  const std::size_t k = inst.num_gsps();
  const std::size_t n = inst.num_tasks();
  Assignment a(n, 0);
  double best = std::numeric_limits<double>::infinity();
  bool found = false;
  for (;;) {
    if (check_feasible(inst, a).empty()) {
      best = std::min(best, assignment_cost(inst, a));
      found = true;
    }
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < n && ++a[pos] == k) a[pos++] = 0;
    if (pos == n) break;
  }
  if (!found) return std::nullopt;
  return best;
}

}  // namespace svo::ip::testing
