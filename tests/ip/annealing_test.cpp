#include "ip/annealing.hpp"

#include <gtest/gtest.h>

#include "ip/bnb.hpp"
#include "ip/greedy.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::ip {
namespace {

TEST(AnnealingTest, PreservesFeasibilityThroughout) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    AssignmentInstance inst = testing::random_instance(4, 16, rng);
    inst.payment = 1e18;
    Assignment a =
        greedy_construct(inst, GreedyOptions::Order::TimeDescending);
    ASSERT_FALSE(a.empty());
    AnnealingOptions opts;
    opts.iterations = 3000;
    opts.seed = trial;
    const double cost = simulated_annealing(inst, a, opts);
    EXPECT_EQ(check_feasible(inst, a), "");
    EXPECT_NEAR(cost, assignment_cost(inst, a), 1e-9);
  }
}

TEST(AnnealingTest, ReturnsBestVisitedNotLastAccepted) {
  // The returned cost must never exceed the entry cost (the entry state
  // is the first "best visited").
  util::Xoshiro256 rng(5);
  AssignmentInstance inst = testing::random_instance(4, 12, rng);
  inst.payment = 1e18;
  Assignment a = greedy_construct(inst, GreedyOptions::Order::RegretDescending);
  ASSERT_FALSE(a.empty());
  const double before = assignment_cost(inst, a);
  const double after = simulated_annealing(inst, a, {});
  EXPECT_LE(after, before + 1e-9);
}

TEST(AnnealingTest, EscapesLocalOptimaMoveOnlyDescentCannot) {
  // Move-only descent gets stuck on crossed assignments (two tasks that
  // should trade executors); annealing's swap proposals escape them.
  // Statistically: starting from a move-only fixed point, annealing
  // (plus move-only re-descent, for fairness) never loses and strictly
  // wins at least once across random tight instances.
  util::Xoshiro256 rng(7);
  int strict_wins = 0;
  for (int trial = 0; trial < 20; ++trial) {
    AssignmentInstance inst =
        testing::random_instance(5, 20, rng, /*tight=*/true);
    inst.payment = 1e18;
    Assignment a =
        greedy_construct(inst, GreedyOptions::Order::RegretDescending);
    if (a.empty()) continue;
    LocalSearchOptions moves_only;
    moves_only.max_swap_passes = 0;  // descent without the swap move class
    const double descent_cost = local_search(inst, a, moves_only);
    Assignment b = a;
    AnnealingOptions opts;
    opts.iterations = 20'000;
    opts.seed = 1000 + trial;
    (void)simulated_annealing(inst, b, opts);
    const double annealed_cost = local_search(inst, b, moves_only);
    EXPECT_LE(annealed_cost, descent_cost + 1e-9);
    strict_wins += annealed_cost < descent_cost - 1e-9;
  }
  EXPECT_GE(strict_wins, 1);
}

TEST(AnnealingTest, DeterministicInSeed) {
  util::Xoshiro256 rng(11);
  AssignmentInstance inst = testing::random_instance(4, 12, rng);
  inst.payment = 1e18;
  Assignment a = greedy_construct(inst, GreedyOptions::Order::RegretDescending);
  Assignment b = a;
  AnnealingOptions opts;
  opts.seed = 99;
  const double ca = simulated_annealing(inst, a, opts);
  const double cb = simulated_annealing(inst, b, opts);
  EXPECT_DOUBLE_EQ(ca, cb);
  EXPECT_EQ(a, b);
}

TEST(AnnealingTest, RejectsBadOptionsAndEntry) {
  util::Xoshiro256 rng(13);
  AssignmentInstance inst = testing::random_instance(3, 6, rng);
  Assignment bad(6, 0);  // coverage violated
  EXPECT_THROW((void)simulated_annealing(inst, bad, {}), InvalidArgument);
  Assignment good = greedy_construct(inst, GreedyOptions::Order::RegretDescending);
  ASSERT_FALSE(good.empty());
  AnnealingOptions opts;
  opts.iterations = 0;
  EXPECT_THROW((void)simulated_annealing(inst, good, opts), InvalidArgument);
  opts = {};
  opts.swap_probability = 2.0;
  EXPECT_THROW((void)simulated_annealing(inst, good, opts), InvalidArgument);
}

TEST(AnnealingSolverTest, SolverContract) {
  util::Xoshiro256 rng(17);
  const AssignmentInstance inst =
      testing::random_instance(4, 12, rng, /*tight=*/true);
  const AnnealingAssignmentSolver solver;
  const AssignmentSolution sol = solver.solve(inst);
  EXPECT_NE(sol.stats.status, AssignStatus::Optimal);  // heuristics never prove
  if (sol.has_assignment()) {
    EXPECT_EQ(check_feasible(inst, sol.assignment), "");
  }
}

TEST(AnnealingSolverTest, CompetitiveWithBnbIncumbentOnMediumInstances) {
  util::Xoshiro256 rng(19);
  double annealing_total = 0.0;
  double bnb_total = 0.0;
  int counted = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const AssignmentInstance inst = testing::random_instance(8, 64, rng);
    BnbOptions budget;
    budget.max_nodes = 5000;
    const AssignmentSolution a = AnnealingAssignmentSolver().solve(inst);
    const AssignmentSolution b = BnbAssignmentSolver(budget).solve(inst);
    if (a.has_assignment() && b.has_assignment()) {
      annealing_total += a.cost;
      bnb_total += b.cost;
      ++counted;
    }
  }
  ASSERT_GT(counted, 4);
  // Within 5% of the budgeted B&B on aggregate (usually better or equal).
  EXPECT_LT(annealing_total, bnb_total * 1.05);
}

}  // namespace
}  // namespace svo::ip
