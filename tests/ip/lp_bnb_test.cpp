#include "ip/lp_bnb.hpp"

#include <gtest/gtest.h>

#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::ip {
namespace {

TEST(SolveBinaryIpTest, KnapsackKnownOptimum) {
  // max 10a + 6b + 4c s.t. a + b + c <= 2 (binary)  ->  min negated.
  lp::Problem p(3);
  p.set_objective({-10.0, -6.0, -4.0});
  p.add_constraint({1.0, 1.0, 1.0}, lp::Sense::LessEqual, 2.0);
  const IpResult r = solve_binary_ip(p, {0, 1, 2});
  ASSERT_EQ(r.status, IpStatus::Optimal);
  EXPECT_NEAR(r.objective, -16.0, 1e-7);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_NEAR(r.x[2], 0.0, 1e-9);
}

TEST(SolveBinaryIpTest, FractionalLpForcedIntegral) {
  // LP relaxation optimum is fractional (x = y = 0.5); IP optimum differs.
  // min -(x + y) s.t. 2x + 2y <= 2, binary -> exactly one of x, y.
  lp::Problem p(2);
  p.set_objective({-1.0, -1.0});
  p.add_constraint({2.0, 2.0}, lp::Sense::LessEqual, 2.0);
  const IpResult r = solve_binary_ip(p, {0, 1});
  ASSERT_EQ(r.status, IpStatus::Optimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-7);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, 1e-7);
}

TEST(SolveBinaryIpTest, InfeasibleIntegerProblem) {
  // x + y == 1.5 has fractional-only solutions for binaries.
  lp::Problem p(2);
  p.set_objective({1.0, 1.0});
  p.add_constraint({1.0, 1.0}, lp::Sense::Equal, 1.5);
  EXPECT_EQ(solve_binary_ip(p, {0, 1}).status, IpStatus::Infeasible);
}

TEST(SolveBinaryIpTest, NodeLimitReported) {
  lp::Problem p(6);
  std::vector<double> obj(6, -1.0);
  p.set_objective(obj);
  p.add_constraint(std::vector<double>(6, 2.0), lp::Sense::LessEqual, 5.0);
  LpBnbOptions opts;
  opts.max_nodes = 1;
  EXPECT_EQ(solve_binary_ip(p, {0, 1, 2, 3, 4, 5}, opts).status,
            IpStatus::NodeLimit);
}

TEST(SolveBinaryIpTest, MixedIntegerKeepsContinuousVars) {
  // min -y - 0.5 z with y binary, z continuous <= 0.7 (via row).
  lp::Problem p(2);
  p.set_objective({-1.0, -0.5});
  p.add_constraint({0.0, 1.0}, lp::Sense::LessEqual, 0.7);
  p.set_upper_bound(0, 1.0);
  const IpResult r = solve_binary_ip(p, {0});
  ASSERT_EQ(r.status, IpStatus::Optimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 0.7, 1e-7);
}

TEST(BuildAssignmentIpTest, ShapeMatchesFormulation) {
  util::Xoshiro256 rng(31);
  const AssignmentInstance inst = testing::random_instance(3, 4, rng);
  const lp::Problem p = build_assignment_ip(inst);
  EXPECT_EQ(p.num_vars(), 12u);
  // (10) + 3x(11) + 4x(12) + 3x(13) = 11 rows.
  EXPECT_EQ(p.num_constraints(), 11u);
  for (std::size_t v = 0; v < 12; ++v) {
    EXPECT_DOUBLE_EQ(p.upper_bound(v).value(), 1.0);
  }
}

/// Cross-validation: the literal IP formulation (LP-based B&B) and the
/// specialized combinatorial B&B must agree on optimal cost and
/// feasibility for random small instances.
class SolverAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverAgreementTest, LpBnbAgreesWithSpecializedBnb) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::size_t k = 2 + rng.index(2);
  const std::size_t n = k + rng.index(3);
  const AssignmentInstance inst =
      testing::random_instance(k, n, rng, /*tight=*/GetParam() % 2 == 1);
  const AssignmentSolution fast = BnbAssignmentSolver().solve(inst);
  const AssignmentSolution literal = LpBnbAssignmentSolver().solve(inst);
  ASSERT_TRUE(fast.stats.status == AssignStatus::Optimal ||
              fast.stats.status == AssignStatus::Infeasible);
  ASSERT_TRUE(literal.stats.status == AssignStatus::Optimal ||
              literal.stats.status == AssignStatus::Infeasible);
  EXPECT_EQ(fast.stats.status, literal.stats.status);
  if (fast.stats.status == AssignStatus::Optimal) {
    EXPECT_NEAR(fast.cost, literal.cost, 1e-6);
    EXPECT_EQ(check_feasible(inst, literal.assignment), "");
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SolverAgreementTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace svo::ip
