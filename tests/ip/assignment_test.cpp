#include "ip/assignment.hpp"

#include <gtest/gtest.h>

namespace svo::ip {
namespace {

AssignmentInstance small_instance() {
  AssignmentInstance inst;
  inst.cost = linalg::Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  inst.time = linalg::Matrix::from_rows({{1, 1, 1}, {2, 2, 2}});
  inst.deadline = 10.0;
  inst.payment = 100.0;
  return inst;
}

TEST(AssignmentInstanceTest, ValidateAcceptsGoodInstance) {
  EXPECT_NO_THROW(small_instance().validate());
}

TEST(AssignmentInstanceTest, ValidateRejectsShapeMismatch) {
  AssignmentInstance inst = small_instance();
  inst.time = linalg::Matrix(2, 2, 1.0);
  EXPECT_THROW(inst.validate(), InvalidArgument);
}

TEST(AssignmentInstanceTest, ValidateRejectsBadScalars) {
  AssignmentInstance inst = small_instance();
  inst.deadline = 0.0;
  EXPECT_THROW(inst.validate(), InvalidArgument);
  inst = small_instance();
  inst.payment = -1.0;
  EXPECT_THROW(inst.validate(), InvalidArgument);
  inst = small_instance();
  inst.time(0, 0) = 0.0;
  EXPECT_THROW(inst.validate(), InvalidArgument);
  inst = small_instance();
  inst.cost(1, 2) = -0.5;
  EXPECT_THROW(inst.validate(), InvalidArgument);
}

TEST(AssignmentInstanceTest, RestrictToSelectsRows) {
  const AssignmentInstance inst = small_instance();
  std::vector<std::size_t> original;
  const AssignmentInstance sub = inst.restrict_to({false, true}, &original);
  EXPECT_EQ(sub.num_gsps(), 1u);
  EXPECT_EQ(sub.num_tasks(), 3u);
  ASSERT_EQ(original.size(), 1u);
  EXPECT_EQ(original[0], 1u);
  EXPECT_DOUBLE_EQ(sub.cost(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sub.time(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(sub.deadline, inst.deadline);
  EXPECT_DOUBLE_EQ(sub.payment, inst.payment);
}

TEST(AssignmentInstanceTest, RestrictToBadMaskThrows) {
  EXPECT_THROW((void)small_instance().restrict_to({true}), DimensionMismatch);
}

TEST(AssignmentCostTest, SumsSelectedEntries) {
  const AssignmentInstance inst = small_instance();
  EXPECT_DOUBLE_EQ(assignment_cost(inst, {0, 1, 0}), 1.0 + 5.0 + 3.0);
}

TEST(AssignmentCostTest, RejectsBadArity) {
  EXPECT_THROW((void)assignment_cost(small_instance(), {0, 1}),
               DimensionMismatch);
}

TEST(CheckFeasibleTest, AcceptsValidAssignment) {
  EXPECT_EQ(check_feasible(small_instance(), {0, 1, 0}), "");
}

TEST(CheckFeasibleTest, DetectsDeadlineViolation) {
  AssignmentInstance inst = small_instance();
  inst.deadline = 1.5;  // GSP 0 with two unit-time tasks busts it
  const std::string msg = check_feasible(inst, {0, 1, 0});
  EXPECT_NE(msg.find("deadline"), std::string::npos);
}

TEST(CheckFeasibleTest, DetectsCoverageViolation) {
  const std::string msg = check_feasible(small_instance(), {0, 0, 0});
  EXPECT_NE(msg.find("coverage"), std::string::npos);
}

TEST(CheckFeasibleTest, CoverageWaivedWhenDisabled) {
  AssignmentInstance inst = small_instance();
  inst.require_all_gsps_used = false;
  EXPECT_EQ(check_feasible(inst, {0, 0, 0}), "");
}

TEST(CheckFeasibleTest, DetectsPaymentViolation) {
  AssignmentInstance inst = small_instance();
  inst.payment = 5.0;
  const std::string msg = check_feasible(inst, {0, 1, 0});  // cost 9
  EXPECT_NE(msg.find("payment"), std::string::npos);
}

TEST(CheckFeasibleTest, DetectsRangeAndArity) {
  const AssignmentInstance inst = small_instance();
  EXPECT_NE(check_feasible(inst, {0, 1}).find("arity"), std::string::npos);
  EXPECT_NE(check_feasible(inst, {0, 1, 9}).find("range"), std::string::npos);
}

TEST(StatusToStringTest, AllValuesNamed) {
  EXPECT_STREQ(to_string(AssignStatus::Optimal), "Optimal");
  EXPECT_STREQ(to_string(AssignStatus::Feasible), "Feasible");
  EXPECT_STREQ(to_string(AssignStatus::Infeasible), "Infeasible");
  EXPECT_STREQ(to_string(AssignStatus::Unknown), "Unknown");
}

}  // namespace
}  // namespace svo::ip
