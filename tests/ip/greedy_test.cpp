#include "ip/greedy.hpp"

#include <gtest/gtest.h>

#include "tests/ip/test_instances.hpp"

namespace svo::ip {
namespace {

TEST(GreedyConstructTest, ProducesCoverageSatisfyingAssignment) {
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const AssignmentInstance inst = testing::random_instance(4, 16, rng);
    const Assignment a =
        greedy_construct(inst, GreedyOptions::Order::RegretDescending);
    ASSERT_FALSE(a.empty());
    // (11)-(13) must hold (payment is not greedy_construct's concern).
    AssignmentInstance no_pay = inst;
    no_pay.payment = 1e18;
    EXPECT_EQ(check_feasible(no_pay, a), "");
  }
}

TEST(GreedyConstructTest, BothOrdersWork) {
  util::Xoshiro256 rng(5);
  const AssignmentInstance inst = testing::random_instance(3, 9, rng);
  EXPECT_FALSE(
      greedy_construct(inst, GreedyOptions::Order::RegretDescending).empty());
  EXPECT_FALSE(
      greedy_construct(inst, GreedyOptions::Order::TimeDescending).empty());
}

TEST(GreedyConstructTest, FailsWhenMoreGspsThanTasks) {
  util::Xoshiro256 rng(7);
  const AssignmentInstance inst = testing::random_instance(5, 3, rng);
  EXPECT_TRUE(
      greedy_construct(inst, GreedyOptions::Order::RegretDescending).empty());
}

TEST(GreedyConstructTest, FailsOnImpossibleDeadline) {
  AssignmentInstance inst;
  inst.cost = linalg::Matrix(2, 4, 1.0);
  inst.time = linalg::Matrix(2, 4, 5.0);
  inst.deadline = 4.0;
  inst.payment = 100.0;
  EXPECT_TRUE(
      greedy_construct(inst, GreedyOptions::Order::RegretDescending).empty());
}

TEST(GreedySolverTest, FeasibleResultRespectsAllConstraints) {
  util::Xoshiro256 rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    const AssignmentInstance inst =
        testing::random_instance(3, 10, rng, /*tight=*/true);
    const AssignmentSolution sol = GreedyAssignmentSolver().solve(inst);
    if (sol.stats.status == AssignStatus::Feasible) {
      EXPECT_EQ(check_feasible(inst, sol.assignment), "");
      EXPECT_NEAR(sol.cost, assignment_cost(inst, sol.assignment), 1e-9);
    } else {
      EXPECT_EQ(sol.stats.status, AssignStatus::Unknown);  // heuristics never prove
    }
  }
}

TEST(GreedySolverTest, NeverClaimsOptimality) {
  util::Xoshiro256 rng(11);
  const AssignmentInstance inst = testing::random_instance(3, 8, rng);
  EXPECT_NE(GreedyAssignmentSolver().solve(inst).stats.status,
            AssignStatus::Optimal);
}

TEST(GreedySolverTest, PolishNeverWorsensCost) {
  util::Xoshiro256 rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    const AssignmentInstance inst = testing::random_instance(4, 12, rng);
    GreedyOptions raw;
    raw.polish = false;
    GreedyOptions polished;
    polished.polish = true;
    const AssignmentSolution a = GreedyAssignmentSolver(raw).solve(inst);
    const AssignmentSolution b = GreedyAssignmentSolver(polished).solve(inst);
    if (a.has_assignment() && b.has_assignment()) {
      EXPECT_LE(b.cost, a.cost + 1e-9);
    }
  }
}

}  // namespace
}  // namespace svo::ip
