#include "ip/local_search.hpp"

#include <gtest/gtest.h>

#include "ip/greedy.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::ip {
namespace {

TEST(LocalSearchTest, NeverIncreasesCostAndKeepsFeasibility) {
  util::Xoshiro256 rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    AssignmentInstance inst = testing::random_instance(4, 14, rng);
    inst.payment = 1e18;  // isolate (11)-(13)
    Assignment a =
        greedy_construct(inst, GreedyOptions::Order::TimeDescending);
    ASSERT_FALSE(a.empty());
    const double before = assignment_cost(inst, a);
    const double after = local_search(inst, a, {});
    EXPECT_LE(after, before + 1e-9);
    EXPECT_NEAR(after, assignment_cost(inst, a), 1e-9);
    EXPECT_EQ(check_feasible(inst, a), "");
  }
}

TEST(LocalSearchTest, FindsObviousRelocation) {
  // Task 1 starts on the expensive GSP with plenty of slack to move.
  AssignmentInstance inst;
  inst.cost = linalg::Matrix::from_rows({{1, 1}, {1, 50}});
  inst.time = linalg::Matrix::from_rows({{1, 1}, {1, 1}});
  inst.deadline = 10.0;
  inst.payment = 1e9;
  inst.require_all_gsps_used = false;
  Assignment a{0, 1};  // cost 51
  const double cost = local_search(inst, a, {});
  EXPECT_DOUBLE_EQ(cost, 2.0);
  EXPECT_EQ(a, (Assignment{0, 0}));
}

TEST(LocalSearchTest, RespectsCoverageWhenMoving) {
  // GSP 1 is uniformly expensive: relocating its lone task to the cheap
  // GSP 0 would improve cost but violate (13), and swapping does not help
  // (both columns cost the same on each GSP). Nothing may change.
  AssignmentInstance inst;
  inst.cost = linalg::Matrix::from_rows({{1, 1}, {50, 50}});
  inst.time = linalg::Matrix::from_rows({{1, 1}, {1, 1}});
  inst.deadline = 10.0;
  inst.payment = 1e9;
  inst.require_all_gsps_used = true;
  Assignment a{0, 1};
  const double cost = local_search(inst, a, {});
  EXPECT_DOUBLE_EQ(cost, 51.0);
  EXPECT_EQ(a, (Assignment{0, 1}));
}

TEST(LocalSearchTest, SwapPassFixesCrossedAssignment) {
  // Crossed assignment where moves are blocked by coverage but a swap
  // strictly improves: c = [[1, 9], [9, 1]].
  AssignmentInstance inst;
  inst.cost = linalg::Matrix::from_rows({{1, 9}, {9, 1}});
  inst.time = linalg::Matrix::from_rows({{1, 1}, {1, 1}});
  inst.deadline = 1.0;  // each GSP fits exactly one task
  inst.payment = 1e9;
  Assignment a{1, 0};  // cost 18
  LocalSearchOptions opts;
  opts.swap_sample_per_task = 0;  // exhaustive
  const double cost = local_search(inst, a, opts);
  EXPECT_DOUBLE_EQ(cost, 2.0);
  EXPECT_EQ(a, (Assignment{0, 1}));
}

TEST(LocalSearchTest, ExhaustiveAndSampledAgreeOnFeasibility) {
  util::Xoshiro256 rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    AssignmentInstance inst = testing::random_instance(3, 10, rng);
    inst.payment = 1e18;
    Assignment a =
        greedy_construct(inst, GreedyOptions::Order::RegretDescending);
    ASSERT_FALSE(a.empty());
    Assignment b = a;
    LocalSearchOptions exhaustive;
    exhaustive.swap_sample_per_task = 0;
    LocalSearchOptions sampled;
    sampled.swap_sample_per_task = 16;
    const double ce = local_search(inst, a, exhaustive);
    const double cs = local_search(inst, b, sampled);
    EXPECT_EQ(check_feasible(inst, a), "");
    EXPECT_EQ(check_feasible(inst, b), "");
    // Exhaustive search explores a superset of swaps per pass; both must
    // be no worse than the common start, and usually close together.
    EXPECT_GT(ce, 0.0);
    EXPECT_GT(cs, 0.0);
  }
}

TEST(LocalSearchTest, RejectsInfeasibleEntry) {
  AssignmentInstance inst;
  inst.cost = linalg::Matrix(2, 2, 1.0);
  inst.time = linalg::Matrix(2, 2, 5.0);
  inst.deadline = 4.0;
  inst.payment = 100.0;
  Assignment a{0, 0};  // busts deadline and coverage
  EXPECT_THROW((void)local_search(inst, a, {}), InvalidArgument);
}

}  // namespace
}  // namespace svo::ip
