/// Tests for ip/warm_start.hpp: the cost-order cache, the
/// removal-repair step, and the warm-started B&B. The load-bearing
/// property throughout: warm hints never change what an exact solve
/// returns — status and cost must match the cold solve bit for bit.
#include "ip/warm_start.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "ip/bnb.hpp"
#include "ip/greedy.hpp"
#include "tests/ip/test_instances.hpp"

namespace svo::ip {
namespace {

/// Restrict `inst` to all rows except `removed`; fills `rows` with the
/// surviving parent indices.
AssignmentInstance drop_row(const AssignmentInstance& inst,
                            std::size_t removed,
                            std::vector<std::size_t>* rows) {
  std::vector<bool> keep(inst.num_gsps(), true);
  keep[removed] = false;
  return inst.restrict_to(keep, rows);
}

TEST(CostOrderCacheTest, MatchesDirectStableSort) {
  util::Xoshiro256 rng(11);
  const AssignmentInstance inst = testing::random_instance(7, 13, rng);
  const CostOrderCache cache(inst);
  ASSERT_EQ(cache.num_gsps(), 7u);
  ASSERT_EQ(cache.num_tasks(), 13u);
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    std::vector<std::size_t> expect(inst.num_gsps());
    std::iota(expect.begin(), expect.end(), std::size_t{0});
    std::stable_sort(expect.begin(), expect.end(),
                     [&](std::size_t a, std::size_t b) {
                       return inst.cost(a, t) < inst.cost(b, t);
                     });
    const std::size_t* got = cache.order(t);
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]) << "task " << t << " rank " << i;
    }
  }
}

TEST(CostOrderCacheTest, FilteredOrderEqualsRestrictedSort) {
  // Filtering the parent order through the surviving rows must equal the
  // restricted instance's own stable sort — the bit-identical-bounds
  // argument the warm B&B relies on.
  util::Xoshiro256 rng(12);
  const AssignmentInstance inst = testing::random_instance(6, 10, rng);
  const CostOrderCache cache(inst);
  for (std::size_t removed = 0; removed < inst.num_gsps(); ++removed) {
    std::vector<std::size_t> rows;
    const AssignmentInstance sub = drop_row(inst, removed, &rows);
    std::vector<std::size_t> child_of(inst.num_gsps(), SIZE_MAX);
    for (std::size_t r = 0; r < rows.size(); ++r) child_of[rows[r]] = r;
    for (std::size_t t = 0; t < sub.num_tasks(); ++t) {
      // Filtered parent order, translated to child rows.
      std::vector<std::size_t> filtered;
      for (std::size_t i = 0; i < cache.num_gsps(); ++i) {
        const std::size_t child = child_of[cache.order(t)[i]];
        if (child != SIZE_MAX) filtered.push_back(child);
      }
      // Direct stable sort on the restricted instance.
      std::vector<std::size_t> direct(sub.num_gsps());
      std::iota(direct.begin(), direct.end(), std::size_t{0});
      std::stable_sort(direct.begin(), direct.end(),
                       [&](std::size_t a, std::size_t b) {
                         return sub.cost(a, t) < sub.cost(b, t);
                       });
      EXPECT_EQ(filtered, direct) << "removed " << removed << " task " << t;
    }
  }
}

TEST(RepairTest, KeepsSurvivorsAndReinsertsOrphans) {
  util::Xoshiro256 rng(21);
  const AssignmentInstance inst = testing::random_instance(5, 12, rng);
  const BnbAssignmentSolver solver;
  const AssignmentSolution parent = solver.solve(inst);
  ASSERT_TRUE(parent.has_assignment());

  const std::size_t removed = parent.assignment[0];  // a used GSP
  std::vector<std::size_t> rows;
  const AssignmentInstance sub = drop_row(inst, removed, &rows);
  const RepairResult r =
      repair_for_removal(sub, rows, parent.assignment, removed);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(check_feasible(sub, r.assignment).empty());
  EXPECT_DOUBLE_EQ(r.cost, assignment_cost(sub, r.assignment));
  EXPECT_GE(r.moves, 1u);  // at least the orphaned task moved
  // Surviving tasks keep their executor (in parent coordinates).
  for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
    if (parent.assignment[t] != removed) {
      EXPECT_EQ(rows[r.assignment[t]], parent.assignment[t]) << "task " << t;
    }
  }
}

TEST(RepairTest, FailsCleanlyWhenNoGspCanAbsorb) {
  // Two GSPs, two tasks, deadline so tight each GSP can hold exactly the
  // task it started with: removing a GSP leaves its task homeless.
  AssignmentInstance inst;
  inst.cost = linalg::Matrix(2, 2, 1.0);
  inst.time = linalg::Matrix(2, 2);
  inst.time(0, 0) = 1.0;
  inst.time(0, 1) = 1.0;
  inst.time(1, 0) = 1.0;
  inst.time(1, 1) = 1.0;
  inst.deadline = 1.0;  // one task per GSP, never two
  inst.payment = 10.0;
  const Assignment parent = {0, 1};
  std::vector<std::size_t> rows;
  const AssignmentInstance sub = drop_row(inst, 1, &rows);
  const RepairResult r = repair_for_removal(sub, rows, parent, 1);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.assignment.empty());
}

TEST(RepairTest, RejectsMappingOntoUnknownRow) {
  util::Xoshiro256 rng(23);
  const AssignmentInstance inst = testing::random_instance(4, 6, rng);
  std::vector<std::size_t> rows;
  const AssignmentInstance sub = drop_row(inst, 3, &rows);
  Assignment parent(inst.num_tasks(), 0);
  parent[2] = 7;  // row that never existed
  const RepairResult r = repair_for_removal(sub, rows, parent, 3);
  EXPECT_FALSE(r.ok);
}

/// Warm and cold exact solves must agree bit for bit across random
/// instances and every removal choice.
TEST(WarmBnbTest, WarmEqualsColdOnEveryRemoval) {
  const BnbAssignmentSolver solver;  // default budget: exact at this size
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Xoshiro256 rng(seed);
    const AssignmentInstance inst =
        testing::random_instance(5, 11, rng, /*tight=*/seed % 2 == 0);
    const AssignmentSolution parent = solver.solve(inst);
    if (!parent.has_assignment()) continue;
    const auto cache = std::make_shared<CostOrderCache>(inst);

    for (std::size_t removed = 0; removed < inst.num_gsps(); ++removed) {
      std::vector<std::size_t> rows;
      const AssignmentInstance sub = drop_row(inst, removed, &rows);

      const AssignmentSolution cold = solver.solve(sub);

      WarmStart warm;
      warm.cost_order = cache;
      warm.rows = rows;
      const RepairResult r =
          repair_for_removal(sub, rows, parent.assignment, removed);
      if (r.ok) {
        warm.incumbent = r.assignment;
        warm.incumbent_cost = r.cost;
        warm.repair_moves = r.moves;
      }
      const AssignmentSolution hot = solver.solve(sub, warm);

      EXPECT_EQ(hot.stats.status, cold.stats.status)
          << "seed " << seed << " removed " << removed;
      if (cold.has_assignment()) {
        EXPECT_EQ(hot.cost, cold.cost)  // bit-identical, not approximate
            << "seed " << seed << " removed " << removed;
        EXPECT_EQ(hot.assignment, cold.assignment);
      }
      EXPECT_LE(hot.stats.nodes, cold.stats.nodes);
    }
  }
}

TEST(WarmBnbTest, ReportsWarmStartTelemetry) {
  util::Xoshiro256 rng(31);
  const AssignmentInstance inst = testing::random_instance(5, 10, rng);
  const BnbAssignmentSolver solver;
  const AssignmentSolution parent = solver.solve(inst);
  ASSERT_TRUE(parent.has_assignment());

  const std::size_t removed = parent.assignment[0];
  std::vector<std::size_t> rows;
  const AssignmentInstance sub = drop_row(inst, removed, &rows);
  const RepairResult r =
      repair_for_removal(sub, rows, parent.assignment, removed);
  ASSERT_TRUE(r.ok);
  WarmStart warm;
  warm.incumbent = r.assignment;
  warm.incumbent_cost = r.cost;
  warm.repair_moves = r.moves;
  const AssignmentSolution hot = solver.solve(sub, warm);
  EXPECT_TRUE(hot.stats.warm_start_used);
  EXPECT_DOUBLE_EQ(hot.stats.incumbent_reused_cost, r.cost);
  EXPECT_EQ(hot.stats.repair_moves, r.moves);

  const AssignmentSolution cold = solver.solve(sub);
  EXPECT_FALSE(cold.stats.warm_start_used);
}

TEST(WarmBnbTest, IncoherentHintsAreIgnoredNotFatal) {
  util::Xoshiro256 rng(37);
  const AssignmentInstance inst = testing::random_instance(4, 8, rng);
  const AssignmentInstance other = testing::random_instance(6, 9, rng);
  const BnbAssignmentSolver solver;
  WarmStart warm;
  warm.cost_order = std::make_shared<CostOrderCache>(other);  // wrong shape
  warm.rows = {0, 1};                                         // wrong arity
  warm.incumbent = Assignment(3, 0);                          // wrong arity
  warm.incumbent_cost = 1.0;
  const AssignmentSolution hot = solver.solve(inst, warm);
  const AssignmentSolution cold = solver.solve(inst);
  EXPECT_EQ(hot.stats.status, cold.stats.status);
  EXPECT_EQ(hot.cost, cold.cost);
  EXPECT_FALSE(hot.stats.warm_start_used);
}

TEST(WarmBnbTest, WarmBudgetCapsReVerificationOnly) {
  // warm_max_nodes caps only warm-hinted solves: cold solves keep the
  // full budget, a capped warm solve truncates but keeps the incumbent,
  // and a cap the exact solve fits inside is invisible.
  // Find an instance whose optimum is strictly cheaper than the
  // time-descending greedy seed: the improving leaf then sits below an
  // unpruned subtree, so a 1-node cap is guaranteed to truncate.
  AssignmentInstance inst;
  Assignment seed;
  double seed_cost = 0.0;
  AssignmentSolution cold;
  bool found = false;
  for (std::uint64_t s = 47; s < 80 && !found; ++s) {
    util::Xoshiro256 rng(s);
    inst = testing::random_instance(5, 12, rng, /*tight=*/true);
    seed = greedy_construct(inst, GreedyOptions::Order::TimeDescending);
    if (seed.empty()) continue;
    seed_cost = assignment_cost(inst, seed);
    if (seed_cost > inst.payment) continue;
    cold = BnbAssignmentSolver().solve(inst);
    found = cold.stats.status == AssignStatus::Optimal &&
            cold.cost < seed_cost - 1e-6;
  }
  ASSERT_TRUE(found);

  BnbOptions opts;
  opts.seed_with_greedy = false;  // the warm incumbent is the only seed
  opts.warm_max_nodes = 1;
  const BnbAssignmentSolver capped(opts);
  // Cold solves ignore the warm cap entirely.
  const AssignmentSolution still_cold = capped.solve(inst);
  EXPECT_EQ(still_cold.stats.status, AssignStatus::Optimal);
  EXPECT_EQ(still_cold.cost, cold.cost);

  WarmStart warm;
  warm.incumbent = seed;
  warm.incumbent_cost = seed_cost;
  const AssignmentSolution hot = capped.solve(inst, warm);
  EXPECT_EQ(hot.stats.status, AssignStatus::Feasible);  // truncated, honest
  EXPECT_LE(hot.stats.nodes, 1u);
  EXPECT_EQ(hot.cost, seed_cost);  // kept the incumbent, found no better
  EXPECT_EQ(hot.assignment, seed);

  // A cap the exact solve fits inside is invisible: bit-identical.
  opts.warm_max_nodes = 0;
  const AssignmentSolution uncapped = BnbAssignmentSolver(opts).solve(inst, warm);
  ASSERT_EQ(uncapped.stats.status, AssignStatus::Optimal);
  opts.warm_max_nodes = uncapped.stats.nodes + 10;
  const AssignmentSolution roomy = BnbAssignmentSolver(opts).solve(inst, warm);
  EXPECT_EQ(roomy.stats.status, AssignStatus::Optimal);
  EXPECT_EQ(roomy.stats.nodes, uncapped.stats.nodes);
  EXPECT_EQ(roomy.cost, cold.cost);
}

TEST(WarmStartTest, BaseSolverDefaultIgnoresHints) {
  util::Xoshiro256 rng(41);
  const AssignmentInstance inst = testing::random_instance(4, 8, rng);
  const GreedyAssignmentSolver greedy;
  const AssignmentSolver& base = greedy;
  WarmStart warm;  // empty hints
  const AssignmentSolution a = base.solve(inst, warm);
  const AssignmentSolution b = base.solve(inst);
  EXPECT_EQ(a.stats.status, b.stats.status);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(SolveStatsTest, AccumulateSumsAndLatches) {
  SolveStats total;
  SolveStats a;
  a.status = AssignStatus::Optimal;
  a.nodes = 10;
  SolveStats b;
  b.status = AssignStatus::Infeasible;
  b.nodes = 5;
  b.warm_start_used = true;
  b.incumbent_reused_cost = 3.5;
  b.repair_moves = 2;
  total.accumulate(a);
  total.accumulate(b);
  EXPECT_EQ(total.status, AssignStatus::Infeasible);  // last status wins
  EXPECT_EQ(total.nodes, 15u);
  EXPECT_TRUE(total.warm_start_used);
  EXPECT_DOUBLE_EQ(total.incumbent_reused_cost, 3.5);
  EXPECT_EQ(total.repair_moves, 2u);
}

}  // namespace
}  // namespace svo::ip
