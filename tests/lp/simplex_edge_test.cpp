/// Pathological LPs: cycling-prone degeneracy (Beale's classic example),
/// zero objectives, huge coefficient spreads — the solver must terminate
/// with the right status on all of them.
#include <gtest/gtest.h>

#include "lp/simplex.hpp"

namespace svo::lp {
namespace {

TEST(SimplexEdgeTest, BealeCyclingExampleTerminatesOptimal) {
  // Beale (1955): Dantzig pricing with naive tie-breaking cycles forever.
  //   min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4
  //   s.t. 0.25 x1 - 60 x2 - 0.04 x3 + 9 x4 <= 0
  //        0.5  x1 - 90 x2 - 0.02 x3 + 3 x4 <= 0
  //        x3 <= 1
  // Optimum: x = (0.04, 0, 1, 0), objective -0.05.
  Problem p(4);
  p.set_objective({-0.75, 150.0, -0.02, 6.0});
  p.add_constraint({0.25, -60.0, -0.04, 9.0}, Sense::LessEqual, 0.0);
  p.add_constraint({0.5, -90.0, -0.02, 3.0}, Sense::LessEqual, 0.0);
  p.add_constraint({0.0, 0.0, 1.0, 0.0}, Sense::LessEqual, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -0.05, 1e-9);
  EXPECT_NEAR(s.x[0], 0.04, 1e-9);
  EXPECT_NEAR(s.x[2], 1.0, 1e-9);
}

TEST(SimplexEdgeTest, ZeroObjectiveIsFeasibilityProblem) {
  Problem p(2);
  p.add_constraint({1.0, 1.0}, Sense::GreaterEqual, 3.0);
  p.add_constraint({1.0, -1.0}, Sense::Equal, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_TRUE(p.is_feasible(s.x));
}

TEST(SimplexEdgeTest, LargeCoefficientSpread) {
  // min x + y s.t. 1e6 x + y >= 1e6, x + 1e-6 y >= 1.
  Problem p(2);
  p.set_objective({1.0, 1.0});
  p.add_constraint({1e6, 1.0}, Sense::GreaterEqual, 1e6);
  p.add_constraint({1.0, 1e-6}, Sense::GreaterEqual, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_TRUE(p.is_feasible(s.x, 1e-4));
  EXPECT_NEAR(s.objective, 1.0, 1e-6);  // x = 1, y = 0
}

TEST(SimplexEdgeTest, EqualityOnlySingleton) {
  Problem p(1);
  p.set_objective({5.0});
  p.add_constraint({2.0}, Sense::Equal, 6.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
  EXPECT_NEAR(s.objective, 15.0, 1e-9);
}

TEST(SimplexEdgeTest, ContradictoryEqualities) {
  Problem p(2);
  p.add_constraint({1.0, 1.0}, Sense::Equal, 1.0);
  p.add_constraint({1.0, 1.0}, Sense::Equal, 2.0);
  EXPECT_EQ(solve(p).status, SolveStatus::Infeasible);
}

TEST(SimplexEdgeTest, UpperBoundTighterThanConstraint) {
  Problem p(1);
  p.set_objective({-1.0});
  p.add_constraint({1.0}, Sense::LessEqual, 100.0);
  p.set_upper_bound(0, 3.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(SimplexEdgeTest, ManyRedundantRows) {
  Problem p(2);
  p.set_objective({-1.0, -2.0});
  for (int i = 0; i < 30; ++i) {
    p.add_constraint({1.0, 1.0}, Sense::LessEqual, 10.0);
  }
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -20.0, 1e-9);  // (0, 10)
}

}  // namespace
}  // namespace svo::lp
