#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace svo::lp {
namespace {

TEST(SimplexTest, SimpleMaximizationAsMinimization) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  min -3x - 2y.
  // Optimum at (2, 2): objective -10.
  Problem p(2);
  p.set_objective({-3.0, -2.0});
  p.add_constraint({1.0, 1.0}, Sense::LessEqual, 4.0);
  p.add_constraint({1.0, 0.0}, Sense::LessEqual, 2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -10.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + 2y s.t. x + y == 3, y >= 1.
  Problem p(2);
  p.set_objective({1.0, 2.0});
  p.add_constraint({1.0, 1.0}, Sense::Equal, 3.0);
  p.add_constraint({0.0, 1.0}, Sense::GreaterEqual, 1.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 1.0, 1e-9);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x <= 1 and x >= 2 cannot both hold.
  Problem p(1);
  p.set_objective({1.0});
  p.add_constraint({1.0}, Sense::LessEqual, 1.0);
  p.add_constraint({1.0}, Sense::GreaterEqual, 2.0);
  EXPECT_EQ(solve(p).status, SolveStatus::Infeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  // min -x with only x >= 0: unbounded below.
  Problem p(1);
  p.set_objective({-1.0});
  p.add_constraint({1.0}, Sense::GreaterEqual, 0.0);
  EXPECT_EQ(solve(p).status, SolveStatus::Unbounded);
}

TEST(SimplexTest, UpperBoundsHonored) {
  Problem p(1);
  p.set_objective({-1.0});  // maximize x
  p.set_upper_bound(0, 7.5);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[0], 7.5, 1e-9);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x <= -2  <=>  x >= 2; min x -> 2.
  Problem p(1);
  p.set_objective({1.0});
  p.add_constraint({-1.0}, Sense::LessEqual, -2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple constraints active at the optimum.
  Problem p(2);
  p.set_objective({-1.0, -1.0});
  p.add_constraint({1.0, 0.0}, Sense::LessEqual, 1.0);
  p.add_constraint({0.0, 1.0}, Sense::LessEqual, 1.0);
  p.add_constraint({1.0, 1.0}, Sense::LessEqual, 2.0);
  p.add_constraint({1.0, 1.0}, Sense::LessEqual, 2.0);  // duplicate row
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-9);
}

TEST(SimplexTest, RedundantEqualityRows) {
  Problem p(2);
  p.set_objective({1.0, 1.0});
  p.add_constraint({1.0, 1.0}, Sense::Equal, 2.0);
  p.add_constraint({2.0, 2.0}, Sense::Equal, 4.0);  // dependent
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(SimplexTest, TransportationLikeProblem) {
  // 2 suppliers x 2 consumers, costs [[4,6],[5,3]], supply {3,4} and
  // demand {5,2} (balanced: 7). Optimum: x11=3 (supplier1->c1),
  // x21=2, x22=2 -> 4*3 + 5*2 + 3*2 = 28.
  Problem p(4);  // x11 x12 x21 x22
  p.set_objective({4.0, 6.0, 5.0, 3.0});
  p.add_constraint({1.0, 1.0, 0.0, 0.0}, Sense::Equal, 3.0);
  p.add_constraint({0.0, 0.0, 1.0, 1.0}, Sense::Equal, 4.0);
  p.add_constraint({1.0, 0.0, 1.0, 0.0}, Sense::Equal, 5.0);
  p.add_constraint({0.0, 1.0, 0.0, 1.0}, Sense::Equal, 2.0);
  const Solution s = solve(p);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 28.0, 1e-9);
}

TEST(SimplexTest, SolutionIsAlwaysFeasible) {
  // Property over random LPs: whenever the solver says Optimal, the point
  // must satisfy every constraint and beat a sample of random feasible
  // points (local optimality evidence).
  util::Xoshiro256 rng(99);
  int optimal_count = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t nv = 2 + rng.index(4);
    const std::size_t nc = 1 + rng.index(4);
    Problem p(nv);
    std::vector<double> obj(nv);
    for (double& c : obj) c = rng.uniform(-5.0, 5.0);
    p.set_objective(obj);
    for (std::size_t i = 0; i < nc; ++i) {
      std::vector<double> row(nv);
      for (double& a : row) a = rng.uniform(0.1, 3.0);  // positive rows
      p.add_constraint(row, Sense::LessEqual, rng.uniform(1.0, 10.0));
    }
    for (std::size_t v = 0; v < nv; ++v) p.set_upper_bound(v, 10.0);
    const Solution s = solve(p);
    ASSERT_NE(s.status, SolveStatus::IterationLimit);
    if (s.status != SolveStatus::Optimal) continue;
    ++optimal_count;
    EXPECT_TRUE(p.is_feasible(s.x));
    // Random feasible points must not beat the reported optimum.
    for (int k = 0; k < 200; ++k) {
      std::vector<double> x(nv);
      for (double& xi : x) xi = rng.uniform(0.0, 1.0);
      // Scale into the feasible region.
      double worst = 1.0;
      for (std::size_t i = 0; i < nc; ++i) {
        const auto& c = p.constraint(i);
        double lhs = 0.0;
        for (std::size_t v = 0; v < nv; ++v) lhs += c.coeffs[v] * x[v];
        if (lhs > c.rhs) worst = std::min(worst, c.rhs / lhs);
      }
      for (double& xi : x) xi *= worst;
      ASSERT_GE(p.objective_value(x), s.objective - 1e-7);
    }
  }
  EXPECT_GT(optimal_count, 25);  // bounded feasible LPs: most are optimal
}

TEST(SimplexTest, IterationLimitReported) {
  Problem p(2);
  p.set_objective({-1.0, -1.0});
  p.add_constraint({1.0, 1.0}, Sense::LessEqual, 4.0);
  SimplexOptions opts;
  opts.max_iterations = 0;
  EXPECT_EQ(solve(p, opts).status, SolveStatus::IterationLimit);
}

}  // namespace
}  // namespace svo::lp
