/// Degenerate and hostile inputs: trust graphs that are malformed
/// (non-finite weights) must be rejected at the boundary, and graphs
/// that are structurally extreme (edgeless rows, disconnected
/// components, singleton coalitions) must still converge instead of
/// hanging or producing NaN scores.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "trust/reputation.hpp"
#include "trust/trust_graph.hpp"

namespace svo::trust {
namespace {

TEST(TrustGraphValidationTest, NonFiniteTrustRejected) {
  TrustGraph g(3);
  EXPECT_THROW(g.set_trust(0, 1, std::numeric_limits<double>::quiet_NaN()),
               InvalidArgument);
  EXPECT_THROW(g.set_trust(0, 1, std::numeric_limits<double>::infinity()),
               InvalidArgument);
  EXPECT_THROW(g.set_trust(0, 1, -std::numeric_limits<double>::infinity()),
               InvalidArgument);
  // A failed set leaves the graph untouched.
  EXPECT_DOUBLE_EQ(g.trust(0, 1), 0.0);
  EXPECT_EQ(g.graph().edge_count(), 0u);
}

TEST(TrustGraphValidationTest, RejectedWriteDoesNotClobberExistingEdge) {
  TrustGraph g(2);
  g.set_trust(0, 1, 0.7);
  EXPECT_THROW(g.set_trust(0, 1, std::numeric_limits<double>::quiet_NaN()),
               InvalidArgument);
  EXPECT_THROW(g.set_trust(0, 1, -2.0), InvalidArgument);
  EXPECT_DOUBLE_EQ(g.trust(0, 1), 0.7);
}

void expect_valid_distribution(const ReputationResult& r) {
  ASSERT_TRUE(r.converged);
  double sum = 0.0;
  for (const double s : r.scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DegenerateGraphTest, AllZeroTrustRowsConverge) {
  // Nobody trusts anybody: every row dangling. The engine must converge
  // to the uniform distribution, not loop or divide by zero.
  TrustGraph g(6);
  const ReputationEngine engine;
  const ReputationResult r = engine.compute(g);
  expect_valid_distribution(r);
  for (const double s : r.scores) EXPECT_NEAR(s, 1.0 / 6.0, 1e-9);
  // Same through the defended path.
  ReputationOptions opts;
  opts.robust.enabled = true;
  const ReputationResult rr = ReputationEngine(opts).compute(g);
  expect_valid_distribution(rr);
}

TEST(DegenerateGraphTest, SingleDanglingRowConverges) {
  TrustGraph g(4);
  g.set_trust(0, 1, 1.0);
  g.set_trust(1, 0, 1.0);
  g.set_trust(2, 0, 0.5);
  // GSP 3 rates nobody and nobody rates it.
  const ReputationEngine engine;
  expect_valid_distribution(engine.compute(g));
}

TEST(DegenerateGraphTest, DisconnectedComponentsConverge) {
  // Two 3-cliques with no edges between them.
  TrustGraph g(6);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) {
        g.set_trust(i, j, 1.0);
        g.set_trust(3 + i, 3 + j, 1.0);
      }
    }
  }
  const ReputationEngine engine;
  const ReputationResult r = engine.compute(g);
  expect_valid_distribution(r);
  // Symmetric components with damping: uniform within and across.
  for (const double s : r.scores) EXPECT_NEAR(s, 1.0 / 6.0, 1e-6);
  // Coalition spanning both components also converges.
  expect_valid_distribution(engine.compute(g, {0, 1, 4, 5}));
  // Defended path over the same structure.
  ReputationOptions opts;
  opts.robust.enabled = true;
  expect_valid_distribution(ReputationEngine(opts).compute(g));
}

TEST(DegenerateGraphTest, SingletonCoalitionConverges) {
  TrustGraph g(5);
  g.set_trust(0, 1, 1.0);
  g.set_trust(1, 2, 3.0);
  const ReputationEngine engine;
  for (std::size_t member = 0; member < 5; ++member) {
    const ReputationResult r = engine.compute(g, {member});
    ASSERT_EQ(r.scores.size(), 1u);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.scores[0], 1.0, 1e-9);
  }
  ReputationOptions opts;
  opts.robust.enabled = true;
  const ReputationResult r = ReputationEngine(opts).compute(g, {2});
  ASSERT_EQ(r.scores.size(), 1u);
  EXPECT_NEAR(r.scores[0], 1.0, 1e-9);
}

TEST(DegenerateGraphTest, ZeroDampingAnnihilationFallsBackToUniform) {
  // With damping 0 a pure one-way chain annihilates the iterate's mass
  // once it drains past the sink; the engine must fall back to uniform
  // and flag non-convergence instead of emitting NaN.
  TrustGraph g(3);
  g.set_trust(0, 1, 1.0);  // 0 -> 1, 1 and 2 rate nobody
  ReputationOptions opts;
  opts.power.damping = 0.0;
  const ReputationEngine engine(opts);
  const ReputationResult r = engine.compute(g);
  for (const double s : r.scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 0.0);
  }
}

}  // namespace
}  // namespace svo::trust
