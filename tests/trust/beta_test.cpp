#include "trust/beta.hpp"

#include <gtest/gtest.h>

#include "trust/reputation.hpp"

namespace svo::trust {
namespace {

TEST(BetaTest, NoEvidenceIsNeutral) {
  const BetaReputationSystem beta(3);
  EXPECT_DOUBLE_EQ(beta.pairwise(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(beta.reputation(2), 0.5);
  EXPECT_DOUBLE_EQ(beta.evidence(2), 0.0);
}

TEST(BetaTest, PosteriorMeanMatchesFormula) {
  BetaReputationSystem beta(2);
  for (int i = 0; i < 8; ++i) beta.record(0, 1, true);
  for (int i = 0; i < 2; ++i) beta.record(0, 1, false);
  EXPECT_DOUBLE_EQ(beta.pairwise(0, 1), 9.0 / 12.0);  // (8+1)/(8+2+2)
  EXPECT_DOUBLE_EQ(beta.evidence(1), 10.0);
}

TEST(BetaTest, GradedOutcomeSplitsEvidence) {
  BetaReputationSystem beta(2);
  beta.record_graded(0, 1, 0.75);
  // r = 0.75, s = 0.25: mean (1.75)/(3) = 0.58333...
  EXPECT_NEAR(beta.pairwise(0, 1), 1.75 / 3.0, 1e-12);
}

TEST(BetaTest, ReputationPoolsObservers) {
  BetaReputationSystem beta(3);
  for (int i = 0; i < 5; ++i) beta.record(0, 2, true);
  for (int i = 0; i < 5; ++i) beta.record(1, 2, false);
  // Pooled: r = 5, s = 5 -> 6/12 = 0.5; each pairwise differs.
  EXPECT_DOUBLE_EQ(beta.reputation(2), 0.5);
  EXPECT_GT(beta.pairwise(0, 2), 0.5);
  EXPECT_LT(beta.pairwise(1, 2), 0.5);
}

TEST(BetaTest, MoreEvidenceMovesEstimateFurther) {
  BetaReputationSystem weak(2);
  weak.record(0, 1, true);
  BetaReputationSystem strong(2);
  for (int i = 0; i < 50; ++i) strong.record(0, 1, true);
  EXPECT_GT(strong.pairwise(0, 1), weak.pairwise(0, 1));
  EXPECT_LT(strong.pairwise(0, 1), 1.0);  // never certain
}

TEST(BetaTest, DiscountForgetsGradually) {
  BetaReputationSystem beta(2);
  for (int i = 0; i < 20; ++i) beta.record(0, 1, false);
  const double before = beta.pairwise(0, 1);
  beta.discount(0.5);
  const double halved = beta.pairwise(0, 1);
  EXPECT_GT(halved, before);  // less negative evidence -> closer to prior
  beta.discount(0.0);
  EXPECT_DOUBLE_EQ(beta.pairwise(0, 1), 0.5);  // history erased
}

TEST(BetaTest, ToTrustGraphOnlyWhereEvidence) {
  BetaReputationSystem beta(3);
  beta.record(0, 1, true);
  beta.record_graded(2, 0, 0.2);
  const TrustGraph g = beta.to_trust_graph();
  EXPECT_DOUBLE_EQ(g.trust(0, 1), beta.pairwise(0, 1));
  EXPECT_DOUBLE_EQ(g.trust(2, 0), beta.pairwise(2, 0));
  EXPECT_DOUBLE_EQ(g.trust(1, 0), 0.0);  // no evidence, no edge
  EXPECT_EQ(g.graph().edge_count(), 2u);
}

TEST(BetaTest, FeedsReputationEngineEndToEnd) {
  // Evidence -> TrustGraph -> eigenvector reputation: the GSP everyone
  // reports good outcomes about must come out on top.
  BetaReputationSystem beta(4);
  for (std::size_t o = 0; o < 4; ++o) {
    for (std::size_t s = 0; s < 4; ++s) {
      if (o == s) continue;
      for (int i = 0; i < 10; ++i) beta.record(o, s, s == 2);
    }
  }
  const ReputationEngine engine;
  const ReputationResult r = engine.compute(beta.to_trust_graph());
  for (std::size_t g = 0; g < 4; ++g) {
    if (g != 2) EXPECT_GT(r.scores[2], r.scores[g]);
  }
}

TEST(BetaTest, Validation) {
  EXPECT_THROW(BetaReputationSystem(0), InvalidArgument);
  BetaReputationSystem beta(2);
  EXPECT_THROW(beta.record(0, 0, true), InvalidArgument);
  EXPECT_THROW(beta.record(0, 5, true), InvalidArgument);
  EXPECT_THROW(beta.record(0, 1, true, 0.0), InvalidArgument);
  EXPECT_THROW(beta.record_graded(0, 1, 1.5), InvalidArgument);
  EXPECT_THROW(beta.discount(1.0), InvalidArgument);
}

}  // namespace
}  // namespace svo::trust
