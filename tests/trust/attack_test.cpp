#include "trust/attack.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::trust {
namespace {

AttackScenario scenario(AttackType type, double fraction, double intensity,
                        std::uint64_t seed) {
  AttackScenario s;
  s.type = type;
  s.attacker_fraction = fraction;
  s.intensity = intensity;
  s.seed = seed;
  return s;
}

bool graphs_identical(const TrustGraph& a, const TrustGraph& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      if (a.trust(i, j) != b.trust(i, j)) return false;  // exact, bit-level
    }
  }
  return true;
}

TEST(AttackScenarioTest, ValidateRejectsBadKnobs) {
  AttackScenario s = scenario(AttackType::Collusion, 0.3, 0.9, 1);
  EXPECT_NO_THROW(s.validate());
  s.attacker_fraction = 1.5;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = scenario(AttackType::Collusion, 0.3, 0.0, 1);
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = scenario(AttackType::Collusion, 0.3, 1.5, 1);
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = scenario(AttackType::OnOff, 0.3, 0.9, 1);
  s.period = 1;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = scenario(AttackType::Whitewashing, 0.3, 0.9, 1);
  s.reentry_interval = 1;
  EXPECT_THROW(s.validate(), InvalidArgument);
  s = scenario(AttackType::Sybil, 0.3, 0.9, 1);
  s.sybils_per_master = 0;
  EXPECT_THROW(s.validate(), InvalidArgument);
  // Empty scenarios skip the knob checks entirely.
  s = scenario(AttackType::None, 0.0, -3.0, 1);
  EXPECT_NO_THROW(s.validate());
}

TEST(AttackScenarioTest, TypeNamesRoundTrip) {
  for (const AttackType t :
       {AttackType::None, AttackType::Badmouthing, AttackType::BallotStuffing,
        AttackType::Collusion, AttackType::OnOff, AttackType::Whitewashing,
        AttackType::Sybil}) {
    EXPECT_EQ(attack_type_from_string(to_string(t)), t);
  }
  EXPECT_THROW((void)attack_type_from_string("nonsense"), InvalidArgument);
}

TEST(AttackInjectorTest, AttackerSetSizeAndOrder) {
  const AttackInjector inj(scenario(AttackType::Collusion, 0.3, 0.9, 7), 20);
  // round(0.3 * 20) = 6 attackers, strictly increasing, all in range.
  ASSERT_EQ(inj.attackers().size(), 6u);
  EXPECT_TRUE(std::is_sorted(inj.attackers().begin(), inj.attackers().end()));
  for (std::size_t i = 1; i < inj.attackers().size(); ++i) {
    EXPECT_LT(inj.attackers()[i - 1], inj.attackers()[i]);
  }
  for (const std::size_t a : inj.attackers()) {
    EXPECT_LT(a, 20u);
    EXPECT_TRUE(inj.is_attacker(a));
  }
  EXPECT_THROW((void)inj.is_attacker(20), InvalidArgument);
}

TEST(AttackInjectorTest, SameSeedSameScenarioIsBitIdentical) {
  const AttackScenario s = scenario(AttackType::Collusion, 0.4, 0.8, 99);
  util::Xoshiro256 rng(5);
  const TrustGraph base = random_trust_graph(16, 0.4, rng);
  const AttackInjector one(s, 16);
  const AttackInjector two(s, 16);
  EXPECT_EQ(one.attackers(), two.attackers());
  for (std::size_t round = 0; round < 6; ++round) {
    TrustGraph ga = base;
    TrustGraph gb = base;
    const AttackRound ra = one.apply(ga, round);
    const AttackRound rb = two.apply(gb, round);
    EXPECT_EQ(ra.active, rb.active);
    EXPECT_EQ(ra.edges_touched, rb.edges_touched);
    EXPECT_EQ(ra.reentered, rb.reentered);
    EXPECT_TRUE(graphs_identical(ga, gb)) << "round " << round;
  }
}

TEST(AttackInjectorTest, DifferentSeedsPickDifferentRings) {
  // Not guaranteed for any single pair, but across several seeds at
  // least one attacker set must differ — otherwise selection ignores
  // the seed.
  const std::vector<std::size_t> first =
      AttackInjector(scenario(AttackType::Collusion, 0.3, 0.9, 1), 30)
          .attackers();
  bool any_differ = false;
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    const AttackInjector inj(scenario(AttackType::Collusion, 0.3, 0.9, seed),
                             30);
    if (inj.attackers() != first) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(AttackInjectorTest, EmptyScenarioIsNoOp) {
  util::Xoshiro256 rng(11);
  const TrustGraph base = random_trust_graph(8, 0.5, rng);
  const AttackInjector inj(AttackScenario{}, 8);
  EXPECT_TRUE(inj.attackers().empty());
  TrustGraph g = base;
  const AttackRound r = inj.apply(g, 0);
  EXPECT_FALSE(r.active);
  EXPECT_EQ(r.edges_touched, 0u);
  EXPECT_TRUE(graphs_identical(g, base));
}

TEST(AttackInjectorTest, BadmouthingOnlyScalesAttackerToHonestEdges) {
  util::Xoshiro256 rng(3);
  const TrustGraph base = random_trust_graph(12, 0.8, rng);
  const AttackInjector inj(scenario(AttackType::Badmouthing, 0.25, 0.5, 2),
                           12);
  TrustGraph g = base;
  const AttackRound r = inj.apply(g, 0);
  EXPECT_TRUE(r.active);
  EXPECT_GT(r.edges_touched, 0u);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      if (i == j) continue;
      const double before = base.trust(i, j);
      const double after = g.trust(i, j);
      if (inj.is_attacker(i) && !inj.is_attacker(j) && before > 0.0) {
        EXPECT_DOUBLE_EQ(after, before * 0.5);
      } else {
        EXPECT_DOUBLE_EQ(after, before);  // everything else untouched
      }
    }
  }
}

TEST(AttackInjectorTest, FullIntensityBadmouthingRemovesEdges) {
  util::Xoshiro256 rng(4);
  const TrustGraph base = random_trust_graph(10, 0.9, rng);
  const AttackInjector inj(scenario(AttackType::Badmouthing, 0.3, 1.0, 5), 10);
  TrustGraph g = base;
  (void)inj.apply(g, 0);
  for (const std::size_t a : inj.attackers()) {
    for (std::size_t j = 0; j < 10; ++j) {
      if (j == a || inj.is_attacker(j)) continue;
      EXPECT_DOUBLE_EQ(g.trust(a, j), 0.0);
    }
  }
}

TEST(AttackInjectorTest, BallotStuffingRaisesRingEdgesToCap) {
  TrustGraph base(10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      if (i != j) base.set_trust(i, j, 0.3);
    }
  }
  base.set_trust(0, 1, 2.0);  // cap = 2.0
  const AttackInjector inj(scenario(AttackType::BallotStuffing, 0.4, 0.9, 8),
                           10);
  TrustGraph g = base;
  (void)inj.apply(g, 0);
  const double expected = 2.0 * 0.9;
  for (const std::size_t a : inj.attackers()) {
    for (const std::size_t b : inj.attackers()) {
      if (a == b) continue;
      EXPECT_GE(g.trust(a, b), std::min(expected, base.trust(a, b)));
      if (base.trust(a, b) < expected) {
        EXPECT_DOUBLE_EQ(g.trust(a, b), expected);
      }
    }
  }
  // Honest rows untouched.
  for (std::size_t i = 0; i < 10; ++i) {
    if (inj.is_attacker(i)) continue;
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(g.trust(i, j), base.trust(i, j));
    }
  }
}

TEST(AttackInjectorTest, OnOffIsDormantOnOffRounds) {
  util::Xoshiro256 rng(9);
  const TrustGraph base = random_trust_graph(12, 0.7, rng);
  AttackScenario s = scenario(AttackType::OnOff, 0.3, 0.9, 3);
  s.period = 4;  // collude on rounds 0,1 of each period; behave on 2,3
  const AttackInjector inj(s, 12);
  for (std::size_t round = 0; round < 8; ++round) {
    TrustGraph g = base;
    const AttackRound r = inj.apply(g, round);
    const bool expect_active = (round % 4) < 2;
    EXPECT_EQ(r.active, expect_active) << "round " << round;
    if (!expect_active) {
      EXPECT_EQ(r.edges_touched, 0u);
      EXPECT_TRUE(graphs_identical(g, base));
    } else {
      EXPECT_GT(r.edges_touched, 0u);
    }
  }
}

TEST(AttackInjectorTest, WhitewashingResetsBothDirectionsAndStaggers) {
  util::Xoshiro256 rng(13);
  const TrustGraph base = random_trust_graph(12, 0.8, rng);
  AttackScenario s = scenario(AttackType::Whitewashing, 0.3, 0.9, 6);
  s.reentry_interval = 4;
  s.reentry_trust = 0.5;
  const AttackInjector inj(s, 12);
  // Round 0 never re-enters (nothing to whitewash yet).
  {
    TrustGraph g = base;
    const AttackRound r = inj.apply(g, 0);
    EXPECT_TRUE(r.reentered.empty());
    EXPECT_TRUE(graphs_identical(g, base));
  }
  std::vector<std::size_t> all_reentered;
  for (std::size_t round = 1; round <= 8; ++round) {
    TrustGraph g = base;
    const AttackRound r = inj.apply(g, round);
    for (const std::size_t a : r.reentered) {
      EXPECT_TRUE(inj.is_attacker(a));
      all_reentered.push_back(a);
      for (std::size_t i = 0; i < 12; ++i) {
        if (i == a) continue;
        EXPECT_DOUBLE_EQ(g.trust(i, a), 0.5);
        EXPECT_DOUBLE_EQ(g.trust(a, i), 0.5);
      }
    }
    // Staggered: never the whole ring at once.
    EXPECT_LT(r.reentered.size(), inj.attackers().size());
  }
  // Over two full intervals, every attacker re-entered at least once.
  std::sort(all_reentered.begin(), all_reentered.end());
  all_reentered.erase(
      std::unique(all_reentered.begin(), all_reentered.end()),
      all_reentered.end());
  EXPECT_EQ(all_reentered, inj.attackers());
}

TEST(AttackInjectorTest, SybilSplitsMastersAndSupporters) {
  AttackScenario s = scenario(AttackType::Sybil, 0.5, 0.9, 21);
  s.sybils_per_master = 3;
  const AttackInjector inj(s, 16);  // 8 attackers -> 2 masters, 6 sybils
  ASSERT_EQ(inj.attackers().size(), 8u);
  ASSERT_EQ(inj.masters().size(), 2u);
  for (const std::size_t mstr : inj.masters()) {
    EXPECT_TRUE(inj.is_attacker(mstr));
  }
  // fresh_identities = all sybil supporters, regardless of round.
  const std::vector<std::size_t> fresh = inj.fresh_identities(0, 3);
  EXPECT_EQ(fresh.size(), 6u);
  EXPECT_TRUE(std::is_sorted(fresh.begin(), fresh.end()));
  for (const std::size_t f : fresh) {
    EXPECT_TRUE(inj.is_attacker(f));
    EXPECT_EQ(std::count(inj.masters().begin(), inj.masters().end(), f), 0);
  }
}

TEST(AttackInjectorTest, SybilConcentratesSupportOnMaster) {
  TrustGraph base(16);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      if (i != j) base.set_trust(i, j, 0.5);
    }
  }
  AttackScenario s = scenario(AttackType::Sybil, 0.5, 1.0, 21);
  s.sybils_per_master = 3;
  const AttackInjector inj(s, 16);
  TrustGraph g = base;
  (void)inj.apply(g, 0);
  // Every sybil's strongest report is its master; honest targets are
  // slandered to zero at full intensity.
  for (const std::size_t a : inj.attackers()) {
    const bool is_master =
        std::count(inj.masters().begin(), inj.masters().end(), a) > 0;
    if (is_master) continue;
    double to_master = 0.0;
    for (const std::size_t mstr : inj.masters()) {
      to_master = std::max(to_master, g.trust(a, mstr));
    }
    EXPECT_GE(to_master, 1.0);  // ballot cap >= 1
    for (std::size_t j = 0; j < 16; ++j) {
      if (j == a || inj.is_attacker(j)) continue;
      EXPECT_DOUBLE_EQ(g.trust(a, j), 0.0);
    }
  }
}

TEST(AttackInjectorTest, WhitewashingFreshIdentitiesAgeOut) {
  AttackScenario s = scenario(AttackType::Whitewashing, 0.3, 0.9, 6);
  s.reentry_interval = 4;
  const AttackInjector inj(s, 12);
  util::Xoshiro256 rng(1);
  TrustGraph g = random_trust_graph(12, 0.8, rng);
  for (std::size_t round = 1; round <= 8; ++round) {
    TrustGraph copy = g;
    const AttackRound r = inj.apply(copy, round);
    const std::vector<std::size_t> fresh = inj.fresh_identities(round, 1);
    // With a 1-round quarantine, fresh == exactly this round's re-entries.
    EXPECT_EQ(fresh, r.reentered) << "round " << round;
    // A longer quarantine only grows the set.
    const std::vector<std::size_t> fresh3 = inj.fresh_identities(round, 3);
    for (const std::size_t f : fresh) {
      EXPECT_NE(std::find(fresh3.begin(), fresh3.end(), f), fresh3.end());
    }
  }
}

TEST(AttackInjectorTest, ApplyRejectsWrongGraphSize) {
  const AttackInjector inj(scenario(AttackType::Collusion, 0.3, 0.9, 1), 10);
  TrustGraph wrong(8);
  EXPECT_THROW((void)inj.apply(wrong, 0), InvalidArgument);
}

}  // namespace
}  // namespace svo::trust
