#include "trust/hierarchy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace svo::trust {
namespace {

ReputationHierarchy two_org_fixture(
    HierarchyAggregation agg = HierarchyAggregation::WeightedMean) {
  ReputationHierarchy h(2, agg);
  h.add_entity(0, {"cluster-a", 0.9, 3.0});
  h.add_entity(0, {"cluster-b", 0.6, 1.0});
  h.add_entity(1, {"cluster-c", 0.4, 2.0});
  return h;
}

TEST(HierarchyTest, WeightedMeanAggregation) {
  const ReputationHierarchy h = two_org_fixture();
  // Org 0: (3*0.9 + 1*0.6) / 4 = 0.825.
  EXPECT_NEAR(h.organization_reputation(0), 0.825, 1e-12);
  EXPECT_NEAR(h.organization_reputation(1), 0.4, 1e-12);
}

TEST(HierarchyTest, MinimumAggregation) {
  const ReputationHierarchy h = two_org_fixture(HierarchyAggregation::Minimum);
  EXPECT_NEAR(h.organization_reputation(0), 0.6, 1e-12);
}

TEST(HierarchyTest, GeometricAggregation) {
  const ReputationHierarchy h =
      two_org_fixture(HierarchyAggregation::Geometric);
  const double expected =
      std::exp((3.0 * std::log(0.9) + 1.0 * std::log(0.6)) / 4.0);
  EXPECT_NEAR(h.organization_reputation(0), expected, 1e-12);
}

TEST(HierarchyTest, GeometricZeroAnnihilates) {
  ReputationHierarchy h(1, HierarchyAggregation::Geometric);
  h.add_entity(0, {"good", 0.9, 1.0});
  h.add_entity(0, {"dead", 0.0, 1.0});
  EXPECT_DOUBLE_EQ(h.organization_reputation(0), 0.0);
}

TEST(HierarchyTest, EmptyOrganizationScoresZero) {
  ReputationHierarchy h(2);
  h.add_entity(0, {"only", 0.7, 1.0});
  EXPECT_DOUBLE_EQ(h.organization_reputation(1), 0.0);
}

TEST(HierarchyTest, EntityOutcomeEwma) {
  ReputationHierarchy h(1);
  h.add_entity(0, {"r", 0.5, 1.0});
  h.record_entity_outcome(0, 0, 1.0, 0.4);
  EXPECT_NEAR(h.entities(0)[0].reputation, 0.7, 1e-12);
  h.record_entity_outcome(0, 0, 0.0, 0.5);
  EXPECT_NEAR(h.entities(0)[0].reputation, 0.35, 1e-12);
}

TEST(HierarchyTest, VoReputationWeightsByCapacity) {
  const ReputationHierarchy h = two_org_fixture();
  // VO {0,1}: org 0 (score 0.825, weight 4), org 1 (0.4, weight 2):
  // (4*0.825 + 2*0.4) / 6 = 0.68333...
  EXPECT_NEAR(h.vo_reputation(game::Coalition::of({0, 1})),
              (4.0 * 0.825 + 2.0 * 0.4) / 6.0, 1e-12);
  // Singleton VO = the organization itself.
  EXPECT_NEAR(h.vo_reputation(game::Coalition::of({0})), 0.825, 1e-12);
  // Empty VO scores zero.
  EXPECT_DOUBLE_EQ(h.vo_reputation(game::Coalition()), 0.0);
}

TEST(HierarchyTest, ValidatesArguments) {
  EXPECT_THROW(ReputationHierarchy(0), InvalidArgument);
  ReputationHierarchy h(1);
  EXPECT_THROW(h.add_entity(5, {"x", 0.5, 1.0}), InvalidArgument);
  EXPECT_THROW(h.add_entity(0, {"x", 1.5, 1.0}), InvalidArgument);
  EXPECT_THROW(h.add_entity(0, {"x", 0.5, 0.0}), InvalidArgument);
  h.add_entity(0, {"ok", 0.5, 1.0});
  EXPECT_THROW(h.record_entity_outcome(0, 9, 0.5), InvalidArgument);
  EXPECT_THROW(h.record_entity_outcome(0, 0, 2.0), InvalidArgument);
  EXPECT_THROW((void)h.organization_reputation(9), InvalidArgument);
  EXPECT_THROW((void)h.vo_reputation(game::Coalition::of({9})),
               InvalidArgument);
}

}  // namespace
}  // namespace svo::trust
