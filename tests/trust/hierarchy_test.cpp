#include "trust/hierarchy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace svo::trust {
namespace {

ReputationHierarchy two_org_fixture(
    HierarchyAggregation agg = HierarchyAggregation::WeightedMean) {
  ReputationHierarchy h(2, agg);
  h.add_entity(0, {"cluster-a", 0.9, 3.0});
  h.add_entity(0, {"cluster-b", 0.6, 1.0});
  h.add_entity(1, {"cluster-c", 0.4, 2.0});
  return h;
}

TEST(HierarchyTest, WeightedMeanAggregation) {
  const ReputationHierarchy h = two_org_fixture();
  // Org 0: (3*0.9 + 1*0.6) / 4 = 0.825.
  EXPECT_NEAR(h.organization_reputation(0), 0.825, 1e-12);
  EXPECT_NEAR(h.organization_reputation(1), 0.4, 1e-12);
}

TEST(HierarchyTest, MinimumAggregation) {
  const ReputationHierarchy h = two_org_fixture(HierarchyAggregation::Minimum);
  EXPECT_NEAR(h.organization_reputation(0), 0.6, 1e-12);
}

TEST(HierarchyTest, GeometricAggregation) {
  const ReputationHierarchy h =
      two_org_fixture(HierarchyAggregation::Geometric);
  const double expected =
      std::exp((3.0 * std::log(0.9) + 1.0 * std::log(0.6)) / 4.0);
  EXPECT_NEAR(h.organization_reputation(0), expected, 1e-12);
}

TEST(HierarchyTest, GeometricZeroAnnihilates) {
  ReputationHierarchy h(1, HierarchyAggregation::Geometric);
  h.add_entity(0, {"good", 0.9, 1.0});
  h.add_entity(0, {"dead", 0.0, 1.0});
  EXPECT_DOUBLE_EQ(h.organization_reputation(0), 0.0);
}

TEST(HierarchyTest, EmptyOrganizationScoresZero) {
  ReputationHierarchy h(2);
  h.add_entity(0, {"only", 0.7, 1.0});
  EXPECT_DOUBLE_EQ(h.organization_reputation(1), 0.0);
}

TEST(HierarchyTest, EntityOutcomeEwma) {
  ReputationHierarchy h(1);
  h.add_entity(0, {"r", 0.5, 1.0});
  h.record_entity_outcome(0, 0, 1.0, 0.4);
  EXPECT_NEAR(h.entities(0)[0].reputation, 0.7, 1e-12);
  h.record_entity_outcome(0, 0, 0.0, 0.5);
  EXPECT_NEAR(h.entities(0)[0].reputation, 0.35, 1e-12);
}

TEST(HierarchyTest, VoReputationWeightsByCapacity) {
  const ReputationHierarchy h = two_org_fixture();
  // VO {0,1}: org 0 (score 0.825, weight 4), org 1 (0.4, weight 2):
  // (4*0.825 + 2*0.4) / 6 = 0.68333...
  EXPECT_NEAR(h.vo_reputation(game::Coalition::of({0, 1})),
              (4.0 * 0.825 + 2.0 * 0.4) / 6.0, 1e-12);
  // Singleton VO = the organization itself.
  EXPECT_NEAR(h.vo_reputation(game::Coalition::of({0})), 0.825, 1e-12);
  // Empty VO scores zero.
  EXPECT_DOUBLE_EQ(h.vo_reputation(game::Coalition()), 0.0);
}

TEST(HierarchyTest, ValidatesArguments) {
  EXPECT_THROW(ReputationHierarchy(0), InvalidArgument);
  ReputationHierarchy h(1);
  EXPECT_THROW(h.add_entity(5, {"x", 0.5, 1.0}), InvalidArgument);
  EXPECT_THROW(h.add_entity(0, {"x", 1.5, 1.0}), InvalidArgument);
  EXPECT_THROW(h.add_entity(0, {"x", 0.5, 0.0}), InvalidArgument);
  h.add_entity(0, {"ok", 0.5, 1.0});
  EXPECT_THROW(h.record_entity_outcome(0, 9, 0.5), InvalidArgument);
  EXPECT_THROW(h.record_entity_outcome(0, 0, 2.0), InvalidArgument);
  EXPECT_THROW((void)h.organization_reputation(9), InvalidArgument);
  EXPECT_THROW((void)h.vo_reputation(game::Coalition::of({9})),
               InvalidArgument);
}

TEST(ClusteredReputationTest, ThreeClustersMultiplyLevels) {
  // Clusters {0,1}, {2,3}, {4,5}. Clusters 0 and 2 both send all their
  // inter-cluster trust to cluster 1, which splits its own evenly — so
  // cluster 1 must outrank both at level 2 (row normalization makes a
  // 2-cluster rollup trivially uniform; three are needed for asymmetry).
  TrustGraph g(6);
  for (const std::size_t base : {0u, 2u, 4u}) {
    g.set_trust(base, base + 1, 0.5);
    g.set_trust(base + 1, base, 0.5);
  }
  g.set_trust(0, 2, 0.9);   // cluster 0 -> cluster 1
  g.set_trust(4, 2, 0.9);   // cluster 2 -> cluster 1
  g.set_trust(2, 0, 0.45);  // cluster 1 -> cluster 0
  g.set_trust(2, 4, 0.45);  // cluster 1 -> cluster 2
  const ClusteredResult r = clustered_reputation(g, {0, 0, 1, 1, 2, 2});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.clusters, 3u);
  ASSERT_EQ(r.scores.size(), 6u);
  ASSERT_EQ(r.cluster_scores.size(), 3u);
  EXPECT_GT(r.cluster_scores[1], r.cluster_scores[0]);
  EXPECT_GT(r.cluster_scores[1], r.cluster_scores[2]);
  double sum = 0.0;
  for (const double s : r.scores) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);  // renormalized
}

TEST(ClusteredReputationTest, EmptyClustersAreLegalAndScoreZero) {
  TrustGraph g(3);
  g.set_trust(0, 1, 0.5);
  g.set_trust(1, 0, 0.5);
  // Cluster ids {0, 0, 3}: clusters 1 and 2 are empty.
  const ClusteredResult r = clustered_reputation(g, {0, 0, 3});
  EXPECT_EQ(r.clusters, 4u);
  ASSERT_EQ(r.cluster_scores.size(), 4u);
  EXPECT_GT(r.cluster_scores[0], 0.0);
  // Empty clusters hold no members, so no GSP score draws on them; all
  // mass lives on the populated clusters.
  double sum = 0.0;
  for (const double s : r.scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ClusteredReputationTest, SingleNodeGraph) {
  TrustGraph g(1);
  const ClusteredResult r = clustered_reputation(g, {0});
  ASSERT_EQ(r.scores.size(), 1u);
  EXPECT_NEAR(r.scores[0], 1.0, 1e-12);
  EXPECT_TRUE(r.converged);
}

TEST(ClusteredReputationTest, DisconnectedComponentsUseDanglingConvention) {
  // Two islands in separate clusters, no inter-cluster trust at all: the
  // rollup graph is empty, both clusters are dangling, and the level-2
  // solve still converges (uniform over clusters).
  TrustGraph g(4);
  g.set_trust(0, 1, 0.7);
  g.set_trust(1, 0, 0.7);
  g.set_trust(2, 3, 0.7);
  g.set_trust(3, 2, 0.7);
  const ClusteredResult r = clustered_reputation(g, {0, 0, 1, 1});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.cluster_scores[0], r.cluster_scores[1], 1e-9);
  EXPECT_NEAR(r.scores[0], 0.25, 1e-6);
  EXPECT_NEAR(r.scores[3], 0.25, 1e-6);
}

TEST(ClusteredReputationTest, OneClusterMatchesFlatEngine) {
  // A single cluster collapses to the flat computation up to the final
  // renormalization (the lone cluster scores 1 at level 2).
  util::Xoshiro256 rng(17);
  const TrustGraph g = random_trust_graph(12, 0.35, rng);
  const ClusteredResult r =
      clustered_reputation(g, std::vector<std::size_t>(12, 0));
  const ReputationResult flat = ReputationEngine().compute(g);
  ASSERT_EQ(r.scores.size(), flat.scores.size());
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(r.scores[i], flat.scores[i], 1e-12);
  }
}

TEST(ClusteredReputationTest, ValidatesArguments) {
  TrustGraph g(3);
  EXPECT_THROW((void)clustered_reputation(g, {0, 0}), InvalidArgument);
  ReputationCache cache;
  ReputationOptions with_cache;
  with_cache.cache = &cache;
  EXPECT_THROW((void)clustered_reputation(g, {0, 0, 0}, with_cache),
               InvalidArgument);
  ReputationOptions bad;
  bad.power.epsilon = 0.0;
  EXPECT_THROW((void)clustered_reputation(g, {0, 0, 0}, bad),
               InvalidArgument);
}

}  // namespace
}  // namespace svo::trust
