#include "trust/decay.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace svo::trust {
namespace {

TEST(DecayTest, ExponentialLaw) {
  DecayingTrustGraph g(2, DecayLaw::Exponential, 0.5);
  g.set_trust(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(g.trust(0, 1), 1.0);
  g.advance(2.0);
  EXPECT_NEAR(g.trust(0, 1), std::exp(-1.0), 1e-12);
}

TEST(DecayTest, LinearLawHitsZero) {
  DecayingTrustGraph g(2, DecayLaw::Linear, 0.25);
  g.set_trust(0, 1, 0.8);
  g.advance(2.0);
  EXPECT_NEAR(g.trust(0, 1), 0.8 * 0.5, 1e-12);
  g.advance(3.0);  // age 5 > 1/lambda = 4
  EXPECT_DOUBLE_EQ(g.trust(0, 1), 0.0);
}

TEST(DecayTest, RefreshResetsAge) {
  DecayingTrustGraph g(2, DecayLaw::Exponential, 1.0);
  g.set_trust(0, 1, 1.0);
  g.advance(3.0);
  g.set_trust(0, 1, 1.0);  // refresh at t = 3
  g.advance(1.0);
  EXPECT_NEAR(g.trust(0, 1), std::exp(-1.0), 1e-12);
}

TEST(DecayTest, InteractionUsesDecayedBase) {
  DecayingTrustGraph g(2, DecayLaw::Exponential, std::log(2.0));
  g.set_trust(0, 1, 0.8);
  g.advance(1.0);  // halves to 0.4
  g.record_interaction(0, 1, 1.0, 0.5);
  EXPECT_NEAR(g.trust(0, 1), 0.5 * 0.4 + 0.5 * 1.0, 1e-12);
}

TEST(DecayTest, SnapshotDropsDeadEdges) {
  DecayingTrustGraph g(3, DecayLaw::Linear, 1.0);
  g.set_trust(0, 1, 0.5);
  g.set_trust(1, 2, 0.5);
  g.advance(0.5);
  g.set_trust(1, 2, 0.5);  // refreshed; 0->1 keeps aging
  g.advance(0.6);          // 0->1 age 1.1 -> dead; 1->2 age 0.6 -> alive
  const TrustGraph snap = g.snapshot();
  EXPECT_DOUBLE_EQ(snap.trust(0, 1), 0.0);
  EXPECT_NEAR(snap.trust(1, 2), 0.5 * 0.4, 1e-12);
  EXPECT_EQ(snap.graph().edge_count(), 1u);
}

TEST(DecayTest, DeadEdgeFractionGrowsToOne) {
  util::Xoshiro256 rng(5);
  DecayingTrustGraph g(random_trust_graph(16, 0.3, rng),
                       DecayLaw::Exponential, 1.0);
  EXPECT_DOUBLE_EQ(g.dead_edge_fraction(), 0.0);
  g.advance(5.0);
  const double mid = g.dead_edge_fraction(1e-2);
  g.advance(20.0);
  const double late = g.dead_edge_fraction(1e-2);
  EXPECT_GE(late, mid);
  EXPECT_DOUBLE_EQ(late, 1.0);  // everything eventually dies: the critique
}

TEST(DecayTest, ZeroLambdaNeverDecays) {
  DecayingTrustGraph g(2, DecayLaw::Exponential, 0.0);
  g.set_trust(0, 1, 0.7);
  g.advance(1000.0);
  EXPECT_DOUBLE_EQ(g.trust(0, 1), 0.7);
}

TEST(DecayTest, ValidatesArguments) {
  EXPECT_THROW(DecayingTrustGraph(2, DecayLaw::Linear, -1.0),
               InvalidArgument);
  DecayingTrustGraph g(2, DecayLaw::Linear, 0.1);
  EXPECT_THROW(g.advance(-1.0), InvalidArgument);
  EXPECT_THROW(g.record_interaction(0, 1, 2.0), InvalidArgument);
}

}  // namespace
}  // namespace svo::trust
