#include "trust/reputation.hpp"

#include <gtest/gtest.h>

namespace svo::trust {
namespace {

TEST(ReputationEngineTest, SymmetricRingIsUniform) {
  TrustGraph g(4);
  for (std::size_t i = 0; i < 4; ++i) {
    g.set_trust(i, (i + 1) % 4, 1.0);
    g.set_trust(i, (i + 3) % 4, 1.0);
  }
  const ReputationEngine engine;
  const ReputationResult r = engine.compute(g);
  ASSERT_TRUE(r.converged);
  for (const double s : r.scores) EXPECT_NEAR(s, 0.25, 1e-6);
  EXPECT_NEAR(r.average, 0.25, 1e-9);
}

TEST(ReputationEngineTest, HighlyTrustedGspScoresHighest) {
  // Everyone trusts G0 much more than the others.
  TrustGraph g(4);
  for (std::size_t i = 1; i < 4; ++i) {
    g.set_trust(i, 0, 10.0);
    g.set_trust(i, (i % 3) + 1 == i ? ((i + 1) % 4) : ((i % 3) + 1), 1.0);
  }
  g.set_trust(0, 1, 1.0);
  const ReputationEngine engine;
  const ReputationResult r = engine.compute(g);
  ASSERT_TRUE(r.converged);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_GT(r.scores[0], r.scores[i]);
}

TEST(ReputationEngineTest, ScoresSumToOne) {
  util::Xoshiro256 rng(5);
  const TrustGraph g = random_trust_graph(16, 0.1, rng);
  const ReputationEngine engine;
  const ReputationResult r = engine.compute(g);
  double sum = 0.0;
  for (const double s : r.scores) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(r.average, 1.0 / 16.0, 1e-9);
}

TEST(ReputationEngineTest, CoalitionRestrictionChangesScores) {
  // G2 is the only member trusting G1; once G2 is outside the coalition,
  // G1's standing must drop relative to G0.
  TrustGraph g(3);
  g.set_trust(0, 1, 1.0);
  g.set_trust(1, 0, 5.0);
  g.set_trust(2, 1, 10.0);
  const ReputationEngine engine;
  const ReputationResult full = engine.compute(g);
  const ReputationResult pair = engine.compute(g, {0, 1});
  ASSERT_EQ(pair.scores.size(), 2u);
  // Within the pair, mutual normalized trust is symmetric -> equal-ish;
  // in the full graph G1 receives extra mass from G2.
  const double rel_full = full.scores[1] / full.scores[0];
  const double rel_pair = pair.scores[1] / pair.scores[0];
  EXPECT_GT(rel_full, rel_pair);
}

TEST(ReputationEngineTest, EmptyCoalitionIsEmptyResult) {
  TrustGraph g(3);
  const ReputationEngine engine;
  const ReputationResult r = engine.compute(g, {});
  EXPECT_TRUE(r.scores.empty());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.average, 0.0);
}

TEST(ReputationEngineTest, SingletonCoalition) {
  TrustGraph g(3);
  g.set_trust(0, 1, 1.0);
  const ReputationEngine engine;
  const ReputationResult r = engine.compute(g, {1});
  ASSERT_EQ(r.scores.size(), 1u);
  EXPECT_NEAR(r.scores[0], 1.0, 1e-9);
}

TEST(ReputationEngineTest, EdgelessGraphIsUniform) {
  TrustGraph g(5);
  const ReputationEngine engine;
  const ReputationResult r = engine.compute(g);
  for (const double s : r.scores) EXPECT_NEAR(s, 0.2, 1e-9);
}

TEST(ReputationEngineTest, PaperLiteralModeDampingZero) {
  // damping = 0 reproduces Algorithm 2 exactly (modulo normalization).
  TrustGraph g(3);
  g.set_trust(0, 1, 1.0);
  g.set_trust(1, 2, 1.0);
  g.set_trust(2, 0, 1.0);
  g.set_trust(0, 2, 1.0);
  ReputationOptions opts;
  opts.power.damping = 0.0;
  const ReputationEngine engine(opts);
  const ReputationResult r = engine.compute(g);
  ASSERT_TRUE(r.converged);
  double sum = 0.0;
  for (const double s : r.scores) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AverageReputationTest, MatchesEq7) {
  EXPECT_DOUBLE_EQ(average_reputation({0.2, 0.4}), 0.3);
  EXPECT_DOUBLE_EQ(average_reputation({}), 0.0);
}

}  // namespace
}  // namespace svo::trust
