/// The storage-polymorphism contract of DESIGN.md §4i: the CSR trust
/// backend is an implementation detail — dense and sparse engines
/// produce bit-identical reputations (standard, coalition and robust),
/// bit-identical mechanism outcomes (VO, cost, RNG probe), and the
/// attack-resilience properties survive the backend switch. Plus the
/// TrustGraph identity/version/delta bookkeeping and the incremental
/// ReputationCache the streaming plane builds on.
#include "trust/reputation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/mechanism.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"
#include "trust/attack.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::trust {
namespace {

ReputationOptions with_backend(TrustBackend backend) {
  ReputationOptions o;
  o.backend = backend;
  return o;
}

void expect_bitwise_equal(const ReputationResult& a, const ReputationResult& b,
                          const char* label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.average, b.average);
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_EQ(a.scores[i], b.scores[i]) << "score " << i;
  }
}

TEST(TrustGraphSparseTest, NormalizedSparseMatchesDenseBitwise) {
  util::Xoshiro256 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 2 + rng.index(50);
    const TrustGraph g = random_trust_graph(n, rng.uniform(0.05, 0.5), rng);
    const linalg::Matrix dense = g.normalized_matrix();
    const linalg::Matrix sparse = g.normalized_sparse().to_dense();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(sparse(i, j), dense(i, j)) << n << " " << i << " " << j;
      }
    }
    // Coalition restriction too.
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.6)) members.push_back(i);
    }
    const linalg::Matrix dc = g.normalized_matrix(members);
    const linalg::Matrix sc = g.normalized_sparse(members).to_dense();
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = 0; j < members.size(); ++j) {
        EXPECT_EQ(sc(i, j), dc(i, j));
      }
    }
  }
}

TEST(TrustGraphSparseTest, RawSparseHoldsUnnormalizedTrust) {
  TrustGraph g(4);
  g.set_trust(0, 1, 2.5);
  g.set_trust(0, 2, 7.5);
  g.set_trust(3, 0, 0.25);
  const linalg::SparseMatrix raw = g.raw_sparse();
  EXPECT_EQ(raw.at(0, 1), 2.5);
  EXPECT_EQ(raw.at(0, 2), 7.5);
  EXPECT_EQ(raw.at(3, 0), 0.25);
  EXPECT_EQ(raw.nnz(), 3u);
  // Coalition restriction uses local indices; edges touching the
  // excluded member 3 are dropped.
  const linalg::SparseMatrix coalition = g.raw_sparse({0, 1, 2});
  EXPECT_EQ(coalition.at(0, 1), 2.5);
  EXPECT_EQ(coalition.at(0, 2), 7.5);
  EXPECT_EQ(coalition.nnz(), 2u);
}

/// Dense and sparse engines agree bitwise on every path: full graph,
/// coalition, and the robust (defended) pipeline, across thread counts.
TEST(DenseSparseEquivalenceTest, AllPathsBitIdentical) {
  util::Xoshiro256 rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.index(48);
    const TrustGraph g = random_trust_graph(n, rng.uniform(0.08, 0.4), rng);

    ReputationOptions dense_o = with_backend(TrustBackend::Dense);
    ReputationOptions sparse_o = with_backend(TrustBackend::Sparse);
    sparse_o.power.threads = 3;  // pooled path must agree too

    expect_bitwise_equal(ReputationEngine(dense_o).compute(g),
                         ReputationEngine(sparse_o).compute(g), "full graph");

    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.bernoulli(0.5)) members.push_back(i);
    }
    expect_bitwise_equal(ReputationEngine(dense_o).compute(g, members),
                         ReputationEngine(sparse_o).compute(g, members),
                         "coalition");

    for (const RowAggregation agg :
         {RowAggregation::Sum, RowAggregation::TrimmedMean,
          RowAggregation::MedianOfMeans}) {
      dense_o.robust.enabled = sparse_o.robust.enabled = true;
      dense_o.robust.aggregation = sparse_o.robust.aggregation = agg;
      dense_o.robust.fresh = sparse_o.robust.fresh = {0, n / 2};
      expect_bitwise_equal(ReputationEngine(dense_o).compute(g),
                           ReputationEngine(sparse_o).compute(g),
                           "robust full graph");
      expect_bitwise_equal(ReputationEngine(dense_o).compute(g, members),
                           ReputationEngine(sparse_o).compute(g, members),
                           "robust coalition");
    }
  }
}

/// Auto backend: at or below the threshold the dense path runs; above it
/// the sparse path runs; either way the scores are the same bits.
TEST(DenseSparseEquivalenceTest, AutoThresholdIsInvisible) {
  util::Xoshiro256 rng(31337);
  const TrustGraph g = random_trust_graph(40, 0.2, rng);
  ReputationOptions below = with_backend(TrustBackend::Auto);
  below.sparse_threshold = 64;  // 40 <= 64: dense
  ReputationOptions above = with_backend(TrustBackend::Auto);
  above.sparse_threshold = 8;  // 40 > 8: sparse
  expect_bitwise_equal(ReputationEngine(below).compute(g),
                       ReputationEngine(above).compute(g), "auto threshold");
}

TEST(TrustGraphVersionTest, VersionCountsEffectiveMutationsOnly) {
  TrustGraph g(4);
  EXPECT_EQ(g.version(), 0u);
  g.set_trust(0, 1, 0.5);
  EXPECT_EQ(g.version(), 1u);
  g.set_trust(0, 1, 0.5);  // same value: no-op
  EXPECT_EQ(g.version(), 1u);
  g.set_trust(0, 1, 0.75);
  EXPECT_EQ(g.version(), 2u);
  g.set_trust(2, 3, 0.0);  // removing an absent edge: no-op
  EXPECT_EQ(g.version(), 2u);
  g.set_trust(0, 1, 0.0);  // removal counts
  EXPECT_EQ(g.version(), 3u);

  const auto delta = g.edges_changed_since(1);
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(delta->size(), 2u);
  EXPECT_EQ((*delta)[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ((*delta)[1], (std::pair<std::size_t, std::size_t>{0, 1}));
  // Asking at (or past) the current version yields an empty delta.
  EXPECT_TRUE(g.edges_changed_since(3).has_value());
  EXPECT_TRUE(g.edges_changed_since(3)->empty());
  EXPECT_TRUE(g.edges_changed_since(99)->empty());
}

TEST(TrustGraphVersionTest, BoundedLogReportsWindowLoss) {
  TrustGraph g(3);
  // Alternate values so every set_trust is effective: > 1024 changes
  // overflow the bounded log and drop its oldest half.
  for (int k = 0; k < 1500; ++k) {
    g.set_trust(0, 1, 0.25 + 0.5 * (k % 2));
  }
  EXPECT_EQ(g.version(), 1500u);
  EXPECT_FALSE(g.edges_changed_since(0).has_value());  // window lost
  const auto recent = g.edges_changed_since(1499);
  ASSERT_TRUE(recent.has_value());
  EXPECT_EQ(recent->size(), 1u);
}

TEST(TrustGraphVersionTest, CopyGetsFreshUidMoveStealsIt) {
  TrustGraph g(3);
  g.set_trust(0, 1, 0.5);
  const std::uint64_t uid = g.uid();

  const TrustGraph copy(g);
  EXPECT_NE(copy.uid(), uid);          // fresh identity
  EXPECT_EQ(copy.version(), g.version());
  EXPECT_EQ(copy.trust(0, 1), 0.5);

  TrustGraph moved(std::move(g));
  EXPECT_EQ(moved.uid(), uid);  // identity travels with the content
  EXPECT_EQ(moved.trust(0, 1), 0.5);
  EXPECT_NE(g.uid(), uid);  // NOLINT(bugprone-use-after-move): reset contract
  EXPECT_EQ(g.size(), 0u);
}

TEST(ReputationCacheTest, ExactHitIsBitIdenticalAndSkipsRecompute) {
  util::Xoshiro256 rng(808);
  const TrustGraph g = random_sparse_trust_graph(300, 6, rng);
  ReputationCache cache;
  ReputationOptions o = with_backend(TrustBackend::Sparse);
  o.cache = &cache;
  const ReputationEngine engine(o);

  const ReputationResult first = engine.compute(g);
  EXPECT_EQ(cache.stats().cold_starts, 1u);
  const ReputationResult second = engine.compute(g);
  EXPECT_EQ(cache.stats().exact_hits, 1u);
  expect_bitwise_equal(first, second, "exact hit");

  // And identical to a cache-less engine: the cache is invisible.
  ReputationOptions plain = with_backend(TrustBackend::Sparse);
  expect_bitwise_equal(ReputationEngine(plain).compute(g), first,
                       "cacheless equivalence");
}

TEST(ReputationCacheTest, SmallDeltaWarmStartsLargeDeltaColdStarts) {
  util::Xoshiro256 rng(606);
  TrustGraph g = random_sparse_trust_graph(2000, 10, rng);
  ReputationCache cache;
  ReputationOptions o;  // Auto resolves sparse at n=2000
  o.cache = &cache;
  o.warm_max_delta = 16;
  const ReputationEngine engine(o);

  const ReputationResult cold = engine.compute(g);
  ASSERT_TRUE(cold.converged);

  // Perturb a handful of edges: warm start, fewer iterations, same
  // fixed point within tolerance.
  for (std::size_t k = 0; k < 8; ++k) {
    g.set_trust(k, k + 1, 0.9);
  }
  const ReputationResult warm = engine.compute(g);
  EXPECT_EQ(cache.stats().warm_starts, 1u);
  EXPECT_LT(warm.iterations, cold.iterations);
  EXPECT_GT(cache.stats().iterations_saved, 0u);
  double drift = 0.0;
  for (std::size_t i = 0; i < warm.scores.size(); ++i) {
    drift += std::abs(warm.scores[i] - cold.scores[i]);
  }
  EXPECT_LT(drift, 0.05);  // 8 edges out of ~20k barely move the vector

  // A delta past warm_max_delta cold-starts.
  for (std::size_t k = 0; k < 40; ++k) {
    g.set_trust(100 + k, 200 + k, 0.5);
  }
  (void)engine.compute(g);
  EXPECT_EQ(cache.stats().cold_starts, 2u);
}

TEST(ReputationCacheTest, OptionsChangeAndForeignGraphMiss) {
  util::Xoshiro256 rng(123);
  const TrustGraph g = random_sparse_trust_graph(200, 5, rng);
  const TrustGraph other = random_sparse_trust_graph(200, 5, rng);
  ReputationCache cache;
  ReputationOptions o = with_backend(TrustBackend::Sparse);
  o.cache = &cache;
  (void)ReputationEngine(o).compute(g);
  // Different graph object: the uid mismatch forces a cold start.
  (void)ReputationEngine(o).compute(other);
  EXPECT_EQ(cache.stats().cold_starts, 2u);
  EXPECT_EQ(cache.stats().exact_hits, 0u);
  // Changed power options: fingerprint mismatch, cold again.
  o.power.epsilon = 1e-6;
  (void)ReputationEngine(o).compute(other);
  EXPECT_EQ(cache.stats().cold_starts, 3u);

  cache.clear();
  EXPECT_EQ(cache.stats().cold_starts, 0u);
}

TEST(ReputationCacheTest, RobustPipelineRejectsCache) {
  ReputationCache cache;
  ReputationOptions o;
  o.cache = &cache;
  o.robust.enabled = true;
  const TrustGraph g(4);
  EXPECT_THROW((void)ReputationEngine(o).compute(g), InvalidArgument);
}

/// Mechanism-level acceptance: forcing the sparse backend through the
/// whole TVOF loop yields a bit-identical VO, cost, journal and RNG
/// probe — the backend cannot leak into mechanism outcomes.
TEST(DenseSparseEquivalenceTest, MechanismOutcomesBitIdentical) {
  const ip::BnbAssignmentSolver solver;
  for (const std::uint64_t seed : {5u, 29u, 71u}) {
    util::Xoshiro256 setup(seed);
    const ip::AssignmentInstance instance =
        ip::testing::random_instance(8, 16, setup);
    const TrustGraph trust = random_trust_graph(8, 0.4, setup);

    core::MechanismConfig dense_cfg;
    dense_cfg.reputation.backend = TrustBackend::Dense;
    core::MechanismConfig sparse_cfg;
    sparse_cfg.reputation.backend = TrustBackend::Sparse;
    const core::TvofMechanism dense_mech(solver, dense_cfg);
    const core::TvofMechanism sparse_mech(solver, sparse_cfg);

    util::Xoshiro256 rng_dense(seed * 17 + 1);
    util::Xoshiro256 rng_sparse(seed * 17 + 1);
    const core::MechanismResult d =
        dense_mech.run(core::FormationRequest{instance, trust, rng_dense});
    const core::MechanismResult s =
        sparse_mech.run(core::FormationRequest{instance, trust, rng_sparse});

    EXPECT_EQ(s.success, d.success);
    EXPECT_EQ(s.selected.bits(), d.selected.bits());
    EXPECT_EQ(s.mapping, d.mapping);
    EXPECT_EQ(s.cost, d.cost);
    EXPECT_EQ(s.value, d.value);
    ASSERT_EQ(s.global_reputation.size(), d.global_reputation.size());
    for (std::size_t i = 0; i < d.global_reputation.size(); ++i) {
      EXPECT_EQ(s.global_reputation[i], d.global_reputation[i]);
    }
    ASSERT_EQ(s.journal.size(), d.journal.size());
    for (std::size_t i = 0; i < d.journal.size(); ++i) {
      EXPECT_EQ(s.journal[i].coalition.bits(), d.journal[i].coalition.bits());
      EXPECT_EQ(s.journal[i].cost, d.journal[i].cost);
      EXPECT_EQ(s.journal[i].removed_gsp, d.journal[i].removed_gsp);
    }
    // Both consumed the RNG identically (probe the next draw).
    EXPECT_EQ(rng_dense(), rng_sparse());
  }
}

/// The PR 3 attack harness must hold on the sparse path: attacks are
/// injected identically, and the defended engine scores the attacked
/// graph bit-identically on either backend — so every resilience
/// property proven dense transfers verbatim.
TEST(DenseSparseEquivalenceTest, AttackHarnessTransfersToSparseBackend) {
  for (const AttackType type :
       {AttackType::Badmouthing, AttackType::BallotStuffing,
        AttackType::Collusion, AttackType::Sybil}) {
    SCOPED_TRACE(static_cast<int>(type));
    util::Xoshiro256 rng(2718);
    TrustGraph g = random_trust_graph(24, 0.3, rng);
    AttackScenario s;
    s.type = type;
    s.attacker_fraction = 0.25;
    s.intensity = 0.9;
    s.seed = 99;
    const AttackInjector injector(s, 24);
    (void)injector.apply(g, 0);

    ReputationOptions dense_o = with_backend(TrustBackend::Dense);
    ReputationOptions sparse_o = with_backend(TrustBackend::Sparse);
    dense_o.robust.enabled = sparse_o.robust.enabled = true;
    dense_o.robust.fresh = sparse_o.robust.fresh =
        injector.fresh_identities(0, 2);
    expect_bitwise_equal(ReputationEngine(dense_o).compute(g),
                         ReputationEngine(sparse_o).compute(g),
                         "defended attacked graph");
  }
}

TEST(RandomSparseTrustGraphTest, ProducesBoundedDegreePositiveWeights) {
  util::Xoshiro256 rng(1);
  const TrustGraph g = random_sparse_trust_graph(500, 7, rng);
  EXPECT_EQ(g.size(), 500u);
  EXPECT_GT(g.graph().edge_count(), 0u);
  std::size_t max_deg = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    max_deg = std::max(max_deg, g.graph().out_degree(i));
    for (const graph::Edge& e : g.graph().out_edges(i)) {
      EXPECT_GT(e.weight, 0.0);
      EXPECT_NE(e.to, i);
    }
  }
  EXPECT_LE(max_deg, 7u);
  EXPECT_THROW((void)random_sparse_trust_graph(1, 3, rng), InvalidArgument);
  EXPECT_THROW((void)random_sparse_trust_graph(5, 0, rng), InvalidArgument);
}

}  // namespace
}  // namespace svo::trust
