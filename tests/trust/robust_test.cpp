#include "trust/robust.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "trust/attack.hpp"
#include "trust/reputation.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::trust {
namespace {

/// Random graph where every GSP rates at least one other (no dangling
/// rows), so literal and neutral-robust operators agree bit for bit even
/// with damping > 0 (the dangling-mass term is the one place their
/// floating-point grouping differs).
TrustGraph no_dangling_graph(std::size_t m, util::Xoshiro256& rng) {
  TrustGraph g(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i != j && rng.uniform(0.0, 1.0) < 0.6) {
        g.set_trust(i, j, rng.uniform(0.05, 1.0));
      }
    }
    const std::size_t fallback = (i + 1) % m;
    if (g.trust(i, fallback) == 0.0) g.set_trust(i, fallback, 0.5);
  }
  return g;
}

void expect_scores_identical(const ReputationResult& a,
                             const ReputationResult& b) {
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    EXPECT_EQ(a.scores[i], b.scores[i]) << "score " << i;  // exact
  }
  EXPECT_EQ(a.average, b.average);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

TEST(RobustOptionsTest, ValidateRejectsBadKnobs) {
  RobustOptions o;
  EXPECT_NO_THROW(o.validate());
  o.credibility_strength = -1.0;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = RobustOptions{};
  o.trim_fraction = 0.5;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = RobustOptions{};
  o.mom_buckets = 0;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o = RobustOptions{};
  o.quarantine_prior = 0.0;
  EXPECT_THROW(o.validate(), InvalidArgument);
  o.quarantine_prior = 1.5;
  EXPECT_THROW(o.validate(), InvalidArgument);
}

TEST(RobustEquivalenceTest, DefensesOffIsBitIdenticalToLiteral) {
  // The ISSUE's hard requirement: with robust.enabled == false the
  // engine must produce the exact literal pipeline output no matter how
  // the other defense knobs are set.
  util::Xoshiro256 rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const TrustGraph g = random_trust_graph(12, 0.3, rng);
    const ReputationEngine literal;  // default options, robust absent
    ReputationOptions opts;
    opts.robust.enabled = false;
    opts.robust.credibility_strength = 42.0;
    opts.robust.aggregation = RowAggregation::MedianOfMeans;
    opts.robust.quarantine_prior = 0.01;
    opts.robust.fresh = {0, 3, 7};
    const ReputationEngine off(opts);
    expect_scores_identical(literal.compute(g), off.compute(g));
    const std::vector<std::size_t> coalition = {0, 2, 3, 5, 9, 11};
    expect_scores_identical(literal.compute(g, coalition),
                            off.compute(g, coalition));
    // And both must equal the raw linalg kernel on the same matrix.
    const linalg::PowerMethodResult pm =
        linalg::power_method(g.normalized_matrix(), {});
    const ReputationResult r = off.compute(g);
    ASSERT_EQ(r.scores.size(), pm.eigenvector.size());
    for (std::size_t i = 0; i < r.scores.size(); ++i) {
      EXPECT_EQ(r.scores[i], pm.eigenvector[i]);
    }
  }
}

TEST(RobustEquivalenceTest, NeutralDefensesMatchLiteralBitwise) {
  // enabled = true but every layer neutralized (no credibility, plain
  // Sum, nothing quarantined): the robust operator must reproduce the
  // literal fixed point exactly on dangling-free graphs.
  util::Xoshiro256 rng(23);
  ReputationOptions opts;
  opts.robust.enabled = true;
  opts.robust.credibility_weighting = false;
  opts.robust.aggregation = RowAggregation::Sum;
  opts.robust.fresh.clear();
  const ReputationEngine robust_engine(opts);
  const ReputationEngine literal;
  for (int trial = 0; trial < 5; ++trial) {
    const TrustGraph g = no_dangling_graph(10, rng);
    expect_scores_identical(literal.compute(g), robust_engine.compute(g));
    const std::vector<std::size_t> coalition = {1, 2, 4, 6, 7, 9};
    // Coalition restriction can reintroduce dangling rows; this one
    // cannot be avoided in general, so compare with damping 0 where the
    // groupings coincide exactly.
    ReputationOptions zero = opts;
    zero.power.damping = 0.0;
    ReputationOptions zero_literal;
    zero_literal.power.damping = 0.0;
    expect_scores_identical(
        ReputationEngine(zero_literal).compute(g, coalition),
        ReputationEngine(zero).compute(g, coalition));
  }
}

TEST(RobustPowerMethodTest, UnitWeightsSumMatchesLinalgKernel) {
  util::Xoshiro256 rng(31);
  const TrustGraph g = no_dangling_graph(8, rng);
  const linalg::Matrix a = g.normalized_matrix();
  const linalg::PowerMethodOptions power;
  const linalg::PowerMethodResult lit = linalg::power_method(a, power);
  const linalg::PowerMethodResult rob = robust_power_method(
      a, std::vector<double>(8, 1.0), power, RowAggregation::Sum, 0.2, 3);
  ASSERT_EQ(lit.eigenvector.size(), rob.eigenvector.size());
  for (std::size_t i = 0; i < lit.eigenvector.size(); ++i) {
    EXPECT_EQ(lit.eigenvector[i], rob.eigenvector[i]);
  }
  EXPECT_EQ(lit.iterations, rob.iterations);
  EXPECT_EQ(lit.converged, rob.converged);
}

TEST(RobustPowerMethodTest, ValidatesInputs) {
  util::Xoshiro256 rng(1);
  const TrustGraph g = no_dangling_graph(4, rng);
  const linalg::Matrix a = g.normalized_matrix();
  const linalg::PowerMethodOptions power;
  // Wrong weight count.
  EXPECT_THROW((void)robust_power_method(a, std::vector<double>(3, 1.0),
                                         power, RowAggregation::Sum, 0.2, 3),
               InvalidArgument);
  // Out-of-range weight.
  EXPECT_THROW((void)robust_power_method(a, std::vector<double>(4, 1.5),
                                         power, RowAggregation::Sum, 0.2, 3),
               InvalidArgument);
  EXPECT_THROW((void)robust_power_method(a, std::vector<double>(4, 0.0),
                                         power, RowAggregation::Sum, 0.2, 3),
               InvalidArgument);
  // Bad trim fraction / bucket count.
  EXPECT_THROW((void)robust_power_method(a, std::vector<double>(4, 1.0),
                                         power, RowAggregation::TrimmedMean,
                                         0.7, 3),
               InvalidArgument);
  EXPECT_THROW((void)robust_power_method(a, std::vector<double>(4, 1.0),
                                         power, RowAggregation::MedianOfMeans,
                                         0.2, 0),
               InvalidArgument);
}

TEST(ConsensusOpinionsTest, MedianOfClampedReports) {
  TrustGraph g(4);
  g.set_trust(0, 3, 0.2);
  g.set_trust(1, 3, 0.4);
  g.set_trust(2, 3, 5.0);  // clamps to 1.0
  const std::vector<std::size_t> members = {0, 1, 2, 3};
  const std::vector<double> c = consensus_opinions(g, members);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c[3], 0.4);  // median of {0.2, 0.4, 1.0}
  // Nobody rates members 0-2: consensus undefined.
  EXPECT_TRUE(std::isnan(c[0]));
  EXPECT_TRUE(std::isnan(c[1]));
  EXPECT_TRUE(std::isnan(c[2]));
}

TEST(RaterCredibilityTest, DeviantRaterLosesWeight) {
  // Three honest raters agree member 4 is ~0.8; the slanderer reports
  // 0.05 and must end up with strictly less credibility.
  TrustGraph g(5);
  g.set_trust(0, 4, 0.8);
  g.set_trust(1, 4, 0.8);
  g.set_trust(2, 4, 0.8);
  g.set_trust(3, 4, 0.05);
  const std::vector<std::size_t> members = {0, 1, 2, 3, 4};
  const std::vector<double> w = rater_credibility(g, members, 6.0);
  ASSERT_EQ(w.size(), 5u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(w[i], w[3]);
    EXPECT_NEAR(w[i], 1.0, 1e-9);  // zero deviation from consensus
  }
  EXPECT_LT(w[3], 0.1);  // exp(-6 * 0.75) ~= 0.011
  EXPECT_DOUBLE_EQ(w[4], 1.0);  // rates nobody: keeps full weight
  // strength = 0 neutralizes the layer entirely.
  for (const double v : rater_credibility(g, members, 0.0)) {
    EXPECT_DOUBLE_EQ(v, 1.0);
  }
}

TEST(QuarantineTest, FreshIdentityIsDemoted) {
  util::Xoshiro256 rng(7);
  const TrustGraph g = no_dangling_graph(8, rng);
  ReputationOptions base;
  base.robust.enabled = true;
  base.robust.credibility_weighting = false;
  base.robust.aggregation = RowAggregation::Sum;
  ReputationOptions quarantined = base;
  quarantined.robust.quarantine_prior = 0.1;
  quarantined.robust.fresh = {2};
  const ReputationResult plain = ReputationEngine(base).compute(g);
  const ReputationResult q = ReputationEngine(quarantined).compute(g);
  ASSERT_EQ(q.scores.size(), 8u);
  EXPECT_LT(q.scores[2], plain.scores[2]);
  double sum = 0.0;
  for (const double s : q.scores) {
    EXPECT_GE(s, 0.0);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);  // renormalized after demotion
  // Fresh ids outside the coalition are ignored, not an error.
  ReputationOptions outside = quarantined;
  outside.robust.fresh = {7};
  const std::vector<std::size_t> coalition = {0, 1, 2, 3};
  EXPECT_NO_THROW(
      (void)ReputationEngine(outside).compute(g, coalition));
}

TEST(RankCorruptionTest, EndpointsAndTies) {
  const std::vector<double> ref = {0.4, 0.3, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(rank_corruption(ref, ref), 0.0);
  EXPECT_DOUBLE_EQ(rank_corruption(ref, {0.1, 0.2, 0.3, 0.4}), 1.0);
  // Ties in the reference carry no order: nothing to corrupt.
  EXPECT_DOUBLE_EQ(rank_corruption({0.5, 0.5}, {0.9, 0.1}), 0.0);
  // A pair collapsed to a tie in `other` counts as a full inversion.
  EXPECT_DOUBLE_EQ(rank_corruption({0.6, 0.4}, {0.5, 0.5}), 1.0);
  // One of six ordered pairs inverted.
  EXPECT_NEAR(rank_corruption(ref, {0.4, 0.3, 0.1, 0.2}), 1.0 / 6.0, 1e-12);
  EXPECT_THROW((void)rank_corruption({1.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_DOUBLE_EQ(rank_corruption({}, {}), 0.0);
}

TEST(RobustDefenseTest, CollusionRingDemotedRelativeToLiteral) {
  // The headline property: under a ballot-stuffing + badmouthing ring,
  // the defended engine's ranking stays closer to the honest ranking
  // than the literal engine's does.
  util::Xoshiro256 rng(2026);
  const std::size_t m = 12;
  TrustGraph honest(m);
  // Informative honest graph: everyone roughly agrees on a quality
  // gradient (GSP id / m), with small noise.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      const double quality = 0.15 + 0.8 * static_cast<double>(j) /
                                        static_cast<double>(m);
      honest.set_trust(i, j, quality + rng.uniform(-0.05, 0.05));
    }
  }
  AttackScenario s;
  s.type = AttackType::Collusion;
  s.attacker_fraction = 0.3;
  s.intensity = 0.9;
  s.seed = 5;
  const AttackInjector inj(s, m);
  TrustGraph attacked = honest;
  (void)inj.apply(attacked, 0);

  const ReputationEngine literal;
  ReputationOptions defended;
  defended.robust.enabled = true;
  const ReputationEngine robust_engine(defended);

  const std::vector<double> truth = literal.compute(honest).scores;
  const double literal_corruption =
      rank_corruption(truth, literal.compute(attacked).scores);
  const double robust_corruption =
      rank_corruption(truth, robust_engine.compute(attacked).scores);
  EXPECT_LT(robust_corruption, literal_corruption);
  EXPECT_GT(literal_corruption, 0.2);  // the attack actually bites
}

}  // namespace
}  // namespace svo::trust
