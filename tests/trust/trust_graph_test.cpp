#include "trust/trust_graph.hpp"

#include <gtest/gtest.h>

namespace svo::trust {
namespace {

TEST(TrustGraphTest, SetAndGetTrust) {
  TrustGraph g(3);
  g.set_trust(0, 1, 0.8);
  EXPECT_DOUBLE_EQ(g.trust(0, 1), 0.8);
  EXPECT_DOUBLE_EQ(g.trust(1, 0), 0.0);  // asymmetric
}

TEST(TrustGraphTest, ZeroTrustRemovesEdge) {
  TrustGraph g(2);
  g.set_trust(0, 1, 0.5);
  g.set_trust(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(g.trust(0, 1), 0.0);
  EXPECT_EQ(g.graph().edge_count(), 0u);
}

TEST(TrustGraphTest, SelfTrustRejected) {
  TrustGraph g(2);
  EXPECT_THROW(g.set_trust(1, 1, 0.5), InvalidArgument);
}

TEST(TrustGraphTest, NegativeTrustRejected) {
  TrustGraph g(2);
  EXPECT_THROW(g.set_trust(0, 1, -0.1), InvalidArgument);
}

TEST(TrustGraphTest, NormalizedMatrixRowsSumToOneOrZero) {
  TrustGraph g(3);
  g.set_trust(0, 1, 2.0);
  g.set_trust(0, 2, 6.0);
  g.set_trust(1, 0, 1.0);
  const linalg::Matrix a = g.normalized_matrix();
  EXPECT_DOUBLE_EQ(a(0, 1), 0.25);  // eq. (1)
  EXPECT_DOUBLE_EQ(a(0, 2), 0.75);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  // GSP 2 trusts nobody: all-zero row.
  for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(a(2, j), 0.0);
}

TEST(TrustGraphTest, CoalitionNormalizationExcludesOutsiders) {
  // G0 trusts G1 (1.0) and G2 (3.0). Restricted to {G0, G1}, the trust
  // toward the outsider G2 must vanish and a_01 renormalizes to 1.
  TrustGraph g(3);
  g.set_trust(0, 1, 1.0);
  g.set_trust(0, 2, 3.0);
  g.set_trust(1, 0, 2.0);
  const linalg::Matrix a = g.normalized_matrix({0, 1});
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
}

TEST(TrustGraphTest, CoalitionMembersMustBeSortedUnique) {
  TrustGraph g(3);
  EXPECT_THROW((void)g.normalized_matrix({1, 0}), InvalidArgument);
  EXPECT_THROW((void)g.normalized_matrix({0, 0}), InvalidArgument);
  EXPECT_THROW((void)g.normalized_matrix({0, 7}), InvalidArgument);
}

TEST(TrustGraphTest, RecordInteractionEwma) {
  TrustGraph g(2);
  g.set_trust(0, 1, 0.5);
  g.record_interaction(0, 1, 1.0, 0.4);
  EXPECT_NEAR(g.trust(0, 1), 0.7, 1e-12);
  g.record_interaction(0, 1, 0.0, 0.5);
  EXPECT_NEAR(g.trust(0, 1), 0.35, 1e-12);
}

TEST(TrustGraphTest, RecordInteractionCreatesTrustFromScratch) {
  TrustGraph g(2);
  g.record_interaction(0, 1, 1.0, 0.3);
  EXPECT_NEAR(g.trust(0, 1), 0.3, 1e-12);
}

TEST(TrustGraphTest, RecordInteractionValidatesArgs) {
  TrustGraph g(2);
  EXPECT_THROW(g.record_interaction(0, 1, 1.5), InvalidArgument);
  EXPECT_THROW(g.record_interaction(0, 1, 0.5, 0.0), InvalidArgument);
}

TEST(RandomTrustGraphTest, SizeAndDeterminism) {
  util::Xoshiro256 a(3);
  util::Xoshiro256 b(3);
  const TrustGraph ga = random_trust_graph(16, 0.1, a);
  const TrustGraph gb = random_trust_graph(16, 0.1, b);
  EXPECT_EQ(ga.size(), 16u);
  EXPECT_EQ(ga.graph().edge_count(), gb.graph().edge_count());
}

}  // namespace
}  // namespace svo::trust
