#include "trust/propagation.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace svo::trust {
namespace {

/// 0 -> 1 -> 2 chain plus a weak direct 0 -> 2 edge.
TrustGraph chain_with_shortcut() {
  TrustGraph g(3);
  g.set_trust(0, 1, 0.9);
  g.set_trust(1, 2, 0.8);
  g.set_trust(0, 2, 0.1);
  return g;
}

TEST(PropagationTest, ProductBestPathBeatsWeakDirectEdge) {
  const TrustGraph g = chain_with_shortcut();
  PropagationOptions opts;  // Product + BestPath
  const auto t = propagate_trust(g, 0, 2, opts);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.9 * 0.8, 1e-12);  // indirect path wins over 0.1
}

TEST(PropagationTest, MinimumConcatenation) {
  const TrustGraph g = chain_with_shortcut();
  PropagationOptions opts;
  opts.concatenation = Concatenation::Minimum;
  const auto t = propagate_trust(g, 0, 2, opts);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.8, 1e-12);  // weakest link of the strong path
}

TEST(PropagationTest, ProbabilisticOrCombinesPaths) {
  const TrustGraph g = chain_with_shortcut();
  PropagationOptions opts;
  opts.aggregation = Aggregation::ProbabilisticOr;
  const auto t = propagate_trust(g, 0, 2, opts);
  ASSERT_TRUE(t.has_value());
  // Two simple paths: direct (0.1) and via 1 (0.72).
  EXPECT_NEAR(*t, 1.0 - (1.0 - 0.1) * (1.0 - 0.72), 1e-12);
}

TEST(PropagationTest, HopLimitCutsLongPaths) {
  TrustGraph g(4);
  g.set_trust(0, 1, 1.0);
  g.set_trust(1, 2, 1.0);
  g.set_trust(2, 3, 1.0);
  PropagationOptions opts;
  opts.max_hops = 2;
  EXPECT_FALSE(propagate_trust(g, 0, 3, opts).has_value());
  opts.max_hops = 3;
  const auto t = propagate_trust(g, 0, 3, opts);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 1.0, 1e-12);
}

TEST(PropagationTest, NoPathGivesNullopt) {
  TrustGraph g(3);
  g.set_trust(0, 1, 0.5);
  EXPECT_FALSE(propagate_trust(g, 1, 0, {}).has_value());
  EXPECT_FALSE(propagate_trust(g, 2, 1, {}).has_value());
}

TEST(PropagationTest, WeightsAboveOneClamped) {
  TrustGraph g(3);
  g.set_trust(0, 1, 5.0);  // raw trust can exceed 1
  g.set_trust(1, 2, 0.5);
  const auto t = propagate_trust(g, 0, 2, {});
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 1.0 * 0.5, 1e-12);
}

TEST(PropagationTest, CyclesDoNotInflateTrust) {
  // 0 <-> 1 cycle plus 1 -> 2: the cycle must not let the product-based
  // DP diverge or a DFS loop forever.
  TrustGraph g(3);
  g.set_trust(0, 1, 0.9);
  g.set_trust(1, 0, 0.9);
  g.set_trust(1, 2, 0.5);
  PropagationOptions best;
  best.max_hops = 6;
  const auto t1 = propagate_trust(g, 0, 2, best);
  ASSERT_TRUE(t1.has_value());
  EXPECT_NEAR(*t1, 0.9 * 0.5, 1e-12);
  PropagationOptions por;
  por.aggregation = Aggregation::ProbabilisticOr;
  por.max_hops = 6;
  const auto t2 = propagate_trust(g, 0, 2, por);
  ASSERT_TRUE(t2.has_value());
  EXPECT_NEAR(*t2, 0.45, 1e-12);  // only one *simple* path exists
}

TEST(PropagationTest, ValidatesArguments) {
  TrustGraph g(2);
  EXPECT_THROW((void)propagate_trust(g, 0, 0, {}), InvalidArgument);
  EXPECT_THROW((void)propagate_trust(g, 0, 5, {}), InvalidArgument);
  PropagationOptions bad;
  bad.max_hops = 0;
  EXPECT_THROW((void)propagate_trust(g, 0, 1, bad), InvalidArgument);
}

TEST(PropagatedMatrixTest, MatchesPairwiseQueries) {
  TrustGraph g(4);
  g.set_trust(0, 1, 0.7);
  g.set_trust(1, 2, 0.6);
  g.set_trust(2, 3, 0.9);
  g.set_trust(3, 0, 0.4);
  for (const Aggregation agg :
       {Aggregation::BestPath, Aggregation::ProbabilisticOr}) {
    PropagationOptions opts;
    opts.aggregation = agg;
    const linalg::Matrix m = propagated_matrix(g, opts);
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_DOUBLE_EQ(m(s, s), 0.0);
      for (std::size_t t = 0; t < 4; ++t) {
        if (s == t) continue;
        const auto q = propagate_trust(g, s, t, opts);
        EXPECT_DOUBLE_EQ(m(s, t), q.value_or(0.0));
      }
    }
  }
}

/// The CSR twin is bit-equal to the dense propagation matrix — same
/// simple-path enumeration order, same arithmetic — across aggregation
/// modes, concatenation modes and hop limits.
TEST(PropagatedSparseTest, ToDenseEqualsPropagatedMatrixBitwise) {
  util::Xoshiro256 rng(7331);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 2 + rng.index(10);
    const TrustGraph g = random_trust_graph(n, rng.uniform(0.1, 0.5), rng);
    for (const Aggregation agg :
         {Aggregation::BestPath, Aggregation::ProbabilisticOr}) {
      for (const Concatenation cat :
           {Concatenation::Product, Concatenation::Minimum}) {
        for (const std::size_t hops : {std::size_t{1}, std::size_t{3}}) {
          PropagationOptions opts;
          opts.aggregation = agg;
          opts.concatenation = cat;
          opts.max_hops = hops;
          const linalg::Matrix dense = propagated_matrix(g, opts);
          const linalg::Matrix sparse = propagated_sparse(g, opts).to_dense();
          for (std::size_t s = 0; s < n; ++s) {
            for (std::size_t t = 0; t < n; ++t) {
              EXPECT_EQ(sparse(s, t), dense(s, t))
                  << "n=" << n << " agg=" << static_cast<int>(agg)
                  << " cat=" << static_cast<int>(cat) << " hops=" << hops
                  << " (" << s << "," << t << ")";
            }
          }
        }
      }
    }
  }
}

TEST(PropagatedSparseTest, EdgeCases) {
  // Empty graph and single node: no paths, empty CSR.
  PropagationOptions por;
  por.aggregation = Aggregation::ProbabilisticOr;
  EXPECT_EQ(propagated_sparse(TrustGraph(0), por).nnz(), 0u);
  EXPECT_EQ(propagated_sparse(TrustGraph(1), por).nnz(), 0u);

  // Disconnected components never reach each other: the cross-component
  // blocks stay structurally zero.
  TrustGraph g(4);
  g.set_trust(0, 1, 0.8);
  g.set_trust(2, 3, 0.6);
  for (const Aggregation agg :
       {Aggregation::BestPath, Aggregation::ProbabilisticOr}) {
    PropagationOptions opts;
    opts.aggregation = agg;
    const linalg::SparseMatrix m = propagated_sparse(g, opts);
    EXPECT_EQ(m.nnz(), 2u);
    EXPECT_EQ(m.at(0, 1), 0.8);
    EXPECT_EQ(m.at(2, 3), 0.6);
    EXPECT_EQ(m.at(0, 2), 0.0);
    EXPECT_EQ(m.at(1, 3), 0.0);
  }
}

}  // namespace
}  // namespace svo::trust
