/// Compile-and-link check of the umbrella header: every public module is
/// reachable through one include, and representative symbols from each
/// layer are usable together.
#include "src/svo.hpp"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeaderTest, AllLayersReachable) {
  using namespace svo;
  util::Xoshiro256 rng(1);
  const linalg::Matrix id = linalg::Matrix::identity(2);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);

  graph::Digraph g(2);
  g.set_edge(0, 1, 1.0);
  EXPECT_EQ(g.edge_count(), 1u);

  lp::Problem lp_problem(1);
  lp_problem.set_objective({1.0});
  EXPECT_EQ(lp_problem.num_vars(), 1u);

  des::Simulator sim;
  sim.schedule(1.0, [] {});
  EXPECT_EQ(sim.pending(), 1u);

  const trust::TrustGraph trust = trust::random_trust_graph(4, 0.5, rng);
  EXPECT_EQ(trust.size(), 4u);

  const game::Coalition c = game::Coalition::of({0, 1});
  EXPECT_EQ(c.size(), 2u);

  trace::ProgramSpec program;
  program.num_tasks = 8;
  program.mean_task_runtime = 8000.0;
  workload::InstanceGenOptions gen;
  gen.params.num_gsps = 4;
  const workload::GridInstance grid =
      workload::generate_instance(program, gen, rng);
  EXPECT_EQ(grid.assignment.num_gsps(), 4u);

  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  EXPECT_EQ(tvof.name(), "TVOF");
}

}  // namespace
