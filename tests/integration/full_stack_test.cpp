/// Cross-module integration tests: the complete pipeline (synthetic
/// trace -> SWF round trip -> program extraction -> Table I instance ->
/// mechanism -> game-theoretic postconditions), exercised with multiple
/// solvers and mechanisms — the flows a downstream user actually runs.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/merge_split.hpp"
#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "game/payoff.hpp"
#include "ip/bnb.hpp"
#include "ip/dag.hpp"
#include "ip/greedy.hpp"
#include "sim/runner.hpp"
#include "trace/atlas_synth.hpp"
#include "trace/programs.hpp"

namespace svo {
namespace {

sim::ExperimentConfig tiny_config() {
  sim::ExperimentConfig cfg;
  cfg.trace.num_jobs = 2500;
  cfg.trace.canonical_sizes = {40};
  cfg.trace.min_jobs_per_canonical_size = 6;
  cfg.task_sizes = {40};
  cfg.repetitions = 2;
  cfg.gen.params.num_gsps = 6;
  cfg.solver.max_nodes = 2000;
  return cfg;
}

TEST(FullStackTest, SwfRoundTripFeedsScenarioFactory) {
  // Trace -> file -> parse -> programs: the persisted form must be as
  // usable as the in-memory one.
  const trace::Trace generated =
      trace::generate_atlas_like(tiny_config().trace, 5);
  const std::string path = ::testing::TempDir() + "svo_roundtrip.swf";
  trace::write_swf_file(path, generated);
  const trace::Trace loaded = trace::parse_swf_file(path);
  EXPECT_EQ(loaded.malformed_lines, 0u);
  ASSERT_EQ(loaded.jobs.size(), generated.jobs.size());
  util::Xoshiro256 rng(1);
  const auto programs = trace::sample_programs(loaded.jobs, 40, 2, rng);
  ASSERT_EQ(programs.size(), 2u);
  EXPECT_EQ(programs[0].num_tasks, 40u);
  std::remove(path.c_str());
}

TEST(FullStackTest, MechanismInvariantsHoldWithHeuristicSolver) {
  // The mechanisms must keep every contract when driven by the greedy
  // (non-exact) solver instead of B&B.
  const sim::ExperimentConfig cfg = tiny_config();
  const sim::ScenarioFactory factory(cfg);
  const ip::GreedyAssignmentSolver greedy;
  const core::TvofMechanism tvof(greedy);
  for (std::size_t rep = 0; rep < 2; ++rep) {
    const sim::Scenario s = factory.make(40, rep);
    util::Xoshiro256 rng(s.tvof_seed);
    const core::MechanismResult r =
        tvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng});
    if (!r.success) continue;
    // Selected VO's payoff dominates all feasible journal entries.
    for (const auto& it : r.journal) {
      if (it.feasible) EXPECT_GE(r.payoff_share, it.payoff_share - 1e-9);
    }
    // Equal shares sum to v(C).
    EXPECT_NEAR(r.payoff_share * static_cast<double>(r.selected.size()),
                r.value, 1e-6);
  }
}

TEST(FullStackTest, ThreeMechanismsShareOneScenario) {
  const sim::ExperimentConfig cfg = tiny_config();
  const sim::ScenarioFactory factory(cfg);
  const sim::Scenario s = factory.make(40, 0);
  const ip::BnbAssignmentSolver solver(cfg.solver);

  const core::TvofMechanism tvof(solver);
  const core::RvofMechanism rvof(solver);
  const core::MergeSplitMechanism msvof(solver);
  util::Xoshiro256 rng_t(1);
  util::Xoshiro256 rng_r(2);
  const core::MechanismResult rt =
      tvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng_t});
  const core::MechanismResult rr =
      rvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng_r});
  const core::MergeSplitResult rm =
      msvof.run(s.instance.assignment, s.trust);
  // All three agree the instance is workable (generator guarantees it).
  EXPECT_TRUE(rt.success);
  EXPECT_TRUE(rr.success);
  EXPECT_TRUE(rm.success);
  // All report value consistent with eq. (15) on the same payment.
  EXPECT_NEAR(rt.value, s.instance.assignment.payment - rt.cost, 1e-9);
  EXPECT_NEAR(rr.value, s.instance.assignment.payment - rr.cost, 1e-9);
  EXPECT_NEAR(rm.value, s.instance.assignment.payment - rm.cost, 1e-9);
}

TEST(FullStackTest, DagAdapterInsideSweepRunnerScenario) {
  // Build a scenario through the factory, then run TVOF with the DAG
  // adapter on a chained version of its program.
  const sim::ExperimentConfig cfg = tiny_config();
  const sim::ScenarioFactory factory(cfg);
  sim::Scenario s = factory.make(40, 1);
  ip::TaskDag dag(40);
  for (std::size_t t = 8; t < 40; ++t) dag.add_dependency(t - 8, t);
  s.instance.assignment.deadline *= 8.0;  // chains serialize
  const ip::DagSolverAdapter solver(dag);
  const core::TvofMechanism tvof(solver);
  util::Xoshiro256 rng(3);
  const core::MechanismResult r =
      tvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng});
  if (!r.success) GTEST_SKIP() << "chained program infeasible here";
  // Rebuild the schedule on the selected VO and verify the deadline.
  std::vector<std::size_t> original;
  const ip::AssignmentInstance sub = s.instance.assignment.restrict_to(
      r.selected.mask(6), &original);
  const ip::DagSchedule schedule = solver.schedule(sub);
  EXPECT_LE(schedule.makespan, sub.deadline + 1e-9);
}

TEST(FullStackTest, SweepRunnerProducesConsistentJournalMetrics) {
  const sim::ExperimentConfig cfg = tiny_config();
  const sim::ExperimentRunner runner(cfg);
  std::size_t checked = 0;
  (void)runner.run_sweep([&](std::size_t, std::size_t, const std::string&,
                             const core::MechanismResult& r) {
    for (const auto& it : r.journal) {
      if (!it.feasible) continue;
      // Journal bookkeeping: share * |C| == v == P - cost.
      EXPECT_NEAR(it.payoff_share * static_cast<double>(it.coalition.size()),
                  it.value, 1e-6);
      ++checked;
    }
  });
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace svo
