#include "workload/etc.hpp"

#include <gtest/gtest.h>

namespace svo::workload {
namespace {

TEST(EtcTest, ConsistentFamilyPassesConsistencyCheck) {
  util::Xoshiro256 rng(1);
  EtcOptions opts;
  opts.consistency = EtcConsistency::Consistent;
  const linalg::Matrix etc = generate_etc(8, 40, opts, rng);
  EXPECT_TRUE(is_consistent_etc(etc));
}

TEST(EtcTest, InconsistentFamilyFailsConsistencyCheck) {
  util::Xoshiro256 rng(2);
  EtcOptions opts;
  opts.consistency = EtcConsistency::Inconsistent;
  const linalg::Matrix etc = generate_etc(8, 40, opts, rng);
  EXPECT_FALSE(is_consistent_etc(etc));
}

TEST(EtcTest, SemiConsistentHasConsistentEvenBlock) {
  util::Xoshiro256 rng(3);
  EtcOptions opts;
  opts.consistency = EtcConsistency::SemiConsistent;
  const linalg::Matrix etc = generate_etc(6, 30, opts, rng);
  // The even-task sub-matrix must be consistent...
  linalg::Matrix even(6, 15);
  for (std::size_t m = 0; m < 6; ++m) {
    for (std::size_t t = 0; t < 30; t += 2) even(m, t / 2) = etc(m, t);
  }
  EXPECT_TRUE(is_consistent_etc(even));
  // ...while the full matrix (with odd tasks) is not.
  EXPECT_FALSE(is_consistent_etc(etc));
}

TEST(EtcTest, ValuesWithinHeterogeneityRanges) {
  util::Xoshiro256 rng(4);
  EtcOptions opts;
  opts.task_heterogeneity = 100.0;
  opts.machine_heterogeneity = 10.0;
  const linalg::Matrix etc = generate_etc(5, 20, opts, rng);
  for (std::size_t m = 0; m < 5; ++m) {
    for (std::size_t t = 0; t < 20; ++t) {
      EXPECT_GE(etc(m, t), 1.0);
      EXPECT_LE(etc(m, t), 1000.0);
    }
  }
}

TEST(EtcTest, PaperTimeMatrixIsConsistent) {
  // t = w / s is Braun-consistent by construction; is_consistent_etc
  // must agree (cross-check of both implementations).
  linalg::Matrix t(3, 4);
  const double speeds[3] = {2.0, 8.0, 4.0};
  const double work[4] = {10.0, 20.0, 5.0, 40.0};
  for (std::size_t m = 0; m < 3; ++m) {
    for (std::size_t j = 0; j < 4; ++j) t(m, j) = work[j] / speeds[m];
  }
  EXPECT_TRUE(is_consistent_etc(t));
}

TEST(EtcTest, ConsistencyCheckToleratesTies) {
  const linalg::Matrix equal(3, 3, 5.0);
  EXPECT_TRUE(is_consistent_etc(equal));
}

TEST(EtcTest, RejectsBadArguments) {
  util::Xoshiro256 rng(5);
  EXPECT_THROW((void)generate_etc(0, 3, {}, rng), InvalidArgument);
  EXPECT_THROW((void)generate_etc(3, 0, {}, rng), InvalidArgument);
  EtcOptions bad;
  bad.task_heterogeneity = 0.5;
  EXPECT_THROW((void)generate_etc(3, 3, bad, rng), InvalidArgument);
}

}  // namespace
}  // namespace svo::workload
