#include "workload/instance_gen.hpp"

#include <gtest/gtest.h>

#include "ip/greedy.hpp"

namespace svo::workload {
namespace {

trace::ProgramSpec test_program(std::size_t n = 48,
                                double runtime = 9000.0) {
  trace::ProgramSpec p;
  p.num_tasks = n;
  p.mean_task_runtime = runtime;
  p.source_job = 7;
  return p;
}

TEST(GenerateSpeedsTest, WithinTableIRange) {
  util::Xoshiro256 rng(1);
  TableIParams params;
  const std::vector<double> s = generate_speeds(params, rng);
  EXPECT_EQ(s.size(), 16u);
  for (const double v : s) {
    EXPECT_GE(v, 4.91 * 16.0 - 1e-9);
    EXPECT_LE(v, 4.91 * 128.0 + 1e-9);
  }
}

TEST(GenerateWorkloadsTest, FractionOfJobPeak) {
  util::Xoshiro256 rng(2);
  TableIParams params;
  const auto program = test_program(100, 10'000.0);
  const std::vector<double> w = generate_workloads(program, params, rng);
  EXPECT_EQ(w.size(), 100u);
  const double max_gflop = 10'000.0 * 4.91;
  for (const double x : w) {
    EXPECT_GE(x, 0.5 * max_gflop - 1e-6);
    EXPECT_LE(x, 1.0 * max_gflop + 1e-6);
  }
}

TEST(ExecutionTimesTest, ConsistentMatrix) {
  // Braun consistency: if GSP a beats GSP b on one task it beats it on
  // all tasks — guaranteed because t = w / s.
  util::Xoshiro256 rng(3);
  TableIParams params;
  params.num_gsps = 6;
  const std::vector<double> s = generate_speeds(params, rng);
  const std::vector<double> w =
      generate_workloads(test_program(), params, rng);
  const linalg::Matrix t = execution_times(s, w);
  for (std::size_t a = 0; a < s.size(); ++a) {
    for (std::size_t b = 0; b < s.size(); ++b) {
      const bool faster_on_first = t(a, 0) < t(b, 0);
      for (std::size_t j = 1; j < w.size(); ++j) {
        if (t(a, j) != t(b, j)) {
          ASSERT_EQ(t(a, j) < t(b, j), faster_on_first);
        }
      }
    }
  }
}

TEST(ExecutionTimesTest, MatchesDefinition) {
  const linalg::Matrix t = execution_times({2.0, 4.0}, {8.0, 12.0});
  EXPECT_DOUBLE_EQ(t(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(t(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(t(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(t(1, 1), 3.0);
}

TEST(ExecutionTimesTest, RejectsBadInputs) {
  EXPECT_THROW((void)execution_times({}, {1.0}), InvalidArgument);
  EXPECT_THROW((void)execution_times({0.0}, {1.0}), InvalidArgument);
  EXPECT_THROW((void)execution_times({1.0}, {0.0}), InvalidArgument);
}

TEST(GenerateInstanceTest, ProducesFeasibleInstance) {
  util::Xoshiro256 rng(5);
  InstanceGenOptions opts;
  opts.params.num_gsps = 8;
  const GridInstance gi = generate_instance(test_program(64), opts, rng);
  gi.assignment.validate();
  EXPECT_EQ(gi.assignment.num_gsps(), 8u);
  EXPECT_EQ(gi.assignment.num_tasks(), 64u);
  // The generator's contract: a feasible assignment exists.
  const ip::GreedyAssignmentSolver probe;
  EXPECT_TRUE(probe.solve(gi.assignment).has_assignment());
}

TEST(GenerateInstanceTest, PaymentWithinTableIRange) {
  util::Xoshiro256 rng(6);
  InstanceGenOptions opts;
  opts.params.num_gsps = 8;
  const GridInstance gi = generate_instance(test_program(64), opts, rng);
  if (!gi.deadline_relaxed) {
    const double n = 64.0;
    EXPECT_GE(gi.assignment.payment, 0.2 * 1000.0 * n - 1e-6);
    EXPECT_LE(gi.assignment.payment, 0.4 * 1000.0 * n + 1e-6);
  }
}

TEST(GenerateInstanceTest, CostsAreWorkloadMonotone) {
  util::Xoshiro256 rng(7);
  InstanceGenOptions opts;
  opts.params.num_gsps = 4;
  const GridInstance gi = generate_instance(test_program(32), opts, rng);
  const auto& w = gi.workloads;
  for (std::size_t g = 0; g < 4; ++g) {
    for (std::size_t a = 0; a < w.size(); ++a) {
      for (std::size_t b = 0; b < w.size(); ++b) {
        if (w[a] > w[b]) {
          ASSERT_GE(gi.assignment.cost(g, a), gi.assignment.cost(g, b));
        }
      }
    }
  }
}

TEST(GenerateInstanceTest, DeterministicInRng) {
  InstanceGenOptions opts;
  opts.params.num_gsps = 6;
  util::Xoshiro256 a(11);
  util::Xoshiro256 b(11);
  const GridInstance ga = generate_instance(test_program(), opts, a);
  const GridInstance gb = generate_instance(test_program(), opts, b);
  EXPECT_DOUBLE_EQ(ga.assignment.deadline, gb.assignment.deadline);
  EXPECT_DOUBLE_EQ(ga.assignment.payment, gb.assignment.payment);
  EXPECT_DOUBLE_EQ(ga.assignment.cost(3, 5), gb.assignment.cost(3, 5));
  EXPECT_DOUBLE_EQ(ga.speeds[2], gb.speeds[2]);
}

}  // namespace
}  // namespace svo::workload
