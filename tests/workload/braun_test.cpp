#include "workload/braun.hpp"

#include <gtest/gtest.h>

namespace svo::workload {
namespace {

std::vector<double> random_workloads(std::size_t n, util::Xoshiro256& rng) {
  std::vector<double> w(n);
  for (double& x : w) x = rng.uniform(100.0, 10'000.0);
  return w;
}

TEST(BraunTest, ValuesWithinRange) {
  util::Xoshiro256 rng(1);
  const auto w = random_workloads(50, rng);
  BraunOptions opts;  // phi_b = 100, phi_r = 10
  const linalg::Matrix c = generate_braun_costs(8, w, opts, rng);
  for (std::size_t g = 0; g < 8; ++g) {
    for (std::size_t t = 0; t < 50; ++t) {
      EXPECT_GE(c(g, t), 1.0);
      EXPECT_LE(c(g, t), 1000.0);
    }
  }
}

TEST(BraunTest, StrictModeIsWorkloadMonotoneOnEveryGsp) {
  util::Xoshiro256 rng(2);
  const auto w = random_workloads(40, rng);
  BraunOptions opts;
  opts.monotonicity = WorkloadMonotonicity::Strict;
  const linalg::Matrix c = generate_braun_costs(6, w, opts, rng);
  for (std::size_t g = 0; g < 6; ++g) {
    for (std::size_t a = 0; a < 40; ++a) {
      for (std::size_t b = 0; b < 40; ++b) {
        if (w[a] > w[b]) {
          ASSERT_GE(c(g, a), c(g, b))
              << "GSP " << g << ": workload order violated";
        }
      }
    }
  }
}

TEST(BraunTest, StrictModePreservesRowMultiset) {
  // Strict re-ranking must only reorder each GSP's costs, never change
  // their sum (a cheap multiset-preservation proxy plus sortedness).
  util::Xoshiro256 rng(3);
  const auto w = random_workloads(30, rng);
  util::Xoshiro256 rng_strict = rng;
  util::Xoshiro256 rng_none = rng;
  BraunOptions strict;
  strict.monotonicity = WorkloadMonotonicity::Strict;
  BraunOptions none;
  none.monotonicity = WorkloadMonotonicity::None;
  // Note: baseline alignment differs between modes, so compare only the
  // statistical envelope: totals should be of the same magnitude.
  const linalg::Matrix cs = generate_braun_costs(4, w, strict, rng_strict);
  const linalg::Matrix cn = generate_braun_costs(4, w, none, rng_none);
  double sum_s = 0.0;
  double sum_n = 0.0;
  for (std::size_t g = 0; g < 4; ++g) {
    for (std::size_t t = 0; t < 30; ++t) {
      sum_s += cs(g, t);
      sum_n += cn(g, t);
    }
  }
  EXPECT_NEAR(sum_s / sum_n, 1.0, 0.5);
}

TEST(BraunTest, BaselineOnlyModeAlignsBaselineNotRows) {
  // In BaselineOnly mode monotonicity may be violated per GSP, but the
  // *average* cost across GSPs must still increase with workload.
  util::Xoshiro256 rng(4);
  std::vector<double> w{100.0, 5000.0, 20'000.0};
  BraunOptions opts;
  opts.monotonicity = WorkloadMonotonicity::BaselineOnly;
  const linalg::Matrix c = generate_braun_costs(64, w, opts, rng);
  double mean0 = 0.0;
  double mean2 = 0.0;
  for (std::size_t g = 0; g < 64; ++g) {
    mean0 += c(g, 0);
    mean2 += c(g, 2);
  }
  EXPECT_LT(mean0, mean2);
}

TEST(BraunTest, DeterministicInRngState) {
  util::Xoshiro256 a(9);
  util::Xoshiro256 b(9);
  const std::vector<double> w{10.0, 20.0, 30.0};
  const linalg::Matrix ca = generate_braun_costs(3, w, {}, a);
  const linalg::Matrix cb = generate_braun_costs(3, w, {}, b);
  for (std::size_t g = 0; g < 3; ++g) {
    for (std::size_t t = 0; t < 3; ++t) {
      ASSERT_DOUBLE_EQ(ca(g, t), cb(g, t));
    }
  }
}

TEST(BraunTest, RejectsBadArguments) {
  util::Xoshiro256 rng(1);
  EXPECT_THROW((void)generate_braun_costs(0, {1.0}, {}, rng), InvalidArgument);
  EXPECT_THROW((void)generate_braun_costs(2, {}, {}, rng), InvalidArgument);
  BraunOptions bad;
  bad.phi_b = 0.5;
  EXPECT_THROW((void)generate_braun_costs(2, {1.0, 2.0}, bad, rng),
               InvalidArgument);
}

}  // namespace
}  // namespace svo::workload
