#include "trace/programs.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace svo::trace {
namespace {

SwfJob eligible_job(std::int64_t procs = 256, double runtime = 8000.0) {
  SwfJob j;
  j.job_number = 1;
  j.run_time = runtime;
  j.allocated_processors = procs;
  j.avg_cpu_time = runtime * 0.9;
  j.status = JobStatus::Completed;
  return j;
}

TEST(ProgramFromJobTest, ExtractsTasksAndRuntime) {
  const ProgramSpec p = program_from_job(eligible_job());
  EXPECT_EQ(p.num_tasks, 256u);
  EXPECT_DOUBLE_EQ(p.mean_task_runtime, 8000.0 * 0.9);
  EXPECT_EQ(p.source_job, 1);
}

TEST(ProgramFromJobTest, FallsBackToRuntimeWhenCpuUnknown) {
  SwfJob j = eligible_job();
  j.avg_cpu_time = -1.0;
  const ProgramSpec p = program_from_job(j);
  EXPECT_DOUBLE_EQ(p.mean_task_runtime, 8000.0);
}

TEST(ProgramFromJobTest, RejectsIneligibleJobs) {
  SwfJob failed = eligible_job();
  failed.status = JobStatus::Failed;
  EXPECT_THROW((void)program_from_job(failed), InvalidArgument);
  SwfJob short_job = eligible_job(256, 100.0);
  EXPECT_THROW((void)program_from_job(short_job), InvalidArgument);
  SwfJob no_procs = eligible_job(0);
  EXPECT_THROW((void)program_from_job(no_procs), InvalidArgument);
}

TEST(SampleProgramsTest, FiltersBySizeAndEligibility) {
  std::vector<SwfJob> jobs;
  jobs.push_back(eligible_job(256));
  jobs.push_back(eligible_job(512));
  jobs.push_back(eligible_job(256, 100.0));  // too short
  SwfJob failed = eligible_job(256);
  failed.status = JobStatus::Cancelled;
  jobs.push_back(failed);

  util::Xoshiro256 rng(1);
  const auto programs = sample_programs(jobs, 256, 3, rng);
  ASSERT_EQ(programs.size(), 3u);  // 1 eligible, sampled with replacement
  for (const auto& p : programs) EXPECT_EQ(p.num_tasks, 256u);
}

TEST(SampleProgramsTest, EmptyWhenNoMaterial) {
  util::Xoshiro256 rng(1);
  EXPECT_TRUE(sample_programs({eligible_job(512)}, 256, 2, rng).empty());
  EXPECT_TRUE(sample_programs({eligible_job(256)}, 256, 0, rng).empty());
}

TEST(SampleProgramsTest, WithoutReplacementWhilePossible) {
  std::vector<SwfJob> jobs;
  for (int i = 0; i < 5; ++i) {
    SwfJob j = eligible_job(128, 8000.0 + i);
    j.job_number = i;
    jobs.push_back(j);
  }
  util::Xoshiro256 rng(2);
  const auto programs = sample_programs(jobs, 128, 5, rng);
  ASSERT_EQ(programs.size(), 5u);
  std::vector<bool> seen(5, false);
  for (const auto& p : programs) {
    ASSERT_GE(p.source_job, 0);
    ASSERT_LT(p.source_job, 5);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p.source_job)]);
    seen[static_cast<std::size_t>(p.source_job)] = true;
  }
}

TEST(CountEligibleTest, MatchesFilterSemantics) {
  std::vector<SwfJob> jobs{eligible_job(64), eligible_job(64),
                           eligible_job(64, 100.0), eligible_job(32)};
  EXPECT_EQ(count_eligible(jobs, 64), 2u);
  EXPECT_EQ(count_eligible(jobs, 32), 1u);
  EXPECT_EQ(count_eligible(jobs, 8), 0u);
}

}  // namespace
}  // namespace svo::trace
