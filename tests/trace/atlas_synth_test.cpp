#include "trace/atlas_synth.hpp"

#include <gtest/gtest.h>

#include "trace/programs.hpp"
#include "util/error.hpp"

namespace svo::trace {
namespace {

AtlasSynthOptions small_opts() {
  AtlasSynthOptions o;
  o.num_jobs = 4000;
  o.min_jobs_per_canonical_size = 5;
  return o;
}

TEST(AtlasSynthTest, JobCountAndHeader) {
  const Trace t = generate_atlas_like(small_opts(), 1);
  EXPECT_EQ(t.jobs.size(), 4000u);
  EXPECT_FALSE(t.header.empty());
}

TEST(AtlasSynthTest, CompletedFractionNearTarget) {
  const Trace t = generate_atlas_like(small_opts(), 2);
  const TraceStats s = compute_stats(t.jobs);
  EXPECT_NEAR(static_cast<double>(s.completed_jobs) / 4000.0, 0.5, 0.05);
}

TEST(AtlasSynthTest, LongFractionNearPaperValue) {
  AtlasSynthOptions o = small_opts();
  o.num_jobs = 20'000;
  const Trace t = generate_atlas_like(o, 3);
  const TraceStats s = compute_stats(t.jobs);
  // Paper: ~13% of completed jobs have runtime > 7200 s. Canonical-size
  // retagging adds a small bias upward; allow a generous band.
  EXPECT_NEAR(s.long_fraction(), 0.13, 0.035);
}

TEST(AtlasSynthTest, ProcessorRangeRespected) {
  const Trace t = generate_atlas_like(small_opts(), 4);
  for (const auto& j : t.jobs) {
    EXPECT_GE(j.allocated_processors, 8);
    EXPECT_LE(j.allocated_processors, 8832);
  }
}

TEST(AtlasSynthTest, CanonicalSizesHaveEnoughMaterial) {
  const AtlasSynthOptions o = small_opts();
  const Trace t = generate_atlas_like(o, 5);
  for (const std::int64_t size : o.canonical_sizes) {
    EXPECT_GE(count_eligible(t.jobs, static_cast<std::size_t>(size)),
              o.min_jobs_per_canonical_size)
        << "size " << size;
  }
}

TEST(AtlasSynthTest, DeterministicInSeed) {
  const Trace a = generate_atlas_like(small_opts(), 42);
  const Trace b = generate_atlas_like(small_opts(), 42);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    ASSERT_EQ(a.jobs[i].job_number, b.jobs[i].job_number);
    ASSERT_DOUBLE_EQ(a.jobs[i].run_time, b.jobs[i].run_time);
  }
}

TEST(AtlasSynthTest, SortedBySubmitTime) {
  const Trace t = generate_atlas_like(small_opts(), 6);
  for (std::size_t i = 1; i < t.jobs.size(); ++i) {
    EXPECT_LE(t.jobs[i - 1].submit_time, t.jobs[i].submit_time);
  }
}

TEST(AtlasSynthTest, RuntimesPositiveAndCpuTimeBelowWallClock) {
  const Trace t = generate_atlas_like(small_opts(), 7);
  for (const auto& j : t.jobs) {
    EXPECT_GT(j.run_time, 0.0);
    EXPECT_LE(j.avg_cpu_time, j.run_time + 1e-9);
    EXPECT_GE(j.avg_cpu_time, 0.5 * j.run_time);
  }
}

TEST(AtlasSynthTest, RejectsBadOptions) {
  AtlasSynthOptions o = small_opts();
  o.num_jobs = 0;
  EXPECT_THROW((void)generate_atlas_like(o, 1), InvalidArgument);
  o = small_opts();
  o.completed_fraction = 1.5;
  EXPECT_THROW((void)generate_atlas_like(o, 1), InvalidArgument);
  o = small_opts();
  o.min_processors = 0;
  EXPECT_THROW((void)generate_atlas_like(o, 1), InvalidArgument);
}

}  // namespace
}  // namespace svo::trace
