/// Tests for the chunked streaming Atlas ingest (trace/stream): chunk-size
/// invariance, equality with the one-shot generator, the program scan,
/// and option validation.
#include "trace/stream.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace svo::trace {
namespace {

AtlasSynthOptions tiny_options() {
  AtlasSynthOptions opts;
  opts.num_jobs = 600;
  // The canonical-size retag is a global pass, documented as unavailable
  // in streaming mode; disable it so both paths draw identically.
  opts.min_jobs_per_canonical_size = 0;
  return opts;
}

void expect_same_job(const SwfJob& a, const SwfJob& b) {
  EXPECT_EQ(a.job_number, b.job_number);
  EXPECT_EQ(a.submit_time, b.submit_time);
  EXPECT_EQ(a.allocated_processors, b.allocated_processors);
  EXPECT_DOUBLE_EQ(a.run_time, b.run_time);
  EXPECT_DOUBLE_EQ(a.avg_cpu_time, b.avg_cpu_time);
  EXPECT_EQ(static_cast<int>(a.status), static_cast<int>(b.status));
}

TEST(AtlasJobStreamTest, ChunkBoundariesNeverChangeTheSequence) {
  const AtlasSynthOptions opts = tiny_options();
  AtlasJobStream one_by_one(opts, 42);
  AtlasJobStream chunked(opts, 42);

  std::vector<SwfJob> a;
  SwfJob job;
  while (one_by_one.next(job)) a.push_back(job);
  ASSERT_EQ(a.size(), opts.num_jobs);

  std::vector<SwfJob> b;
  for (const std::size_t chunk : {7u, 1u, 255u, 64u, 1000u}) {
    const std::vector<SwfJob> part = chunked.next_chunk(chunk);
    b.insert(b.end(), part.begin(), part.end());
    if (chunked.exhausted()) break;
  }
  while (chunked.next(job)) b.push_back(job);

  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) expect_same_job(a[i], b[i]);
}

TEST(AtlasJobStreamTest, MatchesOneShotGeneratorWithRetagDisabled) {
  const AtlasSynthOptions opts = tiny_options();
  const Trace trace = generate_atlas_like(opts, 7);

  AtlasJobStream stream(opts, 7);
  std::vector<SwfJob> streamed = stream.next_chunk(opts.num_jobs);
  ASSERT_EQ(streamed.size(), trace.jobs.size());
  std::stable_sort(streamed.begin(), streamed.end(),
                   [](const SwfJob& a, const SwfJob& b) {
                     return a.submit_time < b.submit_time;
                   });
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    expect_same_job(streamed[i], trace.jobs[i]);
  }
}

TEST(AtlasJobStreamTest, ProgramScanReturnsOnlyEligibleJobs) {
  AtlasJobStream stream(tiny_options(), 3);
  std::size_t programs = 0;
  while (const auto program = stream.next_program(7200.0, 512)) {
    ++programs;
    EXPECT_GT(program->num_tasks, 0u);
    EXPECT_LE(program->num_tasks, 512u);
    EXPECT_GT(program->mean_task_runtime, 0.0);
  }
  EXPECT_GT(programs, 0u);
  EXPECT_TRUE(stream.exhausted());
}

TEST(AtlasJobStreamTest, ResetReplaysTheIdenticalSequence) {
  AtlasJobStream stream(tiny_options(), 11);
  const std::vector<SwfJob> first = stream.next_chunk(50);
  stream.reset();
  EXPECT_EQ(stream.produced(), 0u);
  const std::vector<SwfJob> second = stream.next_chunk(50);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    expect_same_job(first[i], second[i]);
  }
}

TEST(AtlasJobStreamTest, ExhaustionAndCounters) {
  AtlasSynthOptions opts = tiny_options();
  opts.num_jobs = 5;
  AtlasJobStream stream(opts, 1);
  EXPECT_EQ(stream.remaining(), 5u);
  EXPECT_EQ(stream.next_chunk(3).size(), 3u);
  EXPECT_EQ(stream.produced(), 3u);
  EXPECT_EQ(stream.next_chunk(99).size(), 2u);
  EXPECT_TRUE(stream.exhausted());
  SwfJob job;
  EXPECT_FALSE(stream.next(job));
  EXPECT_TRUE(stream.next_chunk(4).empty());
}

TEST(AtlasJobStreamTest, ValidatesLikeTheGenerator) {
  AtlasSynthOptions opts = tiny_options();
  opts.num_jobs = 0;
  EXPECT_THROW(AtlasJobStream(opts, 1), InvalidArgument);
  opts = tiny_options();
  opts.completed_fraction = 1.5;
  EXPECT_THROW(AtlasJobStream(opts, 1), InvalidArgument);
  opts = tiny_options();
  opts.min_processors = 0;
  EXPECT_THROW(AtlasJobStream(opts, 1), InvalidArgument);

  AtlasJobStream ok(tiny_options(), 1);
  EXPECT_THROW((void)ok.next_chunk(0), InvalidArgument);
}

}  // namespace
}  // namespace svo::trace
