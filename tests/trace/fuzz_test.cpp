/// Deterministic pseudo-fuzz of the SWF parser: arbitrary byte soup must
/// never crash, throw, or mis-count; valid lines embedded in garbage must
/// still be recovered.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

#include "trace/swf.hpp"
#include "util/rng.hpp"

namespace svo::trace {
namespace {

std::string random_garbage_line(util::Xoshiro256& rng) {
  static constexpr char kAlphabet[] =
      "0123456789 .-+eE\tabcXYZ;#!@$%^&*(){}[]|\\\"'";
  const std::size_t len = rng.index(60);
  std::string line;
  line.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    line += kAlphabet[rng.index(sizeof(kAlphabet) - 1)];
  }
  return line;
}

TEST(SwfFuzzTest, GarbageNeverThrows) {
  util::Xoshiro256 rng(0xF022);
  for (int trial = 0; trial < 50; ++trial) {
    std::ostringstream soup;
    for (int line = 0; line < 40; ++line) {
      soup << random_garbage_line(rng) << '\n';
    }
    std::istringstream in(soup.str());
    EXPECT_NO_THROW({
      const Trace t = parse_swf(in);
      // Every job that did parse must carry a plausible status enum.
      for (const auto& j : t.jobs) {
        (void)j.completed();
      }
    });
  }
}

TEST(SwfFuzzTest, ValidLinesSurviveSurroundingGarbage) {
  util::Xoshiro256 rng(4242);
  constexpr const char* kValid =
      "5 100 10 9000 128 8500 -1 128 9500 -1 1 3 2 7 1 1 -1 -1";
  std::ostringstream soup;
  int valid_count = 0;
  for (int line = 0; line < 200; ++line) {
    if (line % 10 == 0) {
      soup << kValid << '\n';
      ++valid_count;
    } else {
      std::string g = random_garbage_line(rng);
      // A random line could accidentally be a valid 18-field record; the
      // odds are astronomically low, but keep the test airtight by
      // prefixing a non-numeric token.
      soup << "x" << g << '\n';
    }
  }
  std::istringstream in(soup.str());
  const Trace t = parse_swf(in);
  EXPECT_EQ(t.jobs.size(), static_cast<std::size_t>(valid_count));
  for (const auto& j : t.jobs) EXPECT_EQ(j.allocated_processors, 128);
}

TEST(SwfFuzzTest, ExtremeNumericValuesHandled) {
  SwfJob j;
  // Huge and tiny doubles parse without UB.
  EXPECT_TRUE(parse_swf_line(
      "1 0 0 1e308 1 1e-300 -1 1 0 -1 1 1 1 1 1 1 -1 -1", j));
  EXPECT_DOUBLE_EQ(j.run_time, 1e308);
  // Over 19 fields of pure numbers: malformed.
  EXPECT_FALSE(parse_swf_line(
      "1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19", j));
}

TEST(SwfFuzzTest, TruncatedLinesAreMalformedNeverFatal) {
  constexpr const char* kValid =
      "5 100 10 9000 128 8500 -1 128 9500 -1 1 3 2 7 1 1 -1 -1";
  const std::string valid(kValid);
  SwfJob j;
  ASSERT_TRUE(parse_swf_line(valid, j));
  // Every strict prefix either drops a field (wrong count) or cuts one
  // mid-token; both are malformed, neither may crash or throw.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    SwfJob partial;
    EXPECT_FALSE(parse_swf_line(valid.substr(0, len), partial))
        << "prefix of length " << len << " parsed as a full record";
  }
}

TEST(SwfFuzzTest, NonFiniteTokensRejected) {
  // from_chars accepts "inf"/"nan" spellings; the parser must not.
  SwfJob j;
  EXPECT_FALSE(parse_swf_line(
      "1 0 0 inf 1 0 -1 1 0 -1 1 1 1 1 1 1 -1 -1", j));
  EXPECT_FALSE(parse_swf_line(
      "1 0 0 nan 1 0 -1 1 0 -1 1 1 1 1 1 1 -1 -1", j));
  EXPECT_FALSE(parse_swf_line(
      "-inf 0 0 9000 1 0 -1 1 0 -1 1 1 1 1 1 1 -1 -1", j));
  // Out-of-double-range exponents fail from_chars itself.
  EXPECT_FALSE(parse_swf_line(
      "1 0 0 1e400 1 0 -1 1 0 -1 1 1 1 1 1 1 -1 -1", j));
}

TEST(SwfFuzzTest, HugeIntegerFieldsSaturateInsteadOfOverflowing) {
  // A finite double beyond int64 range in an integer field must clamp,
  // not invoke the out-of-range cast (UB).
  SwfJob j;
  ASSERT_TRUE(parse_swf_line(
      "1e300 0 0 9000 1 0 -1 1 0 -1 1 1 1 1 1 1 -1 -1", j));
  EXPECT_EQ(j.job_number, std::numeric_limits<std::int64_t>::max());
  ASSERT_TRUE(parse_swf_line(
      "1 -1e300 0 9000 1 0 -1 1 0 -1 1 1 1 1 1 1 -1 -1", j));
  EXPECT_EQ(j.submit_time, std::numeric_limits<std::int64_t>::min());
}

TEST(SwfFuzzTest, GarbageFieldInsideRecordRejectsLine) {
  SwfJob j;
  // 18 tokens, one non-numeric: malformed.
  EXPECT_FALSE(parse_swf_line(
      "5 100 10 9000 128 8500 -1 128 9500 -1 one 3 2 7 1 1 -1 -1", j));
  // Embedded NUL-ish / punctuation soup in a field.
  EXPECT_FALSE(parse_swf_line(
      "5 100 10 90#0 128 8500 -1 128 9500 -1 1 3 2 7 1 1 -1 -1", j));
}

}  // namespace
}  // namespace svo::trace
