#include "trace/lublin.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace svo::trace {
namespace {

LublinOptions small() {
  LublinOptions o;
  o.num_jobs = 6000;
  return o;
}

TEST(LublinTest, JobCountAndDeterminism) {
  const Trace a = generate_lublin(small(), 7);
  const Trace b = generate_lublin(small(), 7);
  ASSERT_EQ(a.jobs.size(), 6000u);
  for (std::size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(a.jobs[i].allocated_processors,
              b.jobs[i].allocated_processors);
    ASSERT_DOUBLE_EQ(a.jobs[i].run_time, b.jobs[i].run_time);
  }
}

TEST(LublinTest, SerialFractionNearParameter) {
  const Trace t = generate_lublin(small(), 1);
  std::size_t serial = 0;
  for (const auto& j : t.jobs) serial += j.allocated_processors == 1;
  EXPECT_NEAR(static_cast<double>(serial) / 6000.0, 0.244, 0.03);
}

TEST(LublinTest, ParallelSizesWithinRangeWithPow2Bias) {
  const Trace t = generate_lublin(small(), 2);
  std::size_t pow2 = 0;
  std::size_t parallel = 0;
  for (const auto& j : t.jobs) {
    EXPECT_GE(j.allocated_processors, 1);
    EXPECT_LE(j.allocated_processors, 8832);
    if (j.allocated_processors > 1) {
      ++parallel;
      const auto p = static_cast<std::uint64_t>(j.allocated_processors);
      pow2 += (p & (p - 1)) == 0;
    }
  }
  ASSERT_GT(parallel, 3000u);
  // Power-of-two rounding applies to ~57.6% of parallel jobs; rounding
  // of the rest also occasionally lands on powers of two.
  EXPECT_GT(static_cast<double>(pow2) / static_cast<double>(parallel), 0.5);
}

TEST(LublinTest, RuntimesHeavyTailedAndBounded) {
  const Trace t = generate_lublin(small(), 3);
  util::RunningStats runtimes;
  std::size_t above_hour = 0;
  for (const auto& j : t.jobs) {
    ASSERT_GE(j.run_time, 1.0);
    ASSERT_LE(j.run_time, 1'209'600.0);
    runtimes.add(j.run_time);
    above_hour += j.run_time > 3600.0;
  }
  // Hyper-Gamma in log space: both short and multi-hour jobs must exist.
  EXPECT_GT(above_hour, 500u);
  EXPECT_LT(above_hour, 5500u);
  EXPECT_GT(runtimes.max() / runtimes.mean(), 10.0);  // heavy tail
}

TEST(LublinTest, BiggerJobsLeanLonger) {
  // pa < 0 shifts big jobs toward the long-runtime Gamma component:
  // median runtime of large jobs must exceed that of small ones.
  LublinOptions o = small();
  o.num_jobs = 20'000;
  const Trace t = generate_lublin(o, 4);
  std::vector<double> small_rt;
  std::vector<double> large_rt;
  for (const auto& j : t.jobs) {
    if (j.allocated_processors <= 4) {
      small_rt.push_back(j.run_time);
    } else if (j.allocated_processors >= 64) {
      large_rt.push_back(j.run_time);
    }
  }
  ASSERT_GT(small_rt.size(), 100u);
  ASSERT_GT(large_rt.size(), 100u);
  EXPECT_GT(util::percentile(large_rt, 0.5), util::percentile(small_rt, 0.5));
}

TEST(LublinTest, ArrivalsMonotoneWithExpectedGap) {
  const Trace t = generate_lublin(small(), 5);
  util::RunningStats gaps;
  for (std::size_t i = 1; i < t.jobs.size(); ++i) {
    ASSERT_GE(t.jobs[i].submit_time, t.jobs[i - 1].submit_time);
    gaps.add(static_cast<double>(t.jobs[i].submit_time -
                                 t.jobs[i - 1].submit_time));
  }
  EXPECT_NEAR(gaps.mean(), 420.0, 30.0);
}

TEST(LublinTest, Validation) {
  LublinOptions o = small();
  o.num_jobs = 0;
  EXPECT_THROW((void)generate_lublin(o, 1), InvalidArgument);
  o = small();
  o.max_processors = 1;
  EXPECT_THROW((void)generate_lublin(o, 1), InvalidArgument);
  o = small();
  o.umed = 0.1;  // violates ulow < umed
  EXPECT_THROW((void)generate_lublin(o, 1), InvalidArgument);
}

}  // namespace
}  // namespace svo::trace
