#include "trace/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace svo::trace {
namespace {

constexpr const char* kLine =
    "17 3600 120 7500.5 256 7100.25 -1 256 9000 -1 1 12 3 44 2 1 -1 -1";

TEST(ParseSwfLineTest, ParsesAllFields) {
  SwfJob j;
  ASSERT_TRUE(parse_swf_line(kLine, j));
  EXPECT_EQ(j.job_number, 17);
  EXPECT_EQ(j.submit_time, 3600);
  EXPECT_EQ(j.wait_time, 120);
  EXPECT_DOUBLE_EQ(j.run_time, 7500.5);
  EXPECT_EQ(j.allocated_processors, 256);
  EXPECT_DOUBLE_EQ(j.avg_cpu_time, 7100.25);
  EXPECT_DOUBLE_EQ(j.used_memory_kb, -1.0);
  EXPECT_EQ(j.requested_processors, 256);
  EXPECT_EQ(j.status, JobStatus::Completed);
  EXPECT_EQ(j.user_id, 12);
  EXPECT_EQ(j.group_id, 3);
  EXPECT_EQ(j.executable_number, 44);
  EXPECT_EQ(j.queue_number, 2);
  EXPECT_EQ(j.partition_number, 1);
  EXPECT_EQ(j.preceding_job, -1);
  EXPECT_EQ(j.think_time, -1);
  EXPECT_TRUE(j.completed());
}

TEST(ParseSwfLineTest, RejectsMalformedLines) {
  SwfJob j;
  EXPECT_FALSE(parse_swf_line("", j));
  EXPECT_FALSE(parse_swf_line("1 2 3", j));                       // too few
  EXPECT_FALSE(parse_swf_line(std::string(kLine) + " 99", j));    // too many
  EXPECT_FALSE(parse_swf_line("a b c d e f g h i j k l m n o p q r", j));
}

TEST(ParseSwfLineTest, StatusCodesMapped) {
  const auto with_status = [](int code) {
    std::string s = "1 0 0 10 8 10 -1 8 10 -1 ";
    s += std::to_string(code);
    s += " 1 1 1 1 1 -1 -1";
    return s;
  };
  SwfJob j;
  ASSERT_TRUE(parse_swf_line(with_status(0), j));
  EXPECT_EQ(j.status, JobStatus::Failed);
  ASSERT_TRUE(parse_swf_line(with_status(5), j));
  EXPECT_EQ(j.status, JobStatus::Cancelled);
  ASSERT_TRUE(parse_swf_line(with_status(-1), j));
  EXPECT_EQ(j.status, JobStatus::Unknown);
  EXPECT_FALSE(j.completed());
}

TEST(ParseSwfTest, HeaderCommentsAndMalformedCounting) {
  std::istringstream in(
      "; Computer: Atlas\n"
      ";   MaxJobs: 2\n"
      "\n" +
      std::string(kLine) +
      "\n"
      "garbage line here\n");
  const Trace t = parse_swf(in);
  ASSERT_EQ(t.header.size(), 2u);
  EXPECT_EQ(t.header[0], "Computer: Atlas");
  EXPECT_EQ(t.header[1], "MaxJobs: 2");
  EXPECT_EQ(t.jobs.size(), 1u);
  EXPECT_EQ(t.malformed_lines, 1u);
}

TEST(SwfRoundTripTest, FormatThenParseIsIdentity) {
  SwfJob j;
  ASSERT_TRUE(parse_swf_line(kLine, j));
  SwfJob j2;
  ASSERT_TRUE(parse_swf_line(format_swf_line(j), j2));
  EXPECT_EQ(j2.job_number, j.job_number);
  EXPECT_DOUBLE_EQ(j2.run_time, j.run_time);
  EXPECT_DOUBLE_EQ(j2.avg_cpu_time, j.avg_cpu_time);
  EXPECT_EQ(j2.status, j.status);
  EXPECT_EQ(j2.think_time, j.think_time);
}

TEST(SwfRoundTripTest, WholeTraceRoundTrips) {
  Trace t;
  t.header = {"Computer: test"};
  SwfJob j;
  ASSERT_TRUE(parse_swf_line(kLine, j));
  t.jobs = {j, j};
  std::ostringstream out;
  write_swf(out, t);
  std::istringstream in(out.str());
  const Trace t2 = parse_swf(in);
  EXPECT_EQ(t2.header.size(), 1u);
  EXPECT_EQ(t2.jobs.size(), 2u);
  EXPECT_EQ(t2.malformed_lines, 0u);
}

TEST(SwfFileTest, MissingFileThrows) {
  EXPECT_THROW((void)parse_swf_file("/no/such/file.swf"), IoError);
  EXPECT_THROW(write_swf_file("/no/such/dir/file.swf", Trace{}), IoError);
}

TEST(ComputeStatsTest, CountsAndFractions) {
  SwfJob completed_long;
  ASSERT_TRUE(parse_swf_line(kLine, completed_long));  // 7500s completed
  SwfJob completed_short = completed_long;
  completed_short.run_time = 100.0;
  SwfJob failed = completed_long;
  failed.status = JobStatus::Failed;
  const std::vector<SwfJob> jobs{completed_long, completed_short, failed};
  const TraceStats s = compute_stats(jobs);
  EXPECT_EQ(s.total_jobs, 3u);
  EXPECT_EQ(s.completed_jobs, 2u);
  EXPECT_EQ(s.long_completed_jobs, 1u);
  EXPECT_NEAR(s.long_fraction(), 0.5, 1e-12);
  EXPECT_EQ(s.max_processors, 256);
  EXPECT_DOUBLE_EQ(s.max_runtime, 7500.5);
}

TEST(ComputeStatsTest, EmptyInputSafe) {
  const TraceStats s = compute_stats({});
  EXPECT_EQ(s.total_jobs, 0u);
  EXPECT_EQ(s.long_fraction(), 0.0);
  EXPECT_EQ(s.min_processors, 0);
}

TEST(FilterTest, CompletedLongOnly) {
  SwfJob keep;
  ASSERT_TRUE(parse_swf_line(kLine, keep));
  SwfJob short_job = keep;
  short_job.run_time = 10.0;
  SwfJob failed = keep;
  failed.status = JobStatus::Failed;
  const auto out = filter_completed_long({keep, short_job, failed});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].run_time, 7500.5);
}

}  // namespace
}  // namespace svo::trace
