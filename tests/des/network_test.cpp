#include "des/network.hpp"

#include <gtest/gtest.h>

#include "obs/trace.hpp"

namespace svo::des {
namespace {

LatencyModel no_jitter() {
  LatencyModel l;
  l.base_seconds = 1.0;
  l.bytes_per_second = 100.0;
  l.jitter = 0.0;
  return l;
}

TEST(NetworkTest, DeliversWithModeledLatency) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  double delivered_at = -1.0;
  net.set_handler(1, [&](const Message& m) {
    EXPECT_EQ(m.type, "ping");
    EXPECT_EQ(m.from, 0u);
    delivered_at = sim.now();
  });
  net.send({0, 1, "ping", 200, {}});
  (void)sim.run();
  // 1 s base + 200/100 s transfer = 3 s.
  EXPECT_DOUBLE_EQ(delivered_at, 3.0);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 200u);
}

TEST(NetworkTest, PayloadDataArrivesIntact) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  std::vector<double> got;
  net.set_handler(1, [&](const Message& m) { got = m.data; });
  net.send({0, 1, "data", 0, {1.5, -2.0, 3.25}});
  (void)sim.run();
  EXPECT_EQ(got, (std::vector<double>{1.5, -2.0, 3.25}));
}

TEST(NetworkTest, RequestReplyRoundTrip) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  double reply_at = -1.0;
  net.set_handler(1, [&](const Message& m) {
    if (m.type == "req") net.send({1, 0, "rep", 0, {}});
  });
  net.set_handler(0, [&](const Message& m) {
    if (m.type == "rep") reply_at = sim.now();
  });
  net.send({0, 1, "req", 0, {}});
  (void)sim.run();
  EXPECT_DOUBLE_EQ(reply_at, 2.0);  // two 1 s hops
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(NetworkTest, JitterIsDeterministicInSeed) {
  LatencyModel jittery = no_jitter();
  jittery.jitter = 0.5;
  const auto run_once = [&](std::uint64_t seed) {
    Simulator sim;
    Network net(sim, 2, jittery, seed);
    double at = 0.0;
    net.set_handler(1, [&](const Message&) { at = sim.now(); });
    net.send({0, 1, "x", 50, {}});
    (void)sim.run();
    return at;
  };
  EXPECT_DOUBLE_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(NetworkTest, ValidatesEndpointsAndHandlers) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  EXPECT_THROW(net.send({0, 5, "x", 0, {}}), InvalidArgument);
  net.send({0, 1, "x", 0, {}});  // node 1 has no handler yet
  EXPECT_THROW((void)sim.run(), InvalidArgument);
  EXPECT_THROW(Network(sim, 0, no_jitter(), 1), InvalidArgument);
}

// Regression: out-of-range endpoints must throw on send — for the
// *source* as well as the destination — and must not count as sent.
TEST(NetworkTest, RejectsOutOfRangeEndpointsOnSend) {
  Simulator sim;
  Network net(sim, 3, no_jitter(), 1);
  net.set_handler(1, [](const Message&) {});
  EXPECT_THROW(net.send({7, 1, "x", 0, {}}), InvalidArgument);   // bad from
  EXPECT_THROW(net.send({0, 3, "x", 0, {}}), InvalidArgument);   // bad to
  EXPECT_THROW(net.send({9, 9, "x", 0, {}}), InvalidArgument);   // both
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_EQ(net.bytes_sent(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(NetworkTest, ConstructorValidatesLatencyModel) {
  Simulator sim;
  LatencyModel bad = no_jitter();
  bad.base_seconds = -1.0;
  EXPECT_THROW(Network(sim, 2, bad, 1), InvalidArgument);
  bad = no_jitter();
  bad.jitter = -0.5;
  EXPECT_THROW(Network(sim, 2, bad, 1), InvalidArgument);
}

// ------------------------------------------------- causal flow tracing

/// Network trace tests share the process-wide recorder.
class NetworkTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Recorder::instance().disable();
    obs::Recorder::instance().clear();
  }
  void TearDown() override {
    obs::Recorder::instance().disable();
    obs::Recorder::instance().clear();
  }
};

TEST_F(NetworkTraceTest, TracedSendEmitsFlowPairAndDeliverSpan) {
  obs::Recorder::instance().enable();
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  net.set_handler(1, [](const Message&) {});
  Message msg{0, 1, "ping", 200, {}};
  msg.trace_parent = 77;  // explicit application-supplied context
  net.send(std::move(msg));
  (void)sim.run();
  obs::Recorder::instance().disable();

  const obs::TraceEvent* start = nullptr;
  const obs::TraceEvent* finish = nullptr;
  const obs::TraceEvent* deliver = nullptr;
  const auto events = obs::Recorder::instance().snapshot_events();
  for (const obs::TraceEvent& ev : events) {
    if (ev.kind == obs::EventKind::FlowStart) start = &ev;
    if (ev.kind == obs::EventKind::FlowEnd) finish = &ev;
    if (ev.name == "net.deliver") deliver = &ev;
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(finish, nullptr);
  ASSERT_NE(deliver, nullptr);
  EXPECT_EQ(start->name, "ping");  // flow named after the message type
  EXPECT_EQ(start->category, "net");
  EXPECT_NE(start->id, 0u);
  EXPECT_EQ(start->id, finish->id);       // arrow endpoints share the id
  EXPECT_EQ(start->parent, 77u);          // trace_parent honored
  EXPECT_EQ(deliver->parent, start->id);  // deliver span hangs off the flow
  // Wire args on the start event.
  bool saw_from = false, saw_to = false;
  for (const auto& [k, v] : start->args) {
    if (k == "from") { saw_from = true; EXPECT_DOUBLE_EQ(v, 0.0); }
    if (k == "to") { saw_to = true; EXPECT_DOUBLE_EQ(v, 1.0); }
  }
  EXPECT_TRUE(saw_from);
  EXPECT_TRUE(saw_to);
}

TEST_F(NetworkTraceTest, UntracedSendCarriesNoContextAndEmitsNothing) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  std::uint64_t seen = 99;
  net.set_handler(1, [&](const Message& m) { seen = m.trace_parent; });
  net.send({0, 1, "ping", 0, {}});
  (void)sim.run();
  EXPECT_EQ(seen, 0u);
  EXPECT_EQ(obs::Recorder::instance().event_count(), 0u);
}

TEST_F(NetworkTraceTest, TracingDoesNotPerturbDeliveryOrJitter) {
  LatencyModel jittery = no_jitter();
  jittery.jitter = 0.5;
  const auto run_once = [&](bool traced) {
    obs::Recorder::instance().clear();
    if (traced) {
      obs::Recorder::instance().enable();
    } else {
      obs::Recorder::instance().disable();
    }
    Simulator sim;
    Network net(sim, 3, jittery, 99);
    std::vector<double> arrivals;
    for (std::size_t node = 0; node < 3; ++node) {
      net.set_handler(node, [&](const Message&) {
        arrivals.push_back(sim.now());
      });
    }
    net.send({0, 1, "a", 120, {}});
    net.send({1, 2, "b", 40, {}});
    net.send({2, 0, "c", 300, {}});
    (void)sim.run();
    obs::Recorder::instance().disable();
    return arrivals;
  };
  // The network's jitter RNG must advance identically: delivery times
  // (and order) are bit-identical with tracing off and on.
  const std::vector<double> off = run_once(false);
  const std::vector<double> on = run_once(true);
  ASSERT_EQ(off.size(), 3u);
  EXPECT_EQ(off, on);
}

}  // namespace
}  // namespace svo::des
