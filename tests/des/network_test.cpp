#include "des/network.hpp"

#include <gtest/gtest.h>

namespace svo::des {
namespace {

LatencyModel no_jitter() {
  LatencyModel l;
  l.base_seconds = 1.0;
  l.bytes_per_second = 100.0;
  l.jitter = 0.0;
  return l;
}

TEST(NetworkTest, DeliversWithModeledLatency) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  double delivered_at = -1.0;
  net.set_handler(1, [&](const Message& m) {
    EXPECT_EQ(m.type, "ping");
    EXPECT_EQ(m.from, 0u);
    delivered_at = sim.now();
  });
  net.send({0, 1, "ping", 200, {}});
  (void)sim.run();
  // 1 s base + 200/100 s transfer = 3 s.
  EXPECT_DOUBLE_EQ(delivered_at, 3.0);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 200u);
}

TEST(NetworkTest, PayloadDataArrivesIntact) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  std::vector<double> got;
  net.set_handler(1, [&](const Message& m) { got = m.data; });
  net.send({0, 1, "data", 0, {1.5, -2.0, 3.25}});
  (void)sim.run();
  EXPECT_EQ(got, (std::vector<double>{1.5, -2.0, 3.25}));
}

TEST(NetworkTest, RequestReplyRoundTrip) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  double reply_at = -1.0;
  net.set_handler(1, [&](const Message& m) {
    if (m.type == "req") net.send({1, 0, "rep", 0, {}});
  });
  net.set_handler(0, [&](const Message& m) {
    if (m.type == "rep") reply_at = sim.now();
  });
  net.send({0, 1, "req", 0, {}});
  (void)sim.run();
  EXPECT_DOUBLE_EQ(reply_at, 2.0);  // two 1 s hops
  EXPECT_EQ(net.messages_sent(), 2u);
}

TEST(NetworkTest, JitterIsDeterministicInSeed) {
  LatencyModel jittery = no_jitter();
  jittery.jitter = 0.5;
  const auto run_once = [&](std::uint64_t seed) {
    Simulator sim;
    Network net(sim, 2, jittery, seed);
    double at = 0.0;
    net.set_handler(1, [&](const Message&) { at = sim.now(); });
    net.send({0, 1, "x", 50, {}});
    (void)sim.run();
    return at;
  };
  EXPECT_DOUBLE_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(NetworkTest, ValidatesEndpointsAndHandlers) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  EXPECT_THROW(net.send({0, 5, "x", 0, {}}), InvalidArgument);
  net.send({0, 1, "x", 0, {}});  // node 1 has no handler yet
  EXPECT_THROW((void)sim.run(), InvalidArgument);
  EXPECT_THROW(Network(sim, 0, no_jitter(), 1), InvalidArgument);
}

// Regression: out-of-range endpoints must throw on send — for the
// *source* as well as the destination — and must not count as sent.
TEST(NetworkTest, RejectsOutOfRangeEndpointsOnSend) {
  Simulator sim;
  Network net(sim, 3, no_jitter(), 1);
  net.set_handler(1, [](const Message&) {});
  EXPECT_THROW(net.send({7, 1, "x", 0, {}}), InvalidArgument);   // bad from
  EXPECT_THROW(net.send({0, 3, "x", 0, {}}), InvalidArgument);   // bad to
  EXPECT_THROW(net.send({9, 9, "x", 0, {}}), InvalidArgument);   // both
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_EQ(net.bytes_sent(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(NetworkTest, ConstructorValidatesLatencyModel) {
  Simulator sim;
  LatencyModel bad = no_jitter();
  bad.base_seconds = -1.0;
  EXPECT_THROW(Network(sim, 2, bad, 1), InvalidArgument);
  bad = no_jitter();
  bad.jitter = -0.5;
  EXPECT_THROW(Network(sim, 2, bad, 1), InvalidArgument);
}

}  // namespace
}  // namespace svo::des
