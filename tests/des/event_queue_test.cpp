#include "des/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace svo::des {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, TiesRunInSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  (void)sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, EventsMayScheduleMoreEvents) {
  Simulator sim;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 10) sim.schedule(1.0, next);
  };
  sim.schedule(0.0, next);
  (void)sim.run();
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(SimulatorTest, RunUntilHorizonStopsEarly) {
  Simulator sim;
  int ran = 0;
  sim.schedule(1.0, [&] { ++ran; });
  sim.schedule(5.0, [&] { ++ran; });
  EXPECT_EQ(sim.run(2.0), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);  // idle advance to horizon
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int ran = 0;
  sim.schedule(1.0, [&] { ++ran; });
  sim.schedule(2.0, [&] { ++ran; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulatorTest, RejectsBadScheduling) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1.0, [] {}), InvalidArgument);
  sim.schedule(5.0, [] {});
  (void)sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), InvalidArgument);  // in the past
  EXPECT_THROW(sim.schedule(1.0, EventFn{}), InvalidArgument);  // empty fn
}

}  // namespace
}  // namespace svo::des
