#include "des/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "des/network.hpp"

namespace svo::des {
namespace {

LatencyModel no_jitter() {
  LatencyModel l;
  l.base_seconds = 1.0;
  l.bytes_per_second = 0.0;
  l.jitter = 0.0;
  return l;
}

TEST(FaultConfigTest, ValidatesFields) {
  FaultConfig bad;
  bad.drop_probability = 1.5;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = FaultConfig{};
  bad.straggler_probability = -0.1;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = FaultConfig{};
  bad.straggler_multiplier = 0.5;  // would *shorten* latency
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = FaultConfig{};
  bad.crashes.push_back({0, 2.0, 1.0});  // end < begin
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = FaultConfig{};
  bad.crashes.push_back({0, -1.0, 1.0});  // negative begin
  EXPECT_THROW(bad.validate(), InvalidArgument);

  FaultConfig ok;
  ok.drop_probability = 0.3;
  ok.straggler_probability = 0.2;
  ok.straggler_multiplier = 4.0;
  ok.crashes.push_back({1, 0.5});  // permanent crash is valid
  EXPECT_NO_THROW(ok.validate());
  EXPECT_TRUE(ok.enabled());
  EXPECT_FALSE(FaultConfig{}.enabled());
}

TEST(FaultInjectorTest, DropProbabilityOneLosesEverything) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  FaultConfig cfg;
  cfg.drop_probability = 1.0;
  FaultInjector injector(cfg);
  net.set_fault_injector(&injector);
  std::size_t delivered = 0;
  net.set_handler(1, [&](const Message&) { ++delivered; });
  for (int i = 0; i < 10; ++i) net.send({0, 1, "x", 0, {}});
  (void)sim.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(injector.stats().link_drops, 10u);
  EXPECT_EQ(net.messages_sent(), 10u);  // still accounted as sent
}

TEST(FaultInjectorTest, CrashWindowBlocksNodeOnlyWhileDown) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  FaultConfig cfg;
  cfg.crashes.push_back({1, 5.0, 9.0});  // node 1 down in [5, 9)
  FaultInjector injector(cfg);
  net.set_fault_injector(&injector);
  std::vector<double> deliveries;
  net.set_handler(1, [&](const Message&) { deliveries.push_back(sim.now()); });
  // 1 s latency each: sent at 0/5/9 -> delivered at 1/-/10.
  net.send({0, 1, "a", 0, {}});
  sim.schedule_at(5.0, [&] { net.send({0, 1, "b", 0, {}}); });
  sim.schedule_at(9.0, [&] { net.send({0, 1, "c", 0, {}}); });
  (void)sim.run();
  EXPECT_EQ(deliveries, (std::vector<double>{1.0, 10.0}));
  EXPECT_EQ(injector.stats().crash_drops, 1u);
  EXPECT_TRUE(injector.is_down(1, 5.0));
  EXPECT_TRUE(injector.is_down(1, 8.999));
  EXPECT_FALSE(injector.is_down(1, 9.0));
  EXPECT_FALSE(injector.is_down(0, 6.0));
}

TEST(FaultInjectorTest, CrashedSourceCannotSend) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  FaultConfig cfg;
  cfg.crashes.push_back({0, 0.0});  // node 0 permanently down
  FaultInjector injector(cfg);
  net.set_fault_injector(&injector);
  std::size_t delivered = 0;
  net.set_handler(1, [&](const Message&) { ++delivered; });
  net.send({0, 1, "x", 0, {}});
  (void)sim.run();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(injector.stats().crash_drops, 1u);
}

TEST(FaultInjectorTest, StragglerScalesLatencyExactly) {
  Simulator sim;
  Network net(sim, 2, no_jitter(), 1);
  FaultConfig cfg;
  cfg.straggler_probability = 1.0;
  cfg.straggler_multiplier = 3.5;
  FaultInjector injector(cfg);
  net.set_fault_injector(&injector);
  double at = -1.0;
  net.set_handler(1, [&](const Message&) { at = sim.now(); });
  net.send({0, 1, "x", 0, {}});
  (void)sim.run();
  EXPECT_DOUBLE_EQ(at, 3.5);  // 1 s nominal * 3.5
  EXPECT_EQ(injector.stats().stragglers, 1u);
}

TEST(FaultInjectorTest, DeterministicInSeed) {
  const auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    Network net(sim, 2, no_jitter(), 1);
    FaultConfig cfg;
    cfg.drop_probability = 0.5;
    cfg.straggler_probability = 0.3;
    cfg.straggler_multiplier = 2.0;
    cfg.seed = seed;
    FaultInjector injector(cfg);
    net.set_fault_injector(&injector);
    std::vector<double> deliveries;
    net.set_handler(1,
                    [&](const Message&) { deliveries.push_back(sim.now()); });
    for (int i = 0; i < 64; ++i) {
      sim.schedule_at(static_cast<double>(i), [&net, i] {
        net.send({0, 1, "x", static_cast<std::size_t>(i), {}});
      });
    }
    (void)sim.run();
    return deliveries;
  };
  const std::vector<double> a = run_once(42);
  EXPECT_EQ(a, run_once(42));
  EXPECT_NE(a, run_once(43));
  EXPECT_GT(a.size(), 0u);
  EXPECT_LT(a.size(), 64u);  // some drops at p = 0.5
}

TEST(FaultInjectorTest, ZeroKnobInjectorIsBitIdenticalToNoInjector) {
  LatencyModel jittery;
  jittery.base_seconds = 0.01;
  jittery.bytes_per_second = 1e6;
  jittery.jitter = 0.4;
  const auto run_once = [&](bool attach) {
    Simulator sim;
    Network net(sim, 3, jittery, 99);
    FaultInjector injector{FaultConfig{}};
    if (attach) net.set_fault_injector(&injector);
    std::vector<double> deliveries;
    net.set_handler(1,
                    [&](const Message&) { deliveries.push_back(sim.now()); });
    net.set_handler(2,
                    [&](const Message&) { deliveries.push_back(sim.now()); });
    for (int i = 0; i < 32; ++i) {
      net.send({0, static_cast<std::size_t>(1 + i % 2), "x",
                static_cast<std::size_t>(i * 100), {}});
    }
    (void)sim.run();
    return deliveries;
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

TEST(RandomCrashWindowsTest, DeterministicAndBounded) {
  const auto a = random_crash_windows(32, 0.5, 10.0, 2.0, 7);
  const auto b = random_crash_windows(32, 0.5, 10.0, 2.0, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_DOUBLE_EQ(a[i].begin, b[i].begin);
    EXPECT_DOUBLE_EQ(a[i].end, b[i].end);
    EXPECT_GE(a[i].begin, 0.0);
    EXPECT_LT(a[i].begin, 10.0);
    EXPECT_GE(a[i].end, a[i].begin);
  }
  EXPECT_GT(a.size(), 0u);
  EXPECT_LT(a.size(), 32u);  // p = 0.5 leaves some nodes alive
  // Probability zero / one edge cases.
  EXPECT_TRUE(random_crash_windows(16, 0.0, 5.0, 1.0, 3).empty());
  EXPECT_EQ(random_crash_windows(16, 1.0, 5.0, 0.0, 3).size(), 16u);
  for (const CrashWindow& w : random_crash_windows(16, 1.0, 5.0, 0.0, 3)) {
    EXPECT_TRUE(std::isinf(w.end));  // mean_outage <= 0: permanent
  }
  EXPECT_THROW(random_crash_windows(4, 1.5, 5.0, 1.0, 3), InvalidArgument);
  EXPECT_THROW(random_crash_windows(4, 0.5, 0.0, 1.0, 3), InvalidArgument);
}

TEST(LatencyModelTest, ValidateRejectsBadFields) {
  LatencyModel l;
  l.base_seconds = -1.0;
  EXPECT_THROW(l.validate(), InvalidArgument);
  l = LatencyModel{};
  l.jitter = -0.1;
  EXPECT_THROW(l.validate(), InvalidArgument);
  l = LatencyModel{};
  l.bytes_per_second = -5.0;
  EXPECT_THROW(l.validate(), InvalidArgument);
  l = LatencyModel{};
  l.base_seconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(l.validate(), InvalidArgument);
  // Edge cases that are explicitly legal: instant links and a disabled
  // size term must not produce NaN/negative delays.
  l = LatencyModel{};
  l.base_seconds = 0.0;
  l.bytes_per_second = 0.0;
  l.jitter = 0.0;
  EXPECT_NO_THROW(l.validate());
  util::Xoshiro256 rng(1);
  EXPECT_DOUBLE_EQ(l.sample(1000, rng), 0.0);
}

}  // namespace
}  // namespace svo::des
