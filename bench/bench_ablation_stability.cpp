/// \file bench_ablation_stability.cpp
/// Ablation: Theorem 1's individual stability under two readings of the
/// member preference. The paper's proof (Case 2) argues with the VO's
/// *total* reputation — under that preference stability always holds.
/// Under the arguably more natural *average* reputation it can fail;
/// this harness measures how often, across many random scenarios.
#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "game/payoff.hpp"
#include "game/stability.hpp"
#include "ip/bnb.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Ablation",
                "Theorem 1 stability: total vs average reputation preference");

  sim::ExperimentConfig cfg = bench::paper_config();
  cfg.gen.params.num_gsps = 8;
  cfg.task_sizes = {64};
  cfg.trace.canonical_sizes = {64};
  const sim::ScenarioFactory factory(cfg);
  const ip::BnbAssignmentSolver solver(cfg.solver);

  std::size_t runs = 0;
  std::size_t stable_total = 0;
  std::size_t stable_average = 0;
  const std::size_t scenarios = std::max<std::size_t>(cfg.repetitions, 20);
  for (std::size_t rep = 0; rep < scenarios; ++rep) {
    const sim::Scenario s = factory.make(64, rep);
    const core::TvofMechanism tvof(solver, cfg.mechanism);
    util::Xoshiro256 rng(s.tvof_seed);
    const core::MechanismResult r =
        tvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng});
    if (!r.success) continue;
    ++runs;

    const game::VoValueFunction v(s.instance.assignment, solver);
    const auto make_scorer = [&](bool average) {
      return [&, average](game::Coalition c) {
        game::BicriteriaPoint p;
        p.tag = c.bits();
        const auto& eval = v.evaluate(c);
        p.payoff =
            eval.feasible ? game::equal_share(eval.value, c.size()) : 0.0;
        double rep_sum = 0.0;
        for (const std::size_t g : c.members()) {
          rep_sum += r.global_reputation[g];
        }
        p.reputation = average && !c.empty()
                           ? rep_sum / static_cast<double>(c.size())
                           : rep_sum;
        return p;
      };
    };
    stable_total += game::individually_stable(r.selected, make_scorer(false));
    stable_average +=
        game::individually_stable(r.selected, make_scorer(true));
  }

  util::Table table({"preference", "stable VOs", "runs", "rate"});
  table.set_precision(3);
  table.add_row({std::string("total reputation (paper's proof)"),
                 static_cast<long long>(stable_total),
                 static_cast<long long>(runs),
                 runs ? static_cast<double>(stable_total) / runs : 0.0});
  table.add_row({std::string("average reputation (eq. 7 metric)"),
                 static_cast<long long>(stable_average),
                 static_cast<long long>(runs),
                 runs ? static_cast<double>(stable_average) / runs : 0.0});
  bench::emit(table, "ablation_stability.csv");
  std::printf("\ninterpretation: under total reputation every departure "
              "strictly lowers the VO's reputation mass, so Theorem 1 is "
              "immediate; under average reputation departures of "
              "below-average members can be weakly preferred.\n");
  return 0;
}
