/// \file bench_ablation_tightness.cpp
/// Sensitivity of the mechanism to Table I's two economic knobs: the
/// deadline factor range (capacity tightness) and the payment factor
/// range (budget tightness). Explains the dynamics behind Figs. 1-3:
/// tight deadlines force large VOs, generous ones let TVOF prune deep;
/// payment shifts payoffs but not membership (cost minimization is
/// payment-independent until (10) binds).
#include "bench/common.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Ablation", "deadline/payment tightness sensitivity");

  struct Band {
    const char* name;
    double d_lo, d_hi;
    double p_lo, p_hi;
  };
  const std::vector<Band> bands{
      {"paper (d 0.3-2.0, P 0.2-0.4)", 0.3, 2.0, 0.2, 0.4},
      {"tight deadline (0.3-0.6)", 0.3, 0.6, 0.2, 0.4},
      {"loose deadline (2.0-4.0)", 2.0, 4.0, 0.2, 0.4},
      {"tight payment (0.12-0.15)", 0.3, 2.0, 0.12, 0.15},
      {"rich payment (0.8-1.0)", 0.3, 2.0, 0.8, 1.0},
  };

  util::Table table({"band", "VO size", "payoff share", "avg reputation",
                     "feasibility redraws"});
  table.set_precision(3);
  for (const auto& band : bands) {
    sim::ExperimentConfig cfg = bench::paper_config();
    cfg.task_sizes = {256};
    cfg.run_rvof = false;
    cfg.gen.params.deadline_factor_lo = band.d_lo;
    cfg.gen.params.deadline_factor_hi = band.d_hi;
    cfg.gen.params.payment_factor_lo = band.p_lo;
    cfg.gen.params.payment_factor_hi = band.p_hi;
    const sim::ScenarioFactory factory(cfg);
    util::RunningStats redraws;
    for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
      redraws.add(static_cast<double>(
          factory.make(256, rep).instance.feasibility_redraws));
    }
    const sim::ExperimentRunner runner(cfg);
    const sim::SweepResult sweep = runner.run_sweep();
    const auto& p = sweep.points.front();
    table.add_row({std::string(band.name), p.tvof.vo_size.mean(),
                   p.tvof.payoff.mean(), p.tvof.avg_reputation.mean(),
                   redraws.mean()});
  }
  bench::emit(table, "ablation_tightness.csv");
  std::printf("\ninterpretation: the deadline band sets the minimum VO "
              "size (and how many draws the feasibility guarantee "
              "rejects); the payment band translates payoffs almost "
              "linearly and only reshapes membership when (10) starts "
              "binding from below.\n");
  return 0;
}
