/// \file bench_fig9_exec_time.cpp
/// Fig. 9: mechanism execution time vs number of tasks, TVOF vs RVOF.
/// Paper finding: both times grow with the task count (the IP solves
/// dominate); absolute values depend on the solver, so only the shape is
/// comparable (the paper ran CPLEX on 2012 hardware).
#include "bench/common.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Fig. 9", "mechanism execution time vs number of tasks");

  const sim::ExperimentConfig cfg = bench::paper_config();
  const sim::SweepResult sweep = bench::run_paper_sweep(cfg);

  util::Table table({"tasks", "TVOF seconds", "RVOF seconds",
                     "TVOF stddev", "RVOF stddev"});
  table.set_precision(4);
  for (const auto& p : sweep.points) {
    table.add_row({static_cast<long long>(p.num_tasks),
                   p.tvof.exec_seconds.mean(), p.rvof.exec_seconds.mean(),
                   p.tvof.exec_seconds.stddev(),
                   p.rvof.exec_seconds.stddev()});
  }
  bench::emit(table, "fig9_exec_time.csv");
  const double first = sweep.points.front().tvof.exec_seconds.mean();
  const double last = sweep.points.back().tvof.exec_seconds.mean();
  if (first > 0.0) {
    std::printf("\nTVOF time grows %.1fx from n=%zu to n=%zu "
                "(paper: increasing, dominated by the mapping).\n",
                last / first, sweep.points.front().num_tasks,
                sweep.points.back().num_tasks);
  }
  return 0;
}
