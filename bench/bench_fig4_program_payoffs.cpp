/// \file bench_fig4_program_payoffs.cpp
/// Fig. 4: for 10 different programs with 256 tasks, the individual
/// payoff of the VO TVOF selects (max individual payoff) next to the
/// payoff of the VO with the highest payoff x average-reputation product
/// within TVOF's list L. Paper finding: in most programs the two
/// selections coincide — TVOF's pick is already the Pareto-optimal one.
#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Fig. 4",
                "per-program payoffs: TVOF pick vs max(payoff x reputation)");

  const sim::ExperimentConfig cfg = bench::paper_config();
  const sim::ScenarioFactory factory(cfg);
  const ip::BnbAssignmentSolver solver(cfg.solver);

  core::MechanismConfig payoff_rule = cfg.mechanism;
  payoff_rule.selection = core::SelectionRule::MaxIndividualPayoff;
  core::MechanismConfig product_rule = cfg.mechanism;
  product_rule.selection = core::SelectionRule::MaxPayoffReputationProduct;
  const core::TvofMechanism tvof(solver, payoff_rule);
  const core::TvofMechanism tvof_product(solver, product_rule);

  util::Table table({"program", "TVOF payoff", "max-product payoff",
                     "TVOF |C|", "product |C|", "same VO"});
  table.set_precision(2);
  std::size_t agree = 0;
  const std::size_t programs = 10;
  for (std::size_t prog = 0; prog < programs; ++prog) {
    const sim::Scenario s = factory.make(256, prog);
    util::Xoshiro256 rng_a(s.tvof_seed);
    util::Xoshiro256 rng_b(s.tvof_seed);  // identical removals, by design
    const core::MechanismResult a =
        tvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng_a});
    const core::MechanismResult b =
        tvof_product.run(core::FormationRequest{s.instance.assignment, s.trust, rng_b});
    const bool same = a.selected == b.selected;
    agree += same;
    table.add_row({static_cast<long long>(prog + 1), a.payoff_share,
                   b.payoff_share, static_cast<long long>(a.selected.size()),
                   static_cast<long long>(b.selected.size()),
                   std::string(same ? "yes" : "no")});
  }
  bench::emit(table, "fig4_program_payoffs.csv");
  std::printf("\nselections agree on %zu/%zu programs "
              "(paper: most programs).\n",
              agree, programs);
  return 0;
}
