/// \file bench_extension_attacks.cpp
/// Extension: closed-loop resilience under trust attacks — an
/// attacker-fraction x attack-type sweep of sim::run_adversarial_loop
/// comparing three arms on identical programs and execution luck:
///
///   TVOF-literal  the paper's pipeline, believing every report
///   TVOF-robust   trust/robust.hpp defenses on (credibility weighting,
///                 trimmed aggregation, re-entry quarantine)
///   RVOF          reputation-blind baseline (immune to report attacks,
///                 but blind to genuine reputation too)
///
/// Reported per cell: mean realized share (the money actually earned
/// after attackers underdeliver), rank corruption of the reputation
/// vector the mechanism acted on, and the attacker share of the selected
/// VOs. Emits BENCH_attacks.json with the acceptance aggregate: at >=30%
/// colluding attackers the robust arm must retain strictly more realized
/// value than the literal arm, and its degradation across the collusion
/// sweep must be graceful (bounded and monotone up to a tolerance).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "ip/bnb.hpp"
#include "sim/adversary.hpp"
#include "util/stats.hpp"

namespace {

using namespace svo;

constexpr std::size_t kGsps = 12;
constexpr std::size_t kTasks = 36;
constexpr std::size_t kRounds = 10;

/// Honest direct trust tracking the hidden thetas (plus noise): the
/// regime where reputation carries real signal about who will deliver —
/// the premise of TVOF, and the thing the attacks corrupt. Dense enough
/// (p = 0.85) that every trustee has a meaningful median consensus.
trust::TrustGraph informed_trust(const std::vector<double>& thetas,
                                 util::Xoshiro256& rng) {
  const std::size_t m = thetas.size();
  trust::TrustGraph trust(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j || rng.uniform() > 0.85) continue;
      const double noisy = 0.1 + 0.75 * thetas[j] + 0.15 * rng.uniform();
      trust.set_trust(i, j, std::min(1.0, std::max(0.05, noisy)));
    }
  }
  return trust;
}

struct ArmStats {
  util::RunningStats realized;
  util::RunningStats corruption;
  util::RunningStats attacker_share;
  util::RunningStats completion;
};

struct Cell {
  std::string attack;
  double fraction = 0.0;
  ArmStats literal, robust, rvof;
  /// Attack-free oracle: the literal pipeline on the same effective
  /// population (attacker thetas included, honestly known) with no
  /// report perturbation — the ceiling any defense can retain. The
  /// degradation gate is robust/oracle, which removes the mechanical
  /// rise of per-member shares as attackers shrink the usable pool.
  ArmStats oracle;
};

sim::AdversarialLoopResult run_arm(sim::MechanismKind kind, bool defended,
                                   const ip::AssignmentSolver& solver,
                                   const sim::ReliabilityModel& model,
                                   const trust::AttackScenario& attack,
                                   const trust::TrustGraph& initial,
                                   std::uint64_t seed) {
  const core::MechanismConfig mechanism_config;
  sim::AdversarialLoopConfig cfg;
  cfg.loop.rounds = kRounds;
  cfg.loop.num_tasks = kTasks;
  cfg.loop.gen.params.num_gsps = kGsps;
  // Generous payment band: completing is clearly profitable and the
  // per-member share peaks at small coalitions, so the *removal order*
  // (where the reputation signal lives) decides who is in the final VO.
  cfg.loop.gen.params.payment_factor_lo = 0.8;
  cfg.loop.gen.params.payment_factor_hi = 1.2;
  cfg.attack = attack;
  cfg.defenses.enabled = defended;
  cfg.initial_trust_graph = initial;
  return sim::run_adversarial_loop(kind, solver, mechanism_config, model, cfg,
                                   seed);
}

double mean_selected_attacker_share(const sim::AdversarialLoopResult& r) {
  util::RunningStats s;
  for (const sim::AdversarialRoundRecord& rec : r.rounds) {
    if (rec.formed) s.add(rec.attacker_selected_fraction);
  }
  return s.count() > 0 ? s.mean() : 0.0;
}

Cell run_cell(const std::string& attack_name, trust::AttackType type,
              double fraction, std::size_t reps,
              const ip::AssignmentSolver& solver, std::uint64_t root_seed) {
  Cell cell;
  cell.attack = attack_name;
  cell.fraction = fraction;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    util::Xoshiro256 pop(util::derive_seed(root_seed, 100 + rep));
    // Honest GSPs are reliable (theta in [0.9, 1]); the only unreliable
    // parties are the attackers, whose theta the loop forces to 0.15 —
    // the gap a trustworthy reputation signal should exploit.
    const sim::ReliabilityModel model =
        sim::ReliabilityModel::bimodal(kGsps, 1.0, 0.9, 0.3, pop);

    trust::AttackScenario attack;
    attack.type = type;
    attack.attacker_fraction = fraction;
    attack.intensity = 0.9;
    attack.seed = util::derive_seed(root_seed, 200 + rep);

    // Honest raters already know the attackers underdeliver: the initial
    // graph tracks the loop's *effective* thetas (attackers overridden),
    // so the attack has real signal to bury.
    std::vector<double> effective = model.thetas();
    const trust::AttackInjector preview(attack, kGsps);
    for (const std::size_t a : preview.attackers()) {
      effective[a] = 0.15;
    }
    const trust::TrustGraph initial = informed_trust(effective, pop);

    const std::uint64_t loop_seed = util::derive_seed(root_seed, 300 + rep);
    const auto collect = [&](ArmStats& arm, sim::MechanismKind kind,
                             bool defended, const sim::ReliabilityModel& mdl,
                             const trust::AttackScenario& atk) {
      const sim::AdversarialLoopResult r =
          run_arm(kind, defended, solver, mdl, atk, initial, loop_seed);
      arm.realized.add(r.mean_realized_share);
      arm.corruption.add(r.mean_rank_corruption);
      arm.attacker_share.add(mean_selected_attacker_share(r));
      arm.completion.add(r.completion_rate);
    };
    collect(cell.literal, sim::MechanismKind::Tvof, false, model, attack);
    collect(cell.robust, sim::MechanismKind::Tvof, true, model, attack);
    collect(cell.rvof, sim::MechanismKind::Rvof, false, model, attack);
    // Oracle: no report attack, but the attackers' true (poor) delivery
    // baked into the model so the populations match.
    collect(cell.oracle, sim::MechanismKind::Tvof, false,
            sim::ReliabilityModel(effective), trust::AttackScenario{});
  }
  std::fprintf(stderr,
               "  %-15s f=%.3f  literal %.1f  robust %.1f  rvof %.1f\n",
               attack_name.c_str(), fraction, cell.literal.realized.mean(),
               cell.robust.realized.mean(), cell.rvof.realized.mean());
  return cell;
}

void emit_json(const std::vector<Cell>& cells,
               const std::vector<const Cell*>& collusion_sweep) {
  bench::Report report("attacks");
  obs::JsonWriter& j = report.json();
  j.kv("experiment", "attack_resilience_closed_loop");
  j.kv("gsps", kGsps).kv("tasks", kTasks).kv("rounds", kRounds);
  j.key("cells").begin_array();
  const auto arm = [&j](const char* name, const ArmStats& a) {
    j.key(name).begin_object();
    j.kv("realized_share", a.realized.mean());
    j.kv("rank_corruption", a.corruption.mean());
    j.kv("attacker_vo_share", a.attacker_share.mean());
    j.kv("completion_rate", a.completion.mean());
    j.end_object();
  };
  for (const Cell& c : cells) {
    j.begin_object();
    j.kv("attack", c.attack).kv("fraction", c.fraction);
    arm("tvof_literal", c.literal);
    arm("tvof_robust", c.robust);
    arm("rvof", c.rvof);
    j.end_object();
  }
  j.end_array();

  // Acceptance aggregate over the collusion sweep. Two gates:
  //  1. The defended arm strictly beats the literal one wherever the
  //     ring holds >= 30% of the population.
  //  2. Graceful degradation: the defense's *retention* — realized value
  //     relative to the attack-free oracle on the same effective
  //     population — is bounded and monotonically non-increasing in the
  //     attacker fraction (up to a noise tolerance; 3 reps).
  bool robust_beats_literal = true;
  for (const Cell* c : collusion_sweep) {
    if (c->fraction >= 0.3 &&
        !(c->robust.realized.mean() > c->literal.realized.mean())) {
      robust_beats_literal = false;
    }
  }
  const auto retention = [](const Cell& c) {
    return c.robust.realized.mean() /
           std::max(std::abs(c.oracle.realized.mean()), 1.0);
  };
  constexpr double kTolerance = 0.1;
  bool monotone = true;
  for (std::size_t i = 1; i < collusion_sweep.size(); ++i) {
    if (retention(*collusion_sweep[i]) >
        retention(*collusion_sweep[i - 1]) + kTolerance) {
      monotone = false;
    }
  }
  j.key("aggregate").begin_object();
  j.key("collusion_sweep").begin_array();
  for (const Cell* cp : collusion_sweep) {
    const Cell& c = *cp;
    j.begin_object();
    j.kv("fraction", c.fraction);
    j.kv("literal", c.literal.realized.mean());
    j.kv("robust", c.robust.realized.mean());
    j.kv("rvof", c.rvof.realized.mean());
    j.kv("oracle", c.oracle.realized.mean());
    j.kv("robust_retention", retention(c));
    j.end_object();
  }
  j.end_array();
  j.kv("robust_beats_literal_at_30pct", robust_beats_literal);
  j.kv("robust_degradation_monotone", monotone);
  j.kv("monotone_tolerance", kTolerance);
  j.end_object();
  report.write();
  std::printf("\nacceptance: robust beats literal at >=30%% collusion: %s; "
              "robust degradation monotone: %s\n",
              robust_beats_literal ? "yes" : "NO",
              monotone ? "yes" : "NO");
}

}  // namespace

int main() {
  const bench::Session session("Extension",
                "adversarial trust: attack x fraction sweep, "
                "TVOF-literal vs TVOF-robust vs RVOF");

  const std::uint64_t root_seed = util::env_u64_or("SVO_SEED", 20120911);
  const std::size_t reps = util::env_positive_size_or("SVO_REPS", 3);

  // Anytime node budget, identical across arms (DESIGN.md §4.4); small
  // because the sweep runs 3 arms x ~10 cells x reps closed loops.
  ip::BnbOptions opts;
  opts.max_nodes = 4000;
  const ip::BnbAssignmentSolver solver(opts);

  std::vector<Cell> cells;
  std::vector<std::size_t> collusion_idx;

  // The acceptance sweep: a colluding ring growing to just under half
  // the population (>= 0.3 is the gated regime; beyond ~0.5 the ring is
  // the majority of raters and captures the median consensus — the
  // <50%-byzantine boundary every robust aggregator shares).
  for (const double fraction : {0.0, 0.15, 0.3, 0.45}) {
    collusion_idx.push_back(cells.size());
    cells.push_back(run_cell("collusion", trust::AttackType::Collusion,
                             fraction, reps, solver, root_seed));
  }
  // One fixed-fraction row per remaining family.
  for (const trust::AttackType type :
       {trust::AttackType::Badmouthing, trust::AttackType::BallotStuffing,
        trust::AttackType::OnOff, trust::AttackType::Whitewashing,
        trust::AttackType::Sybil}) {
    cells.push_back(
        run_cell(trust::to_string(type), type, 0.3, reps, solver, root_seed));
  }

  util::Table table({"attack", "fraction", "literal $", "robust $", "RVOF $",
                     "lit corr", "rob corr", "lit atk-VO", "rob atk-VO"});
  table.set_precision(3);
  for (const Cell& c : cells) {
    table.add_row({c.attack, c.fraction, c.literal.realized.mean(),
                   c.robust.realized.mean(), c.rvof.realized.mean(),
                   c.literal.corruption.mean(), c.robust.corruption.mean(),
                   c.literal.attacker_share.mean(),
                   c.robust.attacker_share.mean()});
  }
  bench::emit(table, "extension_attacks.csv");

  std::vector<const Cell*> collusion_sweep;
  for (const std::size_t i : collusion_idx) {
    collusion_sweep.push_back(&cells[i]);
  }
  emit_json(cells, collusion_sweep);

  std::printf(
      "\ninterpretation: '$' is the mean realized per-member share over "
      "%zu reps of a %zu-round closed loop; attackers deliver at theta = "
      "0.15 regardless of what their stuffed ballots promise. The literal "
      "eigenvector pipeline ranks the colluding ring highly (rank "
      "corruption grows with the ring), keeps attackers in the VO, and "
      "pays for it in realized value; credibility weighting plus trimmed "
      "aggregation mutes the ring, so the robust arm tracks the honest "
      "ranking and keeps its earnings close to the attack-free baseline. "
      "RVOF ignores reputation entirely: unswayed by ballots, but equally "
      "happy to pick an attacker as anyone else.\n",
      reps, kRounds);
  return 0;
}
