/// \file bench_ablation_propagation.cpp
/// Ablation of the reputation machinery itself: the paper's power-method
/// global reputation vs path-based trust propagation (Hang et al. [1],
/// surveyed in Section I-A). We densify a sparse ER(16, 0.1) trust graph
/// with propagated trust, rerun TVOF on it, and compare against TVOF on
/// the raw graph — does propagation-as-preprocessing change the VOs the
/// mechanism forms?
#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "trust/propagation.hpp"

namespace {

/// Trust graph whose missing edges are filled by propagation.
svo::trust::TrustGraph densify(const svo::trust::TrustGraph& g,
                               const svo::trust::PropagationOptions& opts) {
  using namespace svo;
  const linalg::Matrix m = trust::propagated_matrix(g, opts);
  trust::TrustGraph out(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    for (std::size_t j = 0; j < g.size(); ++j) {
      if (i != j && m(i, j) > 0.0) out.set_trust(i, j, m(i, j));
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace svo;
  const bench::Session session("Ablation",
                "reputation machinery: power method vs trust propagation");

  sim::ExperimentConfig cfg = bench::paper_config();
  cfg.task_sizes = {256};
  const sim::ScenarioFactory factory(cfg);
  const ip::BnbAssignmentSolver solver(cfg.solver);
  const core::TvofMechanism tvof(solver, cfg.mechanism);

  struct Variant {
    const char* name;
    bool propagate;
    trust::PropagationOptions opts;
  };
  std::vector<Variant> variants{
      {"raw graph (paper)", false, {}},
      {"product/best-path", true, {}},
      {"min/best-path", true,
       {trust::Concatenation::Minimum, trust::Aggregation::BestPath, 4, true}},
      {"product/prob-or", true,
       {trust::Concatenation::Product, trust::Aggregation::ProbabilisticOr, 4,
        true}},
  };

  util::Table table({"trust preprocessing", "edges", "avg reputation",
                     "payoff share", "VO size"});
  table.set_precision(4);
  for (const auto& variant : variants) {
    util::RunningStats reputation;
    util::RunningStats payoff;
    util::RunningStats vo_size;
    util::RunningStats edges;
    for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
      const sim::Scenario s = factory.make(256, rep);
      const trust::TrustGraph graph =
          variant.propagate ? densify(s.trust, variant.opts) : s.trust;
      edges.add(static_cast<double>(graph.graph().edge_count()));
      util::Xoshiro256 rng(s.tvof_seed);
      const core::MechanismResult r =
          tvof.run(core::FormationRequest{s.instance.assignment, graph, rng});
      if (!r.success) continue;
      reputation.add(r.avg_global_reputation);
      payoff.add(r.payoff_share);
      vo_size.add(static_cast<double>(r.selected.size()));
    }
    table.add_row({std::string(variant.name), edges.mean(),
                   reputation.mean(), payoff.mean(), vo_size.mean()});
  }
  bench::emit(table, "ablation_propagation.csv");
  std::printf("\ninterpretation: propagation densifies opinion coverage "
              "(more edges) but smooths the reputation signal; the power "
              "method on the raw graph already aggregates transitive "
              "trust, which is the paper's argument for eq. (4).\n");
  return 0;
}
