/// \file bench_extension_faults.cpp
/// Extension: the fault-tolerant trusted-party protocol under stress — a
/// drop-rate x crash-rate sweep of one VO formation plus execution with
/// mid-run VO repair. Reports the recovery counters (retries, timeouts,
/// protocol repair rounds, observed drops, degraded/failed formations)
/// and the *realized* value of TVOF vs RVOF when the population's hidden
/// reliability correlates with trust: under faults TVOF keeps selecting
/// members that both answer and deliver, while RVOF gambles.
#include <vector>

#include "bench/common.hpp"
#include "core/distributed_tvof.hpp"
#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "sim/execution.hpp"
#include "tests/ip/test_instances.hpp"

namespace {

using namespace svo;

/// Trust graph whose direct-trust tracks the hidden thetas (plus noise):
/// the regime in which reputation carries real information about who
/// will deliver, i.e. the premise of the paper's TVOF.
trust::TrustGraph trust_from_reliability(const sim::ReliabilityModel& model,
                                         util::Xoshiro256& rng) {
  const std::size_t m = model.size();
  trust::TrustGraph trust(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j || rng.uniform() > 0.6) continue;
      const double noisy =
          0.15 + 0.7 * model.theta(j) + 0.15 * rng.uniform();
      trust.set_trust(i, j, std::min(1.0, std::max(0.0, noisy)));
    }
  }
  return trust;
}

struct CellStats {
  util::RunningStats tvof_value, rvof_value;
  util::RunningStats retries, timeouts, drops, protocol_repairs;
  std::size_t degraded = 0;
  std::size_t failed = 0;
};

}  // namespace

int main() {
  const bench::Session session("Extension",
                "fault-tolerant protocol: drop x crash sweep, TVOF vs RVOF");

  constexpr std::size_t kGsps = 10;
  constexpr std::size_t kTasks = 48;
  constexpr std::size_t kReps = 4;
  const std::vector<double> drop_rates = {0.0, 0.05, 0.15};
  const std::vector<double> crash_rates = {0.0, 0.10, 0.25};

  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const core::RvofMechanism rvof(solver);

  util::Table table({"drop p", "crash p", "TVOF value", "RVOF value",
                     "retries", "timeouts", "drops", "repairs", "degraded",
                     "failed"});
  table.set_precision(2);
  for (const double drop : drop_rates) {
    for (const double crash : crash_rates) {
      CellStats cell;
      for (std::size_t rep = 0; rep < kReps; ++rep) {
        util::Xoshiro256 gen(9000 + rep);
        const ip::AssignmentInstance inst =
            ip::testing::random_instance(kGsps, kTasks, gen);
        util::Xoshiro256 pop(500 + rep);
        const sim::ReliabilityModel model =
            sim::ReliabilityModel::bimodal(kGsps, 0.6, 0.85, 0.3, pop);
        const trust::TrustGraph trust = trust_from_reliability(model, pop);

        core::ProtocolOptions proto;
        proto.latency.base_seconds = 0.025;       // WAN round-half: 25 ms
        proto.latency.bytes_per_second = 1.25e7;  // 100 Mbit/s links
        proto.latency.jitter = 0.2;
        proto.report_timeout_seconds = 0.25;
        proto.award_timeout_seconds = 0.15;
        proto.faults.drop_probability = drop;
        proto.faults.straggler_probability = 0.05;
        proto.faults.straggler_multiplier = 4.0;
        proto.faults.seed = 0xFA117 + rep;
        // Permanent provider crashes at a uniform time inside the
        // protocol's working window (the paper's defaulting GSP). The
        // horizon matches the protocol's actual span (~0.2 s under this
        // latency model) so crashes land mid-formation, not after it.
        proto.faults.crashes = core::gsp_crash_schedule(
            des::random_crash_windows(kGsps, crash, 0.2, 0.0, 77 + rep));

        const auto realized = [&](const core::VoFormationMechanism& mech,
                                  std::uint64_t seed) {
          util::Xoshiro256 rng(seed);
          const core::DistributedRunResult r =
              core::run_distributed(mech, inst, trust, rng, proto);
          double value = 0.0;
          if (r.mechanism.success) {
            util::Xoshiro256 exec_rng(seed ^ 0xE0E0);
            value = sim::execute_with_repair(mech, inst, trust, r.mechanism,
                                             model, exec_rng)
                        .total_realized_value;
          }
          return std::make_pair(r, value);
        };
        const auto [rt, vt] = realized(tvof, 11 + rep);
        const auto [rr, vr] = realized(rvof, 11 + rep);
        cell.tvof_value.add(vt);
        cell.rvof_value.add(vr);
        cell.retries.add(static_cast<double>(rt.protocol.retries));
        cell.timeouts.add(static_cast<double>(rt.protocol.timeouts_fired));
        cell.drops.add(static_cast<double>(rt.protocol.drops_observed));
        cell.protocol_repairs.add(
            static_cast<double>(rt.protocol.repair_rounds));
        cell.degraded += rt.protocol.degraded_quorum ? 1 : 0;
        cell.failed += rt.protocol.formation_failed ? 1 : 0;
      }
      table.add_row({drop, crash, cell.tvof_value.mean(),
                     cell.rvof_value.mean(), cell.retries.mean(),
                     cell.timeouts.mean(), cell.drops.mean(),
                     cell.protocol_repairs.mean(),
                     static_cast<long long>(cell.degraded),
                     static_cast<long long>(cell.failed)});
    }
  }
  bench::emit(table, "extension_faults.csv");
  std::printf(
      "\ninterpretation: counters are TVOF-side means over %zu reps "
      "(degraded/failed are counts out of %zu). With faults off every "
      "counter is zero and values match the lossless protocol; as drops "
      "and crashes grow, timeouts and CFP re-sends absorb the loss, "
      "quorum degradation and VO repair keep formations alive, and "
      "TVOF's realized value degrades more gracefully than RVOF's "
      "because trust-guided selection avoids the members most likely to "
      "default mid-execution.\n",
      kReps, kReps);
  return 0;
}
