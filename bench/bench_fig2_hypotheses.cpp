/// \file bench_fig2_hypotheses.cpp
/// Fig. 2 follow-up. Our default protocol reproduces the paper's VO-size
/// *level* but not its growth with the task count (EXPERIMENTS.md). This
/// harness tests two candidate explanations on equal footing:
///
///  H1 (trace correlation): big jobs have relatively shorter runtimes.
///     Analysis says this must cancel — the Table I deadline and the
///     task workloads are both proportional to the same job Runtime, so
///     the minimum feasible VO size is invariant to it. We test it
///     anyway (size_runtime_exponent = -0.4).
///
///  H2 (solver-effort artifact): the paper's CPLEX runs were
///     time-limited; at 4096-8192 tasks, *proving feasibility* of small
///     coalitions becomes the bottleneck, so the mechanism's loop stops
///     earlier (failing its line-5 mapping) and the selected VO stays
///     large. We emulate a fixed-effort exact solver by disabling the
///     greedy seed and capping B&B nodes: the same budget that finds
///     feasible mappings at n = 256 starts failing at larger n.
#include "bench/common.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Fig. 2 follow-up", "why does VO size grow in the paper?");

  struct Variant {
    const char* name;
    double exponent;
    bool greedy_seed;
    std::size_t max_nodes;
  };
  const std::vector<Variant> variants{
      {"baseline (paper protocol, strong solver)", 0.0, true, 20'000},
      {"H1: size-runtime correlation -0.4", -0.4, true, 20'000},
      {"H2: fixed-effort solver (no seed, 10k nodes)", 0.0, false, 10'000},
  };

  util::Table table({"variant", "n=256", "n=1024", "n=4096", "n=8192",
                     "trend"});
  table.set_precision(1);
  for (const auto& variant : variants) {
    sim::ExperimentConfig cfg = bench::paper_config();
    cfg.task_sizes = {256, 1024, 4096, 8192};
    cfg.run_rvof = false;
    cfg.trace.size_runtime_exponent = variant.exponent;
    cfg.solver.seed_with_greedy = variant.greedy_seed;
    cfg.solver.max_nodes = variant.max_nodes;
    const sim::ExperimentRunner runner(cfg);
    const sim::SweepResult sweep = runner.run_sweep();
    std::vector<double> sizes;
    for (const auto& p : sweep.points) {
      sizes.push_back(p.tvof.vo_size.count() > 0 ? p.tvof.vo_size.mean()
                                                 : 16.0);
    }
    const char* trend = sizes.back() > sizes.front() + 0.5   ? "grows"
                        : sizes.back() < sizes.front() - 0.5 ? "shrinks"
                                                             : "flat";
    table.add_row({std::string(variant.name), sizes[0], sizes[1], sizes[2],
                   sizes[3], std::string(trend)});
  }
  bench::emit(table, "fig2_hypotheses.csv");
  std::printf("\nmeasured verdict: NEITHER hypothesis moves the curve on "
              "this substrate. H1 cancels exactly as analysis predicts "
              "(deadline and workloads share the Runtime factor). H2 "
              "turns out not to bite either: feasibility at coalition "
              "sizes above the capacity boundary is easy for any "
              "cheapest-first DFS, and at the boundary the VO chain stops "
              "regardless of budget. Conclusion: under Table I the "
              "minimum feasible VO size is ~750/(f*procs_mean), "
              "independent of n, so Fig. 2's growth cannot follow from "
              "the documented protocol alone — it must stem from "
              "undocumented properties of the authors' trace sampling or "
              "solver configuration.\n");
  return 0;
}
