/// \file bench_extension_reliability.cpp
/// The closed-loop experiment the paper motivates but never runs:
/// hidden per-GSP reliabilities, all-or-nothing payment (Section II-A:
/// "if the program execution exceeds d, the user is not willing to pay
/// any amount"), and trust learned from delivered service. Compares
/// TVOF and RVOF on *realized* value over a sequence of programs —
/// quantifying what reputation-guided formation is actually worth.
#include "bench/common.hpp"
#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "sim/learning.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Extension",
                "closed-loop reliability: realized value, TVOF vs RVOF");

  sim::ClosedLoopConfig cfg;
  cfg.rounds = 30;
  cfg.num_tasks = 96;
  cfg.gen.params.num_gsps = 16;
  const std::size_t kSeeds = 8;

  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);
  const core::RvofMechanism rvof(solver);
  core::MechanismConfig risk_cfg;
  risk_cfg.selection = core::SelectionRule::MaxExpectedIndividualPayoff;
  const core::TvofMechanism risk_aware(solver, risk_cfg);

  // Learning curves: per round (averaged over seeds), the fraction of
  // unreliable members in the selected VO and the completion indicator.
  std::vector<util::RunningStats> tvof_unreliable(cfg.rounds);
  std::vector<util::RunningStats> rvof_unreliable(cfg.rounds);
  std::vector<util::RunningStats> tvof_completed(cfg.rounds);
  std::vector<util::RunningStats> rvof_completed(cfg.rounds);
  util::RunningStats tvof_realized;
  util::RunningStats rvof_realized;
  util::RunningStats risk_realized;
  util::RunningStats tvof_completion;
  util::RunningStats rvof_completion;
  util::RunningStats risk_completion;

  for (std::size_t seed = 1; seed <= kSeeds; ++seed) {
    util::Xoshiro256 rng(seed * 7919);
    const sim::ReliabilityModel model =
        sim::ReliabilityModel::bimodal(16, 0.625, 0.9, 0.3, rng);
    const sim::ClosedLoopResult rt =
        sim::run_closed_loop(tvof, model, cfg, seed);
    const sim::ClosedLoopResult rr =
        sim::run_closed_loop(rvof, model, cfg, seed);
    const sim::ClosedLoopResult rk =
        sim::run_closed_loop(risk_aware, model, cfg, seed);
    tvof_realized.add(rt.mean_realized_share);
    rvof_realized.add(rr.mean_realized_share);
    risk_realized.add(rk.mean_realized_share);
    tvof_completion.add(rt.completion_rate);
    rvof_completion.add(rr.completion_rate);
    risk_completion.add(rk.completion_rate);
    for (std::size_t round = 0; round < cfg.rounds; ++round) {
      if (rt.rounds[round].formed) {
        tvof_unreliable[round].add(rt.rounds[round].unreliable_member_fraction);
        tvof_completed[round].add(rt.rounds[round].completed ? 1.0 : 0.0);
      }
      if (rr.rounds[round].formed) {
        rvof_unreliable[round].add(rr.rounds[round].unreliable_member_fraction);
        rvof_completed[round].add(rr.rounds[round].completed ? 1.0 : 0.0);
      }
    }
  }

  util::Table curve({"round", "TVOF unreliable frac", "RVOF unreliable frac",
                     "TVOF completion", "RVOF completion"});
  curve.set_precision(3);
  for (std::size_t round = 0; round < cfg.rounds; round += 3) {
    curve.add_row({static_cast<long long>(round),
                   tvof_unreliable[round].mean(),
                   rvof_unreliable[round].mean(),
                   tvof_completed[round].mean(),
                   rvof_completed[round].mean()});
  }
  bench::emit(curve, "extension_reliability_curve.csv");

  util::Table summary({"mechanism", "mean realized share",
                       "completion rate"});
  summary.set_precision(3);
  summary.add_row({std::string("TVOF"), tvof_realized.mean(),
                   tvof_completion.mean()});
  summary.add_row({std::string("RVOF"), rvof_realized.mean(),
                   rvof_completion.mean()});
  summary.add_row({std::string("TVOF + expected-payoff selection"),
                   risk_realized.mean(), risk_completion.mean()});
  std::printf("\n");
  bench::emit(summary, "extension_reliability_summary.csv");
  std::printf("\ninterpretation: the unreliable population is 37.5%% of all "
              "GSPs. TVOF's curve should fall below that baseline within a "
              "few rounds as delivered-service trust accumulates; RVOF "
              "stays at the population rate, and its all-or-nothing "
              "payments crater its realized share.\n");
  return 0;
}
