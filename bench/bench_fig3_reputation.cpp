/// \file bench_fig3_reputation.cpp
/// Fig. 3: average global reputation (eq. (7)) of the final VO's members
/// vs number of tasks. Paper finding: TVOF's VOs always have higher
/// average reputation than RVOF's.
#include "bench/common.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Fig. 3", "average global reputation of the final VO");

  const sim::ExperimentConfig cfg = bench::paper_config();
  const sim::SweepResult sweep = bench::run_paper_sweep(cfg);

  util::Table table({"tasks", "TVOF avg reputation", "RVOF avg reputation",
                     "TVOF advantage"});
  table.set_precision(4);
  std::size_t tvof_wins = 0;
  for (const auto& p : sweep.points) {
    const double adv =
        p.tvof.avg_reputation.mean() - p.rvof.avg_reputation.mean();
    tvof_wins += adv >= 0.0;
    table.add_row({static_cast<long long>(p.num_tasks),
                   p.tvof.avg_reputation.mean(),
                   p.rvof.avg_reputation.mean(), adv});
  }
  bench::emit(table, "fig3_reputation.csv");
  std::printf("\nTVOF >= RVOF at %zu/%zu sizes "
              "(paper: higher in all cases).\n",
              tvof_wins, sweep.points.size());
  return 0;
}
