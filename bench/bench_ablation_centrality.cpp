/// \file bench_ablation_centrality.cpp
/// Ablation: swap TVOF's eigenvector-reputation removal rule for degree,
/// closeness and betweenness centrality (the alternatives the paper cites
/// in [5]-[8]) plus random removal, on identical scenarios. Reports the
/// final VO's average global reputation and payoff per rule.
#include "bench/common.hpp"
#include "core/centrality_vof.hpp"
#include "core/rvof.hpp"
#include "ip/bnb.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Ablation", "removal rule: eigenvector vs other centralities");

  sim::ExperimentConfig cfg = bench::paper_config();
  cfg.task_sizes = {256};
  const sim::ScenarioFactory factory(cfg);
  const ip::BnbAssignmentSolver solver(cfg.solver);

  const std::vector<core::CentralityRule> rules{
      core::CentralityRule::Eigenvector, core::CentralityRule::Degree,
      core::CentralityRule::Closeness, core::CentralityRule::Betweenness};

  struct RuleStats {
    util::RunningStats reputation;
    util::RunningStats payoff;
    util::RunningStats vo_size;
  };
  std::vector<RuleStats> stats(rules.size() + 1);  // +1 for random

  for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
    const sim::Scenario s = factory.make(256, rep);
    for (std::size_t ri = 0; ri < rules.size(); ++ri) {
      const core::CentralityVofMechanism mech(solver, rules[ri],
                                              cfg.mechanism);
      util::Xoshiro256 rng(s.tvof_seed);
      const core::MechanismResult r =
          mech.run(core::FormationRequest{s.instance.assignment, s.trust, rng});
      if (!r.success) continue;
      stats[ri].reputation.add(r.avg_global_reputation);
      stats[ri].payoff.add(r.payoff_share);
      stats[ri].vo_size.add(static_cast<double>(r.selected.size()));
    }
    const core::RvofMechanism rvof(solver, cfg.mechanism);
    util::Xoshiro256 rng(s.rvof_seed);
    const core::MechanismResult r =
        rvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng});
    if (r.success) {
      stats.back().reputation.add(r.avg_global_reputation);
      stats.back().payoff.add(r.payoff_share);
      stats.back().vo_size.add(static_cast<double>(r.selected.size()));
    }
  }

  util::Table table(
      {"removal rule", "avg reputation", "payoff share", "VO size", "runs"});
  table.set_precision(4);
  for (std::size_t ri = 0; ri < rules.size(); ++ri) {
    table.add_row({std::string(core::to_string(rules[ri])),
                   stats[ri].reputation.mean(), stats[ri].payoff.mean(),
                   stats[ri].vo_size.mean(),
                   static_cast<long long>(stats[ri].reputation.count())});
  }
  table.add_row({std::string("random (RVOF)"), stats.back().reputation.mean(),
                 stats.back().payoff.mean(), stats.back().vo_size.mean(),
                 static_cast<long long>(stats.back().reputation.count())});
  bench::emit(table, "ablation_centrality.csv");
  std::printf("\ninterpretation: the eigenvector rule should dominate "
              "random and at least match simpler centralities on "
              "reputation, at equal payoff (same selection rule).\n");
  return 0;
}
