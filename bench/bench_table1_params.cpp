/// \file bench_table1_params.cpp
/// Table I: regenerate the simulation-parameter table from the actual
/// generators and verify every draw stays inside the documented ranges.
#include <algorithm>

#include "bench/common.hpp"
#include "trace/atlas_synth.hpp"
#include "workload/instance_gen.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Table I", "simulation parameters (drawn vs documented)");

  const sim::ExperimentConfig cfg = bench::paper_config();
  const sim::ScenarioFactory factory(cfg);
  const trace::TraceStats ts = trace::compute_stats(factory.trace().jobs);

  // Aggregate draws over one full sweep worth of scenarios.
  util::RunningStats speeds;
  util::RunningStats workloads;
  util::RunningStats deadlines;
  util::RunningStats payments;
  util::RunningStats costs;
  util::RunningStats tasks;
  for (const std::size_t n : cfg.task_sizes) {
    for (std::size_t r = 0; r < std::min<std::size_t>(cfg.repetitions, 3);
         ++r) {
      const sim::Scenario s = factory.make(n, r);
      tasks.add(static_cast<double>(n));
      for (const double v : s.instance.speeds) speeds.add(v);
      for (const double v : s.instance.workloads) workloads.add(v);
      deadlines.add(s.instance.assignment.deadline);
      payments.add(s.instance.assignment.payment);
      const auto& c = s.instance.assignment.cost;
      for (std::size_t g = 0; g < c.rows(); ++g) {
        for (std::size_t t = 0; t < c.cols(); ++t) costs.add(c(g, t));
      }
    }
  }

  util::Table table({"param", "description", "documented", "measured"});
  table.set_precision(2);
  const auto row = [&table](const char* p, const char* d,
                            const std::string& doc, const std::string& got) {
    table.add_row({std::string(p), std::string(d), doc, got});
  };
  const auto range = [](const util::RunningStats& s) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%.4g, %.4g]", s.min(), s.max());
    return std::string(buf);
  };
  row("m", "number of GSPs", "16",
      std::to_string(cfg.gen.params.num_gsps));
  row("n", "number of tasks", "[8, 8832] (paper: 256..8192 evaluated)",
      range(tasks));
  row("s", "GSP speeds (GFLOPS)", "4.91 x [16, 128] = [78.56, 628.48]",
      range(speeds));
  row("w", "task workloads (GFLOP)", "[17676, 1682922]", range(workloads));
  row("c", "cost matrix entries", "[1, phi_b x phi_r] = [1, 1000]",
      range(costs));
  row("d", "deadline (s)", "[0.3, 2.0] x Runtime x n/1000", range(deadlines));
  row("P", "payment (units)", "[0.2, 0.4] x max_c x n", range(payments));
  row("phi_b", "max baseline value", "100", "100 (configured)");
  row("phi_r", "max row multiplier", "10", "10 (configured)");
  row("Runtime", "job runtime threshold (s)", ">= 7200",
      ">= 7200 (program filter)");
  row("max_c", "maximum cost", "1000", "1000");
  bench::emit(table, "table1_params.csv");

  std::printf("\ntrace: %zu jobs, %zu completed, long fraction %.3f "
              "(paper: 43778 / 21915 / ~0.13)\n",
              ts.total_jobs, ts.completed_jobs, ts.long_fraction());
  return 0;
}
