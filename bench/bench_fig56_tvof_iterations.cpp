/// \file bench_fig56_tvof_iterations.cpp
/// Figs. 5 and 6: all iterations of TVOF on two programs A and B with
/// 256 tasks — individual payoff (left axis) and average global
/// reputation (right axis) per VO size. Paper finding: shrinking the VO
/// by removing the lowest-reputation GSP raises both series; the final
/// VO has the highest individual payoff.
#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"

namespace {

void run_program(const char* figure, const svo::sim::ScenarioFactory& factory,
                 std::size_t repetition) {
  using namespace svo;
  const sim::Scenario s = factory.make(256, repetition);
  const ip::BnbAssignmentSolver solver(factory.config().solver);
  const core::TvofMechanism tvof(solver, factory.config().mechanism);
  util::Xoshiro256 rng(s.tvof_seed);
  const core::MechanismResult r =
      tvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng});

  util::Table table({"|C|", "feasible", "payoff share", "avg reputation",
                     "removed GSP"});
  table.set_precision(4);
  for (const auto& it : r.journal) {
    table.add_row(
        {static_cast<long long>(it.coalition.size()),
         std::string(it.feasible ? "yes" : "no"), it.payoff_share,
         it.avg_global_reputation,
         it.removed_gsp == SIZE_MAX
             ? std::string("-")
             : "G" + std::to_string(it.removed_gsp)});
  }
  std::printf("--- %s (program %c, 256 tasks) ---\n", figure,
              repetition == 0 ? 'A' : 'B');
  bench::emit(table, std::string("fig56_tvof_program_") +
                         (repetition == 0 ? "A" : "B") + ".csv");
  std::printf("final VO: |C|=%zu, payoff=%.2f, avg reputation=%.4f\n\n",
              r.selected.size(), r.payoff_share, r.avg_global_reputation);
}

}  // namespace

int main() {
  using namespace svo;
  const bench::Session session("Figs. 5-6", "TVOF iteration traces for programs A and B");
  const sim::ScenarioFactory factory(bench::paper_config());
  run_program("Fig. 5", factory, 0);
  run_program("Fig. 6", factory, 1);
  return 0;
}
