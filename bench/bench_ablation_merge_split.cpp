/// \file bench_ablation_merge_split.cpp
/// Extension comparison: TVOF (this paper) vs the authors' earlier
/// merge-and-split mechanism MSVOF [25] vs RVOF, on identical scenarios.
/// Reports payoff, reputation, executing-VO size and solver effort —
/// the trade the paper implicitly makes by moving from merge/split to
/// reputation-guided pruning.
#include "bench/common.hpp"
#include "core/merge_split.hpp"
#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Extension", "TVOF vs merge-and-split (MSVOF) vs RVOF");

  sim::ExperimentConfig cfg = bench::paper_config();
  cfg.task_sizes = {256};
  const sim::ScenarioFactory factory(cfg);
  const ip::BnbAssignmentSolver solver(cfg.solver);

  struct Row {
    util::RunningStats payoff, reputation, vo_size, seconds;
  };
  Row tvof_row;
  Row msvof_row;
  Row rvof_row;
  util::RunningStats structure_sizes;

  for (std::size_t rep = 0; rep < cfg.repetitions; ++rep) {
    const sim::Scenario s = factory.make(256, rep);

    const core::TvofMechanism tvof(solver, cfg.mechanism);
    util::Xoshiro256 rng_t(s.tvof_seed);
    const core::MechanismResult rt =
        tvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng_t});
    if (rt.success) {
      tvof_row.payoff.add(rt.payoff_share);
      tvof_row.reputation.add(rt.avg_global_reputation);
      tvof_row.vo_size.add(static_cast<double>(rt.selected.size()));
      tvof_row.seconds.add(rt.elapsed_seconds);
    }

    const core::MergeSplitMechanism msvof(solver);
    const core::MergeSplitResult rm =
        msvof.run(s.instance.assignment, s.trust);
    if (rm.success) {
      msvof_row.payoff.add(rm.payoff_share);
      msvof_row.reputation.add(rm.avg_global_reputation);
      msvof_row.vo_size.add(static_cast<double>(rm.selected.size()));
      msvof_row.seconds.add(rm.elapsed_seconds);
      structure_sizes.add(static_cast<double>(rm.structure.size()));
    }

    const core::RvofMechanism rvof(solver, cfg.mechanism);
    util::Xoshiro256 rng_r(s.rvof_seed);
    const core::MechanismResult rr =
        rvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng_r});
    if (rr.success) {
      rvof_row.payoff.add(rr.payoff_share);
      rvof_row.reputation.add(rr.avg_global_reputation);
      rvof_row.vo_size.add(static_cast<double>(rr.selected.size()));
      rvof_row.seconds.add(rr.elapsed_seconds);
    }
  }

  util::Table table({"mechanism", "payoff share", "avg reputation",
                     "VO size", "seconds", "runs"});
  table.set_precision(4);
  const auto add = [&table](const char* name, const Row& row) {
    table.add_row({std::string(name), row.payoff.mean(),
                   row.reputation.mean(), row.vo_size.mean(),
                   row.seconds.mean(),
                   static_cast<long long>(row.payoff.count())});
  };
  add("TVOF", tvof_row);
  add("MSVOF (merge-split)", msvof_row);
  add("RVOF", rvof_row);
  bench::emit(table, "ablation_merge_split.csv");
  std::printf("\nMSVOF final structures held %.1f coalitions on average.\n",
              structure_sizes.mean());
  std::printf("interpretation: merge-and-split explores pairwise deals and "
              "can reach higher payoffs, at more IP solves; TVOF trades "
              "some payoff headroom for reputation-guided, linear-length "
              "exploration.\n");
  return 0;
}
