/// \file bench_micro_solver.cpp
/// Microbenchmarks of the assignment solvers replacing CPLEX: greedy
/// construction + local search, the specialized B&B, and the literal
/// LP-relaxation B&B, across instance sizes. Counters report solution
/// cost so quality/time trade-offs are visible in one run.
#include <benchmark/benchmark.h>

#include "ip/annealing.hpp"
#include "ip/bnb.hpp"
#include "ip/greedy.hpp"
#include "ip/lp_bnb.hpp"
#include "util/rng.hpp"

namespace {

using namespace svo;

ip::AssignmentInstance make_instance(std::size_t k, std::size_t n,
                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  ip::AssignmentInstance inst;
  inst.cost = linalg::Matrix(k, n);
  inst.time = linalg::Matrix(k, n);
  for (std::size_t g = 0; g < k; ++g) {
    for (std::size_t t = 0; t < n; ++t) {
      inst.cost(g, t) = rng.uniform(1.0, 1000.0);
      inst.time(g, t) = rng.uniform(10.0, 500.0);
    }
  }
  inst.deadline = 500.0 * 2.0 * static_cast<double>(n) / static_cast<double>(k);
  inst.payment = 1000.0 * static_cast<double>(n);
  return inst;
}

void BM_GreedySolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(16, n, 7);
  const ip::GreedyAssignmentSolver solver;
  double cost = 0.0;
  for (auto _ : state) {
    const ip::AssignmentSolution sol = solver.solve(inst);
    cost = sol.cost;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["cost"] = cost;
}
BENCHMARK(BM_GreedySolver)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

void BM_BnbSolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(16, n, 7);
  ip::BnbOptions opts;
  opts.max_nodes = 20'000;
  const ip::BnbAssignmentSolver solver(opts);
  double cost = 0.0;
  double proven = 0.0;
  for (auto _ : state) {
    const ip::AssignmentSolution sol = solver.solve(inst);
    cost = sol.cost;
    proven = sol.proven_optimal() ? 1.0 : 0.0;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["cost"] = cost;
  state.counters["proven_optimal"] = proven;
}
BENCHMARK(BM_BnbSolver)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

void BM_BnbSolverExactSmall(benchmark::State& state) {
  // Sizes where the B&B proves optimality outright.
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(3, n, 11);
  const ip::BnbAssignmentSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(inst));
  }
}
BENCHMARK(BM_BnbSolverExactSmall)->Arg(6)->Arg(10)->Arg(14);

void BM_LpBnbSolverLiteral(benchmark::State& state) {
  // The literal eqs. (9)-(14) formulation; only viable on small models.
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(3, n, 11);
  const ip::LpBnbAssignmentSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(inst));
  }
}
BENCHMARK(BM_LpBnbSolverLiteral)->Arg(4)->Arg(6)->Arg(8);

void BM_AnnealingSolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(16, n, 7);
  ip::AnnealingOptions opts;
  opts.iterations = 30'000;
  const ip::AnnealingAssignmentSolver solver(opts);
  double cost = 0.0;
  for (auto _ : state) {
    const ip::AssignmentSolution sol = solver.solve(inst);
    cost = sol.cost;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["cost"] = cost;
}
BENCHMARK(BM_AnnealingSolver)->Arg(256)->Arg(1024)->Arg(4096);

void BM_LocalSearchPolish(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(16, n, 13);
  const ip::Assignment seed =
      ip::greedy_construct(inst, ip::GreedyOptions::Order::TimeDescending);
  for (auto _ : state) {
    ip::Assignment a = seed;
    benchmark::DoNotOptimize(ip::local_search(inst, a, {}));
  }
}
BENCHMARK(BM_LocalSearchPolish)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
