/// \file bench_micro_solver.cpp
/// Microbenchmarks of the assignment solvers replacing CPLEX: greedy
/// construction + local search, the specialized B&B, and the literal
/// LP-relaxation B&B, across instance sizes. Counters report solution
/// cost so quality/time trade-offs are visible in one run.
///
/// After the google-benchmark suite, main() runs the warm-vs-cold
/// mechanism-loop comparison (shrinking-coalition TVOF under
/// WarmStartPolicy::Off vs ::Incremental with a reduced re-verification
/// budget) and writes BENCH_warmstart.json next to the binary.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "ip/annealing.hpp"
#include "ip/bnb.hpp"
#include "ip/greedy.hpp"
#include "ip/lp_bnb.hpp"
#include "trust/trust_graph.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace svo;

ip::AssignmentInstance make_instance(std::size_t k, std::size_t n,
                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  ip::AssignmentInstance inst;
  inst.cost = linalg::Matrix(k, n);
  inst.time = linalg::Matrix(k, n);
  for (std::size_t g = 0; g < k; ++g) {
    for (std::size_t t = 0; t < n; ++t) {
      inst.cost(g, t) = rng.uniform(1.0, 1000.0);
      inst.time(g, t) = rng.uniform(10.0, 500.0);
    }
  }
  inst.deadline = 500.0 * 2.0 * static_cast<double>(n) / static_cast<double>(k);
  inst.payment = 1000.0 * static_cast<double>(n);
  return inst;
}

void BM_GreedySolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(16, n, 7);
  const ip::GreedyAssignmentSolver solver;
  double cost = 0.0;
  for (auto _ : state) {
    const ip::AssignmentSolution sol = solver.solve(inst);
    cost = sol.cost;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["cost"] = cost;
}
BENCHMARK(BM_GreedySolver)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

void BM_BnbSolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(16, n, 7);
  ip::BnbOptions opts;
  opts.max_nodes = 20'000;
  const ip::BnbAssignmentSolver solver(opts);
  double cost = 0.0;
  double proven = 0.0;
  for (auto _ : state) {
    const ip::AssignmentSolution sol = solver.solve(inst);
    cost = sol.cost;
    proven = sol.proven_optimal() ? 1.0 : 0.0;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["cost"] = cost;
  state.counters["proven_optimal"] = proven;
}
BENCHMARK(BM_BnbSolver)->Arg(256)->Arg(1024)->Arg(4096)->Arg(8192);

void BM_BnbSolverExactSmall(benchmark::State& state) {
  // Sizes where the B&B proves optimality outright.
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(3, n, 11);
  const ip::BnbAssignmentSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(inst));
  }
}
BENCHMARK(BM_BnbSolverExactSmall)->Arg(6)->Arg(10)->Arg(14);

void BM_LpBnbSolverLiteral(benchmark::State& state) {
  // The literal eqs. (9)-(14) formulation; only viable on small models.
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(3, n, 11);
  const ip::LpBnbAssignmentSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(inst));
  }
}
BENCHMARK(BM_LpBnbSolverLiteral)->Arg(4)->Arg(6)->Arg(8);

void BM_AnnealingSolver(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(16, n, 7);
  ip::AnnealingOptions opts;
  opts.iterations = 30'000;
  const ip::AnnealingAssignmentSolver solver(opts);
  double cost = 0.0;
  for (auto _ : state) {
    const ip::AssignmentSolution sol = solver.solve(inst);
    cost = sol.cost;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["cost"] = cost;
}
BENCHMARK(BM_AnnealingSolver)->Arg(256)->Arg(1024)->Arg(4096);

void BM_LocalSearchPolish(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const ip::AssignmentInstance inst = make_instance(16, n, 13);
  const ip::Assignment seed =
      ip::greedy_construct(inst, ip::GreedyOptions::Order::TimeDescending);
  for (auto _ : state) {
    ip::Assignment a = seed;
    benchmark::DoNotOptimize(ip::local_search(inst, a, {}));
  }
}
BENCHMARK(BM_LocalSearchPolish)->Arg(256)->Arg(1024)->Arg(4096);

// ---------------------------------------------------------------------
// Warm-vs-cold mechanism loop (BENCH_warmstart.json).
//
// The cold arm re-solves every shrunken coalition from scratch with the
// full node budget. The warm arm repairs the previous mapping, reuses
// the cached cost orders, and re-verifies under BnbOptions::
// warm_max_nodes = max_nodes / 4 — the repaired incumbent already
// carries the predecessor's search effort, so re-paying the full budget
// per iteration is pure overhead. The JSON records, per run, whether
// both arms selected the same VO at the same cost (they should; the
// reduced budget only truncates searches that were going to truncate
// anyway) alongside the node and wall-clock totals.

struct WarmstartRun {
  std::size_t n = 0;
  std::size_t k = 0;
  std::uint64_t seed = 0;
  std::size_t cold_nodes = 0;
  std::size_t warm_nodes = 0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  std::size_t repair_moves = 0;
  bool warm_used = false;
  bool same_vo = false;
  bool same_cost = false;
};

WarmstartRun run_warmstart_case(std::size_t k, std::size_t n,
                                std::uint64_t seed) {
  constexpr std::size_t kBudget = 20'000;
  const ip::AssignmentInstance inst = make_instance(k, n, seed);
  util::Xoshiro256 trust_rng(seed ^ 0x5ee0);
  const trust::TrustGraph trust = trust::random_trust_graph(k, 0.4, trust_rng);

  ip::BnbOptions cold_opts;
  cold_opts.max_nodes = kBudget;
  const ip::BnbAssignmentSolver cold_solver(cold_opts);
  const core::TvofMechanism cold_mech(cold_solver);

  ip::BnbOptions warm_opts = cold_opts;
  warm_opts.warm_max_nodes = kBudget / 4;
  const ip::BnbAssignmentSolver warm_solver(warm_opts);
  const core::TvofMechanism warm_mech(warm_solver);

  WarmstartRun out;
  out.n = n;
  out.k = k;
  out.seed = seed;

  util::Xoshiro256 rng_cold(seed + 1);
  util::WallTimer t_cold;
  const core::MechanismResult cold =
      cold_mech.run(core::FormationRequest{inst, trust, rng_cold,
                                           game::Coalition{},
                                           core::WarmStartPolicy::Off});
  out.cold_ms = t_cold.seconds() * 1e3;
  out.cold_nodes = cold.stats.nodes;

  util::Xoshiro256 rng_warm(seed + 1);
  util::WallTimer t_warm;
  const core::MechanismResult warm =
      warm_mech.run(core::FormationRequest{inst, trust, rng_warm,
                                           game::Coalition{},
                                           core::WarmStartPolicy::Incremental});
  out.warm_ms = t_warm.seconds() * 1e3;
  out.warm_nodes = warm.stats.nodes;
  out.repair_moves = warm.stats.repair_moves;
  out.warm_used = warm.stats.warm_start_used;
  out.same_vo = warm.success == cold.success &&
                warm.selected.bits() == cold.selected.bits();
  out.same_cost = warm.cost == cold.cost;
  return out;
}

void run_warmstart_bench() {
  // Paper scale (Table 1): 8192 tasks x 16 GSPs. Smaller sizes are
  // covered by the exact-regime property tests; at this scale the
  // per-iteration searches are budget-bound, which is exactly where the
  // reduced re-verification budget pays off.
  std::vector<WarmstartRun> runs;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    runs.push_back(run_warmstart_case(16, 8192, seed));
  }
  std::size_t cold_total = 0;
  std::size_t warm_total = 0;
  bool all_identical = true;
  for (const WarmstartRun& r : runs) {
    cold_total += r.cold_nodes;
    warm_total += r.warm_nodes;
    all_identical = all_identical && r.same_vo && r.same_cost;
  }
  const double reduction =
      warm_total > 0 ? static_cast<double>(cold_total) /
                           static_cast<double>(warm_total)
                     : 0.0;

  bench::Report report("warmstart");
  obs::JsonWriter& j = report.json();
  j.kv("mechanism", "tvof");
  j.kv("budget_max_nodes", std::size_t{20'000});
  j.kv("warm_max_nodes", std::size_t{5'000});
  j.key("runs").begin_array();
  for (const WarmstartRun& r : runs) {
    j.begin_object();
    j.kv("n", r.n).kv("k", r.k).kv("seed", r.seed);
    j.kv("cold_nodes", r.cold_nodes).kv("warm_nodes", r.warm_nodes);
    j.kv("cold_ms", r.cold_ms).kv("warm_ms", r.warm_ms);
    j.kv("repair_moves", r.repair_moves);
    j.kv("warm_start_used", r.warm_used);
    j.kv("same_vo", r.same_vo).kv("same_cost", r.same_cost);
    j.end_object();
  }
  j.end_array();
  j.key("aggregate").begin_object();
  j.kv("total_cold_nodes", cold_total);
  j.kv("total_warm_nodes", warm_total);
  j.kv("node_reduction", reduction);
  j.kv("all_outcomes_identical", all_identical);
  j.end_object();
  report.write();
  std::printf(
      "\nwarmstart mechanism loop: cold %zu nodes, warm %zu nodes "
      "(%.2fx reduction), outcomes identical: %s\n",
      cold_total, warm_total, reduction, all_identical ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const svo::obs::TraceSession trace;  // env-driven: SVO_TRACE / SVO_METRICS
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_warmstart_bench();
  return 0;
}
