/// \file bench_telemetry.cpp
/// Extension: continuous-telemetry quality and cost (DESIGN.md §4j).
///
/// Emits BENCH_telemetry.json with three profiles:
///  - windowed-quantile accuracy: a deterministic integer-valued sample
///    stream (no libm, bit-identical everywhere) is fed through
///    obs::WindowedHistogram; rollup() p50/p95/p99 over the full ring
///    and over a 4-window tail are compared against exact
///    util::percentile over the same raw samples. The factor-2
///    log2-bucket bound must hold — `windowed_*_within_factor2` gate
///    exactly in tools/bench_diff (`*window*`);
///  - virtual-time replay: a churny StreamEngine run with telemetry on
///    is replayed same-seed — `window_replay_identical` and
///    `slo_verdicts_identical` (exact) pin that the window sequence and
///    SLO verdicts are deterministic; a third run with telemetry *off*
///    must reproduce the identical event timeline, per-request results
///    and horizon (`stream_telemetry_off_identical`, exact) — the
///    observer-never-actor invariant;
///  - sampler cost: the same service burst runs telemetry-off and
///    telemetry-on (1 ms windows + three SLOs + JSONL export to
///    /dev/null); per-ticket outcomes and RNG probes must match
///    (`service_telemetry_off_identical`, exact) and the wall-clock
///    ratio is reported as `sampler_overhead_ratio` (informational —
///    machine-bound).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/scenario.hpp"
#include "sim/stream_engine.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace svo;

// ---------------------------------------------------------------------
// Profile 1: windowed-quantile accuracy vs exact percentile.

constexpr std::size_t kWindows = 16;
constexpr std::size_t kSamplesPerWindow = 500;

/// Deterministic heavy-tailed integer samples: 95% "fast" requests in
/// [100, 1000) us, 5% "slow" in [10'000, 100'000) us. Integer-valued so
/// bucketing and util::percentile involve no libm and replay everywhere.
double synth_sample(util::Xoshiro256& rng) {
  const std::uint64_t pick = rng();
  if (pick % 100 < 95) return 100.0 + static_cast<double>(rng() % 900);
  return 10'000.0 + static_cast<double>(rng() % 90'000);
}

struct QuantileCheck {
  double exact = 0.0;
  double windowed = 0.0;
  double ratio = 1.0;
  bool within_factor2 = true;
};

QuantileCheck check_quantile(const obs::Histogram::Snapshot& roll,
                             std::vector<double> samples, double q) {
  QuantileCheck c;
  c.exact = util::percentile(std::move(samples), q);
  c.windowed = roll.quantile(q);
  c.ratio = c.exact > 0.0 ? c.windowed / c.exact : 1.0;
  c.within_factor2 = c.windowed <= 2.0 * c.exact && c.windowed >= c.exact / 2.0;
  return c;
}

// ---------------------------------------------------------------------
// Profile 2: same-seed stream replay of windows and SLO verdicts.

sim::StreamOptions stream_options(std::uint64_t seed, bool telemetry) {
  sim::StreamOptions opts;
  opts.base.seed = seed;
  opts.base.gen.params.num_gsps = 8;
  opts.base.task_sizes = {16};
  opts.base.trace.num_jobs = 3000;
  opts.base.trace.canonical_sizes = {16};
  opts.base.trace.min_jobs_per_canonical_size = 6;
  opts.base.solver.max_nodes = 2000;
  opts.num_requests = 16;
  opts.arrival_interval_seconds = 30.0;
  opts.execution_time_scale = 0.01;
  opts.max_attempts = 6;
  opts.retry_backoff_seconds = 10.0;
  opts.churn.crash_rate = 0.002;
  opts.churn.leave_rate = 0.0005;
  opts.churn.mean_absence_seconds = 300.0;
  opts.churn.seed = seed ^ 0xC1124;
  if (telemetry) {
    opts.stats_window_seconds = 120.0;
    obs::SloObjective latency;
    latency.name = "commit_latency_p99";
    latency.kind = obs::SloKind::QuantileBelow;
    latency.metric = "stream.formation_latency_s";
    latency.quantile = 0.99;
    latency.threshold = 10.0 * opts.arrival_interval_seconds;
    obs::SloObjective sheds;
    sheds.name = "shed_zero";
    sheds.kind = obs::SloKind::CounterZero;
    sheds.metric = "stream.request_shed";
    opts.slos = {latency, sheds};
  }
  return opts;
}

bool stream_requests_identical(const sim::StreamResult& a,
                               const sim::StreamResult& b) {
  if (a.requests.size() != b.requests.size()) return false;
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const sim::StreamRequestResult& x = a.requests[i];
    const sim::StreamRequestResult& y = b.requests[i];
    if (x.outcome != y.outcome || x.attempts != y.attempts ||
        x.repair_rounds != y.repair_rounds ||
        x.terminal_time != y.terminal_time ||
        x.formation_latency_seconds != y.formation_latency_seconds ||
        x.realized_value != y.realized_value ||
        x.formation.selected.bits() != y.formation.selected.bits() ||
        x.formation.cost != y.formation.cost) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Profile 3: service sampler overhead + telemetry-off equivalence.

std::uint64_t request_seed(std::uint64_t root, std::size_t i) {
  return root ^ (0x9E3779B97F4A7C15ULL * (i + 1));
}

struct ServiceRun {
  double elapsed_s = 0.0;
  std::uint64_t windows_closed = 0;
  std::vector<svc::RequestOutcome> outcomes;
};

ServiceRun run_service(const core::VoFormationMechanism& mechanism,
                       const std::vector<sim::Scenario>& pool,
                       std::size_t requests, std::uint64_t seed,
                       bool telemetry) {
  svc::ServiceOptions opt;
  opt.shards = 2;
  opt.threads = 2;
  opt.queue_capacity = requests;
  opt.batch_size = 8;
  if (telemetry) {
    opt.stats_window_seconds = 0.001;  // 1 ms: stress the sampler
    opt.stats_jsonl_path = "/dev/null";
    obs::SloObjective queue;
    queue.name = "queue_p99_us";
    queue.kind = obs::SloKind::QuantileBelow;
    queue.metric = "svc.queue_us";
    queue.threshold = 500'000.0;
    obs::SloObjective failures;
    failures.name = "failure_rate";
    failures.kind = obs::SloKind::RatioBelow;
    failures.metric = "svc.failed";
    failures.denominator = "svc.solver_runs";
    failures.threshold = 0.2;
    obs::SloObjective expired;
    expired.name = "expired_zero";
    expired.kind = obs::SloKind::CounterZero;
    expired.metric = "svc.expired";
    opt.slos = {queue, failures, expired};
  }

  ServiceRun run;
  svc::FormationService service(mechanism, opt);
  std::vector<svc::RequestHandle> handles;
  handles.reserve(requests);
  const util::WallTimer timer;
  for (std::size_t i = 0; i < requests; ++i) {
    const sim::Scenario& s = pool[i % pool.size()];
    util::Xoshiro256 rng(request_seed(seed, i));
    handles.push_back(service.submit(
        core::FormationRequest{s.instance.assignment, s.trust, rng}));
  }
  service.drain();
  run.elapsed_s = timer.seconds();
  run.windows_closed = service.health(8).windows_closed;
  run.outcomes.reserve(requests);
  for (const svc::RequestHandle& h : handles) {
    h.wait();
    run.outcomes.push_back(h.outcome());
  }
  return run;
}

bool service_outcomes_identical(const std::vector<svc::RequestOutcome>& a,
                                const std::vector<svc::RequestOutcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].state != b[i].state || a[i].attempts != b[i].attempts ||
        a[i].rng_probe != b[i].rng_probe ||
        a[i].result.selected.bits() != b[i].result.selected.bits() ||
        a[i].result.cost != b[i].result.cost) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const bench::Session session(
      "Extension",
      "continuous telemetry: windowed quantile accuracy, virtual-time "
      "replay of windows and SLO verdicts, and sampler overhead");

  const std::uint64_t seed = util::env_u64_or("SVO_SEED", 20120910);
  const std::size_t requests =
      util::env_positive_size_or("SVO_SERVICE_REQUESTS", 96);

  // -- Profile 1: windowed quantiles vs exact percentile. -------------
  obs::WindowedHistogram wh(kWindows);
  std::vector<double> all;
  std::vector<double> tail;  // samples of the newest 4 windows
  all.reserve(kWindows * kSamplesPerWindow);
  util::Xoshiro256 rng(seed ^ 0x7E1E);
  for (std::size_t w = 0; w < kWindows; ++w) {
    for (std::size_t i = 0; i < kSamplesPerWindow; ++i) {
      const double v = synth_sample(rng);
      wh.observe(v);
      all.push_back(v);
      if (w + 4 >= kWindows) tail.push_back(v);
    }
    wh.close_window();
  }
  const obs::Histogram::Snapshot full_roll = wh.rollup(kWindows);
  const obs::Histogram::Snapshot tail_roll = wh.rollup(4);
  const QuantileCheck p50 = check_quantile(full_roll, all, 0.50);
  const QuantileCheck p95 = check_quantile(full_roll, all, 0.95);
  const QuantileCheck p99 = check_quantile(full_roll, all, 0.99);
  const QuantileCheck tail_p99 = check_quantile(tail_roll, tail, 0.99);
  const bool counts_conserved =
      full_roll.count == all.size() && tail_roll.count == tail.size();

  util::Table accuracy({"quantile", "exact", "windowed", "ratio"});
  accuracy.set_precision(3);
  accuracy.add_row({0.50, p50.exact, p50.windowed, p50.ratio});
  accuracy.add_row({0.95, p95.exact, p95.windowed, p95.ratio});
  accuracy.add_row({0.99, p99.exact, p99.windowed, p99.ratio});
  bench::emit(accuracy, "telemetry_accuracy.csv");

  // -- Profile 2: stream replay of windows + verdicts. ----------------
  const sim::StreamEngine engine(stream_options(seed, true));
  const sim::StreamResult first = engine.run();
  const sim::StreamResult second = engine.run();
  const bool window_replay_identical =
      first.windows == second.windows &&
      first.windows.size() == second.windows.size();
  const bool slo_verdicts_identical = first.slo_status == second.slo_status;

  const sim::StreamEngine bare(stream_options(seed, false));
  const sim::StreamResult off = bare.run();
  const bool stream_off_identical = off.timeline == first.timeline &&
                                    off.horizon == first.horizon &&
                                    stream_requests_identical(off, first);
  std::uint64_t slo_windows = 0;
  std::uint64_t slo_violations = 0;
  for (const obs::SloStatus& st : first.slo_status) {
    slo_windows += st.windows;
    slo_violations += st.violations;
  }
  std::fprintf(stderr,
               "  stream: %zu windows, %zu SLOs (%llu window-evals, "
               "%llu violations)\n",
               first.windows.size(), first.slo_status.size(),
               static_cast<unsigned long long>(slo_windows),
               static_cast<unsigned long long>(slo_violations));

  // -- Profile 3: sampler overhead on the service. --------------------
  sim::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.gen.params.num_gsps = 8;
  cfg.task_sizes = {24};
  cfg.trace.num_jobs = 4000;
  cfg.trace.canonical_sizes = {24};
  cfg.trace.min_jobs_per_canonical_size = 6;
  const sim::ScenarioFactory factory(cfg);
  std::vector<sim::Scenario> pool;
  for (std::size_t rep = 0; rep < 6; ++rep) pool.push_back(factory.make(24, rep));

  ip::BnbOptions solver_opts;
  solver_opts.max_nodes = 2000;
  const ip::BnbAssignmentSolver solver(solver_opts);
  const core::TvofMechanism tvof(solver);

  const ServiceRun plain = run_service(tvof, pool, requests, seed, false);
  const ServiceRun sampled = run_service(tvof, pool, requests, seed, true);
  const bool service_off_identical =
      service_outcomes_identical(plain.outcomes, sampled.outcomes);
  const double overhead_ratio =
      plain.elapsed_s > 0.0 ? sampled.elapsed_s / plain.elapsed_s : 1.0;
  std::fprintf(stderr,
               "  service: off %.3fs  on %.3fs (%llu windows)  "
               "overhead x%.3f\n",
               plain.elapsed_s, sampled.elapsed_s,
               static_cast<unsigned long long>(sampled.windows_closed),
               overhead_ratio);

  bench::Report report("telemetry");
  obs::JsonWriter& j = report.json();
  j.kv("experiment", "continuous_telemetry");
  j.kv("seed", static_cast<double>(seed));
  j.kv("requests", static_cast<double>(requests));
  j.key("accuracy").begin_object();
  j.kv("samples", static_cast<double>(all.size()));
  j.kv("ring_windows", static_cast<double>(kWindows));
  j.kv("p50_exact", p50.exact);
  j.kv("p50_windowed", p50.windowed);
  j.kv("p95_exact", p95.exact);
  j.kv("p95_windowed", p95.windowed);
  j.kv("p99_exact", p99.exact);
  j.kv("p99_windowed", p99.windowed);
  j.kv("tail4_p99_exact", tail_p99.exact);
  j.kv("tail4_p99_windowed", tail_p99.windowed);
  j.end_object();
  j.key("stream").begin_object();
  j.kv("stream_windows_closed", static_cast<double>(first.windows.size()));
  j.kv("slo_window_evals", static_cast<double>(slo_windows));
  j.kv("slo_violations", static_cast<double>(slo_violations));
  j.kv("stream_completed", static_cast<double>(first.completed));
  j.kv("stream_repaired", static_cast<double>(first.repaired));
  j.kv("stream_lost", static_cast<double>(first.lost));
  j.end_object();
  j.key("service").begin_object();
  j.kv("plain_elapsed_seconds", plain.elapsed_s);
  j.kv("sampled_elapsed_seconds", sampled.elapsed_s);
  // Wall-bound count (1 ms windows on a real clock) — named to stay
  // clear of the exact `*window*` diff rule.
  j.kv("sampler_intervals_closed", static_cast<double>(sampled.windows_closed));
  j.end_object();
  j.key("aggregate").begin_object();
  j.kv("windowed_p50_within_factor2", p50.within_factor2);
  j.kv("windowed_p95_within_factor2", p95.within_factor2);
  j.kv("windowed_p99_within_factor2", p99.within_factor2);
  j.kv("windowed_tail_p99_within_factor2", tail_p99.within_factor2);
  j.kv("window_counts_conserved", counts_conserved);
  j.kv("window_replay_identical", window_replay_identical);
  j.kv("slo_verdicts_identical", slo_verdicts_identical);
  j.kv("stream_telemetry_off_identical", stream_off_identical);
  j.kv("service_telemetry_off_identical", service_off_identical);
  j.kv("sampler_overhead_ratio", overhead_ratio);
  j.end_object();
  report.write();

  const bool ok = p50.within_factor2 && p95.within_factor2 &&
                  p99.within_factor2 && tail_p99.within_factor2 &&
                  counts_conserved && window_replay_identical &&
                  slo_verdicts_identical && stream_off_identical &&
                  service_off_identical && first.lost == 0;
  std::printf(
      "\nacceptance: windowed p50/p95/p99 within factor 2 of exact "
      "percentile: %s/%s/%s (ratios %.3f/%.3f/%.3f); same-seed stream "
      "replay gives identical windows: %s and SLO verdicts: %s; telemetry "
      "off reproduces the stream bit for bit: %s and the service "
      "outcomes+RNG probes: %s; sampler overhead x%.3f (informational)\n"
      "\ninterpretation: windows are delta-snapshots of log2-bucket "
      "histograms, so rollup quantiles inherit the factor-2 bound; window "
      "sequences advance on injected clocks (virtual time in the stream), "
      "so replays are deterministic; the telemetry layer is an observer, "
      "never an actor — switching it on must not move any outcome.\n",
      p50.within_factor2 ? "yes" : "NO", p95.within_factor2 ? "yes" : "NO",
      p99.within_factor2 ? "yes" : "NO", p50.ratio, p95.ratio, p99.ratio,
      window_replay_identical ? "yes" : "NO",
      slo_verdicts_identical ? "yes" : "NO",
      stream_off_identical ? "yes" : "NO",
      service_off_identical ? "yes" : "NO", overhead_ratio);
  return ok ? 0 : 1;
}
