/// \file bench_ablation_decay.cpp
/// Reproduces the paper's critique of time-decaying trust (Azzedin &
/// Maheswaran [9], Section I-A): "GSPs form VOs and as a result would
/// tend to just trust the members of their respective VOs. ... This
/// method converges to a state in which the formation of new VOs is not
/// possible." We sweep the decay rate lambda: each round one program is
/// executed, only the executing VO's members refresh mutual trust, and
/// everything else ages. Reported per lambda: how locked-in VO
/// membership becomes (consecutive-VO Jaccard overlap, distinct GSPs
/// ever selected) and how much reputation signal survives outside the
/// incumbent clique.
#include <algorithm>

#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "trust/decay.hpp"
#include "workload/instance_gen.hpp"

namespace {

double jaccard(svo::game::Coalition a, svo::game::Coalition b) {
  const auto inter = a.intersect(b).size();
  const auto uni = a.unite(b).size();
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

int main() {
  using namespace svo;
  const bench::Session session("Ablation", "time-decaying trust locks VO membership in");

  constexpr std::size_t kGsps = 16;
  constexpr std::size_t kRounds = 20;

  util::Table table({"lambda", "mean VO Jaccard overlap",
                     "distinct GSPs selected", "dead edge fraction",
                     "outside rep spread"});
  table.set_precision(4);

  for (const double lambda : {0.0, 0.5, 1.5, 3.0}) {
    util::Xoshiro256 rng(4711);  // identical programs across lambdas
    trust::DecayingTrustGraph decaying(
        trust::random_trust_graph(kGsps, 0.3, rng),
        trust::DecayLaw::Exponential, lambda);

    workload::InstanceGenOptions gopts;
    const ip::BnbAssignmentSolver solver;
    const core::TvofMechanism tvof(solver);

    util::RunningStats overlap;
    util::RunningStats spread;
    std::uint64_t ever_selected = 0;
    game::Coalition previous;
    for (std::size_t round = 0; round < kRounds; ++round) {
      trace::ProgramSpec program;
      program.num_tasks = 96;
      program.mean_task_runtime = 3600.0 * rng.uniform(3.0, 8.0);
      const workload::GridInstance grid =
          workload::generate_instance(program, gopts, rng);

      const trust::TrustGraph snap = decaying.snapshot();
      const core::MechanismResult r = tvof.run(core::FormationRequest{grid.assignment, snap, rng});
      if (r.success) {
        if (!previous.empty()) overlap.add(jaccard(previous, r.selected));
        previous = r.selected;
        ever_selected |= r.selected.bits();
        // Reputation spread among GSPs *outside* the executing VO: the
        // signal available for forming the next, different VO.
        double lo = 1.0;
        double hi = 0.0;
        for (std::size_t g = 0; g < kGsps; ++g) {
          if (r.selected.contains(g)) continue;
          lo = std::min(lo, r.global_reputation[g]);
          hi = std::max(hi, r.global_reputation[g]);
        }
        if (hi >= lo) spread.add(hi - lo);
        const auto members = r.selected.members();
        for (const std::size_t i : members) {
          for (const std::size_t j : members) {
            if (i != j) decaying.record_interaction(i, j, 0.9, 0.5);
          }
        }
      }
      decaying.advance(1.0);
    }
    table.add_row({lambda, overlap.mean(),
                   static_cast<long long>(game::Coalition(ever_selected).size()),
                   decaying.dead_edge_fraction(1e-2), spread.mean()});
  }
  bench::emit(table, "ablation_decay.csv");
  std::printf("\ninterpretation: with lambda = 0 (the paper's static trust) "
              "membership stays fluid; as lambda grows, trust survives "
              "only inside the incumbent VO, overlap between consecutive "
              "VOs rises and outsiders' reputation signal dies — the "
              "convergence the paper criticizes in [9].\n");
  return 0;
}
