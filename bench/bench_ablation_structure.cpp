/// \file bench_ablation_structure.cpp
/// How far from socially optimal are the mechanisms' coalition
/// structures? The paper's remark that "independent and disjoint
/// coalitions would form" (Section II-C) invites the comparison: the
/// exact optimal-partition DP (game/structure) vs the structure
/// merge-and-split converges to vs the single-VO view of TVOF, on small
/// games where the DP is exact.
#include "bench/common.hpp"
#include "core/merge_split.hpp"
#include "core/tvof.hpp"
#include "game/structure.hpp"
#include "ip/bnb.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Ablation",
                "coalition-structure quality: optimal DP vs MSVOF vs TVOF");

  sim::ExperimentConfig cfg = bench::paper_config();
  cfg.gen.params.num_gsps = 8;  // 2^8 v-evaluations per program
  cfg.task_sizes = {48};
  cfg.trace.canonical_sizes = {48};
  const sim::ScenarioFactory factory(cfg);
  const ip::BnbAssignmentSolver solver(cfg.solver);

  util::Table table({"program", "optimal structure", "MSVOF structure",
                     "TVOF best VO", "MSVOF gap %", "optimal #blocks"});
  table.set_precision(1);
  util::RunningStats gap;
  const std::size_t programs = std::min<std::size_t>(cfg.repetitions, 6);
  for (std::size_t prog = 0; prog < programs; ++prog) {
    const sim::Scenario s = factory.make(48, prog);
    const game::VoValueFunction v(s.instance.assignment, solver);
    const auto oracle = [&](game::Coalition c) { return v.value(c); };

    const game::OptimalStructure opt =
        game::optimal_coalition_structure(8, oracle);

    const core::MergeSplitMechanism msvof(solver);
    const core::MergeSplitResult ms =
        msvof.run(s.instance.assignment, s.trust);
    const double ms_value = game::structure_value(ms.structure, oracle);

    const core::TvofMechanism tvof(solver, cfg.mechanism);
    util::Xoshiro256 rng(s.tvof_seed);
    const core::MechanismResult tv =
        tvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng});

    const double gap_pct =
        opt.total_value > 0.0
            ? 100.0 * (opt.total_value - ms_value) / opt.total_value
            : 0.0;
    gap.add(gap_pct);
    table.add_row({static_cast<long long>(prog + 1), opt.total_value,
                   ms_value, tv.success ? tv.value : 0.0, gap_pct,
                   static_cast<long long>(opt.partition.size())});
  }
  bench::emit(table, "ablation_structure.csv");
  std::printf("\nmean MSVOF optimality gap: %.1f%%. note: only one "
              "coalition can execute the (single) program, so the optimal "
              "'structure' is the best single VO plus zero-value rest — "
              "the DP confirms how much value merge-and-split's myopic "
              "local rules leave on the table.\n",
              gap.mean());
  return 0;
}
