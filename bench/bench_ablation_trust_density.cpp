/// \file bench_ablation_trust_density.cpp
/// Ablation: sensitivity of the TVOF-vs-RVOF reputation gap to the trust
/// graph's Erdős–Rényi density p (the paper fixes p = 0.1 without
/// justification). Also reports power-method convergence effort per
/// density.
#include "bench/common.hpp"
#include "trust/reputation.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Ablation", "trust density p vs reputation gap");

  const std::vector<double> densities{0.05, 0.1, 0.2, 0.4, 0.8};
  util::Table table({"p", "TVOF reputation", "RVOF reputation", "gap",
                     "TVOF VO size", "power iters (m=16)"});
  table.set_precision(4);

  for (const double p : densities) {
    sim::ExperimentConfig cfg = bench::paper_config();
    cfg.task_sizes = {256};
    cfg.gen.params.trust_edge_probability = p;
    const sim::ExperimentRunner runner(cfg);
    const sim::SweepResult sweep = runner.run_sweep();
    const auto& point = sweep.points.front();

    // Convergence effort at this density (fresh graph, full 16 GSPs).
    util::Xoshiro256 rng(cfg.seed ^ 0xD15EA5E);
    const trust::TrustGraph g = trust::random_trust_graph(16, p, rng);
    const trust::ReputationEngine engine(cfg.mechanism.reputation);
    const trust::ReputationResult rep = engine.compute(g);

    table.add_row({p, point.tvof.avg_reputation.mean(),
                   point.rvof.avg_reputation.mean(),
                   point.tvof.avg_reputation.mean() -
                       point.rvof.avg_reputation.mean(),
                   point.tvof.vo_size.mean(),
                   static_cast<long long>(rep.iterations)});
  }
  bench::emit(table, "ablation_trust_density.csv");
  std::printf("\ninterpretation: sparse graphs give reputations driven by "
              "few opinions (larger TVOF advantage variance); dense graphs "
              "flatten scores toward uniform, shrinking the gap.\n");
  return 0;
}
