/// \file bench_ablation_trace_model.cpp
/// Workload-family robustness: do the paper's headline findings survive
/// a change of trace model? Reruns the Fig. 1/3 comparison on the
/// Lublin-Feitelson batch model next to the Atlas-matched generator —
/// if TVOF's reputation advantage were an artifact of one generator's
/// marginals, this is where it would show.
#include "bench/common.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Ablation", "workload family: Atlas-like vs Lublin-Feitelson");

  util::Table table({"trace model", "tasks", "payoff ratio TVOF/RVOF",
                     "TVOF reputation", "RVOF reputation", "runs"});
  table.set_precision(4);
  for (const auto model : {sim::ExperimentConfig::TraceModel::AtlasLike,
                           sim::ExperimentConfig::TraceModel::LublinFeitelson}) {
    sim::ExperimentConfig cfg = bench::paper_config();
    cfg.trace_model = model;
    // The Lublin model produces organic (unretagged) job sizes; evaluate
    // at sizes with enough probability mass under both families.
    cfg.task_sizes = {256, 1024};
    cfg.lublin.num_jobs = 120'000;
    cfg.lublin.completed_fraction = 0.8;
    const char* name =
        model == sim::ExperimentConfig::TraceModel::AtlasLike
            ? "Atlas-like"
            : "Lublin-Feitelson";
    const sim::ExperimentRunner runner(cfg);
    const sim::SweepResult sweep = runner.run_sweep();
    for (const auto& p : sweep.points) {
      const double ratio = p.rvof.payoff.mean() > 0.0
                               ? p.tvof.payoff.mean() / p.rvof.payoff.mean()
                               : 0.0;
      table.add_row({std::string(name),
                     static_cast<long long>(p.num_tasks), ratio,
                     p.tvof.avg_reputation.mean(),
                     p.rvof.avg_reputation.mean(),
                     static_cast<long long>(p.tvof.payoff.count())});
    }
  }
  bench::emit(table, "ablation_trace_model.csv");
  std::printf("\ninterpretation: both findings (payoff ratio ~1, TVOF "
              "reputation > RVOF) should hold under either workload "
              "family — the mechanism's properties come from the game and "
              "the trust graph, not from the trace marginals.\n");
  return 0;
}
