/// \file bench_fig78_rvof_iterations.cpp
/// Figs. 7 and 8: all iterations of the RVOF baseline on the same
/// programs A and B as Figs. 5-6. Paper finding: with random removal the
/// average global reputation fluctuates instead of increasing, and the
/// selected VO does not maximize the payoff x reputation product.
#include "bench/common.hpp"
#include "core/rvof.hpp"
#include "ip/bnb.hpp"

namespace {

void run_program(const char* figure, const svo::sim::ScenarioFactory& factory,
                 std::size_t repetition) {
  using namespace svo;
  const sim::Scenario s = factory.make(256, repetition);
  const ip::BnbAssignmentSolver solver(factory.config().solver);
  const core::RvofMechanism rvof(solver, factory.config().mechanism);
  util::Xoshiro256 rng(s.rvof_seed);
  const core::MechanismResult r =
      rvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng});

  util::Table table({"|C|", "feasible", "payoff share", "avg reputation",
                     "removed GSP"});
  table.set_precision(4);
  std::size_t reputation_drops = 0;
  double prev_rep = -1.0;
  for (const auto& it : r.journal) {
    if (prev_rep >= 0.0 && it.avg_global_reputation < prev_rep) {
      ++reputation_drops;
    }
    prev_rep = it.avg_global_reputation;
    table.add_row(
        {static_cast<long long>(it.coalition.size()),
         std::string(it.feasible ? "yes" : "no"), it.payoff_share,
         it.avg_global_reputation,
         it.removed_gsp == SIZE_MAX
             ? std::string("-")
             : "G" + std::to_string(it.removed_gsp)});
  }
  std::printf("--- %s (program %c, 256 tasks) ---\n", figure,
              repetition == 0 ? 'A' : 'B');
  bench::emit(table, std::string("fig78_rvof_program_") +
                         (repetition == 0 ? "A" : "B") + ".csv");
  std::printf("final VO: |C|=%zu, payoff=%.2f, avg reputation=%.4f; "
              "reputation dropped in %zu iterations "
              "(paper: fluctuates, does not monotonically rise)\n\n",
              r.selected.size(), r.payoff_share, r.avg_global_reputation,
              reputation_drops);
}

}  // namespace

int main() {
  using namespace svo;
  const bench::Session session("Figs. 7-8", "RVOF iteration traces for programs A and B");
  const sim::ScenarioFactory factory(bench::paper_config());
  run_program("Fig. 7", factory, 0);
  run_program("Fig. 8", factory, 1);
  return 0;
}
