/// \file bench_ablation_payoff_division.cpp
/// Ablation: the paper adopts equal sharing (eq. (18)) over the Shapley
/// value purely for tractability. On small games (m <= 8) we compute
/// both exactly, quantify the divergence, and check core membership of
/// each division — including demonstrating the empty-core cases the
/// paper mentions (Section II-C, citing [25]).
#include <cmath>

#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "game/core_solution.hpp"
#include "game/sampling.hpp"
#include "ip/bnb.hpp"
#include "ip/greedy.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Ablation", "payoff division: equal share vs Shapley value");

  sim::ExperimentConfig cfg = bench::paper_config();
  cfg.gen.params.num_gsps = 6;  // 2^6 coalition evaluations stay cheap
  cfg.task_sizes = {32};
  cfg.trace.canonical_sizes = {32};
  cfg.trace.min_jobs_per_canonical_size = 24;
  const sim::ScenarioFactory factory(cfg);
  const ip::BnbAssignmentSolver solver(cfg.solver);

  util::Table table({"program", "TVOF |C|", "equal share", "Shapley min",
                     "Shapley max", "L1 divergence", "equal in core",
                     "grand-coalition core"});
  table.set_precision(2);

  const std::size_t programs = std::min<std::size_t>(cfg.repetitions, 6);
  for (std::size_t prog = 0; prog < programs; ++prog) {
    const sim::Scenario s = factory.make(32, prog);
    const core::TvofMechanism tvof(solver, cfg.mechanism);
    util::Xoshiro256 rng(s.tvof_seed);
    const core::MechanismResult r =
        tvof.run(core::FormationRequest{s.instance.assignment, s.trust, rng});
    if (!r.success) continue;

    const game::VoValueFunction v(s.instance.assignment, solver);
    const auto oracle = [&](game::Coalition c) { return v.value(c); };
    const std::size_t m = cfg.gen.params.num_gsps;

    // Shapley value of the whole game vs the grand-coalition equal split.
    const std::vector<double> shapley = game::shapley_value(m, oracle);
    const game::Coalition grand = game::Coalition::all(m);
    const std::vector<double> equal =
        game::equal_share_vector(grand, v.value(grand), m);
    double l1 = 0.0;
    double smin = shapley[0];
    double smax = shapley[0];
    for (std::size_t i = 0; i < m; ++i) {
      l1 += std::abs(shapley[i] - equal[i]);
      smin = std::min(smin, shapley[i]);
      smax = std::max(smax, shapley[i]);
    }
    const bool equal_in_core = game::in_core(equal, oracle, 1e-6);
    const bool core_nonempty =
        game::find_core_imputation(m, oracle).has_value();

    table.add_row({static_cast<long long>(prog + 1),
                   static_cast<long long>(r.selected.size()),
                   equal[0], smin, smax, l1,
                   std::string(equal_in_core ? "yes" : "no"),
                   std::string(core_nonempty ? "nonempty" : "EMPTY")});
  }
  bench::emit(table, "ablation_payoff_division.csv");

  // At the paper's scale (m = 16) the exact Shapley value needs 2^16 IP
  // solves; the sampled estimator makes it tractable. One demonstration
  // program, 200 permutations, standard errors reported.
  {
    sim::ExperimentConfig big = bench::paper_config();
    big.task_sizes = {256};
    const sim::ScenarioFactory big_factory(big);
    const sim::Scenario s = big_factory.make(256, 0);
    ip::GreedyOptions fast;
    fast.local_search.max_move_passes = 4;
    fast.local_search.max_swap_passes = 0;
    const ip::GreedyAssignmentSolver fast_solver(fast);
    const game::VoValueFunction v16(s.instance.assignment, fast_solver);
    const auto oracle16 = [&](game::Coalition c) { return v16.value(c); };
    util::Xoshiro256 rng(big.seed);
    const game::SampledShapley est =
        game::shapley_value_sampled(16, oracle16, 200, rng);
    util::Table big_table({"GSP", "sampled Shapley", "std error"});
    big_table.set_precision(1);
    for (std::size_t g = 0; g < 16; ++g) {
      big_table.add_row({static_cast<long long>(g), est.value[g],
                         est.standard_error[g]});
    }
    std::printf("\nsampled Shapley at the paper's scale (m=16, n=256, "
                "200 permutations, %zu coalition evaluations):\n",
                v16.evaluations());
    bench::emit(big_table, "ablation_payoff_division_m16.csv");
  }
  std::printf("\ninterpretation: Shapley spreads payoffs by marginal "
              "contribution (heterogeneous), equal sharing does not; the "
              "core of the VO game can be empty, as the paper notes.\n");
  return 0;
}
