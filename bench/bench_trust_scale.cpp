/// \file bench_trust_scale.cpp
/// Extension: sparse + incremental trust engine at population scales the
/// paper's dense pipeline (k <= 16) could never touch. Sweeps bounded-
/// degree trust graphs at 1k / 10k / 100k GSPs through the CSR-backed
/// ReputationEngine and measures the two things the scale path promises
/// (DESIGN.md §4i):
///
///  1. a full 100k-participant reputation round completes (cold), and
///  2. after a small edge perturbation the incremental cache re-converges
///     from the previous eigenvector in measurably fewer iterations.
///
/// Emits BENCH_trust_scale.json:
///  - dense_sparse_identical: at k = 48 the sparse backend reproduces the
///    dense engine bit for bit — standard, coalition and robust paths
///    (gated exactly by tools/bench_diff);
///  - exact_hit_identical per run: an unchanged graph is answered from
///    the cache with the identical result object (exact gate);
///  - per-run nnz / fill_pct: structure echoes of the seeded generator
///    (exact gate — drift means the generator or CSR build changed);
///  - cold/warm iteration counts, total_converge_iterations and
///    warm_iteration_reduction_pct: deterministic engine work (directional
///    gates: fewer iterations, larger reduction);
///  - build/cold/warm wall clock and spmv_ms_per_iteration:
///    machine-bound (informational).
///
/// SVO_SEED overrides the root seed (default 20120910).
#include <cstdio>
#include <vector>

#include "bench/common.hpp"
#include "trust/reputation.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace svo;

constexpr std::size_t kDegree = 8;
constexpr std::size_t kPerturbedEdges = 12;  // < default warm_max_delta
constexpr std::size_t kIdentityGsps = 48;    // dense-vs-sparse check size

struct ScaleRun {
  std::size_t gsps = 0;
  std::size_t nnz = 0;
  double fill_pct = 0.0;
  double build_ms = 0.0;
  std::size_t cold_iterations = 0;
  double cold_ms = 0.0;
  std::size_t warm_iterations = 0;
  double warm_ms = 0.0;
  double spmv_ms_per_iteration = 0.0;
  bool exact_hit_identical = false;
  bool converged = false;
};

ScaleRun run_scale_point(std::size_t m, std::uint64_t seed) {
  ScaleRun run;
  run.gsps = m;

  util::Xoshiro256 rng(seed);
  const util::WallTimer build_timer;
  trust::TrustGraph g = trust::random_sparse_trust_graph(m, kDegree, rng);
  run.build_ms = build_timer.seconds() * 1e3;
  const linalg::SparseMatrix csr = g.normalized_sparse();
  run.nnz = csr.nnz();
  run.fill_pct = csr.fill_ratio() * 100.0;

  trust::ReputationCache cache;
  trust::ReputationOptions opts;  // Auto: CSR everywhere at these sizes
  opts.cache = &cache;
  const trust::ReputationEngine engine(opts);

  const util::WallTimer cold_timer;
  const trust::ReputationResult cold = engine.compute(g);
  run.cold_ms = cold_timer.seconds() * 1e3;
  run.cold_iterations = cold.iterations;
  run.converged = cold.converged;
  run.spmv_ms_per_iteration =
      cold.iterations > 0 ? run.cold_ms / static_cast<double>(cold.iterations)
                          : 0.0;

  // Unchanged graph: the cache must answer with the identical object.
  const trust::ReputationResult replay = engine.compute(g);
  run.exact_hit_identical =
      cache.stats().exact_hits == 1 && replay.scores == cold.scores &&
      replay.iterations == cold.iterations;

  // Small perturbation: re-converge from the previous eigenvector.
  for (std::size_t e = 0; e < kPerturbedEdges; ++e) {
    const std::size_t i = rng.index(m);
    std::size_t j = rng.index(m);
    if (j == i) j = (j + 1) % m;
    g.set_trust(i, j, rng.uniform(0.1, 1.0));
  }
  const util::WallTimer warm_timer;
  const trust::ReputationResult warm = engine.compute(g);
  run.warm_ms = warm_timer.seconds() * 1e3;
  run.warm_iterations = warm.iterations;
  run.converged = run.converged && warm.converged &&
                  cache.stats().warm_starts == 1;
  return run;
}

/// Bit-identity of the two backends over every reputation path, at a
/// size where the dense engine is still comfortable.
bool backends_identical(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const trust::TrustGraph g =
      trust::random_trust_graph(kIdentityGsps, 0.25, rng);
  std::vector<std::size_t> coalition;
  for (std::size_t i = 0; i < kIdentityGsps; i += 3) coalition.push_back(i);

  trust::ReputationOptions dense;
  dense.backend = trust::TrustBackend::Dense;
  trust::ReputationOptions sparse;
  sparse.backend = trust::TrustBackend::Sparse;
  const auto same = [](const trust::ReputationResult& a,
                       const trust::ReputationResult& b) {
    return a.scores == b.scores && a.iterations == b.iterations &&
           a.converged == b.converged && a.average == b.average;
  };
  bool ok =
      same(trust::ReputationEngine(dense).compute(g),
           trust::ReputationEngine(sparse).compute(g)) &&
      same(trust::ReputationEngine(dense).compute(g, coalition),
           trust::ReputationEngine(sparse).compute(g, coalition));
  dense.robust.enabled = sparse.robust.enabled = true;
  dense.robust.fresh = sparse.robust.fresh = {0, 7, 23};
  ok = ok && same(trust::ReputationEngine(dense).compute(g),
                  trust::ReputationEngine(sparse).compute(g));
  return ok;
}

}  // namespace

int main() {
  const bench::Session session(
      "Scale", "sparse + incremental reputation at 1k-100k GSPs");
  const std::uint64_t seed = util::env_u64_or("SVO_SEED", 20120910);

  const bool identical = backends_identical(seed);
  std::printf("dense == sparse (k=%zu, all paths): %s\n\n", kIdentityGsps,
              identical ? "bit-identical" : "MISMATCH");

  const std::vector<std::size_t> sizes = {1'000, 10'000, 100'000};
  std::vector<ScaleRun> runs;
  std::printf("%10s %10s %9s %8s %9s %8s %9s %12s\n", "gsps", "nnz",
              "build_ms", "cold_it", "cold_ms", "warm_it", "warm_ms",
              "spmv_ms/it");
  for (std::size_t idx = 0; idx < sizes.size(); ++idx) {
    const ScaleRun run = run_scale_point(sizes[idx], seed + idx);
    std::printf("%10zu %10zu %9.2f %8zu %9.2f %8zu %9.2f %12.4f\n", run.gsps,
                run.nnz, run.build_ms, run.cold_iterations, run.cold_ms,
                run.warm_iterations, run.warm_ms, run.spmv_ms_per_iteration);
    runs.push_back(run);
  }

  std::size_t total_converge = 0;
  double reduction_sum = 0.0;
  bool all_ok = identical;
  for (const ScaleRun& run : runs) {
    total_converge += run.cold_iterations + run.warm_iterations;
    if (run.cold_iterations > 0) {
      reduction_sum +=
          static_cast<double>(run.cold_iterations - run.warm_iterations) /
          static_cast<double>(run.cold_iterations);
    }
    all_ok = all_ok && run.converged && run.exact_hit_identical &&
             run.warm_iterations < run.cold_iterations;
  }
  const double warm_iteration_reduction =
      reduction_sum / static_cast<double>(runs.size());
  std::printf("\nwarm-start iteration reduction (mean): %.1f%%\n",
              warm_iteration_reduction * 100.0);
  std::printf("acceptance: %s\n", all_ok ? "PASS" : "FAIL");

  bench::Report report("trust_scale");
  obs::JsonWriter& j = report.json();
  j.kv("seed", seed);
  j.kv("degree", kDegree);
  j.kv("perturbed_edges", kPerturbedEdges);
  j.kv("dense_sparse_identical", identical);
  // Percent scale: the diff gate measures relative change against
  // max(|baseline|, 1), so a 0-1 fraction would only gate on absolute
  // drift; 0-100 restores the intended proportional 10% slack.
  j.kv("warm_iteration_reduction_pct", warm_iteration_reduction * 100.0);
  j.kv("total_converge_iterations", total_converge);
  j.key("runs").begin_array();
  for (const ScaleRun& run : runs) {
    j.begin_object();
    j.kv("gsps", run.gsps);
    j.kv("nnz", run.nnz);
    j.kv("fill_pct", run.fill_pct);
    j.kv("build_ms", run.build_ms);
    j.kv("cold_iterations", run.cold_iterations);
    j.kv("cold_ms", run.cold_ms);
    j.kv("warm_iterations", run.warm_iterations);
    j.kv("warm_ms", run.warm_ms);
    j.kv("spmv_ms_per_iteration", run.spmv_ms_per_iteration);
    j.kv("exact_hit_identical", run.exact_hit_identical);
    j.end_object();
  }
  j.end_array();
  report.write();
  return all_ok ? 0 : 1;
}
