/// \file bench_extension_protocol.cpp
/// Extension: the trusted-party protocol (des/ + core/distributed_tvof)
/// made measurable — wire messages, bytes and end-to-end latency of one
/// VO formation as the grid (m) and the program (n) grow, under a
/// WAN-ish latency model.
#include "bench/common.hpp"
#include "core/distributed_tvof.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "tests/ip/test_instances.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Extension", "trusted-party protocol cost (messages/bytes)");

  core::ProtocolOptions proto;
  proto.latency.base_seconds = 0.025;         // WAN round-half: 25 ms
  proto.latency.bytes_per_second = 1.25e7;    // 100 Mbit/s links
  proto.latency.jitter = 0.2;

  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);

  util::Table table({"GSPs", "tasks", "messages", "kbytes",
                     "report phase s", "end-to-end s", "mechanism s"});
  table.set_precision(3);
  for (const auto& [m, n] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {8, 256}, {16, 256}, {16, 2048}, {16, 8192}, {32, 2048}}) {
    util::Xoshiro256 gen(m * 1000 + n);
    ip::AssignmentInstance inst = ip::testing::random_instance(m, n, gen);
    const trust::TrustGraph trust = trust::random_trust_graph(m, 0.2, gen);
    util::Xoshiro256 rng(7);
    const core::DistributedRunResult r =
        core::run_distributed(tvof, inst, trust, rng, proto);
    table.add_row({static_cast<long long>(m), static_cast<long long>(n),
                   static_cast<long long>(r.protocol.messages),
                   static_cast<double>(r.protocol.bytes) / 1024.0,
                   r.protocol.report_phase_seconds,
                   r.protocol.completion_seconds,
                   r.mechanism.elapsed_seconds});
  }
  bench::emit(table, "extension_protocol.csv");
  std::printf("\ninterpretation: messages grow linearly in m (reports and "
              "notices), bytes are dominated by the 16n-byte cost/time "
              "reports, and end-to-end latency = one report round trip + "
              "the mechanism's own compute time — the centralized design "
              "the paper assumes is cheap in messages but concentrates "
              "all data movement into the trusted party.\n");
  return 0;
}
