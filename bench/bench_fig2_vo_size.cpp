/// \file bench_fig2_vo_size.cpp
/// Fig. 2: size of the final VO vs number of tasks, TVOF vs RVOF.
/// Paper finding: TVOF's VOs are not necessarily smaller than RVOF's;
/// size tends to grow with the number of tasks.
#include "bench/common.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Fig. 2", "final VO size vs number of tasks");

  const sim::ExperimentConfig cfg = bench::paper_config();
  const sim::SweepResult sweep = bench::run_paper_sweep(cfg);

  util::Table table({"tasks", "TVOF size", "RVOF size", "TVOF min..max",
                     "RVOF min..max"});
  table.set_precision(2);
  const auto span = [](const util::RunningStats& s) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f..%.0f", s.min(), s.max());
    return std::string(buf);
  };
  for (const auto& p : sweep.points) {
    table.add_row({static_cast<long long>(p.num_tasks),
                   p.tvof.vo_size.mean(), p.rvof.vo_size.mean(),
                   span(p.tvof.vo_size), span(p.rvof.vo_size)});
  }
  bench::emit(table, "fig2_vo_size.csv");
  return 0;
}
