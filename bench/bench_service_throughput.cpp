/// \file bench_service_throughput.cpp
/// Extension: formation-as-a-service throughput — the sharded, batched
/// svc::FormationService driven by an open-loop burst of formation
/// requests over a fixed instance pool, at 1, 4 and hardware-width
/// shard counts (one worker thread per shard).
///
/// Emits BENCH_service.json:
///  - single_shard_identical: every 1-shard service outcome reproduces a
///    direct core::VoFormationMechanism::run bit for bit, RNG probe
///    included (gated exactly by tools/bench_diff);
///  - replay_identical: the same seeds replayed through the multi-shard
///    service give per-ticket identical outcomes despite different
///    thread interleavings (exact gate);
///  - shed_counts_identical: paused-service admission control sheds
///    exactly the submissions beyond queue capacity (exact gate);
///  - per-run requests_per_sec and queue/solve latency quantiles
///    (machine-bound wall clock: informational);
///  - speedup_4v1: 4-shard over 1-shard throughput on *this* machine —
///    machine-relative, so it transfers across hosts and gates
///    directionally. On a single-core host it sits near 1.0 (the
///    committed baseline records the bench machine's value).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "sim/scenario.hpp"
#include "svc/service.hpp"
#include "util/timer.hpp"

namespace {

using namespace svo;

constexpr std::size_t kGsps = 8;
constexpr std::size_t kTasks = 24;
constexpr std::size_t kPool = 6;

std::uint64_t request_seed(std::uint64_t root, std::size_t i) {
  return root ^ (0x9E3779B97F4A7C15ULL * (i + 1));
}

struct RunResult {
  std::size_t shards = 0;
  double elapsed_s = 0.0;
  double requests_per_sec = 0.0;
  svc::ServiceStats stats;
  std::vector<svc::RequestOutcome> outcomes;
};

/// Submit `requests` formation requests over the scenario pool, drain,
/// and collect per-ticket outcomes (in submission order).
RunResult run_service(const core::VoFormationMechanism& mechanism,
                      const std::vector<sim::Scenario>& pool,
                      std::size_t requests, std::size_t shards,
                      std::uint64_t seed) {
  svc::ServiceOptions opt;
  opt.shards = shards;
  opt.threads = shards;
  opt.queue_capacity = requests;  // burst fits: this run measures solve
                                  // throughput, not admission control
  opt.batch_size = 8;
  RunResult run;
  run.shards = shards;
  svc::FormationService service(mechanism, opt);
  std::vector<svc::RequestHandle> handles;
  handles.reserve(requests);
  const util::WallTimer timer;
  for (std::size_t i = 0; i < requests; ++i) {
    const sim::Scenario& s = pool[i % pool.size()];
    util::Xoshiro256 rng(request_seed(seed, i));
    handles.push_back(service.submit(core::FormationRequest{
        s.instance.assignment, s.trust, rng}));
  }
  service.drain();
  run.elapsed_s = timer.seconds();
  run.requests_per_sec =
      run.elapsed_s > 0.0 ? static_cast<double>(requests) / run.elapsed_s : 0.0;
  run.stats = service.stats();
  run.outcomes.reserve(requests);
  for (const svc::RequestHandle& h : handles) {
    h.wait();
    run.outcomes.push_back(h.outcome());
  }
  return run;
}

bool outcomes_identical(const svc::RequestOutcome& a,
                        const svc::RequestOutcome& b) {
  return a.ticket == b.ticket && a.shard == b.shard && a.state == b.state &&
         a.rng_probe == b.rng_probe &&
         a.result.selected.bits() == b.result.selected.bits() &&
         a.result.mapping == b.result.mapping && a.result.cost == b.result.cost &&
         a.result.value == b.result.value &&
         a.result.journal.size() == b.result.journal.size();
}

/// Every single-shard outcome vs a direct synchronous run from the same
/// seed: the service must be a scheduling layer, never a semantic one.
bool single_shard_matches_direct(const core::VoFormationMechanism& mechanism,
                                 const std::vector<sim::Scenario>& pool,
                                 const RunResult& run, std::uint64_t seed) {
  for (std::size_t i = 0; i < run.outcomes.size(); ++i) {
    const sim::Scenario& s = pool[i % pool.size()];
    util::Xoshiro256 rng(request_seed(seed, i));
    const core::MechanismResult direct = mechanism.run(
        core::FormationRequest{s.instance.assignment, s.trust, rng});
    const svc::RequestOutcome& out = run.outcomes[i];
    if (out.state != svc::TicketState::Done) return false;
    if (out.rng_probe != rng()) return false;
    if (direct.selected.bits() != out.result.selected.bits()) return false;
    if (direct.mapping != out.result.mapping) return false;
    if (direct.cost != out.result.cost) return false;
    if (direct.value != out.result.value) return false;
    if (direct.journal.size() != out.result.journal.size()) return false;
    for (std::size_t k = 0; k < direct.journal.size(); ++k) {
      if (direct.journal[k].removed_gsp != out.result.journal[k].removed_gsp) {
        return false;
      }
    }
  }
  return true;
}

/// Paused-service admission control: capacity C admits exactly C of
/// C + extra submissions and sheds the rest, deterministically.
bool shed_counts_exact(const core::VoFormationMechanism& mechanism,
                       const std::vector<sim::Scenario>& pool,
                       std::uint64_t seed) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::size_t kExtra = 5;
  svc::ServiceOptions opt;
  opt.queue_capacity = kCapacity;
  opt.batch_size = 4;
  opt.start_paused = true;
  svc::FormationService service(mechanism, opt);
  std::size_t shed = 0;
  for (std::size_t i = 0; i < kCapacity + kExtra; ++i) {
    const sim::Scenario& s = pool[i % pool.size()];
    util::Xoshiro256 rng(request_seed(seed, i));
    if (service
            .submit(core::FormationRequest{s.instance.assignment, s.trust, rng})
            .poll() == svc::TicketState::Shed) {
      ++shed;
    }
  }
  service.resume();
  service.drain();
  const svc::ServiceStats stats = service.stats();
  return shed == kExtra && stats.shed == kExtra &&
         stats.submitted == kCapacity && stats.completed == kCapacity &&
         stats.solver_runs == kCapacity;
}

}  // namespace

int main() {
  const bench::Session session(
      "Extension", "formation-as-a-service: sharded, batched async request "
                   "engine throughput and equivalence");

  const std::uint64_t seed = util::env_u64_or("SVO_SEED", 20120910);
  const std::size_t requests =
      util::env_positive_size_or("SVO_SERVICE_REQUESTS", 96);
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());

  sim::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.gen.params.num_gsps = kGsps;
  cfg.task_sizes = {kTasks};
  cfg.trace.num_jobs = 4000;
  cfg.trace.canonical_sizes = {kTasks};
  cfg.trace.min_jobs_per_canonical_size = kPool;
  const sim::ScenarioFactory factory(cfg);
  std::vector<sim::Scenario> pool;
  pool.reserve(kPool);
  for (std::size_t rep = 0; rep < kPool; ++rep) {
    pool.push_back(factory.make(kTasks, rep));
  }

  ip::BnbOptions solver_opts;
  solver_opts.max_nodes = 2000;
  const ip::BnbAssignmentSolver solver(solver_opts);
  const core::TvofMechanism tvof(solver);

  // Shard ladder: single shard (the equivalence mode), 4 (the scaling
  // acceptance point), and the hardware width. Deduplicated in order.
  std::vector<std::size_t> shard_counts = {1, 4};
  if (hw != 1 && hw != 4) shard_counts.push_back(hw);

  std::vector<RunResult> runs;
  for (const std::size_t shards : shard_counts) {
    RunResult run = run_service(tvof, pool, requests, shards, seed);
    std::fprintf(stderr,
                 "  shards %2zu: %7.1f req/s  queue p99 %9.0f us  solve p99 "
                 "%9.0f us  (%.3fs)\n",
                 shards, run.requests_per_sec, run.stats.queue_p99_us,
                 run.stats.solve_p99_us, run.elapsed_s);
    runs.push_back(std::move(run));
  }

  const bool single_shard_identical =
      single_shard_matches_direct(tvof, pool, runs[0], seed);
  const RunResult replay = run_service(tvof, pool, requests, 4, seed);
  bool replay_identical = runs[1].outcomes.size() == replay.outcomes.size();
  for (std::size_t i = 0; replay_identical && i < replay.outcomes.size(); ++i) {
    replay_identical = outcomes_identical(runs[1].outcomes[i],
                                          replay.outcomes[i]);
  }
  const bool shed_identical = shed_counts_exact(tvof, pool, seed);
  const double speedup_4v1 =
      runs[0].requests_per_sec > 0.0
          ? runs[1].requests_per_sec / runs[0].requests_per_sec
          : 0.0;

  util::Table table({"shards", "req/s", "queue p50 us", "queue p99 us",
                     "solve p50 us", "solve p99 us", "elapsed s"});
  table.set_precision(1);
  for (const RunResult& run : runs) {
    table.add_row({static_cast<double>(run.shards), run.requests_per_sec,
                   run.stats.queue_p50_us, run.stats.queue_p99_us,
                   run.stats.solve_p50_us, run.stats.solve_p99_us,
                   run.elapsed_s});
  }
  bench::emit(table, "service_throughput.csv");

  bench::Report report("service");
  obs::JsonWriter& j = report.json();
  j.kv("experiment", "service_throughput");
  j.kv("gsps", kGsps);
  j.kv("tasks", kTasks);
  j.kv("instance_pool", static_cast<double>(kPool));
  j.kv("requests", static_cast<double>(requests));
  j.kv("seed", static_cast<double>(seed));
  j.kv("hardware_threads", static_cast<double>(hw));
  j.key("runs").begin_array();
  for (const RunResult& run : runs) {
    j.begin_object();
    j.kv("shards", static_cast<double>(run.shards));
    j.kv("requests_per_sec", run.requests_per_sec);
    j.kv("queue_p50_us", run.stats.queue_p50_us);
    j.kv("queue_p99_us", run.stats.queue_p99_us);
    j.kv("solve_p50_us", run.stats.solve_p50_us);
    j.kv("solve_p99_us", run.stats.solve_p99_us);
    j.kv("elapsed_seconds", run.elapsed_s);
    j.kv("ticks", static_cast<double>(run.stats.ticks));
    j.end_object();
  }
  j.end_array();
  j.key("aggregate").begin_object();
  j.kv("single_shard_identical", single_shard_identical);
  j.kv("replay_identical", replay_identical);
  j.kv("shed_counts_identical", shed_identical);
  j.kv("speedup_4v1", speedup_4v1);
  j.end_object();
  report.write();

  std::printf(
      "\nacceptance: single-shard service identical to direct run: %s; "
      "same-seed multi-shard replay identical: %s; shed accounting exact: "
      "%s; 4-shard speedup over 1 shard: %.2fx (%zu hardware threads)\n"
      "\ninterpretation: each run pushes %zu formation requests through "
      "svc::FormationService and drains; requests route deterministically "
      "across shards and each shard batch-executes the core mechanism. "
      "Equivalence booleans gate exactly in tools/bench_diff; the shard "
      "speedup is machine-relative and gates directionally; absolute "
      "req/s and latency quantiles are wall clock and informational.\n",
      single_shard_identical ? "yes" : "NO", replay_identical ? "yes" : "NO",
      shed_identical ? "yes" : "NO", speedup_4v1, hw, requests);
  return (single_shard_identical && replay_identical && shed_identical) ? 0
                                                                        : 1;
}
