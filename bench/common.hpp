/// \file common.hpp
/// Shared scaffolding for the figure/table harnesses in bench/: default
/// experiment configuration (the paper's full protocol), environment
/// overrides, and result emission.
///
/// Environment overrides (all optional):
///   SVO_SEED   root seed (default 20120910)
///   SVO_REPS   repetitions per sweep point (default 10, the paper's)
///   SVO_SIZES  comma-separated program sizes (default 256..8192)
///   SVO_CSV    directory to also write CSV files into (default: skip)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "util/csv.hpp"

namespace svo::bench {

/// Parse "a,b,c" into sizes; returns fallback on absence or garbage.
inline std::vector<std::size_t> parse_sizes(const char* env,
                                            std::vector<std::size_t> fallback) {
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<std::size_t> out;
  std::string token;
  for (const char* p = env;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!token.empty()) {
        const long v = std::strtol(token.c_str(), nullptr, 10);
        if (v <= 0) return fallback;
        out.push_back(static_cast<std::size_t>(v));
        token.clear();
      }
      if (*p == '\0') break;
    } else {
      token += *p;
    }
  }
  return out.empty() ? fallback : out;
}

/// The paper's experimental setup (Section IV-A) with env overrides.
inline sim::ExperimentConfig paper_config() {
  sim::ExperimentConfig cfg;
  if (const char* seed = std::getenv("SVO_SEED")) {
    cfg.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* reps = std::getenv("SVO_REPS")) {
    const long v = std::strtol(reps, nullptr, 10);
    if (v > 0) cfg.repetitions = static_cast<std::size_t>(v);
  }
  cfg.task_sizes = parse_sizes(std::getenv("SVO_SIZES"), cfg.task_sizes);
  // Node budget for the anytime IP-B&B in mechanism loops: identical for
  // TVOF and RVOF (DESIGN.md §4.4).
  cfg.solver.max_nodes = 20'000;
  return cfg;
}

/// Print the table and optionally persist a CSV next to it.
inline void emit(const util::Table& table, const std::string& csv_name) {
  table.write_pretty(std::cout);
  if (const char* dir = std::getenv("SVO_CSV")) {
    const std::string path = std::string(dir) + "/" + csv_name;
    table.write_csv_file(path);
    std::printf("csv written: %s\n", path.c_str());
  }
}

/// Run the paper's full sweep (Figs. 1, 2, 3, 9 share it) and echo
/// progress so long runs are visibly alive.
inline sim::SweepResult run_paper_sweep(const sim::ExperimentConfig& cfg) {
  const sim::ExperimentRunner runner(cfg);
  std::size_t done = 0;
  const std::size_t total =
      cfg.task_sizes.size() * cfg.repetitions * (cfg.run_rvof ? 2 : 1);
  return runner.run_sweep([&](std::size_t n, std::size_t rep,
                              const std::string& mech,
                              const core::MechanismResult& res) {
    ++done;
    std::fprintf(stderr, "  [%3zu/%zu] n=%zu rep=%zu %s: |C|=%zu %.3fs\n",
                 done, total, n, rep, mech.c_str(), res.selected.size(),
                 res.elapsed_seconds);
  });
}

/// Header banner shared by all harnesses.
inline void banner(const char* figure, const char* what) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf(
      "(reproduction of Mashayekhy & Grosu, ICPP 2012; synthetic Atlas "
      "trace, m=16 GSPs, ER(16,0.1) trust)\n\n");
}

}  // namespace svo::bench
