/// \file common.hpp
/// Shared scaffolding for the figure/table harnesses in bench/: default
/// experiment configuration (the paper's full protocol), environment
/// overrides, and result emission.
///
/// Environment overrides (all optional):
///   SVO_SEED     root seed (default 20120910)
///   SVO_REPS     repetitions per sweep point (default 10, the paper's)
///   SVO_SIZES    comma-separated program sizes (default 256..8192)
///   SVO_CSV      directory to also write CSV files into (default: skip)
///   SVO_TRACE    write a Chrome trace of the run to this file
///   SVO_METRICS  write the metric registry JSON to this file
///
/// Malformed values warn on stderr and fall back to the defaults —
/// parsing is the strict util/env.hpp parser shared with svo_cli, not
/// the silent strtol of earlier revisions.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"

namespace svo::bench {

/// Parse "a,b,c" into sizes; returns fallback on absence or garbage.
/// Thin wrapper over util::parse_size_list kept for harnesses that read
/// a size list from somewhere other than the environment.
inline std::vector<std::size_t> parse_sizes(const char* text,
                                            std::vector<std::size_t> fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  if (auto sizes = util::parse_size_list(text)) return std::move(*sizes);
  return fallback;
}

/// The paper's experimental setup (Section IV-A) with env overrides.
inline sim::ExperimentConfig paper_config() {
  sim::ExperimentConfig cfg;
  cfg.seed = util::env_u64_or("SVO_SEED", cfg.seed);
  cfg.repetitions = util::env_positive_size_or("SVO_REPS", cfg.repetitions);
  cfg.task_sizes = util::env_size_list_or("SVO_SIZES", cfg.task_sizes);
  // Node budget for the anytime IP-B&B in mechanism loops: identical for
  // TVOF and RVOF (DESIGN.md §4.4).
  cfg.solver.max_nodes = 20'000;
  return cfg;
}

/// Print the table and optionally persist a CSV next to it.
inline void emit(const util::Table& table, const std::string& csv_name) {
  table.write_pretty(std::cout);
  const std::string dir = util::env_string_or("SVO_CSV", "");
  if (!dir.empty()) {
    const std::string path = dir + "/" + csv_name;
    table.write_csv_file(path);
    std::printf("csv written: %s\n", path.c_str());
  }
}

/// Run the paper's full sweep (Figs. 1, 2, 3, 9 share it) and echo
/// progress so long runs are visibly alive.
inline sim::SweepResult run_paper_sweep(const sim::ExperimentConfig& cfg) {
  const sim::ExperimentRunner runner(cfg);
  std::size_t done = 0;
  const std::size_t total =
      cfg.task_sizes.size() * cfg.repetitions * (cfg.run_rvof ? 2 : 1);
  return runner.run_sweep([&](std::size_t n, std::size_t rep,
                              const std::string& mech,
                              const core::MechanismResult& res) {
    ++done;
    std::fprintf(stderr, "  [%3zu/%zu] n=%zu rep=%zu %s: |C|=%zu %.3fs\n",
                 done, total, n, rep, mech.c_str(), res.selected.size(),
                 res.elapsed_seconds);
  });
}

/// Header banner shared by all harnesses.
inline void banner(const char* figure, const char* what) {
  std::printf("=== %s: %s ===\n", figure, what);
  std::printf(
      "(reproduction of Mashayekhy & Grosu, ICPP 2012; synthetic Atlas "
      "trace, m=16 GSPs, ER(16,0.1) trust)\n\n");
}

/// One per harness main(): prints the banner and holds an env-driven
/// obs::TraceSession, so EVERY bench binary honours SVO_TRACE /
/// SVO_METRICS without per-harness wiring. With neither variable set
/// the session (and the whole recorder) stays disabled and free.
class Session {
 public:
  Session(const char* figure, const char* what) { banner(figure, what); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

 private:
  obs::TraceSession trace_;
};

/// Structured BENCH_<name>.json emitter, shared by the harnesses that
/// publish machine-readable acceptance aggregates (warm-start,
/// attacks, ...). Backed by obs::JsonWriter, so the scaffolding cannot
/// produce syntactically invalid JSON the way per-binary fprintf did.
///
///   bench::Report report("warmstart");
///   report.json().kv("mechanism", "tvof");
///   ... nested objects/arrays via report.json() ...
///   report.write();
class Report {
 public:
  /// Opens the root object and stamps {"bench": <name>}.
  explicit Report(const std::string& name)
      : path_("BENCH_" + name + ".json"), writer_(buf_, /*pretty=*/true) {
    writer_.begin_object();
    writer_.kv("bench", name);
  }

  /// The underlying writer, positioned inside the root object.
  [[nodiscard]] obs::JsonWriter& json() noexcept { return writer_; }

  /// Close the root object and write the file next to the binary.
  /// Returns false (after an stderr note) when the file cannot be
  /// written — a bench must still print its human-readable summary.
  bool write() {
    writer_.end_object();
    std::ofstream f(path_);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    f << buf_.str() << '\n';
    f.close();
    std::printf("bench report written: %s\n", path_.c_str());
    return f.good();
  }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ostringstream buf_;
  obs::JsonWriter writer_;
};

}  // namespace svo::bench
