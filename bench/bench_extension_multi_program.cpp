/// \file bench_extension_multi_program.cpp
/// Extension: the paper's multi-program remark, measured — programs
/// arrive while earlier VOs are still committed, and the mechanism can
/// only recruit free GSPs. Sweeps the arrival intensity and reports
/// admission rate, utilization, and total system value for TVOF.
#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "sim/multi_program.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Extension",
                "multi-program formation under resource contention");

  const ip::BnbAssignmentSolver solver;
  const core::TvofMechanism tvof(solver);

  util::Table table({"arrival intensity", "admission rate",
                     "mean utilization", "total value", "mean VO size"});
  table.set_precision(3);
  for (const double intensity : {4.0, 1.0, 0.25, 0.05}) {
    sim::MultiProgramConfig cfg;
    cfg.programs = 40;
    cfg.arrival_intensity = intensity;
    cfg.gen.params.num_gsps = 16;
    util::RunningStats admission;
    util::RunningStats utilization;
    util::RunningStats value;
    util::RunningStats vo_size;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const sim::MultiProgramResult r =
          sim::run_multi_program(tvof, cfg, seed);
      admission.add(r.admission_rate);
      utilization.add(r.mean_utilization);
      value.add(r.total_value);
      for (const auto& o : r.outcomes) {
        if (o.admitted) vo_size.add(static_cast<double>(o.vo.size()));
      }
    }
    table.add_row({intensity, admission.mean(), utilization.mean(),
                   value.mean(), vo_size.mean()});
  }
  bench::emit(table, "extension_multi_program.csv");
  std::printf("\ninterpretation: sparse arrivals (high intensity value = "
              "long gaps) admit everything at low utilization; dense "
              "arrivals saturate the 16 GSPs, admission falls, and VOs "
              "shrink to whatever free capacity remains.\n");
  return 0;
}
