/// \file bench_extension_churn.cpp
/// Extension: the streaming grid economy under GSP churn — a churn-level
/// sweep of sim::StreamEngine (continuous arrivals, concurrent VOs,
/// crash-triggered repair, admission control, re-entry quarantine),
/// reporting the graceful-degradation profile: completion rate,
/// deadline-miss rate, realized value, repairs, and virtual-time
/// formation latency per churn level.
///
/// Emits BENCH_churn.json with the acceptance aggregates:
///  - churn_off_identical_to_oneshot: with churn disabled the streaming
///    run reproduces ExperimentRunner::run_pair bit for bit (gated
///    exactly by tools/bench_diff);
///  - replay_identical: the same options replay the identical event
///    timeline (exact gate);
///  - lost_requests: admitted requests that never reached a terminal
///    state — the invariant is zero, gated exactly;
///  - per-level completion_rate (higher is better) and
///    deadline_miss_rate (lower is better), both in deterministic
///    virtual time, so they gate across machines.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "sim/stream_engine.hpp"
#include "util/stats.hpp"

namespace {

using namespace svo;

constexpr std::size_t kGsps = 8;
constexpr std::size_t kRequests = 12;

sim::ExperimentConfig base_config(std::uint64_t seed) {
  sim::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.gen.params.num_gsps = kGsps;
  cfg.task_sizes = {24, 48};
  cfg.trace.num_jobs = 4000;
  cfg.trace.canonical_sizes = {24, 48};
  cfg.trace.min_jobs_per_canonical_size = 8;
  cfg.solver.max_nodes = 4000;
  return cfg;
}

/// One churn level of the degradation sweep.
struct Level {
  std::string name;
  double leave_rate = 0.0;
  double crash_rate = 0.0;
};

sim::StreamOptions level_options(const Level& level, std::uint64_t seed) {
  sim::StreamOptions opts;
  opts.base = base_config(seed);
  opts.num_requests = kRequests;
  opts.arrival_interval_seconds = 60.0;
  opts.formation_deadline_seconds = 300.0;
  opts.formation_seconds = 2.0;
  opts.retry_backoff_seconds = 20.0;
  opts.max_attempts = 5;
  opts.admission_floor = 2;
  opts.execution_time_scale = 0.02;
  opts.churn.leave_rate = level.leave_rate;
  opts.churn.crash_rate = level.crash_rate;
  opts.churn.mean_absence_seconds = 150.0;
  opts.churn.rejoin_probability = 0.9;
  opts.churn.seed = seed ^ 0xC1124;
  // Rejoining providers matter to reputation only through the robust
  // layer; enable it so the quarantine path is exercised end to end.
  opts.base.mechanism.reputation.robust.enabled = true;
  return opts;
}

/// Churn-off streaming vs the one-shot sweep on the same scenarios:
/// unbounded deadlines and instantaneous executions remove contention,
/// so every request must reproduce run_pair bit for bit.
bool churn_off_identical_to_oneshot(std::uint64_t seed) {
  sim::StreamOptions opts;
  opts.base = base_config(seed);
  opts.num_requests = kRequests;
  opts.arrival_interval_seconds = 60.0;
  opts.formation_seconds = 1.0;
  opts.execution_time_scale = 0.0;
  const sim::StreamResult streaming = sim::StreamEngine(opts).run();
  if (streaming.admitted != kRequests || streaming.lost != 0) return false;

  const sim::ExperimentRunner runner(base_config(seed));
  const std::size_t num_sizes = opts.base.task_sizes.size();
  for (const sim::StreamRequestResult& rr : streaming.requests) {
    const sim::Scenario scenario = runner.scenarios().make(
        opts.base.task_sizes[rr.id % num_sizes], rr.id / num_sizes);
    const core::MechanismResult oneshot = runner.run_pair(scenario).tvof;
    if (!oneshot.success) {
      if (rr.outcome == sim::RequestOutcome::Completed) return false;
      continue;
    }
    if (rr.outcome != sim::RequestOutcome::Completed) return false;
    const core::MechanismResult& streamed = rr.formation;
    if (streamed.selected.bits() != oneshot.selected.bits()) return false;
    if (streamed.mapping != oneshot.mapping) return false;
    if (streamed.cost != oneshot.cost || streamed.value != oneshot.value) {
      return false;
    }
    if (streamed.journal.size() != oneshot.journal.size()) return false;
    for (std::size_t i = 0; i < streamed.journal.size(); ++i) {
      if (streamed.journal[i].removed_gsp != oneshot.journal[i].removed_gsp) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  const bench::Session session(
      "Extension", "streaming grid economy: churn-tolerant virtual-time "
                   "VO formation with graceful degradation");

  const std::uint64_t seed = util::env_u64_or("SVO_SEED", 20120910);

  const std::vector<Level> levels = {
      {"off", 0.0, 0.0},
      {"light", 1.0 / 600.0, 1.0 / 900.0},
      {"moderate", 1.0 / 300.0, 1.0 / 400.0},
      {"heavy", 1.0 / 120.0, 1.0 / 150.0},
  };

  std::vector<sim::StreamResult> results;
  std::size_t lost_requests = 0;
  bool replay_identical = true;
  for (const Level& level : levels) {
    const sim::StreamEngine engine(level_options(level, seed));
    sim::StreamResult result = engine.run();
    replay_identical =
        replay_identical && engine.run().timeline == result.timeline;
    lost_requests += result.lost;
    std::fprintf(stderr,
                 "  churn %-9s completion %.3f  miss %.3f  repairs %zu  "
                 "churn events %zu\n",
                 level.name.c_str(), result.completion_rate,
                 result.deadline_miss_rate, result.repaired,
                 result.churn_schedule.size());
    results.push_back(std::move(result));
  }
  const bool oneshot_identical = churn_off_identical_to_oneshot(seed);

  util::Table table({"churn", "completion", "miss", "shed", "repaired",
                     "realized $", "lat p99 (vt)"});
  table.set_precision(3);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const sim::StreamResult& r = results[i];
    table.add_row({levels[i].name, r.completion_rate, r.deadline_miss_rate,
                   static_cast<double>(r.shed),
                   static_cast<double>(r.repaired), r.total_realized_value,
                   r.p99_formation_latency});
  }
  bench::emit(table, "extension_churn.csv");

  bench::Report report("churn");
  obs::JsonWriter& j = report.json();
  j.kv("experiment", "streaming_churn_degradation");
  j.kv("gsps", kGsps);
  j.kv("requests_per_level", kRequests);
  j.kv("seed", static_cast<double>(seed));
  j.key("levels").begin_array();
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const sim::StreamResult& r = results[i];
    std::size_t rejoins = 0;
    for (const auto& [gsp, count] : r.quarantine_activations) rejoins += count;
    j.begin_object();
    j.kv("churn", levels[i].name);
    j.kv("completion_rate", r.completion_rate);
    j.kv("deadline_miss_rate", r.deadline_miss_rate);
    j.kv("shed", static_cast<double>(r.shed));
    j.kv("repaired", static_cast<double>(r.repaired));
    j.kv("realized_value", r.total_realized_value);
    j.kv("mean_formation_latency", r.mean_formation_latency);
    j.kv("p99_formation_latency", r.p99_formation_latency);
    j.kv("churn_events", static_cast<double>(r.churn_schedule.size()));
    j.kv("quarantined_rejoins", static_cast<double>(rejoins));
    j.end_object();
  }
  j.end_array();
  j.key("aggregate").begin_object();
  j.kv("churn_off_identical_to_oneshot", oneshot_identical);
  j.kv("replay_identical", replay_identical);
  j.kv("lost_requests", static_cast<double>(lost_requests));
  j.end_object();
  report.write();

  std::printf(
      "\nacceptance: churn-off streaming identical to one-shot sweep: %s; "
      "same-seed replay identical: %s; lost requests: %zu\n"
      "\ninterpretation: each row streams %zu formation requests through "
      "the same GSP pool while providers leave, crash and rejoin at the "
      "row's rates. Graceful degradation means completion decays smoothly "
      "with churn — requests end shed or timed-out, never lost — while "
      "crash-triggered repair recovers VOs over the survivors and "
      "rejoining providers re-enter through the reputation quarantine. "
      "Latencies are virtual-time and deterministic, so they gate in "
      "tools/bench_diff.\n",
      oneshot_identical ? "yes" : "NO", replay_identical ? "yes" : "NO",
      lost_requests, kRequests);
  return (oneshot_identical && replay_identical && lost_requests == 0) ? 0 : 1;
}
