/// \file bench_fig1_payoff.cpp
/// Fig. 1: GSP individual payoff in the final VO vs number of tasks,
/// TVOF vs RVOF, averaged over repetitions. Paper finding: the two
/// mechanisms yield (statistically) the same payoff, because both select
/// the max-individual-payoff VO from their lists.
#include "bench/common.hpp"

int main() {
  using namespace svo;
  const bench::Session session("Fig. 1", "GSP individual payoff vs number of tasks");

  const sim::ExperimentConfig cfg = bench::paper_config();
  const sim::SweepResult sweep = bench::run_paper_sweep(cfg);

  util::Table table({"tasks", "TVOF payoff", "RVOF payoff", "TVOF stddev",
                     "RVOF stddev", "ratio TVOF/RVOF"});
  table.set_precision(2);
  for (const auto& p : sweep.points) {
    const double ratio = p.rvof.payoff.mean() > 0.0
                             ? p.tvof.payoff.mean() / p.rvof.payoff.mean()
                             : 0.0;
    table.add_row({static_cast<long long>(p.num_tasks),
                   p.tvof.payoff.mean(), p.rvof.payoff.mean(),
                   p.tvof.payoff.stddev(), p.rvof.payoff.stddev(), ratio});
  }
  bench::emit(table, "fig1_payoff.csv");
  std::printf("\npaper shape: TVOF/RVOF payoff ratio ~= 1 at every size "
              "(both select the max-share VO).\n");
  return 0;
}
