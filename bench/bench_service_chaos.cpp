/// \file bench_service_chaos.cpp
/// Extension: overload soak of the chaos-hardened svc::FormationService —
/// a sustained burst of formation requests (scaled by
/// SVO_SERVICE_REQUESTS) pushed through a multi-shard service with a
/// seeded FaultPlan injecting transient solver failures, queue poison,
/// shard kills and straggler ticks, plus deterministically expiring
/// deadlines on a fixed slice of the burst.
///
/// Emits BENCH_service_chaos.json:
///  - requests_lost: admitted handles that failed to reach a terminal
///    state. The service invariant is zero, always — gated exactly by
///    tools/bench_diff (`*lost*`);
///  - replay_identical: the same seed replayed through the same chaos
///    gives per-ticket identical outcomes (state, attempts, RNG probe,
///    error) despite different thread interleavings (exact gate);
///  - faults_off_identical: the chaos-capable service with an empty plan
///    reproduces direct core::VoFormationMechanism::run bit for bit, RNG
///    probe included — the PR 7 equivalence point (exact gate);
///  - retry_success_rate and the retry / expiry / restart counts: driven
///    entirely by the seeded plan, hence deterministic — exact gates
///    (`*retry*`, `*expired*`, `*restart*`);
///  - queue p99 under chaos and under a shed-mode overload run
///    (capacity a quarter of the burst): machine-bound wall clock,
///    informational.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "ip/bnb.hpp"
#include "sim/scenario.hpp"
#include "svc/fault_plan.hpp"
#include "svc/service.hpp"
#include "util/timer.hpp"

namespace {

using namespace svo;

constexpr std::size_t kGsps = 8;
constexpr std::size_t kTasks = 24;
constexpr std::size_t kPool = 6;
constexpr std::size_t kShards = 4;
constexpr std::uint32_t kRetryBudget = 3;
/// Every kDeadlineStride-th request carries deadline_seconds = 0 and
/// deterministically expires at first dispatch.
constexpr std::size_t kDeadlineStride = 8;

std::uint64_t request_seed(std::uint64_t root, std::size_t i) {
  return root ^ (0x9E3779B97F4A7C15ULL * (i + 1));
}

svc::ChaosProfile soak_profile() {
  svc::ChaosProfile profile;
  profile.solver_fault_rate = 0.15;  // transient: clears within budget
  profile.fault_attempts = 1;
  profile.poison_rate = 0.05;        // burns the budget to Failed
  profile.abort_rate = 0.05;         // kills + restarts the shard
  profile.stall_rate = 0.05;         // straggler ticks
  profile.stall_seconds = 0.0002;
  return profile;
}

struct ChaosRun {
  double elapsed_s = 0.0;
  double requests_per_sec = 0.0;
  std::uint64_t requests_lost = 0;
  svc::ServiceStats stats;
  std::vector<svc::RequestOutcome> outcomes;
};

/// Push `requests` through a faulted service and drain. Deadline-0
/// requests expire; poisoned requests fail; everything else completes.
ChaosRun run_chaos(const core::VoFormationMechanism& mechanism,
                   const std::vector<sim::Scenario>& pool,
                   std::size_t requests, std::uint64_t seed,
                   const svc::FaultPlan& plan, std::size_t queue_capacity,
                   svc::OverloadPolicy overload) {
  svc::ServiceOptions opt;
  opt.shards = kShards;
  opt.threads = kShards;
  opt.queue_capacity = queue_capacity;
  opt.batch_size = 8;
  opt.overload = overload;
  opt.retry_backoff_base_seconds = 0.0001;
  opt.retry_backoff_cap_seconds = 0.001;
  opt.faults = plan;

  ChaosRun run;
  svc::FormationService service(mechanism, opt);
  std::vector<svc::RequestHandle> handles;
  handles.reserve(requests);
  const util::WallTimer timer;
  for (std::size_t i = 0; i < requests; ++i) {
    const sim::Scenario& s = pool[i % pool.size()];
    util::Xoshiro256 rng(request_seed(seed, i));
    core::FormationRequest req{s.instance.assignment, s.trust, rng};
    req.max_retries = kRetryBudget;
    if (i % kDeadlineStride == kDeadlineStride - 1) req.deadline_seconds = 0.0;
    handles.push_back(service.submit(req));
  }
  service.drain();
  run.elapsed_s = timer.seconds();
  run.requests_per_sec =
      run.elapsed_s > 0.0 ? static_cast<double>(requests) / run.elapsed_s : 0.0;
  run.stats = service.stats();
  run.outcomes.reserve(requests);
  for (const svc::RequestHandle& h : handles) {
    if (!h.done()) ++run.requests_lost;  // the invariant is zero, always
    h.wait();
    run.outcomes.push_back(h.outcome());
  }
  // Conservation: every admitted ticket must land in exactly one bucket.
  const std::uint64_t resolved = run.stats.completed + run.stats.failed +
                                 run.stats.expired + run.stats.cancelled;
  if (run.stats.submitted != resolved) {
    run.requests_lost += run.stats.submitted - resolved;
  }
  return run;
}

bool outcomes_identical(const svc::RequestOutcome& a,
                        const svc::RequestOutcome& b) {
  return a.ticket == b.ticket && a.shard == b.shard && a.state == b.state &&
         a.attempts == b.attempts && a.rng_probe == b.rng_probe &&
         a.error == b.error &&
         a.result.selected.bits() == b.result.selected.bits() &&
         a.result.cost == b.result.cost && a.result.value == b.result.value;
}

/// Empty plan, default scheduling fields, single shard: the chaos-capable
/// service must still reproduce direct runs bit for bit (the PR 7
/// equivalence point, RNG probe included).
bool faults_off_matches_direct(const core::VoFormationMechanism& mechanism,
                               const std::vector<sim::Scenario>& pool,
                               std::size_t requests, std::uint64_t seed) {
  svc::ServiceOptions opt;
  opt.queue_capacity = requests;
  svc::FormationService service(mechanism, opt);
  std::vector<svc::RequestHandle> handles;
  handles.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const sim::Scenario& s = pool[i % pool.size()];
    util::Xoshiro256 rng(request_seed(seed, i));
    handles.push_back(service.submit(
        core::FormationRequest{s.instance.assignment, s.trust, rng}));
  }
  service.drain();
  for (std::size_t i = 0; i < requests; ++i) {
    const sim::Scenario& s = pool[i % pool.size()];
    util::Xoshiro256 rng(request_seed(seed, i));
    const core::MechanismResult direct = mechanism.run(
        core::FormationRequest{s.instance.assignment, s.trust, rng});
    handles[i].wait();
    const svc::RequestOutcome& out = handles[i].outcome();
    if (out.state != svc::TicketState::Done) return false;
    if (out.attempts != 1) return false;
    if (out.rng_probe != rng()) return false;
    if (direct.selected.bits() != out.result.selected.bits()) return false;
    if (direct.mapping != out.result.mapping) return false;
    if (direct.cost != out.result.cost) return false;
    if (direct.journal.size() != out.result.journal.size()) return false;
  }
  return true;
}

}  // namespace

int main() {
  const bench::Session session(
      "Extension",
      "chaos-hardened formation service: seeded fault injection, "
      "deadline-aware retries, and overload soak");

  const std::uint64_t seed = util::env_u64_or("SVO_SEED", 20120910);
  const std::size_t requests =
      util::env_positive_size_or("SVO_SERVICE_REQUESTS", 96);

  sim::ExperimentConfig cfg;
  cfg.seed = seed;
  cfg.gen.params.num_gsps = kGsps;
  cfg.task_sizes = {kTasks};
  cfg.trace.num_jobs = 4000;
  cfg.trace.canonical_sizes = {kTasks};
  cfg.trace.min_jobs_per_canonical_size = kPool;
  const sim::ScenarioFactory factory(cfg);
  std::vector<sim::Scenario> pool;
  pool.reserve(kPool);
  for (std::size_t rep = 0; rep < kPool; ++rep) {
    pool.push_back(factory.make(kTasks, rep));
  }

  ip::BnbOptions solver_opts;
  solver_opts.max_nodes = 2000;
  const ip::BnbAssignmentSolver solver(solver_opts);
  const core::TvofMechanism tvof(solver);

  const svc::FaultPlan plan =
      svc::random_fault_plan(seed ^ 0xC4A05ULL, requests, soak_profile());

  // Soak: the full burst against a capacity-matched queue (admission
  // never sheds; the chaos is all in-flight), run twice for the replay
  // gate.
  const ChaosRun soak = run_chaos(tvof, pool, requests, seed, plan, requests,
                                  svc::OverloadPolicy::Shed);
  std::fprintf(stderr,
               "  soak: %5.1f req/s  queue p99 %9.0f us  retries %llu  "
               "expired %llu  failed %llu  restarts %llu  (%.3fs)\n",
               soak.requests_per_sec, soak.stats.queue_p99_us,
               static_cast<unsigned long long>(soak.stats.retries),
               static_cast<unsigned long long>(soak.stats.expired),
               static_cast<unsigned long long>(soak.stats.failed),
               static_cast<unsigned long long>(soak.stats.restarts),
               soak.elapsed_s);
  const ChaosRun replay = run_chaos(tvof, pool, requests, seed, plan, requests,
                                    svc::OverloadPolicy::Shed);
  bool replay_identical = soak.outcomes.size() == replay.outcomes.size();
  for (std::size_t i = 0; replay_identical && i < soak.outcomes.size(); ++i) {
    replay_identical = outcomes_identical(soak.outcomes[i], replay.outcomes[i]);
  }

  // Overload: the same chaos against a queue a quarter of the burst,
  // shedding beyond capacity — p99 under shed pressure (informational;
  // shed counts depend on drain speed and are machine-bound).
  const ChaosRun overload =
      run_chaos(tvof, pool, requests, seed, plan,
                std::max<std::size_t>(8, requests / 4),
                svc::OverloadPolicy::Shed);

  const bool faults_off_identical =
      faults_off_matches_direct(tvof, pool, requests, seed);

  // Retry outcomes: every ticket that needed >1 attempt was struck by
  // the plan; the transient ones recover, the poisoned ones exhaust the
  // budget. Both sets are plan-determined.
  std::uint64_t retried = 0;
  std::uint64_t retried_ok = 0;
  for (const svc::RequestOutcome& out : soak.outcomes) {
    if (out.attempts <= 1) continue;
    ++retried;
    if (out.state == svc::TicketState::Done) ++retried_ok;
  }
  const double retry_success_rate =
      retried > 0 ? static_cast<double>(retried_ok) / retried : 1.0;

  // Run 0 = capacity-matched soak, run 1 = quarter-capacity overload.
  util::Table table({"run", "req/s", "queue p99 us", "retries", "expired",
                     "failed", "restarts", "lost"});
  table.set_precision(1);
  const auto row = [&](double index, const ChaosRun& run) {
    table.add_row({index, run.requests_per_sec, run.stats.queue_p99_us,
                   static_cast<double>(run.stats.retries),
                   static_cast<double>(run.stats.expired),
                   static_cast<double>(run.stats.failed),
                   static_cast<double>(run.stats.restarts),
                   static_cast<double>(run.requests_lost)});
  };
  row(0, soak);
  row(1, overload);
  bench::emit(table, "service_chaos.csv");

  bench::Report report("service_chaos");
  obs::JsonWriter& j = report.json();
  j.kv("experiment", "service_chaos_soak");
  j.kv("gsps", kGsps);
  j.kv("tasks", kTasks);
  j.kv("instance_pool", static_cast<double>(kPool));
  j.kv("requests", static_cast<double>(requests));
  j.kv("seed", static_cast<double>(seed));
  j.kv("shards", static_cast<double>(kShards));
  j.kv("retry_budget", static_cast<double>(kRetryBudget));
  j.kv("solver_faults_planned", static_cast<double>(plan.solver_faults.size()));
  j.kv("tick_faults_planned", static_cast<double>(plan.tick_faults.size()));
  j.key("soak").begin_object();
  j.kv("requests_per_sec", soak.requests_per_sec);
  j.kv("queue_p99_us", soak.stats.queue_p99_us);
  j.kv("solve_p99_us", soak.stats.solve_p99_us);
  j.kv("elapsed_seconds", soak.elapsed_s);
  j.kv("completed", static_cast<double>(soak.stats.completed));
  j.kv("failed", static_cast<double>(soak.stats.failed));
  j.kv("ticks", static_cast<double>(soak.stats.ticks));
  j.kv("tick_aborts", static_cast<double>(soak.stats.tick_aborts));
  j.kv("stalls", static_cast<double>(soak.stats.stalls));
  j.kv("redelivery_max", soak.stats.redelivery_max);
  j.end_object();
  j.key("overload").begin_object();
  j.kv("queue_capacity", static_cast<double>(std::max<std::size_t>(
                             8, requests / 4)));
  j.kv("queue_p99_us", overload.stats.queue_p99_us);
  j.kv("shed", static_cast<double>(overload.stats.shed));
  j.kv("completed", static_cast<double>(overload.stats.completed));
  j.end_object();
  j.key("aggregate").begin_object();
  j.kv("requests_lost", static_cast<double>(soak.requests_lost +
                                            overload.requests_lost));
  j.kv("replay_identical", replay_identical);
  j.kv("faults_off_identical", faults_off_identical);
  j.kv("retry_success_rate", retry_success_rate);
  j.kv("retries", static_cast<double>(soak.stats.retries));
  j.kv("expired_requests", static_cast<double>(soak.stats.expired));
  j.kv("restarts", static_cast<double>(soak.stats.restarts));
  j.end_object();
  report.write();

  const bool ok = soak.requests_lost == 0 && overload.requests_lost == 0 &&
                  replay_identical && faults_off_identical;
  std::printf(
      "\nacceptance: zero lost requests: %s; same-seed chaotic replay "
      "identical: %s; faults-off bit-identical to direct runs: %s; retry "
      "success rate %.3f (%llu retried tickets); %llu expired on deadline, "
      "%llu shard restarts\n"
      "\ninterpretation: %zu requests soak a %zu-shard service under a "
      "seeded fault plan (transient solver failures, queue poison, shard "
      "kills, stragglers) plus deterministic deadline expiry on every %zuth "
      "request. Faults are keyed by ticket id, so the retry / expiry / "
      "restart counts and retry_success_rate are plan-determined and gate "
      "exactly in tools/bench_diff; queue p99s under chaos and under "
      "quarter-capacity shed are wall clock and informational.\n",
      soak.requests_lost + overload.requests_lost == 0 ? "yes" : "NO",
      replay_identical ? "yes" : "NO", faults_off_identical ? "yes" : "NO",
      retry_success_rate, static_cast<unsigned long long>(retried),
      static_cast<unsigned long long>(soak.stats.expired),
      static_cast<unsigned long long>(soak.stats.restarts), requests, kShards,
      kDeadlineStride);
  return ok ? 0 : 1;
}
