/// \file bench_micro_reputation.cpp
/// Microbenchmarks of the reputation engine (Algorithm 2): power-method
/// cost vs graph size, trust density, convergence threshold, and the
/// serial vs pooled mat-vec path.
#include <benchmark/benchmark.h>

#include <cmath>

#include "trust/reputation.hpp"

namespace {

using namespace svo;

trust::TrustGraph make_graph(std::size_t m, double p, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  return trust::random_trust_graph(m, p, rng);
}

void BM_ReputationVsSize(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const trust::TrustGraph g = make_graph(m, 0.1, 42);
  const trust::ReputationEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute(g));
  }
  state.counters["gsps"] = static_cast<double>(m);
}
BENCHMARK(BM_ReputationVsSize)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ReputationVsDensity(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  const trust::TrustGraph g = make_graph(64, p, 43);
  const trust::ReputationEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute(g));
  }
  state.counters["p"] = p;
}
BENCHMARK(BM_ReputationVsDensity)->Arg(5)->Arg(10)->Arg(40)->Arg(100);

void BM_ReputationVsEpsilon(benchmark::State& state) {
  const trust::TrustGraph g = make_graph(64, 0.1, 44);
  trust::ReputationOptions opts;
  opts.power.epsilon = std::pow(10.0, -static_cast<double>(state.range(0)));
  const trust::ReputationEngine engine(opts);
  std::size_t iterations = 0;
  for (auto _ : state) {
    const trust::ReputationResult r = engine.compute(g);
    iterations = r.iterations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["power_iters"] = static_cast<double>(iterations);
}
BENCHMARK(BM_ReputationVsEpsilon)->Arg(3)->Arg(6)->Arg(9)->Arg(12);

void BM_ReputationCoalitionSubgraph(benchmark::State& state) {
  // Cost of scoring a shrinking coalition, the TVOF inner-loop pattern.
  const trust::TrustGraph g = make_graph(16, 0.1, 45);
  const trust::ReputationEngine engine;
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::size_t> members(size);
  for (std::size_t i = 0; i < size; ++i) members[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute(g, members));
  }
}
BENCHMARK(BM_ReputationCoalitionSubgraph)->Arg(4)->Arg(8)->Arg(16);

void BM_PowerMethodParallelMatvec(benchmark::State& state) {
  const trust::TrustGraph g = make_graph(1024, 0.05, 46);
  trust::ReputationOptions opts;
  opts.power.threads = static_cast<std::size_t>(state.range(0));
  const trust::ReputationEngine engine(opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.compute(g));
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PowerMethodParallelMatvec)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
