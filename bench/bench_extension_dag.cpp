/// \file bench_extension_dag.cpp
/// Extension (the paper's future work): VO formation for programs with
/// task dependencies. Compares the cost-aware HEFT placement against
/// classic HEFT on random layered workflows, and runs TVOF end-to-end
/// with the DAG solver plugged in through the standard interface.
#include "bench/common.hpp"
#include "core/tvof.hpp"
#include "ip/dag.hpp"
#include "workload/instance_gen.hpp"

namespace {

/// Random layered DAG: `layers` layers of `width` tasks, each task
/// depending on 1-3 random tasks of the previous layer.
svo::ip::TaskDag layered_dag(std::size_t layers, std::size_t width,
                             svo::util::Xoshiro256& rng) {
  svo::ip::TaskDag dag(layers * width);
  for (std::size_t l = 1; l < layers; ++l) {
    for (std::size_t a = 0; a < width; ++a) {
      const std::size_t succ = l * width + a;
      const std::size_t deps = 1 + rng.index(3);
      for (std::size_t d = 0; d < deps; ++d) {
        dag.add_dependency((l - 1) * width + rng.index(width), succ);
      }
    }
  }
  return dag;
}

}  // namespace

int main() {
  using namespace svo;
  const bench::Session session("Extension", "task dependencies (paper future work)");

  util::Xoshiro256 rng(1357);
  workload::InstanceGenOptions gopts;
  gopts.params.num_gsps = 12;

  util::Table table({"layers x width", "CP lower bound", "classic makespan",
                     "classic cost", "cost-aware makespan",
                     "cost-aware cost", "cost saving %"});
  table.set_precision(1);

  for (const auto& [layers, width] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {4, 16}, {8, 16}, {8, 32}, {16, 32}}) {
    const ip::TaskDag dag = layered_dag(layers, width, rng);
    trace::ProgramSpec program;
    program.num_tasks = layers * width;
    program.mean_task_runtime = 3.0 * 3600.0;
    workload::GridInstance grid =
        workload::generate_instance(program, gopts, rng);
    grid.assignment.deadline *= static_cast<double>(layers);

    const ip::DagSolverAdapter classic(dag, {/*cost_aware=*/false});
    const ip::DagSolverAdapter cost_aware(dag, {/*cost_aware=*/true});
    const ip::DagSchedule sc = classic.schedule(grid.assignment);
    const ip::DagSchedule sa = cost_aware.schedule(grid.assignment);
    const double saving = sc.cost > 0.0
                              ? 100.0 * (sc.cost - sa.cost) / sc.cost
                              : 0.0;
    char label[32];
    std::snprintf(label, sizeof(label), "%zu x %zu", layers, width);
    table.add_row({std::string(label),
                   dag.critical_path_lower_bound(grid.assignment.time),
                   sc.makespan, sc.cost, sa.makespan, sa.cost, saving});
  }
  bench::emit(table, "extension_dag_scheduler.csv");

  // End-to-end: TVOF over a workflow program.
  const ip::TaskDag dag = layered_dag(6, 24, rng);
  trace::ProgramSpec program;
  program.num_tasks = 6 * 24;
  program.mean_task_runtime = 3.0 * 3600.0;
  workload::GridInstance grid =
      workload::generate_instance(program, gopts, rng);
  // Generous slack: the pipeline serializes its 6 layers, and constraint
  // (13) forces every member to take work.
  grid.assignment.deadline *= 18.0;
  const trust::TrustGraph trust =
      trust::random_trust_graph(12, 0.2, rng);
  const ip::DagSolverAdapter solver(dag);
  const core::TvofMechanism tvof(solver);
  const core::MechanismResult r = tvof.run(core::FormationRequest{grid.assignment, trust, rng});
  if (r.success) {
    std::printf("\nTVOF on the 6x24 workflow: VO of %zu/12 GSPs, "
                "payoff/member %.2f, avg reputation %.4f, %zu iterations\n",
                r.selected.size(), r.payoff_share, r.avg_global_reputation,
                r.journal.size());
  } else {
    std::printf("\nTVOF on the 6x24 workflow: no feasible VO\n");
  }
  std::printf("interpretation: cost-aware placement exploits schedule "
              "slack (deadline minus critical path) to buy cheaper GSPs "
              "at equal feasibility; classic HEFT minimizes makespan it "
              "does not need.\n");
  return 0;
}
