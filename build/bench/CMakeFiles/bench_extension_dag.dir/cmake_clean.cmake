file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_dag.dir/bench_extension_dag.cpp.o"
  "CMakeFiles/bench_extension_dag.dir/bench_extension_dag.cpp.o.d"
  "bench_extension_dag"
  "bench_extension_dag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
