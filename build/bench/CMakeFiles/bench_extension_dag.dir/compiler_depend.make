# Empty compiler generated dependencies file for bench_extension_dag.
# This may be replaced when dependencies are built.
