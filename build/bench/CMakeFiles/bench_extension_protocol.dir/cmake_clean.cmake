file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_protocol.dir/bench_extension_protocol.cpp.o"
  "CMakeFiles/bench_extension_protocol.dir/bench_extension_protocol.cpp.o.d"
  "bench_extension_protocol"
  "bench_extension_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
