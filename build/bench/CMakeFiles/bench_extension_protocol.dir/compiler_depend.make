# Empty compiler generated dependencies file for bench_extension_protocol.
# This may be replaced when dependencies are built.
