# Empty compiler generated dependencies file for bench_extension_multi_program.
# This may be replaced when dependencies are built.
