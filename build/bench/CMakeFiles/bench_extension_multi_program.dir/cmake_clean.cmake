file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_multi_program.dir/bench_extension_multi_program.cpp.o"
  "CMakeFiles/bench_extension_multi_program.dir/bench_extension_multi_program.cpp.o.d"
  "bench_extension_multi_program"
  "bench_extension_multi_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_multi_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
