file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_params.dir/bench_table1_params.cpp.o"
  "CMakeFiles/bench_table1_params.dir/bench_table1_params.cpp.o.d"
  "bench_table1_params"
  "bench_table1_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
