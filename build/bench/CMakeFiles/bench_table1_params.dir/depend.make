# Empty dependencies file for bench_table1_params.
# This may be replaced when dependencies are built.
