file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_payoff_division.dir/bench_ablation_payoff_division.cpp.o"
  "CMakeFiles/bench_ablation_payoff_division.dir/bench_ablation_payoff_division.cpp.o.d"
  "bench_ablation_payoff_division"
  "bench_ablation_payoff_division.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_payoff_division.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
