# Empty compiler generated dependencies file for bench_ablation_payoff_division.
# This may be replaced when dependencies are built.
