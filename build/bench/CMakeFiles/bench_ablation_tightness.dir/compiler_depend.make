# Empty compiler generated dependencies file for bench_ablation_tightness.
# This may be replaced when dependencies are built.
