file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tightness.dir/bench_ablation_tightness.cpp.o"
  "CMakeFiles/bench_ablation_tightness.dir/bench_ablation_tightness.cpp.o.d"
  "bench_ablation_tightness"
  "bench_ablation_tightness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
