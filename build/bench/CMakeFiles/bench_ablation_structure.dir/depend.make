# Empty dependencies file for bench_ablation_structure.
# This may be replaced when dependencies are built.
