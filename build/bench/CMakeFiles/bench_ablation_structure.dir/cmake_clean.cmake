file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_structure.dir/bench_ablation_structure.cpp.o"
  "CMakeFiles/bench_ablation_structure.dir/bench_ablation_structure.cpp.o.d"
  "bench_ablation_structure"
  "bench_ablation_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
