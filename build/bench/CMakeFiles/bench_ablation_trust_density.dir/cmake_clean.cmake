file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trust_density.dir/bench_ablation_trust_density.cpp.o"
  "CMakeFiles/bench_ablation_trust_density.dir/bench_ablation_trust_density.cpp.o.d"
  "bench_ablation_trust_density"
  "bench_ablation_trust_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trust_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
