# Empty compiler generated dependencies file for bench_ablation_trust_density.
# This may be replaced when dependencies are built.
