# Empty dependencies file for bench_fig56_tvof_iterations.
# This may be replaced when dependencies are built.
