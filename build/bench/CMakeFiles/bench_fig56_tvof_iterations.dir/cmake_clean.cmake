file(REMOVE_RECURSE
  "CMakeFiles/bench_fig56_tvof_iterations.dir/bench_fig56_tvof_iterations.cpp.o"
  "CMakeFiles/bench_fig56_tvof_iterations.dir/bench_fig56_tvof_iterations.cpp.o.d"
  "bench_fig56_tvof_iterations"
  "bench_fig56_tvof_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig56_tvof_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
