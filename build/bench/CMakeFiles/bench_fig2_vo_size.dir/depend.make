# Empty dependencies file for bench_fig2_vo_size.
# This may be replaced when dependencies are built.
