# Empty dependencies file for bench_ablation_merge_split.
# This may be replaced when dependencies are built.
