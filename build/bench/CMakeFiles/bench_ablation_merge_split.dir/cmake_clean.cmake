file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_merge_split.dir/bench_ablation_merge_split.cpp.o"
  "CMakeFiles/bench_ablation_merge_split.dir/bench_ablation_merge_split.cpp.o.d"
  "bench_ablation_merge_split"
  "bench_ablation_merge_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_merge_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
