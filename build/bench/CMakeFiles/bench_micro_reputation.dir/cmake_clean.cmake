file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_reputation.dir/bench_micro_reputation.cpp.o"
  "CMakeFiles/bench_micro_reputation.dir/bench_micro_reputation.cpp.o.d"
  "bench_micro_reputation"
  "bench_micro_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
