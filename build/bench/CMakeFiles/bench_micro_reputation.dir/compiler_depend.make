# Empty compiler generated dependencies file for bench_micro_reputation.
# This may be replaced when dependencies are built.
