# Empty compiler generated dependencies file for bench_extension_reliability.
# This may be replaced when dependencies are built.
