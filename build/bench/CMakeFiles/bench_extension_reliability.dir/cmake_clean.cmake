file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_reliability.dir/bench_extension_reliability.cpp.o"
  "CMakeFiles/bench_extension_reliability.dir/bench_extension_reliability.cpp.o.d"
  "bench_extension_reliability"
  "bench_extension_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
