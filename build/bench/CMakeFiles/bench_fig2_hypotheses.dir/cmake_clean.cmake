file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hypotheses.dir/bench_fig2_hypotheses.cpp.o"
  "CMakeFiles/bench_fig2_hypotheses.dir/bench_fig2_hypotheses.cpp.o.d"
  "bench_fig2_hypotheses"
  "bench_fig2_hypotheses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hypotheses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
