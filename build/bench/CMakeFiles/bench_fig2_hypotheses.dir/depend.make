# Empty dependencies file for bench_fig2_hypotheses.
# This may be replaced when dependencies are built.
