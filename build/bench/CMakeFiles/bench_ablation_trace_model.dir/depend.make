# Empty dependencies file for bench_ablation_trace_model.
# This may be replaced when dependencies are built.
