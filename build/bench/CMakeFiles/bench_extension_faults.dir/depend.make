# Empty dependencies file for bench_extension_faults.
# This may be replaced when dependencies are built.
