file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_faults.dir/bench_extension_faults.cpp.o"
  "CMakeFiles/bench_extension_faults.dir/bench_extension_faults.cpp.o.d"
  "bench_extension_faults"
  "bench_extension_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
