
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_extension_faults.cpp" "bench/CMakeFiles/bench_extension_faults.dir/bench_extension_faults.cpp.o" "gcc" "bench/CMakeFiles/bench_extension_faults.dir/bench_extension_faults.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/svo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/svo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/svo_game.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/svo_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/svo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/svo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/svo_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/svo_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/svo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/svo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/svo_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
