# Empty compiler generated dependencies file for bench_fig78_rvof_iterations.
# This may be replaced when dependencies are built.
