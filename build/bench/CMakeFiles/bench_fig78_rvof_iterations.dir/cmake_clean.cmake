file(REMOVE_RECURSE
  "CMakeFiles/bench_fig78_rvof_iterations.dir/bench_fig78_rvof_iterations.cpp.o"
  "CMakeFiles/bench_fig78_rvof_iterations.dir/bench_fig78_rvof_iterations.cpp.o.d"
  "bench_fig78_rvof_iterations"
  "bench_fig78_rvof_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig78_rvof_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
