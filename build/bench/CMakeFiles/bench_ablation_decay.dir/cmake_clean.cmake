file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decay.dir/bench_ablation_decay.cpp.o"
  "CMakeFiles/bench_ablation_decay.dir/bench_ablation_decay.cpp.o.d"
  "bench_ablation_decay"
  "bench_ablation_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
