# Empty dependencies file for bench_fig1_payoff.
# This may be replaced when dependencies are built.
