file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_payoff.dir/bench_fig1_payoff.cpp.o"
  "CMakeFiles/bench_fig1_payoff.dir/bench_fig1_payoff.cpp.o.d"
  "bench_fig1_payoff"
  "bench_fig1_payoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_payoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
