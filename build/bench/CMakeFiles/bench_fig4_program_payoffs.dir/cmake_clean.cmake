file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_program_payoffs.dir/bench_fig4_program_payoffs.cpp.o"
  "CMakeFiles/bench_fig4_program_payoffs.dir/bench_fig4_program_payoffs.cpp.o.d"
  "bench_fig4_program_payoffs"
  "bench_fig4_program_payoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_program_payoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
