# Empty compiler generated dependencies file for bench_fig4_program_payoffs.
# This may be replaced when dependencies are built.
