# Empty dependencies file for bench_fig3_reputation.
# This may be replaced when dependencies are built.
