file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_reputation.dir/bench_fig3_reputation.cpp.o"
  "CMakeFiles/bench_fig3_reputation.dir/bench_fig3_reputation.cpp.o.d"
  "bench_fig3_reputation"
  "bench_fig3_reputation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
