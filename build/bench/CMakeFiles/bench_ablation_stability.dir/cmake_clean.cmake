file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stability.dir/bench_ablation_stability.cpp.o"
  "CMakeFiles/bench_ablation_stability.dir/bench_ablation_stability.cpp.o.d"
  "bench_ablation_stability"
  "bench_ablation_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
