# Empty dependencies file for bench_ablation_stability.
# This may be replaced when dependencies are built.
