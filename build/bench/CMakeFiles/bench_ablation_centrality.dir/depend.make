# Empty dependencies file for bench_ablation_centrality.
# This may be replaced when dependencies are built.
