file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_centrality.dir/bench_ablation_centrality.cpp.o"
  "CMakeFiles/bench_ablation_centrality.dir/bench_ablation_centrality.cpp.o.d"
  "bench_ablation_centrality"
  "bench_ablation_centrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
