file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_propagation.dir/bench_ablation_propagation.cpp.o"
  "CMakeFiles/bench_ablation_propagation.dir/bench_ablation_propagation.cpp.o.d"
  "bench_ablation_propagation"
  "bench_ablation_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
