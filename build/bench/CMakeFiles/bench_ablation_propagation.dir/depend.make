# Empty dependencies file for bench_ablation_propagation.
# This may be replaced when dependencies are built.
