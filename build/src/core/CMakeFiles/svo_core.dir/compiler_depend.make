# Empty compiler generated dependencies file for svo_core.
# This may be replaced when dependencies are built.
