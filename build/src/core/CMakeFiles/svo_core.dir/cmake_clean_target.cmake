file(REMOVE_RECURSE
  "libsvo_core.a"
)
