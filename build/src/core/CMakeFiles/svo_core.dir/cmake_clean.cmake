file(REMOVE_RECURSE
  "CMakeFiles/svo_core.dir/centrality_vof.cpp.o"
  "CMakeFiles/svo_core.dir/centrality_vof.cpp.o.d"
  "CMakeFiles/svo_core.dir/distributed_tvof.cpp.o"
  "CMakeFiles/svo_core.dir/distributed_tvof.cpp.o.d"
  "CMakeFiles/svo_core.dir/mechanism.cpp.o"
  "CMakeFiles/svo_core.dir/mechanism.cpp.o.d"
  "CMakeFiles/svo_core.dir/merge_split.cpp.o"
  "CMakeFiles/svo_core.dir/merge_split.cpp.o.d"
  "CMakeFiles/svo_core.dir/rvof.cpp.o"
  "CMakeFiles/svo_core.dir/rvof.cpp.o.d"
  "CMakeFiles/svo_core.dir/tvof.cpp.o"
  "CMakeFiles/svo_core.dir/tvof.cpp.o.d"
  "libsvo_core.a"
  "libsvo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
