
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/centrality_vof.cpp" "src/core/CMakeFiles/svo_core.dir/centrality_vof.cpp.o" "gcc" "src/core/CMakeFiles/svo_core.dir/centrality_vof.cpp.o.d"
  "/root/repo/src/core/distributed_tvof.cpp" "src/core/CMakeFiles/svo_core.dir/distributed_tvof.cpp.o" "gcc" "src/core/CMakeFiles/svo_core.dir/distributed_tvof.cpp.o.d"
  "/root/repo/src/core/mechanism.cpp" "src/core/CMakeFiles/svo_core.dir/mechanism.cpp.o" "gcc" "src/core/CMakeFiles/svo_core.dir/mechanism.cpp.o.d"
  "/root/repo/src/core/merge_split.cpp" "src/core/CMakeFiles/svo_core.dir/merge_split.cpp.o" "gcc" "src/core/CMakeFiles/svo_core.dir/merge_split.cpp.o.d"
  "/root/repo/src/core/rvof.cpp" "src/core/CMakeFiles/svo_core.dir/rvof.cpp.o" "gcc" "src/core/CMakeFiles/svo_core.dir/rvof.cpp.o.d"
  "/root/repo/src/core/tvof.cpp" "src/core/CMakeFiles/svo_core.dir/tvof.cpp.o" "gcc" "src/core/CMakeFiles/svo_core.dir/tvof.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/game/CMakeFiles/svo_game.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/svo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/svo_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/svo_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/svo_des.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/svo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/svo_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
