# Empty dependencies file for svo_util.
# This may be replaced when dependencies are built.
