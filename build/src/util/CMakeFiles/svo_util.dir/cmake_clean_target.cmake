file(REMOVE_RECURSE
  "libsvo_util.a"
)
