file(REMOVE_RECURSE
  "CMakeFiles/svo_util.dir/csv.cpp.o"
  "CMakeFiles/svo_util.dir/csv.cpp.o.d"
  "CMakeFiles/svo_util.dir/histogram.cpp.o"
  "CMakeFiles/svo_util.dir/histogram.cpp.o.d"
  "CMakeFiles/svo_util.dir/rng.cpp.o"
  "CMakeFiles/svo_util.dir/rng.cpp.o.d"
  "CMakeFiles/svo_util.dir/stats.cpp.o"
  "CMakeFiles/svo_util.dir/stats.cpp.o.d"
  "CMakeFiles/svo_util.dir/thread_pool.cpp.o"
  "CMakeFiles/svo_util.dir/thread_pool.cpp.o.d"
  "libsvo_util.a"
  "libsvo_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
