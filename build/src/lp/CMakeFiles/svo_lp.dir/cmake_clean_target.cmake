file(REMOVE_RECURSE
  "libsvo_lp.a"
)
