file(REMOVE_RECURSE
  "CMakeFiles/svo_lp.dir/problem.cpp.o"
  "CMakeFiles/svo_lp.dir/problem.cpp.o.d"
  "CMakeFiles/svo_lp.dir/simplex.cpp.o"
  "CMakeFiles/svo_lp.dir/simplex.cpp.o.d"
  "libsvo_lp.a"
  "libsvo_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
