# Empty dependencies file for svo_lp.
# This may be replaced when dependencies are built.
