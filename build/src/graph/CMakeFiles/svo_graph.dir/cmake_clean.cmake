file(REMOVE_RECURSE
  "CMakeFiles/svo_graph.dir/centrality.cpp.o"
  "CMakeFiles/svo_graph.dir/centrality.cpp.o.d"
  "CMakeFiles/svo_graph.dir/digraph.cpp.o"
  "CMakeFiles/svo_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/svo_graph.dir/generators.cpp.o"
  "CMakeFiles/svo_graph.dir/generators.cpp.o.d"
  "CMakeFiles/svo_graph.dir/scc.cpp.o"
  "CMakeFiles/svo_graph.dir/scc.cpp.o.d"
  "libsvo_graph.a"
  "libsvo_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
