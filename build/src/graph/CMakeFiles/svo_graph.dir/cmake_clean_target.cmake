file(REMOVE_RECURSE
  "libsvo_graph.a"
)
