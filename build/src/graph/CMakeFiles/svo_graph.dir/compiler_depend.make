# Empty compiler generated dependencies file for svo_graph.
# This may be replaced when dependencies are built.
