# Empty compiler generated dependencies file for svo_trace.
# This may be replaced when dependencies are built.
