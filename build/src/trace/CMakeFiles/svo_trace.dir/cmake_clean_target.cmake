file(REMOVE_RECURSE
  "libsvo_trace.a"
)
