file(REMOVE_RECURSE
  "CMakeFiles/svo_trace.dir/atlas_synth.cpp.o"
  "CMakeFiles/svo_trace.dir/atlas_synth.cpp.o.d"
  "CMakeFiles/svo_trace.dir/lublin.cpp.o"
  "CMakeFiles/svo_trace.dir/lublin.cpp.o.d"
  "CMakeFiles/svo_trace.dir/programs.cpp.o"
  "CMakeFiles/svo_trace.dir/programs.cpp.o.d"
  "CMakeFiles/svo_trace.dir/swf.cpp.o"
  "CMakeFiles/svo_trace.dir/swf.cpp.o.d"
  "libsvo_trace.a"
  "libsvo_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
