
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/atlas_synth.cpp" "src/trace/CMakeFiles/svo_trace.dir/atlas_synth.cpp.o" "gcc" "src/trace/CMakeFiles/svo_trace.dir/atlas_synth.cpp.o.d"
  "/root/repo/src/trace/lublin.cpp" "src/trace/CMakeFiles/svo_trace.dir/lublin.cpp.o" "gcc" "src/trace/CMakeFiles/svo_trace.dir/lublin.cpp.o.d"
  "/root/repo/src/trace/programs.cpp" "src/trace/CMakeFiles/svo_trace.dir/programs.cpp.o" "gcc" "src/trace/CMakeFiles/svo_trace.dir/programs.cpp.o.d"
  "/root/repo/src/trace/swf.cpp" "src/trace/CMakeFiles/svo_trace.dir/swf.cpp.o" "gcc" "src/trace/CMakeFiles/svo_trace.dir/swf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/svo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
