# Empty dependencies file for svo_ip.
# This may be replaced when dependencies are built.
