file(REMOVE_RECURSE
  "libsvo_ip.a"
)
