file(REMOVE_RECURSE
  "CMakeFiles/svo_ip.dir/annealing.cpp.o"
  "CMakeFiles/svo_ip.dir/annealing.cpp.o.d"
  "CMakeFiles/svo_ip.dir/assignment.cpp.o"
  "CMakeFiles/svo_ip.dir/assignment.cpp.o.d"
  "CMakeFiles/svo_ip.dir/bnb.cpp.o"
  "CMakeFiles/svo_ip.dir/bnb.cpp.o.d"
  "CMakeFiles/svo_ip.dir/dag.cpp.o"
  "CMakeFiles/svo_ip.dir/dag.cpp.o.d"
  "CMakeFiles/svo_ip.dir/greedy.cpp.o"
  "CMakeFiles/svo_ip.dir/greedy.cpp.o.d"
  "CMakeFiles/svo_ip.dir/local_search.cpp.o"
  "CMakeFiles/svo_ip.dir/local_search.cpp.o.d"
  "CMakeFiles/svo_ip.dir/lp_bnb.cpp.o"
  "CMakeFiles/svo_ip.dir/lp_bnb.cpp.o.d"
  "libsvo_ip.a"
  "libsvo_ip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_ip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
