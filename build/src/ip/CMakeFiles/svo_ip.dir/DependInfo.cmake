
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ip/annealing.cpp" "src/ip/CMakeFiles/svo_ip.dir/annealing.cpp.o" "gcc" "src/ip/CMakeFiles/svo_ip.dir/annealing.cpp.o.d"
  "/root/repo/src/ip/assignment.cpp" "src/ip/CMakeFiles/svo_ip.dir/assignment.cpp.o" "gcc" "src/ip/CMakeFiles/svo_ip.dir/assignment.cpp.o.d"
  "/root/repo/src/ip/bnb.cpp" "src/ip/CMakeFiles/svo_ip.dir/bnb.cpp.o" "gcc" "src/ip/CMakeFiles/svo_ip.dir/bnb.cpp.o.d"
  "/root/repo/src/ip/dag.cpp" "src/ip/CMakeFiles/svo_ip.dir/dag.cpp.o" "gcc" "src/ip/CMakeFiles/svo_ip.dir/dag.cpp.o.d"
  "/root/repo/src/ip/greedy.cpp" "src/ip/CMakeFiles/svo_ip.dir/greedy.cpp.o" "gcc" "src/ip/CMakeFiles/svo_ip.dir/greedy.cpp.o.d"
  "/root/repo/src/ip/local_search.cpp" "src/ip/CMakeFiles/svo_ip.dir/local_search.cpp.o" "gcc" "src/ip/CMakeFiles/svo_ip.dir/local_search.cpp.o.d"
  "/root/repo/src/ip/lp_bnb.cpp" "src/ip/CMakeFiles/svo_ip.dir/lp_bnb.cpp.o" "gcc" "src/ip/CMakeFiles/svo_ip.dir/lp_bnb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/svo_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/svo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
