# Empty dependencies file for svo_workload.
# This may be replaced when dependencies are built.
