file(REMOVE_RECURSE
  "CMakeFiles/svo_workload.dir/braun.cpp.o"
  "CMakeFiles/svo_workload.dir/braun.cpp.o.d"
  "CMakeFiles/svo_workload.dir/etc.cpp.o"
  "CMakeFiles/svo_workload.dir/etc.cpp.o.d"
  "CMakeFiles/svo_workload.dir/instance_gen.cpp.o"
  "CMakeFiles/svo_workload.dir/instance_gen.cpp.o.d"
  "libsvo_workload.a"
  "libsvo_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
