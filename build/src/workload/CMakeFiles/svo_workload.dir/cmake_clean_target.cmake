file(REMOVE_RECURSE
  "libsvo_workload.a"
)
