
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/braun.cpp" "src/workload/CMakeFiles/svo_workload.dir/braun.cpp.o" "gcc" "src/workload/CMakeFiles/svo_workload.dir/braun.cpp.o.d"
  "/root/repo/src/workload/etc.cpp" "src/workload/CMakeFiles/svo_workload.dir/etc.cpp.o" "gcc" "src/workload/CMakeFiles/svo_workload.dir/etc.cpp.o.d"
  "/root/repo/src/workload/instance_gen.cpp" "src/workload/CMakeFiles/svo_workload.dir/instance_gen.cpp.o" "gcc" "src/workload/CMakeFiles/svo_workload.dir/instance_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/svo_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/svo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/svo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/svo_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
