file(REMOVE_RECURSE
  "libsvo_linalg.a"
)
