# Empty compiler generated dependencies file for svo_linalg.
# This may be replaced when dependencies are built.
