file(REMOVE_RECURSE
  "CMakeFiles/svo_linalg.dir/matrix.cpp.o"
  "CMakeFiles/svo_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/svo_linalg.dir/power_method.cpp.o"
  "CMakeFiles/svo_linalg.dir/power_method.cpp.o.d"
  "CMakeFiles/svo_linalg.dir/spectral.cpp.o"
  "CMakeFiles/svo_linalg.dir/spectral.cpp.o.d"
  "libsvo_linalg.a"
  "libsvo_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
