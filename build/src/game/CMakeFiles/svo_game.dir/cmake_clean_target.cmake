file(REMOVE_RECURSE
  "libsvo_game.a"
)
