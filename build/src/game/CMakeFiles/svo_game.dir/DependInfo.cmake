
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/core_solution.cpp" "src/game/CMakeFiles/svo_game.dir/core_solution.cpp.o" "gcc" "src/game/CMakeFiles/svo_game.dir/core_solution.cpp.o.d"
  "/root/repo/src/game/pareto.cpp" "src/game/CMakeFiles/svo_game.dir/pareto.cpp.o" "gcc" "src/game/CMakeFiles/svo_game.dir/pareto.cpp.o.d"
  "/root/repo/src/game/payoff.cpp" "src/game/CMakeFiles/svo_game.dir/payoff.cpp.o" "gcc" "src/game/CMakeFiles/svo_game.dir/payoff.cpp.o.d"
  "/root/repo/src/game/sampling.cpp" "src/game/CMakeFiles/svo_game.dir/sampling.cpp.o" "gcc" "src/game/CMakeFiles/svo_game.dir/sampling.cpp.o.d"
  "/root/repo/src/game/stability.cpp" "src/game/CMakeFiles/svo_game.dir/stability.cpp.o" "gcc" "src/game/CMakeFiles/svo_game.dir/stability.cpp.o.d"
  "/root/repo/src/game/structure.cpp" "src/game/CMakeFiles/svo_game.dir/structure.cpp.o" "gcc" "src/game/CMakeFiles/svo_game.dir/structure.cpp.o.d"
  "/root/repo/src/game/value_function.cpp" "src/game/CMakeFiles/svo_game.dir/value_function.cpp.o" "gcc" "src/game/CMakeFiles/svo_game.dir/value_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ip/CMakeFiles/svo_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/svo_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/svo_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/svo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/svo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
