# Empty dependencies file for svo_game.
# This may be replaced when dependencies are built.
