file(REMOVE_RECURSE
  "CMakeFiles/svo_game.dir/core_solution.cpp.o"
  "CMakeFiles/svo_game.dir/core_solution.cpp.o.d"
  "CMakeFiles/svo_game.dir/pareto.cpp.o"
  "CMakeFiles/svo_game.dir/pareto.cpp.o.d"
  "CMakeFiles/svo_game.dir/payoff.cpp.o"
  "CMakeFiles/svo_game.dir/payoff.cpp.o.d"
  "CMakeFiles/svo_game.dir/sampling.cpp.o"
  "CMakeFiles/svo_game.dir/sampling.cpp.o.d"
  "CMakeFiles/svo_game.dir/stability.cpp.o"
  "CMakeFiles/svo_game.dir/stability.cpp.o.d"
  "CMakeFiles/svo_game.dir/structure.cpp.o"
  "CMakeFiles/svo_game.dir/structure.cpp.o.d"
  "CMakeFiles/svo_game.dir/value_function.cpp.o"
  "CMakeFiles/svo_game.dir/value_function.cpp.o.d"
  "libsvo_game.a"
  "libsvo_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
