file(REMOVE_RECURSE
  "libsvo_sim.a"
)
