# Empty dependencies file for svo_sim.
# This may be replaced when dependencies are built.
