file(REMOVE_RECURSE
  "CMakeFiles/svo_sim.dir/execution.cpp.o"
  "CMakeFiles/svo_sim.dir/execution.cpp.o.d"
  "CMakeFiles/svo_sim.dir/learning.cpp.o"
  "CMakeFiles/svo_sim.dir/learning.cpp.o.d"
  "CMakeFiles/svo_sim.dir/multi_program.cpp.o"
  "CMakeFiles/svo_sim.dir/multi_program.cpp.o.d"
  "CMakeFiles/svo_sim.dir/runner.cpp.o"
  "CMakeFiles/svo_sim.dir/runner.cpp.o.d"
  "CMakeFiles/svo_sim.dir/scenario.cpp.o"
  "CMakeFiles/svo_sim.dir/scenario.cpp.o.d"
  "libsvo_sim.a"
  "libsvo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
