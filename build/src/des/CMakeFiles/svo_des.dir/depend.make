# Empty dependencies file for svo_des.
# This may be replaced when dependencies are built.
