file(REMOVE_RECURSE
  "libsvo_des.a"
)
