file(REMOVE_RECURSE
  "CMakeFiles/svo_des.dir/event_queue.cpp.o"
  "CMakeFiles/svo_des.dir/event_queue.cpp.o.d"
  "CMakeFiles/svo_des.dir/fault.cpp.o"
  "CMakeFiles/svo_des.dir/fault.cpp.o.d"
  "CMakeFiles/svo_des.dir/network.cpp.o"
  "CMakeFiles/svo_des.dir/network.cpp.o.d"
  "libsvo_des.a"
  "libsvo_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
