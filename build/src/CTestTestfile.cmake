# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("linalg")
subdirs("graph")
subdirs("lp")
subdirs("des")
subdirs("ip")
subdirs("trace")
subdirs("workload")
subdirs("trust")
subdirs("game")
subdirs("core")
subdirs("sim")
