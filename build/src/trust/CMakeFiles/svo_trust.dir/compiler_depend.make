# Empty compiler generated dependencies file for svo_trust.
# This may be replaced when dependencies are built.
