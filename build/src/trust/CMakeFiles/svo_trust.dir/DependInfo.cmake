
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trust/beta.cpp" "src/trust/CMakeFiles/svo_trust.dir/beta.cpp.o" "gcc" "src/trust/CMakeFiles/svo_trust.dir/beta.cpp.o.d"
  "/root/repo/src/trust/decay.cpp" "src/trust/CMakeFiles/svo_trust.dir/decay.cpp.o" "gcc" "src/trust/CMakeFiles/svo_trust.dir/decay.cpp.o.d"
  "/root/repo/src/trust/hierarchy.cpp" "src/trust/CMakeFiles/svo_trust.dir/hierarchy.cpp.o" "gcc" "src/trust/CMakeFiles/svo_trust.dir/hierarchy.cpp.o.d"
  "/root/repo/src/trust/propagation.cpp" "src/trust/CMakeFiles/svo_trust.dir/propagation.cpp.o" "gcc" "src/trust/CMakeFiles/svo_trust.dir/propagation.cpp.o.d"
  "/root/repo/src/trust/reputation.cpp" "src/trust/CMakeFiles/svo_trust.dir/reputation.cpp.o" "gcc" "src/trust/CMakeFiles/svo_trust.dir/reputation.cpp.o.d"
  "/root/repo/src/trust/trust_graph.cpp" "src/trust/CMakeFiles/svo_trust.dir/trust_graph.cpp.o" "gcc" "src/trust/CMakeFiles/svo_trust.dir/trust_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/svo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/svo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svo_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
