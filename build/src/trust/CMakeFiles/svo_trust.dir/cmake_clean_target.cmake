file(REMOVE_RECURSE
  "libsvo_trust.a"
)
