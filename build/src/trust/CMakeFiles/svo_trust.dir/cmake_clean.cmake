file(REMOVE_RECURSE
  "CMakeFiles/svo_trust.dir/beta.cpp.o"
  "CMakeFiles/svo_trust.dir/beta.cpp.o.d"
  "CMakeFiles/svo_trust.dir/decay.cpp.o"
  "CMakeFiles/svo_trust.dir/decay.cpp.o.d"
  "CMakeFiles/svo_trust.dir/hierarchy.cpp.o"
  "CMakeFiles/svo_trust.dir/hierarchy.cpp.o.d"
  "CMakeFiles/svo_trust.dir/propagation.cpp.o"
  "CMakeFiles/svo_trust.dir/propagation.cpp.o.d"
  "CMakeFiles/svo_trust.dir/reputation.cpp.o"
  "CMakeFiles/svo_trust.dir/reputation.cpp.o.d"
  "CMakeFiles/svo_trust.dir/trust_graph.cpp.o"
  "CMakeFiles/svo_trust.dir/trust_graph.cpp.o.d"
  "libsvo_trust.a"
  "libsvo_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
