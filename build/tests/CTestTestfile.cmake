# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/svo_util_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_linalg_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_graph_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_lp_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_des_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_ip_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_trace_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_workload_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_trust_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_game_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_core_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_integration_tests[1]_include.cmake")
include("/root/repo/build/tests/svo_sim_tests[1]_include.cmake")
