file(REMOVE_RECURSE
  "CMakeFiles/svo_workload_tests.dir/workload/braun_test.cpp.o"
  "CMakeFiles/svo_workload_tests.dir/workload/braun_test.cpp.o.d"
  "CMakeFiles/svo_workload_tests.dir/workload/etc_test.cpp.o"
  "CMakeFiles/svo_workload_tests.dir/workload/etc_test.cpp.o.d"
  "CMakeFiles/svo_workload_tests.dir/workload/instance_gen_test.cpp.o"
  "CMakeFiles/svo_workload_tests.dir/workload/instance_gen_test.cpp.o.d"
  "svo_workload_tests"
  "svo_workload_tests.pdb"
  "svo_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
