# Empty dependencies file for svo_workload_tests.
# This may be replaced when dependencies are built.
