# Empty compiler generated dependencies file for svo_graph_tests.
# This may be replaced when dependencies are built.
