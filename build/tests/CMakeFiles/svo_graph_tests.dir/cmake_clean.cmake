file(REMOVE_RECURSE
  "CMakeFiles/svo_graph_tests.dir/graph/centrality_test.cpp.o"
  "CMakeFiles/svo_graph_tests.dir/graph/centrality_test.cpp.o.d"
  "CMakeFiles/svo_graph_tests.dir/graph/digraph_test.cpp.o"
  "CMakeFiles/svo_graph_tests.dir/graph/digraph_test.cpp.o.d"
  "CMakeFiles/svo_graph_tests.dir/graph/generators_test.cpp.o"
  "CMakeFiles/svo_graph_tests.dir/graph/generators_test.cpp.o.d"
  "CMakeFiles/svo_graph_tests.dir/graph/scc_test.cpp.o"
  "CMakeFiles/svo_graph_tests.dir/graph/scc_test.cpp.o.d"
  "svo_graph_tests"
  "svo_graph_tests.pdb"
  "svo_graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
