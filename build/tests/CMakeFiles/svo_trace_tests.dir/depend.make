# Empty dependencies file for svo_trace_tests.
# This may be replaced when dependencies are built.
