file(REMOVE_RECURSE
  "CMakeFiles/svo_trace_tests.dir/trace/atlas_synth_test.cpp.o"
  "CMakeFiles/svo_trace_tests.dir/trace/atlas_synth_test.cpp.o.d"
  "CMakeFiles/svo_trace_tests.dir/trace/fuzz_test.cpp.o"
  "CMakeFiles/svo_trace_tests.dir/trace/fuzz_test.cpp.o.d"
  "CMakeFiles/svo_trace_tests.dir/trace/lublin_test.cpp.o"
  "CMakeFiles/svo_trace_tests.dir/trace/lublin_test.cpp.o.d"
  "CMakeFiles/svo_trace_tests.dir/trace/programs_test.cpp.o"
  "CMakeFiles/svo_trace_tests.dir/trace/programs_test.cpp.o.d"
  "CMakeFiles/svo_trace_tests.dir/trace/swf_test.cpp.o"
  "CMakeFiles/svo_trace_tests.dir/trace/swf_test.cpp.o.d"
  "svo_trace_tests"
  "svo_trace_tests.pdb"
  "svo_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
