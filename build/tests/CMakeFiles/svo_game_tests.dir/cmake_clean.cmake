file(REMOVE_RECURSE
  "CMakeFiles/svo_game_tests.dir/game/coalition_test.cpp.o"
  "CMakeFiles/svo_game_tests.dir/game/coalition_test.cpp.o.d"
  "CMakeFiles/svo_game_tests.dir/game/core_solution_test.cpp.o"
  "CMakeFiles/svo_game_tests.dir/game/core_solution_test.cpp.o.d"
  "CMakeFiles/svo_game_tests.dir/game/pareto_test.cpp.o"
  "CMakeFiles/svo_game_tests.dir/game/pareto_test.cpp.o.d"
  "CMakeFiles/svo_game_tests.dir/game/payoff_test.cpp.o"
  "CMakeFiles/svo_game_tests.dir/game/payoff_test.cpp.o.d"
  "CMakeFiles/svo_game_tests.dir/game/sampling_test.cpp.o"
  "CMakeFiles/svo_game_tests.dir/game/sampling_test.cpp.o.d"
  "CMakeFiles/svo_game_tests.dir/game/stability_test.cpp.o"
  "CMakeFiles/svo_game_tests.dir/game/stability_test.cpp.o.d"
  "CMakeFiles/svo_game_tests.dir/game/structure_test.cpp.o"
  "CMakeFiles/svo_game_tests.dir/game/structure_test.cpp.o.d"
  "CMakeFiles/svo_game_tests.dir/game/value_function_test.cpp.o"
  "CMakeFiles/svo_game_tests.dir/game/value_function_test.cpp.o.d"
  "CMakeFiles/svo_game_tests.dir/game/vo_game_properties_test.cpp.o"
  "CMakeFiles/svo_game_tests.dir/game/vo_game_properties_test.cpp.o.d"
  "svo_game_tests"
  "svo_game_tests.pdb"
  "svo_game_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_game_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
