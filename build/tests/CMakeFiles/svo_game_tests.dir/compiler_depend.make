# Empty compiler generated dependencies file for svo_game_tests.
# This may be replaced when dependencies are built.
