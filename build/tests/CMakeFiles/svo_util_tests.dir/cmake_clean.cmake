file(REMOVE_RECURSE
  "CMakeFiles/svo_util_tests.dir/util/csv_test.cpp.o"
  "CMakeFiles/svo_util_tests.dir/util/csv_test.cpp.o.d"
  "CMakeFiles/svo_util_tests.dir/util/gamma_test.cpp.o"
  "CMakeFiles/svo_util_tests.dir/util/gamma_test.cpp.o.d"
  "CMakeFiles/svo_util_tests.dir/util/histogram_test.cpp.o"
  "CMakeFiles/svo_util_tests.dir/util/histogram_test.cpp.o.d"
  "CMakeFiles/svo_util_tests.dir/util/rng_test.cpp.o"
  "CMakeFiles/svo_util_tests.dir/util/rng_test.cpp.o.d"
  "CMakeFiles/svo_util_tests.dir/util/stats_test.cpp.o"
  "CMakeFiles/svo_util_tests.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/svo_util_tests.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/svo_util_tests.dir/util/thread_pool_test.cpp.o.d"
  "svo_util_tests"
  "svo_util_tests.pdb"
  "svo_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
