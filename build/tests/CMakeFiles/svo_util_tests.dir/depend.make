# Empty dependencies file for svo_util_tests.
# This may be replaced when dependencies are built.
