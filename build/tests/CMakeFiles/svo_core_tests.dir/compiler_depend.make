# Empty compiler generated dependencies file for svo_core_tests.
# This may be replaced when dependencies are built.
