file(REMOVE_RECURSE
  "CMakeFiles/svo_core_tests.dir/core/centrality_vof_test.cpp.o"
  "CMakeFiles/svo_core_tests.dir/core/centrality_vof_test.cpp.o.d"
  "CMakeFiles/svo_core_tests.dir/core/distributed_fault_test.cpp.o"
  "CMakeFiles/svo_core_tests.dir/core/distributed_fault_test.cpp.o.d"
  "CMakeFiles/svo_core_tests.dir/core/distributed_test.cpp.o"
  "CMakeFiles/svo_core_tests.dir/core/distributed_test.cpp.o.d"
  "CMakeFiles/svo_core_tests.dir/core/mechanism_test.cpp.o"
  "CMakeFiles/svo_core_tests.dir/core/mechanism_test.cpp.o.d"
  "CMakeFiles/svo_core_tests.dir/core/merge_split_test.cpp.o"
  "CMakeFiles/svo_core_tests.dir/core/merge_split_test.cpp.o.d"
  "CMakeFiles/svo_core_tests.dir/core/risk_aware_test.cpp.o"
  "CMakeFiles/svo_core_tests.dir/core/risk_aware_test.cpp.o.d"
  "CMakeFiles/svo_core_tests.dir/core/theorems_test.cpp.o"
  "CMakeFiles/svo_core_tests.dir/core/theorems_test.cpp.o.d"
  "svo_core_tests"
  "svo_core_tests.pdb"
  "svo_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
