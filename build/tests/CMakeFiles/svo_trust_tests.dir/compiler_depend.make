# Empty compiler generated dependencies file for svo_trust_tests.
# This may be replaced when dependencies are built.
