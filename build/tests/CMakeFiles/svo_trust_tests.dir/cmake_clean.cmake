file(REMOVE_RECURSE
  "CMakeFiles/svo_trust_tests.dir/trust/beta_test.cpp.o"
  "CMakeFiles/svo_trust_tests.dir/trust/beta_test.cpp.o.d"
  "CMakeFiles/svo_trust_tests.dir/trust/decay_test.cpp.o"
  "CMakeFiles/svo_trust_tests.dir/trust/decay_test.cpp.o.d"
  "CMakeFiles/svo_trust_tests.dir/trust/hierarchy_test.cpp.o"
  "CMakeFiles/svo_trust_tests.dir/trust/hierarchy_test.cpp.o.d"
  "CMakeFiles/svo_trust_tests.dir/trust/propagation_test.cpp.o"
  "CMakeFiles/svo_trust_tests.dir/trust/propagation_test.cpp.o.d"
  "CMakeFiles/svo_trust_tests.dir/trust/reputation_test.cpp.o"
  "CMakeFiles/svo_trust_tests.dir/trust/reputation_test.cpp.o.d"
  "CMakeFiles/svo_trust_tests.dir/trust/trust_graph_test.cpp.o"
  "CMakeFiles/svo_trust_tests.dir/trust/trust_graph_test.cpp.o.d"
  "svo_trust_tests"
  "svo_trust_tests.pdb"
  "svo_trust_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_trust_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
