file(REMOVE_RECURSE
  "CMakeFiles/svo_integration_tests.dir/integration/full_stack_test.cpp.o"
  "CMakeFiles/svo_integration_tests.dir/integration/full_stack_test.cpp.o.d"
  "CMakeFiles/svo_integration_tests.dir/integration/umbrella_test.cpp.o"
  "CMakeFiles/svo_integration_tests.dir/integration/umbrella_test.cpp.o.d"
  "svo_integration_tests"
  "svo_integration_tests.pdb"
  "svo_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
