# Empty dependencies file for svo_integration_tests.
# This may be replaced when dependencies are built.
