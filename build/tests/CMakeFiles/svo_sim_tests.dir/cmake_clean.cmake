file(REMOVE_RECURSE
  "CMakeFiles/svo_sim_tests.dir/sim/execution_test.cpp.o"
  "CMakeFiles/svo_sim_tests.dir/sim/execution_test.cpp.o.d"
  "CMakeFiles/svo_sim_tests.dir/sim/learning_test.cpp.o"
  "CMakeFiles/svo_sim_tests.dir/sim/learning_test.cpp.o.d"
  "CMakeFiles/svo_sim_tests.dir/sim/multi_program_test.cpp.o"
  "CMakeFiles/svo_sim_tests.dir/sim/multi_program_test.cpp.o.d"
  "CMakeFiles/svo_sim_tests.dir/sim/repair_test.cpp.o"
  "CMakeFiles/svo_sim_tests.dir/sim/repair_test.cpp.o.d"
  "CMakeFiles/svo_sim_tests.dir/sim/runner_test.cpp.o"
  "CMakeFiles/svo_sim_tests.dir/sim/runner_test.cpp.o.d"
  "CMakeFiles/svo_sim_tests.dir/sim/scenario_test.cpp.o"
  "CMakeFiles/svo_sim_tests.dir/sim/scenario_test.cpp.o.d"
  "svo_sim_tests"
  "svo_sim_tests.pdb"
  "svo_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
