# Empty dependencies file for svo_sim_tests.
# This may be replaced when dependencies are built.
