
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/execution_test.cpp" "tests/CMakeFiles/svo_sim_tests.dir/sim/execution_test.cpp.o" "gcc" "tests/CMakeFiles/svo_sim_tests.dir/sim/execution_test.cpp.o.d"
  "/root/repo/tests/sim/learning_test.cpp" "tests/CMakeFiles/svo_sim_tests.dir/sim/learning_test.cpp.o" "gcc" "tests/CMakeFiles/svo_sim_tests.dir/sim/learning_test.cpp.o.d"
  "/root/repo/tests/sim/multi_program_test.cpp" "tests/CMakeFiles/svo_sim_tests.dir/sim/multi_program_test.cpp.o" "gcc" "tests/CMakeFiles/svo_sim_tests.dir/sim/multi_program_test.cpp.o.d"
  "/root/repo/tests/sim/repair_test.cpp" "tests/CMakeFiles/svo_sim_tests.dir/sim/repair_test.cpp.o" "gcc" "tests/CMakeFiles/svo_sim_tests.dir/sim/repair_test.cpp.o.d"
  "/root/repo/tests/sim/runner_test.cpp" "tests/CMakeFiles/svo_sim_tests.dir/sim/runner_test.cpp.o" "gcc" "tests/CMakeFiles/svo_sim_tests.dir/sim/runner_test.cpp.o.d"
  "/root/repo/tests/sim/scenario_test.cpp" "tests/CMakeFiles/svo_sim_tests.dir/sim/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/svo_sim_tests.dir/sim/scenario_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/svo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/svo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/svo_game.dir/DependInfo.cmake"
  "/root/repo/build/src/trust/CMakeFiles/svo_trust.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/svo_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/svo_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/ip/CMakeFiles/svo_ip.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/svo_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/svo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/svo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/svo_util.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/svo_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
