# Empty dependencies file for svo_linalg_tests.
# This may be replaced when dependencies are built.
