file(REMOVE_RECURSE
  "CMakeFiles/svo_linalg_tests.dir/linalg/matrix_test.cpp.o"
  "CMakeFiles/svo_linalg_tests.dir/linalg/matrix_test.cpp.o.d"
  "CMakeFiles/svo_linalg_tests.dir/linalg/power_method_test.cpp.o"
  "CMakeFiles/svo_linalg_tests.dir/linalg/power_method_test.cpp.o.d"
  "CMakeFiles/svo_linalg_tests.dir/linalg/spectral_test.cpp.o"
  "CMakeFiles/svo_linalg_tests.dir/linalg/spectral_test.cpp.o.d"
  "svo_linalg_tests"
  "svo_linalg_tests.pdb"
  "svo_linalg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_linalg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
