file(REMOVE_RECURSE
  "CMakeFiles/svo_lp_tests.dir/lp/simplex_edge_test.cpp.o"
  "CMakeFiles/svo_lp_tests.dir/lp/simplex_edge_test.cpp.o.d"
  "CMakeFiles/svo_lp_tests.dir/lp/simplex_test.cpp.o"
  "CMakeFiles/svo_lp_tests.dir/lp/simplex_test.cpp.o.d"
  "svo_lp_tests"
  "svo_lp_tests.pdb"
  "svo_lp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_lp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
