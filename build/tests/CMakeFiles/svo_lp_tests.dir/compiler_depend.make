# Empty compiler generated dependencies file for svo_lp_tests.
# This may be replaced when dependencies are built.
