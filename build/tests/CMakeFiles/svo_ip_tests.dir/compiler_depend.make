# Empty compiler generated dependencies file for svo_ip_tests.
# This may be replaced when dependencies are built.
