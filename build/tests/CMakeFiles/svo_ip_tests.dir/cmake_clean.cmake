file(REMOVE_RECURSE
  "CMakeFiles/svo_ip_tests.dir/ip/annealing_test.cpp.o"
  "CMakeFiles/svo_ip_tests.dir/ip/annealing_test.cpp.o.d"
  "CMakeFiles/svo_ip_tests.dir/ip/assignment_test.cpp.o"
  "CMakeFiles/svo_ip_tests.dir/ip/assignment_test.cpp.o.d"
  "CMakeFiles/svo_ip_tests.dir/ip/bnb_no_coverage_test.cpp.o"
  "CMakeFiles/svo_ip_tests.dir/ip/bnb_no_coverage_test.cpp.o.d"
  "CMakeFiles/svo_ip_tests.dir/ip/bnb_test.cpp.o"
  "CMakeFiles/svo_ip_tests.dir/ip/bnb_test.cpp.o.d"
  "CMakeFiles/svo_ip_tests.dir/ip/dag_test.cpp.o"
  "CMakeFiles/svo_ip_tests.dir/ip/dag_test.cpp.o.d"
  "CMakeFiles/svo_ip_tests.dir/ip/greedy_test.cpp.o"
  "CMakeFiles/svo_ip_tests.dir/ip/greedy_test.cpp.o.d"
  "CMakeFiles/svo_ip_tests.dir/ip/local_search_test.cpp.o"
  "CMakeFiles/svo_ip_tests.dir/ip/local_search_test.cpp.o.d"
  "CMakeFiles/svo_ip_tests.dir/ip/lp_bnb_test.cpp.o"
  "CMakeFiles/svo_ip_tests.dir/ip/lp_bnb_test.cpp.o.d"
  "svo_ip_tests"
  "svo_ip_tests.pdb"
  "svo_ip_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_ip_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
