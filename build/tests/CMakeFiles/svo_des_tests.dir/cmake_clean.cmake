file(REMOVE_RECURSE
  "CMakeFiles/svo_des_tests.dir/des/event_queue_test.cpp.o"
  "CMakeFiles/svo_des_tests.dir/des/event_queue_test.cpp.o.d"
  "CMakeFiles/svo_des_tests.dir/des/fault_test.cpp.o"
  "CMakeFiles/svo_des_tests.dir/des/fault_test.cpp.o.d"
  "CMakeFiles/svo_des_tests.dir/des/network_test.cpp.o"
  "CMakeFiles/svo_des_tests.dir/des/network_test.cpp.o.d"
  "svo_des_tests"
  "svo_des_tests.pdb"
  "svo_des_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_des_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
