# Empty dependencies file for svo_des_tests.
# This may be replaced when dependencies are built.
