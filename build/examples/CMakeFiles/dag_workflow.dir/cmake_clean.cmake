file(REMOVE_RECURSE
  "CMakeFiles/dag_workflow.dir/dag_workflow.cpp.o"
  "CMakeFiles/dag_workflow.dir/dag_workflow.cpp.o.d"
  "dag_workflow"
  "dag_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
