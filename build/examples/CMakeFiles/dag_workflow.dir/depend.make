# Empty dependencies file for dag_workflow.
# This may be replaced when dependencies are built.
