# Empty compiler generated dependencies file for reputation_dynamics.
# This may be replaced when dependencies are built.
