file(REMOVE_RECURSE
  "CMakeFiles/reputation_dynamics.dir/reputation_dynamics.cpp.o"
  "CMakeFiles/reputation_dynamics.dir/reputation_dynamics.cpp.o.d"
  "reputation_dynamics"
  "reputation_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reputation_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
