file(REMOVE_RECURSE
  "CMakeFiles/trace_driven_vo.dir/trace_driven_vo.cpp.o"
  "CMakeFiles/trace_driven_vo.dir/trace_driven_vo.cpp.o.d"
  "trace_driven_vo"
  "trace_driven_vo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_driven_vo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
