# Empty dependencies file for trace_driven_vo.
# This may be replaced when dependencies are built.
