file(REMOVE_RECURSE
  "CMakeFiles/svo_cli.dir/svo_cli.cpp.o"
  "CMakeFiles/svo_cli.dir/svo_cli.cpp.o.d"
  "svo_cli"
  "svo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
