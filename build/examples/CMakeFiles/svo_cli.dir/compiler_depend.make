# Empty compiler generated dependencies file for svo_cli.
# This may be replaced when dependencies are built.
