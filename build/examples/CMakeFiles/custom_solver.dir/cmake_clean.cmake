file(REMOVE_RECURSE
  "CMakeFiles/custom_solver.dir/custom_solver.cpp.o"
  "CMakeFiles/custom_solver.dir/custom_solver.cpp.o.d"
  "custom_solver"
  "custom_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
