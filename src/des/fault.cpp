#include "des/fault.hpp"

#include <cmath>

namespace svo::des {

void FaultConfig::validate() const {
  detail::require(std::isfinite(drop_probability) && drop_probability >= 0.0 &&
                      drop_probability <= 1.0,
                  "FaultConfig: drop_probability must be in [0,1]");
  detail::require(std::isfinite(straggler_probability) &&
                      straggler_probability >= 0.0 &&
                      straggler_probability <= 1.0,
                  "FaultConfig: straggler_probability must be in [0,1]");
  detail::require(std::isfinite(straggler_multiplier) &&
                      straggler_multiplier >= 1.0,
                  "FaultConfig: straggler_multiplier must be >= 1");
  for (const CrashWindow& w : crashes) {
    detail::require(std::isfinite(w.begin) && w.begin >= 0.0,
                    "FaultConfig: crash window begin must be finite and >= 0");
    // end == +inf is a permanent crash; NaN and end < begin are rejected.
    detail::require(!std::isnan(w.end) && w.end >= w.begin,
                    "FaultConfig: crash window end must be >= begin");
  }
}

std::vector<CrashWindow> random_crash_windows(std::size_t nodes,
                                              double crash_probability,
                                              double horizon,
                                              double mean_outage,
                                              std::uint64_t seed) {
  detail::require(std::isfinite(crash_probability) &&
                      crash_probability >= 0.0 && crash_probability <= 1.0,
                  "random_crash_windows: probability must be in [0,1]");
  detail::require(std::isfinite(horizon) && horizon > 0.0,
                  "random_crash_windows: horizon must be positive");
  util::Xoshiro256 rng(seed);
  std::vector<CrashWindow> windows;
  for (std::size_t node = 0; node < nodes; ++node) {
    // Two draws per node regardless of outcome keeps schedules for
    // different probabilities aligned on the same seed.
    const bool crashes = rng.bernoulli(crash_probability);
    const double begin = rng.uniform(0.0, horizon);
    if (!crashes) continue;
    CrashWindow w;
    w.node = node;
    w.begin = begin;
    w.end = mean_outage > 0.0
                ? begin + rng.exponential(1.0 / mean_outage)
                : std::numeric_limits<double>::infinity();
    windows.push_back(w);
  }
  return windows;
}

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  config_.validate();
}

bool FaultInjector::is_down(std::size_t node, double t) const noexcept {
  for (const CrashWindow& w : config_.crashes) {
    if (w.node == node && t >= w.begin && t < w.end) return true;
  }
  return false;
}

FaultInjector::Fate FaultInjector::on_message(std::size_t from, std::size_t to,
                                              double now,
                                              double nominal_delay) {
  // Always consume both draws so the decision stream does not depend on
  // crash state or on which knobs are active.
  const bool straggles = rng_.bernoulli(config_.straggler_probability);
  const bool dropped = rng_.bernoulli(config_.drop_probability);

  Fate fate;
  fate.delay = straggles ? nominal_delay * config_.straggler_multiplier
                         : nominal_delay;
  if (is_down(from, now) || is_down(to, now + fate.delay)) {
    ++stats_.crash_drops;
    fate.delivered = false;
    return fate;
  }
  if (dropped) {
    ++stats_.link_drops;
    fate.delivered = false;
    return fate;
  }
  if (straggles) ++stats_.stragglers;
  return fate;
}

}  // namespace svo::des
