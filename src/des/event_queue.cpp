#include "des/event_queue.hpp"

#include <limits>
#include <utility>

namespace svo::des {

void Simulator::schedule(double delay, EventFn fn) {
  detail::require(delay >= 0.0, "Simulator::schedule: negative delay");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(double time, EventFn fn) {
  detail::require(time >= now_, "Simulator::schedule_at: time in the past");
  detail::require(static_cast<bool>(fn), "Simulator::schedule_at: empty event");
  queue_.push(Entry{time, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Copy out before pop: the handler may schedule new events.
  Entry e = queue_.top();
  queue_.pop();
  now_ = e.time;
  e.fn();
  return true;
}

std::size_t Simulator::run(double until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    (void)step();
    ++executed;
  }
  if (now_ < until && until != std::numeric_limits<double>::infinity()) {
    now_ = until;  // idle advance to the horizon (events beyond it wait)
  }
  return executed;
}

}  // namespace svo::des
