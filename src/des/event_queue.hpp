/// \file event_queue.hpp
/// Minimal discrete-event simulator. The paper's mechanism "is executed
/// by a trusted party that also facilitates the communication among
/// VOs/GSPs" (Section III-A) but never models that communication; the
/// des/ layer lets the repository quantify it (messages, bytes, wall
/// time under link latency) via core/distributed_tvof.
///
/// Events are closures ordered by (time, insertion sequence); ties in
/// time execute in scheduling order, so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <limits>
#include <functional>
#include <queue>
#include <vector>

#include "util/error.hpp"

namespace svo::des {

/// Closure executed at its scheduled time.
using EventFn = std::function<void()>;

/// Single-threaded discrete-event loop.
class Simulator {
 public:
  /// Current simulation time (seconds; starts at 0).
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule `fn` after `delay` seconds (>= 0) from now.
  void schedule(double delay, EventFn fn);

  /// Schedule `fn` at absolute time `time` (>= now()).
  void schedule_at(double time, EventFn fn);

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Run events until the queue is empty or simulated time would exceed
  /// `until`. Returns the number of events executed. Events scheduled
  /// during the run participate. Safe to call repeatedly.
  std::size_t run(double until = std::numeric_limits<double>::infinity());

  /// Execute exactly one event if available; returns whether one ran.
  bool step();

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among ties
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace svo::des
