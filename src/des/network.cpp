#include "des/network.hpp"

#include <cmath>

namespace svo::des {

void LatencyModel::validate() const {
  detail::require(std::isfinite(base_seconds) && base_seconds >= 0.0,
                  "LatencyModel: base_seconds must be finite and >= 0");
  detail::require(std::isfinite(bytes_per_second) && bytes_per_second >= 0.0,
                  "LatencyModel: bytes_per_second must be finite and >= 0");
  detail::require(std::isfinite(jitter) && jitter >= 0.0,
                  "LatencyModel: jitter must be finite and >= 0");
}

Network::Network(Simulator& sim, std::size_t nodes, LatencyModel latency,
                 std::uint64_t seed)
    : sim_(sim), handlers_(nodes), latency_(latency), rng_(seed) {
  detail::require(nodes > 0, "Network: need at least one node");
  latency_.validate();
}

void Network::set_handler(std::size_t node, Handler handler) {
  detail::require(node < handlers_.size(), "Network: node out of range");
  handlers_[node] = std::move(handler);
}

void Network::send(Message message) {
  detail::require(message.from < handlers_.size(),
                  "Network::send: `from` endpoint out of range");
  detail::require(message.to < handlers_.size(),
                  "Network::send: `to` endpoint out of range");
  ++messages_;
  bytes_ += message.bytes;
  double delay = latency_.sample(message.bytes, rng_);
  if (fault_ != nullptr) {
    const FaultInjector::Fate fate =
        fault_->on_message(message.from, message.to, sim_.now(), delay);
    if (!fate.delivered) return;  // lost; accounted in the injector stats
    delay = fate.delay;
  }
  sim_.schedule(delay, [this, msg = std::move(message)]() {
    detail::require(static_cast<bool>(handlers_[msg.to]),
                    "Network: message delivered to node without handler");
    handlers_[msg.to](msg);
  });
}

}  // namespace svo::des
