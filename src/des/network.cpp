#include "des/network.hpp"

#include <cmath>
#include <utility>

#include "obs/trace.hpp"

namespace svo::des {

void LatencyModel::validate() const {
  detail::require(std::isfinite(base_seconds) && base_seconds >= 0.0,
                  "LatencyModel: base_seconds must be finite and >= 0");
  detail::require(std::isfinite(bytes_per_second) && bytes_per_second >= 0.0,
                  "LatencyModel: bytes_per_second must be finite and >= 0");
  detail::require(std::isfinite(jitter) && jitter >= 0.0,
                  "LatencyModel: jitter must be finite and >= 0");
}

Network::Network(Simulator& sim, std::size_t nodes, LatencyModel latency,
                 std::uint64_t seed)
    : sim_(sim), handlers_(nodes), latency_(latency), rng_(seed) {
  detail::require(nodes > 0, "Network: need at least one node");
  latency_.validate();
}

void Network::set_handler(std::size_t node, Handler handler) {
  detail::require(node < handlers_.size(), "Network: node out of range");
  handlers_[node] = std::move(handler);
}

namespace {

/// Flow start / drop / deliver events share the message type as the
/// Chrome flow-binding name and carry the wire facts as args.
void fill_wire_args(obs::TraceEvent& ev, const Message& msg, double sim_now) {
  ev.args.emplace_back("from", static_cast<double>(msg.from));
  ev.args.emplace_back("to", static_cast<double>(msg.to));
  ev.args.emplace_back("bytes", static_cast<double>(msg.bytes));
  ev.args.emplace_back("sim_now_s", sim_now);
}

}  // namespace

void Network::send(Message message) {
  detail::require(message.from < handlers_.size(),
                  "Network::send: `from` endpoint out of range");
  detail::require(message.to < handlers_.size(),
                  "Network::send: `to` endpoint out of range");
  ++messages_;
  bytes_ += message.bytes;
  double delay = latency_.sample(message.bytes, rng_);
  bool delivered = true;
  if (fault_ != nullptr) {
    const FaultInjector::Fate fate =
        fault_->on_message(message.from, message.to, sim_.now(), delay);
    delivered = fate.delivered;
    if (delivered) delay = fate.delay;
  }

  // Causal flow: one id per message, allocated only while tracing.
  std::uint64_t flow_id = 0;
  obs::Recorder& rec = obs::Recorder::instance();
  if (rec.enabled()) {
    flow_id = rec.next_id();
    obs::TraceEvent ev;
    ev.name = message.type;
    ev.category = "net";
    ev.kind = obs::EventKind::FlowStart;
    ev.start_us = obs::now_micros();
    ev.id = flow_id;
    ev.parent = message.trace_parent != 0 ? message.trace_parent
                                          : rec.current_context();
    fill_wire_args(ev, message, sim_.now());
    rec.record(std::move(ev));
    if (!delivered) {
      obs::TraceEvent drop;
      drop.name = "net.drop";
      drop.category = "net";
      drop.kind = obs::EventKind::Instant;
      drop.start_us = obs::now_micros();
      drop.id = rec.next_id();
      drop.parent = flow_id;
      drop.sargs.emplace_back("type", message.type);
      fill_wire_args(drop, message, sim_.now());
      rec.record(std::move(drop));
    }
  }
  if (!delivered) return;  // lost; accounted in the injector stats

  sim_.schedule(delay, [this, msg = std::move(message), flow_id]() {
    detail::require(static_cast<bool>(handlers_[msg.to]),
                    "Network: message delivered to node without handler");
    obs::Recorder& r = obs::Recorder::instance();
    if (flow_id != 0 && r.enabled()) {
      // The deliver span parents on the flow, and — because it wraps
      // the handler — any message the handler sends in turn parents on
      // it: the chain send -> deliver -> next send is the causal DAG
      // obs::analysis walks for critical paths.
      obs::Span span("net.deliver", "net", flow_id);
      span.arg("type", msg.type.c_str());
      span.arg("from", static_cast<double>(msg.from));
      span.arg("to", static_cast<double>(msg.to));
      span.arg("sim_now_s", sim_.now());
      obs::TraceEvent fin;
      fin.name = msg.type;
      fin.category = "net";
      fin.kind = obs::EventKind::FlowEnd;
      fin.start_us = obs::now_micros();
      fin.id = flow_id;
      fin.args.emplace_back("sim_now_s", sim_.now());
      r.record(std::move(fin));
      handlers_[msg.to](msg);
    } else {
      handlers_[msg.to](msg);
    }
  });
}

}  // namespace svo::des
