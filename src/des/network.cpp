#include "des/network.hpp"

namespace svo::des {

Network::Network(Simulator& sim, std::size_t nodes, LatencyModel latency,
                 std::uint64_t seed)
    : sim_(sim), handlers_(nodes), latency_(latency), rng_(seed) {
  detail::require(nodes > 0, "Network: need at least one node");
  detail::require(latency.base_seconds >= 0.0 && latency.jitter >= 0.0 &&
                      latency.bytes_per_second >= 0.0,
                  "Network: negative latency parameters");
}

void Network::set_handler(std::size_t node, Handler handler) {
  detail::require(node < handlers_.size(), "Network: node out of range");
  handlers_[node] = std::move(handler);
}

void Network::send(Message message) {
  detail::require(message.from < handlers_.size() &&
                      message.to < handlers_.size(),
                  "Network::send: endpoint out of range");
  ++messages_;
  bytes_ += message.bytes;
  const double delay = latency_.sample(message.bytes, rng_);
  sim_.schedule(delay, [this, msg = std::move(message)]() {
    detail::require(static_cast<bool>(handlers_[msg.to]),
                    "Network: message delivered to node without handler");
    handlers_[msg.to](msg);
  });
}

}  // namespace svo::des
