/// \file fault.hpp
/// Deterministic fault injection for the des/ message layer. The paper's
/// premise is that providers fail ("a GSP agrees to provide some
/// resources, but it fails to deliver"); this module makes the *network
/// and node* failure modes explicit so the trusted-party protocol can be
/// stressed: per-message drops, per-node crash/recover windows, and
/// straggler latency multipliers. Every decision is drawn from the
/// injector's own seeded stream, so (a) runs are reproducible from the
/// seed and (b) the network's jitter stream is untouched — attaching an
/// injector with all knobs at zero leaves delivery times bit-identical.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::des {

/// One scheduled outage: the node neither sends nor receives for
/// simulated times in [begin, end). `end` may be +infinity (permanent
/// crash, the paper's defaulting provider).
struct CrashWindow {
  std::size_t node = 0;
  double begin = 0.0;
  double end = std::numeric_limits<double>::infinity();
};

/// Fault model of one experiment. All-zero defaults mean "no faults".
struct FaultConfig {
  /// Probability that any single message is lost in transit (iid).
  double drop_probability = 0.0;
  /// Probability that a message is a straggler (delivered, but late).
  double straggler_probability = 0.0;
  /// Latency scale applied to straggler messages (>= 1).
  double straggler_multiplier = 1.0;
  /// Node outage schedule (deterministic; see random_crash_windows).
  std::vector<CrashWindow> crashes;
  /// Seed of the injector's private decision stream.
  std::uint64_t seed = 0xFA117;

  /// True when any fault mechanism is configured.
  [[nodiscard]] bool enabled() const noexcept {
    return drop_probability > 0.0 || straggler_probability > 0.0 ||
           !crashes.empty();
  }

  /// Throws InvalidArgument on non-finite or out-of-range fields.
  void validate() const;
};

/// Derive a deterministic outage schedule: each node crashes with
/// probability `crash_probability` at a uniform time in [0, horizon);
/// the outage lasts Exp(mean_outage) seconds, or forever when
/// `mean_outage <= 0` (permanent crash). Deterministic in `seed`.
[[nodiscard]] std::vector<CrashWindow> random_crash_windows(
    std::size_t nodes, double crash_probability, double horizon,
    double mean_outage, std::uint64_t seed);

/// Injection accounting.
struct FaultStats {
  /// Messages lost to the iid drop draw.
  std::size_t link_drops = 0;
  /// Messages lost because an endpoint was down at send/delivery time.
  std::size_t crash_drops = 0;
  /// Messages delivered late through the straggler multiplier.
  std::size_t stragglers = 0;

  [[nodiscard]] std::size_t total_drops() const noexcept {
    return link_drops + crash_drops;
  }
};

/// Per-message fate oracle, consulted by Network::send. Consumes exactly
/// two RNG draws per message (straggler, then drop) regardless of the
/// configuration, so decision streams stay aligned across config
/// variants sharing a seed.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  struct Fate {
    /// False: the message vanishes (no delivery event is scheduled).
    bool delivered = true;
    /// Nominal latency scaled by the straggler multiplier when late.
    double delay = 0.0;
  };

  /// Decide the fate of one message sent at `now` with sampled nominal
  /// latency `nominal_delay`. Updates stats.
  [[nodiscard]] Fate on_message(std::size_t from, std::size_t to, double now,
                                double nominal_delay);

  /// Is `node` inside any of its outage windows at time `t`?
  [[nodiscard]] bool is_down(std::size_t node, double t) const noexcept;

  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

 private:
  FaultConfig config_;
  util::Xoshiro256 rng_;
  FaultStats stats_;
};

}  // namespace svo::des
