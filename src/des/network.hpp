/// \file network.hpp
/// Message-passing layer on top of the discrete-event simulator: nodes
/// exchange typed messages over links with a configurable latency model.
/// Deterministic in the seed; accounts messages and bytes for protocol
/// cost studies.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "des/event_queue.hpp"
#include "des/fault.hpp"
#include "util/rng.hpp"

namespace svo::des {

/// One delivered message.
struct Message {
  std::size_t from = 0;
  std::size_t to = 0;
  /// Application-defined tag ("CFP", "TRUST_REPORT", ...).
  std::string type;
  /// Payload size in bytes (drives latency; contents travel out of band
  /// through the application's own state — this is a cost model, not a
  /// serialization layer).
  std::size_t bytes = 0;
  /// Application payload: a small vector of doubles covers every message
  /// in the shipped protocols.
  std::vector<double> data;
  /// Causal trace context: the obs span/event id whose handling caused
  /// this message (0 = let the network use the sender's innermost open
  /// span). Purely observational — never consulted by delivery logic —
  /// and 0 whenever tracing is disabled, so untraced runs stay
  /// bit-identical.
  std::uint64_t trace_parent = 0;
};

/// Link latency model: seconds to deliver `bytes` from `from` to `to`.
struct LatencyModel {
  /// Fixed per-message latency (propagation + handling), seconds.
  double base_seconds = 5e-3;
  /// Transfer rate in bytes/second (0 disables the size term).
  double bytes_per_second = 1.25e8;  // ~1 Gbit/s
  /// Uniform jitter fraction: actual = nominal * U[1, 1 + jitter].
  double jitter = 0.1;

  /// Throws InvalidArgument on non-finite or negative fields. Zero
  /// base_seconds (instant links) and zero bytes_per_second (size term
  /// disabled) are valid edge cases; negative values and NaN would
  /// silently produce negative/NaN delays downstream, so they are
  /// rejected here.
  void validate() const;

  [[nodiscard]] double sample(std::size_t bytes,
                              util::Xoshiro256& rng) const {
    double t = base_seconds;
    if (bytes_per_second > 0.0) {
      t += static_cast<double>(bytes) / bytes_per_second;
    }
    return t * rng.uniform(1.0, 1.0 + jitter);
  }
};

/// Star/full-mesh network of `nodes` endpoints with per-node handlers.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(Simulator& sim, std::size_t nodes, LatencyModel latency,
          std::uint64_t seed);

  [[nodiscard]] std::size_t nodes() const noexcept {
    return handlers_.size();
  }

  /// Install the receive handler of a node (replaces any previous one).
  void set_handler(std::size_t node, Handler handler);

  /// Send a message; it is delivered through the simulator after the
  /// sampled latency. Throws InvalidArgument on out-of-range `from`/`to`
  /// endpoints or if the destination has no handler at delivery time
  /// (protocol bug). When a fault injector is attached the message may
  /// be dropped or delayed; drops are accounted in the injector's stats
  /// but still count toward messages_sent()/bytes_sent() (they were put
  /// on the wire).
  ///
  /// When the obs recorder is enabled each send additionally emits a
  /// Chrome flow (arrow) named after the message type — flow start at
  /// the send, flow end inside a "net.deliver" span wrapping the
  /// handler, an instant "net.drop" event when the injector destroys
  /// the message — parented on Message::trace_parent (or the sender's
  /// innermost span), so traced runs export the full causal message
  /// DAG. Tracing reads no randomness and with the recorder off this
  /// path is a single relaxed load.
  void send(Message message);

  /// Attach a fault injector consulted on every send (nullptr detaches).
  /// The injector must outlive the network. Without one — or with one
  /// whose knobs are all zero — delivery times are bit-identical to the
  /// fault-free network, because the injector draws from its own stream.
  void set_fault_injector(FaultInjector* injector) noexcept {
    fault_ = injector;
  }
  [[nodiscard]] const FaultInjector* fault_injector() const noexcept {
    return fault_;
  }

  /// Accounting.
  [[nodiscard]] std::size_t messages_sent() const noexcept {
    return messages_;
  }
  [[nodiscard]] std::size_t bytes_sent() const noexcept { return bytes_; }

 private:
  Simulator& sim_;
  std::vector<Handler> handlers_;
  LatencyModel latency_;
  util::Xoshiro256 rng_;
  FaultInjector* fault_ = nullptr;
  std::size_t messages_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace svo::des
