/// \file problem.hpp
/// Linear program model: minimize c^T x subject to linear constraints and
/// x >= 0 (optional per-variable upper bounds). The paper solved its task
/// assignment IP (eqs. (9)-(14)) with CPLEX; this module plus svo::ip is
/// our from-scratch replacement (DESIGN.md §1).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/error.hpp"

namespace svo::lp {

/// Direction of one linear constraint.
enum class Sense { LessEqual, GreaterEqual, Equal };

/// One constraint: coeffs . x  (sense)  rhs.
struct Constraint {
  std::vector<double> coeffs;
  Sense sense = Sense::LessEqual;
  double rhs = 0.0;
};

/// A minimization LP over non-negative variables.
class Problem {
 public:
  /// LP with `num_vars` variables, zero objective, no constraints.
  explicit Problem(std::size_t num_vars);

  [[nodiscard]] std::size_t num_vars() const noexcept { return objective_.size(); }
  [[nodiscard]] std::size_t num_constraints() const noexcept {
    return constraints_.size();
  }

  /// Set the objective vector (must match num_vars).
  void set_objective(std::vector<double> c);
  /// Set one objective coefficient.
  void set_objective_coeff(std::size_t var, double c);
  [[nodiscard]] const std::vector<double>& objective() const noexcept {
    return objective_;
  }

  /// Append a constraint; returns its index. coeffs must match num_vars.
  std::size_t add_constraint(std::vector<double> coeffs, Sense sense,
                             double rhs);
  [[nodiscard]] const Constraint& constraint(std::size_t i) const;
  [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }

  /// Optional upper bound on a variable (handled by the solver as an
  /// extra row). nullopt = unbounded above.
  void set_upper_bound(std::size_t var, double ub);
  [[nodiscard]] std::optional<double> upper_bound(std::size_t var) const;

  /// Evaluate the objective at a point (size-checked).
  [[nodiscard]] double objective_value(const std::vector<double>& x) const;

  /// True iff `x` satisfies every constraint and bound within `tol`.
  [[nodiscard]] bool is_feasible(const std::vector<double>& x,
                                 double tol = 1e-7) const;

 private:
  std::vector<double> objective_;
  std::vector<Constraint> constraints_;
  std::vector<std::optional<double>> upper_bounds_;
};

}  // namespace svo::lp
