/// \file simplex.hpp
/// Two-phase dense tableau primal simplex for svo::lp::Problem.
///
/// Design notes:
///  - Dantzig pricing by default; the solver switches to Bland's rule
///    after a degeneracy streak, which guarantees termination.
///  - Upper bounds are expanded into explicit <= rows (the LPs this
///    project solves exactly — B&B relaxations of small assignment IPs —
///    are tiny, so tableau simplicity wins over a bounded-variable
///    implementation).
///  - Phase 1 minimizes the sum of artificial variables; a positive
///    phase-1 optimum reports Infeasible. Artificials stuck in the basis
///    at level zero are kept but barred from re-entering.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.hpp"

namespace svo::lp {

/// Outcome of a simplex run.
enum class SolveStatus {
  Optimal,         ///< Optimal basic feasible solution found.
  Infeasible,      ///< Constraints admit no feasible point.
  Unbounded,       ///< Objective unbounded below on the feasible set.
  IterationLimit,  ///< Pivot cap hit before convergence.
};

/// Human-readable status name.
[[nodiscard]] const char* to_string(SolveStatus s) noexcept;

/// Solution report.
struct Solution {
  SolveStatus status = SolveStatus::IterationLimit;
  /// Values of the original variables (empty unless Optimal).
  std::vector<double> x;
  /// Objective at x (meaningful only when Optimal).
  double objective = 0.0;
  /// Total simplex pivots across both phases.
  std::size_t iterations = 0;
};

/// Solver options.
struct SimplexOptions {
  std::size_t max_iterations = 200'000;
  /// Numerical tolerance for pricing/ratio tests.
  double eps = 1e-9;
  /// Consecutive degenerate pivots tolerated before switching to Bland.
  std::size_t degeneracy_patience = 50;
};

/// Solve `problem` (minimization). Never throws for solvable/unsolvable
/// models — outcomes are reported via Solution::status; throws only on
/// malformed input (via Problem's own contracts).
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {});

}  // namespace svo::lp
