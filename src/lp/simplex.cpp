#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"

namespace svo::lp {

const char* to_string(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::Optimal: return "Optimal";
    case SolveStatus::Infeasible: return "Infeasible";
    case SolveStatus::Unbounded: return "Unbounded";
    case SolveStatus::IterationLimit: return "IterationLimit";
  }
  return "Unknown";
}

namespace {

/// Dense tableau: `rows` constraint rows + one objective row; columns are
/// structural + slack/surplus + artificial variables + RHS.
class Tableau {
 public:
  Tableau(const Problem& problem, const SimplexOptions& opts)
      : opts_(opts), n_struct_(problem.num_vars()) {
    // Materialize rows: user constraints plus one <= row per upper bound.
    struct Row {
      std::vector<double> coeffs;
      Sense sense;
      double rhs;
    };
    std::vector<Row> rows;
    rows.reserve(problem.num_constraints() + problem.num_vars());
    for (const auto& c : problem.constraints()) {
      rows.push_back({c.coeffs, c.sense, c.rhs});
    }
    for (std::size_t j = 0; j < n_struct_; ++j) {
      if (const auto ub = problem.upper_bound(j)) {
        std::vector<double> coeffs(n_struct_, 0.0);
        coeffs[j] = 1.0;
        rows.push_back({std::move(coeffs), Sense::LessEqual, *ub});
      }
    }
    m_ = rows.size();

    // Normalize RHS signs, count auxiliary columns.
    std::size_t n_slack = 0;
    std::size_t n_artificial = 0;
    for (auto& r : rows) {
      if (r.rhs < 0.0) {
        for (double& v : r.coeffs) v = -v;
        r.rhs = -r.rhs;
        r.sense = (r.sense == Sense::LessEqual)    ? Sense::GreaterEqual
                  : (r.sense == Sense::GreaterEqual) ? Sense::LessEqual
                                                     : Sense::Equal;
      }
      if (r.sense != Sense::Equal) ++n_slack;
      if (r.sense != Sense::LessEqual) ++n_artificial;
    }
    n_total_ = n_struct_ + n_slack + n_artificial;
    artificial_start_ = n_struct_ + n_slack;

    a_.assign(m_, std::vector<double>(n_total_ + 1, 0.0));
    basis_.assign(m_, 0);

    std::size_t slack_col = n_struct_;
    std::size_t art_col = artificial_start_;
    for (std::size_t i = 0; i < m_; ++i) {
      const auto& r = rows[i];
      std::copy(r.coeffs.begin(), r.coeffs.end(), a_[i].begin());
      a_[i][n_total_] = r.rhs;
      switch (r.sense) {
        case Sense::LessEqual:
          a_[i][slack_col] = 1.0;
          basis_[i] = slack_col++;
          break;
        case Sense::GreaterEqual:
          a_[i][slack_col] = -1.0;  // surplus
          ++slack_col;
          a_[i][art_col] = 1.0;
          basis_[i] = art_col++;
          break;
        case Sense::Equal:
          a_[i][art_col] = 1.0;
          basis_[i] = art_col++;
          break;
      }
    }
  }

  [[nodiscard]] std::size_t num_artificials() const noexcept {
    return n_total_ - artificial_start_;
  }

  /// Load a cost vector (length n_total_) into the objective row and price
  /// out the current basic variables.
  void load_objective(const std::vector<double>& cost) {
    obj_.assign(n_total_ + 1, 0.0);
    std::copy(cost.begin(), cost.end(), obj_.begin());
    obj_value_offset_ = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = cost[basis_[i]];
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j <= n_total_; ++j) obj_[j] -= cb * a_[i][j];
    }
  }

  /// Run simplex pivots until optimal/unbounded/iteration-limit.
  /// `allow_artificial_entering` must be false in phase 2.
  SolveStatus iterate(bool allow_artificial_entering, std::size_t& pivots) {
    std::size_t degenerate_streak = 0;
    while (pivots < opts_.max_iterations) {
      const std::size_t limit =
          allow_artificial_entering ? n_total_ : artificial_start_;
      const bool bland = degenerate_streak >= opts_.degeneracy_patience;
      // Pricing: most-negative reduced cost (Dantzig) or first-negative
      // (Bland, guarantees anti-cycling).
      std::size_t enter = n_total_;
      double best = -opts_.eps;
      for (std::size_t j = 0; j < limit; ++j) {
        if (obj_[j] < best) {
          enter = j;
          if (bland) break;
          best = obj_[j];
        }
      }
      if (enter == n_total_) return SolveStatus::Optimal;

      // Ratio test; ties broken by smallest basis index (lexicographic-ish,
      // pairs with Bland for termination).
      std::size_t leave_row = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        const double aij = a_[i][enter];
        if (aij <= opts_.eps) continue;
        const double ratio = a_[i][n_total_] / aij;
        if (ratio < best_ratio - opts_.eps ||
            (ratio < best_ratio + opts_.eps &&
             (leave_row == m_ || basis_[i] < basis_[leave_row]))) {
          best_ratio = ratio;
          leave_row = i;
        }
      }
      if (leave_row == m_) return SolveStatus::Unbounded;
      if (best_ratio <= opts_.eps) {
        ++degenerate_streak;
      } else {
        degenerate_streak = 0;
      }
      pivot(leave_row, enter);
      ++pivots;
    }
    return SolveStatus::IterationLimit;
  }

  /// Current objective-row value (negated running objective).
  [[nodiscard]] double objective_row_value() const noexcept {
    return -obj_[n_total_];
  }

  /// After phase 1: try to pivot artificial variables out of the basis;
  /// returns false only on internal inconsistency (never expected).
  void drive_out_artificials(std::size_t& pivots) {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < artificial_start_) continue;
      // Find any non-artificial column with a nonzero entry in this row.
      std::size_t enter = n_total_;
      for (std::size_t j = 0; j < artificial_start_; ++j) {
        if (std::abs(a_[i][j]) > opts_.eps) {
          enter = j;
          break;
        }
      }
      if (enter == n_total_) continue;  // redundant row; artificial stays at 0
      pivot(i, enter);
      ++pivots;
    }
  }

  /// Extract values of the structural variables.
  [[nodiscard]] std::vector<double> extract_solution() const {
    std::vector<double> x(n_struct_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) x[basis_[i]] = a_[i][n_total_];
    }
    // Clamp numerical dust.
    for (double& v : x) {
      if (v < 0.0 && v > -1e-9) v = 0.0;
    }
    return x;
  }

  [[nodiscard]] std::size_t total_columns() const noexcept { return n_total_; }

 private:
  void pivot(std::size_t row, std::size_t col) {
    const double p = a_[row][col];
    auto& pr = a_[row];
    for (double& v : pr) v /= p;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double f = a_[i][col];
      if (f == 0.0) continue;
      auto& ri = a_[i];
      for (std::size_t j = 0; j <= n_total_; ++j) ri[j] -= f * pr[j];
      ri[col] = 0.0;  // exact zero, fights drift
    }
    const double fo = obj_[col];
    if (fo != 0.0) {
      for (std::size_t j = 0; j <= n_total_; ++j) obj_[j] -= fo * pr[j];
      obj_[col] = 0.0;
    }
    basis_[row] = col;
  }

  SimplexOptions opts_;
  std::size_t n_struct_;
  std::size_t m_ = 0;
  std::size_t n_total_ = 0;
  std::size_t artificial_start_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<double> obj_;
  std::vector<std::size_t> basis_;
  double obj_value_offset_ = 0.0;
};

}  // namespace

namespace {

Solution solve_impl(const Problem& problem, const SimplexOptions& options) {
  Solution solution;
  Tableau tab(problem, options);
  std::size_t pivots = 0;

  // Phase 1: minimize the sum of artificial variables.
  if (tab.num_artificials() > 0) {
    std::vector<double> phase1_cost(tab.total_columns(), 0.0);
    for (std::size_t j = tab.total_columns() - tab.num_artificials();
         j < tab.total_columns(); ++j) {
      phase1_cost[j] = 1.0;
    }
    tab.load_objective(phase1_cost);
    const SolveStatus s1 = tab.iterate(/*allow_artificial_entering=*/true,
                                       pivots);
    solution.iterations = pivots;
    if (s1 == SolveStatus::IterationLimit) {
      solution.status = SolveStatus::IterationLimit;
      return solution;
    }
    // Unbounded is impossible in phase 1 (objective bounded below by 0).
    if (tab.objective_row_value() > 1e-7) {
      solution.status = SolveStatus::Infeasible;
      return solution;
    }
    tab.drive_out_artificials(pivots);
  }

  // Phase 2: original objective over structural columns.
  std::vector<double> cost(tab.total_columns(), 0.0);
  const auto& c = problem.objective();
  std::copy(c.begin(), c.end(), cost.begin());
  tab.load_objective(cost);
  const SolveStatus s2 =
      tab.iterate(/*allow_artificial_entering=*/false, pivots);
  solution.iterations = pivots;
  solution.status = s2;
  if (s2 == SolveStatus::Optimal) {
    solution.x = tab.extract_solution();
    solution.objective = problem.objective_value(solution.x);
  }
  return solution;
}

}  // namespace

Solution solve(const Problem& problem, const SimplexOptions& options) {
  obs::Span span("lp.simplex.solve", "lp");
  Solution solution = solve_impl(problem, options);
  if (span.active()) {
    span.arg("vars", static_cast<double>(problem.num_vars()));
    span.arg("constraints", static_cast<double>(problem.num_constraints()));
    span.arg("pivots", static_cast<double>(solution.iterations));
    span.arg("status", to_string(solution.status));
    obs::MetricRegistry& m = obs::Recorder::instance().metrics();
    m.counter("lp.simplex.solves").add();
    m.counter("lp.simplex.pivots").add(solution.iterations);
    m.histogram("lp.simplex.pivots_per_solve")
        .observe(static_cast<double>(solution.iterations));
  }
  return solution;
}

}  // namespace svo::lp
