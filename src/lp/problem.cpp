#include "lp/problem.hpp"

#include <cmath>

namespace svo::lp {

Problem::Problem(std::size_t num_vars)
    : objective_(num_vars, 0.0), upper_bounds_(num_vars) {
  detail::require(num_vars > 0, "lp::Problem: num_vars must be > 0");
}

void Problem::set_objective(std::vector<double> c) {
  if (c.size() != objective_.size()) {
    throw DimensionMismatch("lp::Problem::set_objective: size mismatch");
  }
  objective_ = std::move(c);
}

void Problem::set_objective_coeff(std::size_t var, double c) {
  detail::require(var < num_vars(), "lp::Problem: var out of range");
  objective_[var] = c;
}

std::size_t Problem::add_constraint(std::vector<double> coeffs, Sense sense,
                                    double rhs) {
  if (coeffs.size() != num_vars()) {
    throw DimensionMismatch("lp::Problem::add_constraint: size mismatch");
  }
  constraints_.push_back(Constraint{std::move(coeffs), sense, rhs});
  return constraints_.size() - 1;
}

const Constraint& Problem::constraint(std::size_t i) const {
  detail::require(i < constraints_.size(),
                  "lp::Problem::constraint: index out of range");
  return constraints_[i];
}

void Problem::set_upper_bound(std::size_t var, double ub) {
  detail::require(var < num_vars(), "lp::Problem: var out of range");
  detail::require(ub >= 0.0, "lp::Problem: upper bound must be >= 0");
  upper_bounds_[var] = ub;
}

std::optional<double> Problem::upper_bound(std::size_t var) const {
  detail::require(var < num_vars(), "lp::Problem: var out of range");
  return upper_bounds_[var];
}

double Problem::objective_value(const std::vector<double>& x) const {
  if (x.size() != num_vars()) {
    throw DimensionMismatch("lp::Problem::objective_value: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) acc += objective_[j] * x[j];
  return acc;
}

bool Problem::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != num_vars()) return false;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < -tol) return false;
    if (upper_bounds_[j] && x[j] > *upper_bounds_[j] + tol) return false;
  }
  for (const auto& c : constraints_) {
    double lhs = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j) lhs += c.coeffs[j] * x[j];
    switch (c.sense) {
      case Sense::LessEqual:
        if (lhs > c.rhs + tol) return false;
        break;
      case Sense::GreaterEqual:
        if (lhs < c.rhs - tol) return false;
        break;
      case Sense::Equal:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace svo::lp
