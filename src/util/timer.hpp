/// \file timer.hpp
/// Wall-clock timing for the execution-time experiment (paper Fig. 9).
#pragma once

#include <chrono>

namespace svo::util {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  /// The timing clock, exposed so other layers (obs trace spans) can be
  /// pinned to the *same* monotonic clock; must never be system_clock
  /// (a wall-clock step would corrupt Fig. 9 and every span duration).
  using clock = std::chrono::steady_clock;
  static_assert(clock::is_steady, "WallTimer requires a monotonic clock");

  WallTimer() noexcept : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  clock::time_point start_;
};

}  // namespace svo::util
