#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/error.hpp"

namespace svo::util {

namespace {
/// Pool whose worker_loop owns the calling thread; null off-pool.
thread_local const ThreadPool* t_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_worker_pool == this;
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  detail::require(begin <= end, "parallel_for: begin > end");
  if (begin == end) return;
  // Nested use from one of this pool's own workers: run inline. The
  // submitting path would have the worker block in f.get() on chunks
  // competing for the very threads that are blocked — a deadlock with
  // every worker nested, and oversubscription otherwise.
  if (pool.on_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t n = end - begin;
  if (grain == 0) {
    grain = std::max<std::size_t>(1, n / (4 * std::max<std::size_t>(1, pool.size())));
  }
  // Small ranges: run inline; the dispatch overhead is not worth it.
  if (n <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n / grain + 1);
  for (std::size_t chunk = begin; chunk < end; chunk += grain) {
    const std::size_t chunk_end = std::min(chunk + grain, end);
    futures.push_back(pool.submit([&fn, chunk, chunk_end] {
      for (std::size_t i = chunk; i < chunk_end; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, fn, grain);
}

}  // namespace svo::util
