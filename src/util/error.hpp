/// \file error.hpp
/// Error types shared across the svo libraries.
///
/// Policy (per C++ Core Guidelines E.14): exceptions are reserved for
/// *contract violations* — callers passing arguments that make no sense.
/// Expected outcomes (an infeasible IP, a power method that hit its
/// iteration cap) are reported through status enums on result structs,
/// never through exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace svo {

/// Base class for all svo contract-violation exceptions.
class Error : public std::logic_error {
 public:
  explicit Error(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when two objects that must agree on a dimension do not.
class DimensionMismatch : public Error {
 public:
  explicit DimensionMismatch(const std::string& what) : Error(what) {}
};

/// Thrown when a file cannot be opened or parsed at all (I/O layer only;
/// recoverable per-record parse problems are reported as counts/statuses).
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Require `cond`; otherwise throw InvalidArgument with `msg`.
inline void require(bool cond, const char* msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace detail
}  // namespace svo
