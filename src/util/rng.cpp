#include "util/rng.hpp"

#include <cmath>
#include <algorithm>
#include <limits>
#include <numbers>

namespace svo::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  // Expand the seed through SplitMix64 as recommended by the authors;
  // guarantees the all-zero state (the one invalid state) never occurs.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Xoshiro256 Xoshiro256::split() noexcept {
  std::uint64_t mix = (*this)();
  mix ^= rotl((*this)(), 31);
  return Xoshiro256(splitmix64(mix));
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  detail::require(lo <= hi, "Xoshiro256::uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Xoshiro256::uniform_int(std::int64_t lo, std::int64_t hi) {
  detail::require(lo <= hi, "Xoshiro256::uniform_int: lo > hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(index(span));
}

std::size_t Xoshiro256::index(std::size_t n) {
  detail::require(n > 0, "Xoshiro256::index: n == 0");
  // Classic rejection sampling: discard the first (2^64 mod n) values so
  // the retained range is an exact multiple of n -> unbiased for every n.
  const std::uint64_t bound = n;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return static_cast<std::size_t>(r % bound);
  }
}

bool Xoshiro256::bernoulli(double p) {
  detail::require(p >= 0.0 && p <= 1.0, "Xoshiro256::bernoulli: p not in [0,1]");
  return uniform() < p;
}

double Xoshiro256::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= std::numeric_limits<double>::min()) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Xoshiro256::normal(double mean, double sigma) {
  detail::require(sigma >= 0.0, "Xoshiro256::normal: sigma < 0");
  return mean + sigma * normal();
}

double Xoshiro256::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Xoshiro256::exponential(double lambda) {
  detail::require(lambda > 0.0, "Xoshiro256::exponential: lambda <= 0");
  double u = uniform();
  while (u <= std::numeric_limits<double>::min()) u = uniform();
  return -std::log(u) / lambda;
}

double Xoshiro256::gamma(double shape, double scale) {
  detail::require(shape > 0.0 && scale > 0.0,
                  "Xoshiro256::gamma: shape and scale must be > 0");
  // Marsaglia & Tsang (2000). For shape < 1, sample Gamma(shape+1) and
  // multiply by U^(1/shape) (the boosting identity).
  if (shape < 1.0) {
    const double u = std::max(uniform(), std::numeric_limits<double>::min());
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    const double x2 = x * x;
    if (u < 1.0 - 0.0331 * x2 * x2) return d * v * scale;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t state = seed ^ (0x5851f42d4c957f2dULL * (stream + 1));
  (void)splitmix64(state);
  return splitmix64(state);
}

}  // namespace svo::util
