#include "util/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace svo::util {

namespace {

/// Shared preamble: strict parsers reject empty input and any leading
/// whitespace/sign quirks strtol would silently absorb.
bool reject_outright(std::string_view s) {
  if (s.empty()) return true;
  // strtol skips leading whitespace; "entire string is the number" means
  // no whitespace anywhere.
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

}  // namespace

std::optional<long long> parse_ll(std::string_view s) {
  if (reject_outright(s)) return std::nullopt;
  const std::string buf(s);  // strtoll needs NUL termination
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return std::nullopt;          // overflow/underflow
  if (end != buf.c_str() + buf.size()) return std::nullopt;  // trailing junk
  return v;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (reject_outright(s)) return std::nullopt;
  if (s.front() == '-') return std::nullopt;  // strtoull wraps negatives
  const std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE) return std::nullopt;
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<std::size_t> parse_positive_size(std::string_view s) {
  const std::optional<std::uint64_t> v = parse_u64(s);
  if (!v.has_value() || *v == 0 ||
      *v > std::numeric_limits<std::size_t>::max()) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(*v);
}

std::optional<double> parse_double(std::string_view s) {
  if (reject_outright(s)) return std::nullopt;
  const std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return std::nullopt;
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  if (!std::isfinite(v)) return std::nullopt;  // reject "inf"/"nan"
  return v;
}

std::optional<std::vector<std::size_t>> parse_size_list(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    const std::optional<std::size_t> v =
        parse_positive_size(s.substr(pos, comma - pos));
    if (!v.has_value()) return std::nullopt;  // includes empty tokens
    out.push_back(*v);
    if (comma == s.size()) break;
    pos = comma + 1;
    if (pos == s.size()) return std::nullopt;  // trailing comma
  }
  return out;
}

namespace {

void warn_malformed(const char* name, const char* value) {
  std::fprintf(stderr,
               "warning: ignoring malformed %s=\"%s\" (using the default)\n",
               name, value);
}

}  // namespace

std::uint64_t env_u64_or(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::optional<std::uint64_t> v = parse_u64(raw);
  if (!v.has_value()) {
    warn_malformed(name, raw);
    return fallback;
  }
  return *v;
}

std::size_t env_positive_size_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const std::optional<std::size_t> v = parse_positive_size(raw);
  if (!v.has_value()) {
    warn_malformed(name, raw);
    return fallback;
  }
  return *v;
}

std::vector<std::size_t> env_size_list_or(const char* name,
                                          std::vector<std::size_t> fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  std::optional<std::vector<std::size_t>> v = parse_size_list(raw);
  if (!v.has_value()) {
    warn_malformed(name, raw);
    return fallback;
  }
  return std::move(*v);
}

std::string env_string_or(const char* name, std::string fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  return raw;
}

}  // namespace svo::util
