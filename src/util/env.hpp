/// \file env.hpp
/// Strict numeric parsing for environment overrides and CLI options —
/// the one parser the bench harnesses (SVO_SEED / SVO_REPS / SVO_SIZES)
/// and svo_cli share.
///
/// The parse_* functions accept a value only when the *entire* string is
/// a single in-range number: trailing garbage ("256x"), embedded
/// whitespace, empty strings, negative values for unsigned targets and
/// overflow all return nullopt instead of a silently truncated number
/// (the old strtol-with-null-endptr parser accepted "10abc" as 10 and
/// wrapped overflowing seeds).
///
/// The env_*_or helpers wrap getenv: unset -> fallback; malformed ->
/// warning on stderr + fallback, so an experiment never runs quietly
/// under a garbled override.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace svo::util {

/// Whole-string signed integer; nullopt on garbage/overflow.
[[nodiscard]] std::optional<long long> parse_ll(std::string_view s);

/// Whole-string unsigned 64-bit integer; rejects a leading '-' (strtoull
/// would silently wrap it).
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Whole-string strictly positive size (what every sweep knob wants).
[[nodiscard]] std::optional<std::size_t> parse_positive_size(
    std::string_view s);

/// Whole-string finite double.
[[nodiscard]] std::optional<double> parse_double(std::string_view s);

/// "a,b,c" of strictly positive sizes. Any malformed, empty or
/// non-positive entry rejects the whole list.
[[nodiscard]] std::optional<std::vector<std::size_t>> parse_size_list(
    std::string_view s);

/// getenv + parse_u64; warns on stderr and falls back on malformed input.
[[nodiscard]] std::uint64_t env_u64_or(const char* name,
                                       std::uint64_t fallback);

/// getenv + parse_positive_size, same fallback contract.
[[nodiscard]] std::size_t env_positive_size_or(const char* name,
                                               std::size_t fallback);

/// getenv + parse_size_list, same fallback contract.
[[nodiscard]] std::vector<std::size_t> env_size_list_or(
    const char* name, std::vector<std::size_t> fallback);

/// getenv as a string; unset or empty -> fallback.
[[nodiscard]] std::string env_string_or(const char* name,
                                        std::string fallback);

}  // namespace svo::util
