/// \file histogram.hpp
/// Fixed-bin histogram used by the trace statistics and the CLI's
/// `trace-stats` view (runtime and job-size distributions).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace svo::util {

/// Histogram over [lo, hi) with equal-width bins plus overflow/underflow
/// counters. Log-scale binning is available for heavy-tailed data
/// (runtimes, job sizes).
class Histogram {
 public:
  /// Linear bins. Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Log-spaced bins over [lo, hi); requires 0 < lo < hi.
  static Histogram logarithmic(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] std::size_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::size_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// [lower, upper) edges of a bin in data space.
  [[nodiscard]] std::pair<double, double> bin_range(std::size_t bin) const;

  /// ASCII rendering: one line per non-empty bin, bar lengths normalized
  /// to `width` characters.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  Histogram(double lo, double hi, std::size_t bins, bool log_scale);

  double lo_;
  double hi_;
  bool log_scale_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace svo::util
