/// \file rng.hpp
/// Deterministic pseudo-random number generation for simulations.
///
/// Every experiment in this repository is reproducible from a single
/// 64-bit seed. We implement xoshiro256** (Blackman & Vigna) seeded via
/// SplitMix64, plus `split()` so independent substreams can be handed to
/// parallel workers without sharing state. The engine satisfies
/// std::uniform_random_bit_generator and can drive <random> distributions,
/// but the members below (uniform/uniform_int/...) are preferred: they are
/// implementation-pinned, so results do not drift across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace svo::util {

/// SplitMix64 step: used for seeding and as a cheap stateless mixer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** PRNG. 256-bit state, period 2^256-1, passes BigCrush.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed (expanded through SplitMix64).
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Derive an independent generator (jump-free splitting: reseeds a child
  /// from two draws mixed through SplitMix64; collisions are negligible).
  [[nodiscard]] Xoshiro256 split() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0. Unbiased (rejection method).
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Bernoulli draw with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Standard normal via Box-Muller (implementation-pinned).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation (sigma >= 0).
  [[nodiscard]] double normal(double mean, double sigma);

  /// Log-normal: exp(N(mu, sigma)).
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Exponential with rate lambda > 0.
  [[nodiscard]] double exponential(double lambda);

  /// Gamma(shape, scale), shape > 0, scale > 0 (Marsaglia-Tsang squeeze
  /// for shape >= 1; boosting for shape < 1).
  [[nodiscard]] double gamma(double shape, double scale);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Sample one element uniformly. Requires non-empty.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    detail::require(!v.empty(), "Xoshiro256::pick: empty vector");
    return v[index(v.size())];
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Derive a child seed for a named substream. Deterministic in
/// (seed, stream): lets experiment code give each (repetition, module)
/// pair its own independent generator.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::uint64_t stream) noexcept;

}  // namespace svo::util
