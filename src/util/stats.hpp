/// \file stats.hpp
/// Streaming and batch descriptive statistics used by the simulation
/// harness (every figure in the paper reports averages over repetitions).
#pragma once

#include <cstddef>
#include <vector>

namespace svo::util {

/// Welford one-pass accumulator: numerically stable mean/variance,
/// plus min/max. O(1) per observation, no storage of the samples.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x) noexcept;

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Mean of the observations; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  /// sqrt(variance()).
  [[nodiscard]] double stddev() const noexcept;
  /// Minimum observation; +inf when empty.
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Maximum observation; -inf when empty.
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sum of all observations.
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;

 public:
  RunningStats() noexcept;
};

/// Batch summary of a sample (computed once; keeps a sorted copy internally
/// only during construction).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Summarize a sample. Empty input yields an all-zero Summary.
[[nodiscard]] Summary summarize(const std::vector<double>& sample);

/// Linear-interpolation percentile of a sample, q in [0,1].
/// Throws InvalidArgument on empty sample or q outside [0,1].
[[nodiscard]] double percentile(std::vector<double> sample, double q);

}  // namespace svo::util
