/// \file thread_pool.hpp
/// Fixed-size thread pool and a blocking parallel_for built on it.
///
/// The simulation harness uses this to run the 10 repetitions of each
/// sweep point concurrently (each repetition owns an independent RNG
/// substream, so parallel and serial execution produce identical data).
/// The reputation engine also offers a parallel mat-vec for large trust
/// graphs. Every parallel path in this repository has a serial twin; the
/// tests compare the two for bit-identical results.
///
/// Reentrancy: parallel_for called *from one of the pool's own worker
/// threads* (e.g. a reputation mat-vec inside a svc::FormationService
/// shard tick, itself a pool task) runs its iterations inline on the
/// calling worker instead of re-submitting chunks. Re-submission from a
/// worker can deadlock — every worker may end up blocked in f.get() on
/// chunks that no free worker exists to run — and at best oversubscribes
/// the pool with nested waiters. Inline execution caps the effective
/// parallelism of nested loops at the outer level, which is the level
/// the caller sized.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace svo::util {

/// Fixed pool of worker threads consuming a FIFO task queue.
/// Exceptions thrown by a task are captured in the std::future returned
/// by submit(); parallel_for rethrows the first captured exception.
class ThreadPool {
 public:
  /// Create `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// True when the calling thread is one of *this* pool's workers —
  /// i.e. the current code runs inside a task submitted to this pool.
  /// parallel_for uses this to fall back to inline execution (see the
  /// file comment); services use it to assert they never block a worker
  /// on work only another worker could perform.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Shared process-wide pool (lazily created with default size).
  [[nodiscard]] static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Execute fn(i) for i in [begin, end) on the pool, blocking until all
/// iterations complete. Iterations are chunked into `grain`-sized blocks
/// (grain == 0 picks end-begin / (4 * threads), min 1). The first
/// exception thrown by any iteration is rethrown on the calling thread.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 0);

/// Convenience overload on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 0);

}  // namespace svo::util
