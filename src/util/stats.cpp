#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace svo::util {

RunningStats::RunningStats() noexcept
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> sample, double q) {
  detail::require(!sample.empty(), "percentile: empty sample");
  detail::require(q >= 0.0 && q <= 1.0, "percentile: q not in [0,1]");
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample.front();
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

Summary summarize(const std::vector<double>& sample) {
  Summary s;
  if (sample.empty()) return s;
  RunningStats rs;
  for (double x : sample) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p25 = percentile(sample, 0.25);
  s.median = percentile(sample, 0.50);
  s.p75 = percentile(sample, 0.75);
  return s;
}

}  // namespace svo::util
