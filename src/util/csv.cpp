#include "util/csv.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace svo::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  detail::require(!header_.empty(), "Table: header must be non-empty");
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != header_.size()) {
    throw DimensionMismatch("Table::add_row: arity differs from header");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t j = 0; j < header_.size(); ++j) {
    if (j) os << ',';
    os << csv_escape(header_[j]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j) os << ',';
      os << csv_escape(render_cell(row[j]));
    }
    os << '\n';
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw IoError("Table::write_csv_file: cannot open " + path);
  write_csv(f);
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t j = 0; j < header_.size(); ++j) width[j] = header_[j].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) {
      r.push_back(render_cell(row[j]));
      width[j] = std::max(width[j], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  const auto rule = [&] {
    os << '+';
    for (std::size_t w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  rule();
  os << '|';
  for (std::size_t j = 0; j < header_.size(); ++j) {
    os << ' ' << std::left << std::setw(static_cast<int>(width[j]))
       << header_[j] << " |";
  }
  os << '\n';
  rule();
  for (const auto& r : rendered) {
    os << '|';
    for (std::size_t j = 0; j < r.size(); ++j) {
      os << ' ' << std::right << std::setw(static_cast<int>(width[j])) << r[j]
         << " |";
    }
    os << '\n';
  }
  rule();
}

}  // namespace svo::util
