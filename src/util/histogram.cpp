#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace svo::util {

Histogram::Histogram(double lo, double hi, std::size_t bins, bool log_scale)
    : lo_(lo), hi_(hi), log_scale_(log_scale), counts_(bins, 0) {
  detail::require(bins >= 1, "Histogram: need at least one bin");
  detail::require(lo < hi, "Histogram: lo must be < hi");
  if (log_scale) {
    detail::require(lo > 0.0, "Histogram: log scale needs lo > 0");
  }
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : Histogram(lo, hi, bins, /*log_scale=*/false) {}

Histogram Histogram::logarithmic(double lo, double hi, std::size_t bins) {
  return Histogram(lo, hi, bins, /*log_scale=*/true);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  double fraction;
  if (log_scale_) {
    fraction = (std::log(x) - std::log(lo_)) / (std::log(hi_) - std::log(lo_));
  } else {
    fraction = (x - lo_) / (hi_ - lo_);
  }
  const auto bin = std::min(
      counts_.size() - 1,
      static_cast<std::size_t>(fraction * static_cast<double>(counts_.size())));
  ++counts_[bin];
}

std::size_t Histogram::count(std::size_t bin) const {
  detail::require(bin < counts_.size(), "Histogram::count: bin out of range");
  return counts_[bin];
}

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
  detail::require(bin < counts_.size(),
                  "Histogram::bin_range: bin out of range");
  const double n = static_cast<double>(counts_.size());
  if (log_scale_) {
    const double llo = std::log(lo_);
    const double step = (std::log(hi_) - llo) / n;
    return {std::exp(llo + step * static_cast<double>(bin)),
            std::exp(llo + step * static_cast<double>(bin + 1))};
  }
  const double step = (hi_ - lo_) / n;
  return {lo_ + step * static_cast<double>(bin),
          lo_ + step * static_cast<double>(bin + 1)};
}

std::string Histogram::render(std::size_t width) const {
  std::size_t max_count = 1;
  for (const std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream os;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    if (counts_[bin] == 0) continue;
    const auto [lo, hi] = bin_range(bin);
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[bin]) / static_cast<double>(max_count) *
        static_cast<double>(width));
    os << "[" << std::scientific;
    os.precision(2);
    os << lo << ", " << hi << ") " << std::string(std::max<std::size_t>(bar, 1), '#')
       << ' ' << counts_[bin] << '\n';
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) os << "overflow: " << overflow_ << '\n';
  return os.str();
}

}  // namespace svo::util
