/// \file csv.hpp
/// CSV and aligned-console-table emitters for experiment results.
///
/// Every figure harness in bench/ prints two artifacts: an aligned table
/// for the terminal and (optionally) a CSV file for replotting.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace svo::util {

/// A single table cell: text, integer, or floating-point value.
using Cell = std::variant<std::string, long long, double>;

/// Row-oriented table with a fixed header. Collects rows, then renders
/// either as CSV (RFC-4180 quoting) or as an aligned console table.
class Table {
 public:
  /// Construct with column headers (defines the column count).
  explicit Table(std::vector<std::string> header);

  /// Append a row. Throws DimensionMismatch if the arity differs from
  /// the header.
  void add_row(std::vector<Cell> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  /// Number of columns.
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

  /// Floating-point precision used when rendering double cells.
  void set_precision(int digits) noexcept { precision_ = digits; }

  /// Write as CSV to a stream.
  void write_csv(std::ostream& os) const;

  /// Write as CSV to a file path. Throws IoError if the file cannot open.
  void write_csv_file(const std::string& path) const;

  /// Render an aligned, boxed console table.
  void write_pretty(std::ostream& os) const;

 private:
  [[nodiscard]] std::string render_cell(const Cell& c) const;

  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

/// Escape one CSV field per RFC 4180 (quote when it contains , " or \n).
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace svo::util
