#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace svo::obs {

void Histogram::Snapshot::merge(const Snapshot& other) noexcept {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

void Histogram::observe(double v) noexcept {
  // Reject anything that would poison sum/min downstream: NaN and ±inf
  // are dropped outright, negatives clamp to 0 (the event still counts,
  // its magnitude was garbage). Either way the error tally ticks.
  if (!std::isfinite(v)) {
    bad_count_.fetch_add(1, std::memory_order_relaxed);
    if (bad_counter_ != nullptr) bad_counter_->add();
    return;
  }
  if (v < 0.0) {
    bad_count_.fetch_add(1, std::memory_order_relaxed);
    if (bad_counter_ != nullptr) bad_counter_->add();
    v = 0.0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (data_.count == 0) {
    data_.min = v;
    data_.max = v;
  } else {
    data_.min = std::min(data_.min, v);
    data_.max = std::max(data_.max, v);
  }
  ++data_.count;
  data_.sum += v;
  std::size_t b = 0;
  if (v >= 1.0) {
    const int e = std::ilogb(v);  // floor(log2 v) for finite v >= 1
    b = std::min<std::size_t>(kBuckets - 1,
                              static_cast<std::size_t>(e) + 1);
  }
  ++data_.buckets[b];
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [0, count-1], same linear-interpolation convention as
  // util::percentile.
  const double rank = q * static_cast<double>(count - 1);
  // Find the bucket containing the rank and interpolate uniformly
  // across it. Bucket 0 covers [0, 1), bucket i >= 1 covers
  // [2^(i-1), 2^i).
  double below = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const double in_bucket = static_cast<double>(buckets[b]);
    if (in_bucket == 0.0) continue;
    // rank falls in this bucket when below <= rank < below + in_bucket
    // (the last bucket also takes rank == count-1 exactly).
    if (rank < below + in_bucket ||
        below + in_bucket >= static_cast<double>(count)) {
      const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
      const double hi = b == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(b));
      const double frac =
          in_bucket > 1.0 ? (rank - below) / (in_bucket - 1.0) : 0.5;
      const double est = lo + std::clamp(frac, 0.0, 1.0) * (hi - lo);
      // The true min/max are tracked exactly; never answer outside them.
      return std::clamp(est, min, max);
    }
    below += in_bucket;
  }
  return max;  // unreachable for a consistent snapshot
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  data_ = Snapshot{};
}

MetricRegistry::Entry& MetricRegistry::find_or_create(std::string_view name,
                                                      Kind kind) {
  detail::require(!name.empty(), "MetricRegistry: empty metric name");
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    switch (kind) {
      case Kind::Counter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::Gauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::Histogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
    it = entries_.emplace(std::string(name), std::move(entry)).first;
    if (kind == Kind::Histogram && name != "obs.error.bad_sample") {
      // Every histogram in a registry shares one bad-sample error
      // counter (mu_ is held; call find_or_create directly, the public
      // counter() accessor would deadlock). Map nodes are stable, so
      // `it` survives the recursive insert.
      it->second.histogram->set_bad_sample_counter(
          find_or_create("obs.error.bad_sample", Kind::Counter)
              .counter.get());
    }
  }
  detail::require(it->second.kind == kind,
                  "MetricRegistry: name already registered as another kind");
  return it->second;
}

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return *find_or_create(name, Kind::Counter).counter;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return *find_or_create(name, Kind::Gauge).gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return *find_or_create(name, Kind::Histogram).histogram;
}

std::uint64_t MetricRegistry::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::Counter) return 0;
  return it->second.counter->value();
}

double MetricRegistry::gauge_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.kind != Kind::Gauge) return 0.0;
  return it->second.gauge->value();
}

void MetricRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::Counter:
        entry.counter->reset();
        break;
      case Kind::Gauge:
        entry.gauge->reset();
        break;
      case Kind::Histogram:
        entry.histogram->reset();
        break;
    }
  }
}

RegistrySnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::Counter:
        out.counters.emplace(name, entry.counter->value());
        break;
      case Kind::Gauge:
        out.gauges.emplace(name, entry.gauge->value());
        break;
      case Kind::Histogram:
        out.histograms.emplace(name, entry.histogram->snapshot());
        break;
    }
  }
  return out;
}

std::vector<std::string> MetricRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

void MetricRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os, /*pretty=*/true);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind == Kind::Counter) w.kv(name, entry.counter->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind == Kind::Gauge) w.kv(name, entry.gauge->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, entry] : entries_) {
    if (entry.kind != Kind::Histogram) continue;
    const Histogram::Snapshot s = entry.histogram->snapshot();
    w.key(name).begin_object();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.kv("mean", s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0);
    // Sparse bucket map: {"<upper bound exponent>": count}.
    w.key("log2_buckets").begin_object();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (s.buckets[b] == 0) continue;
      w.kv(std::to_string(b), s.buckets[b]);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace svo::obs
