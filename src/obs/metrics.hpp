/// \file metrics.hpp
/// Metric primitives of the observability spine (DESIGN.md §4e):
/// counters, gauges and log-bucketed histograms, owned by a
/// MetricRegistry that hands out *stable* references — callers on hot
/// paths look a metric up once and keep the reference.
///
/// Two usage modes share these types:
///  - the process-wide registry inside obs::Recorder aggregates across a
///    whole run (exported as JSON via SVO_METRICS / TraceSession);
///  - *local* registries scope accounting to one operation — e.g.
///    core::run_distributed builds its ProtocolMetrics from a per-run
///    registry instead of hand-maintained struct fields.
///
/// Counter::add and Gauge::set are lock-free; Histogram::observe and all
/// registry lookups take a mutex (they sit at solve boundaries, never in
/// inner loops).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace svo::obs {

/// Monotonic event counter; safe to add() from any thread.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written-value gauge. add() exists for up/down tracking (queue
/// depths): a CAS loop, so concurrent increments never lose a delta the
/// way racy read-modify-set() would.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram of non-negative samples: running count/sum/min/max plus
/// power-of-two buckets (bucket 0 holds v < 1, bucket i >= 1 holds
/// 2^(i-1) <= v < 2^i). Coarse on purpose — it answers "are B&B solves
/// budget-bound or tiny", not percentile SLOs.
///
/// Malformed samples never poison the aggregates: non-finite values are
/// dropped, negative ones clamp to 0 (still observed — the event
/// happened, its magnitude did not). Both increment bad_samples() and,
/// when the histogram lives in a MetricRegistry, the registry's
/// `obs.error.bad_sample` counter.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Bit-wise equality; meaningful because every mutation is
    /// deterministic double arithmetic, so replayed runs produce
    /// bit-equal snapshots.
    friend bool operator==(const Snapshot&, const Snapshot&) = default;

    /// Accumulate `other` into this snapshot (used by window rollups).
    /// count/sum/buckets add; min/max widen to cover both.
    void merge(const Snapshot& other) noexcept;

    /// Quantile estimate (q in [0,1]) from the log2 buckets, linearly
    /// interpolated inside the target bucket and clamped to the exact
    /// [min, max] the histogram tracked.
    ///
    /// Error bound: the answer lies in the same power-of-two bucket as
    /// the true quantile, so it is off by at most the bucket width —
    /// a factor of 2 of the true value (bucket i covers [2^(i-1), 2^i)).
    /// Sanity-checked against util::percentile in the unit tests. Use
    /// util::percentile on raw samples when exact order statistics
    /// matter; this exists for post-hoc reads of exported histograms
    /// whose samples are gone. Returns 0 for an empty histogram.
    [[nodiscard]] double quantile(double q) const noexcept;
  };

  void observe(double v) noexcept;
  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  /// Samples rejected (non-finite) or clamped (negative) so far.
  /// Survives reset() — it is an error tally, not a measurement.
  [[nodiscard]] std::uint64_t bad_samples() const noexcept {
    return bad_count_.load(std::memory_order_relaxed);
  }

  /// Optional shared error counter bumped alongside bad_samples();
  /// MetricRegistry wires its `obs.error.bad_sample` counter in here.
  /// The counter must outlive the histogram.
  void set_bad_sample_counter(Counter* c) noexcept { bad_counter_ = c; }

 private:
  mutable std::mutex mu_;
  Snapshot data_;
  std::atomic<std::uint64_t> bad_count_{0};
  Counter* bad_counter_ = nullptr;
};

/// One coherent point-in-time copy of every metric in a registry, keyed
/// by name. The building block obs::TimeSeries diffs to produce
/// per-window deltas.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
};

/// Named metric store. Lookup creates on first use; returned references
/// stay valid for the registry's lifetime. A name identifies exactly one
/// kind — asking for `counter("x")` after `gauge("x")` throws.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Read without creating: 0 / 0.0 when the metric does not exist.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] double gauge_value(std::string_view name) const;

  /// Zero every metric (names stay registered, references stay valid).
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}, names
  /// sorted, suitable for diffing across runs.
  void write_json(std::ostream& os) const;

  /// Registered metric names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Copy every metric under one lock acquisition — a coherent cut for
  /// window sampling (obs::TimeSeries) and the Prometheus exporter.
  [[nodiscard]] RegistrySnapshot snapshot() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(std::string_view name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace svo::obs
