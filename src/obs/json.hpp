/// \file json.hpp
/// Minimal streaming JSON writer — the one serializer behind every JSON
/// artifact this repo emits: Chrome trace files, metric registry dumps,
/// and the bench harnesses' BENCH_*.json reports (which used to
/// hand-roll fprintf scaffolding per binary; see bench/common.hpp).
///
/// The writer is strictly sequential: begin/end containers, key() before
/// each object member, value() for scalars. Commas, quoting, escaping
/// and (optional) indentation are handled here so call sites cannot emit
/// syntactically invalid JSON. Non-finite doubles are emitted as `null`
/// (JSON has no NaN/Inf).
#pragma once

#include <concepts>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace svo::obs {

/// Streaming JSON writer over an ostream. Throws InvalidArgument on
/// misuse that would produce malformed output (value without key inside
/// an object, unbalanced end_*).
class JsonWriter {
 public:
  /// `pretty` adds newlines + two-space indentation (BENCH reports);
  /// compact mode suits large trace files.
  explicit JsonWriter(std::ostream& os, bool pretty = false)
      : os_(os), pretty_(pretty) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member key; must be directly inside an object.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(bool b);
  JsonWriter& value(double d);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  template <std::integral T>
    requires(!std::same_as<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return write_int(static_cast<std::int64_t>(v));
    } else {
      return write_uint(static_cast<std::uint64_t>(v));
    }
  }

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// Escape `s` per RFC 8259 into `os` (without surrounding quotes).
  static void write_escaped(std::ostream& os, std::string_view s);

 private:
  JsonWriter& write_int(std::int64_t v);
  JsonWriter& write_uint(std::uint64_t v);
  /// Comma/indent bookkeeping before a new element at the current level.
  void before_element();
  void newline_indent();
  void open(char kind, char c);
  void close(char kind, char c);

  struct Level {
    char kind;               // '{' or '['
    std::size_t count = 0;   // elements emitted so far
    bool key_pending = false;
  };

  std::ostream& os_;
  bool pretty_;
  std::vector<Level> stack_;
};

}  // namespace svo::obs
