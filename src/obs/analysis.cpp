#include "obs/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace svo::obs::analysis {

// --- loading -------------------------------------------------------------

bool event_from_json(const JsonValue& v, TraceEvent& out) {
  if (!v.is_object()) return false;
  const std::string ph = v.string_or("ph", "");
  TraceEvent ev;
  if (ph == "X") {
    ev.kind = EventKind::Complete;
  } else if (ph == "s") {
    ev.kind = EventKind::FlowStart;
  } else if (ph == "f") {
    ev.kind = EventKind::FlowEnd;
  } else if (ph == "i") {
    ev.kind = EventKind::Instant;
  } else {
    return false;  // metadata / foreign phases: not ours, skip
  }
  ev.name = v.string_or("name", "");
  ev.category = v.string_or("cat", "svo");
  ev.start_us = v.uint_or("ts", 0);
  ev.duration_us = v.uint_or("dur", 0);
  ev.tid = static_cast<std::uint32_t>(v.uint_or("tid", 0));
  ev.id = v.uint_or("id", 0);
  ev.parent = v.uint_or("parent", 0);
  if (const JsonValue* args = v.find("args"); args != nullptr &&
                                              args->is_object()) {
    for (const auto& [key, val] : args->members()) {
      if (val.is_number()) {
        ev.args.emplace_back(key, val.as_double());
      } else if (val.is_null()) {
        // The writer images non-finite doubles as null; keep the fact.
        ev.args.emplace_back(key, std::numeric_limits<double>::quiet_NaN());
      } else if (val.is_string()) {
        ev.sargs.emplace_back(key, val.as_string());
      }
    }
  }
  out = std::move(ev);
  return true;
}

std::vector<TraceEvent> parse_trace(std::string_view text) {
  std::vector<TraceEvent> events;
  // A Chrome trace is one object spanning the whole text; JSONL is one
  // object per line. Try the whole text first — a single-line JSONL
  // file also parses whole, and is then just a one-event trace.
  if (std::optional<JsonValue> whole = try_parse_json(text)) {
    if (const JsonValue* list = whole->find("traceEvents");
        list != nullptr && list->is_array()) {
      for (const JsonValue& item : list->items()) {
        TraceEvent ev;
        if (event_from_json(item, ev)) events.push_back(std::move(ev));
      }
      return events;
    }
    TraceEvent ev;
    if (event_from_json(*whole, ev)) events.push_back(std::move(ev));
    return events;
  }
  // JSONL: parse line by line; blank lines are fine, garbage is not.
  std::size_t pos = 0;
  std::size_t lineno = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) continue;
    std::optional<JsonValue> v = try_parse_json(line);
    if (!v) {
      throw IoError("trace line " + std::to_string(lineno) +
                    " is not valid JSON");
    }
    TraceEvent ev;
    if (event_from_json(*v, ev)) events.push_back(std::move(ev));
  }
  return events;
}

std::vector<TraceEvent> load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open trace file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_trace(buf.str());
}

// --- span aggregates -----------------------------------------------------

std::vector<SpanStats> aggregate_spans(const std::vector<TraceEvent>& events) {
  std::unordered_map<std::string, std::vector<double>> durations;
  for (const TraceEvent& ev : events) {
    if (ev.kind != EventKind::Complete) continue;
    durations[ev.name].push_back(static_cast<double>(ev.duration_us));
  }
  std::vector<SpanStats> stats;
  stats.reserve(durations.size());
  for (auto& [name, samples] : durations) {
    SpanStats s;
    s.name = name;
    s.count = samples.size();
    for (const double d : samples) {
      s.total_us += d;
      s.max_us = std::max(s.max_us, d);
    }
    s.mean_us = s.total_us / static_cast<double>(s.count);
    s.p50_us = util::percentile(samples, 0.5);
    s.p95_us = util::percentile(std::move(samples), 0.95);
    stats.push_back(std::move(s));
  }
  std::sort(stats.begin(), stats.end(),
            [](const SpanStats& a, const SpanStats& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });
  return stats;
}

namespace {

/// Index of events carrying a causal id.
using EventIndex = std::unordered_map<std::uint64_t, const TraceEvent*>;

EventIndex index_by_id(const std::vector<TraceEvent>& events) {
  EventIndex byid;
  byid.reserve(events.size());
  for (const TraceEvent& ev : events) {
    // Flow start/end share an id; keep the start (it holds the wire
    // args) and let FlowEnd lookups go through the flows map instead.
    if (ev.id == 0) continue;
    auto [it, inserted] = byid.emplace(ev.id, &ev);
    if (!inserted && it->second->kind == EventKind::FlowEnd) it->second = &ev;
  }
  return byid;
}

/// Guard for corrupt traces: parent chains longer than this are cycles.
constexpr std::size_t kMaxDepth = 256;

double arg_or(const TraceEvent& ev, std::string_view key, double fb) {
  for (const auto& [k, v] : ev.args) {
    if (k == key) return v;
  }
  return fb;
}

}  // namespace

std::vector<CollapsedStack> collapsed_stacks(
    const std::vector<TraceEvent>& events) {
  const EventIndex byid = index_by_id(events);
  // Child span time per parent span id, to compute self time.
  std::unordered_map<std::uint64_t, std::uint64_t> child_us;
  for (const TraceEvent& ev : events) {
    if (ev.kind != EventKind::Complete || ev.parent == 0) continue;
    const auto it = byid.find(ev.parent);
    if (it != byid.end() && it->second->kind == EventKind::Complete) {
      child_us[ev.parent] += ev.duration_us;
    }
  }
  std::map<std::string, std::uint64_t> folded;
  for (const TraceEvent& ev : events) {
    if (ev.kind != EventKind::Complete) continue;
    // Ancestor chain of *spans*; a non-span ancestor (flow, phase
    // event) roots the stack — message-triggered work stays separate
    // from the sender's stack, as a sampling profiler would see it.
    std::vector<const TraceEvent*> chain{&ev};
    std::uint64_t p = ev.parent;
    for (std::size_t depth = 0; p != 0 && depth < kMaxDepth; ++depth) {
      const auto it = byid.find(p);
      if (it == byid.end() || it->second->kind != EventKind::Complete) break;
      chain.push_back(it->second);
      p = it->second->parent;
    }
    std::string stack;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!stack.empty()) stack.push_back(';');
      stack += (*it)->name;
    }
    std::uint64_t self = ev.duration_us;
    if (const auto it = child_us.find(ev.id); it != child_us.end()) {
      self -= std::min(self, it->second);
    }
    folded[stack] += self;
  }
  std::vector<CollapsedStack> out;
  out.reserve(folded.size());
  for (auto& [stack, self] : folded) out.push_back({stack, self});
  return out;
}

// --- protocol causal analysis --------------------------------------------

std::string node_name(std::size_t node) {
  if (node == 0) return "TP";
  // Built up in steps: `"G" + std::to_string(...)` trips a GCC 12
  // -Wrestrict false positive under -Werror.
  std::string name = "G";
  name += std::to_string(node - 1);
  return name;
}

ProtocolAnalysis analyze_protocol(const std::vector<TraceEvent>& events) {
  ProtocolAnalysis pa;
  const EventIndex byid = index_by_id(events);

  // Pass 1: collect flows (message sends) and their deliveries.
  std::unordered_map<std::uint64_t, std::size_t> flow_index;  // id -> messages
  for (const TraceEvent& ev : events) {
    if (ev.kind != EventKind::FlowStart) continue;
    MessageHop hop;
    hop.flow_id = ev.id;
    hop.type = ev.name;
    hop.from = static_cast<std::size_t>(arg_or(ev, "from", 0.0));
    hop.to = static_cast<std::size_t>(arg_or(ev, "to", 0.0));
    hop.bytes = static_cast<std::size_t>(arg_or(ev, "bytes", 0.0));
    hop.send_sim_s = arg_or(ev, "sim_now_s", 0.0);
    flow_index.emplace(hop.flow_id, pa.messages.size());
    pa.messages.push_back(std::move(hop));
  }
  for (const TraceEvent& ev : events) {
    if (ev.kind != EventKind::FlowEnd) continue;
    const auto it = flow_index.find(ev.id);
    if (it == flow_index.end()) continue;
    MessageHop& hop = pa.messages[it->second];
    hop.delivered = true;
    hop.deliver_sim_s = arg_or(ev, "sim_now_s", hop.send_sim_s);
  }

  // Pass 2: resolve each flow's cause (the message whose handling sent
  // it) and its round/phase, by climbing the causal parent chain. A
  // deliver span's parent *is* a flow id, so the climb naturally stops
  // at the previous message; TP-originated sends stop at a phase event
  // (which carries the round annotation) or the run-span root.
  for (MessageHop& hop : pa.messages) {
    ++pa.sent_by_type[hop.type];
    if (!hop.delivered) ++pa.drops;
    const TraceEvent* start = nullptr;
    if (const auto it = byid.find(hop.flow_id); it != byid.end()) {
      start = it->second;
    }
    if (start == nullptr) continue;
    bool round_known = false;
    std::uint64_t p = start->parent;
    for (std::size_t depth = 0; p != 0 && depth < kMaxDepth; ++depth) {
      if (flow_index.count(p) != 0) {
        hop.cause = p;  // reached the causing message
        break;
      }
      const auto it = byid.find(p);
      if (it == byid.end()) break;
      const TraceEvent& anc = *it->second;
      if (!round_known && anc.category == "protocol") {
        const double r = arg_or(anc, "round", -1.0);
        if (r >= 0.0) {
          hop.round = static_cast<std::size_t>(r);
          hop.phase = anc.name;
          round_known = true;
        }
      }
      p = anc.parent;
    }
    // A GSP reply inherits its round from the message that caused it.
    if (!round_known && hop.cause != 0) {
      const MessageHop& cause = pa.messages[flow_index.at(hop.cause)];
      hop.round = cause.round;
      hop.phase = cause.phase;
    }
  }

  // Pass 3: per-round critical path — the causal chain ending at the
  // round's last delivery (ties: larger flow id, i.e. sent later).
  std::map<std::size_t, const MessageHop*> terminal;
  for (const MessageHop& hop : pa.messages) {
    if (!hop.delivered) continue;
    const MessageHop*& best = terminal[hop.round];
    if (best == nullptr || hop.deliver_sim_s > best->deliver_sim_s ||
        (hop.deliver_sim_s == best->deliver_sim_s &&
         hop.flow_id > best->flow_id)) {
      best = &hop;
    }
  }
  for (const auto& [round, last] : terminal) {
    RoundPath path;
    path.round = round;
    path.completion_sim_s = last->deliver_sim_s;
    const MessageHop* hop = last;
    for (std::size_t depth = 0; hop != nullptr && depth < kMaxDepth;
         ++depth) {
      path.hops.push_back(*hop);
      const auto it = flow_index.find(hop->cause);
      hop = it != flow_index.end() ? &pa.messages[it->second] : nullptr;
    }
    std::reverse(path.hops.begin(), path.hops.end());
    const std::size_t member =
        last->from != 0 ? last->from : last->to;
    path.bounding_member = node_name(member);
    pa.rounds.push_back(std::move(path));
  }
  return pa;
}

// --- text report ---------------------------------------------------------

namespace {

void write_span_table(std::ostream& os, const std::vector<SpanStats>& stats,
                      std::size_t top_k) {
  os << "  " << std::left << std::setw(36) << "span" << std::right
     << std::setw(8) << "count" << std::setw(12) << "total_ms"
     << std::setw(10) << "p50_us" << std::setw(10) << "p95_us"
     << std::setw(10) << "max_us" << '\n';
  const std::size_t n = std::min(top_k, stats.size());
  for (std::size_t i = 0; i < n; ++i) {
    const SpanStats& s = stats[i];
    os << "  " << std::left << std::setw(36) << s.name << std::right
       << std::setw(8) << s.count << std::setw(12) << std::fixed
       << std::setprecision(3) << s.total_us / 1000.0 << std::setw(10)
       << std::setprecision(1) << s.p50_us << std::setw(10) << s.p95_us
       << std::setw(10) << s.max_us << '\n';
  }
  if (stats.size() > n) {
    os << "  ... " << (stats.size() - n) << " more span name(s)\n";
  }
}

void write_round_path(std::ostream& os, const RoundPath& path) {
  os << "  round " << path.round << ": completed at sim t=" << std::fixed
     << std::setprecision(6) << path.completion_sim_s << "s, bounded by "
     << path.bounding_member << " (" << path.hops.size()
     << "-message critical path)\n";
  double prev_deliver = -1.0;
  for (const MessageHop& hop : path.hops) {
    os << "    " << std::left << std::setw(8) << hop.type << std::right
       << node_name(hop.from) << " -> " << node_name(hop.to);
    os << "  send t=" << std::setprecision(6) << hop.send_sim_s << "s";
    if (hop.delivered) {
      os << "  wire " << std::setprecision(3)
         << (hop.deliver_sim_s - hop.send_sim_s) * 1e3 << "ms";
    } else {
      os << "  DROPPED";
    }
    if (prev_deliver >= 0.0 && hop.send_sim_s >= prev_deliver) {
      os << "  (+" << std::setprecision(3)
         << (hop.send_sim_s - prev_deliver) * 1e3 << "ms local)";
    }
    if (!hop.phase.empty() && hop.cause == 0) os << "  [" << hop.phase << "]";
    os << '\n';
    if (hop.delivered) prev_deliver = hop.deliver_sim_s;
  }
}

}  // namespace

void write_text_report(std::ostream& os,
                       const std::vector<TraceEvent>& events,
                       const ReportOptions& options) {
  std::size_t spans = 0;
  std::size_t flows = 0;
  std::size_t instants = 0;
  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case EventKind::Complete: ++spans; break;
      case EventKind::FlowStart: ++flows; break;
      case EventKind::FlowEnd: break;
      case EventKind::Instant: ++instants; break;
    }
  }
  os << "trace: " << events.size() << " events (" << spans << " spans, "
     << flows << " message flows, " << instants << " instants)\n\n";

  const std::vector<SpanStats> stats = aggregate_spans(events);
  if (!stats.empty()) {
    os << "hot spans (top " << std::min(options.top_k, stats.size())
       << " by total time):\n";
    write_span_table(os, stats, options.top_k);
    os << '\n';
  }

  const ProtocolAnalysis pa = analyze_protocol(events);
  if (!pa.messages.empty()) {
    os << "protocol messages:";
    for (const auto& [type, count] : pa.sent_by_type) {
      os << "  " << type << "=" << count;
    }
    os << "  (drops=" << pa.drops << ")\n\n";
    os << "per-round critical paths (sim time):\n";
    for (const RoundPath& path : pa.rounds) write_round_path(os, path);
  } else {
    os << "no protocol message flows in this trace\n";
  }
}

// --- bench regression diffing --------------------------------------------

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative glob with backtracking over the last '*'.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<DiffRule> default_bench_rules() {
  return {
      // Configuration echoes: any drift means the benches are no longer
      // comparable — gate exactly.
      {"*seed*", Direction::Exact, 0.0},
      {"*.n", Direction::Exact, 0.0},
      {"*.k", Direction::Exact, 0.0},
      {"*gsps*", Direction::Exact, 0.0},
      {"*tasks*", Direction::Exact, 0.0},
      {"*budget*", Direction::Exact, 0.0},
      {"*attack_rate*", Direction::Exact, 0.0},
      // Sparse-trust structure echoes (BENCH_trust_scale.json): the
      // graphs are seeded, so nnz/fill drift means the generator or the
      // CSR build changed — gate exactly.
      {"*fill*", Direction::Exact, 0.0},
      {"*nnz*", Direction::Exact, 0.0},
      // Continuous-telemetry aggregates (BENCH_telemetry.json): the
      // sampler-overhead ratio is wall clock — report only. Window
      // counts, SLO verdicts and burn rates come from virtual-time
      // replays, so they are deterministic — gate exactly. These sit
      // before the wall-clock rules on purpose: stats_window_seconds
      // is a config echo, and "*seconds*" would otherwise swallow it
      // as informational (first match wins).
      {"*overhead*", Direction::Informational, 0.0},
      {"*window*", Direction::Exact, 0.0},
      {"*slo*", Direction::Exact, 0.0},
      {"*burn*", Direction::Exact, 0.0},
      // Equivalence / quality booleans (all_outcomes_identical,
      // robust_beats_literal_*, *_monotone): exact.
      {"*identical*", Direction::Exact, 0.0},
      {"*same*", Direction::Exact, 0.0},
      {"*beats*", Direction::Exact, 0.0},
      {"*monotone*", Direction::Exact, 0.0},
      // Wall-clock timings vary across machines: report, never gate.
      // spmv throughput is the headline *informational* number of the
      // trust-scale bench (machine-bound like any wall clock).
      {"*spmv*", Direction::Informational, 0.0},
      {"*_ms", Direction::Informational, 0.0},
      {"*_us", Direction::Informational, 0.0},
      {"*_s", Direction::Informational, 0.0},
      {"*seconds*", Direction::Informational, 0.0},
      {"*elapsed*", Direction::Informational, 0.0},
      {"*time*", Direction::Informational, 0.0},
      // Deterministic work counters: more nodes explored is a solver
      // regression.
      {"*nodes*", Direction::LowerIsBetter, 0.10},
      // Power-iteration convergence work (total_converge_iterations):
      // deterministic for a seeded graph, so needing more sweeps to
      // converge is an engine regression.
      {"*converge*", Direction::LowerIsBetter, 0.10},
      {"*iterations*", Direction::LowerIsBetter, 0.10},
      {"*rounds*", Direction::LowerIsBetter, 0.10},
      // Robustness aggregates (streaming economy): missing deadlines or
      // losing requests is a regression. Lost requests gate exactly —
      // the engine's invariant is zero, always. These sit before the
      // generic "*rate*" rule so deadline_miss_rate gates in the right
      // direction (first match wins).
      {"*miss*", Direction::LowerIsBetter, 0.10},
      {"*lost*", Direction::Exact, 0.0},
      {"*latency*", Direction::LowerIsBetter, 0.10},
      // Chaos-service aggregates (BENCH_service_chaos.json): retry /
      // expiry / restart traffic is driven entirely by the seeded fault
      // plan, so the counts — and retry_success_rate — are deterministic
      // and gate exactly. Before "*rate*": first match wins.
      {"*retry*", Direction::Exact, 0.0},
      {"*retries*", Direction::Exact, 0.0},
      {"*expired*", Direction::Exact, 0.0},
      {"*restart*", Direction::Exact, 0.0},
      // Quality ratios: shrinking is a regression.
      {"*reduction*", Direction::HigherIsBetter, 0.10},
      {"*retention*", Direction::HigherIsBetter, 0.10},
      {"*rate*", Direction::HigherIsBetter, 0.10},
      {"*share*", Direction::HigherIsBetter, 0.15},
      {"*welfare*", Direction::HigherIsBetter, 0.10},
      {"*corruption*", Direction::LowerIsBetter, 0.15},
      // Service throughput (BENCH_service.json): the shard speedup is
      // machine-relative (N shards over 1 shard on the same host and
      // run), so it transfers across machines — gate directionally with
      // slack for scheduler noise. Absolute throughput is wall clock:
      // report only. Shard counts are configuration echoes.
      {"*speedup*", Direction::HigherIsBetter, 0.35},
      {"*per_sec*", Direction::Informational, 0.0},
      {"*shards*", Direction::Exact, 0.0},
      // Anything unmatched: visible in the diff, not a gate.
      {"*", Direction::Informational, 0.0},
  };
}

namespace {

struct Leaf {
  double number = 0.0;
  bool is_string = false;
  std::string str;
};

void flatten(const JsonValue& v, const std::string& path,
             std::vector<std::pair<std::string, Leaf>>& out) {
  switch (v.type()) {
    case JsonValue::Type::Object:
      for (const auto& [key, child] : v.members()) {
        flatten(child, path.empty() ? key : path + "." + key, out);
      }
      break;
    case JsonValue::Type::Array: {
      std::size_t i = 0;
      for (const JsonValue& child : v.items()) {
        flatten(child, path + "[" + std::to_string(i++) + "]", out);
      }
      break;
    }
    case JsonValue::Type::Number:
      out.emplace_back(path, Leaf{v.as_double(), false, {}});
      break;
    case JsonValue::Type::Bool:
      out.emplace_back(path, Leaf{v.as_bool() ? 1.0 : 0.0, false, {}});
      break;
    case JsonValue::Type::String:
      out.emplace_back(path, Leaf{0.0, true, v.as_string()});
      break;
    case JsonValue::Type::Null:
      break;  // non-finite image; nothing to compare
  }
}

const DiffRule* match_rule(const std::vector<DiffRule>& rules,
                           const std::string& path) {
  for (const DiffRule& rule : rules) {
    if (glob_match(rule.pattern, path)) return &rule;
  }
  return nullptr;
}

}  // namespace

BenchDiffResult diff_bench_reports(const JsonValue& baseline,
                                   const JsonValue& current,
                                   const std::vector<DiffRule>& rules) {
  std::vector<std::pair<std::string, Leaf>> base_leaves;
  std::vector<std::pair<std::string, Leaf>> cur_leaves;
  flatten(baseline, "", base_leaves);
  flatten(current, "", cur_leaves);
  std::unordered_map<std::string, const Leaf*> cur_map;
  cur_map.reserve(cur_leaves.size());
  for (const auto& [path, leaf] : cur_leaves) cur_map.emplace(path, &leaf);

  BenchDiffResult result;
  std::unordered_map<std::string, bool> seen;
  for (const auto& [path, base] : base_leaves) {
    seen.emplace(path, true);
    const DiffRule* rule = match_rule(rules, path);
    const Direction dir =
        rule != nullptr ? rule->dir : Direction::Informational;
    const double tol = rule != nullptr ? rule->rel_tol : 0.0;

    MetricDelta delta;
    delta.path = path;
    delta.dir = dir;
    const auto it = cur_map.find(path);
    if (it == cur_map.end()) {
      delta.baseline = base.number;
      delta.status = dir == Direction::Informational
                         ? DeltaStatus::Info
                         : DeltaStatus::BaselineOnly;
      if (delta.status == DeltaStatus::BaselineOnly) ++result.regressions;
      result.deltas.push_back(std::move(delta));
      continue;
    }
    const Leaf& cur = *it->second;
    if (base.is_string || cur.is_string) {
      // Strings only gate under Exact rules (e.g. a bench renaming its
      // mechanism label is config drift).
      if (dir == Direction::Exact &&
          (base.is_string != cur.is_string || base.str != cur.str)) {
        delta.status = DeltaStatus::Regressed;
        ++result.regressions;
      } else {
        delta.status = DeltaStatus::Info;
      }
      result.deltas.push_back(std::move(delta));
      continue;
    }
    delta.baseline = base.number;
    delta.current = cur.number;
    const double denom = std::max(std::abs(base.number), 1.0);
    delta.rel_change = (cur.number - base.number) / denom;
    const double rel = delta.rel_change;
    switch (dir) {
      case Direction::Informational:
        delta.status = DeltaStatus::Info;
        break;
      case Direction::Exact:
        delta.status =
            std::abs(rel) > tol ? DeltaStatus::Regressed : DeltaStatus::Ok;
        break;
      case Direction::LowerIsBetter:
        delta.status = rel > tol    ? DeltaStatus::Regressed
                       : rel < -tol ? DeltaStatus::Improved
                                    : DeltaStatus::Ok;
        break;
      case Direction::HigherIsBetter:
        delta.status = rel < -tol  ? DeltaStatus::Regressed
                       : rel > tol ? DeltaStatus::Improved
                                   : DeltaStatus::Ok;
        break;
    }
    if (delta.status == DeltaStatus::Regressed) ++result.regressions;
    result.deltas.push_back(std::move(delta));
  }
  for (const auto& [path, cur] : cur_leaves) {
    if (seen.count(path) != 0) continue;
    MetricDelta delta;
    delta.path = path;
    delta.current = cur.is_string ? 0.0 : cur.number;
    delta.status = DeltaStatus::CurrentOnly;
    const DiffRule* rule = match_rule(rules, path);
    delta.dir = rule != nullptr ? rule->dir : Direction::Informational;
    result.deltas.push_back(std::move(delta));
  }
  return result;
}

}  // namespace svo::obs::analysis
