/// \file slo.hpp
/// Declarative service-level objectives over telemetry windows
/// (DESIGN.md §4j). An SloObjective names a metric and a per-window
/// pass/fail predicate ("queue p99 < 20ms", "error rate < 1%",
/// "lost == 0"); SloTracker evaluates every objective against each
/// closed obs::Window, keeps error-budget accounts (fraction of
/// windows allowed to violate) and flags *breaches* with the standard
/// multi-window burn-rate rule: alert only when both a fast (recent)
/// and a slow (sustained) window agree the budget is burning faster
/// than allowed — a lone bad window is noise, a bad hour is an incident.
///
/// Evaluation is pure arithmetic over Window contents, so same-seed
/// virtual-time replays produce identical verdict sequences.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace svo::obs {

class MetricRegistry;

enum class SloKind {
  /// Histogram quantile must stay below threshold (e.g. queue p99).
  QuantileBelow,
  /// counter(metric) / counter(denominator) must stay below threshold
  /// (e.g. error rate). A window with denominator delta 0 has no data
  /// and does not violate.
  RatioBelow,
  /// counter(metric) delta must be 0 (e.g. lost requests).
  CounterZero,
};

[[nodiscard]] std::string to_string(SloKind kind);

/// One objective. `validate()` throws util errors on nonsense
/// (empty names, thresholds/budgets out of range, zero window spans).
struct SloObjective {
  std::string name;         ///< identifier, used in surfaced metric names
  SloKind kind = SloKind::QuantileBelow;
  std::string metric;       ///< histogram (QuantileBelow) or counter name
  std::string denominator;  ///< RatioBelow only: total-events counter
  double quantile = 0.99;   ///< QuantileBelow only, in [0,1]
  double threshold = 0.0;   ///< violation when observed >= threshold
  /// Fraction of windows allowed to violate before the budget is spent.
  double error_budget = 0.01;
  /// Burn-rate spans, in windows: fast catches sharp regressions, slow
  /// confirms they are sustained.
  std::size_t fast_windows = 3;
  std::size_t slow_windows = 12;
  /// Breach when both burn rates reach this multiple of the budgeted
  /// rate (1.0 = burning exactly as fast as the budget allows).
  double burn_threshold = 1.0;

  void validate() const;
};

/// Rolling verdict state for one objective.
struct SloStatus {
  std::string name;
  std::uint64_t windows = 0;      ///< windows evaluated
  std::uint64_t violations = 0;   ///< windows that violated
  bool violated_last = false;     ///< verdict of the newest window
  /// violations / (windows * error_budget): >= 1 means the whole-run
  /// budget is spent.
  double budget_consumed = 0.0;
  double fast_burn = 0.0;         ///< burn rate over the fast span
  double slow_burn = 0.0;         ///< burn rate over the slow span
  bool breached = false;          ///< both burn rates >= burn_threshold
  std::uint64_t breach_onsets = 0;  ///< false→true breach transitions

  friend bool operator==(const SloStatus&, const SloStatus&) = default;
};

/// Evaluates a fixed set of objectives window by window. Optionally
/// *surfaces* the verdicts back into a registry as ordinary metrics
/// (`slo.<name>.violations`, `.breaches` counters; `.violated`,
/// `.budget_consumed`, `.fast_burn`, `.slow_burn`, `.breached` gauges)
/// so exporters and bench reports see SLO state without knowing the
/// tracker exists. Not thread-safe; callers serialize evaluate().
class SloTracker {
 public:
  /// Validates every objective. `surface` may be null (no surfacing);
  /// it must outlive the tracker. Surfacing into the registry the
  /// windows are sampled from is safe — slo.* metrics then show up in
  /// the *next* window, never their own.
  explicit SloTracker(std::vector<SloObjective> objectives,
                      MetricRegistry* surface = nullptr);

  /// Evaluate every objective against one closed window, in objective
  /// order. Returns the refreshed statuses (also kept internally).
  const std::vector<SloStatus>& evaluate(const Window& window);

  [[nodiscard]] const std::vector<SloObjective>& objectives() const noexcept {
    return objectives_;
  }
  [[nodiscard]] const std::vector<SloStatus>& status() const noexcept {
    return status_;
  }
  /// Any objective currently in breach.
  [[nodiscard]] bool any_breached() const noexcept;

 private:
  std::vector<SloObjective> objectives_;
  std::vector<SloStatus> status_;
  /// Per-objective ring of recent verdicts (true = violated), newest
  /// last; sized to the objective's slow span.
  std::vector<std::vector<bool>> recent_;
  MetricRegistry* surface_;
};

}  // namespace svo::obs
