/// \file trace.hpp
/// Trace spans and the process-wide Recorder — the timing half of the
/// observability spine (DESIGN.md §4e).
///
/// A Span is an RAII region: construction stamps a start time, the
/// destructor records a completed TraceEvent into the recorder's
/// per-thread buffer. When the recorder is disabled (the default) a Span
/// is a strict no-op — one relaxed atomic load, no clock read, no
/// allocation — so instrumented code paths stay bit-identical and within
/// noise of the uninstrumented build.
///
/// Spans use the same monotonic clock as util::WallTimer, so span
/// durations line up with the Fig. 9 wall-clock numbers (enforced by a
/// static_assert below and a regression test).
///
/// Causal tracing: every enabled span gets a process-unique id and the
/// id of its nearest enclosing span as parent (a per-thread context
/// stack maintains the nesting). Cross-thread / cross-simulated-node
/// causality is carried by *flow* events (Chrome "s"/"f" arrows):
/// des::Network stamps one flow per message, so a traced protocol run
/// exports the full CFP/REPORT/AWARD causal DAG. obs::analysis loads
/// the exported JSON back in to compute aggregates and critical paths.
///
/// Exporters: Chrome trace_event JSON (load in chrome://tracing or
/// https://ui.perfetto.dev) and flat JSONL (one event per line, for jq
/// and pandas; a ".jsonl" TraceSession path selects it). TraceSession
/// wires the recorder to output files named on the command line
/// (svo_cli --trace) or via SVO_TRACE / SVO_METRICS.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace svo::obs {

/// The tracing clock — shared with util::WallTimer by construction.
using TraceClock = util::WallTimer::clock;
static_assert(TraceClock::is_steady,
              "trace spans require a monotonic clock (same as WallTimer)");

/// Microseconds on the trace clock (epoch is the clock's own; Chrome
/// tracing only needs timestamps to be mutually consistent).
[[nodiscard]] std::uint64_t now_micros() noexcept;

/// What a TraceEvent denotes — mapped onto Chrome trace_event phases.
enum class EventKind : std::uint8_t {
  Complete,   ///< a span with a duration (ph "X")
  FlowStart,  ///< causal arrow source, e.g. a message send (ph "s")
  FlowEnd,    ///< causal arrow sink, e.g. a message delivery (ph "f")
  Instant,    ///< a point event, e.g. a dropped message (ph "i")
};

/// One completed span, ready for export.
struct TraceEvent {
  std::string name;
  std::string category = "svo";
  EventKind kind = EventKind::Complete;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  /// Recorder-assigned thread id (dense, starts at 1).
  std::uint32_t tid = 0;
  /// Process-unique causal-DAG node id (0 = unassigned). Flow start and
  /// flow end share the id of the message they bracket.
  std::uint64_t id = 0;
  /// Causal parent: the id of the enclosing span, the triggering flow,
  /// or an application-supplied context (0 = root).
  std::uint64_t parent = 0;
  /// Numeric annotations (Chrome "args").
  std::vector<std::pair<std::string, double>> args;
  /// String annotations (e.g. mechanism name, solver status).
  std::vector<std::pair<std::string, std::string>> sargs;
};

/// Process-wide trace + metric sink. Disabled by default; every
/// instrumentation site checks enabled() (one relaxed load) before doing
/// any work, which is the whole-repo invariant: recorder-off runs are
/// bit-identical to pre-instrumentation builds.
class Recorder {
 public:
  [[nodiscard]] static Recorder& instance() noexcept;

  void enable() noexcept { enabled_.store(true, std::memory_order_relaxed); }
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Process-wide metric registry (aggregates regardless of thread).
  [[nodiscard]] MetricRegistry& metrics() noexcept { return metrics_; }

  /// Append a completed event to the calling thread's buffer. No-op
  /// when disabled (events produced by in-flight spans across a
  /// disable() are dropped, never torn).
  void record(TraceEvent ev);

  /// All recorded events, merged across threads, sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> snapshot_events() const;
  [[nodiscard]] std::size_t event_count() const;

  /// Drop all events and zero all metrics (thread buffers stay
  /// registered; outstanding references stay valid). Bumps the buffer
  /// generation: spans still open across the clear are rejected at
  /// their end() with an explicit misuse error instead of leaking a
  /// half-window event into the next trace.
  void clear();

  // --- causal context ---------------------------------------------------
  // Ids are process-unique and only allocated while the recorder is
  // enabled; the per-thread context stack tracks span nesting so new
  // spans (and message flows) know their causal parent.

  /// Allocate a fresh causal-DAG node id (never 0).
  [[nodiscard]] std::uint64_t next_id() noexcept {
    return next_node_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Innermost open span id on the calling thread (0 = none).
  [[nodiscard]] std::uint64_t current_context() const noexcept;

  /// Push a span id onto the calling thread's context stack.
  void push_context(std::uint64_t id);

  /// Pop `id` from the calling thread's context stack. Correct usage
  /// pops the innermost id; anything else is span-stack misuse and is
  /// reported *explicitly* instead of silently corrupting parent links:
  ///  - `id` below the top (out-of-order end): unwinds to `id`,
  ///  - `id` absent (end-without-begin, or a span crossing clear()):
  ///    leaves the stack alone and returns false.
  /// Both record an "obs.error.span_misuse" instant event and bump
  /// misuse_count().
  bool pop_context(std::uint64_t id);

  /// Monotonic count of the buffer clears; Span uses it to detect spans
  /// whose lifetime crossed a clear()/flush boundary.
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Span-stack misuse events observed (see pop_context).
  [[nodiscard]] std::uint64_t misuse_count() const noexcept {
    return misuse_count_.load(std::memory_order_relaxed);
  }

  /// Chrome trace_event JSON ({"traceEvents": [...]}).
  void write_chrome_trace(std::ostream& os) const;
  /// One JSON object per line.
  void write_jsonl(std::ostream& os) const;
  /// File variants; return false (after an stderr note) when the path
  /// cannot be opened — observability must never abort a run.
  bool write_chrome_trace_file(const std::string& path) const;
  bool write_jsonl_file(const std::string& path) const;
  bool write_metrics_file(const std::string& path) const;

 private:
  friend class Span;  // reports generation-crossing misuse on end()

  Recorder() = default;

  struct ThreadBuffer {
    std::mutex mu;  // uncontended except during snapshot/clear
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };
  [[nodiscard]] ThreadBuffer& local_buffer();

  void report_misuse(const char* detail, std::uint64_t id);

  std::atomic<bool> enabled_{false};
  MetricRegistry metrics_;
  mutable std::mutex buffers_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<std::uint32_t> next_tid_{1};
  std::atomic<std::uint64_t> next_node_id_{1};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> misuse_count_{0};
};

/// Innermost open span id on the calling thread; 0 when tracing is
/// disabled or no span is open. The value application code threads
/// through asynchronous boundaries (e.g. des::Message::trace_parent).
[[nodiscard]] std::uint64_t current_span_id() noexcept;

/// RAII trace region. Cheap enough for per-solve / per-iteration
/// granularity; do not put one inside a B&B node expansion — count
/// there, annotate here.
class Span {
 public:
  /// `name`/`category` must be string literals (or outlive the span).
  /// The span's causal parent defaults to the innermost open span on
  /// this thread; pass `parent` to attach it elsewhere in the DAG
  /// (e.g. a message-flow id).
  explicit Span(const char* name, const char* category = "svo",
                std::uint64_t parent = 0) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { end(); }

  /// Attach a numeric / string annotation (kept up to a small fixed
  /// capacity; silently dropped beyond it). No-ops on inactive spans.
  void arg(const char* key, double value) noexcept;
  void arg(const char* key, const char* value) noexcept;

  /// Close early (idempotent); records the event.
  void end() noexcept;

  /// True when the recorder was enabled at construction.
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Causal id of this span (0 when inactive). Valid for the process
  /// lifetime; safe to hand to other threads / simulated nodes as a
  /// trace context.
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  static constexpr std::size_t kMaxArgs = 8;
  static constexpr std::size_t kMaxStringArgs = 2;

  const char* name_;
  const char* category_;
  std::uint64_t start_us_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t generation_ = 0;
  std::size_t num_args_ = 0;
  std::size_t num_sargs_ = 0;
  std::array<std::pair<const char*, double>, kMaxArgs> args_{};
  std::array<std::pair<const char*, const char*>, kMaxStringArgs> sargs_{};
  bool active_ = false;
};

/// RAII recorder session bound to output files. On construction enables
/// the recorder; on destruction (or flush()) writes the trace (Chrome
/// trace_event JSON, or flat JSONL when the path ends in ".jsonl") and
/// the metric registry JSON, then restores the previous
/// enabled/disabled state. The default constructor reads the paths from
/// the environment: SVO_TRACE=<file> (trace) and SVO_METRICS=<file>
/// (metrics); with neither set the session is inactive and free.
class TraceSession {
 public:
  /// Environment-driven session (SVO_TRACE / SVO_METRICS).
  TraceSession();
  /// Explicit paths (empty string = skip that output). Metrics default
  /// to SVO_METRICS when unset.
  explicit TraceSession(std::string trace_path, std::string metrics_path = "");
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  ~TraceSession();

  /// Write the configured outputs now (idempotent).
  void flush();

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] const std::string& trace_path() const noexcept {
    return trace_path_;
  }

 private:
  void init();

  std::string trace_path_;
  std::string metrics_path_;
  bool active_ = false;
  bool was_enabled_ = false;
  bool flushed_ = false;
};

}  // namespace svo::obs
