/// \file timeseries.hpp
/// Continuous telemetry over the metric registry (DESIGN.md §4j): the
/// cumulative counters/histograms of MetricRegistry answer "what
/// happened since the process started"; a long-running service needs
/// "what happened in the last thirty seconds". TimeSeries closes
/// fixed-duration *windows* — per-window counter deltas, gauge reads
/// and histogram delta-snapshots — into a bounded ring, and rollup()
/// merges the last N windows for p50/p95/p99-over-last-N queries.
///
/// Windows advance on an *injected* clock: svc::FormationService feeds
/// wall time from its util::WallTimer, sim::StreamEngine feeds virtual
/// time from des::Simulator. Nothing here reads a real clock, so
/// virtual-time window sequences are deterministic and replay-identical
/// (same discipline as the rest of the obs spine: telemetry is an
/// observer, never an actor).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace svo::obs {

/// One closed telemetry window: activity between two clock readings.
/// Counters and histograms hold *deltas* over the window; gauges hold
/// the value read when the window closed (a gauge is already a level,
/// deltas would be meaningless).
struct Window {
  std::uint64_t index = 0;   ///< 0-based position in the series
  double start_time = 0.0;   ///< clock reading that opened the window
  double end_time = 0.0;     ///< clock reading that closed it
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Bit-wise equality — the replay tests compare whole window
  /// sequences across same-seed virtual-time runs.
  friend bool operator==(const Window&, const Window&) = default;

  /// Delta lookup with 0-defaults for absent metrics (a metric that was
  /// never touched in a window simply is not in the map).
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  /// Empty snapshot when absent.
  [[nodiscard]] Histogram::Snapshot histogram(const std::string& name) const;
};

/// Fixed-capacity ring of windows over one MetricRegistry. Not
/// thread-safe: callers serialize advance() themselves (the service
/// samples under its telemetry mutex, the stream engine is
/// single-threaded).
class TimeSeries {
 public:
  /// Observes — never owns — `registry`; capacity bounds the ring
  /// (oldest windows are evicted). The construction-time registry state
  /// is the delta baseline and `start_time` opens the first window.
  /// Throws on capacity == 0.
  TimeSeries(const MetricRegistry& registry, std::size_t capacity,
             double start_time = 0.0);

  /// Close the window [previous advance, now) and append it. Counter
  /// and histogram deltas are computed against the snapshot taken at
  /// the previous advance; a cumulative value that *shrank* (registry
  /// reset) restarts the delta from the current value rather than
  /// underflowing. `now` must be >= the previous reading.
  const Window& advance(double now);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Windows currently retained (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return windows_.size(); }
  /// Windows ever closed (monotonic; == the next window's index).
  [[nodiscard]] std::uint64_t windows_closed() const noexcept {
    return next_index_;
  }
  /// All retained windows, oldest first.
  [[nodiscard]] const std::deque<Window>& windows() const noexcept {
    return windows_;
  }

  /// Merge the newest min(last_n, size()) windows into one synthetic
  /// window: counters/histograms sum, gauges take the newest window's
  /// reading, [start_time, end_time] spans the merged range. Quantiles
  /// of the merged histograms inherit the factor-2 log2-bucket bound
  /// from Histogram::Snapshot::quantile. Returns an empty Window when
  /// no windows have closed yet.
  [[nodiscard]] Window rollup(std::size_t last_n) const;

 private:
  const MetricRegistry& registry_;
  std::size_t capacity_;
  std::deque<Window> windows_;
  RegistrySnapshot prev_;
  double last_time_ = 0.0;
  std::uint64_t next_index_ = 0;
};

/// Standalone windowed histogram for callers without a registry: a live
/// Histogram plus a ring of per-window snapshots. observe() feeds the
/// open window; close_window() snapshots-and-resets it into the ring.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(std::size_t capacity);

  void observe(double v) noexcept { live_.observe(v); }
  /// Seal the open window; returns the sealed snapshot.
  const Histogram::Snapshot& close_window();

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return windows_.size(); }
  [[nodiscard]] const std::deque<Histogram::Snapshot>& windows()
      const noexcept {
    return windows_;
  }

  /// Merge the newest min(last_n, size()) closed windows.
  [[nodiscard]] Histogram::Snapshot rollup(std::size_t last_n) const;

 private:
  std::size_t capacity_;
  Histogram live_;
  std::deque<Histogram::Snapshot> windows_;
};

}  // namespace svo::obs
