#include "obs/json_parse.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

#include "util/error.hpp"

namespace svo::obs {

bool JsonValue::as_bool() const {
  detail::require(type_ == Type::Bool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  detail::require(type_ == Type::Number, "JsonValue: not a number");
  return num_;
}

std::int64_t JsonValue::as_int() const {
  detail::require(is_int_, "JsonValue: not an integral number");
  return int_;
}

std::uint64_t JsonValue::as_uint() const {
  detail::require(is_int_ && int_ >= 0,
                  "JsonValue: not a non-negative integral number");
  return static_cast<std::uint64_t>(int_);
}

const std::string& JsonValue::as_string() const {
  detail::require(type_ == Type::String, "JsonValue: not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  detail::require(type_ == Type::Array, "JsonValue: not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  detail::require(type_ == Type::Object, "JsonValue: not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fb) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_number()) ? v->num_ : fb;
}

std::uint64_t JsonValue::uint_or(std::string_view key,
                                 std::uint64_t fb) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_int_ && v->int_ >= 0)
             ? static_cast<std::uint64_t>(v->int_)
             : fb;
}

std::string JsonValue::string_or(std::string_view key, std::string fb) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->is_string()) ? v->str_ : std::move(fb);
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.type_ = Type::Number;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_integer(std::int64_t i) {
  JsonValue v;
  v.type_ = Type::Number;
  v.num_ = static_cast<double>(i);
  v.is_int_ = true;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::String;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::Array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.type_ = Type::Object;
  v.members_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    skip_ws();
    JsonValue v = value();
    skip_ws();
    require(pos_ == text_.size(), "trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw IoError("JSON parse error at byte " + std::to_string(pos_) + ": " +
                  what);
  }
  void require(bool cond, const char* what) const {
    if (!cond) fail(what);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  JsonValue value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return JsonValue::make_string(string());
      case 't':
        literal("true");
        return JsonValue::make_bool(true);
      case 'f':
        literal("false");
        return JsonValue::make_bool(false);
      case 'n':
        literal("null");
        return JsonValue::make_null();
      default:
        return number();
    }
  }

  JsonValue object() {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      require(peek() == '"', "expected object key");
      std::string key = string();
      skip_ws();
      require(peek() == ':', "expected ':' after object key");
      ++pos_;
      skip_ws();
      members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      require(peek() == '}', "expected ',' or '}' in object");
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue array() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    for (;;) {
      skip_ws();
      items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      require(peek() == ']', "expected ',' or ']' in array");
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string string() {
    require(peek() == '"', "expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      require(static_cast<unsigned char>(c) >= 0x20,
              "raw control character in string");
      if (c == '\\') {
        ++pos_;
        require(pos_ < text_.size(), "dangling escape");
        const char e = text_[pos_];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            require(pos_ + 4 < text_.size(), "truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              require(std::isxdigit(static_cast<unsigned char>(h)),
                      "bad \\u escape");
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0'
                                  : (std::tolower(h) - 'a' + 10));
            }
            // The writer only ever emits \u00xx for control bytes;
            // decode the Latin-1 range and keep anything else verbatim
            // (lossless, and never produced by our own writer).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else {
              out.append(text_.substr(pos_ - 1, 6));
            }
            pos_ += 4;
            break;
          }
          default:
            fail("invalid escape character");
        }
        ++pos_;
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    fail("unterminated string");
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    bool integral = pos_ > start && (text_[start] != '-' || pos_ > start + 1);
    if (peek() == '.') {
      integral = false;
      ++pos_;
      require(std::isdigit(static_cast<unsigned char>(peek())),
              "digit required after decimal point");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      require(std::isdigit(static_cast<unsigned char>(peek())),
              "digit required in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    require(pos_ > start, "expected a JSON value");
    const std::string_view lexeme = text_.substr(start, pos_ - start);
    require(std::isdigit(static_cast<unsigned char>(lexeme.back())),
            "malformed number");
    // RFC 8259: no leading zeros ("01"), no bare "-".
    const std::string_view digits =
        lexeme[0] == '-' ? lexeme.substr(1) : lexeme;
    require(!digits.empty() && (digits[0] != '0' || digits.size() == 1 ||
                                digits[1] == '.' || digits[1] == 'e' ||
                                digits[1] == 'E'),
            "leading zero in number");
    if (integral) {
      std::int64_t i = 0;
      const auto [p, ec] =
          std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), i);
      if (ec == std::errc() && p == lexeme.data() + lexeme.size()) {
        return JsonValue::make_integer(i);
      }
      // Integral lexeme outside int64 (e.g. uint64 max): fall through
      // to double — as_int() will refuse, as_double() approximates.
    }
    double d = 0.0;
    const auto [p, ec] =
        std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), d);
    require(ec == std::errc() && p == lexeme.data() + lexeme.size(),
            "malformed number");
    return JsonValue::make_number(d);
  }

  void literal(std::string_view lit) {
    require(text_.substr(pos_, lit.size()) == lit, "invalid literal");
    pos_ += lit.size();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

std::optional<JsonValue> try_parse_json(std::string_view text) {
  try {
    return parse_json(text);
  } catch (const IoError&) {
    return std::nullopt;
  }
}

}  // namespace svo::obs
