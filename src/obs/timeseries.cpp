#include "obs/timeseries.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace svo::obs {

std::uint64_t Window::counter(const std::string& name) const {
  const auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

double Window::gauge(const std::string& name) const {
  const auto it = gauges.find(name);
  return it == gauges.end() ? 0.0 : it->second;
}

Histogram::Snapshot Window::histogram(const std::string& name) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? Histogram::Snapshot{} : it->second;
}

TimeSeries::TimeSeries(const MetricRegistry& registry, std::size_t capacity,
                       double start_time)
    : registry_(registry),
      capacity_(capacity),
      prev_(registry.snapshot()),
      last_time_(start_time) {
  detail::require(capacity > 0, "TimeSeries: capacity must be positive");
}

namespace {

/// Histogram delta between two cumulative snapshots. count/sum/buckets
/// subtract; min/max keep the cumulative values — the exact per-window
/// extrema are unrecoverable from cumulative state, and a too-wide
/// clamp range only loses precision quantile() would otherwise clamp
/// away, so the factor-2 bucket bound still holds. A shrunk cumulative
/// count means the histogram was reset mid-window: restart from the
/// current state.
Histogram::Snapshot delta_snapshot(const Histogram::Snapshot& prev,
                                   const Histogram::Snapshot& cur) {
  if (cur.count < prev.count) return cur;
  Histogram::Snapshot d;
  d.count = cur.count - prev.count;
  d.sum = cur.sum - prev.sum;
  d.min = cur.min;
  d.max = cur.max;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    d.buckets[b] =
        cur.buckets[b] >= prev.buckets[b] ? cur.buckets[b] - prev.buckets[b]
                                          : cur.buckets[b];
  }
  return d;
}

}  // namespace

const Window& TimeSeries::advance(double now) {
  detail::require(now >= last_time_,
                  "TimeSeries::advance: clock moved backwards");
  RegistrySnapshot cur = registry_.snapshot();
  Window w;
  w.index = next_index_++;
  w.start_time = last_time_;
  w.end_time = now;
  for (const auto& [name, value] : cur.counters) {
    const auto it = prev_.counters.find(name);
    const std::uint64_t before = it == prev_.counters.end() ? 0 : it->second;
    // A shrunk cumulative value means reset(): restart the delta.
    const std::uint64_t delta = value >= before ? value - before : value;
    // Untouched metrics stay out of the window (the accessors read 0).
    if (delta != 0) w.counters.emplace(name, delta);
  }
  w.gauges = cur.gauges;  // levels, read at close
  for (const auto& [name, snap] : cur.histograms) {
    const auto it = prev_.histograms.find(name);
    Histogram::Snapshot d = it == prev_.histograms.end()
                                ? snap
                                : delta_snapshot(it->second, snap);
    if (d.count != 0) w.histograms.emplace(name, std::move(d));
  }
  prev_ = std::move(cur);
  last_time_ = now;
  windows_.push_back(std::move(w));
  if (windows_.size() > capacity_) windows_.pop_front();
  return windows_.back();
}

Window TimeSeries::rollup(std::size_t last_n) const {
  Window out;
  if (windows_.empty() || last_n == 0) return out;
  const std::size_t n = std::min(last_n, windows_.size());
  const std::size_t first = windows_.size() - n;
  out.index = windows_.back().index;
  out.start_time = windows_[first].start_time;
  out.end_time = windows_.back().end_time;
  out.gauges = windows_.back().gauges;  // newest level wins
  for (std::size_t i = first; i < windows_.size(); ++i) {
    const Window& w = windows_[i];
    for (const auto& [name, value] : w.counters) out.counters[name] += value;
    for (const auto& [name, snap] : w.histograms) {
      out.histograms[name].merge(snap);
    }
  }
  return out;
}

WindowedHistogram::WindowedHistogram(std::size_t capacity)
    : capacity_(capacity) {
  detail::require(capacity > 0,
                  "WindowedHistogram: capacity must be positive");
}

const Histogram::Snapshot& WindowedHistogram::close_window() {
  windows_.push_back(live_.snapshot());
  live_.reset();
  if (windows_.size() > capacity_) windows_.pop_front();
  return windows_.back();
}

Histogram::Snapshot WindowedHistogram::rollup(std::size_t last_n) const {
  Histogram::Snapshot out;
  if (windows_.empty() || last_n == 0) return out;
  const std::size_t n = std::min(last_n, windows_.size());
  for (std::size_t i = windows_.size() - n; i < windows_.size(); ++i) {
    out.merge(windows_[i]);
  }
  return out;
}

}  // namespace svo::obs
