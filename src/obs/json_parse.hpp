/// \file json_parse.hpp
/// Minimal JSON reader — the inverse of obs::JsonWriter. It exists so
/// the repo can consume its *own* artifacts (trace JSONL / Chrome trace
/// files for obs::analysis, BENCH_*.json reports for tools/bench_diff)
/// without an external dependency; it is a full RFC 8259 parser minus
/// \u surrogate-pair decoding (escapes are validated and kept verbatim,
/// which is lossless for round-tripping and irrelevant for the ASCII
/// keys the repo emits).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace svo::obs {

/// One parsed JSON value. Object members keep insertion order (the
/// writer emits deterministic order; diffs should see it).
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;  // null

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }
  /// True for a Number whose lexeme was integral and fits std::int64_t
  /// exactly (as_int() is then lossless).
  [[nodiscard]] bool is_integer() const noexcept { return is_int_; }

  /// Typed accessors; throw InvalidArgument on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  /// Object member lookup (first match); nullptr when absent or when
  /// this value is not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Convenience readers over find(): fallback on absent member or
  /// type mismatch.
  [[nodiscard]] double number_or(std::string_view key, double fb) const;
  [[nodiscard]] std::uint64_t uint_or(std::string_view key,
                                      std::uint64_t fb) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fb) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_integer(std::int64_t i);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  bool is_int_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parse exactly one JSON value (leading/trailing whitespace allowed).
/// Throws IoError on malformed input, with a byte offset in the message.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Non-throwing variant: nullopt on malformed input.
[[nodiscard]] std::optional<JsonValue> try_parse_json(std::string_view text);

}  // namespace svo::obs
